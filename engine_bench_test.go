package graphmat_test

import (
	"fmt"
	"testing"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
	"graphmat/internal/kernels"
)

// Engine-side benchmarks: the kernel backend × mode × worker matrix for one
// traversal workload (BFS) and one dense iterative workload (PageRank). These
// are the BENCH_engine.json baseline — the ingestion benchmarks
// (BENCH_ingest.json) cover the load path; these cover the superstep loop.
// Dataset size follows GRAPHMAT_BENCH_SHIFT like the figure benchmarks
// (default -3 → RMAT scale 11).
//
// The backend dimension sweeps every SIMD backend the CPU supports plus the
// scalar reference (kernels.Supported()), so one `make bench-engine` run
// records the per-backend end-to-end numbers. PageRank carries the SumFoldF64
// marker and exercises the ScatterAddF64 fold fast path; BFS is a generic
// min-fold and isolates the frontier word-op and scan dispatch.

// engineBenchScale is the RMAT scale at the configured shift.
func engineBenchScale() int { return 14 + benchShift() }

func engineModes() []graphmat.Mode {
	return []graphmat.Mode{graphmat.Pull, graphmat.Push, graphmat.Auto}
}

var engineWorkers = []int{1, 4, 8}

// benchBackends runs body once per supported kernel backend under a
// "backend_<name>" sub-benchmark with that backend forced.
func benchBackends(b *testing.B, body func(b *testing.B)) {
	for _, backend := range kernels.Supported() {
		b.Run("backend_"+backend.String(), func(b *testing.B) {
			restore, ok := kernels.ForceBackend(backend)
			if !ok {
				b.Fatalf("backend %s reported supported but ForceBackend refused it", backend)
			}
			defer restore()
			body(b)
		})
	}
}

func BenchmarkEngineBFS(b *testing.B) {
	scale := engineBenchScale()
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})
	g, err := algorithms.NewBFSGraph(adj, 0)
	if err != nil {
		b.Fatal(err)
	}
	root := uint32(0)
	var best uint32
	for v := uint32(0); v < g.NumVertices(); v++ {
		if d := g.OutDegree(v); d > best {
			best, root = d, v
		}
	}
	ws := graphmat.NewWorkspace[uint32, uint32](int(g.NumVertices()), graphmat.Bitvector)
	benchBackends(b, func(b *testing.B) {
		for _, mode := range engineModes() {
			for _, workers := range engineWorkers {
				b.Run(fmt.Sprintf("mode_%s/workers_%d", mode, workers), func(b *testing.B) {
					b.SetBytes(g.NumEdges()) // edges traversed per op, for MB/s-style throughput
					for i := 0; i < b.N; i++ {
						if _, _, err := algorithms.BFSWithWorkspace(g, root, graphmat.Config{Threads: workers, Mode: mode}, ws); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	})
}

func BenchmarkEnginePageRank(b *testing.B) {
	scale := engineBenchScale()
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 0})
	g, err := algorithms.NewPageRankGraph(adj, 0)
	if err != nil {
		b.Fatal(err)
	}
	ws := graphmat.NewWorkspace[float64, float64](int(g.NumVertices()), graphmat.Bitvector)
	benchBackends(b, func(b *testing.B) {
		for _, mode := range engineModes() {
			for _, workers := range engineWorkers {
				b.Run(fmt.Sprintf("mode_%s/workers_%d", mode, workers), func(b *testing.B) {
					opt := algorithms.PageRankOptions{
						MaxIterations: 10,
						Config:        graphmat.Config{Threads: workers, Mode: mode},
					}
					for i := 0; i < b.N; i++ {
						if _, _, err := algorithms.PageRankWithWorkspace(g, opt, ws); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	})
}
