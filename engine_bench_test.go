package graphmat_test

import (
	"fmt"
	"testing"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
	"graphmat/internal/kernels"
)

// Engine-side benchmarks: the kernel backend × mode × worker matrix for one
// traversal workload (BFS) and one dense iterative workload (PageRank). These
// are the BENCH_engine.json baseline — the ingestion benchmarks
// (BENCH_ingest.json) cover the load path; these cover the superstep loop.
// Dataset size follows GRAPHMAT_BENCH_SHIFT like the figure benchmarks
// (default -3 → RMAT scale 11).
//
// The backend dimension sweeps every SIMD backend the CPU supports plus the
// scalar reference (kernels.Supported()), so one `make bench-engine` run
// records the per-backend end-to-end numbers. PageRank carries the SumFoldF64
// marker and exercises the ScatterAddF64 fold fast path; BFS is a generic
// min-fold and isolates the frontier word-op and scan dispatch.

// engineBenchScale is the RMAT scale at the configured shift.
func engineBenchScale() int { return 14 + benchShift() }

func engineModes() []graphmat.Mode {
	return []graphmat.Mode{graphmat.Pull, graphmat.Push, graphmat.Auto}
}

var engineWorkers = []int{1, 4, 8}

// reportSchedMetrics attaches the scheduler runtime's utilization counters
// to the benchmark result: tasks and steals per op, and busy-util — the
// fraction of worker×wall time spent inside task bodies (1.0 = perfectly
// busy workers). benchrecord folds these into BENCH_engine.json.
func reportSchedMetrics(b *testing.B, s graphmat.SchedStats, workers int) {
	b.ReportMetric(float64(s.Tasks)/float64(b.N), "sched-tasks/op")
	b.ReportMetric(float64(s.Steals)/float64(b.N), "steals/op")
	if e := b.Elapsed().Nanoseconds(); e > 0 && workers > 0 {
		b.ReportMetric(float64(s.BusyNS)/float64(e*int64(workers)), "busy-util")
	}
}

// benchBackends runs body once per supported kernel backend under a
// "backend_<name>" sub-benchmark with that backend forced.
func benchBackends(b *testing.B, body func(b *testing.B)) {
	for _, backend := range kernels.Supported() {
		b.Run("backend_"+backend.String(), func(b *testing.B) {
			restore, ok := kernels.ForceBackend(backend)
			if !ok {
				b.Fatalf("backend %s reported supported but ForceBackend refused it", backend)
			}
			defer restore()
			body(b)
		})
	}
}

func BenchmarkEngineBFS(b *testing.B) {
	scale := engineBenchScale()
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})
	g, err := algorithms.NewBFSGraph(adj, 0)
	if err != nil {
		b.Fatal(err)
	}
	root := uint32(0)
	var best uint32
	for v := uint32(0); v < g.NumVertices(); v++ {
		if d := g.OutDegree(v); d > best {
			best, root = d, v
		}
	}
	ws := graphmat.NewWorkspace[uint32, uint32](int(g.NumVertices()), graphmat.Bitvector)
	benchBackends(b, func(b *testing.B) {
		for _, mode := range engineModes() {
			for _, workers := range engineWorkers {
				b.Run(fmt.Sprintf("mode_%s/workers_%d", mode, workers), func(b *testing.B) {
					b.SetBytes(g.NumEdges()) // edges traversed per op, for MB/s-style throughput
					var sched graphmat.SchedStats
					for i := 0; i < b.N; i++ {
						_, stats, err := algorithms.BFSWithWorkspace(g, root, graphmat.Config{Threads: workers, Mode: mode}, ws)
						if err != nil {
							b.Fatal(err)
						}
						sched.Tasks += stats.Sched.Tasks
						sched.Steals += stats.Sched.Steals
						sched.BusyNS += stats.Sched.BusyNS
					}
					reportSchedMetrics(b, sched, workers)
				})
			}
		}
	})
}

func BenchmarkEnginePageRank(b *testing.B) {
	scale := engineBenchScale()
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 0})
	g, err := algorithms.NewPageRankGraph(adj, 0)
	if err != nil {
		b.Fatal(err)
	}
	ws := graphmat.NewWorkspace[float64, float64](int(g.NumVertices()), graphmat.Bitvector)
	benchBackends(b, func(b *testing.B) {
		for _, mode := range engineModes() {
			for _, workers := range engineWorkers {
				b.Run(fmt.Sprintf("mode_%s/workers_%d", mode, workers), func(b *testing.B) {
					opt := algorithms.PageRankOptions{
						MaxIterations: 10,
						Config:        graphmat.Config{Threads: workers, Mode: mode},
					}
					var sched graphmat.SchedStats
					for i := 0; i < b.N; i++ {
						_, stats, err := algorithms.PageRankWithWorkspace(g, opt, ws)
						if err != nil {
							b.Fatal(err)
						}
						sched.Tasks += stats.Sched.Tasks
						sched.Steals += stats.Sched.Steals
						sched.BusyNS += stats.Sched.BusyNS
					}
					reportSchedMetrics(b, sched, workers)
				})
			}
		}
	})
}
