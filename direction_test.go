package graphmat_test

import (
	"math"
	"runtime"
	"testing"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
)

// TestDirectionOptimizedBFS18 is the kernel-layer acceptance test: BFS on a
// scale-18 RMAT graph must be bit-identical under pull, push and auto, and
// the sparse-frontier regime the push kernel exists for — the ISSUE's
// "10-vertex frontier on a scale-18 graph still pays O(nparts × nzcols)
// probe work" — must be ≥2× faster under Auto than under Pull at
// GOMAXPROCS ≥ 8. That regime is measured on a real feature of the graph: a
// pendant pair (a two-vertex component), the kind of low-reach root a BFS
// service gets queried for constantly. A giant-component hub BFS is also run
// in every mode to prove identity (its wall clock is dominated by the two
// dense supersteps' edge work, which every mode shares, so no gate applies
// there — auto must simply never lose to pull by more than noise).
//
// Short mode and race builds scale the graph down (the identity checks
// still run); the timing gate applies only where the speedup is promised.
func TestDirectionOptimizedBFS18(t *testing.T) {
	scale, timed := 18, true
	if runtime.GOMAXPROCS(0) < 8 || runtime.NumCPU() < 8 {
		scale, timed = 15, false
	}
	if raceEnabled {
		scale, timed = 13, false
	}
	if testing.Short() {
		scale, timed = 12, false
	}

	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})

	// Find a pendant pair on the symmetrized preprocessed view (mirroring
	// NewBFSGraph's preprocessing): a vertex of degree 1 whose only
	// neighbor also has degree 1 is a two-vertex component, the smallest
	// frontier a reachable root can have.
	pre := adj.Clone()
	pre.RemoveSelfLoops()
	pre.SortRowMajor()
	pre.DedupKeepFirst()
	pre.Symmetrize()
	deg := make([]uint32, pre.NRows)
	var hub uint32
	for _, e := range pre.Entries {
		deg[e.Row]++
	}
	for v := range deg {
		if deg[v] > deg[hub] {
			hub = uint32(v)
		}
	}
	pendant, havePendant := uint32(0), false
	for _, e := range pre.Entries {
		if e.Row != e.Col && deg[e.Row] == 1 && deg[e.Col] == 1 {
			pendant, havePendant = e.Row, true
			break
		}
	}
	if !havePendant {
		// Tiny scaled-down graphs may lack one; an isolated vertex (a
		// one-superstep BFS) exercises the same regime.
		for v := range deg {
			if deg[v] == 0 {
				pendant, havePendant = uint32(v), true
				break
			}
		}
	}
	if !havePendant {
		pendant, timed = hub, false
	}

	g, err := algorithms.NewBFSGraph(adj, 0) // default partitioning: 8×GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	ws := graphmat.NewWorkspace[uint32, uint32](int(g.NumVertices()), graphmat.Bitvector)

	// measure runs `reps` consecutive traversals and returns the best round
	// of three, plus the (bit-compared) distances and stats of the last run.
	measure := func(root uint32, mode graphmat.Mode, reps int) (time.Duration, []uint32, graphmat.Stats) {
		var dist []uint32
		var stats graphmat.Stats
		best := time.Duration(math.MaxInt64)
		for round := 0; round < 3; round++ {
			start := time.Now()
			for r := 0; r < reps; r++ {
				d, s, err := algorithms.BFSWithWorkspace(g, root, graphmat.Config{Mode: mode}, ws)
				if err != nil {
					t.Fatal(err)
				}
				dist, stats = d, s
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best, dist, stats
	}

	sameDist := func(what string, mode graphmat.Mode, ref, got []uint32, refStats, stats graphmat.Stats) {
		t.Helper()
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("%s BFS dist[%d]: %s=%d pull=%d", what, v, mode, got[v], ref[v])
			}
		}
		if stats.Iterations != refStats.Iterations || stats.EdgesProcessed != refStats.EdgesProcessed ||
			stats.MessagesSent != refStats.MessagesSent || stats.Applies != refStats.Applies {
			t.Errorf("%s BFS stats diverge under %s: %+v vs pull %+v", what, mode, stats, refStats)
		}
	}

	// Identity on the giant component (hub root), all three modes.
	hubPullTime, hubRef, hubRefStats := measure(hub, graphmat.Pull, 1)
	hubAutoTime := time.Duration(0)
	for _, mode := range []graphmat.Mode{graphmat.Push, graphmat.Auto} {
		el, dist, stats := measure(hub, mode, 1)
		sameDist("hub", mode, hubRef, dist, hubRefStats, stats)
		if mode == graphmat.Auto {
			hubAutoTime = el
		}
	}

	// Identity and the ≥2× gate on the sparse-frontier root.
	const reps = 10
	pendPullTime, pendRef, pendRefStats := measure(pendant, graphmat.Pull, reps)
	pendAutoTime := time.Duration(0)
	var pendAutoStats graphmat.Stats
	for _, mode := range []graphmat.Mode{graphmat.Push, graphmat.Auto} {
		el, dist, stats := measure(pendant, mode, reps)
		sameDist("pendant", mode, pendRef, dist, pendRefStats, stats)
		if mode == graphmat.Auto {
			pendAutoTime, pendAutoStats = el, stats
		}
	}

	t.Logf("scale %d (%d procs): hub pull %v auto %v; pendant(×%d) pull %v auto %v (auto pushed %d of %d supersteps)",
		scale, runtime.GOMAXPROCS(0), hubPullTime, hubAutoTime, reps, pendPullTime, pendAutoTime,
		pendAutoStats.PushSupersteps, pendAutoStats.Iterations)

	if timed && pendAutoTime*2 > pendPullTime {
		t.Errorf("sparse-frontier BFS: auto %v not ≥2× faster than pull %v at GOMAXPROCS=%d",
			pendAutoTime, pendPullTime, runtime.GOMAXPROCS(0))
	}
	if timed && hubAutoTime > hubPullTime*2 {
		t.Errorf("hub BFS: auto %v regressed beyond 2× of pull %v", hubAutoTime, hubPullTime)
	}
}
