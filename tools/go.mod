// Tool-dependency module: pins the versions of the lint/vuln binaries CI
// installs, without adding dependencies to the main (zero-dependency) module.
// CI runs `go mod tidy && go install <tool>` in this directory; no go.sum is
// committed because this module is never built offline.
module graphmat/tools

go 1.24

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1 // staticcheck 2025.1.1
)
