//go:build tools

// Package tools anchors the tool dependencies so `go mod tidy` keeps their
// requirements in go.mod (the canonical tools-module pattern). The build tag
// is never satisfied; nothing here compiles into anything.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
