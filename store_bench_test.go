package graphmat_test

import (
	"fmt"
	"testing"

	"graphmat"
	"graphmat/internal/gen"
	"graphmat/internal/graph"
)

// Store-side benchmarks: the cost of landing an update batch as delta
// overlays (BenchmarkApplyEdges) and of folding the overlay back into the
// base through the parallel rebuild (BenchmarkCompaction). These are the
// BENCH_store.json baseline. Dataset size follows GRAPHMAT_BENCH_SHIFT like
// the other benchmarks (default -3 → RMAT scale 11); the batch is 1% of the
// edges, the acceptance test's shape.

// storeBenchFixture builds a Both-direction store and its 1% update batch.
func storeBenchFixture(b *testing.B, compactFraction float64) (*graphmat.Store[uint32, float32], []graphmat.EdgeUpdate) {
	b.Helper()
	scale := 14 + benchShift()
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})
	ops := gen.Updates(adj, gen.UpdateOptions{Count: len(adj.Entries) / 100, DeleteFraction: 0.3, MaxWeight: 255, Seed: 9})
	batch := make([]graphmat.EdgeUpdate, len(ops))
	for i, op := range ops {
		batch[i] = graphmat.EdgeUpdate{Src: op.Src, Dst: op.Dst, Val: op.Weight, Del: op.Del}
	}
	st, err := graphmat.NewStore[uint32](adj, graphmat.Options{
		Directions:      graph.Both,
		CompactFraction: compactFraction,
	})
	if err != nil {
		b.Fatal(err)
	}
	return st, batch
}

// invert flips a batch so applying batch then invert(batch) restores the
// prior live edge set size class: inserts become deletes and vice versa
// (deleted edges are re-inserted with weight 1). Keeps the overlay bounded
// across b.N iterations.
func invert(batch []graphmat.EdgeUpdate) []graphmat.EdgeUpdate {
	out := make([]graphmat.EdgeUpdate, len(batch))
	for i, u := range batch {
		out[i] = graphmat.EdgeUpdate{Src: u.Src, Dst: u.Dst, Val: 1, Del: !u.Del}
	}
	return out
}

func BenchmarkApplyEdges(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			scale := 14 + benchShift()
			adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})
			ops := gen.Updates(adj, gen.UpdateOptions{Count: len(adj.Entries) / 100, DeleteFraction: 0.3, MaxWeight: 255, Seed: 9})
			batch := make([]graphmat.EdgeUpdate, len(ops))
			for i, op := range ops {
				batch[i] = graphmat.EdgeUpdate{Src: op.Src, Dst: op.Dst, Val: op.Weight, Del: op.Del}
			}
			st, err := graphmat.NewStore[uint32](adj, graphmat.Options{
				Directions:      graph.Both,
				Workers:         workers,
				CompactFraction: -1, // measure pure overlay application
			})
			if err != nil {
				b.Fatal(err)
			}
			inverse := invert(batch)
			b.SetBytes(int64(len(batch)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				use := batch
				if i%2 == 1 {
					use = inverse
				}
				if _, err := st.ApplyEdges(use); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompaction(b *testing.B) {
	st, batch := storeBenchFixture(b, -1)
	inverse := invert(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		use := batch
		if i%2 == 1 {
			use = inverse
		}
		if _, err := st.ApplyEdges(use); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st.Compact()
	}
	if st.Stats().OverlayNNZ != 0 {
		b.Fatalf("overlay survived compaction: %+v", st.Stats())
	}
}
