# Targets mirror .github/workflows/ci.yml so a green `make ci` locally means
# a green CI run.

GO ?= go

.PHONY: all build fmt lint graphmatlint staticcheck govulncheck test race bench bench-engine bench-store bench-multi bench-snap fuzz ci

all: build

build:
	$(GO) build ./...
	$(GO) build ./examples/... ./cmd/...

fmt:
	gofmt -w .

# lint = the non-test static gates CI runs: formatting, vet, staticcheck,
# govulncheck and the graphmatlint invariant suite — identical commands to
# the CI steps, so a green `make lint` locally means green lint in CI.
lint: staticcheck govulncheck graphmatlint
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# graphmatlint statically enforces the engine's correctness invariants
# (snapshot pin release, fold determinism, cancellation polling, operator
# purity, hot-path call bans — see internal/lint). It runs through go vet's
# unitchecker protocol so test files are covered and results are cached.
graphmatlint:
	$(GO) install ./cmd/graphmatlint
	$(GO) vet -vettool="$$($(GO) env GOPATH)/bin/graphmatlint" ./...

# CI installs staticcheck at the version pinned in tools/go.mod; locally it
# runs only if already on PATH, so the target works on offline machines.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Same PATH gate as staticcheck: govulncheck needs the network for the vuln
# database, so offline machines skip it and CI enforces it.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

# internal/graph carries the versioned store (snapshot isolation under
# concurrent updates + compaction); algorithms carries the store-backed
# registry instances; bitvec backs every frontier the workers share and gen
# feeds the parallel generators. All matter under -race.
race:
	$(GO) test -race ./internal/core/... ./internal/sparse/... ./internal/distributed/... ./internal/server/... ./internal/graph/... ./internal/bitvec/... ./internal/gen/... ./internal/snap/... ./algorithms/...

# Fuzz smoke over the graph readers: 10s per target (go test takes one
# -fuzz pattern at a time). The targets also assert parallel parse ≡
# sequential parse on every input.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzReadMTX$$' -fuzztime=10s ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzReadEdgeList$$' -fuzztime=10s ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzReadBinary$$' -fuzztime=10s ./internal/graph

# One pass over every benchmark: perf regressions that break a benchmark
# surface as failures-to-run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The engine kernel baseline: the mode {pull, push, auto} × workers {1, 4, 8}
# matrix behind BENCH_engine.json. Real measurement (1s per case), unlike the
# bench smoke.
bench-engine:
	$(GO) test -bench='^BenchmarkEngine' -benchtime=1s -run='^$$' .

# The versioned-store baseline: 1% update-batch application and overlay
# compaction, behind BENCH_store.json. Real measurement (1s per case).
bench-store:
	$(GO) test -bench='^(BenchmarkApplyEdges|BenchmarkCompaction)' -benchtime=1s -run='^$$' .

# The multi-source block-run baseline: k ∈ {1, 8, 32} sources per batched
# BFS/PPR run, behind BENCH_multi.json. Real measurement (1s per case).
bench-multi:
	$(GO) test -bench='^(BenchmarkBatchBFS|BenchmarkBatchPPR)' -benchtime=1s -run='^$$' .

# The persistence baseline: snapshot write / mmap boot / parse+rebuild (the
# restart ratio) plus WAL append and replay, behind BENCH_snap.json. Real
# measurement (1s per case).
bench-snap:
	$(GO) test -bench='^(BenchmarkSnapWrite|BenchmarkSnapBoot|BenchmarkSnapParseBuild)$$' -benchtime=1s -run='^$$' .
	$(GO) test -bench='^BenchmarkWAL' -benchtime=1s -run='^$$' ./internal/snap

ci: build lint test race fuzz bench
