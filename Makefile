# Targets mirror .github/workflows/ci.yml so a green `make ci` locally means
# a green CI run.

GO ?= go

.PHONY: all build fmt lint graphmatlint staticcheck govulncheck test race bench bench-engine bench-engine-record bench-sched bench-store bench-multi bench-snap fuzz kernel-parity ci

all: build

build:
	$(GO) build ./...
	$(GO) build ./examples/... ./cmd/...

fmt:
	gofmt -w .

# lint = the non-test static gates CI runs: formatting, vet, staticcheck,
# govulncheck and the graphmatlint invariant suite — identical commands to
# the CI steps, so a green `make lint` locally means green lint in CI.
lint: staticcheck govulncheck graphmatlint
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# graphmatlint statically enforces the engine's correctness invariants
# (snapshot pin release, fold determinism, cancellation polling, operator
# purity, hot-path call bans — see internal/lint). It runs through go vet's
# unitchecker protocol so test files are covered and results are cached.
graphmatlint:
	$(GO) install ./cmd/graphmatlint
	$(GO) vet -vettool="$$($(GO) env GOPATH)/bin/graphmatlint" ./...

# CI installs staticcheck at the version pinned in tools/go.mod; locally it
# runs only if already on PATH, so the target works on offline machines.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Same PATH gate as staticcheck: govulncheck needs the network for the vuln
# database, so offline machines skip it and CI enforces it.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

# internal/graph carries the versioned store (snapshot isolation under
# concurrent updates + compaction); algorithms carries the store-backed
# registry instances; bitvec backs every frontier the workers share and gen
# feeds the parallel generators. All matter under -race.
race:
	$(GO) test -race ./internal/core/... ./internal/sched/... ./internal/sparse/... ./internal/distributed/... ./internal/server/... ./internal/graph/... ./internal/bitvec/... ./internal/gen/... ./internal/snap/... ./algorithms/...

# Fuzz smoke over the graph readers and the SIMD kernel backends: 10s per
# target (go test takes one -fuzz pattern at a time). The reader targets
# assert parallel parse ≡ sequential parse; the kernel targets assert every
# SIMD backend ≡ the scalar oracle bit for bit.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzReadMTX$$' -fuzztime=10s ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzReadEdgeList$$' -fuzztime=10s ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzReadBinary$$' -fuzztime=10s ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzBitvecWords$$' -fuzztime=10s ./internal/kernels
	$(GO) test -run='^$$' -fuzz='^FuzzDenseFold$$' -fuzztime=10s ./internal/kernels

# The kernel backend parity matrix from CI: the differential suites under
# each backend forced via GRAPHMAT_KERNEL (unsupported names fall back to
# scalar, covering the fallback path).
kernel-parity:
	for backend in scalar avx2 neon; do \
		GRAPHMAT_KERNEL=$$backend $(GO) test -count=1 ./internal/kernels ./internal/bitvec ./internal/core ./algorithms || exit 1; \
	done

# One pass over every benchmark: perf regressions that break a benchmark
# surface as failures-to-run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The engine kernel baseline: the backend {scalar, avx2|neon} × mode
# {pull, push, auto} × workers {1, 4, 8} matrix behind BENCH_engine.json.
# Real measurement (1s per case), unlike the bench smoke.
bench-engine:
	$(GO) test -bench='^BenchmarkEngine' -benchtime=1s -run='^$$' .

# Re-record BENCH_engine.json: runs the same sweep and rewrites the JSON with
# the environment — GOMAXPROCS, CPU feature flags, supported kernel backends
# and the default selection — captured automatically.
bench-engine-record:
	$(GO) run ./cmd/benchrecord -out BENCH_engine.json

# The scheduler runtime microbenches: pool wake vs per-call spawn dispatch
# latency, plus the steal-overhead / balanced pair. -cpu 1,4 exercises both
# the inline single-worker path and real cross-worker stealing.
bench-sched:
	$(GO) test -bench=. -benchtime=1s -run='^$$' -cpu=1,4 ./internal/sched

# The versioned-store baseline: 1% update-batch application and overlay
# compaction, behind BENCH_store.json. Real measurement (1s per case).
bench-store:
	$(GO) test -bench='^(BenchmarkApplyEdges|BenchmarkCompaction)' -benchtime=1s -run='^$$' .

# The multi-source block-run baseline: k ∈ {1, 8, 32} sources per batched
# BFS/PPR run, behind BENCH_multi.json. Real measurement (1s per case).
bench-multi:
	$(GO) test -bench='^(BenchmarkBatchBFS|BenchmarkBatchPPR)' -benchtime=1s -run='^$$' .

# The persistence baseline: snapshot write / mmap boot / parse+rebuild (the
# restart ratio) plus WAL append and replay, behind BENCH_snap.json. Real
# measurement (1s per case).
bench-snap:
	$(GO) test -bench='^(BenchmarkSnapWrite|BenchmarkSnapBoot|BenchmarkSnapParseBuild)$$' -benchtime=1s -run='^$$' .
	$(GO) test -bench='^BenchmarkWAL' -benchtime=1s -run='^$$' ./internal/snap

ci: build lint test kernel-parity race fuzz bench
