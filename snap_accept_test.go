package graphmat_test

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
	"graphmat/internal/graph"
)

// TestSnapshotRestart18 is the persistence acceptance test: booting a
// scale-18 BFS instance from its GMATSNAP snapshot (mmap + zero-copy
// partition assembly) must be ≥10× faster than the cold path it replaces —
// parsing the graph file and rebuilding — at GOMAXPROCS ≥ 8, and the first
// query on the mapped instance must be bit-identical to the on-heap build
// without any rebuild. Short mode and race builds scale the graph down (the
// identity checks still run); the timing gate applies only where the
// speedup is promised.
func TestSnapshotRestart18(t *testing.T) {
	scale, timed := 18, true
	if runtime.GOMAXPROCS(0) < 8 || runtime.NumCPU() < 8 {
		scale, timed = 15, false
	}
	if raceEnabled {
		scale, timed = 13, false
	}
	if testing.Short() {
		scale, timed = 12, false
	}

	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})
	dir := t.TempDir()

	// The cold path: the graph file a daemon without -data-dir reboots from.
	// GMATBIN2 is the fastest format we parse — generous to the side being
	// beaten.
	binPath := filepath.Join(dir, "g.bin")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary2(f, adj, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec, _ := algorithms.Lookup("bfs")
	parseAndBuild := func() (algorithms.Instance, time.Duration) {
		start := time.Now()
		loaded, err := graphmat.LoadFileOptions(binPath, graphmat.LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		inst, err := spec.Build(loaded, 0)
		if err != nil {
			t.Fatal(err)
		}
		return inst, time.Since(start)
	}
	heap, parseBuildTime := parseAndBuild()
	if _, again := parseAndBuild(); again < parseBuildTime {
		parseBuildTime = again
	}

	// Checkpoint the built instance — what graphmatd's -data-dir does after
	// registration — then time the restart path: map the file and assemble.
	img, err := heap.SnapImage(1)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "g.snap")
	if err := graphmat.WriteSnap(snapPath, img); err != nil {
		t.Fatal(err)
	}
	boot := func() (*graphmat.SnapFile, algorithms.Instance, time.Duration) {
		start := time.Now()
		sf, err := graphmat.OpenSnap(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := spec.Open(sf.Image())
		if err != nil {
			t.Fatal(err)
		}
		return sf, inst, time.Since(start)
	}
	sf, mapped, bootTime := boot()
	defer sf.Close()
	if sf2, _, again := boot(); true {
		sf2.Close()
		if again < bootTime {
			bootTime = again
		}
	}

	// First query straight off the mapping: no rebuild may have happened,
	// and the distances must match the on-heap oracle bit for bit.
	if got := mapped.StoreStats(); got.Compactions != 0 {
		t.Fatalf("mapped instance rebuilt before first query: %+v", got)
	}
	if mapped.NumEdges() != heap.NumEdges() {
		t.Fatalf("edge counts diverge: mapped %d vs heap %d", mapped.NumEdges(), heap.NumEdges())
	}
	queryStart := time.Now()
	gotRes, err := mapped.Run(algorithms.Params{Source: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	queryTime := time.Since(queryStart)
	refRes, err := heap.Run(algorithms.Params{Source: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range refRes.Values {
		if math.Float64bits(gotRes.Values[v]) != math.Float64bits(refRes.Values[v]) {
			t.Fatalf("dist[%d]: mapped %v vs heap %v", v, gotRes.Values[v], refRes.Values[v])
		}
	}

	t.Logf("scale %d (%d procs): snapshot boot %v vs parse+build %v (%.1fx); first query %v",
		scale, runtime.GOMAXPROCS(0), bootTime, parseBuildTime,
		float64(parseBuildTime)/float64(bootTime), queryTime)
	if timed && bootTime*10 > parseBuildTime {
		t.Errorf("snapshot boot %v not ≥10× faster than parse+build %v at GOMAXPROCS=%d",
			bootTime, parseBuildTime, runtime.GOMAXPROCS(0))
	}
}
