package graphmat_test

import (
	"math"
	"runtime"
	"testing"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
)

// TestLiveUpdateBFS18 is the store-layer acceptance test: applying a 1%
// edge-update batch to a scale-18 RMAT graph and running BFS on the new
// snapshot must be ≥5× faster than the old path — a full re-ingest of the
// equivalent edge set followed by the same run — at GOMAXPROCS ≥ 8, while
// producing bit-identical results. Short mode and race builds scale the
// graph down (the identity checks still run); the timing gate applies only
// where the speedup is promised.
func TestLiveUpdateBFS18(t *testing.T) {
	scale, timed := 18, true
	if runtime.GOMAXPROCS(0) < 8 || runtime.NumCPU() < 8 {
		scale, timed = 15, false
	}
	if raceEnabled {
		scale, timed = 13, false
	}
	if testing.Short() {
		scale, timed = 12, false
	}

	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})
	ops := gen.Updates(adj, gen.UpdateOptions{
		Count:          len(adj.Entries) / 100, // the 1% batch
		DeleteFraction: 0.3,
		MaxWeight:      255,
		Seed:           7,
	})
	batch := make([]graphmat.EdgeUpdate, len(ops))
	for i, op := range ops {
		batch[i] = graphmat.EdgeUpdate{Src: op.Src, Dst: op.Dst, Val: op.Weight, Del: op.Del}
	}

	// The resident service state the update path starts from: a built BFS
	// instance plus the normalized raw master (what graphmatd holds per
	// registered graph).
	spec, _ := algorithms.Lookup("bfs")
	live, err := spec.Build(adj.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	master := adj.Clone()
	graphmat.NormalizeAdjacency(master, 0)

	// Live path, timed end to end: master merge + translation + delta
	// apply...
	applyStart := time.Now()
	master, err = graphmat.ApplyToAdjacency(master, batch)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := live.ApplyUpdates(batch, algorithms.NewRawEdgeLookup(master))
	if err != nil {
		t.Fatal(err)
	}
	applyTime := time.Since(applyStart)
	if upd.Epoch != 1 || upd.Inserted == 0 || upd.Deleted == 0 {
		t.Fatalf("batch did not mix inserts and deletes: %+v", upd)
	}

	// ...plus a BFS on the new snapshot. The serving workload this exists
	// for is the low-reach root (the sparse-frontier regime the kernel
	// layer optimizes); the hub BFS below re-checks identity on the giant
	// component without a gate, since its dense supersteps dominate both
	// paths equally.
	outDeg := make([]uint32, master.NRows)
	for _, e := range master.Entries {
		outDeg[e.Row]++
	}
	hub, quiet := uint32(0), uint32(0)
	for v := range outDeg {
		if outDeg[v] > outDeg[hub] {
			hub = uint32(v)
		}
		// Lowest positive degree: a real but low-reach traversal root.
		if outDeg[v] > 0 && (outDeg[quiet] == 0 || outDeg[v] < outDeg[quiet]) {
			quiet = uint32(v)
		}
	}
	runLive := func(root uint32) ([]float64, time.Duration) {
		start := time.Now()
		res, err := live.Run(algorithms.Params{Source: root}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Values, time.Since(start)
	}
	liveDist, liveRunTime := runLive(quiet)

	// Old path, timed the same way: full re-ingest of the equivalent edge
	// set (preprocessing + parallel build) + the same run. Best of two
	// rounds, to be generous to the side being beaten.
	reingest := func() (algorithms.Instance, time.Duration) {
		start := time.Now()
		inst, err := spec.Build(master.Clone(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return inst, time.Since(start)
	}
	fresh, buildTime := reingest()
	if _, again := reingest(); again < buildTime {
		buildTime = again
	}
	// Warm-up run first (scratch allocation), then the timed one — generous
	// to the path being beaten.
	if _, err := fresh.Run(algorithms.Params{Source: quiet}, nil); err != nil {
		t.Fatal(err)
	}
	freshStart := time.Now()
	freshRes, err := fresh.Run(algorithms.Params{Source: quiet}, nil)
	if err != nil {
		t.Fatal(err)
	}
	freshRunTime := time.Since(freshStart)

	// Identity: quiet-root and hub-root BFS, bit for bit.
	if live.NumEdges() != fresh.NumEdges() {
		t.Fatalf("edge counts diverge: live %d vs fresh %d", live.NumEdges(), fresh.NumEdges())
	}
	for v := range freshRes.Values {
		if math.Float64bits(liveDist[v]) != math.Float64bits(freshRes.Values[v]) {
			t.Fatalf("quiet-root dist[%d]: live %v vs fresh %v", v, liveDist[v], freshRes.Values[v])
		}
	}
	liveHub, _ := runLive(hub)
	freshHub, err := fresh.Run(algorithms.Params{Source: hub}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range freshHub.Values {
		if math.Float64bits(liveHub[v]) != math.Float64bits(freshHub.Values[v]) {
			t.Fatalf("hub dist[%d]: live %v vs fresh %v", v, liveHub[v], freshHub.Values[v])
		}
	}

	liveTotal := applyTime + liveRunTime
	oldTotal := buildTime + freshRunTime
	t.Logf("scale %d (%d procs): live apply %v + run %v = %v; re-ingest %v + run %v = %v (%.1fx, batch %d, overlay %d)",
		scale, runtime.GOMAXPROCS(0), applyTime, liveRunTime, liveTotal,
		buildTime, freshRunTime, oldTotal,
		float64(oldTotal)/float64(liveTotal), len(batch), live.StoreStats().OverlayNNZ)
	if timed && liveTotal*5 > oldTotal {
		t.Errorf("live update path %v not ≥5× faster than re-ingest %v at GOMAXPROCS=%d",
			liveTotal, oldTotal, runtime.GOMAXPROCS(0))
	}
}
