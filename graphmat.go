// Package graphmat is a Go reproduction of GraphMat (Sundaram et al.,
// VLDB 2015): a graph analytics framework that executes vertex programs on a
// generalized sparse matrix–vector multiplication backend, combining the
// productivity of "think like a vertex" programming with the performance of
// optimized sparse linear algebra.
//
// A vertex program implements the Program interface — SendMessage,
// ProcessMessage, Reduce, Apply — and runs with Run:
//
//	g, _ := graphmat.New[float32, float32](edges, graphmat.Options{})
//	g.SetAllProps(math.MaxFloat32)
//	g.SetProp(src, 0)
//	g.SetActive(src)
//	graphmat.Run(g, ssspProgram{}, graphmat.Config{})
//
// Runs are sessions: RunContext executes the same superstep loop under a
// context.Context, so callers can cancel abandoned work, bound wall time
// (context deadlines or WithMaxDuration), and watch progress with a
// per-superstep observer:
//
//	stats, err := graphmat.RunContext(ctx, g, prog, cfg, nil,
//		graphmat.WithObserver(func(info graphmat.IterationInfo) error {
//			log.Printf("superstep %d: %d active", info.Iteration, info.Active)
//			return nil // any error stops the run
//		}))
//
// Every run ends with a typed reason in Stats.Reason — Converged,
// MaxIterations, Canceled, DeadlineExceeded or StoppedByObserver — and
// canceled runs still return the partial statistics of the work done.
//
// Ready-made programs for PageRank, BFS, SSSP, triangle counting and
// collaborative filtering live in the algorithms subpackage. The engine,
// matrix formats and workload generators are implemented in internal
// packages; this package is the supported surface.
package graphmat

import (
	"context"
	"io"
	"time"

	"graphmat/internal/core"
	"graphmat/internal/graph"
	"graphmat/internal/snap"
	"graphmat/internal/sparse"
)

// VertexID identifies a vertex; graphs hold at most 2³²−1 vertices.
type VertexID = core.VertexID

// Program is the GraphMat vertex-program contract; see core.Program.
type Program[V, E, M, R any] = core.Program[V, E, M, R]

// DstIndependent is the optional marker for programs whose ProcessMessage
// ignores the destination vertex property; implementing it removes one
// random memory stream from the SpMV inner loop. See core.DstIndependent.
type DstIndependent = core.DstIndependent

// SumFoldF64 is the optional marker for programs whose fold is the
// (+, passthrough) monoid over float64 (PageRank-shaped folds); implementing
// it routes the SpMV/SpMM column folds through the arch-dispatched SIMD
// kernel backends. See core.SumFoldF64.
type SumFoldF64 = core.SumFoldF64

// MinPlusFoldF32 is the optional marker for programs whose fold is the
// float32 (min, +) tropical semiring (SSSP-shaped folds); implementing it
// routes the SpMV/SpMM column folds through the kernel backends' fused
// path-fold primitives. See core.MinPlusFoldF32.
type MinPlusFoldF32 = core.MinPlusFoldF32

// MaxMinFoldF32 is the optional marker for programs whose fold is the
// float32 (max, min) bottleneck semiring (widest-path-shaped folds). See
// core.MaxMinFoldF32.
type MaxMinFoldF32 = core.MaxMinFoldF32

// Graph is a directed property graph with vertex properties V and edge
// values E.
type Graph[V, E any] = graph.Graph[V, E]

// Options configures graph construction (partition count, traversal
// directions).
type Options = graph.Options

// Direction selects which edges messages scatter along.
type Direction = graph.Direction

// Scatter directions.
const (
	Out  = graph.Out
	In   = graph.In
	Both = graph.Both
)

// Config controls an engine run; the zero value is the fully optimized
// configuration on all cores.
type Config = core.Config

// Stats reports what a run did.
type Stats = core.Stats

// SchedStats is the scheduler-runtime slice of Stats: worker count, tasks
// dispatched, steals, and busy nanoseconds for one run.
type SchedStats = core.SchedStats

// Runtime selects how a run's parallel phases execute: Pooled (the default)
// dispatches onto the process-wide persistent work-stealing pool; PerCall
// spawns goroutines per phase, the pre-scheduler baseline kept for
// ablation.
type Runtime = core.Runtime

// Runtime values.
const (
	Pooled  = core.Pooled
	PerCall = core.PerCall
)

// VectorKind selects the sparse message-vector representation.
type VectorKind = core.VectorKind

// Engine ablation knobs (see the Figure 7 reproduction).
const (
	Bitvector = core.Bitvector
	Sorted    = core.Sorted
	Inlined   = core.Inlined
	Boxed     = core.Boxed
	Dynamic   = core.Dynamic
	Static    = core.Static
)

// Mode selects the SpMV kernel backend; see Config.Mode. All modes produce
// bit-identical results — like Threads, Mode is a performance knob only.
type Mode = core.Mode

// Kernel modes: Auto (the default) switches between the frontier-driven push
// SpMSpV and the column-driven pull probe per superstep by frontier density;
// Pull and Push force one kernel.
const (
	Auto = core.Auto
	Pull = core.Pull
	Push = core.Push
)

// ParseMode resolves a kernel-mode name ("auto", "pull", "push"); the empty
// string means Auto.
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// DefaultPushThreshold is the Auto density cutoff used when
// Config.PushThreshold is zero.
const DefaultPushThreshold = core.DefaultPushThreshold

// COO is an edge-triple list with explicit dimensions, the interchange
// format accepted by New.
type COO[E any] = sparse.COO[E]

// Triple is one (src, dst, value) edge.
type Triple[E any] = sparse.Triple[E]

// Vector is a sparse vector masked by a bitvector, usable with SpMV.
type Vector[T any] = sparse.Vector[T]

// NewCOO returns an empty edge list over n vertices.
func NewCOO[E any](n uint32) *COO[E] {
	return sparse.NewCOO[E](n, n)
}

// NewVector returns an empty sparse vector of dimension n.
func NewVector[T any](n int) *Vector[T] {
	return sparse.NewVector[T](n)
}

// New builds a graph from adjacency triples (Triple.Row = source,
// Triple.Col = destination). The input is consumed: sorted and deduplicated
// in place.
func New[V, E any](adj *COO[E], opts Options) (*Graph[V, E], error) {
	return graph.NewFromCOO[V, E](adj, opts)
}

// Run executes a vertex program until convergence or cfg.MaxIterations. It
// is RunContext without a context: it cannot be canceled and the error is
// always nil.
func Run[V, E, M, R any, P Program[V, E, M, R]](g *Graph[V, E], p P, cfg Config) (Stats, error) {
	return core.Run(g, p, cfg)
}

// StopReason classifies why a run ended; see Stats.Reason.
type StopReason = core.StopReason

// Stop reasons recorded in Stats.Reason.
const (
	ReasonNone        = core.ReasonNone
	Converged         = core.Converged
	MaxIterations     = core.MaxIterations
	Canceled          = core.Canceled
	DeadlineExceeded  = core.DeadlineExceeded
	StoppedByObserver = core.StoppedByObserver
)

// IterationInfo is the per-superstep progress report delivered to observers.
type IterationInfo = core.IterationInfo

// Observer is a per-superstep callback; a non-nil error return stops the run
// with reason StoppedByObserver.
type Observer = core.Observer

// RunOption configures a RunContext call.
type RunOption = core.RunOption

// WithObserver invokes fn after every superstep with that superstep's
// progress (iteration number, frontier size, messages sent, wall time). An
// error return stops the run.
func WithObserver(fn Observer) RunOption { return core.WithObserver(fn) }

// WithMaxDuration bounds the run's wall time; expiry stops the run promptly
// — even mid-superstep — with reason DeadlineExceeded.
func WithMaxDuration(d time.Duration) RunOption { return core.WithMaxDuration(d) }

// RunContext executes a vertex program under ctx: cancellation and deadlines
// stop the run cooperatively, checked between supersteps and inside the
// parallel partition loops so long SpMVs abort promptly. ws may be nil (the
// engine allocates scratch) or caller-managed. Stats.Reason records why the
// run ended; the error is nil for Converged/MaxIterations, ctx.Err() for
// Canceled/DeadlineExceeded, and the observer's error for StoppedByObserver.
func RunContext[V, E, M, R any, P Program[V, E, M, R]](
	ctx context.Context, g *Graph[V, E], p P, cfg Config, ws *Workspace[M, R], opts ...RunOption,
) (Stats, error) {
	return core.RunContext[V, E, M, R, P](ctx, g, p, cfg, ws, opts...)
}

// Workspace is reusable engine scratch (the C++ API's graph_program_init /
// graph_program_clear); see core.Workspace.
type Workspace[M, R any] = core.Workspace[M, R]

// NewWorkspace allocates engine scratch for n-vertex graphs. The vector kind
// must match the Config the workspace will run under (Bitvector unless the
// naive ablation mode is requested).
func NewWorkspace[M, R any](n int, kind VectorKind) *Workspace[M, R] {
	return core.NewWorkspace[M, R](n, kind)
}

// RunWithWorkspace is Run with caller-managed scratch, for drivers that
// invoke the engine repeatedly.
func RunWithWorkspace[V, E, M, R any, P Program[V, E, M, R]](g *Graph[V, E], p P, cfg Config, ws *Workspace[M, R]) (Stats, error) {
	return core.RunWithWorkspace(g, p, cfg, ws)
}

// Semiring is the explicit (add, mul, identity) contract of a program's
// message fold — the GraphBLAS view the multi-source engine requires. See
// core.Semiring for the exact contract tying it to Program.
type Semiring[E, M, R any] = core.Semiring[E, M, R]

// BlockProgram is a vertex program that also exposes its fold as a Semiring,
// qualifying it for the multi-source block engine. When the contract holds, a
// k-source block run is bit-identical per source to k scalar runs.
type BlockProgram[V, E, M, R any] = core.BlockProgram[V, E, M, R]

// MaxBlockSources is the widest source block one engine run accepts (64, so
// per-vertex column masks are single machine words). Wider batches split at
// the algorithms layer.
const MaxBlockSources = core.MaxBlockSources

// BlockState carries the per-(vertex, source) properties and active set of a
// multi-source run; it replaces the graph's scalar vertex state, so block and
// scalar runs can share one pinned snapshot.
type BlockState[V any] = core.BlockState[V]

// NewBlockState allocates vertex state for a k-source run over n vertices
// (1 <= k <= MaxBlockSources).
func NewBlockState[V any](n, k int) *BlockState[V] { return core.NewBlockState[V](n, k) }

// BlockWorkspace is the block engine's reusable n×k scratch.
type BlockWorkspace[M, R any] = core.BlockWorkspace[M, R]

// NewBlockWorkspace allocates block scratch for k-source runs over n-vertex
// graphs.
func NewBlockWorkspace[M, R any](n, k int) *BlockWorkspace[M, R] {
	return core.NewBlockWorkspace[M, R](n, k)
}

// RunBlock executes a BlockProgram over the k source columns of st until
// every column converges; it is RunBlockContext without a context.
func RunBlock[V, E, M, R any, P BlockProgram[V, E, M, R]](
	g *Graph[V, E], p P, st *BlockState[V], cfg Config, ws *BlockWorkspace[M, R],
) (Stats, error) {
	return core.RunBlock[V, E, M, R, P](g, p, st, cfg, ws)
}

// RunBlockContext is the multi-source analogue of RunContext: one n×k SpMM
// sweep per superstep advances up to 64 independent source columns, each
// column dropping out of the sweep as it converges. See core.RunBlockContext.
func RunBlockContext[V, E, M, R any, P BlockProgram[V, E, M, R]](
	ctx context.Context, g *Graph[V, E], p P, st *BlockState[V], cfg Config, ws *BlockWorkspace[M, R], opts ...RunOption,
) (Stats, error) {
	return core.RunBlockContext[V, E, M, R, P](ctx, g, p, st, cfg, ws, opts...)
}

// SpMV performs a single generalized sparse matrix–sparse vector
// multiplication with the program's ProcessMessage/Reduce (the Figure 1
// primitive), without the surrounding superstep loop. It dispatches through
// the same kernel layer as the engine: cfg.Mode selects pull, push, or a
// per-call Auto density decision.
func SpMV[V, E, M, R any, P Program[V, E, M, R]](g *Graph[V, E], x *Vector[M], p P, cfg Config) *Vector[R] {
	return core.SpMV(g, x, p, cfg)
}

// SpMVContext is SpMV under a context: cancellation aborts the partition
// loop cooperatively and the partial result is returned with ctx.Err().
func SpMVContext[V, E, M, R any, P Program[V, E, M, R]](ctx context.Context, g *Graph[V, E], x *Vector[M], p P, cfg Config) (*Vector[R], error) {
	return core.SpMVContext[V, E, M, R, P](ctx, g, x, p, cfg)
}

// LoadFile reads a graph file (.mtx Matrix Market, .bin binary edge list —
// either GMATBIN version — or whitespace text edge list) into adjacency
// triples. Parsing is chunk-parallel across all cores and bit-identical to a
// sequential load; use LoadFileOptions to control the worker count.
func LoadFile(path string) (*COO[float32], error) {
	return graph.LoadFile(path)
}

// LoadOptions configures graph file loading (ingestion parallelism, edge-list
// minimum vertex count).
type LoadOptions = graph.LoadOptions

// LoadFileOptions is LoadFile with explicit ingestion options.
func LoadFileOptions(path string, opt LoadOptions) (*COO[float32], error) {
	return graph.LoadFileOptions(path, opt)
}

// Store is a versioned mutable graph: immutable epoch-numbered snapshots
// advanced by batched edge updates, with refcounted pinning and automatic
// compaction of the delta overlay back into the base structures. See
// graph.Store.
type Store[V, E any] = graph.Store[V, E]

// Snapshot is one pinned, immutable version of a store's graph.
type Snapshot[V, E any] = graph.Snapshot[V, E]

// Update is one edge mutation: an upsert (insert or value replace) or, with
// Del set, a delete. Within a batch the last mutation of a (src, dst) key
// wins.
type Update[E any] = graph.Update[E]

// EdgeUpdate is the float32-weighted update the ready-made algorithms,
// generators and wire formats use.
type EdgeUpdate = graph.Update[float32]

// ApplyResult reports what one update batch did (epoch produced, edges
// inserted/deleted/updated, whether compaction ran).
type ApplyResult = graph.ApplyResult

// StoreStats is a point-in-time view of a store for observability.
type StoreStats = graph.StoreStats

// DefaultCompactFraction is the overlay-to-base size ratio beyond which
// ApplyEdges compacts when Options.CompactFraction is zero.
const DefaultCompactFraction = graph.DefaultCompactFraction

// NewStore builds a versioned store whose epoch-0 snapshot is the graph New
// would build from the same input (the adjacency is consumed the same way).
func NewStore[V, E any](adj *COO[E], opts Options) (*Store[V, E], error) {
	return graph.NewStore[V, E](adj, opts)
}

// ParseUpdates parses an edge-update stream — NDJSON ({"src","dst","weight",
// "del"} per line) or the text form ([add|del] src dst [weight]) — sniffing
// the format from the first byte.
func ParseUpdates(data []byte) ([]EdgeUpdate, error) { return graph.ParseUpdates(data) }

// WriteUpdates writes an edge-update stream as NDJSON.
func WriteUpdates(w io.Writer, ups []EdgeUpdate) error { return graph.WriteUpdates(w, ups) }

// LoadUpdatesFile reads and parses an update-stream file (format sniffed).
func LoadUpdatesFile(path string) ([]EdgeUpdate, error) { return graph.LoadUpdatesFile(path) }

// NormalizeAdjacency sorts adjacency triples row-major and deduplicates
// keep-first in place — the canonical master-copy form the update helpers
// below expect. Normalizing before any algorithm build changes nothing
// downstream (builders deduplicate the same way).
func NormalizeAdjacency[E any](adj *COO[E], workers int) { graph.NormalizeAdjacency(adj, workers) }

// ApplyToAdjacency returns a new adjacency equal to a normalized adj with
// the update batch applied (upserts replace or append, deletes remove). adj
// is not modified.
func ApplyToAdjacency[E any](adj *COO[E], batch []Update[E]) (*COO[E], error) {
	return graph.ApplyToAdjacency(adj, batch)
}

// LookupEdge binary-searches a normalized adjacency for edge src→dst.
func LookupEdge[E any](adj *COO[E], src, dst uint32) (E, bool) {
	return graph.LookupEdge(adj, src, dst)
}

// SnapImage is the raw-array form of one graph snapshot in the GMATSNAP
// persistence format (internal/snap): dimensions, epoch/tag marks, forward
// (and, with the In direction, backward) triples, degree arrays, and every
// per-partition DCSC array. Images round-trip through WriteSnap/OpenSnap;
// when read back from an mmap'd file the arrays are zero-copy views into
// the mapping.
type SnapImage = snap.Image

// SnapFile is an opened GMATSNAP snapshot: the mapping plus its zero-copy
// SnapImage. Long-lived owners keep it for the process lifetime (views must
// outlive every graph using them); short-lived ones Close it.
type SnapFile = snap.Snapshot

// SnapInfo summarizes an opened snapshot's header and section layout.
type SnapInfo = snap.Info

// StoreImage captures a persistable point-in-time image of the store's
// current graph, compacting any pending overlay first. tag is a caller
// consistency mark stored verbatim in the image (the serving layer stamps
// the master-copy epoch the image reflects).
func StoreImage[V any](s *Store[V, float32], tag uint64) (*SnapImage, error) {
	return graph.StoreImage[V](s, tag)
}

// NewStoreFromImage rebuilds a versioned store from a snapshot image at the
// image's epoch, adopting the image's arrays without copying or rebuilding
// — the zero-copy boot path. The on-heap build (NewStore over the original
// input) is the differential oracle for it.
func NewStoreFromImage[V any](img *SnapImage) (*Store[V, float32], error) {
	return graph.NewStoreFromImage[V](img)
}

// WriteSnap serializes an image to path crash-safely (temp file, fsync,
// rename, directory fsync).
func WriteSnap(path string, img *SnapImage) error { return snap.Write(path, img) }

// OpenSnap maps a GMATSNAP file and returns it with O(header) validation;
// the image's arrays are views into the mapping. Use SnapFile.Verify for
// the deep payload-CRC pass.
func OpenSnap(path string) (*SnapFile, error) { return snap.Open(path) }
