module graphmat

go 1.24
