package graphmat_test

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"

	"graphmat/algorithms"
	"graphmat/internal/gen"
)

// TestBatchPPR18 is the multi-source acceptance test: answering 32
// personalized-PageRank queries as one block batch on a scale-18 RMAT graph
// must be ≥4× faster than answering them sequentially at GOMAXPROCS ≥ 8,
// while every column stays bit-identical to its solo run. The batch shares
// one adjacency sweep across all still-unconverged personalization vectors
// per outer iteration, so the win is the paper's SpMV→SpMM amortization —
// not an approximation. Short mode and race builds scale the graph down
// (the identity checks still run); the timing gate applies only where the
// speedup is promised.
func TestBatchPPR18(t *testing.T) {
	scale, timed := 18, true
	if runtime.GOMAXPROCS(0) < 8 || runtime.NumCPU() < 8 {
		scale, timed = 14, false
	}
	if raceEnabled {
		scale, timed = 12, false
	}
	if testing.Short() {
		scale, timed = 11, false
	}

	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831})
	g, err := algorithms.NewPersonalizedPageRankGraph(adj, 0)
	if err != nil {
		t.Fatal(err)
	}

	// 32 sources spread across the vertex range, skipping isolated vertices
	// so every column does real propagation work.
	const k = 32
	n := g.NumVertices()
	sources := make([]uint32, 0, k)
	for v := uint32(0); v < n && len(sources) < k; v += n / k {
		for u := v; u < n; u++ {
			if g.OutDegree(u) > 0 {
				sources = append(sources, u)
				break
			}
		}
	}
	if len(sources) < k {
		t.Fatalf("found only %d non-isolated sources", len(sources))
	}

	ctx := context.Background()
	opts := []algorithms.Option{algorithms.WithIterations(20)}

	// Warm both paths (scratch allocation) before timing anything.
	if _, _, err := algorithms.RunPersonalizedPageRank(ctx, g, sources[:1], opts...); err != nil {
		t.Fatal(err)
	}
	if _, _, err := algorithms.RunPersonalizedPageRankBatch(ctx, g, sources[:2], opts...); err != nil {
		t.Fatal(err)
	}

	// Sequential oracle: one engine run per source.
	seqStart := time.Now()
	solo := make([][]float64, k)
	for i, src := range sources {
		ranks, _, err := algorithms.RunPersonalizedPageRank(ctx, g, []uint32{src}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = ranks
	}
	seqTime := time.Since(seqStart)

	// Batched path: all k personalization vectors in one block run.
	batchStart := time.Now()
	batch, stats, err := algorithms.RunPersonalizedPageRankBatch(ctx, g, sources, opts...)
	if err != nil {
		t.Fatal(err)
	}
	batchTime := time.Since(batchStart)

	// Bit-identity per source: batching is a throughput knob, never a
	// numerical one.
	for i := range sources {
		for v := range solo[i] {
			if math.Float64bits(batch[i][v]) != math.Float64bits(solo[i][v]) {
				t.Fatalf("source %d rank[%d]: batch %v vs solo %v",
					sources[i], v, batch[i][v], solo[i][v])
			}
		}
	}

	t.Logf("scale %d (%d procs): %d sequential PPR runs %v; batched %v over %d supersteps (%.1fx)",
		scale, runtime.GOMAXPROCS(0), k, seqTime, batchTime, stats.Iterations,
		float64(seqTime)/float64(batchTime))
	if timed && batchTime*4 > seqTime {
		t.Errorf("batched PPR %v not ≥4× faster than %d sequential runs %v at GOMAXPROCS=%d",
			batchTime, k, seqTime, runtime.GOMAXPROCS(0))
	}
}
