package graphmat_test

import (
	"os"
	"path/filepath"
	"testing"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
	"graphmat/internal/graph"
)

// Snapshot benchmarks: the cost of checkpointing a built instance to a
// GMATSNAP file (BenchmarkSnapWrite), of booting one back as an mmap'd
// zero-copy instance (BenchmarkSnapBoot), and — for the ratio the restart
// acceptance test gates on — the parse-and-rebuild path the snapshot
// replaces (BenchmarkSnapParseBuild). These are the BENCH_snap.json
// baseline. Dataset size follows GRAPHMAT_BENCH_SHIFT like the other
// benchmarks (default -3 → RMAT scale 11).

func snapBenchAdj(b *testing.B) *graphmat.COO[float32] {
	b.Helper()
	scale := 14 + benchShift()
	return gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})
}

func snapBenchImage(b *testing.B) *graphmat.SnapImage {
	b.Helper()
	spec, _ := algorithms.Lookup("bfs")
	inst, err := spec.Build(snapBenchAdj(b), 0)
	if err != nil {
		b.Fatal(err)
	}
	img, err := inst.SnapImage(1)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

func BenchmarkSnapWrite(b *testing.B) {
	img := snapBenchImage(b)
	path := filepath.Join(b.TempDir(), "g.snap")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphmat.WriteSnap(path, img); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if fi, err := os.Stat(path); err == nil {
		b.SetBytes(fi.Size())
	}
}

func BenchmarkSnapBoot(b *testing.B) {
	img := snapBenchImage(b)
	path := filepath.Join(b.TempDir(), "g.snap")
	if err := graphmat.WriteSnap(path, img); err != nil {
		b.Fatal(err)
	}
	spec, _ := algorithms.Lookup("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf, err := graphmat.OpenSnap(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spec.Open(sf.Image()); err != nil {
			b.Fatal(err)
		}
		sf.Close()
	}
}

func BenchmarkSnapParseBuild(b *testing.B) {
	adj := snapBenchAdj(b)
	path := filepath.Join(b.TempDir(), "g.bin")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteBinary2(f, adj, 0); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	spec, _ := algorithms.Lookup("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := graphmat.LoadFileOptions(path, graphmat.LoadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spec.Build(loaded, 0); err != nil {
			b.Fatal(err)
		}
	}
}
