//go:build !race

package graphmat_test

const raceEnabled = false
