//go:build race

package graphmat_test

// raceEnabled lets heavyweight tests scale down under the race detector,
// whose memory and time multipliers make paper-scale runs impractical.
const raceEnabled = true
