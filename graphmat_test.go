package graphmat_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"graphmat"
)

// fig3Edges builds the paper's Figure 3 example graph.
func fig3Edges() *graphmat.COO[float32] {
	edges := graphmat.NewCOO[float32](5)
	edges.Add(0, 1, 1)
	edges.Add(0, 2, 3)
	edges.Add(0, 3, 2)
	edges.Add(1, 2, 1)
	edges.Add(2, 3, 2)
	edges.Add(3, 4, 2)
	edges.Add(4, 0, 4)
	return edges
}

// publicSSSP is the appendix program written against the public API only.
type publicSSSP struct{}

func (publicSSSP) SendMessage(_ graphmat.VertexID, prop float32) (float32, bool) {
	return prop, true
}
func (publicSSSP) ProcessMessage(m, w float32, _ float32) float32 { return m + w }
func (publicSSSP) Reduce(a, b float32) float32                    { return min(a, b) }
func (publicSSSP) Apply(r float32, _ graphmat.VertexID, prop *float32) bool {
	if r < *prop {
		*prop = r
		return true
	}
	return false
}
func (publicSSSP) Direction() graphmat.Direction { return graphmat.Out }

func TestPublicAPIRoundTrip(t *testing.T) {
	g, err := graphmat.New[float32](fig3Edges(), graphmat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(math.MaxFloat32)
	g.SetProp(0, 0)
	g.SetActive(0)
	stats, _ := graphmat.Run(g, publicSSSP{}, graphmat.Config{})
	want := []float32{0, 1, 2, 2, 4}
	for v, d := range want {
		if g.Prop(uint32(v)) != d {
			t.Errorf("dist[%d] = %v, want %v", v, g.Prop(uint32(v)), d)
		}
	}
	if stats.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

func TestPublicAPIAblationKnobs(t *testing.T) {
	// All four knob combinations must agree (the Figure 7 configurations
	// change performance, never results).
	configs := []graphmat.Config{
		{Vector: graphmat.Bitvector, Dispatch: graphmat.Inlined},
		{Vector: graphmat.Sorted, Dispatch: graphmat.Inlined},
		{Vector: graphmat.Bitvector, Dispatch: graphmat.Boxed},
		{Vector: graphmat.Sorted, Dispatch: graphmat.Boxed, Schedule: graphmat.Static},
	}
	for _, cfg := range configs {
		g, err := graphmat.New[float32](fig3Edges(), graphmat.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g.SetAllProps(math.MaxFloat32)
		g.SetProp(0, 0)
		g.SetActive(0)
		graphmat.Run(g, publicSSSP{}, cfg)
		if g.Prop(4) != 4 {
			t.Errorf("cfg %+v: dist[E] = %v, want 4", cfg, g.Prop(4))
		}
	}
}

// inDegree exercises the public SpMV (Figure 1).
type inDegree struct{}

func (inDegree) SendMessage(_ graphmat.VertexID, _ uint32) (uint32, bool) { return 1, true }
func (inDegree) ProcessMessage(m uint32, _ float32, _ uint32) uint32      { return m }
func (inDegree) Reduce(a, b uint32) uint32                                { return a + b }
func (inDegree) Apply(r uint32, _ graphmat.VertexID, prop *uint32) bool   { *prop = r; return false }
func (inDegree) Direction() graphmat.Direction                            { return graphmat.Out }

func TestPublicSpMVFigure1(t *testing.T) {
	edges := graphmat.NewCOO[float32](4)
	edges.Add(0, 1, 1)
	edges.Add(0, 2, 1)
	edges.Add(1, 3, 1)
	edges.Add(2, 3, 1)
	g, err := graphmat.New[uint32](edges, graphmat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := graphmat.NewVector[uint32](4)
	for v := uint32(0); v < 4; v++ {
		x.Set(v, 1)
	}
	y := graphmat.SpMV(g, x, inDegree{}, graphmat.Config{})
	for v, want := range []uint32{0, 1, 1, 2} {
		got, ok := y.GetChecked(uint32(v))
		if want == 0 && ok {
			t.Errorf("y[%d] unexpectedly present", v)
		}
		if want > 0 && (!ok || got != want) {
			t.Errorf("y[%d] = %d (%v), want %d", v, got, ok, want)
		}
	}
}

func TestPublicLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1 2.5\n1 2 1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	coo, err := graphmat.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if coo.NRows != 3 || len(coo.Entries) != 2 {
		t.Errorf("loaded %d vertices %d edges", coo.NRows, len(coo.Entries))
	}
}
