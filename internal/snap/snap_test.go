package snap_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"graphmat/internal/snap"
	"graphmat/internal/sparse"
)

// rawImage is a master-copy style image: dims and forward triples only.
func rawImage() *snap.Image {
	return &snap.Image{
		Epoch:  7,
		Tag:    7,
		NRows:  4,
		NCols:  4,
		NEdges: 3,
		Fwd: []sparse.Triple[float32]{
			{Row: 0, Col: 1, Val: 1.5},
			{Row: 1, Col: 2, Val: -2},
			{Row: 3, Col: 0, Val: 0.25},
		},
	}
}

// propImage is a hand-built property-graph image with two out partitions,
// exercising every section kind except the In direction.
func propImage() *snap.Image {
	return &snap.Image{
		Epoch:      3,
		Tag:        5,
		NRows:      4,
		NCols:      4,
		NEdges:     3,
		Directions: snap.DirsOut,
		Partitions: 2,
		Fwd: []sparse.Triple[float32]{
			{Row: 1, Col: 0, Val: 1},
			{Row: 1, Col: 2, Val: 2},
			{Row: 2, Col: 1, Val: 3},
		},
		OutDeg: []uint32{1, 1, 1, 0},
		InDeg:  []uint32{0, 2, 1, 0},
		Out: []snap.PartImage{
			{
				RowLo: 0, RowHi: 2, AuxShift: 1,
				JC:  []uint32{0, 2},
				CP:  []uint32{0, 1, 2},
				IR:  []uint32{1, 1},
				Val: []float32{1, 2},
				Aux: []uint32{0, 1, 2},
			},
			{
				RowLo: 2, RowHi: 4, AuxShift: 0,
				JC:  []uint32{1},
				CP:  []uint32{0, 1},
				IR:  []uint32{2},
				Val: []float32{3},
				Aux: []uint32{0, 1},
			},
		},
	}
}

// sameImage compares two images for exact content equality (views from a
// mapping compare equal to heap slices holding the same values).
func sameImage(t *testing.T, got, want *snap.Image) {
	t.Helper()
	if got.Epoch != want.Epoch || got.Tag != want.Tag {
		t.Errorf("marks = (%d, %d), want (%d, %d)", got.Epoch, got.Tag, want.Epoch, want.Tag)
	}
	if got.NRows != want.NRows || got.NCols != want.NCols || got.NEdges != want.NEdges {
		t.Errorf("dims = %dx%d/%d, want %dx%d/%d",
			got.NRows, got.NCols, got.NEdges, want.NRows, want.NCols, want.NEdges)
	}
	if got.Directions != want.Directions || got.Partitions != want.Partitions {
		t.Errorf("layout = (%d, %d), want (%d, %d)",
			got.Directions, got.Partitions, want.Directions, want.Partitions)
	}
	if !reflect.DeepEqual(got.Fwd, want.Fwd) {
		t.Errorf("Fwd = %v, want %v", got.Fwd, want.Fwd)
	}
	if !reflect.DeepEqual(got.Bwd, want.Bwd) {
		t.Errorf("Bwd = %v, want %v", got.Bwd, want.Bwd)
	}
	if !reflect.DeepEqual(got.OutDeg, want.OutDeg) || !reflect.DeepEqual(got.InDeg, want.InDeg) {
		t.Errorf("degrees differ: out %v/%v in %v/%v", got.OutDeg, want.OutDeg, got.InDeg, want.InDeg)
	}
	for d, pair := range [][2][]snap.PartImage{{got.Out, want.Out}, {got.In, want.In}} {
		g, w := pair[0], pair[1]
		if len(g) != len(w) {
			t.Fatalf("dir %d: %d partitions, want %d", d, len(g), len(w))
		}
		for i := range g {
			if !reflect.DeepEqual(g[i], w[i]) {
				t.Errorf("dir %d partition %d = %+v, want %+v", d, i, g[i], w[i])
			}
		}
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		img  *snap.Image
	}{
		{"raw", rawImage()},
		{"property", propImage()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "g.snap")
			if err := snap.Write(path, tc.img); err != nil {
				t.Fatal(err)
			}
			sf, err := snap.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer sf.Close()
			sameImage(t, sf.Image(), tc.img)
			if err := sf.Verify(); err != nil {
				t.Errorf("verify: %v", err)
			}
			info := sf.Info()
			if info.Version != snap.FormatVersion {
				t.Errorf("version = %d", info.Version)
			}
			if len(info.Sections) == 0 {
				t.Fatal("no sections reported")
			}
			// Every payload must start cache-line aligned — the zero-copy
			// contract the mapped views rely on.
			for _, s := range info.Sections {
				if s.Offset%snap.Align != 0 {
					t.Errorf("section %s/%s/%d at offset %d: not %d-byte aligned",
						s.Kind, s.Dir, s.Part, s.Offset, snap.Align)
				}
			}
		})
	}
}

func TestOpenRejectsTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snap")
	if err := snap.Write(path, propImage()); err != nil {
		t.Fatal(err)
	}
	sf, err := snap.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	info := sf.Info()
	sf.Close()

	// Cut points that each land inside a structurally required region:
	// mid-header, mid-table, and one byte into the first section's payload.
	cuts := []int64{32, 80, int64(info.Sections[0].Offset) + 1}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range cuts {
		torn := filepath.Join(dir, "torn.snap")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if sf, err := snap.Open(torn); err == nil {
			sf.Close()
			t.Errorf("file truncated to %d bytes opened successfully", cut)
		}
	}
}

func TestOpenRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := snap.Write(path, rawImage()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF // inside the header's epoch field, guarded by the header CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = snap.Open(path)
	if err == nil {
		t.Fatal("corrupt header accepted")
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Errorf("error = %q, want a CRC mismatch", err)
	}
}

func TestVerifyCatchesPayloadCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := snap.Write(path, propImage()); err != nil {
		t.Fatal(err)
	}
	sf, err := snap.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	off := sf.Info().Sections[0].Offset
	sf.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Open validates layout only (O(header)), so the flipped payload byte
	// passes it; the deep pass must catch it.
	sf, err = snap.Open(path)
	if err != nil {
		t.Fatalf("layout-valid file rejected by Open: %v", err)
	}
	defer sf.Close()
	if err := sf.Verify(); err == nil {
		t.Fatal("payload corruption not detected by Verify")
	}
}

func TestValidateRejectsInconsistentImages(t *testing.T) {
	bad := rawImage()
	bad.Out = propImage().Out
	if err := bad.Validate(); err == nil {
		t.Error("raw image with partitions validated")
	}
	bad = rawImage()
	bad.NEdges = 99
	if err := bad.Validate(); err == nil {
		t.Error("NEdges mismatch validated")
	}
	bad = propImage()
	bad.Directions = 1 << 7
	if err := bad.Validate(); err == nil {
		t.Error("unknown direction bits validated")
	}
	bad = propImage()
	bad.Out[0].CP = []uint32{0, 2, 1} // non-monotone
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone CP validated")
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	w, err := snap.CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	batches := []snap.WALBatch{
		{Epoch: 1, Updates: []snap.WALUpdate{{Src: 0, Dst: 1, Val: 2.5}}},
		{Epoch: 2, Updates: []snap.WALUpdate{{Src: 1, Dst: 2, Val: -1}, {Src: 0, Dst: 1, Del: true}}},
	}
	for _, b := range batches {
		if err := w.Append(b.Epoch, b.Updates); err != nil {
			t.Fatal(err)
		}
	}
	if w.Batches() != 2 || w.Records() != 3 {
		t.Errorf("counters = (%d, %d), want (2, 3)", w.Batches(), w.Records())
	}
	w.Close()

	got, err := snap.ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batches) {
		t.Errorf("ReadWAL = %+v, want %+v", got, batches)
	}

	// Reopen for appending: replayed counters carry over and new records
	// land after the existing ones.
	w2, replayed, err := snap.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, batches) {
		t.Errorf("OpenWAL replay = %+v, want %+v", replayed, batches)
	}
	if err := w2.Append(3, []snap.WALUpdate{{Src: 3, Dst: 0, Val: 9}}); err != nil {
		t.Fatal(err)
	}
	if w2.Batches() != 3 || w2.Records() != 4 {
		t.Errorf("counters after reopen+append = (%d, %d), want (3, 4)", w2.Batches(), w2.Records())
	}
	w2.Close()

	got, err = snap.ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Epoch != 3 {
		t.Errorf("after append: %+v", got)
	}

	// A missing file is an empty log, not an error.
	if got, err := snap.ReadWAL(filepath.Join(t.TempDir(), "absent.log")); err != nil || got != nil {
		t.Errorf("missing WAL = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestWALTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	w, err := snap.CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []snap.WALUpdate{{Src: 0, Dst: 1, Val: 1}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a half-written second record.
	torn := append(append([]byte{}, whole...), whole[:len(whole)-5]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, batches, err := snap.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 || batches[0].Epoch != 1 {
		t.Fatalf("replay over torn tail = %+v, want the one whole batch", batches)
	}
	// The tail must be gone from disk, and appends must land cleanly after
	// the valid prefix.
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(whole)) {
		t.Errorf("file size after truncation = %v (err %v), want %d", fi.Size(), err, len(whole))
	}
	if err := w2.Append(2, []snap.WALUpdate{{Src: 1, Dst: 0, Val: 2}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	got, err := snap.ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Epoch != 2 {
		t.Errorf("after heal+append: %+v", got)
	}
}

func TestManifestFlipAndClamp(t *testing.T) {
	dir := t.TempDir()
	if snap.HasManifest(dir) {
		t.Fatal("empty dir claims a manifest")
	}
	if _, err := snap.ReadManifest(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest error = %v, want ErrNotExist", err)
	}

	gen1 := &snap.Manifest{Tag: 1, Files: map[string]string{"master": "master-1.snap"}, WAL: "wal-1.log"}
	if err := snap.WriteManifest(dir, gen1); err != nil {
		t.Fatal(err)
	}
	gen2 := &snap.Manifest{Tag: 2, Updates: 10, Files: map[string]string{"master": "master-2.snap"}, WAL: "wal-2.log", Prev: gen1}
	if err := snap.WriteManifest(dir, gen2); err != nil {
		t.Fatal(err)
	}
	gen3 := &snap.Manifest{Tag: 3, Updates: 20, Files: map[string]string{"master": "master-3.snap"}, WAL: "wal-3.log", Prev: gen2}
	if err := snap.WriteManifest(dir, gen3); err != nil {
		t.Fatal(err)
	}

	got, err := snap.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 3 || got.Files["master"] != "master-3.snap" || got.WAL != "wal-3.log" {
		t.Errorf("current generation = %+v", got)
	}
	if got.Prev == nil || got.Prev.Tag != 2 {
		t.Fatalf("Prev = %+v, want generation 2", got.Prev)
	}
	// History is clamped to one level: generation 1 must not survive the
	// flip to generation 3.
	if got.Prev.Prev != nil {
		t.Errorf("Prev chain not clamped: %+v", got.Prev.Prev)
	}
	// No temp file left behind by the atomic flip.
	if _, err := os.Stat(filepath.Join(dir, snap.CurrentFile+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp manifest left behind: %v", err)
	}
}
