package snap

import (
	"fmt"
	"unsafe"

	"graphmat/internal/sparse"
)

// PartImage is the raw-array dump of one DCSC row partition: exactly the
// slices internal/sparse.DCSC holds, plus the row range and AUX shift that
// reconstruct it without any rebuild. When the image comes from an mmap'd
// snapshot every slice is a zero-copy view into the mapping.
type PartImage struct {
	RowLo, RowHi uint32
	AuxShift     uint32
	JC, CP, IR   []uint32
	Val          []float32
	Aux          []uint32
}

// Image is the serializable form of one graph snapshot. For a property
// graph (Directions != 0) it is a verbatim dump of the graph's internals:
// Fwd holds the Gᵀ triples (Row = dst, Col = src, col-major sorted), Bwd
// the G triples when the In direction is built, and Out/In the partition
// arrays. For a raw adjacency master copy (Directions == 0) only the dims
// and Fwd (Row = src, Col = dst, row-major sorted) are populated.
//
// Epoch is the store's snapshot epoch at write time; Tag is a
// writer-assigned consistency mark (the serving layer stamps the graph
// entry's master epoch, so boot knows which WAL batches the image already
// contains).
type Image struct {
	Epoch        uint64
	Tag          uint64
	NRows, NCols uint32
	NEdges       uint64
	Directions   uint32 // DirsOut | DirsIn; 0 = raw adjacency image
	Partitions   uint32 // the graph's Options.Partitions (0 for raw images)

	Fwd []sparse.Triple[float32]
	Bwd []sparse.Triple[float32]

	OutDeg, InDeg []uint32

	Out, In []PartImage
}

// tripleSize is the serialized (and in-memory) stride of one edge triple.
// The format relies on Triple[float32] having no padding; checkLayout
// guards the assumption.
const tripleSize = 12

// checkLayout verifies the zero-copy contract: a Triple[float32] occupies
// exactly tripleSize contiguous bytes.
func checkLayout() error {
	if s := unsafe.Sizeof(sparse.Triple[float32]{}); s != tripleSize {
		return fmt.Errorf("snap: Triple[float32] is %d bytes, format requires %d", s, tripleSize)
	}
	return nil
}

// Validate checks the image's structural invariants: dimension and length
// consistency, direction bits matching the populated arrays, and per
// partition the DCSC shape contract (CP brackets JC, the last column
// pointer covers IR and Val, AUX ends at the column count). It reads every
// CP array once — O(columns), no allocation — so the writer can afford it
// unconditionally.
func (img *Image) Validate() error {
	if err := checkLayout(); err != nil {
		return err
	}
	if img.NEdges != uint64(len(img.Fwd)) {
		return fmt.Errorf("snap: NEdges %d does not match %d forward triples", img.NEdges, len(img.Fwd))
	}
	if img.Directions == 0 {
		if len(img.Out) != 0 || len(img.In) != 0 || img.Bwd != nil {
			return fmt.Errorf("snap: raw adjacency image (Directions 0) must not carry partitions or backward triples")
		}
		return nil
	}
	if img.Directions&^(DirsOut|DirsIn) != 0 {
		return fmt.Errorf("snap: unknown direction bits %#x", img.Directions)
	}
	if len(img.OutDeg) != int(img.NRows) || len(img.InDeg) != int(img.NRows) {
		return fmt.Errorf("snap: degree arrays (%d out, %d in) do not match %d vertices",
			len(img.OutDeg), len(img.InDeg), img.NRows)
	}
	if img.Directions&DirsOut != 0 {
		if len(img.Out) == 0 {
			return fmt.Errorf("snap: Out direction declared but no out partitions present")
		}
	} else if len(img.Out) != 0 {
		return fmt.Errorf("snap: out partitions present but Out direction not declared")
	}
	if img.Directions&DirsIn != 0 {
		if len(img.In) == 0 {
			return fmt.Errorf("snap: In direction declared but no in partitions present")
		}
		if uint64(len(img.Bwd)) != img.NEdges {
			return fmt.Errorf("snap: %d backward triples do not match %d edges", len(img.Bwd), img.NEdges)
		}
	} else {
		if len(img.In) != 0 {
			return fmt.Errorf("snap: in partitions present but In direction not declared")
		}
		if img.Bwd != nil {
			return fmt.Errorf("snap: backward triples present but In direction not declared")
		}
	}
	for d, parts := range [][]PartImage{img.Out, img.In} {
		name := [2]string{"out", "in"}[d]
		for i := range parts {
			if err := checkPart(&parts[i], img.NRows); err != nil {
				return fmt.Errorf("snap: %s partition %d: %w", name, i, err)
			}
		}
	}
	return nil
}

// checkPart enforces one partition's DCSC shape contract in O(columns).
func checkPart(p *PartImage, nrows uint32) error {
	if p.RowLo > p.RowHi || p.RowHi > nrows {
		return fmt.Errorf("row range [%d, %d) outside [0, %d)", p.RowLo, p.RowHi, nrows)
	}
	if len(p.CP) != len(p.JC)+1 {
		return fmt.Errorf("CP length %d must be JC length %d + 1", len(p.CP), len(p.JC))
	}
	if p.CP[0] != 0 {
		return fmt.Errorf("CP must start at 0, got %d", p.CP[0])
	}
	for i := 1; i < len(p.CP); i++ {
		if p.CP[i] < p.CP[i-1] {
			return fmt.Errorf("CP not monotone at column %d (%d < %d)", i, p.CP[i], p.CP[i-1])
		}
	}
	nnz := p.CP[len(p.CP)-1]
	if uint32(len(p.IR)) != nnz || uint32(len(p.Val)) != nnz {
		return fmt.Errorf("IR/Val lengths (%d, %d) must equal CP's final pointer %d", len(p.IR), len(p.Val), nnz)
	}
	if p.Aux != nil {
		if len(p.Aux) < 2 {
			return fmt.Errorf("AUX index has %d entries, need at least 2", len(p.Aux))
		}
		if got := p.Aux[len(p.Aux)-1]; got != uint32(len(p.JC)) {
			return fmt.Errorf("AUX must end at the column count %d, got %d", len(p.JC), got)
		}
	}
	return nil
}

// secData pairs a section's identity with its payload bytes.
type secData struct {
	kind, dir, part, elem uint32
	data                  []byte
}

// sections enumerates the image's non-empty arrays in canonical order. The
// payload slices alias the image's arrays (no copies): callers must finish
// with them before mutating the image.
func (img *Image) sections() []secData {
	var out []secData
	add := func(kind, dir, part, elem uint32, data []byte) {
		if len(data) == 0 {
			return
		}
		out = append(out, secData{kind: kind, dir: dir, part: part, elem: elem, data: data})
	}
	add(secFwd, dirNone, 0, tripleSize, tripleBytes(img.Fwd))
	add(secBwd, dirNone, 0, tripleSize, tripleBytes(img.Bwd))
	add(secOutDeg, dirNone, 0, 4, u32Bytes(img.OutDeg))
	add(secInDeg, dirNone, 0, 4, u32Bytes(img.InDeg))
	for d, parts := range [][]PartImage{img.Out, img.In} {
		dir := [2]uint32{dirOut, dirIn}[d]
		if len(parts) == 0 {
			continue
		}
		meta := make([]uint32, 0, metaWords*len(parts))
		for i := range parts {
			p := &parts[i]
			meta = append(meta, p.RowLo, p.RowHi, p.AuxShift, 0)
		}
		add(secPartMeta, dir, 0, 4, u32Bytes(meta))
		for i := range parts {
			p := &parts[i]
			add(secJC, dir, uint32(i), 4, u32Bytes(p.JC))
			add(secCP, dir, uint32(i), 4, u32Bytes(p.CP))
			add(secIR, dir, uint32(i), 4, u32Bytes(p.IR))
			add(secVal, dir, uint32(i), 4, f32Bytes(p.Val))
			add(secAux, dir, uint32(i), 4, u32Bytes(p.Aux))
		}
	}
	return out
}

// ---- raw byte views ----------------------------------------------------
//
// The writer and the reader reinterpret the same memory through these
// pairs, so the on-disk bytes are exactly the in-memory arrays (host byte
// order; see the package comment).

func u32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func f32Bytes(s []float32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func tripleBytes(s []sparse.Triple[float32]) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), tripleSize*len(s))
}

func viewU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewTriples(b []byte) []sparse.Triple[float32] {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*sparse.Triple[float32])(unsafe.Pointer(&b[0])), len(b)/tripleSize)
}
