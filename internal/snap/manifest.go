package snap

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// CurrentFile is the epoch-pointer file inside a graph's persistence
// directory. It names the current generation's snapshot files and WAL, and
// carries the previous generation inline so a reader finding the current
// one damaged can fall back one checkpoint.
const CurrentFile = "CURRENT"

// Manifest is one persisted generation: the snapshot files written at one
// checkpoint (keyed by component — "master" plus "algo:<name>" per built
// algorithm instance), the WAL collecting batches accepted since, and the
// entry epoch the snapshots are tagged with. Flipping CURRENT to a new
// manifest is the atomic commit point of a checkpoint.
type Manifest struct {
	// Tag is the graph-entry epoch at checkpoint time; every snapshot file
	// in Files carries the same tag, and WAL batches with Epoch > Tag are
	// the ones not yet folded in.
	Tag uint64 `json:"tag"`
	// Updates is the entry's cumulative accepted-update-record count at
	// checkpoint time, so restart restores monotone counters.
	Updates int64 `json:"updates"`
	// Files maps component name to snapshot file name (relative to the
	// graph's persistence directory).
	Files map[string]string `json:"files"`
	// WAL is the log file (relative) collecting post-checkpoint batches.
	WAL string `json:"wal"`
	// Prev is the previous generation, kept one level deep: the fallback
	// target if this generation's files fail validation.
	Prev *Manifest `json:"prev,omitempty"`
}

// ReadManifest reads dir's CURRENT pointer. A missing file returns
// os.ErrNotExist (wrapped): the graph has never been persisted.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, CurrentFile))
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("snap: parsing %s: %w", filepath.Join(dir, CurrentFile), err)
	}
	return &m, nil
}

// HasManifest reports whether dir holds a CURRENT pointer.
func HasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, CurrentFile))
	return err == nil
}

// WriteManifest atomically flips dir's CURRENT pointer to m: temp file,
// fsync, rename, directory fsync — the same discipline as Write, so a
// crash leaves either the old pointer or the new one, never a torn file.
// The stored Prev chain is clamped to one level; deeper history is the
// caller's garbage to collect.
func WriteManifest(dir string, m *Manifest) error {
	clamped := *m
	if clamped.Prev != nil {
		prev := *clamped.Prev
		prev.Prev = nil
		clamped.Prev = &prev
	}
	data, err := json.MarshalIndent(&clamped, "", "  ")
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(dir, CurrentFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snap: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snap: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snap: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snap: %w", err)
	}
	return syncDir(dir)
}
