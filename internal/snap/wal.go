package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// The write-ahead log holds every RAW update batch accepted since the last
// checkpoint, in acceptance order. One record per batch:
//
//	magic  u32  "1WMG" (walMagic)
//	count  u32  updates in the batch
//	epoch  u64  the graph-entry epoch this batch PRODUCES
//	count × { src u32, dst u32, valbits u32 (IEEE-754), flags u32 (bit0 = delete) }
//	crc    u32  CRC-32C over count..updates
//
// Append fsyncs before returning, so a batch is only acknowledged to the
// client once it is durable. Replay reads the longest valid prefix and
// truncates anything after it — a torn tail (the crash happened mid-append,
// before the ack) is discarded, never misparsed.

const (
	walMagic      = 0x474d5731 // "GMW1" little-endian
	walHeaderSize = 16
	walRecordSize = 16
	// walMaxBatch bounds a record's declared update count so a corrupt
	// header cannot make replay allocate unboundedly.
	walMaxBatch = 1 << 26
)

// WALUpdate is one raw edge mutation as stored in the log. It mirrors the
// graph layer's Update[float32] field for field; defined here so snap stays
// importable from internal/graph without a cycle.
type WALUpdate struct {
	Src, Dst uint32
	Val      float32
	Del      bool
}

// WALBatch is one replayed log record: the update batch and the entry
// epoch it produced.
type WALBatch struct {
	Epoch   uint64
	Updates []WALUpdate
}

// WAL is an open write-ahead log positioned for appending.
type WAL struct {
	f       *os.File
	path    string
	batches int64
	records int64
}

// CreateWAL creates (or truncates) an empty log at path and syncs its
// directory entry.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("snap: %w", err)
	}
	return &WAL{f: f, path: path}, nil
}

// OpenWAL opens path (creating it if absent), replays its valid record
// prefix, truncates any torn tail, and returns the log positioned for
// appending together with the replayed batches.
func OpenWAL(path string) (*WAL, []WALBatch, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("snap: %w", err)
	}
	batches, valid := parseWAL(data)
	if int64(valid) != int64(len(data)) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("snap: truncating torn WAL tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("snap: %w", err)
	}
	w := &WAL{f: f, path: path, batches: int64(len(batches))}
	for _, b := range batches {
		w.records += int64(len(b.Updates))
	}
	return w, batches, nil
}

// ReadWAL replays the valid record prefix of path without opening it for
// writing (used for the previous generation's log during fallback boot).
// A missing file is an empty log.
func ReadWAL(path string) ([]WALBatch, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	batches, _ := parseWAL(data)
	return batches, nil
}

// parseWAL decodes the longest valid record prefix, returning the batches
// and the byte length of that prefix.
func parseWAL(data []byte) ([]WALBatch, int) {
	var out []WALBatch
	off := 0
	for {
		rec, n := parseWALRecord(data[off:])
		if n == 0 {
			return out, off
		}
		out = append(out, rec)
		off += n
	}
}

// parseWALRecord decodes one record from the front of b; n == 0 means no
// complete valid record starts there (torn tail or corruption).
func parseWALRecord(b []byte) (WALBatch, int) {
	if len(b) < walHeaderSize {
		return WALBatch{}, 0
	}
	if binary.LittleEndian.Uint32(b[0:4]) != walMagic {
		return WALBatch{}, 0
	}
	count := binary.LittleEndian.Uint32(b[4:8])
	if count > walMaxBatch {
		return WALBatch{}, 0
	}
	total := walHeaderSize + int(count)*walRecordSize + 4
	if len(b) < total {
		return WALBatch{}, 0
	}
	body := b[4 : total-4]
	if binary.LittleEndian.Uint32(b[total-4:total]) != crc32.Checksum(body, crcTable) {
		return WALBatch{}, 0
	}
	rec := WALBatch{
		Epoch:   binary.LittleEndian.Uint64(b[8:16]),
		Updates: make([]WALUpdate, count),
	}
	for i := range rec.Updates {
		u := b[walHeaderSize+i*walRecordSize:]
		rec.Updates[i] = WALUpdate{
			Src: binary.LittleEndian.Uint32(u[0:4]),
			Dst: binary.LittleEndian.Uint32(u[4:8]),
			Val: math.Float32frombits(binary.LittleEndian.Uint32(u[8:12])),
			Del: binary.LittleEndian.Uint32(u[12:16])&1 != 0,
		}
	}
	return rec, total
}

// Append encodes one accepted batch, writes it, and fsyncs. Only after
// Append returns nil may the batch be acknowledged upstream.
func (w *WAL) Append(epoch uint64, updates []WALUpdate) error {
	if len(updates) > walMaxBatch {
		return fmt.Errorf("snap: WAL batch of %d updates exceeds the format limit %d", len(updates), walMaxBatch)
	}
	buf := make([]byte, walHeaderSize+len(updates)*walRecordSize+4)
	binary.LittleEndian.PutUint32(buf[0:4], walMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(updates)))
	binary.LittleEndian.PutUint64(buf[8:16], epoch)
	for i, u := range updates {
		rec := buf[walHeaderSize+i*walRecordSize:]
		binary.LittleEndian.PutUint32(rec[0:4], u.Src)
		binary.LittleEndian.PutUint32(rec[4:8], u.Dst)
		binary.LittleEndian.PutUint32(rec[8:12], math.Float32bits(u.Val))
		var flags uint32
		if u.Del {
			flags = 1
		}
		binary.LittleEndian.PutUint32(rec[12:16], flags)
	}
	end := len(buf)
	binary.LittleEndian.PutUint32(buf[end-4:end], crc32.Checksum(buf[4:end-4], crcTable))
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("snap: appending to WAL %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("snap: syncing WAL %s: %w", w.path, err)
	}
	w.batches++
	w.records += int64(len(updates))
	return nil
}

// Batches reports the record count appended plus replayed through this
// handle.
func (w *WAL) Batches() int64 { return w.batches }

// Records reports the update count appended plus replayed through this
// handle.
func (w *WAL) Records() int64 { return w.records }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the log file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	return f.Close()
}
