package snap_test

import (
	"path/filepath"
	"testing"

	"graphmat/internal/snap"
)

// WAL benchmarks: the per-batch durability cost an ApplyEdges caller pays
// before its ack (Append fsyncs every record) and the boot-time replay read.
// Part of the BENCH_snap.json baseline.

func walBenchUpdates(n int) []snap.WALUpdate {
	ups := make([]snap.WALUpdate, n)
	for i := range ups {
		ups[i] = snap.WALUpdate{
			Src: uint32(i * 7), Dst: uint32(i*13 + 1),
			Val: float32(i%255) + 1, Del: i%10 == 0,
		}
	}
	return ups
}

func BenchmarkWALAppend(b *testing.B) {
	w, err := snap.CreateWAL(filepath.Join(b.TempDir(), "wal.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	ups := walBenchUpdates(1024)
	b.SetBytes(int64(len(ups) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(uint64(i+1), ups); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "wal.log")
	w, err := snap.CreateWAL(path)
	if err != nil {
		b.Fatal(err)
	}
	ups := walBenchUpdates(1024)
	const batches = 64
	for i := 0; i < batches; i++ {
		if err := w.Append(uint64(i+1), ups); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(batches * len(ups) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := snap.ReadWAL(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != batches {
			b.Fatalf("replayed %d batches, want %d", len(got), batches)
		}
	}
}
