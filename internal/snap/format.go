// Package snap defines GMATSNAP, the on-disk snapshot container for
// graphmat's versioned graphs: a fixed header, a CRC-guarded section table,
// and 64-byte-aligned raw array sections (per-partition DCSC column
// pointers, row ids, values, AUX index, degree arrays, forward/backward
// triples) laid out so that internal/sparse partition arrays can be served
// as zero-copy views straight out of an mmap'd file. The package also holds
// the two companions a persistent store needs: a per-graph write-ahead log
// of accepted update batches (wal.go) and the atomically flipped
// epoch-pointer manifest that makes snapshot rotation crash-safe
// (manifest.go).
//
// Byte order is the host's (writer and reader reinterpret the same raw
// array bytes through identical views), so snapshot files are a same-
// architecture persistence format, not a wire interchange format — GMATBIN2
// remains the portable one. Every multi-byte header and table field is
// little-endian regardless, so validation fails loudly rather than
// misparsing on a foreign file.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// Magic opens every GMATSNAP file.
	Magic = "GMATSNAP"
	// FormatVersion is the current layout version.
	FormatVersion = 1
	// Align is the byte alignment of the section table and of every
	// section payload: one cache line, so mapped arrays start cache-line
	// (and therefore element) aligned.
	Align = 64

	headerSize  = 64
	sectionSize = 40
	// maxSections bounds the table so a corrupt count cannot make Open
	// allocate unboundedly before the CRC check.
	maxSections = 1 << 20
)

// Section kinds. A section is one raw array; (kind, dir, part) identifies
// it uniquely within a file.
const (
	secFwd      uint32 = iota + 1 // forward triples ([]Triple[float32])
	secBwd                        // backward triples (In direction only)
	secOutDeg                     // out-degree array ([]uint32)
	secInDeg                      // in-degree array ([]uint32)
	secPartMeta                   // per-direction partition metadata ([]uint32, 4 words/partition)
	secJC                         // DCSC column ids
	secCP                         // DCSC column pointers
	secIR                         // DCSC row ids
	secVal                        // DCSC edge values ([]float32)
	secAux                        // DCSC AUX bucket index
)

// Direction codes used in section table entries.
const (
	dirOut  uint32 = 0
	dirIn   uint32 = 1
	dirNone uint32 = 0xFFFFFFFF
)

// Direction bits of Image.Directions and the header's directions word.
// They mirror graph Options.Directions: Out = 1, In = 2. A zero word marks
// a raw adjacency image (master copy: triples only, no partitions).
const (
	DirsOut uint32 = 1 << 0
	DirsIn  uint32 = 1 << 1
)

// metaWords is the per-partition word count of a secPartMeta section:
// rowLo, rowHi, auxShift, reserved.
const metaWords = 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// header is the decoded fixed-size file header.
type header struct {
	version    uint32
	nsections  uint32
	epoch      uint64
	tag        uint64
	nrows      uint32
	ncols      uint32
	nedges     uint64
	directions uint32
	partitions uint32
}

// section is one decoded section table entry.
type section struct {
	kind   uint32
	dir    uint32
	part   uint32
	elem   uint32 // element size in bytes (4 or 12): layout redundancy for validation
	off    uint64 // absolute file offset, Align-aligned
	length uint64 // payload length in bytes
	crc    uint32 // CRC-32C of the payload
}

// encodeHeader serializes h; the table CRC must already be known.
func encodeHeader(h header, tableCRC uint32) []byte {
	b := make([]byte, headerSize)
	copy(b[0:8], Magic)
	binary.LittleEndian.PutUint32(b[8:12], h.version)
	binary.LittleEndian.PutUint32(b[12:16], h.nsections)
	binary.LittleEndian.PutUint64(b[16:24], h.epoch)
	binary.LittleEndian.PutUint64(b[24:32], h.tag)
	binary.LittleEndian.PutUint32(b[32:36], h.nrows)
	binary.LittleEndian.PutUint32(b[36:40], h.ncols)
	binary.LittleEndian.PutUint64(b[40:48], h.nedges)
	binary.LittleEndian.PutUint32(b[48:52], h.directions)
	binary.LittleEndian.PutUint32(b[52:56], h.partitions)
	binary.LittleEndian.PutUint32(b[56:60], tableCRC)
	binary.LittleEndian.PutUint32(b[60:64], crc32.Checksum(b[0:60], crcTable))
	return b
}

// parseHeader validates the magic, version and header CRC and decodes the
// fixed fields. It returns the table CRC the header vouches for.
func parseHeader(b []byte) (header, uint32, error) {
	var h header
	if len(b) < headerSize {
		return h, 0, fmt.Errorf("snap: file too short for a GMATSNAP header (%d bytes)", len(b))
	}
	if string(b[0:8]) != Magic {
		return h, 0, fmt.Errorf("snap: bad magic %q (want %q)", b[0:8], Magic)
	}
	if got, want := binary.LittleEndian.Uint32(b[60:64]), crc32.Checksum(b[0:60], crcTable); got != want {
		return h, 0, fmt.Errorf("snap: header CRC mismatch (file %#x, computed %#x): torn or corrupt snapshot", got, want)
	}
	h.version = binary.LittleEndian.Uint32(b[8:12])
	if h.version != FormatVersion {
		return h, 0, fmt.Errorf("snap: unsupported format version %d (this build reads %d)", h.version, FormatVersion)
	}
	h.nsections = binary.LittleEndian.Uint32(b[12:16])
	if h.nsections > maxSections {
		return h, 0, fmt.Errorf("snap: section count %d exceeds the format limit %d", h.nsections, maxSections)
	}
	h.epoch = binary.LittleEndian.Uint64(b[16:24])
	h.tag = binary.LittleEndian.Uint64(b[24:32])
	h.nrows = binary.LittleEndian.Uint32(b[32:36])
	h.ncols = binary.LittleEndian.Uint32(b[36:40])
	h.nedges = binary.LittleEndian.Uint64(b[40:48])
	h.directions = binary.LittleEndian.Uint32(b[48:52])
	h.partitions = binary.LittleEndian.Uint32(b[52:56])
	return h, binary.LittleEndian.Uint32(b[56:60]), nil
}

// encodeSection serializes one table entry.
func encodeSection(s section) []byte {
	b := make([]byte, sectionSize)
	binary.LittleEndian.PutUint32(b[0:4], s.kind)
	binary.LittleEndian.PutUint32(b[4:8], s.dir)
	binary.LittleEndian.PutUint32(b[8:12], s.part)
	binary.LittleEndian.PutUint32(b[12:16], s.elem)
	binary.LittleEndian.PutUint64(b[16:24], s.off)
	binary.LittleEndian.PutUint64(b[24:32], s.length)
	binary.LittleEndian.PutUint32(b[32:36], s.crc)
	return b
}

// parseSections decodes and validates the table region against the header's
// CRC and the file size: every offset in bounds, aligned, and an exact
// multiple of the entry's element size.
func parseSections(table []byte, n int, tableCRC uint32, fileSize uint64) ([]section, error) {
	if crc32.Checksum(table, crcTable) != tableCRC {
		return nil, fmt.Errorf("snap: section table CRC mismatch: torn or corrupt snapshot")
	}
	secs := make([]section, n)
	for i := range secs {
		b := table[i*sectionSize:]
		s := section{
			kind:   binary.LittleEndian.Uint32(b[0:4]),
			dir:    binary.LittleEndian.Uint32(b[4:8]),
			part:   binary.LittleEndian.Uint32(b[8:12]),
			elem:   binary.LittleEndian.Uint32(b[12:16]),
			off:    binary.LittleEndian.Uint64(b[16:24]),
			length: binary.LittleEndian.Uint64(b[24:32]),
			crc:    binary.LittleEndian.Uint32(b[32:36]),
		}
		if s.elem == 0 {
			return nil, fmt.Errorf("snap: section %d has zero element size", i)
		}
		if s.off%Align != 0 {
			return nil, fmt.Errorf("snap: section %d offset %d is not %d-byte aligned", i, s.off, Align)
		}
		if s.length%uint64(s.elem) != 0 {
			return nil, fmt.Errorf("snap: section %d length %d is not a multiple of its element size %d", i, s.length, s.elem)
		}
		if s.off > fileSize || s.length > fileSize-s.off {
			return nil, fmt.Errorf("snap: section %d [%d, %d) extends past the %d-byte file: torn or corrupt snapshot",
				i, s.off, s.off+s.length, fileSize)
		}
		secs[i] = s
	}
	return secs, nil
}

// alignUp rounds n up to the next multiple of Align.
func alignUp(n uint64) uint64 { return (n + Align - 1) &^ uint64(Align-1) }
