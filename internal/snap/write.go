package snap

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Write serializes img to path crash-safely: the bytes go to a temporary
// file in the same directory, are fsynced, and only then renamed over path;
// the directory is fsynced last so the rename itself is durable. A reader
// therefore either sees the complete new snapshot or whatever was at path
// before — never a torn file under the final name. (A torn temp file left
// by a crash is overwritten by the next Write and never referenced by a
// manifest.)
func Write(path string, img *Image) error {
	if err := img.Validate(); err != nil {
		return err
	}
	secs := img.sections()
	if len(secs) > maxSections {
		return fmt.Errorf("snap: %d sections exceed the format limit %d", len(secs), maxSections)
	}

	// Lay out the file: header, table, then Align-padded payloads.
	tableOff := uint64(headerSize)
	off := alignUp(tableOff + uint64(sectionSize*len(secs)))
	table := make([]section, len(secs))
	for i, sd := range secs {
		table[i] = section{
			kind:   sd.kind,
			dir:    sd.dir,
			part:   sd.part,
			elem:   sd.elem,
			off:    off,
			length: uint64(len(sd.data)),
			crc:    crc32.Checksum(sd.data, crcTable),
		}
		off += alignUp(uint64(len(sd.data)))
	}

	tableBytes := make([]byte, 0, sectionSize*len(secs))
	for _, s := range table {
		tableBytes = append(tableBytes, encodeSection(s)...)
	}
	hdr := encodeHeader(header{
		version:    FormatVersion,
		nsections:  uint32(len(secs)),
		epoch:      img.Epoch,
		tag:        img.Tag,
		nrows:      img.NRows,
		ncols:      img.NCols,
		nedges:     img.NEdges,
		directions: img.Directions,
		partitions: img.Partitions,
	}, crc32.Checksum(tableBytes, crcTable))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	written := uint64(0)
	emit := func(b []byte) error {
		n, err := w.Write(b)
		written += uint64(n)
		return err
	}
	pad := func(to uint64) error {
		var zeros [Align]byte
		for written < to {
			chunk := to - written
			if chunk > Align {
				chunk = Align
			}
			if err := emit(zeros[:chunk]); err != nil {
				return err
			}
		}
		return nil
	}
	writeAll := func() error {
		if err := emit(hdr); err != nil {
			return err
		}
		if err := emit(tableBytes); err != nil {
			return err
		}
		for i, sd := range secs {
			if err := pad(table[i].off); err != nil {
				return err
			}
			if err := emit(sd.data); err != nil {
				return err
			}
		}
		if err := pad(off); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := writeAll(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snap: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snap: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snap: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snap: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-completed rename or create within it
// survives power loss. Filesystems that reject directory fsync (it is
// optional in POSIX) are tolerated: the rename is still atomic, just not
// yet durable, which degrades crash-safety to ordinary-crash-safety rather
// than corrupting anything.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	defer d.Close()
	d.Sync()
	return nil
}
