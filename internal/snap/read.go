package snap

import (
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// Snapshot is an opened GMATSNAP file: the raw mapping plus an Image whose
// arrays are zero-copy views into it. The mapping is read-only — a stray
// write through a view faults loudly instead of corrupting the file — and
// it must outlive every graph still holding the views, so long-lived owners
// (the server) keep the Snapshot for the process lifetime and only
// short-lived ones (CLI, tests) Close it.
type Snapshot struct {
	path    string
	data    []byte
	mapped  bool
	hdr     header
	secs    []section
	img     *Image
	decoded uint64 // bytes the sections actually cover, for Info
}

// Open maps path and validates it just enough to trust the layout: magic,
// version, header CRC, table CRC, and every section's bounds, alignment
// and element size, plus O(1) shape checks tying the partition arrays
// together. That is O(header + table) work — no payload scan — so opening
// a multi-gigabyte snapshot costs page-table setup, not I/O. Payload CRCs
// are checked by Verify (the CLI's inspect -verify and the tests), not
// here.
func Open(path string) (*Snapshot, error) {
	if err := checkLayout(); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	size := fi.Size()
	if size < headerSize {
		return nil, fmt.Errorf("snap: %s is %d bytes, smaller than a GMATSNAP header: torn or corrupt snapshot", path, size)
	}
	data, mapped, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("snap: mapping %s: %w", path, err)
	}
	sn := &Snapshot{path: path, data: data, mapped: mapped}
	if err := sn.decode(); err != nil {
		sn.Close()
		return nil, fmt.Errorf("snap: %s: %w", path, err)
	}
	return sn, nil
}

// decode parses the header and table and assembles the zero-copy Image.
func (sn *Snapshot) decode() error {
	h, tableCRC, err := parseHeader(sn.data)
	if err != nil {
		return err
	}
	tableEnd := headerSize + int(h.nsections)*sectionSize
	if tableEnd > len(sn.data) {
		return fmt.Errorf("section table extends past the file: torn or corrupt snapshot")
	}
	secs, err := parseSections(sn.data[headerSize:tableEnd], int(h.nsections), tableCRC, uint64(len(sn.data)))
	if err != nil {
		return err
	}
	sn.hdr, sn.secs = h, secs

	img := &Image{
		Epoch:      h.epoch,
		Tag:        h.tag,
		NRows:      h.nrows,
		NCols:      h.ncols,
		NEdges:     h.nedges,
		Directions: h.directions,
		Partitions: h.partitions,
	}
	type key struct{ kind, dir, part uint32 }
	byKey := make(map[key][]byte, len(secs))
	for i, s := range secs {
		k := key{s.kind, s.dir, s.part}
		if _, dup := byKey[k]; dup {
			return fmt.Errorf("duplicate section (kind %d, dir %d, part %d)", s.kind, s.dir, s.part)
		}
		byKey[k] = sn.data[s.off : s.off+s.length]
		sn.decoded += s.length
		if want := wantElem(s.kind); want != 0 && s.elem != want {
			return fmt.Errorf("section %d (kind %d) has element size %d, format says %d", i, s.kind, s.elem, want)
		}
	}
	img.Fwd = viewTriples(byKey[key{secFwd, dirNone, 0}])
	img.Bwd = viewTriples(byKey[key{secBwd, dirNone, 0}])
	img.OutDeg = viewU32(byKey[key{secOutDeg, dirNone, 0}])
	img.InDeg = viewU32(byKey[key{secInDeg, dirNone, 0}])
	for _, dir := range []uint32{dirOut, dirIn} {
		meta := viewU32(byKey[key{secPartMeta, dir, 0}])
		if len(meta) == 0 {
			continue
		}
		if len(meta)%metaWords != 0 {
			return fmt.Errorf("partition metadata length %d is not a multiple of %d", len(meta), metaWords)
		}
		parts := make([]PartImage, len(meta)/metaWords)
		for i := range parts {
			m := meta[i*metaWords:]
			parts[i] = PartImage{
				RowLo:    m[0],
				RowHi:    m[1],
				AuxShift: m[2],
				JC:       viewU32(byKey[key{secJC, dir, uint32(i)}]),
				CP:       viewU32(byKey[key{secCP, dir, uint32(i)}]),
				IR:       viewU32(byKey[key{secIR, dir, uint32(i)}]),
				Val:      viewF32(byKey[key{secVal, dir, uint32(i)}]),
				Aux:      viewU32(byKey[key{secAux, dir, uint32(i)}]),
			}
			if err := checkPartShape(&parts[i], img.NRows); err != nil {
				return fmt.Errorf("dir %d partition %d: %w", dir, i, err)
			}
		}
		if dir == dirOut {
			img.Out = parts
		} else {
			img.In = parts
		}
	}
	if img.NEdges != uint64(len(img.Fwd)) {
		return fmt.Errorf("header claims %d edges, forward section holds %d: torn or corrupt snapshot", img.NEdges, len(img.Fwd))
	}
	if img.Directions&DirsOut != 0 && len(img.Out) == 0 {
		return fmt.Errorf("header declares the Out direction but no out partitions are present")
	}
	if img.Directions&DirsIn != 0 && (len(img.In) == 0 || uint64(len(img.Bwd)) != img.NEdges) {
		return fmt.Errorf("header declares the In direction but its sections are missing or inconsistent")
	}
	sn.img = img
	return nil
}

// checkPartShape is the O(1) subset of checkPart run on every Open: length
// consistency between the partition's arrays, without the O(columns) CP
// monotonicity scan (Verify and the writer's Validate do that).
func checkPartShape(p *PartImage, nrows uint32) error {
	if p.RowLo > p.RowHi || p.RowHi > nrows {
		return fmt.Errorf("row range [%d, %d) outside [0, %d)", p.RowLo, p.RowHi, nrows)
	}
	if len(p.CP) != len(p.JC)+1 {
		return fmt.Errorf("CP length %d must be JC length %d + 1", len(p.CP), len(p.JC))
	}
	if p.CP[0] != 0 {
		return fmt.Errorf("CP must start at 0, got %d", p.CP[0])
	}
	nnz := p.CP[len(p.CP)-1]
	if uint32(len(p.IR)) != nnz || uint32(len(p.Val)) != nnz {
		return fmt.Errorf("IR/Val lengths (%d, %d) must equal CP's final pointer %d", len(p.IR), len(p.Val), nnz)
	}
	if p.Aux != nil && (len(p.Aux) < 2 || p.Aux[len(p.Aux)-1] != uint32(len(p.JC))) {
		return fmt.Errorf("AUX index shape is inconsistent with %d columns", len(p.JC))
	}
	return nil
}

// Image returns the zero-copy image. Its arrays alias the mapping: valid
// until Close, and read-only.
func (sn *Snapshot) Image() *Image { return sn.img }

// Path returns the file the snapshot was opened from.
func (sn *Snapshot) Path() string { return sn.path }

// Verify checks every section's payload CRC — the deep integrity pass Open
// deliberately skips. It faults in the whole file.
func (sn *Snapshot) Verify() error {
	for i, s := range sn.secs {
		if got := crc32.Checksum(sn.data[s.off:s.off+s.length], crcTable); got != s.crc {
			return fmt.Errorf("snap: %s: section %d (kind %d, dir %d, part %d) payload CRC mismatch (file %#x, computed %#x)",
				sn.path, i, s.kind, s.dir, s.part, got, s.crc)
		}
	}
	return nil
}

// Close unmaps the file. Every view handed out through Image becomes
// invalid; the caller must guarantee no graph still reads them.
func (sn *Snapshot) Close() error {
	if sn.data == nil {
		return nil
	}
	data := sn.data
	sn.data, sn.img, sn.secs = nil, nil, nil
	if sn.mapped {
		return munmapFile(data)
	}
	return nil
}

// SectionInfo describes one section for tooling.
type SectionInfo struct {
	Kind   string `json:"kind"`
	Dir    string `json:"dir"`
	Part   uint32 `json:"part"`
	Offset uint64 `json:"offset"`
	Length uint64 `json:"length"`
	CRC    uint32 `json:"crc"`
}

// Info summarizes the snapshot header and section table for tooling
// (graphmat snap inspect).
type Info struct {
	Path       string        `json:"path"`
	Version    uint32        `json:"version"`
	Epoch      uint64        `json:"epoch"`
	Tag        uint64        `json:"tag"`
	NRows      uint32        `json:"nrows"`
	NCols      uint32        `json:"ncols"`
	NEdges     uint64        `json:"nedges"`
	Directions uint32        `json:"directions"`
	Partitions uint32        `json:"partitions"`
	FileSize   int64         `json:"file_size"`
	DataBytes  uint64        `json:"data_bytes"`
	Mapped     bool          `json:"mapped"`
	Sections   []SectionInfo `json:"sections"`
}

// Info reports the decoded header and per-section layout, sorted by file
// offset.
func (sn *Snapshot) Info() Info {
	info := Info{
		Path:       sn.path,
		Version:    sn.hdr.version,
		Epoch:      sn.hdr.epoch,
		Tag:        sn.hdr.tag,
		NRows:      sn.hdr.nrows,
		NCols:      sn.hdr.ncols,
		NEdges:     sn.hdr.nedges,
		Directions: sn.hdr.directions,
		Partitions: sn.hdr.partitions,
		FileSize:   int64(len(sn.data)),
		DataBytes:  sn.decoded,
		Mapped:     sn.mapped,
	}
	for _, s := range sn.secs {
		info.Sections = append(info.Sections, SectionInfo{
			Kind:   kindName(s.kind),
			Dir:    dirName(s.dir),
			Part:   s.part,
			Offset: s.off,
			Length: s.length,
			CRC:    s.crc,
		})
	}
	sort.Slice(info.Sections, func(i, j int) bool { return info.Sections[i].Offset < info.Sections[j].Offset })
	return info
}

// wantElem returns the fixed element size of a section kind, 0 if the kind
// is unknown (tolerated for forward compatibility: unknown sections are
// ignored).
func wantElem(kind uint32) uint32 {
	switch kind {
	case secFwd, secBwd:
		return tripleSize
	case secOutDeg, secInDeg, secPartMeta, secJC, secCP, secIR, secVal, secAux:
		return 4
	}
	return 0
}

func kindName(kind uint32) string {
	switch kind {
	case secFwd:
		return "fwd"
	case secBwd:
		return "bwd"
	case secOutDeg:
		return "outdeg"
	case secInDeg:
		return "indeg"
	case secPartMeta:
		return "partmeta"
	case secJC:
		return "jc"
	case secCP:
		return "cp"
	case secIR:
		return "ir"
	case secVal:
		return "val"
	case secAux:
		return "aux"
	}
	return "unknown"
}

func dirName(dir uint32) string {
	switch dir {
	case dirOut:
		return "out"
	case dirIn:
		return "in"
	case dirNone:
		return "-"
	}
	return "unknown"
}
