//go:build unix

package snap

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping outlives the file
// descriptor (the caller may close f immediately) and is shared with the
// page cache, so a boot-time Open costs page-table setup, not I/O; pages
// fault in as the engine first touches them. The returned flag reports
// whether munmap must eventually be called.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }
