//go:build !unix

package snap

import (
	"io"
	"os"
)

// mmapFile on platforms without mmap support falls back to reading the
// whole file onto the heap. Views handed out by Open are then ordinary heap
// slices — correct, just not zero-copy. The Go heap aligns large
// allocations well past the 4-byte element requirement, so the same
// unsafe.Slice reinterpretation applies.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

// munmapFile is a no-op for the heap fallback.
func munmapFile([]byte) error { return nil }
