package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// spawnFor is the legacy per-call fan-out these benchmarks compare the
// pool against: fresh goroutines plus a WaitGroup barrier on every call —
// exactly what the engine used to pay per phase per superstep.
func spawnFor(nworkers, ntasks int, fn func(task, worker int)) {
	if nworkers > ntasks {
		nworkers = ntasks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nworkers)
	for w := 0; w < nworkers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= ntasks {
					return
				}
				fn(i, w)
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkWake measures dispatch latency of a trivial job through the
// parked pool: the park→wake→barrier round trip that replaces goroutine
// spawning. Compare against BenchmarkSpawn at the same -cpu.
func BenchmarkWake(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(4, nil, func(int, int) {})
	}
}

// BenchmarkSpawn is the per-call fan-out baseline for BenchmarkWake.
func BenchmarkSpawn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spawnFor(4, 4, func(int, int) {})
	}
}

// BenchmarkStealOverhead measures a maximally unbalanced job: every task's
// work lives in one span (simulated by task weights), so most tasks reach
// their executor by stealing. The per-task cost over BenchmarkBalanced's
// is the steal overhead.
func BenchmarkStealOverhead(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(256, nil, func(task, _ int) {
			if task < 64 {
				// The first span's tasks carry all the weight: its owner
				// stays pinned while the other slots' trivial spans drain,
				// forcing the remainder of this span to move by theft.
				s := int64(0)
				for k := 0; k < 2000; k++ {
					s += int64(k)
				}
				sink.Add(s)
			}
		})
	}
}

// BenchmarkBalanced is the evenly-weighted control for
// BenchmarkStealOverhead: same total work, spread so spans drain in place.
func BenchmarkBalanced(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(256, nil, func(task, _ int) {
			if task%4 == 0 {
				s := int64(0)
				for k := 0; k < 2000; k++ {
					s += int64(k)
				}
				sink.Add(s)
			}
		})
	}
}
