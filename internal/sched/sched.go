// Package sched is the engine's persistent worker-pool runtime: one set of
// long-lived worker goroutines per worker count, parked on a condition
// variable between phases and woken in O(1) when a run arrives, replacing
// the per-call goroutine fan-outs the engine phases used to pay on every
// superstep (spawn + WaitGroup barrier, ~µs each, × 3 phases × supersteps).
//
// Execution model. A Run call packs its tasks into per-slot spans —
// contiguous [lo, hi) index ranges, one per worker slot, stored as a single
// packed atomic word — and publishes the job to the pool. Executors claim a
// span and pop tasks from its low end; when their span drains they steal
// single tasks from the high end of other slots' spans (Chase-Lev style
// owner/thief ends, collapsed to one CAS word because tasks never re-enter
// a span). The *caller participates as an executor* of its own job, which
// gives two guarantees for free: a Run can never deadlock even if every
// pool worker is busy elsewhere (the caller alone drains it), and nested
// Run calls from inside a task are safe for the same reason.
//
// Cancellation keeps the engine's contract: stop, when non-nil, is polled
// before every task; once nonzero the remaining tasks are drained without
// executing, so a cancel aborts a multi-second sweep at task granularity.
//
// Instrumentation: every worker slot keeps cumulative tasks-run / steal /
// busy-ns / wake counters (cache-line padded), snapshotted by Stats and —
// across all shared pools — by Snapshot for /v1/stats; a per-Run Tally
// feeds the engine's per-run Stats.
package sched

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerStats is a snapshot of one worker slot's cumulative counters.
// Slot 0 belongs to callers (Run participates in its own job); slots
// 1..workers-1 are the pool's parked goroutines.
type WorkerStats struct {
	// Tasks counts tasks this slot executed (excluding tasks drained
	// after a stop).
	Tasks int64 `json:"tasks"`
	// Steals counts tasks this slot took from another slot's span.
	Steals int64 `json:"steals"`
	// BusyNS is the cumulative wall time this slot spent participating in
	// jobs (claiming, executing and stealing tasks).
	BusyNS int64 `json:"busy_ns"`
	// Wakes counts park→run transitions: how many times the slot was
	// woken from the condition variable and found work.
	Wakes int64 `json:"wakes"`
}

// Tally accumulates one Run call's execution counts: how many tasks ran,
// how many arrived by stealing, and the summed busy time of every
// participating executor. The engine threads one through a run to report
// scheduler work in its Stats.
type Tally struct {
	Tasks  atomic.Int64
	Steals atomic.Int64
	BusyNS atomic.Int64
}

// Options tunes one Run call.
type Options struct {
	// NoSteal pins tasks to their initial contiguous span assignment —
	// the static-schedule ablation. Idle executors still claim whole
	// unclaimed spans (liveness does not depend on any particular worker
	// being free), but never take tasks from a claimed one.
	NoSteal bool
	// Tally, when non-nil, additionally accumulates this call's counts.
	Tally *Tally
}

// counters is one worker slot's cumulative tallies, padded to a cache line
// so slots never false-share.
type counters struct {
	tasks  atomic.Int64
	steals atomic.Int64
	busyNS atomic.Int64
	wakes  atomic.Int64
	_      [32]byte
}

// span is one slot's task range, packed lo<<32|hi into a single atomic
// word: the owner pops from lo with a CAS, thieves pop from hi with a CAS,
// and the span is empty when lo >= hi. Padded so concurrent CAS traffic on
// neighbouring spans stays off each other's cache line.
type span struct {
	s atomic.Uint64
	_ [56]byte
}

func packSpan(lo, hi uint32) uint64 { return uint64(lo)<<32 | uint64(hi) }

// job is one Run call in flight.
type job struct {
	fn   func(task, worker int)
	stop *atomic.Int32
	// spans holds the per-slot task ranges; claim hands out span ownership
	// in order, so spans of busy slots are adopted by whoever is free.
	spans     []span
	claim     atomic.Int32
	remaining atomic.Int64
	done      chan struct{}
	noSteal   bool
	tally     *Tally
}

// hasWork reports whether an executor could still acquire a task: an
// unclaimed span remains, or (with stealing) any span is nonempty.
func (j *job) hasWork() bool {
	if int(j.claim.Load()) < len(j.spans) {
		return true
	}
	if j.noSteal {
		return false
	}
	for i := range j.spans {
		v := j.spans[i].s.Load()
		if uint32(v>>32) < uint32(v) {
			return true
		}
	}
	return false
}

// popLo takes the next task from the low (owner) end of span si.
func (j *job) popLo(si int) (int, bool) {
	sp := &j.spans[si].s
	for {
		v := sp.Load()
		lo, hi := uint32(v>>32), uint32(v)
		if lo >= hi {
			return 0, false
		}
		if sp.CompareAndSwap(v, packSpan(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// popHi takes one task from the high (thief) end of span si.
func (j *job) popHi(si int) (int, bool) {
	sp := &j.spans[si].s
	for {
		v := sp.Load()
		lo, hi := uint32(v>>32), uint32(v)
		if lo >= hi {
			return 0, false
		}
		if sp.CompareAndSwap(v, packSpan(lo, hi-1)) {
			return int(hi - 1), true
		}
	}
}

// Pool is a persistent set of worker goroutines executing Run calls. A
// Pool of n workers runs a job on at most n executors: n-1 parked
// goroutines plus the calling goroutine. Pools are safe for concurrent Run
// calls from multiple goroutines; jobs share the workers.
type Pool struct {
	nworkers int
	mu       sync.Mutex
	cond     *sync.Cond
	jobs     []*job
	closed   bool
	wg       sync.WaitGroup
	counters []counters
}

// NewPool creates a pool with n worker slots (minimum 1), spawning n-1
// goroutines. Prefer Shared outside tests: pools are cheap to keep but not
// to churn.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{nworkers: n, counters: make([]counters, n)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n - 1)
	for w := 1; w < n; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the pool's worker-slot count.
func (p *Pool) Workers() int { return p.nworkers }

// Close shuts the pool's worker goroutines down and waits for them to
// exit. It must not race with Run. Shared pools are never closed.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Stats snapshots the pool's per-slot cumulative counters.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.counters))
	for i := range p.counters {
		c := &p.counters[i]
		out[i] = WorkerStats{
			Tasks:  c.tasks.Load(),
			Steals: c.steals.Load(),
			BusyNS: c.busyNS.Load(),
			Wakes:  c.wakes.Load(),
		}
	}
	return out
}

// Run executes fn(task, worker) for every task in [0, ntasks) on up to
// Workers() executors (the pool's parked workers plus the caller) and
// returns when all tasks have finished. worker indices are unique among
// the job's concurrent executors and < Workers(), so callers may index
// per-worker scratch with them. stop, when non-nil, is polled before every
// task: once nonzero, remaining tasks are abandoned. Tasks are dealt as
// contiguous per-slot spans and rebalanced by work stealing, so no
// execution-order assumption is sound beyond: each task runs exactly once,
// on exactly one executor.
func (p *Pool) Run(ntasks int, stop *atomic.Int32, fn func(task, worker int)) {
	p.RunOptions(ntasks, stop, Options{}, fn)
}

// RunOptions is Run with scheduling options.
func (p *Pool) RunOptions(ntasks int, stop *atomic.Int32, opts Options, fn func(task, worker int)) {
	if ntasks <= 0 {
		return
	}
	if p.nworkers == 1 || ntasks == 1 {
		p.runInline(ntasks, stop, opts, fn)
		return
	}
	j := &job{fn: fn, stop: stop, noSteal: opts.NoSteal, tally: opts.Tally, done: make(chan struct{})}
	nspans := p.nworkers
	if nspans > ntasks {
		nspans = ntasks
	}
	j.spans = make([]span, nspans)
	for s := 0; s < nspans; s++ {
		j.spans[s].s.Store(packSpan(uint32(s*ntasks/nspans), uint32((s+1)*ntasks/nspans)))
	}
	j.remaining.Store(int64(ntasks))

	p.mu.Lock()
	p.jobs = append(p.jobs, j)
	p.mu.Unlock()
	// Wake one parked worker per span beyond the caller's own slot: a
	// broadcast would schedule every worker just to find nothing
	// acquirable when the job has fewer spans than the pool has workers.
	// A signal that lands while its target is still busy on another job is
	// not lost — workers re-check the job list before parking.
	for w := 1; w < nspans; w++ {
		p.cond.Signal()
	}

	p.work(0, j)
	<-j.done

	p.mu.Lock()
	for i, q := range p.jobs {
		if q == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// runInline executes the job on the calling goroutine alone (single-slot
// pools and single-task jobs skip the publish/park machinery entirely).
func (p *Pool) runInline(ntasks int, stop *atomic.Int32, opts Options, fn func(task, worker int)) {
	t0 := time.Now()
	ran := int64(0)
	for i := 0; i < ntasks; i++ {
		if stop != nil && stop.Load() != 0 {
			break
		}
		fn(i, 0)
		ran++
	}
	busy := time.Since(t0).Nanoseconds()
	p.counters[0].tasks.Add(ran)
	p.counters[0].busyNS.Add(busy)
	if t := opts.Tally; t != nil {
		t.Tasks.Add(ran)
		t.BusyNS.Add(busy)
	}
}

// worker is one parked goroutine's loop: wait for a job with acquirable
// work, participate, repeat.
func (p *Pool) worker(wid int) {
	defer p.wg.Done()
	for {
		j := p.nextJob(wid)
		if j == nil {
			return
		}
		p.work(wid, j)
	}
}

// nextJob blocks until some queued job has acquirable work (or the pool
// closes). Work only ever appears with a new job — tasks never re-enter a
// span — so waiting on the job-arrival broadcast cannot miss a wakeup.
func (p *Pool) nextJob(wid int) *job {
	p.mu.Lock()
	defer p.mu.Unlock()
	waited := false
	for {
		if p.closed {
			return nil
		}
		for _, j := range p.jobs {
			if j.hasWork() {
				if waited {
					p.counters[wid].wakes.Add(1)
				}
				return j
			}
		}
		waited = true
		p.cond.Wait()
	}
}

// work participates in job j as slot wid until the job has no task this
// executor could acquire: claim unclaimed spans and drain them from the
// owner end, then steal from the thief end of the others.
func (p *Pool) work(wid int, j *job) {
	t0 := time.Now()
	var ran, stolen int64
	for {
		if si := int(j.claim.Add(1) - 1); si < len(j.spans) {
			for {
				task, ok := j.popLo(si)
				if !ok {
					break
				}
				p.exec(j, task, wid, &ran)
			}
			continue
		}
		if j.noSteal {
			break
		}
		task, si := -1, -1
		for i := range j.spans {
			if t, ok := j.popHi(i); ok {
				task, si = t, i
				break
			}
		}
		if si < 0 {
			break
		}
		stolen++
		p.exec(j, task, wid, &ran)
	}
	if ran == 0 && stolen == 0 {
		return
	}
	busy := time.Since(t0).Nanoseconds()
	c := &p.counters[wid]
	c.tasks.Add(ran)
	c.steals.Add(stolen)
	c.busyNS.Add(busy)
	if t := j.tally; t != nil {
		t.Tasks.Add(ran)
		t.Steals.Add(stolen)
		t.BusyNS.Add(busy)
	}
}

// exec runs (or, once stopped, abandons) one task and completes the job
// when it was the last.
func (p *Pool) exec(j *job, task, wid int, ran *int64) {
	if j.stop == nil || j.stop.Load() == 0 {
		j.fn(task, wid)
		*ran++
	}
	if j.remaining.Add(-1) == 0 {
		close(j.done)
	}
}

// Shared pools, keyed by worker count: the process-wide persistent runtime.
// A pool is spawned on first request for its size and parked forever after
// — workers survive across runs, workspaces and sessions, which is what
// removes the per-phase spawn cost. Shared pools are never closed.
var (
	sharedMu sync.Mutex
	shared   = map[int]*Pool{}
)

// Shared returns the process-wide pool with n worker slots, creating it on
// first use.
func Shared(n int) *Pool {
	if n < 1 {
		n = 1
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p, ok := shared[n]; ok {
		return p
	}
	p := NewPool(n)
	shared[n] = p
	return p
}

// PoolStats is one shared pool's stats snapshot for /v1/stats.
type PoolStats struct {
	// Workers is the pool's worker-slot count (slot 0 is the callers'
	// slot: Run participates in its own jobs).
	Workers int `json:"workers"`
	// PerWorker is the per-slot cumulative counter snapshot.
	PerWorker []WorkerStats `json:"per_worker"`
}

// Snapshot returns the cumulative counters of every shared pool spawned so
// far, ordered by worker count.
func Snapshot() []PoolStats {
	sharedMu.Lock()
	pools := make([]*Pool, 0, len(shared))
	for _, p := range shared {
		pools = append(pools, p)
	}
	sharedMu.Unlock()
	sort.Slice(pools, func(i, k int) bool { return pools[i].nworkers < pools[k].nworkers })
	out := make([]PoolStats, len(pools))
	for i, p := range pools {
		out[i] = PoolStats{Workers: p.nworkers, PerWorker: p.Stats()}
	}
	return out
}
