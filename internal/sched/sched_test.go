package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunExecutesEveryTaskOnce covers the basic contract across worker and
// task counts, including nworkers > ntasks and the inline paths.
func TestRunExecutesEveryTaskOnce(t *testing.T) {
	for _, nw := range []int{1, 2, 4, 8} {
		for _, nt := range []int{0, 1, 2, 3, 7, 8, 64, 1000} {
			p := NewPool(nw)
			hits := make([]atomic.Int32, max(nt, 1))
			p.Run(nt, nil, func(task, worker int) {
				if worker < 0 || worker >= nw {
					t.Errorf("nw=%d nt=%d: worker index %d out of range", nw, nt, worker)
				}
				hits[task].Add(1)
			})
			for i := 0; i < nt; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("nw=%d nt=%d: task %d ran %d times", nw, nt, i, got)
				}
			}
			p.Close()
		}
	}
}

// TestNoStealExecutesEveryTaskOnce covers the static-schedule ablation.
func TestNoStealExecutesEveryTaskOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const nt = 257
	hits := make([]atomic.Int32, nt)
	p.RunOptions(nt, nil, Options{NoSteal: true}, func(task, _ int) {
		hits[task].Add(1)
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}

// TestZeroTasks asserts Run with no tasks returns without touching the
// pool (and that a nil fn is never called).
func TestZeroTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.Run(0, nil, nil)
	p.Run(-3, nil, nil)
}

// TestPoolReuseAcrossRuns drives many consecutive runs through one pool —
// the workspace-reuse pattern: a session's supersteps issue thousands of
// Run calls against the same parked workers. Run under -race this also
// checks the publication of fn's captured state to pool workers.
func TestPoolReuseAcrossRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const runs, nt = 500, 37
	total := 0
	for r := 0; r < runs; r++ {
		var sum atomic.Int64
		p.Run(nt, nil, func(task, _ int) { sum.Add(int64(task) + 1) })
		if got, want := sum.Load(), int64(nt*(nt+1)/2); got != want {
			t.Fatalf("run %d: sum %d, want %d", r, got, want)
		}
		total += nt
	}
	stats := p.Stats()
	var tasks int64
	for _, ws := range stats {
		tasks += ws.Tasks
	}
	if tasks != int64(total) {
		t.Fatalf("cumulative tasks %d, want %d", tasks, total)
	}
}

// TestConcurrentRuns issues overlapping jobs from many goroutines against
// one pool: worker indices must stay unique per job (checked by writing to
// per-worker slots without synchronization — -race catches sharing).
func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				scratch := make([][]int, p.Workers())
				p.Run(29, nil, func(task, worker int) {
					scratch[worker] = append(scratch[worker], task)
				})
				n := 0
				for _, s := range scratch {
					n += len(s)
				}
				if n != 29 {
					t.Errorf("saw %d tasks, want 29", n)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestNestedRun issues a Run from inside a task: the caller-participation
// design must drain the inner job even when every pool worker is occupied.
func TestNestedRun(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var inner atomic.Int64
	p.Run(4, nil, func(task, _ int) {
		p.Run(8, nil, func(int, int) { inner.Add(1) })
	})
	if got := inner.Load(); got != 32 {
		t.Fatalf("inner tasks ran %d times, want 32", got)
	}
}

// TestStopAbandonsTasks sets the stop flag from inside an early task and
// asserts the bulk of the job is abandoned while Run still returns.
func TestStopAbandonsTasks(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var stop atomic.Int32
	var ran atomic.Int64
	p.Run(10000, &stop, func(task, _ int) {
		ran.Add(1)
		stop.Store(1)
	})
	if got := ran.Load(); got >= 10000 {
		t.Fatalf("stop abandoned nothing: %d tasks ran", got)
	}
	if stop.Load() == 0 {
		t.Fatal("no task ran at all")
	}
}

// TestStopHonoredFromStolenTask cancels from a task that was stolen: the
// flag must be honored by every executor, including the thief's subsequent
// pops. The heavy first span pins the owner while the other spans drain,
// forcing real steals before the cancel.
func TestStopHonoredFromStolenTask(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	for round := 0; round < 20; round++ {
		var stop atomic.Int32
		var ran, afterStop atomic.Int64
		block := make(chan struct{}, 1)
		const nt = 4096
		p.Run(nt, &stop, func(task, worker int) {
			ran.Add(1)
			if stop.Load() != 0 {
				afterStop.Add(1)
			}
			if task == 0 {
				// Pin the first span's owner until another executor has
				// stolen and cancelled.
				<-block
				return
			}
			if task > nt/2 {
				// A task from the top half: on an 8-slot span layout this
				// ran on a different executor than task 0's owner, very
				// often via a steal. Cancel from here.
				stop.Store(1)
				select {
				case block <- struct{}{}:
				default:
				}
			}
		})
		// The unblock send may not have fired if the cancel came before
		// task 0 started; release it unconditionally.
		select {
		case block <- struct{}{}:
		default:
		}
		if got := ran.Load(); got >= nt {
			t.Fatalf("round %d: cancellation abandoned nothing (%d ran)", round, got)
		}
	}
	// The pinned first span leaves hundreds of tasks for thieves each
	// round: real steals must have happened (and honored the stop flag —
	// stolen pops after the cancel are abandoned, which the ran < nt
	// assertion above already covered).
	var steals int64
	for _, ws := range p.Stats() {
		steals += ws.Steals
	}
	if steals == 0 {
		t.Fatal("no steal was recorded across 20 pinned rounds")
	}
}

// TestStatsCounters asserts the instrumentation moves: tasks accumulate
// exactly, busy time is nonzero, and a Tally matches the per-run work.
func TestStatsCounters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var tl Tally
	const nt = 128
	p.RunOptions(nt, nil, Options{Tally: &tl}, func(task, _ int) {
		s := 0
		for i := 0; i < 1000; i++ {
			s += i
		}
		_ = s
	})
	if got := tl.Tasks.Load(); got != nt {
		t.Fatalf("tally tasks %d, want %d", got, nt)
	}
	if tl.BusyNS.Load() <= 0 {
		t.Fatal("tally busy time is zero")
	}
	var tasks, busy int64
	for _, ws := range p.Stats() {
		tasks += ws.Tasks
		busy += ws.BusyNS
	}
	if tasks != nt || busy <= 0 {
		t.Fatalf("pool counters tasks=%d busy=%d, want tasks=%d busy>0", tasks, busy, nt)
	}
}

// TestSharedPoolIdentity asserts Shared returns one pool per worker count,
// and that Snapshot sees it.
func TestSharedPoolIdentity(t *testing.T) {
	a, b := Shared(3), Shared(3)
	if a != b {
		t.Fatal("Shared(3) returned two pools")
	}
	if c := Shared(5); c == a {
		t.Fatal("Shared(5) aliased Shared(3)")
	}
	a.Run(16, nil, func(int, int) {})
	found := false
	for _, ps := range Snapshot() {
		if ps.Workers == 3 {
			found = true
			if len(ps.PerWorker) != 3 {
				t.Fatalf("snapshot has %d slots, want 3", len(ps.PerWorker))
			}
		}
	}
	if !found {
		t.Fatal("Snapshot is missing the 3-worker shared pool")
	}
}
