package reference_test

import (
	"math"
	"testing"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
	"graphmat/internal/reference"
	"graphmat/internal/sparse"
)

// The reference implementations are the repo's ground truth, so they get
// their own agreement suite: on small graphs every reference result must
// match the corresponding GraphMat vertex program (which is itself tested
// against hand-computed cases elsewhere). Mutual agreement of two
// independently-written implementations is the strongest check we have
// without golden files.

func smallGraph() *sparse.COO[float32] {
	return gen.RMAT(gen.RMATOptions{Scale: 6, EdgeFactor: 6, Seed: 17, MaxWeight: 9})
}

func TestReferencePageRankAgrees(t *testing.T) {
	const iters = 20
	adj := smallGraph()
	// The engine preprocesses with NewPageRankGraph (self-loops removed,
	// duplicates summed out by the build); feed the reference the same
	// edge set the engine actually runs on.
	g, err := algorithms.NewPageRankGraph(adj.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := algorithms.PageRank(g, algorithms.PageRankOptions{MaxIterations: iters})

	pre := adj.Clone()
	pre.RemoveSelfLoops()
	pre.SortRowMajor()
	pre.DedupKeepFirst()
	want := reference.PageRank(pre.NRows, pre.Entries, 0.15, iters)

	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9*math.Max(1, math.Abs(want[v])) {
			t.Fatalf("vertex %d: engine %v, reference %v", v, got[v], want[v])
		}
	}
}

func TestReferenceBFSAgrees(t *testing.T) {
	adj := smallGraph()
	g, err := algorithms.NewBFSGraph(adj.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := algorithms.BFS(g, 3, graphmat.Config{})

	pre := adj.Clone()
	pre.RemoveSelfLoops()
	pre.SortRowMajor()
	pre.DedupKeepFirst()
	pre.Symmetrize()
	want := reference.BFS(pre.NRows, pre.Entries, 3)

	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: engine %d, reference %d", v, got[v], want[v])
		}
	}
}

func TestReferenceSSSPAgrees(t *testing.T) {
	adj := smallGraph()
	g, err := algorithms.NewSSSPGraph(adj.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := algorithms.SSSP(g, 0, graphmat.Config{})

	pre := adj.Clone()
	pre.RemoveSelfLoops()
	pre.SortRowMajor()
	pre.DedupKeepFirst()
	want := reference.SSSP(pre.NRows, pre.Entries, 0)

	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: engine %v, reference %v", v, got[v], want[v])
		}
	}
}

func TestReferenceComponentsAgrees(t *testing.T) {
	adj := smallGraph()
	g, err := algorithms.NewCCGraph(adj.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := algorithms.ConnectedComponents(g, graphmat.Config{})

	pre := adj.Clone()
	pre.RemoveSelfLoops()
	pre.Symmetrize()
	want := reference.ConnectedComponents(pre.NRows, pre.Entries)

	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: engine %d, reference %d", v, got[v], want[v])
		}
	}
}

func TestReferenceTrianglesAgrees(t *testing.T) {
	adj := gen.RMAT(gen.RMATOptions{Scale: 6, EdgeFactor: 6, Seed: 23, Params: gen.RMATTriangle})
	g, err := algorithms.NewTriangleGraph(adj.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := algorithms.TriangleCount(g, graphmat.Config{})

	pre := adj.Clone()
	pre.RemoveSelfLoops()
	pre.SortRowMajor()
	pre.DedupKeepFirst()
	pre.Symmetrize()
	pre.UpperTriangle()
	want := reference.Triangles(pre.NRows, pre.Entries)

	if got != want {
		t.Fatalf("engine counted %d triangles, reference %d", got, want)
	}
}

func TestReferenceBFSHandCase(t *testing.T) {
	// 0-1-2 path plus isolated vertex 3.
	coo := sparse.NewCOO[float32](4, 4)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(1, 2, 1)
	coo.Add(2, 1, 1)
	dist := reference.BFS(4, coo.Entries, 0)
	want := []uint32{0, 1, 2, math.MaxUint32}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestReferenceSSSPHandCase(t *testing.T) {
	// Two routes 0→2: direct weight 5, via 1 weight 2+2=4.
	coo := sparse.NewCOO[float32](3, 3)
	coo.Add(0, 2, 5)
	coo.Add(0, 1, 2)
	coo.Add(1, 2, 2)
	dist := reference.SSSP(3, coo.Entries, 0)
	if dist[2] != 4 {
		t.Fatalf("dist[2] = %v, want 4 (shorter two-hop route)", dist[2])
	}
}

func TestReferenceCFLoss(t *testing.T) {
	// One rating 0→1 of 3 with unit factors of dimension 2: dot = 2,
	// error (3-2)^2 = 1, regularizer lambda * (1+1+1+1).
	ratings := []sparse.Triple[float32]{{Row: 0, Col: 1, Val: 3}}
	factors := [][]float32{{1, 1}, {1, 1}}
	loss := reference.CFLoss(ratings, factors, 0.5)
	if math.Abs(loss-3) > 1e-12 {
		t.Fatalf("loss = %v, want 3", loss)
	}
}
