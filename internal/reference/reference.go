// Package reference holds small, obviously-correct sequential
// implementations of the paper's five algorithms. They are the ground truth
// the GraphMat programs, the baseline engines and the native kernels are all
// tested against. Nothing here is optimized; clarity is the only goal.
package reference

import (
	"container/heap"
	"math"
	"sort"

	"graphmat/internal/sparse"
)

// AdjList is a forward adjacency list: AdjList[u] lists (v, w) for each edge
// u→v with weight w.
type AdjList [][]Arc

// Arc is one outgoing edge.
type Arc struct {
	To uint32
	W  float32
}

// BuildAdj converts triples (Row = src, Col = dst) into an adjacency list,
// keeping duplicates as given.
func BuildAdj(n uint32, edges []sparse.Triple[float32]) AdjList {
	adj := make(AdjList, n)
	for _, e := range edges {
		adj[e.Row] = append(adj[e.Row], Arc{To: e.Col, W: e.Val})
	}
	return adj
}

// PageRank iterates PR(v) = r + (1-r)·Σ_{(u,v)∈E} PR(u)/outdeg(u) for a
// fixed number of iterations from all-ones, exactly matching the paper's
// equation (1) and the engine's semantics: a vertex with no in-edges keeps
// its current value (it receives no messages).
func PageRank(n uint32, edges []sparse.Triple[float32], r float64, iterations int) []float64 {
	outdeg := make([]float64, n)
	for _, e := range edges {
		outdeg[e.Row]++
	}
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = 1
	}
	for it := 0; it < iterations; it++ {
		sum := make([]float64, n)
		received := make([]bool, n)
		for _, e := range edges {
			if outdeg[e.Row] > 0 {
				sum[e.Col] += pr[e.Row] / outdeg[e.Row]
				received[e.Col] = true
			}
		}
		next := make([]float64, n)
		copy(next, pr)
		for v := uint32(0); v < n; v++ {
			if received[v] {
				next[v] = r + (1-r)*sum[v]
			}
		}
		pr = next
	}
	return pr
}

// InfDist marks an unreachable vertex in BFS and SSSP results.
const InfDist = math.MaxFloat32

// BFS returns hop distances from root (math.MaxUint32 for unreachable).
func BFS(n uint32, edges []sparse.Triple[float32], root uint32) []uint32 {
	adj := BuildAdj(n, edges)
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = math.MaxUint32
	}
	dist[root] = 0
	queue := []uint32{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range adj[u] {
			if dist[a.To] == math.MaxUint32 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

type pqItem struct {
	v uint32
	d float32
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// SSSP returns Dijkstra shortest-path distances from src (InfDist for
// unreachable). Edge weights must be non-negative.
func SSSP(n uint32, edges []sparse.Triple[float32], src uint32) []float32 {
	adj := BuildAdj(n, edges)
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[src] = 0
	q := &pq{{v: src, d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, a := range adj[it.v] {
			if nd := it.d + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				heap.Push(q, pqItem{v: a.To, d: nd})
			}
		}
	}
	return dist
}

// Triangles counts triangles in a DAG given as upper-triangular edges
// (u < v for every edge) by brute-force wedge checking with a hash set.
func Triangles(n uint32, edges []sparse.Triple[float32]) int64 {
	adj := make([][]uint32, n)
	set := make(map[uint64]bool, len(edges))
	key := func(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }
	for _, e := range edges {
		adj[e.Row] = append(adj[e.Row], e.Col)
		set[key(e.Row, e.Col)] = true
	}
	var count int64
	for u := uint32(0); u < n; u++ {
		for i := 0; i < len(adj[u]); i++ {
			for j := i + 1; j < len(adj[u]); j++ {
				a, b := adj[u][i], adj[u][j]
				if a > b {
					a, b = b, a
				}
				if set[key(a, b)] {
					count++
				}
			}
		}
	}
	return count
}

// CFLoss computes the collaborative-filtering objective of equation (3):
// Σ (G_uv − p_u·p_v)² + λ·Σ‖p‖² over all factor vectors, for ratings given
// as user→item triples.
func CFLoss(ratings []sparse.Triple[float32], factors [][]float32, lambda float64) float64 {
	loss := 0.0
	for _, e := range ratings {
		dot := 0.0
		pu, pv := factors[e.Row], factors[e.Col]
		for k := range pu {
			dot += float64(pu[k]) * float64(pv[k])
		}
		d := float64(e.Val) - dot
		loss += d * d
	}
	for _, p := range factors {
		for _, x := range p {
			loss += lambda * float64(x) * float64(x)
		}
	}
	return loss
}

// ConnectedComponents labels each vertex of an undirected graph (given as a
// symmetric edge list) with the smallest vertex id in its component.
func ConnectedComponents(n uint32, edges []sparse.Triple[float32]) []uint32 {
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(e.Row), find(e.Col)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	labels := make([]uint32, n)
	// Two passes: point every vertex at its root, then collapse to the
	// minimum id in the component (union by min above already ensures the
	// root is the minimum).
	for v := uint32(0); v < n; v++ {
		labels[v] = find(v)
	}
	return labels
}

// SortedCopy returns a sorted copy of s (test helper).
func SortedCopy(s []uint32) []uint32 {
	out := append([]uint32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
