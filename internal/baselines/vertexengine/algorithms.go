package vertexengine

import (
	"math"
	"sort"
)

// The paper's five algorithms written as GAS programs. Data types mirror
// what a GraphLab user would write; everything crosses the engine boundary
// boxed.

// --- PageRank ---

type prData struct {
	rank   float64
	invDeg float64
}

type pageRankProg struct{ restart float64 }

func (pageRankProg) GatherEdges() EdgeSet { return InEdges }

func (pageRankProg) Gather(_ uint32, _ any, _ uint32, otherData any, _ float32) any {
	od := otherData.(prData)
	if od.invDeg == 0 {
		return nil
	}
	return od.rank * od.invDeg
}

func (pageRankProg) Sum(a, b any) any { return a.(float64) + b.(float64) }

func (p pageRankProg) Apply(_ uint32, data any, gathered any) any {
	d := data.(prData)
	if gathered != nil {
		d.rank = p.restart + (1-p.restart)*gathered.(float64)
	}
	return d
}

func (pageRankProg) ScatterEdges() EdgeSet { return NoEdges }

func (pageRankProg) Scatter(_ uint32, _ any, _ uint32, _ any, _ float32) bool { return false }

// PageRank runs the fixed-iteration GAS PageRank and returns ranks plus
// engine stats. The engine must have been built on the directed graph.
func PageRank(e *Engine, restart float64, iters, nthreads int) ([]float64, Stats) {
	outDeg := make([]float64, e.n)
	for v := uint32(0); v < e.n; v++ {
		outDeg[v] = float64(len(e.out[v]))
	}
	e.Init(func(v uint32) any {
		d := prData{rank: 1}
		if outDeg[v] > 0 {
			d.invDeg = 1 / outDeg[v]
		}
		return d
	})
	stats := e.Run(pageRankProg{restart: restart}, iters, nthreads, true)
	ranks := make([]float64, e.n)
	for v := uint32(0); v < e.n; v++ {
		ranks[v] = e.Data(v).(prData).rank
	}
	return ranks, stats
}

// --- BFS ---

const unreached = uint32(math.MaxUint32)

type bfsProg struct{}

func (bfsProg) GatherEdges() EdgeSet { return InEdges }

func (bfsProg) Gather(_ uint32, _ any, _ uint32, otherData any, _ float32) any {
	od := otherData.(uint32)
	if od == unreached {
		return nil
	}
	return od + 1
}

func (bfsProg) Sum(a, b any) any { return min(a.(uint32), b.(uint32)) }

func (bfsProg) Apply(_ uint32, data any, gathered any) any {
	d := data.(uint32)
	if gathered != nil {
		if g := gathered.(uint32); g < d {
			return g
		}
	}
	return d
}

func (bfsProg) ScatterEdges() EdgeSet { return OutEdges }

func (bfsProg) Scatter(_ uint32, newData any, _ uint32, otherData any, _ float32) bool {
	return otherData.(uint32) > newData.(uint32)+1
}

// BFS runs signal-driven GAS BFS from root; the engine should hold a
// symmetric graph (the paper's BFS preprocessing).
func BFS(e *Engine, root uint32, nthreads int) ([]uint32, Stats) {
	e.Init(func(v uint32) any {
		if v == root {
			return uint32(0)
		}
		return unreached
	})
	e.active.Reset()
	e.Signal(root)
	stats := e.Run(bfsProg{}, 0, nthreads, false)
	dist := make([]uint32, e.n)
	for v := uint32(0); v < e.n; v++ {
		dist[v] = e.Data(v).(uint32)
	}
	return dist, stats
}

// --- SSSP ---

const infDist = float32(math.MaxFloat32)

type ssspProg struct{}

func (ssspProg) GatherEdges() EdgeSet { return InEdges }

func (ssspProg) Gather(_ uint32, _ any, _ uint32, otherData any, w float32) any {
	od := otherData.(float32)
	if od == infDist {
		return nil
	}
	return od + w
}

func (ssspProg) Sum(a, b any) any { return min(a.(float32), b.(float32)) }

func (ssspProg) Apply(_ uint32, data any, gathered any) any {
	d := data.(float32)
	if gathered != nil {
		if g := gathered.(float32); g < d {
			return g
		}
	}
	return d
}

func (ssspProg) ScatterEdges() EdgeSet { return OutEdges }

func (ssspProg) Scatter(_ uint32, newData any, _ uint32, otherData any, w float32) bool {
	return otherData.(float32) > newData.(float32)+w
}

// SSSP runs signal-driven GAS shortest paths from src on the directed
// weighted graph.
func SSSP(e *Engine, src uint32, nthreads int) ([]float32, Stats) {
	e.Init(func(v uint32) any {
		if v == src {
			return float32(0)
		}
		return infDist
	})
	e.active.Reset()
	e.Signal(src)
	stats := e.Run(ssspProg{}, 0, nthreads, false)
	dist := make([]float32, e.n)
	for v := uint32(0); v < e.n; v++ {
		dist[v] = e.Data(v).(float32)
	}
	return dist, stats
}

// --- Triangle counting ---

// tcData carries the phase-1 neighbor collection: the sorted in-neighbor
// list and GraphLab's hash-set acceleration structure (the paper credits
// GraphLab's TC showing to its cuckoo-hash sets; Go's map plays that role).
type tcData struct {
	nbrs  []uint32
	set   map[uint32]struct{}
	count int64
}

type tcCollect struct{}

func (tcCollect) GatherEdges() EdgeSet { return InEdges }
func (tcCollect) Gather(_ uint32, _ any, other uint32, _ any, _ float32) any {
	return []uint32{other}
}
func (tcCollect) Sum(a, b any) any { return append(a.([]uint32), b.([]uint32)...) }
func (tcCollect) Apply(_ uint32, _ any, gathered any) any {
	d := tcData{}
	if gathered != nil {
		d.nbrs = gathered.([]uint32)
		sort.Slice(d.nbrs, func(i, j int) bool { return d.nbrs[i] < d.nbrs[j] })
		d.set = make(map[uint32]struct{}, len(d.nbrs))
		for _, u := range d.nbrs {
			d.set[u] = struct{}{}
		}
	}
	return d
}
func (tcCollect) ScatterEdges() EdgeSet                                    { return NoEdges }
func (tcCollect) Scatter(_ uint32, _ any, _ uint32, _ any, _ float32) bool { return false }

type tcCount struct{}

func (tcCount) GatherEdges() EdgeSet { return InEdges }
func (tcCount) Gather(_ uint32, selfData any, _ uint32, otherData any, _ float32) any {
	sd := selfData.(tcData)
	od := otherData.(tcData)
	var c int64
	for _, u := range od.nbrs {
		if _, ok := sd.set[u]; ok {
			c++
		}
	}
	return c
}
func (tcCount) Sum(a, b any) any { return a.(int64) + b.(int64) }
func (tcCount) Apply(_ uint32, data any, gathered any) any {
	d := data.(tcData)
	if gathered != nil {
		d.count = gathered.(int64)
	}
	return d
}
func (tcCount) ScatterEdges() EdgeSet                                    { return NoEdges }
func (tcCount) Scatter(_ uint32, _ any, _ uint32, _ any, _ float32) bool { return false }

// Triangles counts triangles on an upper-triangular DAG using the two-phase
// GAS pipeline.
func Triangles(e *Engine, nthreads int) (int64, Stats) {
	e.Init(func(uint32) any { return tcData{} })
	e.active.Reset()
	e.SignalAll()
	stats := e.Run(tcCollect{}, 1, nthreads, false)
	e.active.Reset()
	e.SignalAll()
	s2 := e.Run(tcCount{}, 1, nthreads, false)
	stats.Supersteps += s2.Supersteps
	stats.Gathers += s2.Gathers
	stats.Applies += s2.Applies
	stats.Scatters += s2.Scatters
	var total int64
	for v := uint32(0); v < e.n; v++ {
		total += e.Data(v).(tcData).count
	}
	return total, stats
}

// --- Collaborative filtering ---

// CFLatentDim matches the GraphMat implementation's K.
const CFLatentDim = 20

type cfProg struct {
	gamma, lambda float32
}

func (cfProg) GatherEdges() EdgeSet { return InEdges }

func (cfProg) Gather(_ uint32, selfData any, _ uint32, otherData any, rating float32) any {
	pv := selfData.([]float32)
	pu := otherData.([]float32)
	var dot float32
	for k := 0; k < CFLatentDim; k++ {
		dot += pu[k] * pv[k]
	}
	e := rating - dot
	grad := make([]float32, CFLatentDim)
	for k := 0; k < CFLatentDim; k++ {
		grad[k] = e * pu[k]
	}
	return grad
}

func (cfProg) Sum(a, b any) any {
	ga, gb := a.([]float32), b.([]float32)
	for k := range ga {
		ga[k] += gb[k]
	}
	return ga
}

func (p cfProg) Apply(_ uint32, data any, gathered any) any {
	pv := data.([]float32)
	if gathered == nil {
		return pv
	}
	grad := gathered.([]float32)
	out := make([]float32, CFLatentDim)
	for k := 0; k < CFLatentDim; k++ {
		out[k] = pv[k] + p.gamma*(grad[k]-p.lambda*pv[k])
	}
	return out
}

func (cfProg) ScatterEdges() EdgeSet                                    { return NoEdges }
func (cfProg) Scatter(_ uint32, _ any, _ uint32, _ any, _ float32) bool { return false }

// CF runs fixed-iteration GAS gradient descent on a symmetrized bipartite
// ratings graph; init supplies the deterministic factor initialization.
func CF(e *Engine, gamma, lambda float32, iters, nthreads int, init func(v, k int) float32) ([][]float32, Stats) {
	e.Init(func(v uint32) any {
		p := make([]float32, CFLatentDim)
		for k := 0; k < CFLatentDim; k++ {
			p[k] = init(int(v), k)
		}
		return p
	})
	stats := e.Run(cfProg{gamma: gamma, lambda: lambda}, iters, nthreads, true)
	out := make([][]float32, e.n)
	for v := uint32(0); v < e.n; v++ {
		out[v] = e.Data(v).([]float32)
	}
	return out, stats
}
