// Package vertexengine is the reproduction's stand-in for GraphLab v2.2 in
// the paper's comparisons: a synchronous gather–apply–scatter (GAS) vertex
// engine. It deliberately recreates the architectural properties the paper
// credits for GraphLab's performance profile rather than GraphMat's:
//
//   - per-vertex adjacency lists (slice-of-slices, one indirection per
//     vertex) instead of a streaming compressed matrix;
//   - vertex and gather data passed as interface{} ("boxed"), so user
//     callbacks cannot inline into the edge loops and scalar accumulators
//     allocate;
//   - gather is pull-based over all in-edges of an active vertex, including
//     edges from neighbors that cannot contribute (GraphLab's wasted-work
//     pattern on traversal algorithms);
//   - signaling through an atomically-updated bitset.
//
// The engine is correct and parallel; it is simply built the way a
// general-purpose GAS system is built.
package vertexengine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"graphmat/internal/bitvec"
	"graphmat/internal/sparse"
)

// EdgeSet selects which incident edges a phase runs over.
type EdgeSet int

const (
	// NoEdges skips the phase entirely.
	NoEdges EdgeSet = iota
	// InEdges runs over edges arriving at the vertex.
	InEdges
	// OutEdges runs over edges leaving the vertex.
	OutEdges
	// AllEdges runs over both.
	AllEdges
)

// Program is a GAS vertex program. Data flows as interface{} exactly like
// GraphLab's type-erased vertex/gather types.
type Program interface {
	// GatherEdges selects the gather phase's edge set.
	GatherEdges() EdgeSet
	// Gather computes one edge's contribution; self is the vertex being
	// updated, other the neighbor across the edge.
	Gather(self uint32, selfData any, other uint32, otherData any, edge float32) any
	// Sum folds two gather contributions (commutative, associative).
	Sum(a, b any) any
	// Apply produces the vertex's new data from the folded gather result
	// (nil when the vertex gathered nothing).
	Apply(v uint32, data any, gathered any) any
	// ScatterEdges selects the scatter phase's edge set.
	ScatterEdges() EdgeSet
	// Scatter inspects an incident edge after apply and reports whether to
	// signal the neighbor for the next superstep.
	Scatter(self uint32, newData any, other uint32, otherData any, edge float32) bool
}

// halfEdge is one directed adjacency entry.
type halfEdge struct {
	nbr uint32
	w   float32
}

// Stats tallies engine work for the Figure 6 counter proxies.
type Stats struct {
	Supersteps int
	Gathers    int64 // gather edge visits
	Applies    int64
	Scatters   int64 // scatter edge visits
	Signals    int64
}

// Engine holds the graph and double-buffered vertex data.
type Engine struct {
	n      uint32
	in     [][]halfEdge
	out    [][]halfEdge
	data   []any
	next   []any
	active *bitvec.Vector
	signal *bitvec.Vector
}

// New builds the engine's adjacency lists from forward triples (Row = src,
// Col = dst). The input is not modified.
func New(adj *sparse.COO[float32]) *Engine {
	n := adj.NRows
	e := &Engine{
		n:      n,
		in:     make([][]halfEdge, n),
		out:    make([][]halfEdge, n),
		data:   make([]any, n),
		next:   make([]any, n),
		active: bitvec.New(int(n)),
		signal: bitvec.New(int(n)),
	}
	for _, t := range adj.Entries {
		e.out[t.Row] = append(e.out[t.Row], halfEdge{nbr: t.Col, w: t.Val})
		e.in[t.Col] = append(e.in[t.Col], halfEdge{nbr: t.Row, w: t.Val})
	}
	return e
}

// NumVertices returns the vertex count.
func (e *Engine) NumVertices() uint32 { return e.n }

// Init sets every vertex's data.
func (e *Engine) Init(fn func(v uint32) any) {
	for v := uint32(0); v < e.n; v++ {
		e.data[v] = fn(v)
	}
}

// Data returns vertex v's current data.
func (e *Engine) Data(v uint32) any { return e.data[v] }

// Signal marks a vertex active for the first superstep.
func (e *Engine) Signal(v uint32) { e.active.Set(v) }

// SignalAll marks every vertex active for the first superstep.
func (e *Engine) SignalAll() {
	for v := uint32(0); v < e.n; v++ {
		e.active.Set(v)
	}
}

func edgesFor(set EdgeSet, in, out []halfEdge) ([]halfEdge, []halfEdge) {
	switch set {
	case InEdges:
		return in, nil
	case OutEdges:
		return out, nil
	case AllEdges:
		return in, out
	default:
		return nil, nil
	}
}

// Run executes supersteps until no vertex is signaled or maxSupersteps is
// reached (<= 0 means unbounded). When reactivateAll is set, every vertex is
// signaled at the start of each superstep (GraphLab's "always" scheduling
// used for fixed-iteration algorithms like PageRank and CF).
func (e *Engine) Run(p Program, maxSupersteps, nthreads int, reactivateAll bool) Stats {
	if nthreads <= 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	var stats Stats
	gatherSet := p.GatherEdges()
	scatterSet := p.ScatterEdges()

	for step := 0; maxSupersteps <= 0 || step < maxSupersteps; step++ {
		if reactivateAll {
			for v := uint32(0); v < e.n; v++ {
				e.active.Set(v)
			}
		}
		if !e.active.Any() {
			break
		}
		stats.Supersteps++
		e.signal.Reset()

		var gathers, applies, scatters, signals atomic.Int64
		e.parallelActive(nthreads, func(v uint32) {
			var acc any
			var localGathers int64
			inE, outE := edgesFor(gatherSet, e.in[v], e.out[v])
			for _, lists := range [2][]halfEdge{inE, outE} {
				for _, he := range lists {
					g := p.Gather(v, e.data[v], he.nbr, e.data[he.nbr], he.w)
					localGathers++
					if g == nil {
						continue
					}
					if acc == nil {
						acc = g
					} else {
						acc = p.Sum(acc, g)
					}
				}
			}
			e.next[v] = p.Apply(v, e.data[v], acc)
			gathers.Add(localGathers)
			applies.Add(1)
		})

		// Commit the new data of active vertices, then scatter against the
		// committed state.
		e.parallelActive(nthreads, func(v uint32) {
			e.data[v] = e.next[v]
		})
		if scatterSet != NoEdges {
			e.parallelActive(nthreads, func(v uint32) {
				var localScatters, localSignals int64
				inE, outE := edgesFor(scatterSet, e.in[v], e.out[v])
				for _, lists := range [2][]halfEdge{inE, outE} {
					for _, he := range lists {
						localScatters++
						if p.Scatter(v, e.data[v], he.nbr, e.data[he.nbr], he.w) {
							e.signal.SetAtomic(he.nbr)
							localSignals++
						}
					}
				}
				scatters.Add(localScatters)
				signals.Add(localSignals)
			})
		}

		stats.Gathers += gathers.Load()
		stats.Applies += applies.Load()
		stats.Scatters += scatters.Load()
		stats.Signals += signals.Load()

		e.active, e.signal = e.signal, e.active
	}
	return stats
}

// parallelActive runs fn over every active vertex using nthreads goroutines
// pulling 64-aligned ranges dynamically.
func (e *Engine) parallelActive(nthreads int, fn func(v uint32)) {
	n := int(e.n)
	if nthreads <= 1 || n < 2048 {
		e.active.Iterate(fn)
		return
	}
	const rangeBits = 12 // 4096-vertex ranges
	nranges := (n + (1 << rangeBits) - 1) >> rangeBits
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nthreads)
	for t := 0; t < nthreads; t++ {
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1) - 1)
				if r >= nranges {
					return
				}
				lo := uint32(r << rangeBits)
				hi := uint32((r + 1) << rangeBits)
				if hi > uint32(n) {
					hi = uint32(n)
				}
				e.active.IterateRange(lo, hi, fn)
			}
		}()
	}
	wg.Wait()
}
