package vertexengine

import (
	"math"
	"testing"
	"testing/quick"

	"graphmat/internal/gen"
	"graphmat/internal/reference"
	"graphmat/internal/sparse"
)

func prepared(seed uint64, scale, ef, maxW int) *sparse.COO[float32] {
	c := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: ef, Seed: seed, MaxWeight: maxW})
	c.RemoveSelfLoops()
	c.SortRowMajor()
	c.DedupKeepFirst()
	return c
}

func TestGASPageRank(t *testing.T) {
	coo := prepared(1, 7, 8, 0)
	e := New(coo)
	got, stats := PageRank(e, 0.15, 15, 2)
	want := reference.PageRank(coo.NRows, coo.Entries, 0.15, 15)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if stats.Supersteps != 15 {
		t.Errorf("Supersteps = %d", stats.Supersteps)
	}
	if stats.Gathers == 0 {
		t.Error("no gathers recorded")
	}
}

func TestGASBFS(t *testing.T) {
	coo := prepared(2, 7, 8, 0)
	coo.Symmetrize()
	e := New(coo)
	got, _ := BFS(e, 0, 2)
	want := reference.BFS(coo.NRows, coo.Entries, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestGASSSSP(t *testing.T) {
	coo := prepared(3, 7, 8, 10)
	e := New(coo)
	got, _ := SSSP(e, 0, 2)
	want := reference.SSSP(coo.NRows, coo.Entries, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestGASTriangles(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 8, Seed: 4, Params: gen.RMATTriangle})
	coo.RemoveSelfLoops()
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	coo.Symmetrize()
	coo.UpperTriangle()
	e := New(coo)
	got, _ := Triangles(e, 2)
	want := reference.Triangles(coo.NRows, coo.Entries)
	if got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}

func TestGASCFLossDecreases(t *testing.T) {
	ratings := gen.Bipartite(gen.BipartiteOptions{Users: 200, Items: 30, Ratings: 3000, Seed: 7})
	ratings.SortRowMajor()
	ratings.DedupKeepFirst()
	ratingEdges := append([]sparse.Triple[float32](nil), ratings.Entries...)
	ratings.Symmetrize()
	e := New(ratings)

	rng := gen.NewRNG(1)
	inits := make([]float32, int(e.n)*CFLatentDim)
	for i := range inits {
		inits[i] = float32(rng.Float64()) * 0.1
	}
	init := func(v, k int) float32 { return inits[v*CFLatentDim+k] }

	prev := math.Inf(1)
	for _, iters := range []int{1, 4, 8} {
		f, _ := CF(e, 0.002, 0.05, iters, 2, init)
		loss := reference.CFLoss(ratingEdges, f, 0.05)
		if loss >= prev || math.IsNaN(loss) {
			t.Fatalf("loss did not decrease: %v -> %v", prev, loss)
		}
		prev = loss
	}
}

func TestEngineSignalDrivenTermination(t *testing.T) {
	// Path graph: BFS from one end must take diameter+1 supersteps and stop.
	n := uint32(16)
	coo := sparse.NewCOO[float32](n, n)
	for v := uint32(0); v+1 < n; v++ {
		coo.Add(v, v+1, 1)
		coo.Add(v+1, v, 1)
	}
	e := New(coo)
	dist, stats := BFS(e, 0, 1)
	for v := uint32(0); v < n; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
	if stats.Supersteps < int(n-1) {
		t.Errorf("Supersteps = %d, expected at least %d", stats.Supersteps, n-1)
	}
}

// Property: GAS SSSP matches Dijkstra on random weighted graphs.
func TestQuickGASSSSP(t *testing.T) {
	f := func(seed uint64) bool {
		coo := prepared(seed, 6, 4, 8)
		e := New(coo)
		got, _ := SSSP(e, 0, 2)
		want := reference.SSSP(coo.NRows, coo.Entries, 0)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
