package vertexengine

import (
	"testing"

	"graphmat/internal/sparse"
)

// degreeProg gathers a unit from every incident edge — exercises the
// AllEdges gather set.
type degreeProg struct{ set EdgeSet }

func (p degreeProg) GatherEdges() EdgeSet { return p.set }
func (degreeProg) Gather(_ uint32, _ any, _ uint32, _ any, _ float32) any {
	return int64(1)
}
func (degreeProg) Sum(a, b any) any { return a.(int64) + b.(int64) }
func (degreeProg) Apply(_ uint32, _ any, gathered any) any {
	if gathered == nil {
		return int64(0)
	}
	return gathered
}
func (degreeProg) ScatterEdges() EdgeSet                                    { return NoEdges }
func (degreeProg) Scatter(_ uint32, _ any, _ uint32, _ any, _ float32) bool { return false }

func diamondGraph() *sparse.COO[float32] {
	c := sparse.NewCOO[float32](4, 4)
	c.Add(0, 1, 1)
	c.Add(0, 2, 1)
	c.Add(1, 3, 1)
	c.Add(2, 3, 1)
	return c
}

func TestGatherEdgeSets(t *testing.T) {
	cases := []struct {
		set  EdgeSet
		want []int64
	}{
		{InEdges, []int64{0, 1, 1, 2}},  // in-degrees
		{OutEdges, []int64{2, 1, 1, 0}}, // out-degrees
		{AllEdges, []int64{2, 2, 2, 2}}, // total degrees
		{NoEdges, []int64{0, 0, 0, 0}},
	}
	for _, c := range cases {
		e := New(diamondGraph())
		e.Init(func(uint32) any { return int64(0) })
		e.SignalAll()
		e.Run(degreeProg{set: c.set}, 1, 2, false)
		for v, want := range c.want {
			if got := e.Data(uint32(v)).(int64); got != want {
				t.Errorf("set %v: degree[%d] = %d, want %d", c.set, v, got, want)
			}
		}
	}
}

func TestReactivateAllRunsFixedSupersteps(t *testing.T) {
	e := New(diamondGraph())
	e.Init(func(uint32) any { return int64(0) })
	// No vertex ever signals, but reactivateAll keeps every superstep full.
	stats := e.Run(degreeProg{set: InEdges}, 7, 2, true)
	if stats.Supersteps != 7 {
		t.Errorf("Supersteps = %d, want 7", stats.Supersteps)
	}
	if stats.Applies != 7*4 {
		t.Errorf("Applies = %d, want 28", stats.Applies)
	}
}

func TestSignalDrivenStopsWithoutSignals(t *testing.T) {
	e := New(diamondGraph())
	e.Init(func(uint32) any { return int64(0) })
	e.SignalAll()
	stats := e.Run(degreeProg{set: InEdges}, 0, 1, false)
	if stats.Supersteps != 1 {
		t.Errorf("Supersteps = %d, want 1 (no scatter, no signals)", stats.Supersteps)
	}
}

func TestEngineStatsTallies(t *testing.T) {
	e := New(diamondGraph())
	e.Init(func(uint32) any { return int64(0) })
	e.SignalAll()
	stats := e.Run(degreeProg{set: InEdges}, 1, 1, false)
	if stats.Gathers != 4 { // one gather per in-edge
		t.Errorf("Gathers = %d, want 4", stats.Gathers)
	}
	if stats.Applies != 4 {
		t.Errorf("Applies = %d, want 4", stats.Applies)
	}
	if stats.Scatters != 0 || stats.Signals != 0 {
		t.Errorf("Scatters/Signals = %d/%d, want 0/0", stats.Scatters, stats.Signals)
	}
}
