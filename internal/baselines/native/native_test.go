package native

import (
	"math"
	"testing"
	"testing/quick"

	"graphmat/internal/gen"
	"graphmat/internal/reference"
	"graphmat/internal/sparse"
)

func prepared(seed uint64, scale, ef, maxW int) *sparse.COO[float32] {
	c := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: ef, Seed: seed, MaxWeight: maxW})
	c.RemoveSelfLoops()
	c.SortRowMajor()
	c.DedupKeepFirst()
	return c
}

func symmetrized(seed uint64, scale, ef int) *sparse.COO[float32] {
	c := prepared(seed, scale, ef, 0)
	c.Symmetrize()
	return c
}

func TestNativePageRank(t *testing.T) {
	coo := prepared(1, 8, 8, 0)
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got := PageRank(g, 0.15, 20, 2)
	want := reference.PageRank(g.N, refEdges, 0.15, 20)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestNativeBFS(t *testing.T) {
	coo := symmetrized(2, 8, 8)
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got := BFS(g, 0, 2)
	want := reference.BFS(g.N, refEdges, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestNativeBFSBottomUpTrigger(t *testing.T) {
	// A dense-ish small-diameter graph forces the bottom-up switch: a star
	// plus ring. Frontier after level 1 covers almost everything.
	n := uint32(4096)
	coo := sparse.NewCOO[float32](n, n)
	for v := uint32(1); v < n; v++ {
		coo.Add(0, v, 1)
		coo.Add(v, 0, 1)
	}
	coo.SortRowMajor()
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got := BFS(g, 1, 2)
	want := reference.BFS(n, refEdges, 1)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestNativeSSSP(t *testing.T) {
	coo := prepared(3, 8, 8, 10)
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got := SSSP(g, 0, 2)
	want := reference.SSSP(g.N, refEdges, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestNativeTriangles(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 4, Params: gen.RMATTriangle})
	coo.RemoveSelfLoops()
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	coo.Symmetrize()
	coo.UpperTriangle()
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got := Triangles(g, 2)
	want := reference.Triangles(g.N, refEdges)
	if got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}

func TestNativeCFLossDecreases(t *testing.T) {
	ratings := gen.Bipartite(gen.BipartiteOptions{Users: 300, Items: 40, Ratings: 5000, Seed: 7})
	ratings.SortRowMajor()
	ratings.DedupKeepFirst()
	ratingEdges := append([]sparse.Triple[float32](nil), ratings.Entries...)
	ratings.Symmetrize()
	g := Build(ratings)

	rng := gen.NewRNG(1)
	inits := make([]float32, int(g.N)*CFLatentDim)
	for i := range inits {
		inits[i] = float32(rng.Float64()) * 0.1
	}
	init := func(v, k int) float32 { return inits[v*CFLatentDim+k] }

	prev := math.Inf(1)
	for _, iters := range []int{1, 4, 8} {
		f := CF(g, 0.002, 0.05, iters, 2, init)
		ff := make([][]float32, len(f))
		for i := range f {
			ff[i] = f[i][:]
		}
		loss := reference.CFLoss(ratingEdges, ff, 0.05)
		if loss >= prev || math.IsNaN(loss) {
			t.Fatalf("loss did not decrease: %v -> %v", prev, loss)
		}
		prev = loss
	}
}

// Property: native SSSP equals Dijkstra across random graphs.
func TestQuickNativeSSSP(t *testing.T) {
	f := func(seed uint64) bool {
		coo := prepared(seed, 6, 4, 8)
		refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
		g := Build(coo)
		got := SSSP(g, 0, 2)
		want := reference.SSSP(g.N, refEdges, 0)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: native BFS equals reference BFS on symmetric graphs.
func TestQuickNativeBFS(t *testing.T) {
	f := func(seed uint64) bool {
		coo := symmetrized(seed, 6, 4)
		refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
		g := Build(coo)
		got := BFS(g, 0, 2)
		want := reference.BFS(g.N, refEdges, 0)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
