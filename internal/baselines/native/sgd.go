package native

// CFSGD is the stochastic-gradient-descent variant of collaborative
// filtering — what the native code of [27] actually ran, per the paper's
// Table 3 discussion: "the native performance results from [27] are for
// Stochastic Gradient Descent (SGD) as opposed to Gradient Descent (GD) for
// GraphMat, and GD is more easily parallelizable than SGD."
//
// SGD updates both endpoint vectors after *every* rating, so parallel
// workers race on shared vectors. The standard native recipe is Hogwild-
// style lock-free sharding: workers own disjoint user ranges and update item
// vectors unsynchronized (benign races accepted). That data dependence is
// exactly why the paper's GD-based GraphMat CF beats the SGD native baseline
// (the 0.73× row of Table 3): SGD serializes where GD streams.
//
// The ratings graph is used in its user→item orientation only: g.Out rows of
// user vertices. iters counts full passes over the ratings.
func CFSGD(g *Graph, users uint32, gamma, lambda float32, iters, nthreads int, init func(v, k int) float32) [][CFLatentDim]float32 {
	nthreads = threads(nthreads)
	n := int(g.N)
	f := make([][CFLatentDim]float32, n)
	for v := 0; v < n; v++ {
		for k := 0; k < CFLatentDim; k++ {
			f[v][k] = init(v, k)
		}
	}
	for it := 0; it < iters; it++ {
		parallelRanges(int(users), nthreads, func(lo, hi, _ int) {
			for u := lo; u < hi; u++ {
				items, ratings := g.Out.Row(uint32(u))
				pu := &f[u]
				for j, v := range items {
					pv := &f[v]
					var dot float32
					for k := 0; k < CFLatentDim; k++ {
						dot += pu[k] * pv[k]
					}
					e := ratings[j] - dot
					// Immediate update of *both* endpoints — the SGD data
					// dependence (Hogwild on the item side).
					for k := 0; k < CFLatentDim; k++ {
						puk, pvk := pu[k], pv[k]
						pu[k] += gamma * (e*pvk - lambda*puk)
						pv[k] += gamma * (e*puk - lambda*pvk)
					}
				}
			}
		})
	}
	return f
}
