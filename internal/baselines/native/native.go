// Package native reimplements the hand-optimized, framework-free kernels of
// Satish et al. [27] that the paper uses as its performance ceiling
// (Table 3). There is no programming abstraction here: each algorithm is
// written directly against CSR/CSC arrays with the standard tricks —
// pull-based PageRank over the in-edge structure, direction-optimizing BFS,
// frontier Bellman-Ford for SSSP, sorted-adjacency intersection for
// triangles, and a fused double-buffered gradient-descent loop for
// collaborative filtering.
package native

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"graphmat/internal/sparse"
)

// Graph is the native baselines' input: forward CSR and backward CSC built
// once from the edge list.
type Graph struct {
	N   uint32
	Out *sparse.CSR[float32] // out-edges: Out.Row(u) lists v with (u,v) in E
	In  *sparse.CSR[float32] // in-edges: In.Row(v) lists u with (u,v) in E
}

// Build constructs the native graph from adjacency triples (Row = src,
// Col = dst). The input is consumed (sorted/deduplicated).
func Build(adj *sparse.COO[float32]) *Graph {
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	out := sparse.BuildCSR(adj)
	t := adj.Clone()
	t.Transpose()
	t.SortRowMajor()
	in := sparse.BuildCSR(t)
	return &Graph{N: adj.NRows, Out: out, In: in}
}

func threads(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// parallelRanges runs fn over [0,n) split into contiguous chunks pulled from
// a dynamic queue by nthreads goroutines. The worker argument is a stable
// goroutine index in [0,nthreads) for lock-free thread-local accumulation.
func parallelRanges(n int, nthreads int, fn func(lo, hi, worker int)) {
	if nthreads <= 1 || n < 1024 {
		fn(0, n, 0)
		return
	}
	chunk := (n + nthreads*8 - 1) / (nthreads * 8)
	if chunk < 64 {
		chunk = 64
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nthreads)
	for t := 0; t < nthreads; t++ {
		go func(t int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi, t)
			}
		}(t)
	}
	wg.Wait()
}

// PageRank runs the pull-based kernel for exactly iters iterations:
// rank'[v] = r + (1-r) · Σ_{u→v} rank[u]/outdeg(u), reading contributions
// from the in-edge CSC so every write is sequential and private.
func PageRank(g *Graph, r float64, iters, nthreads int) []float64 {
	nthreads = threads(nthreads)
	n := int(g.N)
	rank := make([]float64, n)
	contrib := make([]float64, n) // rank[u]/outdeg(u), refreshed per iteration
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1
	}
	for it := 0; it < iters; it++ {
		parallelRanges(n, nthreads, func(lo, hi, _ int) {
			for u := lo; u < hi; u++ {
				if d := g.Out.Degree(uint32(u)); d > 0 {
					contrib[u] = rank[u] / float64(d)
				} else {
					contrib[u] = 0
				}
			}
		})
		parallelRanges(n, nthreads, func(lo, hi, _ int) {
			for v := lo; v < hi; v++ {
				srcs, _ := g.In.Row(uint32(v))
				if len(srcs) == 0 {
					next[v] = rank[v]
					continue
				}
				sum := 0.0
				for _, u := range srcs {
					sum += contrib[u]
				}
				next[v] = r + (1-r)*sum
			}
		})
		rank, next = next, rank
	}
	return rank
}

// BFS runs a direction-optimizing breadth-first search (Beamer-style): the
// frontier advances top-down while small and switches to bottom-up sweeps
// when it covers a large fraction of the edges. The input graph should be
// symmetric (the paper's BFS preprocessing).
func BFS(g *Graph, root uint32, nthreads int) []uint32 {
	nthreads = threads(nthreads)
	n := int(g.N)
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = math.MaxUint32
	}
	dist[root] = 0
	frontier := []uint32{root}
	level := uint32(0)
	// Heuristic switch threshold: bottom-up pays off when the frontier's
	// out-edges exceed a fraction of the remaining edges.
	totalEdges := int64(g.Out.NNZ())

	for len(frontier) > 0 {
		level++
		frontierEdges := int64(0)
		for _, u := range frontier {
			frontierEdges += int64(g.Out.Degree(u))
		}
		if frontierEdges*14 > totalEdges {
			// Bottom-up: every unvisited vertex scans its in-edges for a
			// parent on the current frontier. Each worker writes only
			// vertices in its own range; parent distances are read with
			// atomic loads since other workers may be writing theirs.
			cur := level - 1
			nexts := make([][]uint32, nthreads)
			parallelRanges(n, nthreads, func(lo, hi, t int) {
				local := nexts[t]
				for v := lo; v < hi; v++ {
					if atomic.LoadUint32(&dist[v]) != math.MaxUint32 {
						continue
					}
					parents, _ := g.In.Row(uint32(v))
					for _, u := range parents {
						if atomic.LoadUint32(&dist[u]) == cur {
							atomic.StoreUint32(&dist[v], level)
							local = append(local, uint32(v))
							break
						}
					}
				}
				nexts[t] = local
			})
			frontier = frontier[:0]
			for _, l := range nexts {
				frontier = append(frontier, l...)
			}
		} else {
			// Top-down with CAS claims.
			nexts := make([][]uint32, nthreads)
			parallelRanges(len(frontier), nthreads, func(lo, hi, t int) {
				local := nexts[t]
				for i := lo; i < hi; i++ {
					u := frontier[i]
					nbrs, _ := g.Out.Row(u)
					for _, v := range nbrs {
						if atomic.CompareAndSwapUint32(&dist[v], math.MaxUint32, level) {
							local = append(local, v)
						}
					}
				}
				nexts[t] = local
			})
			frontier = frontier[:0]
			for _, l := range nexts {
				frontier = append(frontier, l...)
			}
		}
	}
	return dist
}

// InfDist marks unreachable vertices in SSSP results.
const InfDist = float32(math.MaxFloat32)

// SSSP runs frontier Bellman-Ford: only vertices whose distance improved
// last round relax their out-edges, with CAS-free min updates guarded by an
// atomic bit per vertex for frontier membership.
func SSSP(g *Graph, src uint32, nthreads int) []float32 {
	nthreads = threads(nthreads)
	n := int(g.N)
	dist := make([]uint32, n) // float32 bits, ordered: use math.Float32bits order trick
	for i := range dist {
		dist[i] = math.Float32bits(InfDist)
	}
	dist[src] = 0
	inNext := make([]uint32, n)
	frontier := []uint32{src}

	// Non-negative float32 compare as their bit patterns, so atomic CAS min
	// works on the uint32 view.
	relax := func(v uint32, nd float32) bool {
		ndBits := math.Float32bits(nd)
		for {
			old := atomic.LoadUint32(&dist[v])
			if old <= ndBits {
				return false
			}
			if atomic.CompareAndSwapUint32(&dist[v], old, ndBits) {
				return true
			}
		}
	}

	for len(frontier) > 0 {
		nexts := make([][]uint32, nthreads)
		parallelRanges(len(frontier), nthreads, func(lo, hi, t int) {
			local := nexts[t]
			for i := lo; i < hi; i++ {
				u := frontier[i]
				du := math.Float32frombits(atomic.LoadUint32(&dist[u]))
				nbrs, ws := g.Out.Row(u)
				for j, v := range nbrs {
					if relax(v, du+ws[j]) {
						if atomic.CompareAndSwapUint32(&inNext[v], 0, 1) {
							local = append(local, v)
						}
					}
				}
			}
			nexts[t] = local
		})
		frontier = frontier[:0]
		for _, l := range nexts {
			for _, v := range l {
				inNext[v] = 0
				frontier = append(frontier, v)
			}
		}
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(dist[i])
	}
	return out
}

// Triangles counts triangles of an upper-triangular DAG (u < v for every
// edge) by intersecting the sorted out-adjacency of the two endpoints of
// every edge — the standard hand-optimized kernel.
func Triangles(g *Graph, nthreads int) int64 {
	nthreads = threads(nthreads)
	n := int(g.N)
	var total atomic.Int64
	parallelRanges(n, nthreads, func(lo, hi, _ int) {
		var local int64
		for u := lo; u < hi; u++ {
			nbrs, _ := g.Out.Row(uint32(u))
			for _, v := range nbrs {
				vn, _ := g.Out.Row(v)
				local += intersectCount(nbrs, vn)
			}
		}
		total.Add(local)
	})
	return total.Load()
}

func intersectCount(a, b []uint32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// CFLatentDim matches algorithms.LatentDim so results are comparable.
const CFLatentDim = 20

// CF runs double-buffered gradient descent on a symmetrized bipartite
// ratings graph for exactly iters sweeps and returns the factor vectors.
// Factors are initialized from the same deterministic stream as the
// GraphMat implementation when given the same seed.
func CF(g *Graph, gamma, lambda float32, iters, nthreads int, init func(v, k int) float32) [][CFLatentDim]float32 {
	nthreads = threads(nthreads)
	n := int(g.N)
	cur := make([][CFLatentDim]float32, n)
	next := make([][CFLatentDim]float32, n)
	for v := 0; v < n; v++ {
		for k := 0; k < CFLatentDim; k++ {
			cur[v][k] = init(v, k)
		}
	}
	for it := 0; it < iters; it++ {
		parallelRanges(n, nthreads, func(lo, hi, _ int) {
			for v := lo; v < hi; v++ {
				nbrs, ratings := g.Out.Row(uint32(v))
				if len(nbrs) == 0 {
					next[v] = cur[v]
					continue
				}
				var grad [CFLatentDim]float32
				pv := &cur[v]
				for j, u := range nbrs {
					pu := &cur[u]
					var dot float32
					for k := 0; k < CFLatentDim; k++ {
						dot += pu[k] * pv[k]
					}
					e := ratings[j] - dot
					for k := 0; k < CFLatentDim; k++ {
						grad[k] += e * pu[k]
					}
				}
				for k := 0; k < CFLatentDim; k++ {
					next[v][k] = pv[k] + gamma*(grad[k]-lambda*pv[k])
				}
			}
		})
		cur, next = next, cur
	}
	return cur
}
