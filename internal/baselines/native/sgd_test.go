package native

import (
	"math"
	"testing"

	"graphmat/internal/gen"
	"graphmat/internal/reference"
	"graphmat/internal/sparse"
)

func cfFixture(t *testing.T) (*Graph, uint32, []sparse.Triple[float32], func(v, k int) float32) {
	t.Helper()
	const users = 300
	ratings := gen.Bipartite(gen.BipartiteOptions{Users: users, Items: 40, Ratings: 5000, Seed: 7})
	ratings.SortRowMajor()
	ratings.DedupKeepFirst()
	ratingEdges := append([]sparse.Triple[float32](nil), ratings.Entries...)
	// SGD uses the user→item orientation directly (no symmetrization).
	g := Build(ratings)
	rng := gen.NewRNG(1)
	inits := make([]float32, int(g.N)*CFLatentDim)
	for i := range inits {
		inits[i] = float32(rng.Float64()) * 0.1
	}
	return g, users, ratingEdges, func(v, k int) float32 { return inits[v*CFLatentDim+k] }
}

func TestCFSGDLossDecreases(t *testing.T) {
	g, users, ratingEdges, init := cfFixture(t)
	prev := math.Inf(1)
	for _, iters := range []int{1, 3, 6} {
		f := CFSGD(g, users, 0.005, 0.05, iters, 1, init)
		ff := make([][]float32, len(f))
		for i := range f {
			ff[i] = f[i][:]
		}
		loss := reference.CFLoss(ratingEdges, ff, 0.05)
		if math.IsNaN(loss) || loss >= prev {
			t.Fatalf("SGD loss did not decrease: %v -> %v at %d passes", prev, loss, iters)
		}
		prev = loss
	}
}

func TestCFSGDConvergesFasterPerPassThanGD(t *testing.T) {
	// The paper's Table 3 footnote rests on SGD vs GD trade-offs: SGD makes
	// more progress per pass (it updates within the pass) while GD
	// parallelizes better. Verify the per-pass progress half of that.
	g, users, ratingEdges, init := cfFixture(t)
	const passes = 3

	fsgd := CFSGD(g, users, 0.005, 0.05, passes, 1, init)

	// GD needs the symmetrized orientation.
	sym := sparse.NewCOO[float32](g.N, g.N)
	for _, e := range ratingEdges {
		sym.Add(e.Row, e.Col, e.Val)
	}
	sym.SortRowMajor()
	sym.Symmetrize()
	gdGraph := Build(sym)
	fgd := CF(gdGraph, 0.005, 0.05, passes, 1, init)

	loss := func(f [][CFLatentDim]float32) float64 {
		ff := make([][]float32, len(f))
		for i := range f {
			ff[i] = f[i][:]
		}
		return reference.CFLoss(ratingEdges, ff, 0.05)
	}
	if loss(fsgd) >= loss(fgd) {
		t.Errorf("SGD (%v) should beat GD (%v) per pass at equal step size", loss(fsgd), loss(fgd))
	}
}

func TestCFSGDDeterministicSingleThread(t *testing.T) {
	g, users, _, init := cfFixture(t)
	a := CFSGD(g, users, 0.005, 0.05, 4, 1, init)
	b := CFSGD(g, users, 0.005, 0.05, 4, 1, init)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("single-thread SGD nondeterministic at vertex %d", v)
		}
	}
}

func TestCFSGDParallelStillConverges(t *testing.T) {
	// Hogwild-style races must not destroy convergence.
	g, users, ratingEdges, init := cfFixture(t)
	f := CFSGD(g, users, 0.005, 0.05, 6, 4, init)
	ff := make([][]float32, len(f))
	for i := range f {
		ff[i] = f[i][:]
	}
	loss := reference.CFLoss(ratingEdges, ff, 0.05)

	z := make([][]float32, len(f))
	zero := make([]float32, CFLatentDim)
	for i := range z {
		z[i] = zero
	}
	baseline := reference.CFLoss(ratingEdges, z, 0.05)
	if loss >= baseline {
		t.Errorf("parallel SGD loss %v no better than zero-factor baseline %v", loss, baseline)
	}
}
