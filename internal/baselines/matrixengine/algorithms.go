package matrixengine

import (
	"math"

	"graphmat/internal/sparse"
)

// The paper's five algorithms expressed the CombBLAS way: semiring SpMV plus
// dense/sparse vector operations, with user values boxed.

// PageRank iterates x = contributions, y = Gᵀ ⊗ x over the (+, ×) semiring,
// then applies the rank update as a separate dense-vector pass (CombBLAS
// composes SpMV with EWiseApply the same way).
func PageRank(m *Matrix, outDeg []uint32, restart float64, iters int) ([]float64, Stats) {
	var stats Stats
	n := int(m.N())
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1
	}
	sr := Semiring{
		Multiply: func(_ float32, x any) any { return x },
		Add:      func(a, b any) any { return a.(float64) + b.(float64) },
	}
	for it := 0; it < iters; it++ {
		stats.Iterations++
		x := sparse.NewVector[any](n)
		for v := 0; v < n; v++ {
			if outDeg[v] > 0 {
				x.Set(uint32(v), rank[v]/float64(outDeg[v]))
			}
		}
		y := m.SpMV(x, sr, &stats)
		y.Iterate(func(v uint32, sum any) {
			rank[v] = restart + (1-restart)*sum.(float64)
		})
	}
	return rank, stats
}

// BFS runs frontier SpMV over the (min, select+1) semiring, masking out
// visited vertices after each multiplication (CombBLAS's EWiseMult with the
// complement of the visited vector).
func BFS(m *Matrix, root uint32) ([]uint32, Stats) {
	var stats Stats
	n := int(m.N())
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = math.MaxUint32
	}
	dist[root] = 0
	sr := Semiring{
		Multiply: func(_ float32, x any) any { return x.(uint32) + 1 },
		Add:      func(a, b any) any { return min(a.(uint32), b.(uint32)) },
	}
	x := sparse.NewVector[any](n)
	x.Set(root, uint32(0))
	for x.NNZ() > 0 {
		stats.Iterations++
		y := m.SpMV(x, sr, &stats)
		next := sparse.NewVector[any](n)
		y.Iterate(func(v uint32, d any) {
			if dist[v] == math.MaxUint32 {
				dist[v] = d.(uint32)
				next.Set(v, d)
			}
		})
		x = next
	}
	return dist, stats
}

// InfDist marks unreachable vertices in SSSP results.
const InfDist = float32(math.MaxFloat32)

// SSSP runs Bellman-Ford rounds over the (min, +) semiring.
func SSSP(m *Matrix, src uint32) ([]float32, Stats) {
	var stats Stats
	n := int(m.N())
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[src] = 0
	sr := Semiring{
		Multiply: func(w float32, x any) any { return x.(float32) + w },
		Add:      func(a, b any) any { return min(a.(float32), b.(float32)) },
	}
	x := sparse.NewVector[any](n)
	x.Set(src, float32(0))
	for x.NNZ() > 0 {
		stats.Iterations++
		y := m.SpMV(x, sr, &stats)
		next := sparse.NewVector[any](n)
		y.Iterate(func(v uint32, d any) {
			if dv := d.(float32); dv < dist[v] {
				dist[v] = dv
				next.Set(v, dv)
			}
		})
		x = next
	}
	return dist, stats
}

// DefaultSpGEMMCap bounds the materialized SpGEMM intermediate (entries).
// ~128M map entries is multiple GB — past it CombBLAS would be swapping or
// dead on the paper's 64 GB box scaled to this one.
const DefaultSpGEMMCap = int64(128 << 20)

// Triangles counts triangles of an upper-triangular DAG via masked SpGEMM.
// The adjacency is taken as a CSR because the product A·A iterates rows; cap
// bounds the materialized intermediate (<=0 uses DefaultSpGEMMCap). The
// error reports the out-of-memory condition of Figure 4c.
func Triangles(a *sparse.CSR[float32], cap int64) (int64, Stats, error) {
	if cap <= 0 {
		cap = DefaultSpGEMMCap
	}
	var stats Stats
	stats.Iterations = 1
	count, err := SpGEMMMaskedCount(a, cap, &stats)
	return count, stats, err
}

// CFLatentDim matches the GraphMat implementation's K.
const CFLatentDim = 20

// CF runs gradient descent without destination-vertex access: every sweep
// materializes per-edge copies of both endpoint factor vectors (two gather
// passes), computes per-edge gradients into a third nnz-sized buffer, and
// reduces them per destination — the data movement that makes CombBLAS's CF
// 4.7× slower in Figure 4d. The ratings graph must be symmetrized (both
// directions present), given as a CSR.
func CF(g *sparse.CSR[float32], gamma, lambda float32, iters int, init func(v, k int) float32) ([][CFLatentDim]float32, Stats) {
	var stats Stats
	n := int(g.NRows)
	nnz := g.NNZ()
	factors := make([][CFLatentDim]float32, n)
	for v := 0; v < n; v++ {
		for k := 0; k < CFLatentDim; k++ {
			factors[v][k] = init(v, k)
		}
	}
	// The nnz-sized materialization buffers.
	edgeSrc := make([][CFLatentDim]float32, nnz)
	edgeDst := make([][CFLatentDim]float32, nnz)
	edgeGrad := make([][CFLatentDim]float32, nnz)

	for it := 0; it < iters; it++ {
		stats.Iterations++
		// Pass 1: materialize the source-side vectors per edge.
		for v := uint32(0); v < uint32(n); v++ {
			lo, hi := g.RowPtr[v], g.RowPtr[v+1]
			for e := lo; e < hi; e++ {
				edgeSrc[e] = factors[g.ColIdx[e]]
			}
		}
		// Pass 2: materialize the destination-side vectors per edge.
		for v := uint32(0); v < uint32(n); v++ {
			lo, hi := g.RowPtr[v], g.RowPtr[v+1]
			for e := lo; e < hi; e++ {
				edgeDst[e] = factors[v]
			}
		}
		// Pass 3: per-edge gradient.
		for e := 0; e < nnz; e++ {
			var dot float32
			for k := 0; k < CFLatentDim; k++ {
				dot += edgeSrc[e][k] * edgeDst[e][k]
			}
			errv := g.Val[e] - dot
			for k := 0; k < CFLatentDim; k++ {
				edgeGrad[e][k] = errv * edgeSrc[e][k]
			}
			stats.Multiplies++
		}
		// Pass 4: reduce per destination and step.
		for v := uint32(0); v < uint32(n); v++ {
			lo, hi := g.RowPtr[v], g.RowPtr[v+1]
			if lo == hi {
				continue
			}
			var grad [CFLatentDim]float32
			for e := lo; e < hi; e++ {
				for k := 0; k < CFLatentDim; k++ {
					grad[k] += edgeGrad[e][k]
				}
				stats.Adds++
			}
			for k := 0; k < CFLatentDim; k++ {
				factors[v][k] += gamma * (grad[k] - lambda*factors[v][k])
			}
		}
	}
	return factors, stats
}
