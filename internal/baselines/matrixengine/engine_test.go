package matrixengine

import (
	"math"
	"testing"
	"testing/quick"

	"graphmat/internal/gen"
	"graphmat/internal/reference"
	"graphmat/internal/sparse"
)

func prepared(seed uint64, scale, ef, maxW int) *sparse.COO[float32] {
	c := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: ef, Seed: seed, MaxWeight: maxW})
	c.RemoveSelfLoops()
	c.SortRowMajor()
	c.DedupKeepFirst()
	return c
}

func TestGridFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 1, 4: 2, 8: 2, 9: 3, 15: 3, 16: 4, 24: 4, 25: 5}
	for threads, want := range cases {
		if got := GridFor(threads); got != want {
			t.Errorf("GridFor(%d) = %d, want %d", threads, got, want)
		}
	}
}

func TestMatrixBlocksTile(t *testing.T) {
	coo := prepared(1, 7, 4, 0)
	want := len(coo.Entries)
	m := NewMatrix(coo, 9) // 3x3 grid
	if m.Grid() != 3 || m.Workers() != 9 {
		t.Fatalf("grid = %d workers = %d", m.Grid(), m.Workers())
	}
	total := 0
	for i := 0; i < m.grid; i++ {
		for j := 0; j < m.grid; j++ {
			blk := m.blocks[i][j]
			total += blk.NNZ()
			blk.Iterate(func(r, c uint32, _ float32) {
				if r < m.rowBounds[i] || r >= m.rowBounds[i+1] {
					t.Fatalf("block (%d,%d) row %d out of range", i, j, r)
				}
				if c < m.colBounds[j] || c >= m.colBounds[j+1] {
					t.Fatalf("block (%d,%d) col %d out of range", i, j, c)
				}
			})
		}
	}
	if total != want {
		t.Errorf("blocks hold %d entries, want %d", total, want)
	}
}

func TestMatrixPageRank(t *testing.T) {
	coo := prepared(2, 7, 8, 0)
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	n := coo.NRows
	outDeg := coo.RowCounts()
	m := NewMatrix(coo, 4)
	got, stats := PageRank(m, outDeg, 0.15, 15)
	want := reference.PageRank(n, refEdges, 0.15, 15)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if stats.Multiplies == 0 || stats.Iterations != 15 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMatrixBFS(t *testing.T) {
	coo := prepared(3, 7, 8, 0)
	coo.Symmetrize()
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	n := coo.NRows
	m := NewMatrix(coo, 4)
	got, _ := BFS(m, 0)
	want := reference.BFS(n, refEdges, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestMatrixSSSP(t *testing.T) {
	coo := prepared(4, 7, 8, 10)
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	n := coo.NRows
	m := NewMatrix(coo, 4)
	got, _ := SSSP(m, 0)
	want := reference.SSSP(n, refEdges, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestMatrixTriangles(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 8, Seed: 5, Params: gen.RMATTriangle})
	coo.RemoveSelfLoops()
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	coo.Symmetrize()
	coo.UpperTriangle()
	want := reference.Triangles(coo.NRows, coo.Entries)
	csr := sparse.BuildCSR(coo)
	got, _, err := Triangles(csr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}

func TestMatrixTrianglesOOM(t *testing.T) {
	// A tiny cap triggers the out-of-memory failure mode the paper reports
	// for CombBLAS on real-world graphs.
	coo := gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 8, Seed: 5, Params: gen.RMATTriangle})
	coo.RemoveSelfLoops()
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	coo.Symmetrize()
	coo.UpperTriangle()
	csr := sparse.BuildCSR(coo)
	if _, _, err := Triangles(csr, 10); err == nil {
		t.Error("expected intermediate-size failure with cap 10")
	}
}

func TestMatrixCFLossDecreases(t *testing.T) {
	ratings := gen.Bipartite(gen.BipartiteOptions{Users: 200, Items: 30, Ratings: 3000, Seed: 7})
	ratings.SortRowMajor()
	ratings.DedupKeepFirst()
	ratingEdges := append([]sparse.Triple[float32](nil), ratings.Entries...)
	ratings.Symmetrize()
	csr := sparse.BuildCSR(ratings)

	rng := gen.NewRNG(1)
	inits := make([]float32, int(csr.NRows)*CFLatentDim)
	for i := range inits {
		inits[i] = float32(rng.Float64()) * 0.1
	}
	init := func(v, k int) float32 { return inits[v*CFLatentDim+k] }

	prev := math.Inf(1)
	for _, iters := range []int{1, 4, 8} {
		f, _ := CF(csr, 0.002, 0.05, iters, init)
		ff := make([][]float32, len(f))
		for i := range f {
			ff[i] = f[i][:]
		}
		loss := reference.CFLoss(ratingEdges, ff, 0.05)
		if loss >= prev || math.IsNaN(loss) {
			t.Fatalf("loss did not decrease: %v -> %v", prev, loss)
		}
		prev = loss
	}
}

// Property: matrix-engine SSSP matches Dijkstra.
func TestQuickMatrixSSSP(t *testing.T) {
	f := func(seed uint64) bool {
		coo := prepared(seed, 6, 4, 8)
		refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
		n := coo.NRows
		m := NewMatrix(coo, 4)
		got, _ := SSSP(m, 0)
		want := reference.SSSP(n, refEdges, 0)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: SpGEMM triangle count matches brute force across seeds.
func TestQuickMatrixTriangles(t *testing.T) {
	f := func(seed uint64) bool {
		coo := gen.RMAT(gen.RMATOptions{Scale: 6, EdgeFactor: 6, Seed: seed, Params: gen.RMATTriangle})
		coo.RemoveSelfLoops()
		coo.SortRowMajor()
		coo.DedupKeepFirst()
		coo.Symmetrize()
		coo.UpperTriangle()
		want := reference.Triangles(coo.NRows, coo.Entries)
		csr := sparse.BuildCSR(coo)
		got, _, err := Triangles(csr, 0)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
