// Package matrixengine is the reproduction's stand-in for CombBLAS v1.3: a
// pure matrix-programming engine. It recreates the architectural properties
// the paper identifies as the source of CombBLAS's profile:
//
//   - the user programs against semirings: Multiply sees only the edge value
//     and the incoming vector value — *no destination-vertex state* (§4.2's
//     expressiveness gap, the reason TC and CF are awkward);
//   - the matrix is 2-D block partitioned on a square process grid, so the
//     worker count is the largest perfect square not exceeding the thread
//     count (the paper runs CombBLAS with 16 MPI ranks on 24 cores, leaving
//     8 idle) and every SpMV materializes per-block partial vectors that a
//     second phase must merge;
//   - values cross the engine boundary boxed (CombBLAS's runtime carries
//     arbitrary user types through MPI buffers).
//
// Triangle counting has no vertex-state escape hatch, so it runs as a masked
// sparse matrix–matrix multiplication that materializes the intermediate
// product — the memory blow-up of Figure 4c.
package matrixengine

import (
	"fmt"
	"sync"

	"graphmat/internal/sparse"
)

// Semiring supplies the two overloaded operations of a generalized SpMV.
type Semiring struct {
	// Multiply combines an edge value with the source vector entry.
	Multiply func(edge float32, x any) any
	// Add folds multiply results targeting the same output index; it must
	// be commutative and associative.
	Add func(a, b any) any
}

// Stats tallies engine work for the Figure 6 counter proxies.
type Stats struct {
	Multiplies    int64
	Adds          int64
	PartialMerges int64 // entries moved in the 2-D merge phase
	Iterations    int
}

// Matrix is the 2-D block-partitioned transpose adjacency (Gᵀ): block (i,j)
// holds destinations in row range i and sources in column range j.
type Matrix struct {
	n         uint32
	grid      int
	rowBounds []uint32
	colBounds []uint32
	blocks    [][]*sparse.DCSC[float32]
}

// GridFor returns the CombBLAS process-grid side for a thread budget: the
// largest g with g² <= threads.
func GridFor(threads int) int {
	g := 1
	for (g+1)*(g+1) <= threads {
		g++
	}
	return g
}

// NewMatrix builds the blocked matrix from adjacency triples (Row = src,
// Col = dst) for the given thread budget. The input is consumed.
func NewMatrix(adj *sparse.COO[float32], threads int) *Matrix {
	grid := GridFor(threads)
	n := adj.NRows
	m := &Matrix{n: n, grid: grid}

	// Gᵀ orientation: row = dst, col = src.
	adj.Transpose()
	adj.SortColMajor()
	adj.DedupKeepFirst()

	bounds := func() []uint32 {
		b := make([]uint32, grid+1)
		step := (int(n)/grid + 64) &^ 63
		for i := 1; i < grid; i++ {
			x := i * step
			if x > int(n) {
				x = int(n)
			}
			b[i] = uint32(x)
		}
		b[grid] = n
		for i := 1; i <= grid; i++ {
			if b[i] < b[i-1] {
				b[i] = b[i-1]
			}
		}
		return b
	}
	m.rowBounds = bounds()
	m.colBounds = bounds()

	find := func(b []uint32, v uint32) int {
		lo, hi := 0, len(b)-1
		for lo < hi-1 {
			mid := (lo + hi) / 2
			if b[mid] <= v {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}

	buckets := make([][]sparse.Triple[float32], grid*grid)
	for _, t := range adj.Entries {
		i := find(m.rowBounds, t.Row)
		j := find(m.colBounds, t.Col)
		buckets[i*grid+j] = append(buckets[i*grid+j], t)
	}
	m.blocks = make([][]*sparse.DCSC[float32], grid)
	for i := 0; i < grid; i++ {
		m.blocks[i] = make([]*sparse.DCSC[float32], grid)
		for j := 0; j < grid; j++ {
			bc := &sparse.COO[float32]{NRows: n, NCols: n, Entries: buckets[i*grid+j]}
			m.blocks[i][j] = sparse.BuildDCSC(bc, m.rowBounds[i], m.rowBounds[i+1])
		}
	}
	return m
}

// N returns the matrix dimension.
func (m *Matrix) N() uint32 { return m.n }

// Grid returns the process-grid side length.
func (m *Matrix) Grid() int { return m.grid }

// Workers returns the parallelism the engine actually uses (grid²) — the
// CombBLAS square-process-count restriction.
func (m *Matrix) Workers() int { return m.grid * m.grid }

// SpMV computes y = Gᵀ ⊗ x over the semiring. Each of the grid² blocks
// produces a partial vector in parallel (one worker per block, CombBLAS
// style); a second phase merges the per-block-row partials.
func (m *Matrix) SpMV(x *sparse.Vector[any], sr Semiring, stats *Stats) *sparse.Vector[any] {
	grid := m.grid
	partials := make([][]*sparse.Vector[any], grid)
	for i := range partials {
		partials[i] = make([]*sparse.Vector[any], grid)
	}

	var mult, adds int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				blk := m.blocks[i][j]
				part := sparse.NewVector[any](int(m.n))
				var lm, la int64
				for ci, col := range blk.JC {
					if !x.Has(col) {
						continue
					}
					xv := x.Get(col)
					for k := blk.CP[ci]; k < blk.CP[ci+1]; k++ {
						dst := blk.IR[k]
						r := sr.Multiply(blk.Val[k], xv)
						lm++
						if part.Has(dst) {
							part.Set(dst, sr.Add(part.Get(dst), r))
							la++
						} else {
							part.Set(dst, r)
						}
					}
				}
				partials[i][j] = part
				mu.Lock()
				mult += lm
				adds += la
				mu.Unlock()
			}(i, j)
		}
	}
	wg.Wait()

	// Merge phase: fold the grid partials of each block row.
	y := sparse.NewVector[any](int(m.n))
	var merges int64
	wg.Add(grid)
	mergeCounts := make([]int64, grid)
	for i := 0; i < grid; i++ {
		go func(i int) {
			defer wg.Done()
			var lm int64
			for j := 0; j < grid; j++ {
				partials[i][j].Iterate(func(idx uint32, v any) {
					lm++
					if y.Has(idx) {
						y.Set(idx, sr.Add(y.Get(idx), v))
					} else {
						y.Set(idx, v)
					}
				})
			}
			mergeCounts[i] = lm
		}(i)
	}
	wg.Wait()
	for _, c := range mergeCounts {
		merges += c
	}

	if stats != nil {
		stats.Multiplies += mult
		stats.Adds += adds
		stats.PartialMerges += merges
	}
	return y
}

// SpGEMMMaskedCount computes Σ_{(i,j)∈A} (A·A)[i,j] for a boolean matrix
// given as an upper-triangular CSR — the CombBLAS-style masked sparse
// matrix–matrix triangle count. The intermediate product rows are
// materialized in hash maps; maxIntermediate caps their total entries, and
// exceeding it aborts with an error, reproducing the paper's observation
// that "intermediate results are so large as to overflow memory" (Figure 4c:
// CombBLAS fails on the real-world datasets).
func SpGEMMMaskedCount(a *sparse.CSR[float32], maxIntermediate int64, stats *Stats) (int64, error) {
	var total int64
	var intermediate int64
	n := a.NRows
	for i := uint32(0); i < n; i++ {
		cols, _ := a.Row(i)
		if len(cols) == 0 {
			continue
		}
		// Row i of C = A·A: merge the rows of A indexed by A's row i.
		row := make(map[uint32]int64)
		var flops int64
		for _, k := range cols {
			kcols, _ := a.Row(k)
			for _, j := range kcols {
				row[j]++
			}
			flops += int64(len(kcols))
		}
		intermediate += int64(len(row))
		if stats != nil {
			stats.Multiplies += flops
			stats.Adds += flops // every product lands in a hash accumulator
		}
		if intermediate > maxIntermediate {
			return 0, fmt.Errorf("matrixengine: SpGEMM intermediate exceeded %d entries (out of memory)", maxIntermediate)
		}
		// Mask by A's row i and accumulate.
		for _, j := range cols {
			total += row[j]
		}
	}
	return total, nil
}
