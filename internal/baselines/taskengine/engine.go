// Package taskengine is the reproduction's stand-in for Galois v2.2.0: an
// asynchronous task/worklist engine. It recreates the properties the paper
// identifies in Galois's profile:
//
//   - operators run asynchronously: a vertex update is visible to tasks in
//     the same round immediately (the paper's stated reason Galois's SSSP
//     executes fewer instructions than bulk-synchronous GraphMat, §5.3);
//   - work lives in chunked worklists drained dynamically by worker
//     goroutines, with an ordered (bucketed-priority, obim-like) variant for
//     SSSP's delta-stepping;
//   - vertex state updates use compare-and-swap, never locks.
package taskengine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"graphmat/internal/sparse"
)

// Graph is the engine's CSR input, identical in layout to the native
// baselines' (Galois uses compact compressed graphs too).
type Graph struct {
	N   uint32
	Out *sparse.CSR[float32]
	In  *sparse.CSR[float32]
}

// Build constructs the graph from adjacency triples (Row = src, Col = dst).
// The input is consumed.
func Build(adj *sparse.COO[float32]) *Graph {
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	out := sparse.BuildCSR(adj)
	t := adj.Clone()
	t.Transpose()
	t.SortRowMajor()
	in := sparse.BuildCSR(t)
	return &Graph{N: adj.NRows, Out: out, In: in}
}

// Stats tallies engine work for the Figure 6 counter proxies.
type Stats struct {
	Tasks  int64 // operator executions
	Pushes int64 // new tasks generated
	Rounds int   // priority buckets or synchronous phases executed
}

const chunkSize = 256

// bag is an unbounded chunked worklist.
type bag struct {
	mu     sync.Mutex
	chunks [][]uint32
}

func (b *bag) push(c []uint32) {
	if len(c) == 0 {
		return
	}
	b.mu.Lock()
	b.chunks = append(b.chunks, c)
	b.mu.Unlock()
}

func (b *bag) pop() []uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.chunks)
	if n == 0 {
		return nil
	}
	c := b.chunks[n-1]
	b.chunks = b.chunks[:n-1]
	return c
}

func threads(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Run drains a worklist seeded with initial: op runs once per popped task
// and may push follow-up tasks; execution is chaotic (no ordering, no
// rounds) and terminates when no tasks remain in flight.
func Run(initial []uint32, nthreads int, op func(v uint32, push func(u uint32))) Stats {
	nthreads = threads(nthreads)
	var b bag
	var pending atomic.Int64
	pending.Add(int64(len(initial)))
	for lo := 0; lo < len(initial); lo += chunkSize {
		hi := min(lo+chunkSize, len(initial))
		b.push(append([]uint32(nil), initial[lo:hi]...))
	}

	var tasks, pushes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nthreads)
	for t := 0; t < nthreads; t++ {
		go func() {
			defer wg.Done()
			local := make([]uint32, 0, chunkSize)
			var lt, lp int64
			flush := func() {
				if len(local) > 0 {
					pending.Add(int64(len(local)))
					b.push(append([]uint32(nil), local...))
					local = local[:0]
				}
			}
			push := func(u uint32) {
				local = append(local, u)
				lp++
				if len(local) == chunkSize {
					flush()
				}
			}
			for {
				c := b.pop()
				if c == nil {
					if pending.Load() == 0 {
						tasks.Add(lt)
						pushes.Add(lp)
						return
					}
					runtime.Gosched()
					continue
				}
				for _, v := range c {
					op(v, push)
					lt++
				}
				flush()
				pending.Add(-int64(len(c)))
			}
		}()
	}
	wg.Wait()
	return Stats{Tasks: tasks.Load(), Pushes: pushes.Load()}
}

// RunPriority drains bucketed worklists in ascending priority order
// (delta-stepping style): bucket k is drained to empty — including tasks
// pushed back into it — before bucket k+1 starts. Tasks pushed with a
// priority below the current bucket run in the current one.
func RunPriority(initial []uint32, initialPrio int, nthreads int,
	op func(v uint32, push func(u uint32, prio int))) Stats {
	nthreads = threads(nthreads)
	var mu sync.Mutex
	buckets := make(map[int]*bag)
	pendingIn := make(map[int]*atomic.Int64)
	getBucket := func(p int) (*bag, *atomic.Int64) {
		mu.Lock()
		defer mu.Unlock()
		bb, ok := buckets[p]
		if !ok {
			bb = &bag{}
			buckets[p] = bb
			pendingIn[p] = &atomic.Int64{}
		}
		return bb, pendingIn[p]
	}

	bb, pend := getBucket(initialPrio)
	pend.Add(int64(len(initial)))
	for lo := 0; lo < len(initial); lo += chunkSize {
		hi := min(lo+chunkSize, len(initial))
		bb.push(append([]uint32(nil), initial[lo:hi]...))
	}

	var stats Stats
	cur := initialPrio
	for {
		// Find the next non-empty bucket.
		mu.Lock()
		found := false
		next := 0
		for p, pi := range pendingIn {
			if pi.Load() > 0 && (!found || p < next) {
				next = p
				found = true
			}
		}
		mu.Unlock()
		if !found {
			break
		}
		cur = next
		stats.Rounds++
		curBag, curPend := getBucket(cur)

		var tasks, pushes atomic.Int64
		var wg sync.WaitGroup
		wg.Add(nthreads)
		for t := 0; t < nthreads; t++ {
			go func() {
				defer wg.Done()
				locals := make(map[int][]uint32)
				var lt, lp int64
				flush := func(p int) {
					l := locals[p]
					if len(l) == 0 {
						return
					}
					tb, tp := getBucket(p)
					tp.Add(int64(len(l)))
					tb.push(append([]uint32(nil), l...))
					locals[p] = l[:0]
				}
				push := func(u uint32, prio int) {
					if prio < cur {
						prio = cur
					}
					locals[prio] = append(locals[prio], u)
					lp++
					if len(locals[prio]) == chunkSize {
						flush(prio)
					}
				}
				for {
					c := curBag.pop()
					if c == nil {
						if curPend.Load() == 0 {
							break
						}
						runtime.Gosched()
						continue
					}
					for _, v := range c {
						op(v, push)
						lt++
					}
					for p := range locals {
						flush(p)
					}
					curPend.Add(-int64(len(c)))
				}
				for p := range locals {
					flush(p)
				}
				tasks.Add(lt)
				pushes.Add(lp)
			}()
		}
		wg.Wait()
		stats.Tasks += tasks.Load()
		stats.Pushes += pushes.Load()
		mu.Lock()
		delete(buckets, cur)
		delete(pendingIn, cur)
		mu.Unlock()
	}
	return stats
}

// parallelVertices runs fn over [0,n) with dynamic chunking — the
// topology-driven execution mode (Galois's do_all).
func parallelVertices(n int, nthreads int, fn func(v uint32)) {
	nthreads = threads(nthreads)
	if nthreads <= 1 || n < 2048 {
		for v := 0; v < n; v++ {
			fn(uint32(v))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nthreads)
	for t := 0; t < nthreads; t++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunkSize)) - chunkSize
				if lo >= n {
					return
				}
				hi := min(lo+chunkSize, n)
				for v := lo; v < hi; v++ {
					fn(uint32(v))
				}
			}
		}()
	}
	wg.Wait()
}
