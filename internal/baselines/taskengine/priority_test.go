package taskengine

import (
	"sync/atomic"
	"testing"
)

func TestRunPriorityClampsPastPriorities(t *testing.T) {
	// A task in bucket 2 pushing priority 0 must run in the *current*
	// bucket (priorities never go backwards — delta-stepping semantics).
	var ranLate atomic.Bool
	RunPriority([]uint32{10}, 2, 1, func(v uint32, push func(uint32, int)) {
		switch v {
		case 10:
			push(20, 0) // clamped to bucket 2
		case 20:
			ranLate.Store(true)
		}
	})
	if !ranLate.Load() {
		t.Error("clamped task never ran")
	}
}

func TestRunPriorityReentrantBucket(t *testing.T) {
	// Tasks pushed into the *current* bucket must drain before advancing:
	// a chain of same-priority pushes.
	var count atomic.Int64
	stats := RunPriority([]uint32{0}, 0, 2, func(v uint32, push func(uint32, int)) {
		count.Add(1)
		if v+1 < 1000 {
			push(v+1, 0)
		}
	})
	if count.Load() != 1000 {
		t.Errorf("ran %d tasks, want 1000", count.Load())
	}
	if stats.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1 (all work in one bucket)", stats.Rounds)
	}
}

func TestRunPrioritySparseBuckets(t *testing.T) {
	// Priorities with gaps: buckets visited in ascending order regardless.
	var order []uint32
	RunPriority([]uint32{1}, 5, 1, func(v uint32, push func(uint32, int)) {
		order = append(order, v)
		if v == 1 {
			push(3, 100)
			push(2, 7)
		}
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestRunEmptyInitial(t *testing.T) {
	stats := Run(nil, 2, func(uint32, func(uint32)) {
		t.Error("op called with no tasks")
	})
	if stats.Tasks != 0 {
		t.Errorf("Tasks = %d", stats.Tasks)
	}
	stats = RunPriority(nil, 0, 2, func(uint32, func(uint32, int)) {
		t.Error("op called with no tasks")
	})
	if stats.Tasks != 0 {
		t.Errorf("priority Tasks = %d", stats.Tasks)
	}
}
