package taskengine

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"graphmat/internal/gen"
	"graphmat/internal/reference"
	"graphmat/internal/sparse"
)

func prepared(seed uint64, scale, ef, maxW int) *sparse.COO[float32] {
	c := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: ef, Seed: seed, MaxWeight: maxW})
	c.RemoveSelfLoops()
	c.SortRowMajor()
	c.DedupKeepFirst()
	return c
}

func TestWorklistProcessesEverything(t *testing.T) {
	// Push each vertex once; each op marks its vertex. All must be marked,
	// across thread counts.
	for _, nthreads := range []int{1, 2, 4} {
		n := 10000
		seen := make([]atomic.Int32, n)
		initial := make([]uint32, n)
		for i := range initial {
			initial[i] = uint32(i)
		}
		stats := Run(initial, nthreads, func(v uint32, _ func(uint32)) {
			seen[v].Add(1)
		})
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("threads=%d: vertex %d processed %d times", nthreads, i, seen[i].Load())
			}
		}
		if stats.Tasks != int64(n) {
			t.Errorf("threads=%d: Tasks = %d, want %d", nthreads, stats.Tasks, n)
		}
	}
}

func TestWorklistPushes(t *testing.T) {
	// Chain: task v pushes v+1 until 5000.
	var count atomic.Int64
	stats := Run([]uint32{0}, 2, func(v uint32, push func(uint32)) {
		count.Add(1)
		if v+1 < 5000 {
			push(v + 1)
		}
	})
	if count.Load() != 5000 {
		t.Errorf("executed %d tasks, want 5000", count.Load())
	}
	if stats.Pushes != 4999 {
		t.Errorf("Pushes = %d, want 4999", stats.Pushes)
	}
}

func TestRunPriorityOrdering(t *testing.T) {
	// Tasks record the bucket sequence; priorities must be non-decreasing
	// at completion-of-bucket granularity. Seed priority 0 pushes into
	// buckets 2 and 1; bucket 1 must drain before bucket 2.
	var order []int
	stats := RunPriority([]uint32{0}, 0, 1, func(v uint32, push func(uint32, int)) {
		switch v {
		case 0:
			order = append(order, 0)
			push(100, 2)
			push(50, 1)
		case 50:
			order = append(order, 1)
		case 100:
			order = append(order, 2)
		}
	})
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("bucket order = %v", order)
	}
	if stats.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", stats.Rounds)
	}
}

func TestTaskPageRank(t *testing.T) {
	coo := prepared(1, 7, 8, 0)
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got, _ := PageRank(g, 0.15, 15, 2)
	want := reference.PageRank(g.N, refEdges, 0.15, 15)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestTaskBFS(t *testing.T) {
	coo := prepared(2, 7, 8, 0)
	coo.Symmetrize()
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got, _ := BFS(g, 0, 2)
	want := reference.BFS(g.N, refEdges, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestTaskSSSP(t *testing.T) {
	coo := prepared(3, 7, 8, 10)
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got, _ := SSSP(g, 0, 4, 2)
	want := reference.SSSP(g.N, refEdges, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestTaskTriangles(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 8, Seed: 4, Params: gen.RMATTriangle})
	coo.RemoveSelfLoops()
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	coo.Symmetrize()
	coo.UpperTriangle()
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	g := Build(coo)
	got, _ := Triangles(g, 2)
	want := reference.Triangles(g.N, refEdges)
	if got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}

func TestTaskCFLossDecreases(t *testing.T) {
	ratings := gen.Bipartite(gen.BipartiteOptions{Users: 200, Items: 30, Ratings: 3000, Seed: 7})
	ratings.SortRowMajor()
	ratings.DedupKeepFirst()
	ratingEdges := append([]sparse.Triple[float32](nil), ratings.Entries...)
	ratings.Symmetrize()
	g := Build(ratings)

	rng := gen.NewRNG(1)
	inits := make([]float32, int(g.N)*CFLatentDim)
	for i := range inits {
		inits[i] = float32(rng.Float64()) * 0.1
	}
	init := func(v, k int) float32 { return inits[v*CFLatentDim+k] }

	prev := math.Inf(1)
	for _, iters := range []int{1, 4, 8} {
		f, _ := CF(g, 0.002, 0.05, iters, 2, init)
		ff := make([][]float32, len(f))
		for i := range f {
			ff[i] = f[i][:]
		}
		loss := reference.CFLoss(ratingEdges, ff, 0.05)
		if loss >= prev || math.IsNaN(loss) {
			t.Fatalf("loss did not decrease: %v -> %v", prev, loss)
		}
		prev = loss
	}
}

// Property: async BFS and delta-stepping SSSP agree with references across
// seeds and thread counts (exercises worklist races).
func TestQuickTaskTraversals(t *testing.T) {
	f := func(seed uint64, threadsRaw uint8) bool {
		nthreads := int(threadsRaw%4) + 1
		coo := prepared(seed, 6, 4, 8)
		refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
		g := Build(coo)
		gotS, _ := SSSP(g, 0, 3, nthreads)
		wantS := reference.SSSP(g.N, refEdges, 0)
		for v := range wantS {
			if gotS[v] != wantS[v] {
				return false
			}
		}
		sym := prepared(seed, 6, 4, 0)
		sym.Symmetrize()
		symEdges := append([]sparse.Triple[float32](nil), sym.Entries...)
		g2 := Build(sym)
		gotB, _ := BFS(g2, 0, nthreads)
		wantB := reference.BFS(g2.N, symEdges, 0)
		for v := range wantB {
			if gotB[v] != wantB[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
