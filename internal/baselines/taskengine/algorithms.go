package taskengine

import (
	"math"
	"sync/atomic"
)

// The paper's five algorithms in Galois style: asynchronous operators with
// CAS state updates for the traversal algorithms, topology-driven do_all
// sweeps for the others.

// PageRank runs topology-driven *push* iterations, the Lonestar/Galois
// formulation the paper measured: every vertex task scatters its
// contribution to its out-neighbors with an atomic (CAS-loop) float add —
// asynchronous engines cannot assume a private output range the way
// GraphMat's 1-D partitioning does, so every edge update synchronizes. This
// per-edge atomic traffic is the instruction overhead Figure 6a shows for
// Galois on PageRank. Results match the reference semantics exactly.
func PageRank(g *Graph, restart float64, iters, nthreads int) ([]float64, Stats) {
	n := int(g.N)
	var stats Stats
	rank := make([]float64, n)
	sum := make([]uint64, n) // float64 bits, accumulated with CAS
	received := make([]uint32, n)
	for i := range rank {
		rank[i] = 1
	}
	atomicAdd := func(addr *uint64, x float64) {
		for {
			old := atomic.LoadUint64(addr)
			nv := math.Float64bits(math.Float64frombits(old) + x)
			if atomic.CompareAndSwapUint64(addr, old, nv) {
				return
			}
		}
	}
	for it := 0; it < iters; it++ {
		stats.Rounds++
		parallelVertices(n, nthreads, func(u uint32) {
			nbrs, _ := g.Out.Row(u)
			if len(nbrs) == 0 {
				return
			}
			c := rank[u] / float64(len(nbrs))
			for _, v := range nbrs {
				atomicAdd(&sum[v], c)
				atomic.StoreUint32(&received[v], 1)
			}
		})
		parallelVertices(n, nthreads, func(v uint32) {
			if received[v] != 0 {
				rank[v] = restart + (1-restart)*math.Float64frombits(sum[v])
				sum[v] = 0
				received[v] = 0
			}
		})
		stats.Tasks += int64(2 * n)
	}
	return rank, stats
}

// BFS runs chaotic asynchronous BFS: tasks relax their out-edges against a
// CAS-min distance array and push improved neighbors. Updated distances are
// visible immediately (no supersteps).
func BFS(g *Graph, root uint32, nthreads int) ([]uint32, Stats) {
	n := int(g.N)
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = math.MaxUint32
	}
	dist[root] = 0
	stats := Run([]uint32{root}, nthreads, func(v uint32, push func(uint32)) {
		dv := atomic.LoadUint32(&dist[v])
		nbrs, _ := g.Out.Row(v)
		for _, u := range nbrs {
			nd := dv + 1
			for {
				old := atomic.LoadUint32(&dist[u])
				if old <= nd {
					break
				}
				if atomic.CompareAndSwapUint32(&dist[u], old, nd) {
					push(u)
					break
				}
			}
		}
	})
	return dist, stats
}

// InfDist marks unreachable vertices in SSSP results.
const InfDist = float32(math.MaxFloat32)

// SSSP runs delta-stepping over the bucketed priority worklist: tasks relax
// out-edges with CAS-min on the float bit pattern, pushing improved vertices
// into the bucket of their new tentative distance. Asynchrony within a
// bucket is what keeps the relaxation count low — the paper's explanation
// for Galois's 1.35× SSSP win over GraphMat (§5.3).
func SSSP(g *Graph, src uint32, delta float32, nthreads int) ([]float32, Stats) {
	if delta <= 0 {
		delta = 1
	}
	n := int(g.N)
	dist := make([]uint32, n) // float32 bit patterns (non-negative: ordered)
	infBits := math.Float32bits(InfDist)
	for i := range dist {
		dist[i] = infBits
	}
	dist[src] = 0

	stats := RunPriority([]uint32{src}, 0, nthreads, func(v uint32, push func(uint32, int)) {
		dv := math.Float32frombits(atomic.LoadUint32(&dist[v]))
		nbrs, ws := g.Out.Row(v)
		for j, u := range nbrs {
			nd := dv + ws[j]
			ndBits := math.Float32bits(nd)
			for {
				old := atomic.LoadUint32(&dist[u])
				if old <= ndBits {
					break
				}
				if atomic.CompareAndSwapUint32(&dist[u], old, ndBits) {
					push(u, int(nd/delta))
					break
				}
			}
		}
	})

	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(dist[i])
	}
	return out, stats
}

// Triangles counts triangles of an upper-triangular DAG with the node
// iterator as a do_all: sorted adjacency intersection per edge, essentially
// the native kernel under worklist scheduling (the paper measures Galois TC
// 20% faster than GraphMat).
func Triangles(g *Graph, nthreads int) (int64, Stats) {
	n := int(g.N)
	var total atomic.Int64
	var stats Stats
	parallelVertices(n, nthreads, func(u uint32) {
		nbrs, _ := g.Out.Row(u)
		var local int64
		for _, v := range nbrs {
			vn, _ := g.Out.Row(v)
			local += intersectCount(nbrs, vn)
		}
		if local != 0 {
			total.Add(local)
		}
	})
	stats.Tasks = int64(n)
	stats.Rounds = 1
	return total.Load(), stats
}

func intersectCount(a, b []uint32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// CFLatentDim matches the GraphMat implementation's K.
const CFLatentDim = 20

// CF runs gradient descent as per-vertex do_all tasks with double-buffered
// factors, on a symmetrized bipartite ratings graph.
func CF(g *Graph, gamma, lambda float32, iters, nthreads int, init func(v, k int) float32) ([][CFLatentDim]float32, Stats) {
	n := int(g.N)
	var stats Stats
	cur := make([][CFLatentDim]float32, n)
	next := make([][CFLatentDim]float32, n)
	for v := 0; v < n; v++ {
		for k := 0; k < CFLatentDim; k++ {
			cur[v][k] = init(v, k)
		}
	}
	for it := 0; it < iters; it++ {
		stats.Rounds++
		parallelVertices(n, nthreads, func(v uint32) {
			nbrs, ratings := g.Out.Row(v)
			if len(nbrs) == 0 {
				next[v] = cur[v]
				return
			}
			var grad [CFLatentDim]float32
			pv := &cur[v]
			for j, u := range nbrs {
				pu := &cur[u]
				var dot float32
				for k := 0; k < CFLatentDim; k++ {
					dot += pu[k] * pv[k]
				}
				e := ratings[j] - dot
				for k := 0; k < CFLatentDim; k++ {
					grad[k] += e * pu[k]
				}
			}
			for k := 0; k < CFLatentDim; k++ {
				next[v][k] = pv[k] + gamma*(grad[k]-lambda*pv[k])
			}
		})
		stats.Tasks += int64(n)
		cur, next = next, cur
	}
	return cur, stats
}
