// Package bitvec provides a dense bitvector used throughout GraphMat for
// sparse-vector occupancy masks and active-vertex sets (paper §4.4.2).
//
// The representation is a []uint64 word array. All single-bit operations are
// available in both plain and atomic flavors: the engine uses plain writes
// when a partition owns a disjoint index range and atomic writes when many
// goroutines may set bits concurrently (e.g. marking vertices active during
// Apply).
package bitvec

import (
	"math/bits"
	"sync/atomic"

	"graphmat/internal/kernels"
)

const (
	wordShift = 6
	wordMask  = 63
)

// Vector is a fixed-length dense bitvector. The zero value is an empty,
// zero-length vector; use New to size one.
type Vector struct {
	words []uint64
	n     int
}

// New returns a Vector of n bits, all clear.
func New(n int) *Vector {
	return &Vector{words: make([]uint64, (n+wordMask)>>wordShift), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i. It is not safe for concurrent use with other writers of the
// same word; use SetAtomic for that.
func (v *Vector) Set(i uint32) {
	v.words[i>>wordShift] |= 1 << (i & wordMask)
}

// Clear clears bit i.
func (v *Vector) Clear(i uint32) {
	v.words[i>>wordShift] &^= 1 << (i & wordMask)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i uint32) bool {
	return v.words[i>>wordShift]&(1<<(i&wordMask)) != 0
}

// SetAtomic sets bit i with a compare-and-swap loop, safe for concurrent
// writers. It reports whether this call changed the bit (false if it was
// already set), which lets callers deduplicate concurrent activations.
func (v *Vector) SetAtomic(i uint32) bool {
	w := &v.words[i>>wordShift]
	mask := uint64(1) << (i & wordMask)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// GetAtomic reports whether bit i is set using an atomic load.
func (v *Vector) GetAtomic(i uint32) bool {
	return atomic.LoadUint64(&v.words[i>>wordShift])&(1<<(i&wordMask)) != 0
}

// Reset clears every bit.
func (v *Vector) Reset() {
	clear(v.words)
}

// Count returns the number of set bits. It is a whole-word popcount sweep
// through the kernels backend — the cheap frontier-size tally the engine's
// cost model reads once per phase instead of maintaining per-Set counters in
// the hot loops.
func (v *Vector) Count() int {
	return kernels.PopcountSum(v.words)
}

// Any reports whether at least one bit is set.
func (v *Vector) Any() bool {
	return kernels.FirstNonzero(v.words) >= 0
}

// Iterate calls fn for each set bit in ascending order.
func (v *Vector) Iterate(fn func(i uint32)) {
	for wi, w := range v.words {
		base := uint32(wi) << wordShift
		for w != 0 {
			fn(base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// IterateRange calls fn for each set bit i with lo <= i < hi, ascending.
func (v *Vector) IterateRange(lo, hi uint32, fn func(i uint32)) {
	if lo >= hi {
		return
	}
	first := int(lo >> wordShift)
	last := int((hi - 1) >> wordShift)
	for wi := first; wi <= last && wi < len(v.words); wi++ {
		w := v.words[wi]
		base := uint32(wi) << wordShift
		if wi == first {
			w &= ^uint64(0) << (lo & wordMask)
		}
		if wi == last && hi&wordMask != 0 {
			w &= (1 << (hi & wordMask)) - 1
		}
		for w != 0 {
			fn(base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit >= i, and ok=false if there
// is none. The partial first word is checked inline; the remaining whole
// words go through the kernels nonzero-word scan.
func (v *Vector) NextSet(i uint32) (uint32, bool) {
	if int(i) >= v.n {
		return 0, false
	}
	wi := int(i >> wordShift)
	if w := v.words[wi] & (^uint64(0) << (i & wordMask)); w != 0 {
		return uint32(wi)<<wordShift + uint32(bits.TrailingZeros64(w)), true
	}
	rest := kernels.FirstNonzero(v.words[wi+1:])
	if rest < 0 {
		return 0, false
	}
	wi += 1 + rest
	return uint32(wi)<<wordShift + uint32(bits.TrailingZeros64(v.words[wi])), true
}

// CopyFrom copies the contents of src into v. The vectors must have the same
// length.
func (v *Vector) CopyFrom(src *Vector) {
	copy(v.words, src.words)
}

// Or sets v to the bitwise OR of v and other. Lengths must match.
func (v *Vector) Or(other *Vector) {
	kernels.OrInto(v.words, other.words)
}

// And sets v to the bitwise AND of a and b. All three must have equal length.
func (v *Vector) And(a, b *Vector) {
	kernels.And(v.words, a.words, b.words)
}

// AndNot sets v to a AND NOT b (the bits of a not in b). All three must have
// equal length.
func (v *Vector) AndNot(a, b *Vector) {
	kernels.AndNot(v.words, a.words, b.words)
}

// CountRange returns the number of set bits i with lo <= i < hi.
func (v *Vector) CountRange(lo, hi uint32) int {
	c := 0
	v.IterateRange(lo, hi, func(uint32) { c++ })
	return c
}

// Words exposes the underlying word slice for read-only word-at-a-time scans
// (used by the SpMV inner loop to skip empty regions quickly).
func (v *Vector) Words() []uint64 { return v.words }
