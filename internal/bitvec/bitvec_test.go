package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(200)
	if v.Len() != 200 {
		t.Fatalf("Len = %d, want 200", v.Len())
	}
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 199} {
		if v.Get(i) {
			t.Errorf("bit %d set before Set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if !v.Get(63) || !v.Get(65) {
		t.Error("Clear(64) disturbed neighboring bits")
	}
}

func TestCountAndAny(t *testing.T) {
	v := New(1000)
	if v.Any() {
		t.Error("empty vector reports Any")
	}
	if v.Count() != 0 {
		t.Errorf("empty Count = %d", v.Count())
	}
	idx := []uint32{3, 64, 999, 500, 64} // one duplicate
	for _, i := range idx {
		v.Set(i)
	}
	if got := v.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if !v.Any() {
		t.Error("Any = false after Set")
	}
	v.Reset()
	if v.Count() != 0 || v.Any() {
		t.Error("Reset did not clear")
	}
}

func TestIterateOrder(t *testing.T) {
	v := New(300)
	want := []uint32{0, 5, 63, 64, 100, 255, 299}
	for _, i := range want {
		v.Set(i)
	}
	var got []uint32
	v.Iterate(func(i uint32) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("Iterate visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Iterate[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestIterateRange(t *testing.T) {
	v := New(256)
	for i := uint32(0); i < 256; i++ {
		v.Set(i)
	}
	cases := []struct {
		lo, hi uint32
		want   int
	}{
		{0, 256, 256},
		{0, 0, 0},
		{10, 10, 0},
		{5, 6, 1},
		{63, 65, 2},
		{64, 128, 64},
		{1, 255, 254},
		{200, 256, 56},
	}
	for _, c := range cases {
		got := 0
		prev := int64(-1)
		v.IterateRange(c.lo, c.hi, func(i uint32) {
			if int64(i) <= prev {
				t.Errorf("IterateRange(%d,%d) out of order: %d after %d", c.lo, c.hi, i, prev)
			}
			if i < c.lo || i >= c.hi {
				t.Errorf("IterateRange(%d,%d) visited out-of-range bit %d", c.lo, c.hi, i)
			}
			prev = int64(i)
			got++
		})
		if got != c.want {
			t.Errorf("IterateRange(%d,%d) visited %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestNextSet(t *testing.T) {
	v := New(300)
	v.Set(10)
	v.Set(64)
	v.Set(299)
	cases := []struct {
		from uint32
		want uint32
		ok   bool
	}{
		{0, 10, true},
		{10, 10, true},
		{11, 64, true},
		{65, 299, true},
		{299, 299, true},
	}
	for _, c := range cases {
		got, ok := v.NextSet(c.from)
		if ok != c.ok || got != c.want {
			t.Errorf("NextSet(%d) = (%d,%v), want (%d,%v)", c.from, got, ok, c.want, c.ok)
		}
	}
	if _, ok := v.NextSet(300); ok {
		t.Error("NextSet past end returned ok")
	}
}

func TestSetAtomicDeduplicates(t *testing.T) {
	v := New(64)
	if !v.SetAtomic(7) {
		t.Error("first SetAtomic returned false")
	}
	if v.SetAtomic(7) {
		t.Error("second SetAtomic returned true")
	}
	if !v.Get(7) {
		t.Error("bit not set")
	}
}

func TestSetAtomicConcurrent(t *testing.T) {
	const n = 4096
	v := New(n)
	done := make(chan int)
	workers := 8
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			wins := 0
			for i := 0; i < n; i++ {
				if v.SetAtomic(uint32(r.Intn(n))) {
					wins++
				}
			}
			done <- wins
		}(int64(w))
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += <-done
	}
	if got := v.Count(); got != total {
		t.Errorf("Count = %d but successful SetAtomic calls = %d", got, total)
	}
}

func TestOrAndCopy(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(1)
	b.Set(2)
	b.Set(1)
	a.Or(b)
	if !a.Get(1) || !a.Get(2) {
		t.Error("Or missing bits")
	}
	c := New(128)
	c.CopyFrom(a)
	if c.Count() != a.Count() {
		t.Error("CopyFrom mismatch")
	}
	a.Clear(1)
	if !c.Get(1) {
		t.Error("CopyFrom aliased storage")
	}
}

// Property: Count equals the size of the set of indices inserted.
func TestQuickCountMatchesSet(t *testing.T) {
	f := func(raw []uint16) bool {
		v := New(1 << 16)
		seen := make(map[uint16]bool)
		for _, i := range raw {
			v.Set(uint32(i))
			seen[i] = true
		}
		return v.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Iterate visits exactly the set bits, in ascending order.
func TestQuickIterateMatchesGet(t *testing.T) {
	f := func(raw []uint16) bool {
		v := New(1 << 16)
		for _, i := range raw {
			v.Set(uint32(i))
		}
		prev := int64(-1)
		ok := true
		v.Iterate(func(i uint32) {
			if !v.Get(i) || int64(i) <= prev {
				ok = false
			}
			prev = int64(i)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: IterateRange(lo,hi) == filter(Iterate, lo<=i<hi).
func TestQuickIterateRange(t *testing.T) {
	f := func(raw []uint16, lo, hi uint16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		v := New(1 << 16)
		for _, i := range raw {
			v.Set(uint32(i))
		}
		var want []uint32
		v.Iterate(func(i uint32) {
			if i >= uint32(lo) && i < uint32(hi) {
				want = append(want, i)
			}
		})
		var got []uint32
		v.IterateRange(uint32(lo), uint32(hi), func(i uint32) { got = append(got, i) })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSet(b *testing.B) {
	v := New(1 << 20)
	for i := 0; i < b.N; i++ {
		v.Set(uint32(i) & (1<<20 - 1))
	}
}

func BenchmarkIterateSparse(b *testing.B) {
	v := New(1 << 20)
	for i := uint32(0); i < 1<<20; i += 1024 {
		v.Set(i)
	}
	b.ResetTimer()
	sum := uint32(0)
	for i := 0; i < b.N; i++ {
		v.Iterate(func(j uint32) { sum += j })
	}
	_ = sum
}
