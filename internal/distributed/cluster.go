// Package distributed simulates the multi-node GraphMat the paper's
// conclusion projects ("Given that GraphMat is based on SPMV, we expect it
// to scale well to multiple nodes"; the authors' follow-up system, GraphPad,
// built exactly this). The cluster partitions vertices 1-D across simulated
// nodes; each node owns a contiguous vertex range, the matrix rows for that
// range, and its vertices' properties. A superstep is:
//
//  1. every node runs SendMessage over its active owned vertices, producing
//     a local message fragment;
//  2. an all-gather exchanges fragments — the simulated network copies every
//     fragment to every peer and tallies the bytes that would cross the
//     wire;
//  3. every node runs the generalized SpMV of its row block against the
//     assembled global message vector;
//  4. every node applies reduced values to its owned vertices and
//     re-activates the changed ones.
//
// Nodes execute concurrently (one goroutine each) with barriers between
// phases, exactly the BSP structure an MPI implementation would have. The
// same core.Program runs unchanged on a Cluster and on the single-node
// engine, and produces identical results — the portability argument of the
// paper's §5.3 ("sparse matrix problems are routinely solved on very large
// and diverse systems").
package distributed

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"graphmat/internal/bitvec"
	"graphmat/internal/core"
	"graphmat/internal/graph"
	"graphmat/internal/sched"
	"graphmat/internal/sparse"
)

// Stats reports one distributed run.
type Stats struct {
	// Supersteps is the number of BSP supersteps executed.
	Supersteps int
	// MessagesOnWire counts (vertex, message) pairs shipped between
	// distinct nodes across all supersteps.
	MessagesOnWire int64
	// BytesOnWire estimates the network traffic: wire messages times the
	// per-entry payload (4-byte vertex id + message size).
	BytesOnWire int64
	// EdgesProcessed counts ProcessMessage invocations cluster-wide.
	EdgesProcessed int64
	// PushSupersteps and PullSupersteps count supersteps executed with each
	// kernel of the shared core dispatch layer (direction optimization
	// applies cluster-wide: all nodes run the same mode each superstep, as
	// an MPI implementation would agree on it at the barrier).
	PushSupersteps int64
	// PullSupersteps counts supersteps executed with the pull kernel.
	PullSupersteps int64
}

// node is one simulated machine.
type node[V, E any] struct {
	id     int
	lo, hi uint32 // owned vertex range
	parts  []*sparse.DCSC[E]
	props  []V // full-length slice; only [lo,hi) is authoritative here
	active *bitvec.Vector
}

// Cluster is a set of simulated nodes holding a partitioned graph.
type Cluster[V, E any] struct {
	n       uint32
	nodes   []*node[V, E]
	bounds  []uint32
	msgSize int64
	// colDeg is the per-column nonzero count of the distributed Gᵀ (the
	// vertices' out-degrees); costs carries the structure-side quantities of
	// the per-superstep direction-optimization decision, summed over every
	// node's partitions.
	colDeg []uint32
	costs  core.KernelCosts
}

// fragment is one node's outgoing messages for a superstep.
type fragment[M any] struct {
	ids  []uint32
	msgs []M
}

// NewCluster distributes adjacency triples (Row = src, Col = dst) over
// nnodes simulated nodes, balancing owned vertices by in-edge count (each
// node's SpMV work). partsPerNode subdivides each node's block for its local
// worker parallelism (1 = one partition per node). The input is consumed.
func NewCluster[V, E any](adj *sparse.COO[E], nnodes, partsPerNode int, msgBytes int) (*Cluster[V, E], error) {
	if adj.NRows != adj.NCols {
		return nil, fmt.Errorf("distributed: adjacency must be square, got %dx%d", adj.NRows, adj.NCols)
	}
	if err := adj.Validate(); err != nil {
		return nil, err
	}
	if nnodes < 1 {
		nnodes = 1
	}
	if partsPerNode < 1 {
		partsPerNode = 1
	}
	n := adj.NRows

	// Gᵀ orientation, like the single-node engine.
	adj.Transpose()
	adj.SortColMajor()
	adj.DedupKeepFirst()

	bounds := sparse.PartitionRows(adj.RowCounts(), nnodes)
	c := &Cluster[V, E]{
		n: n, bounds: bounds, msgSize: int64(msgBytes),
		colDeg: adj.ColCounts(),
	}
	for i := 0; i < nnodes; i++ {
		nd := &node[V, E]{
			id:     i,
			lo:     bounds[i],
			hi:     bounds[i+1],
			props:  make([]V, n),
			active: bitvec.New(int(n)),
		}
		// Subdivide the node's row block for local parallelism.
		sub := sparse.PartitionRows(rangeCounts(adj, nd.lo, nd.hi), partsPerNode)
		for p := 0; p < partsPerNode; p++ {
			lo := nd.lo + sub[p]
			hi := nd.lo + sub[p+1]
			nd.parts = append(nd.parts, sparse.BuildDCSC(adj, lo, hi))
		}
		c.costs = core.AddParts(c.costs, nd.parts)
		c.nodes = append(c.nodes, nd)
	}
	return c, nil
}

// rangeCounts returns per-row entry counts for rows [lo,hi), shifted to
// start at zero.
func rangeCounts[E any](c *sparse.COO[E], lo, hi uint32) []uint32 {
	counts := make([]uint32, hi-lo)
	for _, t := range c.Entries {
		if t.Row >= lo && t.Row < hi {
			counts[t.Row-lo]++
		}
	}
	return counts
}

// NumNodes returns the cluster size.
func (c *Cluster[V, E]) NumNodes() int { return len(c.nodes) }

// NumVertices returns the graph's vertex count.
func (c *Cluster[V, E]) NumVertices() uint32 { return c.n }

// Owner returns the node owning vertex v.
func (c *Cluster[V, E]) Owner(v uint32) int {
	lo, hi := 0, len(c.bounds)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if c.bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// InitProps sets every vertex property on its owning node.
func (c *Cluster[V, E]) InitProps(fn func(v uint32) V) {
	for _, nd := range c.nodes {
		for v := nd.lo; v < nd.hi; v++ {
			nd.props[v] = fn(v)
		}
	}
}

// SetActive marks a vertex active on its owner.
func (c *Cluster[V, E]) SetActive(v uint32) {
	c.nodes[c.Owner(v)].active.Set(v)
}

// SetAllActive marks every vertex active.
func (c *Cluster[V, E]) SetAllActive() {
	for _, nd := range c.nodes {
		for v := nd.lo; v < nd.hi; v++ {
			nd.active.Set(v)
		}
	}
}

// Prop reads vertex v's property from its owner.
func (c *Cluster[V, E]) Prop(v uint32) V {
	return c.nodes[c.Owner(v)].props[v]
}

// Run executes the program for maxIterations supersteps (<= 0 means until
// no vertex is active cluster-wide) with per-superstep adaptive kernel
// dispatch (core.Auto). Only Direction Out programs are supported (the
// distributed block holds Gᵀ rows; an In-direction run would ship the
// transpose, which this simulation does not build).
func Run[V, E, M, R any, P core.Program[V, E, M, R]](c *Cluster[V, E], p P, maxIterations int) (Stats, error) {
	return RunModeContext[V, E, M, R, P](context.Background(), c, p, maxIterations, core.Auto)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled the
// run stops at the next poll point — between supersteps, or between row-block
// partitions inside a superstep — and returns the stats so far with ctx's
// error. A cancelled superstep may leave vertex properties partially applied;
// the cluster should not be reused for exact results afterwards.
func RunContext[V, E, M, R any, P core.Program[V, E, M, R]](ctx context.Context, c *Cluster[V, E], p P, maxIterations int) (Stats, error) {
	return RunModeContext[V, E, M, R, P](ctx, c, p, maxIterations, core.Auto)
}

// RunMode is Run with an explicit kernel mode: Pull and Push force one
// kernel cluster-wide; Auto resolves per superstep from the frontier's
// out-degree sum — computed over the gathered fragments, exactly the
// aggregate an MPI allreduce would provide — against the matrix's total edge
// count. Every node then runs that superstep's local SpMV through the same
// core.MultiplyPartition dispatch the single-node engine uses, so all modes
// produce bit-identical vertex state.
func RunMode[V, E, M, R any, P core.Program[V, E, M, R]](c *Cluster[V, E], p P, maxIterations int, mode core.Mode) (Stats, error) {
	return RunModeContext[V, E, M, R, P](context.Background(), c, p, maxIterations, mode)
}

// RunModeContext is RunMode with cooperative cancellation (see RunContext).
// Cancellation is polled via an atomic stop flag — set by a watcher goroutine
// when ctx's Done channel fires — at two granularities: once per superstep,
// and once per row-block partition inside the kernel sweep, so a cancel never
// waits for a full multi-partition sweep to finish.
func RunModeContext[V, E, M, R any, P core.Program[V, E, M, R]](ctx context.Context, c *Cluster[V, E], p P, maxIterations int, mode core.Mode) (Stats, error) {
	if p.Direction() != graph.Out {
		return Stats{}, fmt.Errorf("distributed: only Direction Out programs are supported")
	}

	// Translate ctx into the engine's pollable stop-flag idiom. The watcher
	// goroutine exits when the run returns (or when ctx fires), so a
	// Background context costs nothing.
	var stop atomic.Int32
	if done := ctx.Done(); done != nil {
		if ctx.Err() != nil {
			// Already cancelled: set the flag synchronously so the run does
			// no work at all, rather than racing the watcher goroutine.
			stop.Store(1)
		}
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				stop.Store(1)
			case <-finished:
			}
		}()
	}
	if maxIterations <= 0 {
		maxIterations = math.MaxInt
	}
	var stats Stats
	nn := len(c.nodes)
	frags := make([]fragment[M], nn)
	xs := make([]*sparse.Vector[M], nn)
	ys := make([]*sparse.Vector[R], nn)
	for i := range c.nodes {
		xs[i] = sparse.NewVector[M](int(c.n))
		ys[i] = sparse.NewVector[R](int(c.n))
	}

	// Each node's superstep work is one task on the shared scheduler pool:
	// the simulated machines reuse the same persistent workers across
	// supersteps and runs, and the stop flag is polled per task, so a
	// cancel can land between nodes within one phase.
	barrier := func(fn func(nd *node[V, E])) {
		sched.Shared(nn).Run(nn, &stop, func(i, _ int) { fn(c.nodes[i]) })
	}

	for iter := 0; iter < maxIterations; iter++ {
		if stop.Load() != 0 {
			return stats, ctx.Err()
		}
		stats.Supersteps++

		// Phase 1: local SendMessage fragments.
		barrier(func(nd *node[V, E]) {
			f := &frags[nd.id]
			f.ids = f.ids[:0]
			f.msgs = f.msgs[:0]
			nd.active.IterateRange(nd.lo, nd.hi, func(v uint32) {
				if m, ok := p.SendMessage(v, nd.props[v]); ok {
					f.ids = append(f.ids, v)
					f.msgs = append(f.msgs, m)
				}
			})
		})
		totalSent := 0
		var frontierEdges int64
		for i := range frags {
			totalSent += len(frags[i].ids)
			if mode != core.Auto {
				continue // forced modes never read the degree sum
			}
			for _, v := range frags[i].ids {
				frontierEdges += int64(c.colDeg[v])
			}
		}
		if totalSent == 0 {
			break
		}
		stepMode := c.costs.Choose(mode, 0, int64(totalSent), frontierEdges)
		if stepMode == core.Push {
			stats.PushSupersteps++
		} else {
			stats.PullSupersteps++
		}

		// Phase 2: all-gather — every node assembles the global message
		// vector from every fragment. Entries from remote nodes are tallied
		// as wire traffic (an MPI allgatherv would ship exactly those).
		barrier(func(nd *node[V, E]) {
			x := xs[nd.id]
			x.Reset()
			for src := range frags {
				f := &frags[src]
				for k, v := range f.ids {
					x.Set(v, f.msgs[k])
				}
			}
		})
		for src := range frags {
			remote := int64(len(frags[src].ids)) * int64(nn-1)
			stats.MessagesOnWire += remote
			stats.BytesOnWire += remote * (4 + c.msgSize)
		}

		// Phase 3: local SpMV of each node's row block through the shared
		// kernel dispatch; Phase 4: apply.
		var edges, active int64
		var mu sync.Mutex
		barrier(func(nd *node[V, E]) {
			x := xs[nd.id]
			y := ys[nd.id]
			y.Reset()
			var localEdges int64
			for _, part := range nd.parts {
				if stop.Load() != 0 {
					break
				}
				e, _ := core.MultiplyPartition(stepMode, part, x, nd.props, p, y)
				localEdges += e
			}
			nd.active.Reset()
			var localActive int64
			y.IterateRange(nd.lo, nd.hi, func(v uint32, r R) {
				if p.Apply(r, v, &nd.props[v]) {
					nd.active.Set(v)
					localActive++
				}
			})
			mu.Lock()
			edges += localEdges
			active += localActive
			mu.Unlock()
		})
		stats.EdgesProcessed += edges
		if stop.Load() != 0 {
			// A cancel mid-sweep leaves this superstep partial; report it as
			// cancelled rather than letting an empty frontier read as done.
			return stats, ctx.Err()
		}
		if active == 0 {
			break
		}
	}
	return stats, nil
}
