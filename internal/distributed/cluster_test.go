package distributed

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"graphmat/internal/core"
	"graphmat/internal/gen"
	"graphmat/internal/graph"
	"graphmat/internal/reference"
	"graphmat/internal/sparse"
)

const inf = float32(math.MaxFloat32)

// ssspProg is the appendix program, unchanged from the single-node engine —
// the portability claim under test.
type ssspProg struct{}

func (ssspProg) SendMessage(_ core.VertexID, prop float32) (float32, bool) { return prop, true }
func (ssspProg) ProcessMessage(m, e float32, _ float32) float32            { return m + e }
func (ssspProg) Reduce(a, b float32) float32                               { return min(a, b) }
func (ssspProg) Apply(r float32, _ core.VertexID, prop *float32) bool {
	if r < *prop {
		*prop = r
		return true
	}
	return false
}
func (ssspProg) Direction() graph.Direction { return graph.Out }

func prepared(seed uint64, scale, ef, maxW int) *sparse.COO[float32] {
	c := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: ef, Seed: seed, MaxWeight: maxW})
	c.RemoveSelfLoops()
	c.SortRowMajor()
	c.DedupKeepFirst()
	return c
}

func TestClusterSSSPMatchesDijkstra(t *testing.T) {
	for _, nnodes := range []int{1, 2, 3, 5} {
		coo := prepared(3, 8, 8, 10)
		refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
		c, err := NewCluster[float32, float32](coo, nnodes, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		c.InitProps(func(v uint32) float32 {
			if v == 0 {
				return 0
			}
			return inf
		})
		c.SetActive(0)
		stats, err := Run(c, ssspProg{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := reference.SSSP(c.NumVertices(), refEdges, 0)
		for v := uint32(0); v < c.NumVertices(); v++ {
			if c.Prop(v) != want[v] {
				t.Fatalf("nodes=%d: dist[%d] = %v, want %v", nnodes, v, c.Prop(v), want[v])
			}
		}
		if stats.Supersteps == 0 || stats.EdgesProcessed == 0 {
			t.Errorf("nodes=%d: empty stats %+v", nnodes, stats)
		}
		if nnodes == 1 && stats.MessagesOnWire != 0 {
			t.Errorf("single node shipped %d messages", stats.MessagesOnWire)
		}
		if nnodes > 1 && stats.MessagesOnWire == 0 {
			t.Errorf("nodes=%d: no wire traffic recorded", nnodes)
		}
	}
}

func TestClusterOwnership(t *testing.T) {
	coo := prepared(4, 7, 4, 0)
	c, err := NewCluster[float32, float32](coo, 4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	// Every vertex has exactly one owner and owners tile the id space.
	prev := -1
	for v := uint32(0); v < c.NumVertices(); v++ {
		o := c.Owner(v)
		if o < prev {
			t.Fatalf("ownership not monotone at vertex %d", v)
		}
		if o < 0 || o >= 4 {
			t.Fatalf("owner(%d) = %d", v, o)
		}
		prev = o
	}
}

func TestClusterRejectsBadInput(t *testing.T) {
	bad := sparse.NewCOO[float32](3, 4)
	if _, err := NewCluster[int, float32](bad, 2, 1, 4); err == nil {
		t.Error("non-square adjacency accepted")
	}
	coo := prepared(5, 6, 4, 0)
	c, err := NewCluster[float32, float32](coo, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, inDirProg{}, 1); err == nil {
		t.Error("Direction In program accepted")
	}
}

type inDirProg struct{ ssspProg }

func (inDirProg) Direction() graph.Direction { return graph.In }

// Property: the distributed engine agrees with the single-node engine for
// every node count, and wire traffic grows with node count.
func TestQuickClusterMatchesSingleNode(t *testing.T) {
	f := func(seed uint64, nodesRaw uint8) bool {
		nnodes := int(nodesRaw%6) + 1
		coo := prepared(seed, 6, 4, 8)
		single := coo.Clone()

		g, err := graph.NewFromCOO[float32, float32](single, graph.Options{Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		g.SetAllProps(inf)
		g.SetProp(0, 0)
		g.SetActive(0)
		core.Run(g, ssspProg{}, core.Config{Threads: 2})

		c, err := NewCluster[float32, float32](coo, nnodes, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		c.InitProps(func(v uint32) float32 {
			if v == 0 {
				return 0
			}
			return inf
		})
		c.SetActive(0)
		if _, err := Run(c, ssspProg{}, 0); err != nil {
			t.Fatal(err)
		}
		for v := uint32(0); v < c.NumVertices(); v++ {
			if c.Prop(v) != g.Prop(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// countProg computes in-degrees (the Figure 1 example) on the cluster.
type countProg struct{}

func (countProg) SendMessage(_ core.VertexID, _ uint32) (uint32, bool) { return 1, true }
func (countProg) ProcessMessage(m uint32, _ float32, _ uint32) uint32  { return m }
func (countProg) Reduce(a, b uint32) uint32                            { return a + b }
func (countProg) Apply(r uint32, _ core.VertexID, prop *uint32) bool   { *prop = r; return false }
func (countProg) Direction() graph.Direction                           { return graph.Out }

func TestClusterInDegree(t *testing.T) {
	coo := prepared(6, 7, 4, 0)
	want := coo.ColCounts() // in-degree = column counts of (src,dst) triples
	c, err := NewCluster[uint32, float32](coo, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAllActive()
	if _, err := Run(c, countProg{}, 1); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < c.NumVertices(); v++ {
		if c.Prop(v) != want[v] {
			t.Fatalf("indeg[%d] = %d, want %d", v, c.Prop(v), want[v])
		}
	}
}

func TestClusterWireTrafficScalesWithNodes(t *testing.T) {
	traffic := make([]int64, 0, 3)
	for _, nnodes := range []int{2, 4, 8} {
		coo := prepared(7, 8, 8, 0)
		c, err := NewCluster[uint32, float32](coo, nnodes, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		c.SetAllActive()
		stats, err := Run(c, countProg{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		traffic = append(traffic, stats.BytesOnWire)
	}
	if !(traffic[0] < traffic[1] && traffic[1] < traffic[2]) {
		t.Errorf("wire traffic not increasing with node count: %v", traffic)
	}
}

func TestRunContextCancelled(t *testing.T) {
	coo := prepared(6, 8, 8, 10)
	c, err := NewCluster[float32, float32](coo, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.InitProps(func(v uint32) float32 {
		if v == 0 {
			return 0
		}
		return inf
	})
	c.SetActive(0)

	// Already-cancelled context: the run must stop at the first superstep
	// poll, before any kernel work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunContext(ctx, c, ssspProg{}, 0)
	if err != context.Canceled {
		t.Fatalf("RunContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if stats.Supersteps != 0 || stats.EdgesProcessed != 0 {
		t.Fatalf("cancelled run did work: %+v", stats)
	}

	// A Background context takes the no-watcher path and completes normally.
	if _, err := RunContext(context.Background(), c, ssspProg{}, 0); err != nil {
		t.Fatalf("RunContext(Background): %v", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	coo := prepared(7, 10, 8, 10)
	c, err := NewCluster[float32, float32](coo, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.InitProps(func(v uint32) float32 {
		if v == 0 {
			return 0
		}
		return inf
	})
	c.SetActive(0)

	// Cancel concurrently with the run; whichever poll point observes the
	// flag, the run must return context.Canceled and not hang. (A fast run
	// may legitimately finish before the cancel lands, so retry a few times.)
	for attempt := 0; attempt < 10; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		_, err := RunContext(ctx, c, ssspProg{}, 0)
		cancel()
		if err == nil {
			c.InitProps(func(v uint32) float32 {
				if v == 0 {
					return 0
				}
				return inf
			})
			c.SetActive(0)
			continue
		}
		if err != context.Canceled {
			t.Fatalf("RunContext: err = %v, want context.Canceled", err)
		}
		return
	}
	t.Skip("cancel never landed before the run finished; covered by TestRunContextCancelled")
}
