package sparse

// CSR is the classic compressed sparse row format. The native baselines
// (internal/baselines/native) and the reference implementations use it; the
// GraphMat engine itself uses DCSC per the paper. With rows and columns
// swapped at build time the same struct serves as a CSC.
type CSR[E any] struct {
	NRows, NCols uint32
	RowPtr       []uint32 // len NRows+1
	ColIdx       []uint32 // len NNZ, ascending within a row
	Val          []E      // len NNZ
}

// BuildCSR constructs a CSR from row-major sorted, deduplicated entries.
func BuildCSR[E any](c *COO[E]) *CSR[E] {
	m := &CSR[E]{
		NRows:  c.NRows,
		NCols:  c.NCols,
		RowPtr: make([]uint32, c.NRows+1),
		ColIdx: make([]uint32, len(c.Entries)),
		Val:    make([]E, len(c.Entries)),
	}
	for _, t := range c.Entries {
		m.RowPtr[t.Row+1]++
	}
	for r := uint32(0); r < c.NRows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	// Entries are row-major sorted, so a single linear fill preserves
	// ascending column order within each row.
	fill := make([]uint32, c.NRows)
	copy(fill, m.RowPtr[:c.NRows])
	for _, t := range c.Entries {
		k := fill[t.Row]
		m.ColIdx[k] = t.Col
		m.Val[k] = t.Val
		fill[t.Row]++
	}
	return m
}

// BuildCSC constructs the compressed sparse *column* view of the entries:
// the returned CSR is the transpose (rows are the original columns). The
// input must be col-major sorted.
func BuildCSC[E any](c *COO[E]) *CSR[E] {
	t := c.Clone()
	t.Transpose()
	t.SortRowMajor()
	return BuildCSR(t)
}

// NNZ returns the number of stored nonzeros.
func (m *CSR[E]) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices and values of row r.
func (m *CSR[E]) Row(r uint32) ([]uint32, []E) {
	s, e := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[s:e], m.Val[s:e]
}

// Degree returns the number of nonzeros in row r.
func (m *CSR[E]) Degree(r uint32) uint32 { return m.RowPtr[r+1] - m.RowPtr[r] }

// Iterate calls fn(row, col, val) in row-major order.
func (m *CSR[E]) Iterate(fn func(row, col uint32, val E)) {
	for r := uint32(0); r < m.NRows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			fn(r, m.ColIdx[k], m.Val[k])
		}
	}
}

// HasEdge reports whether entry (r, c) is present, by binary search within
// the row.
func (m *CSR[E]) HasEdge(r, c uint32) bool {
	cols, _ := m.Row(r)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if cols[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(cols) && cols[lo] == c
}

// ToCOO converts back to triples in row-major order.
func (m *CSR[E]) ToCOO() *COO[E] {
	out := NewCOO[E](m.NRows, m.NCols)
	out.Entries = make([]Triple[E], 0, m.NNZ())
	m.Iterate(func(r, c uint32, v E) {
		out.Entries = append(out.Entries, Triple[E]{Row: r, Col: c, Val: v})
	})
	return out
}
