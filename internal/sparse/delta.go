package sparse

// This file is the overlay half of the versioned storage layer: a DCSC
// partition plus an optional delta DCSC of whole-column overrides, built from
// batched edge mutations. The delta granularity is the column, not the entry:
// a column present in the delta carries the *entire live content* of that
// column (base entries merged with inserts, minus deletes), so a kernel that
// reaches a column reads it from exactly one layer and folds its rows in the
// same ascending order a from-scratch build would — which is what keeps
// results on an overlay bit-identical to a fresh build of the same edge set.
// A column stored in the delta with zero entries is a tombstone: it masks a
// base column whose every edge was deleted.

// Mut is one edge mutation against a matrix: an upsert (Del false) or a
// delete (Del true) of entry (Row, Col).
type Mut[E any] struct {
	Row, Col uint32
	Val      E
	Del      bool
}

// Layered is one row partition of a versioned matrix: the immutable base
// DCSC plus an optional delta DCSC of whole-column overrides. A nil Delta
// means the partition has no pending mutations and kernels take the plain
// single-layer path.
type Layered[E any] struct {
	Base  *DCSC[E]
	Delta *DCSC[E]
}

// LiveNNZ returns the partition's live nonzero count under the overlay.
func (l Layered[E]) LiveNNZ() int {
	if l.Delta == nil {
		return l.Base.NNZ()
	}
	nnz := l.Base.NNZ() + l.Delta.NNZ()
	for _, j := range l.Delta.JC {
		if bi, ok := l.Base.FindColumn(j); ok {
			nnz -= int(l.Base.CP[bi+1] - l.Base.CP[bi])
		}
	}
	return nnz
}

// LiveNZColumns returns the number of columns with at least one live nonzero.
func (l Layered[E]) LiveNZColumns() int {
	if l.Delta == nil {
		return l.Base.NZColumns()
	}
	cols := l.Base.NZColumns()
	for ci, j := range l.Delta.JC {
		nonEmpty := l.Delta.CP[ci+1] > l.Delta.CP[ci]
		_, inBase := l.Base.FindColumn(j)
		switch {
		case inBase && !nonEmpty:
			cols--
		case !inBase && nonEmpty:
			cols++
		}
	}
	return cols
}

// Column returns the live rows and values of column col: the delta override
// when one exists (it is authoritative, possibly empty), the base column
// otherwise.
func (l Layered[E]) Column(col uint32) ([]uint32, []E) {
	if l.Delta != nil {
		if ci, ok := l.Delta.FindColumn(col); ok {
			s, e := l.Delta.CP[ci], l.Delta.CP[ci+1]
			return l.Delta.IR[s:e], l.Delta.Val[s:e]
		}
	}
	return l.Base.Column(col)
}

// Iterate calls fn(row, col, val) for every live nonzero in column-major
// order — the same visit order a fresh DCSC build of the live edge set
// would produce.
func (l Layered[E]) Iterate(fn func(row, col uint32, val E)) {
	if l.Delta == nil {
		l.Base.Iterate(fn)
		return
	}
	b, d := l.Base, l.Delta
	bi, di := 0, 0
	for bi < len(b.JC) || di < len(d.JC) {
		if di >= len(d.JC) || (bi < len(b.JC) && b.JC[bi] < d.JC[di]) {
			col := b.JC[bi]
			for k := b.CP[bi]; k < b.CP[bi+1]; k++ {
				fn(b.IR[k], col, b.Val[k])
			}
			bi++
			continue
		}
		col := d.JC[di]
		if bi < len(b.JC) && b.JC[bi] == col {
			bi++ // base column overridden
		}
		for k := d.CP[di]; k < d.CP[di+1]; k++ {
			fn(d.IR[k], col, d.Val[k])
		}
		di++
	}
}

// Assemble builds a DCSC directly from pre-constructed arrays and indexes it
// with AUX. Unlike BuildDCSC it permits empty columns (CP[i] == CP[i+1]),
// which delta overlays use as column tombstones.
func Assemble[E any](nrows, ncols, rowLo, rowHi uint32, jc, cp, ir []uint32, val []E) *DCSC[E] {
	m := &DCSC[E]{NRows: nrows, NCols: ncols, RowLo: rowLo, RowHi: rowHi, JC: jc, CP: cp, IR: ir, Val: val}
	m.buildAux()
	return m
}

// MergeDelta builds the partition's next delta from the previous one and a
// batch of mutations. muts must be column-major sorted with at most one
// mutation per (row, col) key — the last write of a batch, pre-deduplicated
// by the caller — and restricted to the partition's row range. For every
// touched column the new delta stores the full live column (prior content
// merged with the mutations, where the prior content is the old override if
// one exists, the base column otherwise); untouched old overrides carry over
// unchanged. Returns old (possibly nil) when muts is empty, and nil when the
// merge leaves no overrides.
func MergeDelta[E any](base, old *DCSC[E], muts []Mut[E]) *DCSC[E] {
	if len(muts) == 0 {
		return old
	}
	var oldJC []uint32
	if old != nil {
		oldJC = old.JC
	}
	var jc, cp, ir []uint32
	var val []E
	emit := func(col uint32, rows []uint32, vals []E) {
		jc = append(jc, col)
		cp = append(cp, uint32(len(ir)))
		ir = append(ir, rows...)
		val = append(val, vals...)
	}
	oi := 0
	for mi := 0; mi < len(muts); {
		j := muts[mi].Col
		me := mi
		for me < len(muts) && muts[me].Col == j {
			me++
		}
		// Old overrides below the touched column carry over as-is.
		for oi < len(oldJC) && oldJC[oi] < j {
			s, e := old.CP[oi], old.CP[oi+1]
			emit(oldJC[oi], old.IR[s:e], old.Val[s:e])
			oi++
		}
		// Prior content of the touched column, plus whether the base stores
		// it (an emptied column must stay as a tombstone only if it masks
		// something).
		var prow []uint32
		var pval []E
		_, baseHas := base.FindColumn(j)
		if oi < len(oldJC) && oldJC[oi] == j {
			s, e := old.CP[oi], old.CP[oi+1]
			prow, pval = old.IR[s:e], old.Val[s:e]
			oi++
		} else if baseHas {
			prow, pval = base.Column(j)
		}
		// Merge prior rows with the mutation group, both ascending by row.
		rows := make([]uint32, 0, len(prow)+(me-mi))
		vals := make([]E, 0, len(prow)+(me-mi))
		pi := 0
		for k := mi; k < me; k++ {
			mrow := muts[k].Row
			for pi < len(prow) && prow[pi] < mrow {
				rows = append(rows, prow[pi])
				vals = append(vals, pval[pi])
				pi++
			}
			if pi < len(prow) && prow[pi] == mrow {
				pi++
			}
			if !muts[k].Del {
				rows = append(rows, mrow)
				vals = append(vals, muts[k].Val)
			}
		}
		rows = append(rows, prow[pi:]...)
		vals = append(vals, pval[pi:]...)
		if len(rows) > 0 || baseHas {
			emit(j, rows, vals)
		}
		mi = me
	}
	for ; oi < len(oldJC); oi++ {
		s, e := old.CP[oi], old.CP[oi+1]
		emit(oldJC[oi], old.IR[s:e], old.Val[s:e])
	}
	if len(jc) == 0 {
		return nil
	}
	cp = append(cp, uint32(len(ir)))
	return Assemble(base.NRows, base.NCols, base.RowLo, base.RowHi, jc, cp, ir, val)
}

// OverheadNNZ is the overlay's storage cost in entries: stored nonzeros plus
// one per override column (the JC/CP slot). Compaction policies compare it
// against the base structure's size.
func OverheadNNZ[E any](deltas []*DCSC[E]) int64 {
	var n int64
	for _, d := range deltas {
		if d != nil {
			n += int64(d.NNZ() + d.NZColumns())
		}
	}
	return n
}
