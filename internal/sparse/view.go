package sparse

import "fmt"

// NewDCSCView assembles a DCSC over externally owned arrays — typically
// zero-copy views into an mmap'd GMATSNAP section — adopting the serialized
// AUX index verbatim instead of rebuilding it (Assemble's buildAux
// allocates, which would defeat the point of mapping). The arrays are NOT
// copied: the caller guarantees they outlive the partition and, for mapped
// read-only memory, that nothing ever writes through it (published store
// snapshots never do).
//
// Validation is O(1): the length consistency that ties the arrays together
// (CP brackets JC, CP's final pointer covers IR and Val, AUX ends at the
// column count). Content-level invariants — sorted JC, monotone CP, row ids
// within range — are the serializer's contract, enforced by the snapshot
// writer's deep validation and its payload CRCs, so the boot path stays
// O(partitions), not O(nnz).
func NewDCSCView[E any](nrows, ncols, rowLo, rowHi uint32, jc, cp, ir []uint32, val []E, aux []uint32, auxShift uint32) (*DCSC[E], error) {
	if rowLo > rowHi || rowHi > nrows {
		return nil, fmt.Errorf("sparse: view row range [%d, %d) outside [0, %d)", rowLo, rowHi, nrows)
	}
	if len(cp) != len(jc)+1 {
		return nil, fmt.Errorf("sparse: view CP length %d must be JC length %d + 1", len(cp), len(jc))
	}
	if cp[0] != 0 {
		return nil, fmt.Errorf("sparse: view CP must start at 0, got %d", cp[0])
	}
	nnz := cp[len(cp)-1]
	if uint32(len(ir)) != nnz || uint32(len(val)) != nnz {
		return nil, fmt.Errorf("sparse: view IR/Val lengths (%d, %d) must equal CP's final pointer %d", len(ir), len(val), nnz)
	}
	if aux != nil && (len(aux) < 2 || aux[len(aux)-1] != uint32(len(jc))) {
		return nil, fmt.Errorf("sparse: view AUX index shape is inconsistent with %d columns", len(jc))
	}
	return &DCSC[E]{
		NRows:    nrows,
		NCols:    ncols,
		RowLo:    rowLo,
		RowHi:    rowHi,
		JC:       jc,
		CP:       cp,
		IR:       ir,
		Val:      val,
		Aux:      aux,
		AuxShift: auxShift,
	}, nil
}
