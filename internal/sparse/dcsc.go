package sparse

import "sync"

// DCSC is the Doubly Compressed Sparse Column format of Buluç & Gilbert,
// the matrix representation GraphMat uses (paper §4.4.1). Unlike CSC, the
// column-pointer array holds entries only for columns that actually contain
// nonzeros, which keeps hypersparse partitions compact: a 1-D row partition
// of a scale-free graph touches only a fraction of all columns.
//
// Arrays (names follow the paper's description and [9]):
//
//	JC  — ids of columns with at least one nonzero, ascending
//	CP  — CP[i]..CP[i+1] is the range in IR/Val for column JC[i]
//	IR  — row indices of nonzeros, ascending within each column
//	Val — the nonzero values, parallel to IR
//
// The optional auxiliary index over JC described in [9] (the AUX array) IS
// built here, unlike the paper ("which we have not used"): the pull kernel
// iterates JC directly and never needs it, but the push (SpMSpV) kernel looks
// individual frontier columns up in every partition, and AUX turns that probe
// from a binary search into an effectively O(1) bucket scan.
type DCSC[E any] struct {
	NRows, NCols uint32
	JC           []uint32
	CP           []uint32
	IR           []uint32
	Val          []E

	// Aux is the column-lookup accelerator: Aux[b] is the position in JC of
	// the first column c with c>>AuxShift >= b. A column col therefore lives,
	// if present, in JC[Aux[col>>AuxShift] : Aux[col>>AuxShift+1]] — a bucket
	// whose expected occupancy is below one entry, because AuxShift is chosen
	// so the bucket count tracks len(JC). Aux is nil only for matrices with
	// no nonzeros.
	Aux []uint32
	// AuxShift is the log2 bucket width of Aux.
	AuxShift uint32

	// RowLo, RowHi record the output (row) range this structure covers when
	// it is one partition of a 1-D row decomposition; for a whole matrix they
	// are 0, NRows.
	RowLo, RowHi uint32

	// split memoizes SplitBounds: the histogram sweep behind the boundary
	// computation costs O(nnz), and the engine re-plans tasks on every run
	// against the same pinned structure (drivers like PageRank invoke the
	// engine once per superstep).
	split struct {
		mu     sync.Mutex
		nparts int
		bounds []uint32
	}
}

// SplitBounds partitions this structure's destination rows [RowLo, RowHi)
// into nparts contiguous sub-ranges of roughly equal nonzero weight, with
// interior boundaries 64-aligned (the same cut PartitionRows applies at
// build time, here at sub-partition scale). It returns nparts+1 absolute
// row boundaries; the result is memoized per nparts and must be treated as
// read-only. Safe for concurrent use.
func (m *DCSC[E]) SplitBounds(nparts int) []uint32 {
	m.split.mu.Lock()
	defer m.split.mu.Unlock()
	if m.split.nparts == nparts {
		return m.split.bounds
	}
	counts := make([]uint32, m.RowHi-m.RowLo)
	for _, r := range m.IR {
		counts[r-m.RowLo]++
	}
	bounds := PartitionRows(counts, nparts)
	for i := range bounds {
		bounds[i] += m.RowLo
	}
	m.split.nparts, m.split.bounds = nparts, bounds
	return bounds
}

// NNZ returns the number of stored nonzeros.
func (m *DCSC[E]) NNZ() int { return len(m.IR) }

// NZColumns returns the number of columns that contain at least one nonzero.
func (m *DCSC[E]) NZColumns() int { return len(m.JC) }

// BuildDCSC constructs a DCSC from col-major sorted entries restricted to
// rows in [rowLo, rowHi). The input COO must be sorted with SortColMajor and
// deduplicated; duplicates are not combined here.
func BuildDCSC[E any](c *COO[E], rowLo, rowHi uint32) *DCSC[E] {
	m := &DCSC[E]{NRows: c.NRows, NCols: c.NCols, RowLo: rowLo, RowHi: rowHi}
	// First pass: count the entries in range to size the arrays exactly.
	nnz := 0
	for _, t := range c.Entries {
		if t.Row >= rowLo && t.Row < rowHi {
			nnz++
		}
	}
	if nnz == 0 {
		m.CP = []uint32{0}
		return m
	}
	m.IR = make([]uint32, 0, nnz)
	m.Val = make([]E, 0, nnz)
	prevCol := uint32(0)
	started := false
	for _, t := range c.Entries {
		if t.Row < rowLo || t.Row >= rowHi {
			continue
		}
		if !started || t.Col != prevCol {
			m.JC = append(m.JC, t.Col)
			m.CP = append(m.CP, uint32(len(m.IR)))
			prevCol = t.Col
			started = true
		}
		m.IR = append(m.IR, t.Row)
		m.Val = append(m.Val, t.Val)
	}
	m.CP = append(m.CP, uint32(len(m.IR)))
	m.buildAux()
	return m
}

// buildAux constructs the AUX bucket index over JC. The shift is the smallest
// one that keeps the bucket count within 2×len(JC), so the index costs at
// most as much memory as JC itself while keeping expected bucket occupancy
// under one column.
func (m *DCSC[E]) buildAux() {
	if len(m.JC) == 0 {
		m.Aux, m.AuxShift = nil, 0
		return
	}
	shift := uint32(0)
	for uint64(m.NCols)>>shift > uint64(2*len(m.JC)) {
		shift++
	}
	nb := int(uint64(m.NCols)>>shift) + 1
	aux := make([]uint32, nb+1)
	ci := 0
	for b := 1; b <= nb; b++ {
		for ci < len(m.JC) && m.JC[ci]>>shift < uint32(b) {
			ci++
		}
		aux[b] = uint32(ci)
	}
	m.Aux, m.AuxShift = aux, shift
}

// FindColumn returns the position of col in JC, or ok=false if the column is
// empty. With the AUX index the lookup scans one bucket (expected O(1));
// without it (a hand-assembled DCSC) it falls back to binary search.
func (m *DCSC[E]) FindColumn(col uint32) (int, bool) {
	if m.Aux != nil {
		b := col >> m.AuxShift
		if int(b)+1 >= len(m.Aux) {
			return 0, false
		}
		for ci, hi := int(m.Aux[b]), int(m.Aux[b+1]); ci < hi; ci++ {
			switch c := m.JC[ci]; {
			case c == col:
				return ci, true
			case c > col:
				return 0, false
			}
		}
		return 0, false
	}
	lo, hi := 0, len(m.JC)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.JC[mid] < col {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(m.JC) || m.JC[lo] != col {
		return 0, false
	}
	return lo, true
}

// Column returns the row indices and values of column col, or nils if the
// column is empty.
func (m *DCSC[E]) Column(col uint32) ([]uint32, []E) {
	ci, ok := m.FindColumn(col)
	if !ok {
		return nil, nil
	}
	s, e := m.CP[ci], m.CP[ci+1]
	return m.IR[s:e], m.Val[s:e]
}

// Iterate calls fn(row, col, val) for every nonzero in column-major order.
func (m *DCSC[E]) Iterate(fn func(row, col uint32, val E)) {
	for ci, col := range m.JC {
		for k := m.CP[ci]; k < m.CP[ci+1]; k++ {
			fn(m.IR[k], col, m.Val[k])
		}
	}
}

// ToCOO converts back to triples (col-major sorted by construction).
func (m *DCSC[E]) ToCOO() *COO[E] {
	out := NewCOO[E](m.NRows, m.NCols)
	out.Entries = make([]Triple[E], 0, m.NNZ())
	m.Iterate(func(r, c uint32, v E) {
		out.Entries = append(out.Entries, Triple[E]{Row: r, Col: c, Val: v})
	})
	return out
}

// PartitionRows splits [0, nrows) into nparts contiguous ranges balanced by
// the per-row weight (typically the nonzero count of each row, so SpMV work
// is balanced across partitions — the paper's load-balancing lever, §4.5).
// It returns nparts+1 boundaries; partition i covers [b[i], b[i+1]).
//
// Interior boundaries are aligned up to multiples of 64 so that partitions
// never share a bitvector word: the GraphMat engine writes each partition's
// output-mask range from a single goroutine without atomics.
func PartitionRows(rowWeights []uint32, nparts int) []uint32 {
	n := len(rowWeights)
	if nparts < 1 {
		nparts = 1
	}
	bounds := make([]uint32, nparts+1)
	var total uint64
	for _, w := range rowWeights {
		total += uint64(w) + 1 // +1: a row costs at least its output slot
	}
	target := total / uint64(nparts)
	if target == 0 {
		target = 1
	}
	p := 1
	var acc uint64
	for r := 0; r < n && p < nparts; r++ {
		acc += uint64(rowWeights[r]) + 1
		if acc >= uint64(p)*target {
			bounds[p] = uint32(r + 1)
			p++
		}
	}
	for ; p < nparts; p++ {
		bounds[p] = uint32(n)
	}
	bounds[nparts] = uint32(n)
	for i := 1; i < nparts; i++ {
		bounds[i] = (bounds[i] + 63) &^ 63
		if bounds[i] > uint32(n) {
			bounds[i] = uint32(n)
		}
	}
	// Boundaries must be nondecreasing; guard against degenerate weight
	// distributions and alignment overshoot.
	for i := 1; i <= nparts; i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	return bounds
}

// BuildPartitionedDCSC splits the matrix into row partitions balanced by
// nonzeros and builds one DCSC per partition, serially. The input must be
// col-major sorted and deduplicated. BuildPartitionedDCSCParallel produces
// the identical result on multiple goroutines.
func BuildPartitionedDCSC[E any](c *COO[E], nparts int) []*DCSC[E] {
	return BuildPartitionedDCSCParallel(c, nparts, 1)
}
