// Package sparse implements the sparse-matrix substrate GraphMat is built on:
// COO edge triples, the Doubly Compressed Sparse Column (DCSC) format of
// Buluç & Gilbert used by the paper (§4.4.1), CSR for the native baselines,
// and the two sparse-vector representations discussed in §4.4.2 (a bitvector
// plus dense value array, and a sorted (index,value) tuple array).
//
// All structures are generic over the stored value type so that unweighted
// graphs pay nothing for edge payloads they do not have.
package sparse

import (
	"fmt"
	"slices"
)

// Triple is a single (row, col, value) matrix entry. For a graph adjacency
// matrix A, the entry A[dst][src] of the transpose drives message flow from
// src to dst; package graph decides the orientation.
type Triple[E any] struct {
	Row, Col uint32
	Val      E
}

// COO is an unordered collection of matrix entries with explicit dimensions.
// It is the interchange format: generators and file loaders produce COO, and
// DCSC/CSR are built from it.
type COO[E any] struct {
	NRows, NCols uint32
	Entries      []Triple[E]
}

// NewCOO returns an empty COO with the given dimensions.
func NewCOO[E any](nrows, ncols uint32) *COO[E] {
	return &COO[E]{NRows: nrows, NCols: ncols}
}

// Add appends an entry. It does not validate bounds; call Validate before
// building compressed structures from untrusted input.
func (c *COO[E]) Add(row, col uint32, val E) {
	c.Entries = append(c.Entries, Triple[E]{Row: row, Col: col, Val: val})
}

// NNZ returns the number of stored entries (including any duplicates).
func (c *COO[E]) NNZ() int { return len(c.Entries) }

// Validate checks that every entry is within the matrix dimensions.
func (c *COO[E]) Validate() error {
	for i, t := range c.Entries {
		if t.Row >= c.NRows || t.Col >= c.NCols {
			return fmt.Errorf("sparse: entry %d (%d,%d) outside %dx%d matrix",
				i, t.Row, t.Col, c.NRows, c.NCols)
		}
	}
	return nil
}

// cmpColMajor orders triples by (col, row); cmpRowMajor by (row, col). Both
// leave duplicate (row, col) keys equal so a stable sort preserves their
// input order — DedupKeepFirst's "first" is then the first occurrence in the
// input, not an artifact of the sort.
func cmpColMajor[E any](a, b Triple[E]) int {
	if a.Col != b.Col {
		if a.Col < b.Col {
			return -1
		}
		return 1
	}
	if a.Row != b.Row {
		if a.Row < b.Row {
			return -1
		}
		return 1
	}
	return 0
}

func cmpRowMajor[E any](a, b Triple[E]) int {
	if a.Row != b.Row {
		if a.Row < b.Row {
			return -1
		}
		return 1
	}
	if a.Col != b.Col {
		if a.Col < b.Col {
			return -1
		}
		return 1
	}
	return 0
}

// SortColMajor stably sorts entries by (col, row). DCSC construction requires
// this order.
func (c *COO[E]) SortColMajor() {
	slices.SortStableFunc(c.Entries, cmpColMajor[E])
}

// SortRowMajor stably sorts entries by (row, col). CSR construction requires
// this order.
func (c *COO[E]) SortRowMajor() {
	slices.SortStableFunc(c.Entries, cmpRowMajor[E])
}

// DedupSum collapses duplicate (row,col) entries in place, combining values
// with the supplied function. The receiver must already be sorted (either
// order). The relative order of surviving entries is preserved.
func (c *COO[E]) DedupSum(combine func(a, b E) E) {
	if len(c.Entries) == 0 {
		return
	}
	out := 0
	for i := 1; i < len(c.Entries); i++ {
		cur := c.Entries[i]
		if cur.Row == c.Entries[out].Row && cur.Col == c.Entries[out].Col {
			c.Entries[out].Val = combine(c.Entries[out].Val, cur.Val)
		} else {
			out++
			c.Entries[out] = cur
		}
	}
	c.Entries = c.Entries[:out+1]
}

// DedupKeepFirst collapses duplicate (row,col) entries keeping the first
// occurrence. The receiver must already be sorted.
func (c *COO[E]) DedupKeepFirst() {
	c.DedupSum(func(a, _ E) E { return a })
}

// RemoveSelfLoops drops entries on the diagonal (paper §5.1: "We first remove
// self-loops in the graphs").
func (c *COO[E]) RemoveSelfLoops() {
	out := c.Entries[:0]
	for _, t := range c.Entries {
		if t.Row != t.Col {
			out = append(out, t)
		}
	}
	c.Entries = out
}

// Transpose swaps rows and columns in place.
func (c *COO[E]) Transpose() {
	c.NRows, c.NCols = c.NCols, c.NRows
	for i := range c.Entries {
		c.Entries[i].Row, c.Entries[i].Col = c.Entries[i].Col, c.Entries[i].Row
	}
}

// Clone returns a deep copy.
func (c *COO[E]) Clone() *COO[E] {
	out := &COO[E]{NRows: c.NRows, NCols: c.NCols, Entries: make([]Triple[E], len(c.Entries))}
	copy(out.Entries, c.Entries)
	return out
}

// Symmetrize appends the reverse of every off-diagonal edge and removes the
// duplicates this may create (paper §5.1 BFS preparation: "we replicate edges
// ... to obtain a symmetric graph"). The result is row-major sorted.
func (c *COO[E]) Symmetrize() {
	n := len(c.Entries)
	for i := 0; i < n; i++ {
		t := c.Entries[i]
		if t.Row != t.Col {
			c.Entries = append(c.Entries, Triple[E]{Row: t.Col, Col: t.Row, Val: t.Val})
		}
	}
	c.SortRowMajor()
	c.DedupKeepFirst()
}

// UpperTriangle keeps only entries with row < col, producing the directed
// acyclic orientation triangle counting expects (paper §5.1: "discard the
// edges in the lower triangle of the adjacency matrix").
func (c *COO[E]) UpperTriangle() {
	out := c.Entries[:0]
	for _, t := range c.Entries {
		if t.Row < t.Col {
			out = append(out, t)
		}
	}
	c.Entries = out
}

// RowCounts returns the number of entries in each row.
func (c *COO[E]) RowCounts() []uint32 {
	counts := make([]uint32, c.NRows)
	for _, t := range c.Entries {
		counts[t.Row]++
	}
	return counts
}

// ColCounts returns the number of entries in each column.
func (c *COO[E]) ColCounts() []uint32 {
	counts := make([]uint32, c.NCols)
	for _, t := range c.Entries {
		counts[t.Col]++
	}
	return counts
}
