package sparse

import (
	"testing"
)

// buildCOO returns a col-major sorted, deduplicated COO from triples.
func buildCOO(n uint32, entries [][3]int) *COO[int] {
	c := NewCOO[int](n, n)
	for _, e := range entries {
		c.Add(uint32(e[0]), uint32(e[1]), e[2])
	}
	c.SortColMajor()
	c.DedupKeepFirst()
	return c
}

// applyMuts computes the expected live triple set by brute force.
func applyMuts(c *COO[int], muts []Mut[int], rowLo, rowHi uint32) map[[2]uint32]int {
	live := map[[2]uint32]int{}
	for _, t := range c.Entries {
		if t.Row >= rowLo && t.Row < rowHi {
			live[[2]uint32{t.Row, t.Col}] = t.Val
		}
	}
	for _, m := range muts {
		if m.Row < rowLo || m.Row >= rowHi {
			continue
		}
		if m.Del {
			delete(live, [2]uint32{m.Row, m.Col})
		} else {
			live[[2]uint32{m.Row, m.Col}] = m.Val
		}
	}
	return live
}

// collect walks the overlay and checks column-major visit order.
func collect(t *testing.T, l Layered[int]) map[[2]uint32]int {
	t.Helper()
	got := map[[2]uint32]int{}
	lastCol, lastRow := int64(-1), int64(-1)
	l.Iterate(func(row, col uint32, val int) {
		if int64(col) < lastCol || (int64(col) == lastCol && int64(row) <= lastRow) {
			t.Fatalf("overlay iteration out of order: (%d,%d) after (%d,%d)", row, col, lastRow, lastCol)
		}
		lastCol, lastRow = int64(col), int64(row)
		if _, dup := got[[2]uint32{row, col}]; dup {
			t.Fatalf("overlay yielded (%d,%d) twice", row, col)
		}
		got[[2]uint32{row, col}] = val
	})
	return got
}

func sortMuts(muts []Mut[int]) []Mut[int] {
	out := append([]Mut[int]{}, muts...)
	for i := 1; i < len(out); i++ { // insertion sort: tiny test inputs
		for j := i; j > 0 && (out[j].Col < out[j-1].Col || (out[j].Col == out[j-1].Col && out[j].Row < out[j-1].Row)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestMergeDeltaAgainstBruteForce(t *testing.T) {
	base := buildCOO(10, [][3]int{
		{0, 0, 1}, {3, 0, 2}, {7, 0, 3}, // col 0 spanning both halves
		{2, 2, 4}, {9, 2, 5},
		{5, 5, 6},
		{1, 9, 7}, {8, 9, 8},
	})
	cases := []struct {
		name string
		muts []Mut[int]
	}{
		{"insert_new_column", []Mut[int]{{Row: 4, Col: 3, Val: 40}}},
		{"insert_into_existing", []Mut[int]{{Row: 1, Col: 0, Val: 41}, {Row: 9, Col: 0, Val: 42}}},
		{"upsert_existing", []Mut[int]{{Row: 3, Col: 0, Val: 43}}},
		{"delete_entry", []Mut[int]{{Row: 2, Col: 2, Del: true}}},
		{"delete_whole_column", []Mut[int]{{Row: 5, Col: 5, Del: true}}},
		{"delete_missing", []Mut[int]{{Row: 6, Col: 6, Del: true}}},
		{"mixed", []Mut[int]{
			{Row: 0, Col: 0, Del: true}, {Row: 2, Col: 0, Val: 50},
			{Row: 9, Col: 2, Del: true}, {Row: 2, Col: 2, Del: true},
			{Row: 4, Col: 4, Val: 51}, {Row: 8, Col: 9, Val: 52},
		}},
	}
	bounds := [][2]uint32{{0, 10}, {0, 5}, {5, 10}}
	for _, tc := range cases {
		for _, b := range bounds {
			dc := BuildDCSC(base, b[0], b[1])
			// Restrict muts to the partition range, as the caller contract says.
			var muts []Mut[int]
			for _, m := range sortMuts(tc.muts) {
				if m.Row >= b[0] && m.Row < b[1] {
					muts = append(muts, m)
				}
			}
			delta := MergeDelta(dc, nil, muts)
			l := Layered[int]{Base: dc, Delta: delta}
			want := applyMuts(base, tc.muts, b[0], b[1])
			got := collect(t, l)
			if len(got) != len(want) {
				t.Fatalf("%s rows[%d,%d): %d live entries, want %d", tc.name, b[0], b[1], len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("%s rows[%d,%d): entry %v = %d, want %d", tc.name, b[0], b[1], k, got[k], v)
				}
			}
			if n := l.LiveNNZ(); n != len(want) {
				t.Errorf("%s rows[%d,%d): LiveNNZ = %d, want %d", tc.name, b[0], b[1], n, len(want))
			}
			wantCols := map[uint32]bool{}
			for k := range want {
				wantCols[k[1]] = true
			}
			if n := l.LiveNZColumns(); n != len(wantCols) {
				t.Errorf("%s rows[%d,%d): LiveNZColumns = %d, want %d", tc.name, b[0], b[1], n, len(wantCols))
			}
		}
	}
}

// TestMergeDeltaStacked applies a second batch on top of an existing delta:
// overrides must compose (the prior override, not the base, is the merge
// input) and untouched overrides must carry over.
func TestMergeDeltaStacked(t *testing.T) {
	base := buildCOO(8, [][3]int{{1, 1, 10}, {2, 1, 11}, {4, 4, 12}})
	dc := BuildDCSC(base, 0, 8)
	d1 := MergeDelta(dc, nil, sortMuts([]Mut[int]{
		{Row: 3, Col: 1, Val: 20},   // insert into col 1
		{Row: 4, Col: 4, Del: true}, // empty col 4 (tombstone)
		{Row: 0, Col: 6, Val: 21},   // new col 6
	}))
	d2 := MergeDelta(dc, d1, sortMuts([]Mut[int]{
		{Row: 3, Col: 1, Del: true}, // undo the col-1 insert
		{Row: 4, Col: 4, Val: 22},   // resurrect col 4 with a new value
	}))
	l := Layered[int]{Base: dc, Delta: d2}
	got := collect(t, l)
	want := map[[2]uint32]int{
		{1, 1}: 10, {2, 1}: 11, // col 1 back to base content (via override)
		{4, 4}: 22, // resurrected
		{0, 6}: 21, // untouched override carried over
	}
	if len(got) != len(want) {
		t.Fatalf("live entries = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %v = %d, want %d", k, got[k], v)
		}
	}
	// Column must be served from the override layer where one exists.
	rows, vals := l.Column(4)
	if len(rows) != 1 || rows[0] != 4 || vals[0] != 22 {
		t.Errorf("Column(4) = %v %v", rows, vals)
	}
	if rows, _ := l.Column(5); rows != nil {
		t.Errorf("Column(5) = %v, want empty", rows)
	}
}

// TestMergeDeltaTombstoneDrops checks that an override that empties a column
// the base never stored is dropped rather than kept as a pointless tombstone,
// and that emptying every override returns nil.
func TestMergeDeltaTombstoneDrops(t *testing.T) {
	base := buildCOO(4, [][3]int{{0, 0, 1}})
	dc := BuildDCSC(base, 0, 4)
	if d := MergeDelta(dc, nil, []Mut[int]{{Row: 2, Col: 2, Del: true}}); d != nil {
		t.Fatalf("delete of a missing edge produced a delta: %+v", d)
	}
	d := MergeDelta(dc, nil, []Mut[int]{{Row: 3, Col: 3, Val: 9}})
	if d == nil || d.NZColumns() != 1 {
		t.Fatalf("insert produced delta %+v", d)
	}
	d2 := MergeDelta(dc, d, []Mut[int]{{Row: 3, Col: 3, Del: true}})
	if d2 != nil {
		t.Fatalf("deleting the only override did not drop the delta: %+v", d2)
	}
	// Emptying a column the base DOES store must keep the tombstone.
	d3 := MergeDelta(dc, nil, []Mut[int]{{Row: 0, Col: 0, Del: true}})
	if d3 == nil || d3.NZColumns() != 1 || d3.NNZ() != 0 {
		t.Fatalf("tombstone for a stored column missing: %+v", d3)
	}
	l := Layered[int]{Base: dc, Delta: d3}
	if n := l.LiveNNZ(); n != 0 {
		t.Errorf("LiveNNZ with tombstone = %d", n)
	}
	if rows, _ := l.Column(0); len(rows) != 0 {
		t.Errorf("tombstoned Column(0) = %v", rows)
	}
}

// TestAssembleAuxLookup checks FindColumn over hand-assembled deltas with
// empty columns — the AUX path push kernels rely on.
func TestAssembleAuxLookup(t *testing.T) {
	jc := []uint32{2, 5, 9}
	cp := []uint32{0, 2, 2, 3} // col 5 is an empty tombstone
	ir := []uint32{1, 3, 7}
	val := []int{10, 11, 12}
	d := Assemble(16, 16, 0, 16, jc, cp, ir, val)
	for i, col := range jc {
		ci, ok := d.FindColumn(col)
		if !ok || ci != i {
			t.Fatalf("FindColumn(%d) = %d,%v", col, ci, ok)
		}
	}
	for _, col := range []uint32{0, 1, 3, 4, 6, 8, 10, 15} {
		if _, ok := d.FindColumn(col); ok {
			t.Fatalf("FindColumn(%d) found a missing column", col)
		}
	}
}
