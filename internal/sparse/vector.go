package sparse

import "graphmat/internal/bitvec"

// Vector is the sparse-vector representation the paper selects in §4.4.2:
// "a bitvector for storing valid indices and a constant (number of vertices)
// sized array with values stored only at the valid indices". Presence tests
// are O(1), the bitvector is compact enough to stay cache resident and can be
// shared read-only across SpMV worker goroutines.
type Vector[T any] struct {
	mask *bitvec.Vector
	vals []T
}

// NewVector returns an empty sparse vector of dimension n.
func NewVector[T any](n int) *Vector[T] {
	return &Vector[T]{mask: bitvec.New(n), vals: make([]T, n)}
}

// Len returns the dimension of the vector.
func (v *Vector[T]) Len() int { return v.mask.Len() }

// NNZ returns the number of set entries.
func (v *Vector[T]) NNZ() int { return v.mask.Count() }

// Set stores val at index i. Not safe for concurrent writers of nearby
// indices; the engine writes each index range from a single goroutine.
func (v *Vector[T]) Set(i uint32, val T) {
	v.vals[i] = val
	v.mask.Set(i)
}

// Has reports whether index i is set. This is the hot probe on the SpMV
// inner loop (Algorithm 1 line 4).
func (v *Vector[T]) Has(i uint32) bool { return v.mask.Get(i) }

// Get returns the value at index i; the result is meaningful only if Has(i).
func (v *Vector[T]) Get(i uint32) T { return v.vals[i] }

// GetChecked returns the value and whether it is present.
func (v *Vector[T]) GetChecked(i uint32) (T, bool) {
	if v.mask.Get(i) {
		return v.vals[i], true
	}
	var zero T
	return zero, false
}

// Clear removes index i.
func (v *Vector[T]) Clear(i uint32) { v.mask.Clear(i) }

// Reset removes all entries. Values are not zeroed — the mask is the source
// of truth, which keeps Reset O(n/64).
func (v *Vector[T]) Reset() { v.mask.Reset() }

// Iterate calls fn(i, val) for each set index in ascending order.
func (v *Vector[T]) Iterate(fn func(i uint32, val T)) {
	v.mask.Iterate(func(i uint32) { fn(i, v.vals[i]) })
}

// IterateRange calls fn(i, val) for set indices lo <= i < hi, ascending.
func (v *Vector[T]) IterateRange(lo, hi uint32, fn func(i uint32, val T)) {
	v.mask.IterateRange(lo, hi, func(i uint32) { fn(i, v.vals[i]) })
}

// Mask exposes the occupancy bitvector (shared, read-only use).
func (v *Vector[T]) Mask() *bitvec.Vector { return v.mask }

// Values exposes the backing value array; vals[i] is meaningful only when
// the mask bit i is set.
func (v *Vector[T]) Values() []T { return v.vals }

// Entry is one element of a SortedVector.
type Entry[T any] struct {
	Idx uint32
	Val T
}

// SortedVector is the paper's *other* sparse-vector option (§4.4.2): "a
// variable sized array of sorted (index, value) tuples". The paper measures
// it slower across all algorithms; it is retained as the "naive" mode of the
// Figure 7 ablation.
type SortedVector[T any] struct {
	n       int
	entries []Entry[T]
}

// NewSortedVector returns an empty sorted vector of dimension n.
func NewSortedVector[T any](n int) *SortedVector[T] {
	return &SortedVector[T]{n: n}
}

// Len returns the dimension.
func (v *SortedVector[T]) Len() int { return v.n }

// NNZ returns the number of entries.
func (v *SortedVector[T]) NNZ() int { return len(v.entries) }

// Append adds an entry with index strictly greater than any existing one.
// Engine build loops run in ascending vertex order, so appends stay sorted.
func (v *SortedVector[T]) Append(i uint32, val T) {
	v.entries = append(v.entries, Entry[T]{Idx: i, Val: val})
}

// find returns the position of i, or len if absent.
func (v *SortedVector[T]) find(i uint32) int {
	lo, hi := 0, len(v.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.entries[mid].Idx < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.entries) && v.entries[lo].Idx == i {
		return lo
	}
	return len(v.entries)
}

// Has reports whether index i is present (binary search — the reason this
// representation loses to the bitvector in the paper's measurements).
func (v *SortedVector[T]) Has(i uint32) bool { return v.find(i) < len(v.entries) }

// Get returns the value at index i; meaningful only if Has(i).
func (v *SortedVector[T]) Get(i uint32) T {
	if p := v.find(i); p < len(v.entries) {
		return v.entries[p].Val
	}
	var zero T
	return zero
}

// Reset removes all entries, retaining capacity.
func (v *SortedVector[T]) Reset() { v.entries = v.entries[:0] }

// Iterate calls fn(i, val) in ascending index order.
func (v *SortedVector[T]) Iterate(fn func(i uint32, val T)) {
	for _, e := range v.entries {
		fn(e.Idx, e.Val)
	}
}
