package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tri(r, c uint32, v int) Triple[int] { return Triple[int]{Row: r, Col: c, Val: v} }

func TestSortColMajor(t *testing.T) {
	c := NewCOO[int](4, 4)
	c.Entries = []Triple[int]{tri(3, 1, 1), tri(0, 0, 2), tri(2, 1, 3), tri(1, 0, 4)}
	c.SortColMajor()
	want := []Triple[int]{tri(0, 0, 2), tri(1, 0, 4), tri(2, 1, 3), tri(3, 1, 1)}
	for i := range want {
		if c.Entries[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, c.Entries[i], want[i])
		}
	}
}

func TestSortRowMajor(t *testing.T) {
	c := NewCOO[int](4, 4)
	c.Entries = []Triple[int]{tri(1, 3, 1), tri(0, 2, 2), tri(1, 0, 3), tri(0, 1, 4)}
	c.SortRowMajor()
	want := []Triple[int]{tri(0, 1, 4), tri(0, 2, 2), tri(1, 0, 3), tri(1, 3, 1)}
	for i := range want {
		if c.Entries[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, c.Entries[i], want[i])
		}
	}
}

func TestDedupSum(t *testing.T) {
	c := NewCOO[int](4, 4)
	c.Entries = []Triple[int]{tri(0, 0, 1), tri(0, 0, 2), tri(0, 0, 3), tri(1, 1, 5), tri(2, 0, 7), tri(2, 0, 1)}
	c.DedupSum(func(a, b int) int { return a + b })
	want := []Triple[int]{tri(0, 0, 6), tri(1, 1, 5), tri(2, 0, 8)}
	if len(c.Entries) != len(want) {
		t.Fatalf("len = %d, want %d", len(c.Entries), len(want))
	}
	for i := range want {
		if c.Entries[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, c.Entries[i], want[i])
		}
	}
}

func TestRemoveSelfLoops(t *testing.T) {
	c := NewCOO[int](3, 3)
	c.Entries = []Triple[int]{tri(0, 0, 1), tri(0, 1, 2), tri(1, 1, 3), tri(2, 1, 4), tri(2, 2, 5)}
	c.RemoveSelfLoops()
	if len(c.Entries) != 2 {
		t.Fatalf("len = %d, want 2", len(c.Entries))
	}
	for _, e := range c.Entries {
		if e.Row == e.Col {
			t.Errorf("self loop %v survived", e)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	c := NewCOO[int](4, 4)
	c.Entries = []Triple[int]{tri(0, 1, 1), tri(1, 0, 9), tri(2, 3, 1)}
	c.Symmetrize()
	// Expect edges {0,1},{1,0},{2,3},{3,2}, deduplicated.
	if len(c.Entries) != 4 {
		t.Fatalf("len = %d, want 4: %v", len(c.Entries), c.Entries)
	}
	has := func(r, cc uint32) bool {
		for _, e := range c.Entries {
			if e.Row == r && e.Col == cc {
				return true
			}
		}
		return false
	}
	for _, p := range [][2]uint32{{0, 1}, {1, 0}, {2, 3}, {3, 2}} {
		if !has(p[0], p[1]) {
			t.Errorf("missing edge %v", p)
		}
	}
}

func TestUpperTriangle(t *testing.T) {
	c := NewCOO[int](4, 4)
	c.Entries = []Triple[int]{tri(0, 1, 1), tri(1, 0, 1), tri(2, 2, 1), tri(1, 3, 1)}
	c.UpperTriangle()
	if len(c.Entries) != 2 {
		t.Fatalf("len = %d, want 2", len(c.Entries))
	}
	for _, e := range c.Entries {
		if e.Row >= e.Col {
			t.Errorf("non-upper entry %v", e)
		}
	}
}

func TestRowColCounts(t *testing.T) {
	c := NewCOO[int](3, 4)
	c.Entries = []Triple[int]{tri(0, 1, 1), tri(0, 2, 1), tri(2, 1, 1)}
	rc := c.RowCounts()
	if rc[0] != 2 || rc[1] != 0 || rc[2] != 1 {
		t.Errorf("RowCounts = %v", rc)
	}
	cc := c.ColCounts()
	if cc[0] != 0 || cc[1] != 2 || cc[2] != 1 || cc[3] != 0 {
		t.Errorf("ColCounts = %v", cc)
	}
}

func TestValidate(t *testing.T) {
	c := NewCOO[int](2, 2)
	c.Add(0, 1, 1)
	if err := c.Validate(); err != nil {
		t.Errorf("valid COO rejected: %v", err)
	}
	c.Add(2, 0, 1)
	if err := c.Validate(); err == nil {
		t.Error("out-of-bounds row accepted")
	}
}

// Property: Symmetrize yields a matrix equal to its own transpose.
func TestQuickSymmetrizeIsSymmetric(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := uint32(nRaw%30) + 2
		r := rand.New(rand.NewSource(seed))
		c := NewCOO[int](n, n)
		for i := 0; i < int(n)*3; i++ {
			c.Add(uint32(r.Intn(int(n))), uint32(r.Intn(int(n))), 1)
		}
		c.RemoveSelfLoops()
		c.SortRowMajor()
		c.DedupKeepFirst()
		c.Symmetrize()
		set := make(map[[2]uint32]bool)
		for _, e := range c.Entries {
			set[[2]uint32{e.Row, e.Col}] = true
		}
		for k := range set {
			if !set[[2]uint32{k[1], k[0]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: transpose twice is the identity.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCOO[int](10, 7)
		for i := 0; i < 25; i++ {
			c.Add(uint32(r.Intn(10)), uint32(r.Intn(7)), r.Intn(100))
		}
		orig := c.Clone()
		c.Transpose()
		c.Transpose()
		if c.NRows != orig.NRows || c.NCols != orig.NCols {
			return false
		}
		for i := range c.Entries {
			if c.Entries[i] != orig.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
