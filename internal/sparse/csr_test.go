package sparse

import (
	"testing"
	"testing/quick"
)

func buildTestCSR(t *testing.T) *CSR[int] {
	t.Helper()
	c := NewCOO[int](4, 4)
	// Figure 1 graph, forward adjacency A[src][dst].
	for _, e := range [][3]uint32{{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}} {
		c.Add(e[0], e[1], int(e[2]))
	}
	c.SortRowMajor()
	return BuildCSR(c)
}

func TestCSRBasic(t *testing.T) {
	m := buildTestCSR(t)
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	cols, _ := m.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 {
		t.Errorf("Row(0) = %v", cols)
	}
	if m.Degree(0) != 2 || m.Degree(3) != 0 {
		t.Errorf("degrees wrong: %d %d", m.Degree(0), m.Degree(3))
	}
	if !m.HasEdge(1, 3) || m.HasEdge(3, 1) || m.HasEdge(0, 0) {
		t.Error("HasEdge wrong")
	}
}

func TestBuildCSC(t *testing.T) {
	c := NewCOO[int](3, 4)
	c.Add(0, 1, 10)
	c.Add(2, 1, 20)
	c.Add(1, 3, 30)
	c.SortColMajor()
	csc := BuildCSC(c)
	// CSC rows are original columns.
	if csc.NRows != 4 || csc.NCols != 3 {
		t.Fatalf("CSC dims %dx%d", csc.NRows, csc.NCols)
	}
	rows, vals := csc.Row(1) // column 1 of the original: entries (0,1,10),(2,1,20)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[0] != 10 || vals[1] != 20 {
		t.Errorf("column 1 = %v %v", rows, vals)
	}
}

// Property: CSR round trip through COO is the identity.
func TestQuickCSRRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		c := randCOO(seed, 30, 30, 150)
		c.SortRowMajor()
		m := BuildCSR(c)
		back := m.ToCOO()
		if len(back.Entries) != len(c.Entries) {
			return false
		}
		for i := range c.Entries {
			if back.Entries[i] != c.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: DCSC of G^T and CSR of G contain the same edges.
func TestQuickDCSCMatchesCSRTranspose(t *testing.T) {
	f := func(seed int64) bool {
		c := randCOO(seed, 32, 32, 128)
		c.SortRowMajor()
		csr := BuildCSR(c)
		ct := c.Clone()
		ct.Transpose()
		ct.SortColMajor()
		dcsc := BuildDCSC(ct, 0, 32)
		// Every CSR edge (r,c) should appear in DCSC as (row=c, col=r).
		ok := true
		csr.Iterate(func(r, cc uint32, v int) {
			rows, vals := dcsc.Column(r)
			found := false
			for i, rr := range rows {
				if rr == cc && vals[i] == v {
					found = true
					break
				}
			}
			if !found {
				ok = false
			}
		})
		return ok && csr.NNZ() == dcsc.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: HasEdge agrees with a map reference.
func TestQuickHasEdge(t *testing.T) {
	f := func(seed int64) bool {
		c := randCOO(seed, 20, 20, 80)
		c.SortRowMajor()
		m := BuildCSR(c)
		ref := make(map[[2]uint32]bool)
		for _, e := range c.Entries {
			ref[[2]uint32{e.Row, e.Col}] = true
		}
		for r := uint32(0); r < 20; r++ {
			for cc := uint32(0); cc < 20; cc++ {
				if m.HasEdge(r, cc) != ref[[2]uint32{r, cc}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
