package sparse

import (
	"runtime"
	"slices"

	"graphmat/internal/sched"
)

// This file is the parallel half of the ingestion pipeline: a stable parallel
// merge sort and a boundary-aligned parallel dedup over COO, and a concurrent
// per-partition DCSC build. Every function here is bit-identical to its
// sequential counterpart — same entry order, same partition arrays — which is
// what makes parallel ingestion safe to enable by default (and what the
// differential tests assert).

const (
	// minParallelSort is the slice length below which chunked sorting is not
	// worth the goroutine overhead.
	minParallelSort = 1 << 13
	// minParallelDedup is the slice length below which dedup runs serially.
	minParallelDedup = 1 << 15
)

// Workers resolves a worker-count option: 0 (or negative) means GOMAXPROCS,
// anything else is taken literally.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ParallelFor runs fn(i) for every i in [0, n) across min(workers, n)
// executors on the process-wide scheduler pool (work-stealing dynamic
// scheduling, the paper's §4.5 recipe). workers ≤ 1 runs inline. It returns
// after every call completes.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	sched.Shared(workers).Run(n, nil, func(i, _ int) { fn(i) })
}

// SortColMajorParallel is SortColMajor on workers goroutines (0 =
// GOMAXPROCS): sorted chunks merged pairwise, stable end to end, so the
// result is identical to the sequential sort.
func (c *COO[E]) SortColMajorParallel(workers int) {
	parallelSortStable(c.Entries, cmpColMajor[E], Workers(workers))
}

// SortRowMajorParallel is SortRowMajor on workers goroutines (0 = GOMAXPROCS).
func (c *COO[E]) SortRowMajorParallel(workers int) {
	parallelSortStable(c.Entries, cmpRowMajor[E], Workers(workers))
}

// parallelSortStable sorts entries with cmp: the slice is cut into one chunk
// per worker, chunks sort concurrently, then adjacent runs merge pairwise
// (ties taken from the left run) until one remains. Left-preference makes
// every round stable, so the final order equals a sequential stable sort.
func parallelSortStable[E any](entries []Triple[E], cmp func(a, b Triple[E]) int, workers int) {
	n := len(entries)
	if workers <= 1 || n < minParallelSort {
		slices.SortStableFunc(entries, cmp)
		return
	}
	nchunks := workers
	if nchunks > n/minParallelSort+1 {
		nchunks = n/minParallelSort + 1
	}
	bounds := make([]int, nchunks+1)
	for i := 0; i <= nchunks; i++ {
		bounds[i] = i * n / nchunks
	}
	ParallelFor(nchunks, workers, func(i int) {
		slices.SortStableFunc(entries[bounds[i]:bounds[i+1]], cmp)
	})

	buf := make([]Triple[E], n)
	src, dst := entries, buf
	for len(bounds) > 2 {
		merged := make([]int, 0, len(bounds)/2+2)
		merged = append(merged, 0)
		type job struct{ lo, mid, hi int }
		var jobs []job
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			jobs = append(jobs, job{bounds[i], bounds[i+1], bounds[i+2]})
			merged = append(merged, bounds[i+2])
		}
		if i+1 < len(bounds) { // odd run out: carry it over unmerged
			copy(dst[bounds[i]:bounds[i+1]], src[bounds[i]:bounds[i+1]])
			merged = append(merged, bounds[i+1])
		}
		ParallelFor(len(jobs), workers, func(j int) {
			jb := jobs[j]
			mergeStable(dst[jb.lo:jb.hi], src[jb.lo:jb.mid], src[jb.mid:jb.hi], cmp)
		})
		bounds = merged
		src, dst = dst, src
	}
	if n > 0 && &src[0] != &entries[0] {
		copy(entries, src)
	}
}

// mergeStable merges sorted runs a and b into dst (len(dst) = len(a)+len(b)),
// taking from a on ties.
func mergeStable[E any](dst, a, b []Triple[E], cmp func(x, y Triple[E]) int) {
	k := 0
	for len(a) > 0 && len(b) > 0 {
		if cmp(b[0], a[0]) < 0 {
			dst[k] = b[0]
			b = b[1:]
		} else {
			dst[k] = a[0]
			a = a[1:]
		}
		k++
	}
	copy(dst[k:], a)
	copy(dst[k+len(a):], b)
}

// DedupSumParallel is DedupSum on workers goroutines (0 = GOMAXPROCS). The
// receiver must already be sorted. Worker ranges are aligned so no duplicate
// group spans two ranges, which makes the result identical to the sequential
// dedup.
func (c *COO[E]) DedupSumParallel(combine func(a, b E) E, workers int) {
	workers = Workers(workers)
	n := len(c.Entries)
	if workers <= 1 || n < minParallelDedup {
		c.DedupSum(combine)
		return
	}
	bounds := []int{0}
	for i := 1; i < workers; i++ {
		p := i * n / workers
		if p <= bounds[len(bounds)-1] {
			continue
		}
		// Push the cut forward past any run of the same (row, col) key so a
		// group is deduplicated by exactly one worker.
		for p < n && c.Entries[p].Row == c.Entries[p-1].Row && c.Entries[p].Col == c.Entries[p-1].Col {
			p++
		}
		if p > bounds[len(bounds)-1] && p < n {
			bounds = append(bounds, p)
		}
	}
	bounds = append(bounds, n)

	nranges := len(bounds) - 1
	lens := make([]int, nranges)
	ParallelFor(nranges, workers, func(r int) {
		sub := COO[E]{Entries: c.Entries[bounds[r]:bounds[r+1]]}
		sub.DedupSum(combine)
		lens[r] = len(sub.Entries)
	})
	out := lens[0]
	for r := 1; r < nranges; r++ {
		copy(c.Entries[out:], c.Entries[bounds[r]:bounds[r]+lens[r]])
		out += lens[r]
	}
	c.Entries = c.Entries[:out]
}

// DedupKeepFirstParallel is DedupKeepFirst on workers goroutines
// (0 = GOMAXPROCS).
func (c *COO[E]) DedupKeepFirstParallel(workers int) {
	c.DedupSumParallel(func(a, _ E) E { return a }, workers)
}

// BuildPartitionedDCSCParallel is BuildPartitionedDCSC with the per-partition
// builds running on workers goroutines (0 = GOMAXPROCS). A single stable
// scatter pass buckets the entries by partition first, so total work is
// O(nnz + Σ partition builds) instead of the naive O(nnz × nparts) rescan,
// and each partition sees exactly the subsequence of entries BuildDCSC would
// have filtered — the output is bit-identical either way.
func BuildPartitionedDCSCParallel[E any](c *COO[E], nparts, workers int) []*DCSC[E] {
	workers = Workers(workers)
	bounds := PartitionRows(c.RowCounts(), nparts)

	// Row → partition lookup (bounds are contiguous and nondecreasing).
	rowPart := make([]uint32, c.NRows)
	for p := 0; p < nparts; p++ {
		for r := bounds[p]; r < bounds[p+1]; r++ {
			rowPart[r] = uint32(p)
		}
	}
	counts := make([]int, nparts)
	for _, t := range c.Entries {
		counts[rowPart[t.Row]]++
	}
	frags := make([][]Triple[E], nparts)
	for p := range frags {
		frags[p] = make([]Triple[E], 0, counts[p])
	}
	for _, t := range c.Entries {
		p := rowPart[t.Row]
		frags[p] = append(frags[p], t)
	}

	parts := make([]*DCSC[E], nparts)
	ParallelFor(nparts, workers, func(p int) {
		fc := &COO[E]{NRows: c.NRows, NCols: c.NCols, Entries: frags[p]}
		parts[p] = BuildDCSC(fc, bounds[p], bounds[p+1])
	})
	return parts
}
