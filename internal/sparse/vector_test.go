package sparse

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestVectorBasic(t *testing.T) {
	v := NewVector[float64](100)
	if v.Len() != 100 || v.NNZ() != 0 {
		t.Fatal("new vector not empty")
	}
	v.Set(5, 2.5)
	v.Set(99, -1)
	if !v.Has(5) || !v.Has(99) || v.Has(6) {
		t.Error("Has wrong")
	}
	if v.Get(5) != 2.5 {
		t.Error("Get wrong")
	}
	if got, ok := v.GetChecked(6); ok || got != 0 {
		t.Error("GetChecked on absent index")
	}
	if got, ok := v.GetChecked(99); !ok || got != -1 {
		t.Error("GetChecked on present index")
	}
	v.Clear(5)
	if v.Has(5) {
		t.Error("Clear failed")
	}
	if v.NNZ() != 1 {
		t.Errorf("NNZ = %d", v.NNZ())
	}
	v.Reset()
	if v.NNZ() != 0 {
		t.Error("Reset failed")
	}
}

func TestVectorIterate(t *testing.T) {
	v := NewVector[int](256)
	idx := []uint32{0, 63, 64, 200, 255}
	for _, i := range idx {
		v.Set(i, int(i)*2)
	}
	var got []uint32
	v.Iterate(func(i uint32, val int) {
		if val != int(i)*2 {
			t.Errorf("value at %d = %d", i, val)
		}
		got = append(got, i)
	})
	if len(got) != len(idx) {
		t.Fatalf("visited %d, want %d", len(got), len(idx))
	}
	count := 0
	v.IterateRange(63, 201, func(i uint32, _ int) {
		if i < 63 || i >= 201 {
			t.Errorf("range violated: %d", i)
		}
		count++
	})
	if count != 3 {
		t.Errorf("IterateRange visited %d, want 3", count)
	}
}

func TestSortedVectorBasic(t *testing.T) {
	v := NewSortedVector[int](100)
	if v.Len() != 100 || v.NNZ() != 0 {
		t.Fatal("new vector not empty")
	}
	v.Append(3, 30)
	v.Append(50, 500)
	v.Append(99, 990)
	if !v.Has(3) || !v.Has(50) || !v.Has(99) || v.Has(4) || v.Has(0) {
		t.Error("Has wrong")
	}
	if v.Get(50) != 500 || v.Get(4) != 0 {
		t.Error("Get wrong")
	}
	var got []uint32
	v.Iterate(func(i uint32, _ int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 3 || got[2] != 99 {
		t.Errorf("Iterate = %v", got)
	}
	v.Reset()
	if v.NNZ() != 0 || v.Has(3) {
		t.Error("Reset failed")
	}
}

// Property: both representations agree on Has/Get for the same contents.
func TestQuickVectorRepresentationsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 512
		idxSet := make(map[uint32]int)
		for i := 0; i < 64; i++ {
			idxSet[uint32(r.Intn(n))] = r.Intn(1000)
		}
		var keys []uint32
		for k := range idxSet {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		bv := NewVector[int](n)
		sv := NewSortedVector[int](n)
		for _, k := range keys {
			bv.Set(k, idxSet[k])
			sv.Append(k, idxSet[k])
		}
		for i := uint32(0); i < uint32(n); i++ {
			if bv.Has(i) != sv.Has(i) {
				return false
			}
			if bv.Has(i) && bv.Get(i) != sv.Get(i) {
				return false
			}
		}
		return bv.NNZ() == sv.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkVectorProbeBitvector(b *testing.B) {
	n := 1 << 18
	v := NewVector[float64](n)
	for i := 0; i < n; i += 16 {
		v.Set(uint32(i), 1)
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if v.Has(uint32(i) & uint32(n-1)) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkVectorProbeSorted(b *testing.B) {
	n := 1 << 18
	v := NewSortedVector[float64](n)
	for i := 0; i < n; i += 16 {
		v.Append(uint32(i), 1)
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if v.Has(uint32(i) & uint32(n-1)) {
			hits++
		}
	}
	_ = hits
}
