package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randCOO builds a random deduplicated col-major sorted COO.
func randCOO(seed int64, nrows, ncols uint32, nnz int) *COO[int] {
	r := rand.New(rand.NewSource(seed))
	c := NewCOO[int](nrows, ncols)
	for i := 0; i < nnz; i++ {
		c.Add(uint32(r.Intn(int(nrows))), uint32(r.Intn(int(ncols))), r.Intn(1000))
	}
	c.SortColMajor()
	c.DedupKeepFirst()
	return c
}

func TestBuildDCSCSmall(t *testing.T) {
	// The Figure 1 graph: edges A->B, A->C, B->D, C->D with A,B,C,D = 0..3.
	// Adjacency matrix A has A[src][dst]=1; we store A^T so column=src.
	c := NewCOO[int](4, 4)
	for _, e := range [][2]uint32{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		c.Add(e[1], e[0], 1) // row=dst, col=src: this is G^T
	}
	c.SortColMajor()
	m := BuildDCSC(c, 0, 4)
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	if m.NZColumns() != 3 { // sources 0,1,2 have out-edges; 3 has none
		t.Fatalf("NZColumns = %d, want 3", m.NZColumns())
	}
	rows, _ := m.Column(0)
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 2 {
		t.Errorf("Column(0) rows = %v, want [1 2]", rows)
	}
	rows, _ = m.Column(3)
	if rows != nil {
		t.Errorf("Column(3) = %v, want nil", rows)
	}
}

func TestDCSCRoundTrip(t *testing.T) {
	c := randCOO(1, 50, 40, 300)
	m := BuildDCSC(c, 0, 50)
	back := m.ToCOO()
	if len(back.Entries) != len(c.Entries) {
		t.Fatalf("round trip NNZ %d != %d", len(back.Entries), len(c.Entries))
	}
	for i := range c.Entries {
		if back.Entries[i] != c.Entries[i] {
			t.Errorf("entry %d: %v != %v", i, back.Entries[i], c.Entries[i])
		}
	}
}

func TestDCSCRowRange(t *testing.T) {
	c := randCOO(2, 100, 100, 500)
	m := BuildDCSC(c, 25, 75)
	m.Iterate(func(r, _ uint32, _ int) {
		if r < 25 || r >= 75 {
			t.Fatalf("row %d outside [25,75)", r)
		}
	})
	want := 0
	for _, e := range c.Entries {
		if e.Row >= 25 && e.Row < 75 {
			want++
		}
	}
	if m.NNZ() != want {
		t.Errorf("NNZ = %d, want %d", m.NNZ(), want)
	}
}

func TestDCSCEmpty(t *testing.T) {
	c := NewCOO[int](10, 10)
	c.SortColMajor()
	m := BuildDCSC(c, 0, 10)
	if m.NNZ() != 0 || m.NZColumns() != 0 {
		t.Error("empty matrix has nonzeros")
	}
	rows, _ := m.Column(5)
	if rows != nil {
		t.Error("Column on empty matrix returned data")
	}
	m.Iterate(func(_, _ uint32, _ int) { t.Error("Iterate on empty matrix") })
}

// Property: partitions tile the matrix exactly — every entry appears in
// exactly one partition, and all partitions together reproduce the input.
func TestQuickPartitionsTile(t *testing.T) {
	f := func(seed int64, partsRaw uint8) bool {
		nparts := int(partsRaw%7) + 1
		c := randCOO(seed, 64, 64, 400)
		parts := BuildPartitionedDCSC(c, nparts)
		if len(parts) != nparts {
			return false
		}
		total := 0
		seen := make(map[[2]uint32]bool)
		for _, p := range parts {
			p.Iterate(func(r, cc uint32, _ int) {
				if r < p.RowLo || r >= p.RowHi {
					t.Errorf("entry (%d,%d) outside partition [%d,%d)", r, cc, p.RowLo, p.RowHi)
				}
				key := [2]uint32{r, cc}
				if seen[key] {
					t.Errorf("entry (%d,%d) in two partitions", r, cc)
				}
				seen[key] = true
				total++
			})
		}
		return total == len(c.Entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Column agrees with a map-of-slices reference for every column.
func TestQuickColumnLookup(t *testing.T) {
	f := func(seed int64) bool {
		c := randCOO(seed, 40, 40, 200)
		m := BuildDCSC(c, 0, 40)
		ref := make(map[uint32][]uint32)
		for _, e := range c.Entries {
			ref[e.Col] = append(ref[e.Col], e.Row)
		}
		for col := uint32(0); col < 40; col++ {
			rows, _ := m.Column(col)
			if len(rows) != len(ref[col]) {
				return false
			}
			for i := range rows {
				if rows[i] != ref[col][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartitionRowsBalance(t *testing.T) {
	// A skewed weight distribution: first row has huge weight.
	weights := make([]uint32, 1024)
	weights[0] = 100000
	for i := 1; i < 1024; i++ {
		weights[i] = 10
	}
	b := PartitionRows(weights, 4)
	if len(b) != 5 {
		t.Fatalf("got %d bounds, want 5", len(b))
	}
	if b[0] != 0 || b[4] != 1024 {
		t.Fatalf("bounds endpoints wrong: %v", b)
	}
	for i := 1; i < 5; i++ {
		if b[i] < b[i-1] {
			t.Fatalf("bounds not monotone: %v", b)
		}
		if b[i]%64 != 0 && b[i] != 1024 {
			t.Fatalf("interior bound %d not 64-aligned: %v", b[i], b)
		}
	}
	// The heavy row should isolate partition 0 to roughly just itself
	// (one aligned block).
	if b[1] > 64 {
		t.Errorf("heavy first row not isolated: bounds %v", b)
	}
}

func TestPartitionRowsDegenerate(t *testing.T) {
	if b := PartitionRows(nil, 3); b[3] != 0 {
		t.Errorf("empty weights: %v", b)
	}
	b := PartitionRows([]uint32{5}, 4)
	if b[4] != 1 {
		t.Errorf("single row: %v", b)
	}
	b = PartitionRows([]uint32{1, 1, 1}, 1)
	if b[0] != 0 || b[1] != 3 {
		t.Errorf("one partition: %v", b)
	}
}

// TestQuickAuxIndex cross-checks the AUX bucket lookup against a plain binary
// search over JC on hypersparse random matrices, including columns that are
// absent, and asserts the index stays within its memory budget.
func TestQuickAuxIndex(t *testing.T) {
	f := func(seed int64) bool {
		c := randCOO(seed, 64, 1<<14, 300) // hypersparse: few columns occupied
		m := BuildDCSC(c, 0, 64)
		if m.Aux == nil {
			return len(m.JC) == 0
		}
		if len(m.Aux) > 2*len(m.JC)+3 {
			t.Fatalf("aux over budget: %d buckets for %d columns", len(m.Aux), len(m.JC))
		}
		bare := &DCSC[int]{NRows: m.NRows, NCols: m.NCols, JC: m.JC, CP: m.CP, IR: m.IR, Val: m.Val}
		for col := uint32(0); col < m.NCols; col += 7 {
			gi, gok := m.FindColumn(col)
			wi, wok := bare.FindColumn(col) // binary-search fallback
			if gi != wi || gok != wok {
				t.Fatalf("FindColumn(%d) aux=(%d,%v) search=(%d,%v)", col, gi, gok, wi, wok)
			}
		}
		for _, col := range m.JC {
			if _, ok := m.FindColumn(col); !ok {
				t.Fatalf("present column %d not found", col)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAuxIndexEmptyAndDense(t *testing.T) {
	empty := BuildDCSC(NewCOO[int](16, 16), 0, 16)
	if _, ok := empty.FindColumn(3); ok {
		t.Error("empty matrix claims a column")
	}
	dense := NewCOO[int](8, 8)
	for r := uint32(0); r < 8; r++ {
		for col := uint32(0); col < 8; col++ {
			dense.Add(r, col, int(r*8+col))
		}
	}
	dense.SortColMajor()
	m := BuildDCSC(dense, 0, 8)
	for col := uint32(0); col < 8; col++ {
		ci, ok := m.FindColumn(col)
		if !ok || m.JC[ci] != col {
			t.Errorf("dense FindColumn(%d) = (%d, %v)", col, ci, ok)
		}
	}
}
