package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCOO builds a COO with duplicate-heavy random entries so dedup and
// stability are actually exercised.
func randomCOO(rng *rand.Rand, n uint32, nnz int) *COO[float32] {
	c := NewCOO[float32](n, n)
	c.Entries = make([]Triple[float32], 0, nnz)
	for i := 0; i < nnz; i++ {
		c.Add(rng.Uint32()%n, rng.Uint32()%n, float32(rng.Intn(16)))
	}
	return c
}

func sameEntries(t *testing.T, a, b []Triple[float32]) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func sameDCSC(t *testing.T, a, b *DCSC[float32]) {
	t.Helper()
	if a.NRows != b.NRows || a.NCols != b.NCols || a.RowLo != b.RowLo || a.RowHi != b.RowHi {
		t.Fatalf("shape differs: %+v vs %+v", a, b)
	}
	for name, pair := range map[string][2][]uint32{
		"JC": {a.JC, b.JC}, "CP": {a.CP, b.CP}, "IR": {a.IR, b.IR},
	} {
		x, y := pair[0], pair[1]
		if len(x) != len(y) {
			t.Fatalf("%s lengths differ: %d vs %d", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s[%d] differs: %d vs %d", name, i, x[i], y[i])
			}
		}
	}
	if len(a.Val) != len(b.Val) {
		t.Fatalf("Val lengths differ: %d vs %d", len(a.Val), len(b.Val))
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatalf("Val[%d] differs: %v vs %v", i, a.Val[i], b.Val[i])
		}
	}
}

// TestParallelSortMatchesSequential: for arbitrary inputs and worker counts,
// the chunked merge sort must produce the exact sequence the sequential
// stable sort produces — including the relative order of duplicate keys.
func TestParallelSortMatchesSequential(t *testing.T) {
	prop := func(seed int64, sizeSel uint16, workerSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nnz := int(sizeSel)%40000 + 1
		workers := int(workerSel)%7 + 2
		c := randomCOO(rng, uint32(rng.Intn(200)+1), nnz)
		// Tag values with their input position so stability violations are
		// visible even for duplicate (row, col, val) triples.
		for i := range c.Entries {
			c.Entries[i].Val = float32(i)
		}
		seq, par := c.Clone(), c.Clone()
		seq.SortColMajor()
		par.SortColMajorParallel(workers)
		for i := range seq.Entries {
			if seq.Entries[i] != par.Entries[i] {
				return false
			}
		}
		seq2, par2 := c.Clone(), c.Clone()
		seq2.SortRowMajor()
		par2.SortRowMajorParallel(workers)
		for i := range seq2.Entries {
			if seq2.Entries[i] != par2.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDedupMatchesSequential: boundary-aligned parallel dedup must
// collapse duplicates exactly as the sequential pass does, for both the
// summing and keep-first combiners.
func TestParallelDedupMatchesSequential(t *testing.T) {
	prop := func(seed int64, sizeSel uint16, workerSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nnz := int(sizeSel)%60000 + 1
		workers := int(workerSel)%7 + 2
		c := randomCOO(rng, uint32(rng.Intn(50)+1), nnz) // tiny id space → many dups
		c.SortColMajor()
		sum := func(a, b float32) float32 { return a + b }

		seq, par := c.Clone(), c.Clone()
		seq.DedupSum(sum)
		par.DedupSumParallel(sum, workers)
		if len(seq.Entries) != len(par.Entries) {
			return false
		}
		for i := range seq.Entries {
			if seq.Entries[i] != par.Entries[i] {
				return false
			}
		}

		seqF, parF := c.Clone(), c.Clone()
		seqF.DedupKeepFirst()
		parF.DedupKeepFirstParallel(workers)
		if len(seqF.Entries) != len(parF.Entries) {
			return false
		}
		for i := range seqF.Entries {
			if seqF.Entries[i] != parF.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildPartitionedDCSCMatchesReference: the scatter-based partition build
// (serial and parallel) must equal the reference construction — one BuildDCSC
// full-matrix filter pass per partition.
func TestBuildPartitionedDCSCMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		n       uint32
		nnz     int
		nparts  int
		workers int
	}{
		{1, 1, 1, 1},
		{17, 40, 3, 2},
		{100, 1000, 7, 4},
		{512, 20000, 33, 8},
		{1000, 5000, 16, 3},
		{300, 0, 4, 4}, // empty matrix
	} {
		c := randomCOO(rng, tc.n, tc.nnz)
		c.SortColMajor()
		c.DedupKeepFirst()
		bounds := PartitionRows(c.RowCounts(), tc.nparts)
		want := make([]*DCSC[float32], tc.nparts)
		for i := 0; i < tc.nparts; i++ {
			want[i] = BuildDCSC(c, bounds[i], bounds[i+1])
		}
		for _, workers := range []int{1, tc.workers} {
			got := BuildPartitionedDCSCParallel(c, tc.nparts, workers)
			if len(got) != len(want) {
				t.Fatalf("n=%d parts=%d workers=%d: %d partitions, want %d",
					tc.n, tc.nparts, workers, len(got), len(want))
			}
			for p := range got {
				sameDCSC(t, want[p], got[p])
			}
		}
	}
}

// TestParallelForCoversAllIndices guards the scheduling helper the whole
// pipeline leans on.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 5, 100} {
		n := 1000
		hits := make([]int32, n)
		ParallelFor(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}
