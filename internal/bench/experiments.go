package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"graphmat"
	"graphmat/internal/counters"
	"graphmat/internal/sparse"
)

// Options configures an experiment sweep.
type Options struct {
	// Shift scales every dataset by 2^Shift relative to the laptop-class
	// defaults (0); positive approaches paper scale.
	Shift int
	// Threads is the worker count for Figure 4/6/7 runs (0: GOMAXPROCS).
	Threads int
	// MaxThreads caps the Figure 5 sweep (0: GOMAXPROCS).
	MaxThreads int
	// PRIters / CFIters are the fixed iteration counts for the
	// time-per-iteration plots (defaults 10 / 5).
	PRIters, CFIters int
	// Repeats re-runs each measurement, keeping the minimum (default 1).
	Repeats int
	// SpGEMMCap bounds CombBLAS TC's materialized intermediate.
	SpGEMMCap int64
	// Frameworks restricts the frameworks run (nil: Fig4Frameworks+Native).
	Frameworks []string
	// DatasetFilter restricts datasets by substring match (empty: all).
	DatasetFilter string
	// Verbose prints progress lines while running.
	Verbose bool
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = runtime.GOMAXPROCS(0)
	}
	if o.PRIters <= 0 {
		o.PRIters = 10
	}
	if o.CFIters <= 0 {
		o.CFIters = 5
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	return o
}

func (o Options) wantFramework(name string) bool {
	if len(o.Frameworks) == 0 {
		return true
	}
	for _, f := range o.Frameworks {
		if f == name {
			return true
		}
	}
	return false
}

func (o Options) wantDataset(name string) bool {
	return o.DatasetFilter == "" || strings.Contains(strings.ToLower(name), strings.ToLower(o.DatasetFilter))
}

func (o Options) progress(format string, args ...any) {
	if o.Verbose {
		fmt.Printf("# "+format+"\n", args...)
	}
}

// Cell is one measured (dataset, framework) point.
type Cell struct {
	Seconds float64 // total wall time (divide by iterations for per-iter plots)
	Value   float64
	Set     counters.Set
	Err     error
}

// Fig4Result holds one Figure 4 subplot's measurements.
type Fig4Result struct {
	Algorithm  string // "PageRank", "BFS", "TC", "CF", "SSSP"
	PerIter    int    // >0: report Seconds/PerIter (PR and CF plots)
	Datasets   []string
	Frameworks []string
	Cells      map[string]map[string]Cell // dataset → framework → cell
}

// measure runs a runner Repeats times keeping the fastest, paper-style.
func measure(r Runner, repeats int) Cell {
	r.Prepare()
	best := Cell{Seconds: -1}
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res := r.Execute()
		el := time.Since(start).Seconds()
		if best.Seconds < 0 || el < best.Seconds {
			set := res.Set
			set.WallSeconds = el
			best = Cell{Seconds: el, Value: res.Value, Set: set, Err: res.Err}
		}
	}
	return best
}

// datasetsFor selects Table 1 datasets running a given algorithm tag.
func datasetsFor(algo string, o Options) []Dataset {
	var out []Dataset
	for _, d := range Datasets() {
		if strings.Contains(d.Algorithms, algo) && o.wantDataset(d.Name) {
			out = append(out, d)
		}
	}
	return out
}

func runFig4(algo string, o Options, runners func(data *sparse.COO[float32]) []Runner) *Fig4Result {
	res := &Fig4Result{Algorithm: algo, Cells: map[string]map[string]Cell{}}
	for _, d := range datasetsFor(algo, o) {
		data := d.Generate(o.Shift)
		res.Datasets = append(res.Datasets, d.Name)
		res.Cells[d.Name] = map[string]Cell{}
		for _, r := range runners(data) {
			if !o.wantFramework(r.Framework) {
				continue
			}
			o.progress("%s / %s / %s", algo, d.Name, r.Framework)
			res.Cells[d.Name][r.Framework] = measure(r, o.Repeats)
		}
	}
	for _, f := range append(append([]string{}, Fig4Frameworks...), FwNative) {
		if o.wantFramework(f) {
			res.Frameworks = append(res.Frameworks, f)
		}
	}
	return res
}

// Fig4a measures PageRank time per iteration (Figure 4a).
func Fig4a(o Options) *Fig4Result {
	o = o.withDefaults()
	r := runFig4("PR", o, func(data *sparse.COO[float32]) []Runner {
		return PageRankRunners(data, o.Threads, o.PRIters)
	})
	r.Algorithm = "PageRank"
	r.PerIter = o.PRIters
	return r
}

// Fig4b measures BFS total time (Figure 4b).
func Fig4b(o Options) *Fig4Result {
	o = o.withDefaults()
	r := runFig4("BFS", o, func(data *sparse.COO[float32]) []Runner {
		return BFSRunners(data, o.Threads)
	})
	r.Algorithm = "BFS"
	return r
}

// Fig4c measures triangle counting total time (Figure 4c).
func Fig4c(o Options) *Fig4Result {
	o = o.withDefaults()
	r := runFig4("TC", o, func(data *sparse.COO[float32]) []Runner {
		return TCRunners(data, o.Threads, o.SpGEMMCap)
	})
	r.Algorithm = "TriangleCounting"
	return r
}

// Fig4d measures collaborative filtering time per iteration (Figure 4d).
func Fig4d(o Options) *Fig4Result {
	o = o.withDefaults()
	r := runFig4("CF", o, func(data *sparse.COO[float32]) []Runner {
		return CFRunners(data, o.Threads, o.CFIters)
	})
	r.Algorithm = "CollaborativeFiltering"
	r.PerIter = o.CFIters
	return r
}

// Fig4e measures SSSP total time (Figure 4e).
func Fig4e(o Options) *Fig4Result {
	o = o.withDefaults()
	r := runFig4("SSSP", o, func(data *sparse.COO[float32]) []Runner {
		return SSSPRunners(data, o.Threads, 8)
	})
	r.Algorithm = "SSSP"
	return r
}

// Table renders a Fig4Result in the paper's layout: datasets as rows,
// frameworks as columns.
func (r *Fig4Result) Table() *Table {
	unit := "total time"
	if r.PerIter > 0 {
		unit = fmt.Sprintf("time/iteration (over %d iterations)", r.PerIter)
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 4: %s (%s)", r.Algorithm, unit),
		Caption: "lower is better; * = architectural stand-in (DESIGN.md)",
		Header:  append([]string{"dataset"}, r.Frameworks...),
	}
	for _, d := range r.Datasets {
		row := []string{d}
		for _, f := range r.Frameworks {
			c, ok := r.Cells[d][f]
			switch {
			case !ok:
				row = append(row, "-")
			case c.Err != nil:
				row = append(row, "FAIL(OOM)")
			case r.PerIter > 0:
				row = append(row, FormatSeconds(c.Seconds/float64(r.PerIter)))
			default:
				row = append(row, FormatSeconds(c.Seconds))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Speedups returns GraphMat's speedup over a framework per dataset (the
// Table 2 inputs). Failed runs are skipped.
func (r *Fig4Result) Speedups(framework string) []float64 {
	var out []float64
	for _, d := range r.Datasets {
		gm, ok1 := r.Cells[d][FwGraphMat]
		other, ok2 := r.Cells[d][framework]
		if ok1 && ok2 && gm.Err == nil && other.Err == nil && gm.Seconds > 0 {
			out = append(out, other.Seconds/gm.Seconds)
		}
	}
	return out
}

// Table2 computes the paper's Table 2 from the five Figure 4 results:
// geometric-mean speedup of GraphMat over each framework per algorithm plus
// the overall geomean.
func Table2(results []*Fig4Result) *Table {
	baselines := []string{FwGraphLab, FwCombBLAS, FwGalois}
	t := &Table{
		Title:   "Table 2: GraphMat speedup summary (geomean; higher = GraphMat faster)",
		Caption: "paper: GraphLab 5.8x, CombBLAS 6.9x, Galois 1.2x overall",
	}
	t.Header = []string{"baseline"}
	for _, r := range results {
		t.Header = append(t.Header, r.Algorithm)
	}
	t.Header = append(t.Header, "Overall")
	for _, b := range baselines {
		row := []string{b}
		var all []float64
		for _, r := range results {
			sp := r.Speedups(b)
			all = append(all, sp...)
			if len(sp) == 0 {
				row = append(row, "-")
			} else {
				row = append(row, FormatRatio(geomean(sp)))
			}
		}
		row = append(row, FormatRatio(geomean(all)))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3 computes the paper's Table 3: GraphMat slowdown vs native code per
// algorithm (geomean across datasets) and overall. Values above 1 mean
// native is faster.
func Table3(results []*Fig4Result) *Table {
	t := &Table{
		Title:   "Table 3: GraphMat slowdown vs native, hand-optimized code",
		Caption: "paper: PR 1.15, BFS 1.18, TC 2.10, CF 0.73, geomean 1.20 (SSSP not in paper's table)",
		Header:  []string{"algorithm", "slowdown vs native"},
	}
	var all []float64
	for _, r := range results {
		var ratios []float64
		for _, d := range r.Datasets {
			gm, ok1 := r.Cells[d][FwGraphMat]
			nat, ok2 := r.Cells[d][FwNative]
			if ok1 && ok2 && gm.Err == nil && nat.Err == nil && nat.Seconds > 0 {
				ratios = append(ratios, gm.Seconds/nat.Seconds)
			}
		}
		all = append(all, ratios...)
		if len(ratios) > 0 {
			t.Rows = append(t.Rows, []string{r.Algorithm, FormatRatio(geomean(ratios))})
		}
	}
	t.Rows = append(t.Rows, []string{"Overall (Geomean)", FormatRatio(geomean(all))})
	return t
}

// Fig5 measures multicore scalability (Figure 5): speedup over each
// framework's own single-thread time for PageRank on the Facebook stand-in
// (5a) and SSSP on the Flickr stand-in (5b).
func Fig5(o Options) []*Table {
	o = o.withDefaults()
	type plot struct {
		name    string
		dataset string
		runners func(data *sparse.COO[float32], threads int) []Runner
	}
	plots := []plot{
		{"Figure 5a: PageRank scalability (facebook stand-in)", "Facebook",
			func(d *sparse.COO[float32], th int) []Runner { return PageRankRunners(d, th, o.PRIters) }},
		{"Figure 5b: SSSP scalability (flickr stand-in)", "Flickr",
			func(d *sparse.COO[float32], th int) []Runner { return SSSPRunners(d, th, 8) }},
	}
	threadCounts := []int{}
	for th := 1; th <= o.MaxThreads; th *= 2 {
		threadCounts = append(threadCounts, th)
	}
	if last := threadCounts[len(threadCounts)-1]; last != o.MaxThreads {
		threadCounts = append(threadCounts, o.MaxThreads)
	}

	var tables []*Table
	for _, p := range plots {
		ds, ok := DatasetByName(p.dataset)
		if !ok {
			continue
		}
		data := ds.Generate(o.Shift)
		t := &Table{
			Title:   p.name,
			Caption: "speedup vs the same framework's 1-thread run; paper: GraphMat scales 13-15x on 24 cores",
			Header:  []string{"threads"},
		}
		base := map[string]float64{}
		rows := map[int][]string{}
		frameworks := []string{}
		for _, f := range Fig4Frameworks {
			if o.wantFramework(f) {
				frameworks = append(frameworks, f)
			}
		}
		t.Header = append(t.Header, frameworks...)
		for _, th := range threadCounts {
			row := []string{fmt.Sprintf("%d", th)}
			for _, f := range frameworks {
				var cell Cell
				for _, r := range p.runners(data, th) {
					if r.Framework == f {
						o.progress("%s / threads=%d / %s", p.name, th, f)
						cell = measure(r, o.Repeats)
						break
					}
				}
				if th == 1 {
					base[f] = cell.Seconds
				}
				if cell.Seconds > 0 && base[f] > 0 {
					row = append(row, FormatRatio(base[f]/cell.Seconds))
				} else {
					row = append(row, "-")
				}
			}
			rows[th] = row
		}
		for _, th := range threadCounts {
			t.Rows = append(t.Rows, rows[th])
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig6 derives the performance-counter comparison (Figure 6) from Figure 4
// runs: for each of PR, TC, CF and SSSP, the four counter proxies averaged
// (geomean) across datasets and normalized to GraphMat.
func Fig6(results []*Fig4Result) []*Table {
	var tables []*Table
	for _, r := range results {
		switch r.Algorithm {
		case "PageRank", "TriangleCounting", "CollaborativeFiltering", "SSSP":
		default:
			continue
		}
		t := &Table{
			Title: fmt.Sprintf("Figure 6: hardware-counter proxies, %s (normalized to GraphMat)", r.Algorithm),
			Caption: "instructions & stall cycles: lower is better; read bandwidth & IPC: higher is better\n" +
				"(software proxies; see internal/counters and DESIGN.md §3)",
			Header: []string{"framework", "Instructions", "Stall cycles", "Read Bandwidth", "IPC"},
		}
		for _, f := range []string{FwGraphMat, FwGraphLab, FwCombBLAS, FwGalois} {
			ratios := make([][]float64, 4)
			for _, d := range r.Datasets {
				gm, ok1 := r.Cells[d][FwGraphMat]
				fr, ok2 := r.Cells[d][f]
				if !ok1 || !ok2 || gm.Err != nil || fr.Err != nil {
					continue
				}
				rr := fr.Set.Ratios(gm.Set)
				for i := 0; i < 4; i++ {
					ratios[i] = append(ratios[i], rr[i])
				}
			}
			row := []string{f}
			for i := 0; i < 4; i++ {
				if len(ratios[i]) == 0 {
					row = append(row, "-")
				} else {
					row = append(row, fmt.Sprintf("%.2f", geomean(ratios[i])))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig7Step is one Figure 7 ablation configuration with its two workloads
// bound and ready to run (used both by the Fig7 table and the root
// benchmarks).
type Fig7Step struct {
	Name    string
	RunPR   func()
	RunSSSP func()
	// Repartition switches the shared graphs to this step's partitioning;
	// call it before timing the step's runs.
	Repartition func()
}

// Fig7Steps prepares the five ablation configurations on the Figure 7
// workloads (PageRank on the Facebook stand-in, SSSP on the Flickr
// stand-in). Steps must be run in order — each repartitions the shared
// graphs when invoked.
func Fig7Steps(o Options) []Fig7Step {
	o = o.withDefaults()
	type step struct {
		name  string
		cfg   graphmat.Config
		parts int
	}
	steps := []step{
		{"naive", graphmat.Config{Threads: 1, Vector: graphmat.Sorted, Dispatch: graphmat.Boxed}, 1},
		{"+bitvector", graphmat.Config{Threads: 1, Vector: graphmat.Bitvector, Dispatch: graphmat.Boxed}, 1},
		{"+ipo", graphmat.Config{Threads: 1, Vector: graphmat.Bitvector, Dispatch: graphmat.Inlined}, 1},
		{"+parallel", graphmat.Config{Threads: o.Threads, Vector: graphmat.Bitvector, Dispatch: graphmat.Inlined, Schedule: graphmat.Static}, o.Threads},
		{"+load balance", graphmat.Config{Threads: o.Threads, Vector: graphmat.Bitvector, Dispatch: graphmat.Inlined, Schedule: graphmat.Dynamic}, 8 * o.Threads},
	}

	fb, _ := DatasetByName("Facebook")
	fl, _ := DatasetByName("Flickr")
	fbData := fb.Generate(o.Shift)
	flData := fl.Generate(o.Shift)

	// Build the two graphs once; each step repartitions.
	prData := fbData.Clone()
	prData.RemoveSelfLoops()
	prData.SortRowMajor()
	prData.DedupKeepFirst()
	prGraph, err := graphmat.New[prVertexAlias](prData, graphmat.Options{Partitions: 1})
	if err != nil {
		panic(err)
	}
	ssspData := flData.Clone()
	ssspData.RemoveSelfLoops()
	ssspData.SortRowMajor()
	ssspData.DedupKeepFirst()
	ssspRoot := maxOutDegreeVertex(ssspData)
	ssspGraph, err := graphmat.New[float32](ssspData, graphmat.Options{Partitions: 1})
	if err != nil {
		panic(err)
	}

	out := make([]Fig7Step, 0, len(steps))
	for _, s := range steps {
		cfg := s.cfg
		parts := s.parts
		out = append(out, Fig7Step{
			Name:        s.name,
			Repartition: func() { prGraph.Repartition(parts); ssspGraph.Repartition(parts) },
			RunPR:       func() { runPageRankAblation(prGraph, o.PRIters, cfg) },
			RunSSSP:     func() { runSSSPAblation(ssspGraph, ssspRoot, cfg) },
		})
	}
	return out
}

// Fig7 measures the optimization ablation (Figure 7): cumulative speedup of
// the engine configurations from naive scalar code to the fully optimized
// parallel engine, for PageRank on the Facebook stand-in and SSSP on the
// Flickr stand-in.
func Fig7(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Figure 7: effect of optimizations (cumulative speedup over naive)",
		Caption: "paper reaches 27.3x (PageRank/facebook) and 19.9x (SSSP/flickr) on 24 cores;\n" +
			"parallel steps scale with the cores available here",
		Header: []string{"configuration", "PageRank/facebook", "SSSP/flickr"},
	}
	var prBase, ssspBase float64
	for i, s := range Fig7Steps(o) {
		s.Repartition()
		o.progress("Fig7 %s", s.Name)
		prSecs := timeBest(o.Repeats, s.RunPR)
		ssspSecs := timeBest(o.Repeats, s.RunSSSP)
		if i == 0 {
			prBase, ssspBase = prSecs, ssspSecs
		}
		t.Rows = append(t.Rows, []string{s.Name, FormatRatio(prBase / prSecs), FormatRatio(ssspBase / ssspSecs)})
	}
	return t
}

func timeBest(repeats int, fn func()) float64 {
	best := -1.0
	for i := 0; i < repeats; i++ {
		start := time.Now()
		fn()
		el := time.Since(start).Seconds()
		if best < 0 || el < best {
			best = el
		}
	}
	return best
}

// Table1 renders the dataset inventory with paper sizes and the stand-ins
// actually generated at the given shift.
func Table1(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "Table 1: datasets (paper size vs generated stand-in)",
		Caption: "stand-in rationale in DESIGN.md §3; sizes scale with -shift",
		Header:  []string{"dataset", "paper |V|", "paper |E|", "algorithms", "stand-in", "gen |V|", "gen |E|"},
	}
	for _, d := range Datasets() {
		if !o.wantDataset(d.Name) {
			continue
		}
		data := d.Generate(o.Shift)
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprintf("%d", d.PaperVertices),
			fmt.Sprintf("%d", d.PaperEdges),
			d.Algorithms,
			d.StandInDesc(o.Shift),
			fmt.Sprintf("%d", data.NRows),
			fmt.Sprintf("%d", len(data.Entries)),
		})
	}
	return t
}
