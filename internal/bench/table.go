package bench

import (
	"fmt"
	"math"
	"strings"
)

// Table is a formatted experiment result: a title, a caption tying it back
// to the paper, a header row and data rows.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// FormatSeconds renders a duration with sensible units.
func FormatSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// FormatRatio renders a speedup/slowdown factor.
func FormatRatio(r float64) string {
	return fmt.Sprintf("%.2fx", r)
}

// geomean returns the geometric mean of xs, ignoring non-positive entries
// (log-domain accumulation avoids overflow on long products).
func geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
