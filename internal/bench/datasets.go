// Package bench is the harness that regenerates every table and figure of
// the paper's evaluation (§5): the Table 1 dataset inventory, the Figure 4
// runtime comparisons, the Table 2 speedup summary, the Table 3
// GraphMat-vs-native comparison, the Figure 5 scalability curves, the
// Figure 6 performance-counter proxies and the Figure 7 optimization
// ablation.
package bench

import (
	"fmt"

	"graphmat/internal/gen"
	"graphmat/internal/sparse"
)

// DatasetKind selects the generator standing in for a dataset class.
type DatasetKind int

const (
	// KindRMAT is a Graph500 RMAT graph (synthetic datasets, and the
	// stand-in for scraped social/web graphs, matched on skew and average
	// degree).
	KindRMAT DatasetKind = iota
	// KindGrid is a 2-D grid (road-network stand-in: near-planar, tiny
	// degree, huge diameter).
	KindGrid
	// KindBipartite is a power-law bipartite ratings graph (Netflix-like).
	KindBipartite
)

// Dataset is one Table 1 row: the paper's dataset and the scaled stand-in
// this reproduction generates for it (DESIGN.md §3 documents the
// substitution rationale).
type Dataset struct {
	// Name is the paper's dataset name.
	Name string
	// PaperVertices/PaperEdges are the sizes reported in Table 1.
	PaperVertices, PaperEdges int64
	// Algorithms lists the paper experiments this dataset appears in.
	Algorithms string

	Kind   DatasetKind
	Seed   uint64
	Omit   bool // skip in "all" runs (the huge synthetic CF graph)
	scale  int  // RMAT scale
	ef     int  // RMAT edge factor
	params gen.RMATParams
	maxW   int // edge weight range (SSSP datasets)

	gw, gh uint32 // grid dims
	users  uint32 // bipartite
	items  uint32
	rat    int
}

// scaled applies the shift (positive: double per step toward paper scale;
// negative: halve per step for quick runs) with a floor.
func scaled(base uint32, shift int, floor uint32) uint32 {
	v := base
	if shift >= 0 {
		v = base << shift
	} else {
		v = base >> uint(-shift)
	}
	if v < floor {
		v = floor
	}
	return v
}

// Generate produces the stand-in edge list. shift adds to the RMAT scale and
// scales grid/bipartite sizes by 2^shift (shift 0 = the defaults used in
// EXPERIMENTS.md; positive values approach paper scale on bigger machines,
// negative values shrink everything for smoke tests).
func (d Dataset) Generate(shift int) *sparse.COO[float32] {
	switch d.Kind {
	case KindGrid:
		return gen.Grid(gen.GridOptions{
			Width: scaled(d.gw, shift, 16), Height: scaled(d.gh, shift, 16),
			MaxWeight: d.maxW, Seed: d.Seed,
		})
	case KindBipartite:
		return gen.Bipartite(gen.BipartiteOptions{
			Users: scaled(d.users, shift, 64), Items: scaled(d.items, shift, 16),
			Ratings: int(scaled(uint32(d.rat), 2*shift, 1024)), Seed: d.Seed,
		})
	default:
		scale := d.scale + shift
		if scale < 6 {
			scale = 6
		}
		return gen.RMAT(gen.RMATOptions{
			Scale: scale, EdgeFactor: d.ef, Params: d.params,
			Seed: d.Seed, MaxWeight: d.maxW,
		})
	}
}

// StandInDesc describes the generated stand-in at a given shift.
func (d Dataset) StandInDesc(shift int) string {
	switch d.Kind {
	case KindGrid:
		return fmt.Sprintf("grid %dx%d maxW=%d", scaled(d.gw, shift, 16), scaled(d.gh, shift, 16), d.maxW)
	case KindBipartite:
		return fmt.Sprintf("bipartite %du/%di %d ratings",
			scaled(d.users, shift, 64), scaled(d.items, shift, 16), int(scaled(uint32(d.rat), 2*shift, 1024)))
	default:
		scale := d.scale + shift
		if scale < 6 {
			scale = 6
		}
		return fmt.Sprintf("RMAT scale=%d ef=%d A=%.2f B=C=%.2f", scale, d.ef, d.params.A, d.params.B)
	}
}

// Datasets returns the Table 1 inventory. Stand-in sizes default to a
// laptop-class budget; raise shift to approach paper scale.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "RMAT Scale 20", PaperVertices: 1_048_576, PaperEdges: 16_746_179,
			Algorithms: "TC",
			Kind:       KindRMAT, Seed: 120, scale: 14, ef: 16, params: gen.RMATTriangle,
		},
		{
			Name: "RMAT Scale 23", PaperVertices: 8_388_608, PaperEdges: 134_215_380,
			Algorithms: "PR,BFS,SSSP",
			Kind:       KindRMAT, Seed: 123, scale: 17, ef: 16, params: gen.RMATGraph500, maxW: 100,
		},
		{
			Name: "RMAT Scale 24", PaperVertices: 16_777_216, PaperEdges: 267_167_794,
			Algorithms: "SSSP",
			Kind:       KindRMAT, Seed: 124, scale: 18, ef: 16, params: gen.RMATSSSP24, maxW: 100,
		},
		{
			Name: "LiveJournal", PaperVertices: 4_847_571, PaperEdges: 68_993_773,
			Algorithms: "PR,BFS,TC",
			Kind:       KindRMAT, Seed: 201, scale: 16, ef: 14, params: gen.RMATGraph500,
		},
		{
			Name: "Facebook", PaperVertices: 2_937_612, PaperEdges: 41_919_708,
			Algorithms: "PR,BFS,TC",
			Kind:       KindRMAT, Seed: 202, scale: 15, ef: 14, params: gen.RMATGraph500,
		},
		{
			Name: "Wikipedia", PaperVertices: 3_566_908, PaperEdges: 84_751_827,
			Algorithms: "PR,BFS,TC",
			Kind:       KindRMAT, Seed: 203, scale: 16, ef: 24, params: gen.RMATGraph500,
		},
		{
			Name: "Netflix", PaperVertices: 480_189 + 17_770, PaperEdges: 99_072_112,
			Algorithms: "CF",
			Kind:       KindBipartite, Seed: 204, users: 20000, items: 1000, rat: 400_000,
		},
		{
			Name: "Synthetic CF", PaperVertices: 63_367_472 + 1_342_176, PaperEdges: 16_742_847_256,
			Algorithms: "CF",
			Kind:       KindBipartite, Seed: 205, users: 40000, items: 1500, rat: 800_000,
		},
		{
			Name: "Flickr", PaperVertices: 820_878, PaperEdges: 9_837_214,
			Algorithms: "SSSP",
			Kind:       KindRMAT, Seed: 206, scale: 15, ef: 12, params: gen.RMATGraph500, maxW: 100,
		},
		{
			Name: "USA road (CAL)", PaperVertices: 1_890_815, PaperEdges: 4_657_742,
			Algorithms: "SSSP",
			Kind:       KindGrid, Seed: 207, gw: 384, gh: 256, maxW: 10,
		},
	}
}

// DatasetByName finds a dataset in the inventory.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}
