package bench

import (
	"math"
	"strings"
	"testing"
)

// tinyOpts shrinks every dataset far below default so the whole harness runs
// in test time.
func tinyOpts() Options {
	return Options{Shift: -7, Threads: 2, PRIters: 3, CFIters: 2, Repeats: 1}
}

// checkAgreement asserts that all frameworks computed the same answer for
// every dataset (Value is an algorithm-specific checksum).
func checkAgreement(t *testing.T, r *Fig4Result, relTol float64) {
	t.Helper()
	for _, d := range r.Datasets {
		var ref float64
		var refSet bool
		for _, f := range r.Frameworks {
			c, ok := r.Cells[d][f]
			if !ok || c.Err != nil {
				continue
			}
			if !refSet {
				ref, refSet = c.Value, true
				continue
			}
			if ref == 0 {
				if c.Value != 0 {
					t.Errorf("%s/%s/%s: value %v, want 0", r.Algorithm, d, f, c.Value)
				}
				continue
			}
			if math.Abs(c.Value-ref)/math.Abs(ref) > relTol {
				t.Errorf("%s/%s/%s: value %v deviates from %v", r.Algorithm, d, f, c.Value, ref)
			}
		}
		if !refSet {
			t.Errorf("%s/%s: no successful runs", r.Algorithm, d)
		}
	}
}

func TestFig4aAgreement(t *testing.T) {
	r := Fig4a(tinyOpts())
	if len(r.Datasets) == 0 {
		t.Fatal("no PR datasets")
	}
	checkAgreement(t, r, 1e-9)
}

func TestFig4bAgreement(t *testing.T) {
	r := Fig4b(tinyOpts())
	checkAgreement(t, r, 0) // hop counts are exact
}

func TestFig4cAgreement(t *testing.T) {
	r := Fig4c(tinyOpts())
	checkAgreement(t, r, 0) // triangle counts are exact
}

func TestFig4dAgreement(t *testing.T) {
	r := Fig4d(tinyOpts())
	// All frameworks apply gradient contributions in ascending-source
	// order, so float results agree to high precision.
	checkAgreement(t, r, 1e-4)
}

func TestFig4eAgreement(t *testing.T) {
	r := Fig4e(tinyOpts())
	checkAgreement(t, r, 1e-6)
}

func TestTable2And3Render(t *testing.T) {
	o := tinyOpts()
	o.DatasetFilter = "Facebook"
	results := []*Fig4Result{Fig4a(o), Fig4b(o), Fig4c(o)}
	t2 := Table2(results)
	if !strings.Contains(t2.String(), "GraphLab*") {
		t.Errorf("Table2 missing baseline:\n%s", t2)
	}
	t3 := Table3(results)
	if !strings.Contains(t3.String(), "Overall") {
		t.Errorf("Table3 missing overall row:\n%s", t3)
	}
}

func TestFig5Renders(t *testing.T) {
	o := tinyOpts()
	o.MaxThreads = 2
	tables := Fig5(o)
	if len(tables) != 2 {
		t.Fatalf("Fig5 produced %d tables, want 2", len(tables))
	}
	for _, tb := range tables {
		s := tb.String()
		if !strings.Contains(s, "GraphMat") || !strings.Contains(s, "threads") {
			t.Errorf("Fig5 table malformed:\n%s", s)
		}
	}
}

func TestFig6Renders(t *testing.T) {
	o := tinyOpts()
	o.DatasetFilter = "Facebook"
	results := []*Fig4Result{Fig4a(o)}
	tables := Fig6(results)
	if len(tables) != 1 {
		t.Fatalf("Fig6 produced %d tables", len(tables))
	}
	s := tables[0].String()
	if !strings.Contains(s, "Instructions") {
		t.Errorf("Fig6 table malformed:\n%s", s)
	}
	// GraphMat row must be all 1.00 (self-normalized).
	for _, row := range tables[0].Rows {
		if row[0] == FwGraphMat {
			for i := 1; i < len(row); i++ {
				if row[i] != "1.00" {
					t.Errorf("GraphMat normalization broken: %v", row)
				}
			}
		}
	}
}

func TestFig7SpeedupsMonotoneEnough(t *testing.T) {
	o := tinyOpts()
	o.Shift = -6
	table := Fig7(o)
	if len(table.Rows) != 5 {
		t.Fatalf("Fig7 rows = %d, want 5", len(table.Rows))
	}
	if table.Rows[0][0] != "naive" || table.Rows[4][0] != "+load balance" {
		t.Errorf("Fig7 step order wrong: %v", table.Rows)
	}
	// The naive row is the 1.00x baseline by construction.
	if table.Rows[0][1] != "1.00x" || table.Rows[0][2] != "1.00x" {
		t.Errorf("Fig7 baseline not normalized: %v", table.Rows[0])
	}
}

func TestTable1Renders(t *testing.T) {
	o := tinyOpts()
	tb := Table1(o)
	if len(tb.Rows) != len(Datasets()) {
		t.Fatalf("Table1 rows = %d, want %d", len(tb.Rows), len(Datasets()))
	}
	s := tb.String()
	for _, name := range []string{"LiveJournal", "Netflix", "USA road (CAL)"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table1 missing %s", name)
		}
	}
}

func TestDatasetsGenerateAtDefaultShiftHaveSaneSizes(t *testing.T) {
	for _, d := range Datasets() {
		data := d.Generate(-4) // small but structured
		if data.NRows == 0 || len(data.Entries) == 0 {
			t.Errorf("%s: empty stand-in", d.Name)
		}
		if err := data.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestMeasureRecordsWallSeconds(t *testing.T) {
	r := Runner{
		Framework: "test",
		Prepare:   func() {},
		Execute: func() RunResult {
			s := 0.0
			for i := 0; i < 1_000_00; i++ {
				s += float64(i)
			}
			return RunResult{Value: s}
		},
	}
	c := measure(r, 2)
	if c.Seconds <= 0 || c.Set.WallSeconds != c.Seconds {
		t.Errorf("measure cell = %+v", c)
	}
}
