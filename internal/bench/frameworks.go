package bench

import (
	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/baselines/matrixengine"
	"graphmat/internal/baselines/native"
	"graphmat/internal/baselines/taskengine"
	"graphmat/internal/baselines/vertexengine"
	"graphmat/internal/counters"
	"graphmat/internal/gen"
	"graphmat/internal/sparse"
)

// Framework display names. The asterisk marks a from-scratch architectural
// stand-in for the named C++ system (DESIGN.md §1.3).
const (
	FwGraphMat = "GraphMat"
	FwGraphLab = "GraphLab*"
	FwCombBLAS = "CombBLAS*"
	FwGalois   = "Galois*"
	FwNative   = "Native"
)

// Fig4Frameworks is the column order of the Figure 4 plots.
var Fig4Frameworks = []string{FwGraphLab, FwCombBLAS, FwGalois, FwGraphMat}

// RunResult is one timed execution's outcome.
type RunResult struct {
	Value float64 // algorithm-specific checksum (triangle count, Σdist, …)
	Set   counters.Set
	Err   error
}

// Runner is one (algorithm, framework) pair: Prepare builds untimed state
// (the paper excludes graph load time), Execute performs one timed run.
type Runner struct {
	Framework string
	Prepare   func()
	Execute   func() RunResult
}

func cloneCOO(c *sparse.COO[float32]) *sparse.COO[float32] { return c.Clone() }

// maxOutDegreeVertex picks the deterministic traversal root the harness
// uses: the vertex with the most out-edges (a Graph500-style non-trivial
// root).
func maxOutDegreeVertex(c *sparse.COO[float32]) uint32 {
	counts := c.RowCounts()
	best, bestC := uint32(0), uint32(0)
	for v, cc := range counts {
		if cc > bestC {
			best, bestC = uint32(v), cc
		}
	}
	return best
}

// graphMatSet maps engine stats onto the counter proxies.
func graphMatSet(s graphmat.Stats) counters.Set {
	return counters.FromEngine(s.MessagesSent, s.EdgesProcessed, s.Applies, s.ColumnsProbed, 0)
}

func vertexSet(s vertexengine.Stats) counters.Set {
	boxed := s.Gathers + s.Scatters + s.Applies
	return counters.Set{
		WorkItems:     counters.BoxedOpWeight*boxed + s.Signals,
		RandomTouches: 2*s.Gathers + s.Scatters + s.Signals,
		StreamedBytes: 8 * (s.Gathers + s.Scatters),
	}
}

func matrixSet(s matrixengine.Stats) counters.Set {
	return counters.Set{
		WorkItems:     counters.BoxedOpWeight*(s.Multiplies+s.Adds) + 2*s.PartialMerges,
		RandomTouches: s.Adds + 2*s.PartialMerges,
		StreamedBytes: 8*s.Multiplies + 16*s.PartialMerges,
	}
}

func taskSet(s taskengine.Stats, edgeVisits int64) counters.Set {
	return counters.Set{
		WorkItems:     2*s.Tasks + 2*edgeVisits + s.Pushes,
		RandomTouches: edgeVisits + s.Pushes,
		StreamedBytes: 8*edgeVisits + 8*s.Tasks,
	}
}

// --- PageRank (Figure 4a) ---

// PageRankRunners builds one runner per framework for fixed-iteration
// PageRank. data is the raw directed edge list; preprocessing (self-loop
// removal, dedup) is applied uniformly.
func PageRankRunners(data *sparse.COO[float32], threads, iters int) []Runner {
	canon := cloneCOO(data)
	canon.RemoveSelfLoops()
	canon.SortRowMajor()
	canon.DedupKeepFirst()
	m := int64(len(canon.Entries))
	sumRanks := func(r []float64) float64 {
		s := 0.0
		for _, x := range r {
			s += x
		}
		return s
	}

	var gmGraph *graphmat.Graph[algorithms.PRVertex, float32]
	var ve *vertexengine.Engine
	var mx *matrixengine.Matrix
	var mxDeg []uint32
	var tg *taskengine.Graph
	var ng *native.Graph

	return []Runner{
		{
			Framework: FwGraphMat,
			Prepare: func() {
				g, err := algorithms.NewPageRankGraph(cloneCOO(canon), 8*threads)
				if err != nil {
					panic(err)
				}
				gmGraph = g
			},
			Execute: func() RunResult {
				ranks, stats := algorithms.PageRank(gmGraph, algorithms.PageRankOptions{
					MaxIterations: iters, Config: graphmat.Config{Threads: threads},
				})
				return RunResult{Value: sumRanks(ranks), Set: graphMatSet(stats)}
			},
		},
		{
			Framework: FwGraphLab,
			Prepare:   func() { ve = vertexengine.New(canon) },
			Execute: func() RunResult {
				ranks, stats := vertexengine.PageRank(ve, 0.15, iters, threads)
				return RunResult{Value: sumRanks(ranks), Set: vertexSet(stats)}
			},
		},
		{
			Framework: FwCombBLAS,
			Prepare: func() {
				c := cloneCOO(canon)
				mxDeg = c.RowCounts()
				mx = matrixengine.NewMatrix(c, threads)
			},
			Execute: func() RunResult {
				ranks, stats := matrixengine.PageRank(mx, mxDeg, 0.15, iters)
				return RunResult{Value: sumRanks(ranks), Set: matrixSet(stats)}
			},
		},
		{
			Framework: FwGalois,
			Prepare:   func() { tg = taskengine.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				ranks, stats := taskengine.PageRank(tg, 0.15, iters, threads)
				return RunResult{Value: sumRanks(ranks), Set: taskSet(stats, int64(iters)*m)}
			},
		},
		{
			Framework: FwNative,
			Prepare:   func() { ng = native.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				ranks := native.PageRank(ng, 0.15, iters, threads)
				return RunResult{Value: sumRanks(ranks)}
			},
		},
	}
}

// --- BFS (Figure 4b) ---

// BFSRunners builds runners for breadth-first search; data is symmetrized
// uniformly and the root is the maximum-degree vertex.
func BFSRunners(data *sparse.COO[float32], threads int) []Runner {
	canon := cloneCOO(data)
	canon.RemoveSelfLoops()
	canon.SortRowMajor()
	canon.DedupKeepFirst()
	canon.Symmetrize()
	root := maxOutDegreeVertex(canon)
	m := int64(len(canon.Entries))
	sumDist := func(d []uint32) float64 {
		s := 0.0
		for _, x := range d {
			if x != algorithms.Unreached {
				s += float64(x)
			}
		}
		return s
	}

	var gmGraph *graphmat.Graph[uint32, float32]
	var ve *vertexengine.Engine
	var mx *matrixengine.Matrix
	var tg *taskengine.Graph
	var ng *native.Graph

	return []Runner{
		{
			Framework: FwGraphMat,
			Prepare: func() {
				g, err := algorithms.NewBFSGraph(cloneCOO(canon), 8*threads)
				if err != nil {
					panic(err)
				}
				gmGraph = g
			},
			Execute: func() RunResult {
				d, stats := algorithms.BFS(gmGraph, root, graphmat.Config{Threads: threads})
				return RunResult{Value: sumDist(d), Set: graphMatSet(stats)}
			},
		},
		{
			Framework: FwGraphLab,
			Prepare:   func() { ve = vertexengine.New(canon) },
			Execute: func() RunResult {
				d, stats := vertexengine.BFS(ve, root, threads)
				return RunResult{Value: sumDist(d), Set: vertexSet(stats)}
			},
		},
		{
			Framework: FwCombBLAS,
			Prepare:   func() { mx = matrixengine.NewMatrix(cloneCOO(canon), threads) },
			Execute: func() RunResult {
				d, stats := matrixengine.BFS(mx, root)
				return RunResult{Value: sumDist(d), Set: matrixSet(stats)}
			},
		},
		{
			Framework: FwGalois,
			Prepare:   func() { tg = taskengine.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				d, stats := taskengine.BFS(tg, root, threads)
				visits := stats.Tasks * m / int64(maxI64(1, int64(tg.N)))
				return RunResult{Value: sumDist(d), Set: taskSet(stats, visits)}
			},
		},
		{
			Framework: FwNative,
			Prepare:   func() { ng = native.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				d := native.BFS(ng, root, threads)
				return RunResult{Value: sumDist(d)}
			},
		},
	}
}

// --- SSSP (Figure 4e) ---

// SSSPRunners builds runners for single-source shortest paths on the
// weighted directed graph.
func SSSPRunners(data *sparse.COO[float32], threads int, delta float32) []Runner {
	canon := cloneCOO(data)
	canon.RemoveSelfLoops()
	canon.SortRowMajor()
	canon.DedupKeepFirst()
	root := maxOutDegreeVertex(canon)
	m := int64(len(canon.Entries))
	sumDist := func(d []float32) float64 {
		s := 0.0
		for _, x := range d {
			if x != algorithms.InfDist {
				s += float64(x)
			}
		}
		return s
	}

	var gmGraph *graphmat.Graph[float32, float32]
	var ve *vertexengine.Engine
	var mx *matrixengine.Matrix
	var tg *taskengine.Graph
	var ng *native.Graph

	return []Runner{
		{
			Framework: FwGraphMat,
			Prepare: func() {
				g, err := algorithms.NewSSSPGraph(cloneCOO(canon), 8*threads)
				if err != nil {
					panic(err)
				}
				gmGraph = g
			},
			Execute: func() RunResult {
				d, stats := algorithms.SSSP(gmGraph, root, graphmat.Config{Threads: threads})
				return RunResult{Value: sumDist(d), Set: graphMatSet(stats)}
			},
		},
		{
			Framework: FwGraphLab,
			Prepare:   func() { ve = vertexengine.New(canon) },
			Execute: func() RunResult {
				d, stats := vertexengine.SSSP(ve, root, threads)
				return RunResult{Value: sumDist(d), Set: vertexSet(stats)}
			},
		},
		{
			Framework: FwCombBLAS,
			Prepare:   func() { mx = matrixengine.NewMatrix(cloneCOO(canon), threads) },
			Execute: func() RunResult {
				d, stats := matrixengine.SSSP(mx, root)
				return RunResult{Value: sumDist(d), Set: matrixSet(stats)}
			},
		},
		{
			Framework: FwGalois,
			Prepare:   func() { tg = taskengine.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				d, stats := taskengine.SSSP(tg, root, delta, threads)
				visits := stats.Tasks * m / int64(maxI64(1, int64(tg.N)))
				return RunResult{Value: sumDist(d), Set: taskSet(stats, visits)}
			},
		},
		{
			Framework: FwNative,
			Prepare:   func() { ng = native.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				d := native.SSSP(ng, root, threads)
				return RunResult{Value: sumDist(d)}
			},
		},
	}
}

// --- Triangle counting (Figure 4c) ---

// TCRunners builds runners for triangle counting on the upper-triangular
// DAG. spgemmCap bounds CombBLAS's materialized intermediate (<=0 uses the
// default); exceeding it is reported as the run's error, matching the
// paper's "fails to complete" entries.
func TCRunners(data *sparse.COO[float32], threads int, spgemmCap int64) []Runner {
	canon := cloneCOO(data)
	canon.RemoveSelfLoops()
	canon.SortRowMajor()
	canon.DedupKeepFirst()
	canon.Symmetrize()
	canon.UpperTriangle()

	// intersectWork is the merge cost both sorted-intersection engines pay:
	// for every edge (u,v), a linear merge of the two endpoint adjacency
	// lists, Σ (deg(u)+deg(v)). The SpMV edge tallies alone would undercount
	// TC work (the real work hides inside ProcessMessage), so the Figure 6
	// "instructions" proxy adds it explicitly for the engines that do it.
	csr := sparse.BuildCSR(cloneCOO(canon))
	var intersectWork int64
	for u := uint32(0); u < csr.NRows; u++ {
		nbrs, _ := csr.Row(u)
		du := int64(len(nbrs))
		for _, v := range nbrs {
			intersectWork += du + int64(csr.Degree(v))
		}
	}
	// The hash-based engine (GraphLab's cuckoo-set strategy) probes once per
	// element of the incoming list instead of merging.
	var hashProbes int64
	for u := uint32(0); u < csr.NRows; u++ {
		nbrs, _ := csr.Row(u)
		for _, v := range nbrs {
			_ = v
			hashProbes += int64(len(nbrs))
		}
	}

	var gmGraph *graphmat.Graph[algorithms.TCVertex, float32]
	var ve *vertexengine.Engine
	var mxCSR *sparse.CSR[float32]
	var tg *taskengine.Graph
	var ng *native.Graph

	return []Runner{
		{
			Framework: FwGraphMat,
			Prepare: func() {
				g, err := algorithms.NewTriangleGraph(cloneCOO(canon), 8*threads)
				if err != nil {
					panic(err)
				}
				gmGraph = g
			},
			Execute: func() RunResult {
				count, stats := algorithms.TriangleCount(gmGraph, graphmat.Config{Threads: threads})
				set := graphMatSet(stats)
				set.WorkItems += intersectWork
				set.StreamedBytes += 4 * intersectWork // sorted lists stream
				return RunResult{Value: float64(count), Set: set}
			},
		},
		{
			Framework: FwGraphLab,
			Prepare:   func() { ve = vertexengine.New(canon) },
			Execute: func() RunResult {
				count, stats := vertexengine.Triangles(ve, threads)
				set := vertexSet(stats)
				set.WorkItems += hashProbes
				set.RandomTouches += hashProbes // hash probes have no locality
				return RunResult{Value: float64(count), Set: set}
			},
		},
		{
			Framework: FwCombBLAS,
			Prepare:   func() { mxCSR = sparse.BuildCSR(cloneCOO(canon)) },
			Execute: func() RunResult {
				count, stats, err := matrixengine.Triangles(mxCSR, spgemmCap)
				return RunResult{Value: float64(count), Set: matrixSet(stats), Err: err}
			},
		},
		{
			Framework: FwGalois,
			Prepare:   func() { tg = taskengine.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				count, stats := taskengine.Triangles(tg, threads)
				set := taskSet(stats, 2*int64(csr.NNZ()))
				set.WorkItems += intersectWork
				set.StreamedBytes += 4 * intersectWork
				return RunResult{Value: float64(count), Set: set}
			},
		},
		{
			Framework: FwNative,
			Prepare:   func() { ng = native.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				count := native.Triangles(ng, threads)
				return RunResult{Value: float64(count)}
			},
		},
	}
}

// --- Collaborative filtering (Figure 4d) ---

// CFRunners builds runners for gradient-descent matrix factorization. data
// holds user→item rating triples; all frameworks receive the same
// symmetrized graph and identical deterministic factor initialization.
func CFRunners(data *sparse.COO[float32], threads, iters int) []Runner {
	const seed = 77
	canon := cloneCOO(data)
	canon.RemoveSelfLoops()
	canon.SortRowMajor()
	canon.DedupKeepFirst()
	canon.Symmetrize()
	n := int(canon.NRows)
	m := int64(len(canon.Entries))
	const gamma, lambda = 0.001, 0.05

	// One deterministic init stream shared by every framework, identical to
	// algorithms.CF's internal stream for the same seed.
	rng := gen.NewRNG(seed)
	inits := make([]float32, n*algorithms.LatentDim)
	for i := range inits {
		inits[i] = float32(rng.Float64()) * 0.1
	}
	init := func(v, k int) float32 { return inits[v*algorithms.LatentDim+k] }

	checksum := func(get func(v, k int) float32) float64 {
		s := 0.0
		for v := 0; v < n; v += 17 {
			for k := 0; k < algorithms.LatentDim; k++ {
				s += float64(get(v, k))
			}
		}
		return s
	}

	var gmGraph *graphmat.Graph[algorithms.CFVec, float32]
	var ve *vertexengine.Engine
	var mxCSR *sparse.CSR[float32]
	var tg *taskengine.Graph
	var ng *native.Graph

	return []Runner{
		{
			Framework: FwGraphMat,
			Prepare: func() {
				g, err := algorithms.NewCFGraph(cloneCOO(canon), 8*threads)
				if err != nil {
					panic(err)
				}
				gmGraph = g
			},
			Execute: func() RunResult {
				f, stats := algorithms.CF(gmGraph, algorithms.CFOptions{
					Gamma: gamma, Lambda: lambda, Iterations: iters, InitSeed: seed,
					Config: graphmat.Config{Threads: threads},
				})
				return RunResult{Value: checksum(func(v, k int) float32 { return f[v][k] }), Set: graphMatSet(stats)}
			},
		},
		{
			Framework: FwGraphLab,
			Prepare:   func() { ve = vertexengine.New(canon) },
			Execute: func() RunResult {
				f, stats := vertexengine.CF(ve, gamma, lambda, iters, threads, init)
				return RunResult{Value: checksum(func(v, k int) float32 { return f[v][k] }), Set: vertexSet(stats)}
			},
		},
		{
			Framework: FwCombBLAS,
			Prepare:   func() { mxCSR = sparse.BuildCSR(cloneCOO(canon)) },
			Execute: func() RunResult {
				f, stats := matrixengine.CF(mxCSR, gamma, lambda, iters, init)
				set := matrixSet(stats)
				// The materialization passes stream the nnz-sized K-vector
				// buffers (the CombBLAS CF data-movement tax).
				set.StreamedBytes += int64(iters) * m * int64(algorithms.LatentDim) * 4 * 3
				return RunResult{Value: checksum(func(v, k int) float32 { return f[v][k] }), Set: set}
			},
		},
		{
			Framework: FwGalois,
			Prepare:   func() { tg = taskengine.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				f, stats := taskengine.CF(tg, gamma, lambda, iters, threads, init)
				return RunResult{Value: checksum(func(v, k int) float32 { return f[v][k] }), Set: taskSet(stats, int64(iters)*m)}
			},
		},
		{
			Framework: FwNative,
			Prepare:   func() { ng = native.Build(cloneCOO(canon)) },
			Execute: func() RunResult {
				f := native.CF(ng, gamma, lambda, iters, threads, init)
				return RunResult{Value: checksum(func(v, k int) float32 { return f[v][k] })}
			},
		},
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PageRankRunnerWithPartitions is the GraphMat PageRank runner with an
// explicit partition count, for the partition-sensitivity ablation bench.
func PageRankRunnerWithPartitions(data *sparse.COO[float32], threads, iters, partitions int) Runner {
	canon := data
	canon.RemoveSelfLoops()
	canon.SortRowMajor()
	canon.DedupKeepFirst()
	var g *graphmat.Graph[algorithms.PRVertex, float32]
	return Runner{
		Framework: FwGraphMat,
		Prepare: func() {
			gg, err := algorithms.NewPageRankGraph(canon, partitions)
			if err != nil {
				panic(err)
			}
			g = gg
		},
		Execute: func() RunResult {
			ranks, stats := algorithms.PageRank(g, algorithms.PageRankOptions{
				MaxIterations: iters, Config: graphmat.Config{Threads: threads},
			})
			s := 0.0
			for _, r := range ranks {
				s += r
			}
			return RunResult{Value: s, Set: graphMatSet(stats)}
		},
	}
}
