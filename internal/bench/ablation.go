package bench

import (
	"graphmat"
	"graphmat/algorithms"
)

// prVertexAlias keeps the Figure 7 graph declaration readable.
type prVertexAlias = algorithms.PRVertex

// runPageRankAblation executes one fixed-iteration PageRank under an
// explicit engine configuration (the Figure 7 steps).
func runPageRankAblation(g *graphmat.Graph[algorithms.PRVertex, float32], iters int, cfg graphmat.Config) {
	algorithms.PageRank(g, algorithms.PageRankOptions{MaxIterations: iters, Config: cfg})
}

// runSSSPAblation executes one SSSP under an explicit engine configuration.
func runSSSPAblation(g *graphmat.Graph[float32, float32], root uint32, cfg graphmat.Config) {
	algorithms.SSSP(g, root, cfg)
}
