package bench

import (
	"fmt"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
)

// DirectionOptimization measures the push-vs-pull-vs-auto kernel ablation in
// the Figure 7 style: the same workloads under explicit engine
// configurations, reported as speedup over the pull baseline (the engine
// before this layer existed). The three workloads bracket the regimes:
//
//   - BFS on the RMAT stand-in: scale-free, low diameter — a few dense
//     supersteps pull, the sparse head and tail push;
//   - BFS on the road-grid stand-in: enormous diameter, every frontier tiny
//     relative to |E| — push's home turf, where pull pays the full
//     column-probe bill hundreds of times;
//   - PageRank on the RMAT stand-in: every vertex active every superstep —
//     pull's home turf; Auto must not lose it.
func DirectionOptimization(o Options) *Table {
	o = o.withDefaults()
	scale := 14 + o.Shift
	if scale < 6 {
		scale = 6
	}
	side := uint32(1) << ((scale + 1) / 2)

	rmat := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 7, MaxWeight: 0})
	grid := gen.Grid(gen.GridOptions{Width: side, Height: side, Seed: 7})

	bfsRMAT, err := algorithms.NewBFSGraph(rmat.Clone(), 0)
	if err != nil {
		panic(err)
	}
	bfsGrid, err := algorithms.NewBFSGraph(grid, 0)
	if err != nil {
		panic(err)
	}
	prGraph, err := algorithms.NewPageRankGraph(rmat, 0)
	if err != nil {
		panic(err)
	}
	bfsRMATRoot := maxOutDegreeVertex(bfsRMAT.Adjacency())
	bfsWS := graphmat.NewWorkspace[uint32, uint32](int(bfsRMAT.NumVertices()), graphmat.Bitvector)
	gridWS := graphmat.NewWorkspace[uint32, uint32](int(bfsGrid.NumVertices()), graphmat.Bitvector)

	t := &Table{
		Title: "Direction optimization: push vs pull vs per-superstep auto (speedup over pull)",
		Caption: fmt.Sprintf("RMAT scale %d ef 16; grid %dx%d; %d PageRank iterations; threads per -threads",
			scale, side, side, o.PRIters),
		Header: []string{"mode", "BFS/rmat", "BFS/grid", "PageRank/rmat"},
	}
	workloads := []func(cfg graphmat.Config){
		func(cfg graphmat.Config) {
			if _, _, err := algorithms.BFSWithWorkspace(bfsRMAT, bfsRMATRoot, cfg, bfsWS); err != nil {
				panic(err)
			}
		},
		func(cfg graphmat.Config) {
			if _, _, err := algorithms.BFSWithWorkspace(bfsGrid, 0, cfg, gridWS); err != nil {
				panic(err)
			}
		},
		func(cfg graphmat.Config) {
			algorithms.PageRank(prGraph, algorithms.PageRankOptions{MaxIterations: o.PRIters, Config: cfg})
		},
	}
	var base []float64
	for _, mode := range []graphmat.Mode{graphmat.Pull, graphmat.Push, graphmat.Auto} {
		o.progress("Direction %s", mode)
		cfg := graphmat.Config{Threads: o.Threads, Mode: mode}
		row := []string{mode.String()}
		var secs []float64
		for _, run := range workloads {
			secs = append(secs, timeBest(o.Repeats, func() { run(cfg) }))
		}
		if base == nil {
			base = secs
		}
		for i, s := range secs {
			row = append(row, FormatRatio(base[i]/s))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
