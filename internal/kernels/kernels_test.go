package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// simdBackends returns every non-scalar backend the running CPU supports.
func simdBackends() []Backend {
	var out []Backend
	for _, b := range Supported() {
		if b != Scalar {
			out = append(out, b)
		}
	}
	return out
}

func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		switch rng.Intn(4) {
		case 0:
			w[i] = 0
		case 1:
			w[i] = ^uint64(0)
		default:
			w[i] = rng.Uint64()
		}
	}
	return w
}

// wordLens covers empty, sub-block, block-aligned, and block+tail shapes for
// both the 4-word AVX2 and 2-word NEON block sizes.
var wordLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 65, 100, 257}

func TestWordOpsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range simdBackends() {
		bt := backendTable(b)
		for _, n := range wordLens {
			for trial := 0; trial < 8; trial++ {
				a := randWords(rng, n)
				bw := randWords(rng, n)
				want := make([]uint64, n)
				got := make([]uint64, n)

				scalarAnd(want, a, bw)
				bt.and(got, a, bw)
				checkWords(t, b, "and", n, want, got)

				scalarOr(want, a, bw)
				bt.or(got, a, bw)
				checkWords(t, b, "or", n, want, got)

				scalarAndNot(want, a, bw)
				bt.andNot(got, a, bw)
				checkWords(t, b, "andNot", n, want, got)

				copy(want, a)
				copy(got, a)
				scalarOrInto(want, bw)
				bt.orInto(got, bw)
				checkWords(t, b, "orInto", n, want, got)
			}
		}
	}
}

func checkWords(t *testing.T, b Backend, op string, n int, want, got []uint64) {
	t.Helper()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s %s n=%d: word %d = %#x, scalar %#x", b, op, n, i, got[i], want[i])
		}
	}
}

func TestPopcountSumParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, b := range simdBackends() {
		bt := backendTable(b)
		for _, n := range wordLens {
			for trial := 0; trial < 8; trial++ {
				w := randWords(rng, n)
				want := scalarPopcountSum(w)
				if got := bt.popcountSum(w); got != want {
					t.Fatalf("%s popcountSum n=%d: got %d, scalar %d", b, n, got, want)
				}
			}
		}
	}
}

func TestFirstNonzeroParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, b := range simdBackends() {
		bt := backendTable(b)
		for _, n := range wordLens {
			// All-zero words with one set word planted at every position,
			// plus the fully-zero slice.
			w := make([]uint64, n)
			if got := bt.firstNonzero(w); got != -1 {
				t.Fatalf("%s firstNonzero all-zero n=%d: got %d, want -1", b, n, got)
			}
			for pos := 0; pos < n; pos++ {
				for i := range w {
					w[i] = 0
				}
				w[pos] = 1 << uint(rng.Intn(64))
				// Noise after the first hit must not matter.
				for j := pos + 1; j < n; j++ {
					if rng.Intn(2) == 0 {
						w[j] = rng.Uint64()
					}
				}
				want := scalarFirstNonzero(w)
				if got := bt.firstNonzero(w); got != want {
					t.Fatalf("%s firstNonzero n=%d pos=%d: got %d, scalar %d", b, n, pos, got, want)
				}
			}
		}
	}
}

func TestSpanLessParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lens := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200}
	for _, b := range simdBackends() {
		bt := backendTable(b)
		for _, n := range lens {
			// Sorted ascending (the layered-merge shape): every possible
			// boundary value.
			a := make([]uint32, n)
			v := uint32(0)
			for i := range a {
				v += uint32(rng.Intn(5))
				a[i] = v
			}
			probes := []uint32{0, 1, v / 2, v, v + 1, math.MaxUint32}
			for i := range a {
				probes = append(probes, a[i], a[i]+1)
			}
			for _, p := range probes {
				want := scalarSpanLess(a, p)
				if got := bt.spanLess(a, p); got != want {
					t.Fatalf("%s spanLess n=%d v=%d: got %d, scalar %d (a=%v)", b, n, p, got, want, a)
				}
			}
			// Unsorted input: still a prefix-length contract.
			u := make([]uint32, n)
			for i := range u {
				u[i] = rng.Uint32()
			}
			for trial := 0; trial < 8; trial++ {
				p := rng.Uint32()
				want := scalarSpanLess(u, p)
				if got := bt.spanLess(u, p); got != want {
					t.Fatalf("%s spanLess unsorted n=%d v=%d: got %d, scalar %d", b, n, p, got, want)
				}
			}
			// High-bit values exercise the signed-compare flip.
			h := []uint32{0x7fffffff, 0x80000000, 0x80000001, 0xffffffff}
			for _, p := range []uint32{0x7fffffff, 0x80000000, 0x80000001, 0xffffffff, 0} {
				want := scalarSpanLess(h, p)
				if got := bt.spanLess(h, p); got != want {
					t.Fatalf("%s spanLess highbit v=%#x: got %d, scalar %d", b, p, got, want)
				}
			}
		}
	}
}

func randFloats(rng *rand.Rand, n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		switch rng.Intn(8) {
		case 0:
			f[i] = 0
		case 1:
			f[i] = math.Copysign(0, -1)
		case 2:
			f[i] = math.Inf(1 - 2*rng.Intn(2))
		case 3:
			f[i] = math.NaN()
		default:
			f[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(60)-30)
		}
	}
	return f
}

func TestBlockAddF64Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, b := range simdBackends() {
		bt := backendTable(b)
		for _, k := range []int{0, 1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 33, 63, 64} {
			for trial := 0; trial < 16; trial++ {
				x := randFloats(rng, k)
				y0 := randFloats(rng, k)
				var cm, ym uint64
				if k > 0 {
					cm = rng.Uint64()
					ym = rng.Uint64()
					if k < 64 {
						cm &= 1<<uint(k) - 1
						ym &= 1<<uint(k) - 1
					}
				}
				want := append([]float64(nil), y0...)
				got := append([]float64(nil), y0...)
				scalarBlockAddF64(want, x, cm, ym)
				bt.blockAddF64(got, x, cm, ym)
				for s := range want {
					if math.Float64bits(want[s]) != math.Float64bits(got[s]) {
						t.Fatalf("%s blockAddF64 k=%d cm=%#x ym=%#x lane %d: got %x, scalar %x",
							b, k, cm, ym, s, math.Float64bits(got[s]), math.Float64bits(want[s]))
					}
				}
			}
		}
	}
}

func TestScatterAddF64Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, b := range simdBackends() {
		bt := backendTable(b)
		for _, nv := range []int{1, 64, 65, 200} {
			words := (nv + 63) / 64
			for _, ne := range []int{0, 1, 2, 3, 4, 5, 8, 17, 100} {
				for trial := 0; trial < 8; trial++ {
					idx := make([]uint32, ne)
					for i := range idx {
						idx[i] = uint32(rng.Intn(nv)) // duplicates exercise the fold path
					}
					// m: arithmetic results only (quiet NaN allowed, no sNaN).
					ms := []float64{0, math.Copysign(0, -1), 1.5, -2.25e10, math.Inf(1), math.NaN()}
					m := ms[rng.Intn(len(ms))]

					wWords := randWords(rng, words)
					wVals := randFloats(rng, nv)
					gWords := append([]uint64(nil), wWords...)
					gVals := append([]float64(nil), wVals...)

					scalarScatterAddF64(wWords, wVals, idx, m)
					bt.scatterAddF64(gWords, gVals, idx, m)

					for i := range wWords {
						if wWords[i] != gWords[i] {
							t.Fatalf("%s scatterAddF64 nv=%d ne=%d: mask word %d = %#x, scalar %#x", b, nv, ne, i, gWords[i], wWords[i])
						}
					}
					for i := range wVals {
						if math.Float64bits(wVals[i]) != math.Float64bits(gVals[i]) {
							t.Fatalf("%s scatterAddF64 nv=%d ne=%d m=%v: val %d = %x, scalar %x",
								b, nv, ne, m, i, math.Float64bits(gVals[i]), math.Float64bits(wVals[i]))
						}
					}
				}
			}
		}
	}
}

func TestParseBackendRoundTrip(t *testing.T) {
	for _, b := range []Backend{Scalar, AVX2, NEON} {
		got, ok := ParseBackend(b.String())
		if !ok || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v", b.String(), got, ok)
		}
	}
	if _, ok := ParseBackend("sse9"); ok {
		t.Fatal("ParseBackend accepted garbage")
	}
}

func TestForceBackend(t *testing.T) {
	orig := Active()
	for _, b := range Supported() {
		restore, ok := ForceBackend(b)
		if !ok {
			t.Fatalf("ForceBackend(%v) refused a supported backend", b)
		}
		if Active() != b {
			t.Fatalf("Active() = %v after ForceBackend(%v)", Active(), b)
		}
		// Dispatch must actually serve the forced backend.
		w := []uint64{0xff, 0, 3}
		if got := PopcountSum(w); got != 10 {
			t.Fatalf("PopcountSum under %v = %d, want 10", b, got)
		}
		restore()
		if Active() != orig {
			t.Fatalf("restore left Active() = %v, want %v", Active(), orig)
		}
	}
	// Unknown backend value is refused.
	if _, ok := ForceBackend(Backend(200)); ok {
		t.Fatal("ForceBackend accepted an unknown backend")
	}
}

func TestSupportedIncludesScalarFirst(t *testing.T) {
	s := Supported()
	if len(s) == 0 || s[0] != Scalar {
		t.Fatalf("Supported() = %v, want scalar first", s)
	}
}
