//go:build !amd64 && !arm64

package kernels

// Architectures without a SIMD backend run the scalar reference everywhere.

func probeBest() (Backend, string) { return Scalar, "no SIMD backend for this GOARCH" }

func backendSupported(b Backend) bool { return b == Scalar }

func backendTable(b Backend) table { return scalarTable }

// CPUFeatures reports the SIMD-relevant CPU feature flags the probe saw;
// empty when the architecture has no probe.
func CPUFeatures() string { return "" }
