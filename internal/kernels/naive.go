package kernels

// This file is the scalar reference backend: the always-on, pure-Go
// implementation of every primitive, byte-for-byte the behavior the SIMD
// backends are audited against. Keep these loops boring — they are the
// oracle, and they are also the fallback on CPUs without SIMD support, so
// they must stay correct and readable before fast.

func scalarAnd(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

func scalarOr(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] | b[i]
	}
}

func scalarAndNot(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] &^ b[i]
	}
}

func scalarOrInto(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func scalarPopcountSum(w []uint64) int {
	c := 0
	for _, x := range w {
		c += onesCount64(x)
	}
	return c
}

func scalarFirstNonzero(w []uint64) int {
	for i, x := range w {
		if x != 0 {
			return i
		}
	}
	return -1
}

func scalarSpanLess(a []uint32, v uint32) int {
	for i, x := range a {
		if x >= v {
			return i
		}
	}
	return len(a)
}

func scalarBlockAddF64(yrow, xrow []float64, cm, ym uint64) {
	for s := range yrow {
		bit := uint64(1) << uint(s)
		if cm&bit == 0 {
			continue
		}
		if ym&bit != 0 {
			yrow[s] += xrow[s]
		} else {
			yrow[s] = xrow[s]
		}
	}
}

func scalarScatterAddF64(yw []uint64, yvals []float64, idx []uint32, m float64) {
	for _, dst := range idx {
		w := &yw[dst>>6]
		bit := uint64(1) << (dst & 63)
		if *w&bit != 0 {
			yvals[dst] += m
		} else {
			yvals[dst] = m
			*w |= bit
		}
	}
}

func scalarScatterMinPlusF32(yw []uint64, yvals []float32, idx []uint32, wv []float32, m float32) {
	for k, dst := range idx {
		r := m + wv[k]
		w := &yw[dst>>6]
		bit := uint64(1) << (dst & 63)
		if *w&bit != 0 {
			yvals[dst] = min(yvals[dst], r)
		} else {
			yvals[dst] = r
			*w |= bit
		}
	}
}

func scalarScatterMaxMinF32(yw []uint64, yvals []float32, idx []uint32, wv []float32, m float32) {
	for k, dst := range idx {
		r := min(m, wv[k])
		w := &yw[dst>>6]
		bit := uint64(1) << (dst & 63)
		if *w&bit != 0 {
			yvals[dst] = max(yvals[dst], r)
		} else {
			yvals[dst] = r
			*w |= bit
		}
	}
}

func scalarBlockMinPlusF32(yrow, xrow []float32, w float32, cm, ym uint64) {
	for s := range yrow {
		bit := uint64(1) << uint(s)
		if cm&bit == 0 {
			continue
		}
		r := xrow[s] + w
		if ym&bit != 0 {
			yrow[s] = min(yrow[s], r)
		} else {
			yrow[s] = r
		}
	}
}

func scalarBlockMaxMinF32(yrow, xrow []float32, w float32, cm, ym uint64) {
	for s := range yrow {
		bit := uint64(1) << uint(s)
		if cm&bit == 0 {
			continue
		}
		r := min(xrow[s], w)
		if ym&bit != 0 {
			yrow[s] = max(yrow[s], r)
		} else {
			yrow[s] = r
		}
	}
}
