//go:build arm64

#include "textflag.h"

// NEON (ASIMD) bodies: whole 16-byte blocks, element counts pre-rounded by
// the Go wrappers in neon_arm64.go.

// func andBodyNEON(dst, a, b *uint64, n int)
TEXT ·andBodyNEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3
	LSR  $1, R3, R3

andloop:
	VLD1.P 16(R1), [V0.B16]
	VLD1.P 16(R2), [V1.B16]
	VAND   V1.B16, V0.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUB    $1, R3, R3
	CBNZ   R3, andloop
	RET

// func orBodyNEON(dst, a, b *uint64, n int)
TEXT ·orBodyNEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3
	LSR  $1, R3, R3

orloop:
	VLD1.P 16(R1), [V0.B16]
	VLD1.P 16(R2), [V1.B16]
	VORR   V1.B16, V0.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUB    $1, R3, R3
	CBNZ   R3, orloop
	RET

// func andNotBodyNEON(dst, a, b *uint64, n int)
// dst = a &^ b via the identity a &^ b == (a ^ b) & a (the assembler has no
// VBIC spelling).
TEXT ·andNotBodyNEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3
	LSR  $1, R3, R3

andnotloop:
	VLD1.P 16(R1), [V0.B16]
	VLD1.P 16(R2), [V1.B16]
	VEOR   V1.B16, V0.B16, V2.B16
	VAND   V0.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUB    $1, R3, R3
	CBNZ   R3, andnotloop
	RET

// func orIntoBodyNEON(dst, src *uint64, n int)
TEXT ·orIntoBodyNEON(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R3
	LSR  $1, R3, R3

orintoloop:
	VLD1   (R0), [V0.B16]
	VLD1.P 16(R1), [V1.B16]
	VORR   V1.B16, V0.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUB    $1, R3, R3
	CBNZ   R3, orintoloop
	RET

// func popcountBodyNEON(w *uint64, n int) int
// VCNT gives per-byte popcounts; VUADDLV folds the 16 bytes to one scalar.
TEXT ·popcountBodyNEON(SB), NOSPLIT, $0-24
	MOVD w+0(FP), R0
	MOVD n+8(FP), R3
	LSR  $1, R3, R3
	MOVD ZR, R4

popcntloop:
	VLD1.P  16(R0), [V0.B16]
	VCNT    V0.B16, V0.B16
	VUADDLV V0.B16, V1
	VMOV    V1.H[0], R5
	ADD     R5, R4, R4
	SUB     $1, R3, R3
	CBNZ    R3, popcntloop
	MOVD    R4, ret+16(FP)
	RET
