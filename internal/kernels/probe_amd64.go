//go:build amd64

package kernels

// amd64 backend gating: AVX2 use requires the CPUID AVX2 bit AND the OS to
// have enabled YMM state saving (OSXSAVE set and XCR0 reporting XMM+YMM),
// the same double check the Go runtime and every SIMD library perform —
// a kernel that does not context-switch YMM registers would silently corrupt
// them otherwise.

// cpuid and xgetbv are implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// Probe results live in variable initializers, not an init() func: the
// backend selection in kernels.go runs from an init() too, and Go orders
// init() funcs by file name — variable initialization always happens first,
// so the selection sees a settled probe regardless of file ordering.
var hasAVX2, cpuFeatures = probeCPU()

func probeCPU() (avx2 bool, features string) {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false, ""
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	const fmaBit = 1 << 12
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false, ""
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false, ""
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	if ebx7&avx2Bit == 0 {
		return false, "avx"
	}
	features = "avx,avx2"
	if ecx1&fmaBit != 0 {
		features += ",fma"
	}
	return true, features
}

func probeBest() (Backend, string) {
	if hasAVX2 {
		return AVX2, "cpuid probe: avx2 with OS-enabled ymm state"
	}
	return Scalar, "cpuid probe: no avx2"
}

func backendSupported(b Backend) bool {
	switch b {
	case Scalar:
		return true
	case AVX2:
		return hasAVX2
	}
	return false
}

func backendTable(b Backend) table {
	if b == AVX2 && hasAVX2 {
		t := scalarTable
		t.and = avx2And
		t.or = avx2Or
		t.andNot = avx2AndNot
		t.orInto = avx2OrInto
		t.popcountSum = avx2PopcountSum
		t.firstNonzero = avx2FirstNonzero
		t.spanLess = avx2SpanLess
		t.blockAddF64 = avx2BlockAddF64
		t.scatterAddF64 = avx2ScatterAddF64
		return t
	}
	return scalarTable
}

// CPUFeatures reports the SIMD-relevant CPU feature flags the probe saw
// (recorded into benchmark environment blocks).
func CPUFeatures() string { return cpuFeatures }
