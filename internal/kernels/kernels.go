// Package kernels is the arch-dispatched backend layer for the engine's hot
// fold primitives (paper §4.5: the hand-tuned-backend half of GraphMat's
// thesis). It exposes the small set of monomorphic inner loops the SpMV/SpMM
// kernels and the bitvector frontier machinery spend their cycles in — word
// ops over frontier masks, popcount sweeps, nonzero-word scans, the layered
// merge's run scan, and the float64 sum folds — each with a pure-Go scalar
// reference implementation plus SIMD variants (AVX2 on amd64, NEON on arm64)
// selected once at init by a CPU feature probe.
//
// The scalar implementations are the differential oracle: every SIMD variant
// must be bit-identical to its scalar reference on every input the engine can
// produce (the parity and fuzz suites in this package enforce it), so the
// engine's own differential guarantees — pull ≡ push ≡ auto, block ≡ scalar,
// overlay ≡ fresh build — hold unchanged under every backend.
//
// Backend selection: the best backend the CPU supports wins at init; the
// GRAPHMAT_KERNEL environment variable (scalar|avx2|neon) overrides it for
// testing and benchmarking, falling back to scalar (with the reason recorded
// in SelectionNote) when the named backend is unsupported on the running CPU.
// Dispatch is per primitive: a backend that accelerates only some primitives
// serves the rest from the scalar reference.
package kernels

import (
	"math/bits"
	"os"
)

// Backend identifies one kernel implementation set.
type Backend uint8

const (
	// Scalar is the pure-Go reference backend, available on every
	// architecture and always bit-identical to itself: the differential
	// oracle the SIMD backends are audited against.
	Scalar Backend = iota
	// AVX2 is the amd64 backend: 256-bit integer/double vectors, gated at
	// init on CPUID (AVX2 + OS-enabled YMM state via OSXSAVE/XGETBV).
	AVX2
	// NEON is the arm64 backend: 128-bit ASIMD vectors, baseline on every
	// arm64 the Go toolchain targets, so no runtime probe is needed.
	NEON
)

// String returns the backend's GRAPHMAT_KERNEL spelling.
func (b Backend) String() string {
	switch b {
	case Scalar:
		return "scalar"
	case AVX2:
		return "avx2"
	case NEON:
		return "neon"
	}
	return "unknown"
}

// ParseBackend resolves a GRAPHMAT_KERNEL value to a Backend.
func ParseBackend(s string) (Backend, bool) {
	switch s {
	case "scalar":
		return Scalar, true
	case "avx2":
		return AVX2, true
	case "neon":
		return NEON, true
	}
	return Scalar, false
}

// EnvVar is the environment variable that overrides backend selection.
const EnvVar = "GRAPHMAT_KERNEL"

// table is one backend's implementation set. Entries a backend does not
// accelerate point at the scalar reference, so dispatch is per primitive.
type table struct {
	and           func(dst, a, b []uint64)
	or            func(dst, a, b []uint64)
	andNot        func(dst, a, b []uint64)
	orInto        func(dst, src []uint64)
	popcountSum   func(w []uint64) int
	firstNonzero  func(w []uint64) int
	spanLess      func(a []uint32, v uint32) int
	blockAddF64   func(yrow, xrow []float64, cm, ym uint64)
	scatterAddF64 func(yw []uint64, yvals []float64, idx []uint32, m float64)

	// float32 path-semiring folds: (min, +) and (max, min). Scalar-only for
	// now — SIMD variants slot in per primitive like the f64 folds.
	scatterMinPlusF32 func(yw []uint64, yvals []float32, idx []uint32, wv []float32, m float32)
	scatterMaxMinF32  func(yw []uint64, yvals []float32, idx []uint32, wv []float32, m float32)
	blockMinPlusF32   func(yrow, xrow []float32, w float32, cm, ym uint64)
	blockMaxMinF32    func(yrow, xrow []float32, w float32, cm, ym uint64)
}

// scalarTable is the always-available reference backend.
var scalarTable = table{
	and:           scalarAnd,
	or:            scalarOr,
	andNot:        scalarAndNot,
	orInto:        scalarOrInto,
	popcountSum:   scalarPopcountSum,
	firstNonzero:  scalarFirstNonzero,
	spanLess:      scalarSpanLess,
	blockAddF64:   scalarBlockAddF64,
	scatterAddF64: scalarScatterAddF64,

	scatterMinPlusF32: scalarScatterMinPlusF32,
	scatterMaxMinF32:  scalarScatterMaxMinF32,
	blockMinPlusF32:   scalarBlockMinPlusF32,
	blockMaxMinF32:    scalarBlockMaxMinF32,
}

var (
	active        table
	activeBackend Backend
	selectionNote string
)

func init() {
	best, note := probeBest()
	want, fromEnv := lookupEnvBackend()
	switch {
	case !fromEnv:
		activeBackend, selectionNote = best, note
	case backendSupported(want):
		activeBackend = want
		selectionNote = EnvVar + "=" + want.String()
	default:
		activeBackend = Scalar
		selectionNote = EnvVar + "=" + want.String() + " unsupported on this CPU; fell back to scalar"
	}
	active = backendTable(activeBackend)
}

func lookupEnvBackend() (Backend, bool) {
	v := os.Getenv(EnvVar)
	if v == "" {
		return Scalar, false
	}
	b, ok := ParseBackend(v)
	if !ok {
		return Scalar, false
	}
	return b, true
}

// Active returns the backend currently serving dispatch.
func Active() Backend { return activeBackend }

// SelectionNote reports how the active backend was chosen: the probe result,
// the environment override, or the fallback reason.
func SelectionNote() string { return selectionNote }

// Supported returns the backends the running CPU can execute, Scalar first.
// The slice is freshly allocated; callers may reorder it.
func Supported() []Backend {
	s := []Backend{Scalar}
	for _, b := range []Backend{AVX2, NEON} {
		if backendSupported(b) {
			s = append(s, b)
		}
	}
	return s
}

// ForceBackend switches dispatch to b and returns a restore function. It is
// for tests and benchmarks only: it swaps package-level function tables and
// must not race with in-flight kernel calls (run it between runs, never
// during one). Unsupported backends return ok=false and leave dispatch
// untouched.
func ForceBackend(b Backend) (restore func(), ok bool) {
	if !backendSupported(b) {
		return nil, false
	}
	prevTable, prevBackend, prevNote := active, activeBackend, selectionNote
	active = backendTable(b)
	activeBackend = b
	selectionNote = "forced by ForceBackend"
	return func() {
		active, activeBackend, selectionNote = prevTable, prevBackend, prevNote
	}, true
}

// And stores a AND b into dst, word-wise over len(dst) words. a and b must
// have at least len(dst) words.
func And(dst, a, b []uint64) { active.and(dst, a, b) }

// Or stores a OR b into dst, word-wise over len(dst) words.
func Or(dst, a, b []uint64) { active.or(dst, a, b) }

// AndNot stores a AND NOT b (a &^ b) into dst, word-wise over len(dst) words.
func AndNot(dst, a, b []uint64) { active.andNot(dst, a, b) }

// OrInto folds src into dst word-wise (dst |= src) over len(dst) words. src
// must have at least len(dst) words.
func OrInto(dst, src []uint64) { active.orInto(dst, src) }

// PopcountSum returns the total set-bit count of w — the word-sweep Count()
// behind frontier sizing and the kernel cost model.
func PopcountSum(w []uint64) int { return active.popcountSum(w) }

// FirstNonzero returns the index of the first nonzero word of w, or -1 if
// every word is zero — the next-set-word scan behind the push kernels'
// frontier walk and the bitvector's Any/NextSet.
func FirstNonzero(w []uint64) int { return active.firstNonzero(w) }

// SpanLess returns the length of the longest prefix of a whose elements are
// < v. On a sorted slice this is the lower bound of v — the run scan the
// layered kernels use to turn the base/delta two-pointer column merge into
// whole runs of base columns per delta column.
func SpanLess(a []uint32, v uint32) int { return active.spanLess(a, v) }

// BlockAddF64 is the dense float64 fold of the block (SpMM) kernels for
// (+, passthrough) semirings — one adjacency column's contribution to a
// destination's k-wide row, all live source columns at once:
//
//	for each source s with cm bit s set:
//	    yrow[s] = yrow[s] + xrow[s]   if ym bit s set (already reduced into)
//	    yrow[s] = xrow[s]             otherwise (first write, raw store)
//
// Lanes outside cm are untouched. len(xrow) must be >= len(yrow), and
// len(yrow) (the block width k) at most 64. Lanes are independent, so SIMD
// variants are bit-identical to the scalar reference on every input.
func BlockAddF64(yrow, xrow []float64, cm, ym uint64) { active.blockAddF64(yrow, xrow, cm, ym) }

// ScatterAddF64 is the scalar-engine float64 sum fold of one adjacency
// column: for each destination dst in idx, reduce message m into yvals[dst]
// under the occupancy mask yw —
//
//	yvals[dst] = yvals[dst] + m   if yw bit dst set
//	yvals[dst] = m                otherwise (first write), then set the bit
//
// idx entries must be < len(yvals) and yw must cover them. m must not be a
// signaling NaN: the engine only ever folds arithmetic results (which are
// never signaling), and the branchless SIMD variants would quiet one where
// the scalar reference stores it raw.
func ScatterAddF64(yw []uint64, yvals []float64, idx []uint32, m float64) {
	active.scatterAddF64(yw, yvals, idx, m)
}

// ScatterMinPlusF32 is the scalar-engine (min, +) float32 fold of one
// adjacency column — the tropical semiring of SSSP's Bellman-Ford step. For
// each destination idx[k], the candidate is m + wv[k] (message extended by
// the edge weight) and the reduction keeps the minimum:
//
//	yvals[dst] = min(yvals[dst], m+wv[k])   if yw bit dst set
//	yvals[dst] = m + wv[k]                  otherwise (first write), set bit
//
// len(wv) must equal len(idx); idx entries must be < len(yvals) with yw
// covering them. The reduction is the builtin min in the exact argument
// order the generic engine fold uses, so results are bit-identical to the
// callback loop.
func ScatterMinPlusF32(yw []uint64, yvals []float32, idx []uint32, wv []float32, m float32) {
	active.scatterMinPlusF32(yw, yvals, idx, wv, m)
}

// ScatterMaxMinF32 is the scalar-engine (max, min) float32 fold of one
// adjacency column — the bottleneck semiring of widest paths. The candidate
// is min(m, wv[k]) (path width capped by the edge capacity) and the
// reduction keeps the maximum. Contract as in ScatterMinPlusF32.
func ScatterMaxMinF32(yw []uint64, yvals []float32, idx []uint32, wv []float32, m float32) {
	active.scatterMaxMinF32(yw, yvals, idx, wv, m)
}

// BlockMinPlusF32 is the (min, +) float32 fold of the block (SpMM) kernels:
// one edge of weight w advancing all live source columns at once —
//
//	for each source s with cm bit s set:
//	    yrow[s] = min(yrow[s], xrow[s]+w)   if ym bit s set
//	    yrow[s] = xrow[s] + w               otherwise (first write)
//
// Lanes outside cm are untouched. len(xrow) >= len(yrow), len(yrow) <= 64.
func BlockMinPlusF32(yrow, xrow []float32, w float32, cm, ym uint64) {
	active.blockMinPlusF32(yrow, xrow, w, cm, ym)
}

// BlockMaxMinF32 is the (max, min) float32 fold of the block kernels:
// candidate min(xrow[s], w), reduction max. Contract as in BlockMinPlusF32.
func BlockMaxMinF32(yrow, xrow []float32, w float32, cm, ym uint64) {
	active.blockMaxMinF32(yrow, xrow, w, cm, ym)
}

// onesCount64 aliases math/bits for the scalar references below.
func onesCount64(x uint64) int { return bits.OnesCount64(x) }
