//go:build arm64

package kernels

import "math/bits"

// NEON backend wrappers: 128-bit ASIMD bodies over whole 16-byte blocks
// (kern_arm64.s), scalar tails in Go — the same split as the AVX2 backend.

//go:noescape
func andBodyNEON(dst, a, b *uint64, n int)

//go:noescape
func orBodyNEON(dst, a, b *uint64, n int)

//go:noescape
func andNotBodyNEON(dst, a, b *uint64, n int)

//go:noescape
func orIntoBodyNEON(dst, src *uint64, n int)

//go:noescape
func popcountBodyNEON(w *uint64, n int) int

func neonAnd(dst, a, b []uint64) {
	n := len(dst) &^ 1
	if n > 0 {
		andBodyNEON(&dst[0], &a[0], &b[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] & b[i]
	}
}

func neonOr(dst, a, b []uint64) {
	n := len(dst) &^ 1
	if n > 0 {
		orBodyNEON(&dst[0], &a[0], &b[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] | b[i]
	}
}

func neonAndNot(dst, a, b []uint64) {
	n := len(dst) &^ 1
	if n > 0 {
		andNotBodyNEON(&dst[0], &a[0], &b[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] &^ b[i]
	}
}

func neonOrInto(dst, src []uint64) {
	n := len(dst) &^ 1
	if n > 0 {
		orIntoBodyNEON(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] |= src[i]
	}
}

func neonPopcountSum(w []uint64) int {
	n := len(w) &^ 1
	c := 0
	if n > 0 {
		c = popcountBodyNEON(&w[0], n)
	}
	for _, x := range w[n:] {
		c += bits.OnesCount64(x)
	}
	return c
}
