//go:build amd64

package kernels

import "math/bits"

// AVX2 backend wrappers: each routes the vectorizable body of a primitive to
// the assembly in kern_amd64.s (whole 256-bit blocks) and finishes the tail
// with the scalar reference loop. The split keeps the assembly small and the
// boundary conditions in Go, where they are testable and readable.

// Assembly bodies (kern_amd64.s). n counts are in elements and are always
// multiples of the body's block size; pointers are to the first element.
//
//go:noescape
func andBodyAVX2(dst, a, b *uint64, n int)

//go:noescape
func orBodyAVX2(dst, a, b *uint64, n int)

//go:noescape
func andNotBodyAVX2(dst, a, b *uint64, n int)

//go:noescape
func orIntoBodyAVX2(dst, src *uint64, n int)

//go:noescape
func popcountBodyAVX2(w *uint64, n int) int

//go:noescape
func firstNonzeroBodyAVX2(w *uint64, n int) int

//go:noescape
func spanLessBodyAVX2(a *uint32, n int, v uint32) int

//go:noescape
func blockAddF64BodyAVX2(yrow, xrow *float64, n int, cm, ym uint64)

//go:noescape
func scatterAddF64BodyAVX2(yw *uint64, yvals *float64, idx *uint32, n int, m float64)

func avx2And(dst, a, b []uint64) {
	n := len(dst) &^ 3
	if n > 0 {
		andBodyAVX2(&dst[0], &a[0], &b[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] & b[i]
	}
}

func avx2Or(dst, a, b []uint64) {
	n := len(dst) &^ 3
	if n > 0 {
		orBodyAVX2(&dst[0], &a[0], &b[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] | b[i]
	}
}

func avx2AndNot(dst, a, b []uint64) {
	n := len(dst) &^ 3
	if n > 0 {
		andNotBodyAVX2(&dst[0], &a[0], &b[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] &^ b[i]
	}
}

func avx2OrInto(dst, src []uint64) {
	n := len(dst) &^ 3
	if n > 0 {
		orIntoBodyAVX2(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] |= src[i]
	}
}

func avx2PopcountSum(w []uint64) int {
	n := len(w) &^ 3
	c := 0
	if n > 0 {
		c = popcountBodyAVX2(&w[0], n)
	}
	for _, x := range w[n:] {
		c += bits.OnesCount64(x)
	}
	return c
}

func avx2FirstNonzero(w []uint64) int {
	n := len(w) &^ 3
	if n > 0 {
		if blk := firstNonzeroBodyAVX2(&w[0], n); blk >= 0 {
			for i := blk; ; i++ {
				if w[i] != 0 {
					return i
				}
			}
		}
	}
	for i := n; i < len(w); i++ {
		if w[i] != 0 {
			return i
		}
	}
	return -1
}

func avx2SpanLess(a []uint32, v uint32) int {
	n := len(a) &^ 7
	c := 0
	if n > 0 {
		c = spanLessBodyAVX2(&a[0], n, v)
		if c < n {
			return c
		}
	}
	for _, x := range a[c:] {
		if x >= v {
			return c
		}
		c++
	}
	return c
}

func avx2BlockAddF64(yrow, xrow []float64, cm, ym uint64) {
	if cm == 0 {
		return
	}
	k := len(yrow)
	n := k &^ 3
	if n > 0 {
		blockAddF64BodyAVX2(&yrow[0], &xrow[0], n, cm, ym)
	}
	for s := n; s < k; s++ {
		bit := uint64(1) << uint(s)
		if cm&bit == 0 {
			continue
		}
		if ym&bit != 0 {
			yrow[s] += xrow[s]
		} else {
			yrow[s] = xrow[s]
		}
	}
}

func avx2ScatterAddF64(yw []uint64, yvals []float64, idx []uint32, m float64) {
	n := len(idx) &^ 3
	if n > 0 {
		scatterAddF64BodyAVX2(&yw[0], &yvals[0], &idx[0], n, m)
	}
	scalarScatterAddF64(yw, yvals, idx[n:], m)
}
