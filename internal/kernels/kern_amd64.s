//go:build amd64

#include "textflag.h"

// AVX2 bodies of the kernels backend. Element counts (n) arrive pre-rounded
// to the block size by the Go wrappers in avx2_amd64.go, which also run the
// scalar tails, so every loop here is whole 256-bit blocks.

// Nibble popcount lookup table for VPSHUFB (Mula's algorithm), duplicated
// across both 128-bit lanes.
DATA nibPopcnt<>+0(SB)/8, $0x0302020102010100
DATA nibPopcnt<>+8(SB)/8, $0x0403030203020201
DATA nibPopcnt<>+16(SB)/8, $0x0302020102010100
DATA nibPopcnt<>+24(SB)/8, $0x0403030203020201
GLOBL nibPopcnt<>(SB), RODATA|NOPTR, $32

DATA lowNibbles<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lowNibbles<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lowNibbles<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lowNibbles<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL lowNibbles<>(SB), RODATA|NOPTR, $32

// Per-lane qword bits {1, 2, 4, 8}: expanding a mask nibble to four all-ones/
// all-zero qword lanes is (broadcast(nib) AND laneBits) == laneBits.
DATA laneBits<>+0(SB)/8, $1
DATA laneBits<>+8(SB)/8, $2
DATA laneBits<>+16(SB)/8, $4
DATA laneBits<>+24(SB)/8, $8
GLOBL laneBits<>(SB), RODATA|NOPTR, $32

// Unsigned-compare sign flip for 32-bit lanes (VPCMPGTD is signed).
DATA signFlip32<>+0(SB)/8, $0x8000000080000000
DATA signFlip32<>+8(SB)/8, $0x8000000080000000
DATA signFlip32<>+16(SB)/8, $0x8000000080000000
DATA signFlip32<>+24(SB)/8, $0x8000000080000000
GLOBL signFlip32<>(SB), RODATA|NOPTR, $32

// func andBodyAVX2(dst, a, b *uint64, n int)
TEXT ·andBodyAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX

andloop:
	VMOVDQU (SI), Y0
	VPAND   (DX), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     andloop
	VZEROUPPER
	RET

// func orBodyAVX2(dst, a, b *uint64, n int)
TEXT ·orBodyAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX

orloop:
	VMOVDQU (SI), Y0
	VPOR    (DX), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     orloop
	VZEROUPPER
	RET

// func andNotBodyAVX2(dst, a, b *uint64, n int)
// dst = a &^ b = ^b & a: VPANDN computes ^src1 & src2 with src1 the middle
// operand in Go syntax, so b rides the middle slot.
TEXT ·andNotBodyAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX

andnotloop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	VPANDN  Y0, Y1, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     andnotloop
	VZEROUPPER
	RET

// func orIntoBodyAVX2(dst, src *uint64, n int)
TEXT ·orIntoBodyAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX

orintoloop:
	VMOVDQU (DI), Y0
	VPOR    (SI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     orintoloop
	VZEROUPPER
	RET

// func popcountBodyAVX2(w *uint64, n int) int
// Mula's nibble-LUT popcount: per 32-byte block, VPSHUFB maps low and high
// nibbles to per-byte counts, VPSADBW folds bytes to qword partials, and a
// qword accumulator carries the running sum.
TEXT ·popcountBodyAVX2(SB), NOSPLIT, $0-24
	MOVQ    w+0(FP), SI
	MOVQ    n+8(FP), CX
	SHRQ    $2, CX
	VMOVDQU nibPopcnt<>(SB), Y4
	VMOVDQU lowNibbles<>(SB), Y5
	VPXOR   Y6, Y6, Y6             // accumulator
	VPXOR   Y7, Y7, Y7             // zero for VPSADBW

popcntloop:
	VMOVDQU (SI), Y0
	VPAND   Y5, Y0, Y1
	VPSRLW  $4, Y0, Y2
	VPAND   Y5, Y2, Y2
	VPSHUFB Y1, Y4, Y1
	VPSHUFB Y2, Y4, Y2
	VPADDB  Y2, Y1, Y1
	VPSADBW Y7, Y1, Y1
	VPADDQ  Y1, Y6, Y6
	ADDQ    $32, SI
	DECQ    CX
	JNZ     popcntloop
	VEXTRACTI128 $1, Y6, X1
	VPADDQ  X1, X6, X6
	MOVQ    X6, AX
	VPEXTRQ $1, X6, BX
	ADDQ    BX, AX
	MOVQ    AX, ret+16(FP)
	VZEROUPPER
	RET

// func firstNonzeroBodyAVX2(w *uint64, n int) int
// Returns the 4-aligned block start holding the first nonzero word, or -1.
// The Go wrapper refines to the exact word.
TEXT ·firstNonzeroBodyAVX2(SB), NOSPLIT, $0-24
	MOVQ w+0(FP), SI
	MOVQ n+8(FP), CX
	XORQ AX, AX

fnzloop:
	VMOVDQU (SI), Y0
	VPTEST  Y0, Y0
	JNZ     fnzfound
	ADDQ    $32, SI
	ADDQ    $4, AX
	CMPQ    AX, CX
	JL      fnzloop
	MOVQ    $-1, AX

fnzfound:
	MOVQ AX, ret+16(FP)
	VZEROUPPER
	RET

// func spanLessBodyAVX2(a *uint32, n int, v uint32) int
// Counts the prefix of a[0:n] with a[i] < v (unsigned): per 8-lane block,
// sign-flip both sides and VPCMPGTD against broadcast v; a full mask means
// the whole block is below v, otherwise the first offending lane ends the
// span.
TEXT ·spanLessBodyAVX2(SB), NOSPLIT, $0-32
	MOVQ         a+0(FP), SI
	MOVQ         n+8(FP), CX
	MOVL         v+16(FP), DX
	XORL         $0x80000000, DX
	MOVL         DX, X0
	VPBROADCASTD X0, Y5
	VMOVDQU      signFlip32<>(SB), Y6
	XORQ         AX, AX

spanloop:
	VMOVDQU   (SI), Y0
	VPXOR     Y6, Y0, Y0
	VPCMPGTD  Y0, Y5, Y1
	VPMOVMSKB Y1, BX
	CMPL      BX, $0xFFFFFFFF
	JNE       spanpartial
	ADDQ      $32, SI
	ADDQ      $8, AX
	CMPQ      AX, CX
	JL        spanloop
	JMP       spandone

spanpartial:
	NOTL BX
	BSFL BX, BX
	SHRL $2, BX
	ADDQ BX, AX

spandone:
	MOVQ AX, ret+24(FP)
	VZEROUPPER
	RET

// func blockAddF64BodyAVX2(yrow, xrow *float64, n int, cm, ym uint64)
// The dense (+, passthrough) block fold over four source lanes at a time:
// lanes in cm get yold+x where ym is set and the raw x on first write; lanes
// outside cm keep yold. Mask nibbles expand to qword lane masks via
// (broadcast AND laneBits) == laneBits.
TEXT ·blockAddF64BodyAVX2(SB), NOSPLIT, $0-40
	MOVQ    yrow+0(FP), DI
	MOVQ    xrow+8(FP), SI
	MOVQ    n+16(FP), CX
	MOVQ    cm+24(FP), R8
	MOVQ    ym+32(FP), R9
	SHRQ    $2, CX
	VMOVDQU laneBits<>(SB), Y15

blockaddloop:
	// cm nibble -> Y2 lane mask. VMOVQ, not MOVQ: a legacy-SSE move into an
	// XMM register inside VEX code pays the SSE/AVX state-transition penalty
	// on every iteration (measured ~50x on this loop).
	MOVQ         R8, AX
	ANDQ         $15, AX
	VMOVQ        AX, X2
	VPBROADCASTQ X2, Y2
	VPAND        Y15, Y2, Y2
	VPCMPEQQ     Y15, Y2, Y2
	SHRQ         $4, R8

	// ym nibble -> Y3 lane mask
	MOVQ         R9, AX
	ANDQ         $15, AX
	VMOVQ        AX, X3
	VPBROADCASTQ X3, Y3
	VPAND        Y15, Y3, Y3
	VPCMPEQQ     Y15, Y3, Y3
	SHRQ         $4, R9

	VMOVUPD   (SI), Y4         // x
	VMOVUPD   (DI), Y5         // yold
	VADDPD    Y4, Y5, Y6       // sum = yold + x
	VBLENDVPD Y3, Y6, Y4, Y7   // sel = ym ? sum : x
	VBLENDVPD Y2, Y7, Y5, Y7   // new = cm ? sel : yold
	VMOVUPD   Y7, (DI)
	ADDQ      $32, SI
	ADDQ      $32, DI
	DECQ      CX
	JNZ       blockaddloop
	VZEROUPPER
	RET

// func scatterAddF64BodyAVX2(yw *uint64, yvals *float64, idx *uint32, n int, m float64)
// The scalar-engine sum fold: branchless first-write handling — a clear mask
// bit substitutes -0.0 for the stale value, and -0.0 + m == m bit-for-bit
// for every non-signaling m, matching the scalar reference's raw store.
TEXT ·scatterAddF64BodyAVX2(SB), NOSPLIT, $0-40
	MOVQ  yw+0(FP), R8
	MOVQ  yvals+8(FP), R10
	MOVQ  idx+16(FP), SI
	MOVQ  n+24(FP), CX
	MOVSD m+32(FP), X0
	MOVQ  $0x8000000000000000, R13

scatterloop:
	MOVL    (SI), DX           // dst
	MOVQ    DX, BX
	SHRQ    $6, BX
	MOVQ    (R8)(BX*8), R9     // mask word
	MOVQ    (R10)(DX*8), R11   // stale-or-live y value bits
	BTQ     DX, R9             // CF = already reduced into?
	CMOVQCC R13, R11           // no: fold from -0.0, i.e. store m raw
	BTSQ    DX, R9
	MOVQ    R9, (R8)(BX*8)
	MOVQ    R11, X1
	ADDSD   X0, X1
	MOVSD   X1, (R10)(DX*8)
	ADDQ    $4, SI
	DECQ    CX
	JNZ     scatterloop
	RET
