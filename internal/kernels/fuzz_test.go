package kernels

import (
	"encoding/binary"
	"math"
	"math/bits"
	"testing"
)

// The fuzz differentials: every SIMD backend must match the scalar oracle
// bit for bit on arbitrary inputs, not just the structured cases the parity
// tests enumerate. FuzzBitvecWords covers the integer word primitives,
// FuzzDenseFold the two float64 folds. Both run as regular seed-corpus tests
// under `go test` (the CI fuzz-smoke additionally runs them with -fuzz for a
// bounded wall-clock slice).

// fuzzWords reinterprets the fuzz byte string as little-endian words.
func fuzzWords(data []byte) []uint64 {
	w := make([]uint64, len(data)/8)
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return w
}

// quietNaN forces the quiet bit on NaN payloads: ScatterAddF64's contract
// excludes signaling NaN messages (the engine only folds arithmetic results),
// so the fuzzer must not feed one. Payload bits below the quiet bit survive,
// keeping the input diversity.
func quietNaN(x float64) float64 {
	if x != x {
		return math.Float64frombits(math.Float64bits(x) | 1<<51)
	}
	return x
}

// FuzzBitvecWords drives the integer primitives — AND/OR/ANDNOT/OR-into,
// popcount sum, next-set-word scan, and the SpanLess run scan — through every
// supported SIMD backend against the scalar reference.
func FuzzBitvecWords(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0}, uint32(1))
	long := make([]byte, 8*37+5) // odd tail exercises the remainder paths
	for i := range long {
		long[i] = byte(i * 131)
	}
	f.Add(long, uint32(0x80000000))
	f.Fuzz(func(t *testing.T, data []byte, v uint32) {
		a := fuzzWords(data)
		n := len(a)
		b := make([]uint64, n)
		for i := range b {
			b[i] = bits.RotateLeft64(a[i], 13) ^ 0x9E3779B97F4A7C15
		}
		u32 := make([]uint32, len(data)/4)
		for i := range u32 {
			u32[i] = binary.LittleEndian.Uint32(data[i*4:])
		}

		wantAnd, wantOr, wantAndNot, wantOrInto := make([]uint64, n), make([]uint64, n), make([]uint64, n), append([]uint64(nil), b...)
		scalarAnd(wantAnd, a, b)
		scalarOr(wantOr, a, b)
		scalarAndNot(wantAndNot, a, b)
		scalarOrInto(wantOrInto, a)
		wantPop := scalarPopcountSum(a)
		wantFirst := scalarFirstNonzero(a)
		wantSpan := scalarSpanLess(u32, v)

		for _, backend := range simdBackends() {
			tab := backendTable(backend)
			got := make([]uint64, n)
			for _, c := range []struct {
				name string
				fn   func(dst, a, b []uint64)
				want []uint64
			}{
				{"and", tab.and, wantAnd},
				{"or", tab.or, wantOr},
				{"andnot", tab.andNot, wantAndNot},
			} {
				c.fn(got, a, b)
				for i := range got {
					if got[i] != c.want[i] {
						t.Fatalf("%s %s: word %d = %#x, scalar %#x", backend, c.name, i, got[i], c.want[i])
					}
				}
			}
			gotOrInto := append([]uint64(nil), b...)
			tab.orInto(gotOrInto, a)
			for i := range gotOrInto {
				if gotOrInto[i] != wantOrInto[i] {
					t.Fatalf("%s orinto: word %d = %#x, scalar %#x", backend, i, gotOrInto[i], wantOrInto[i])
				}
			}
			if got := tab.popcountSum(a); got != wantPop {
				t.Fatalf("%s popcount = %d, scalar %d", backend, got, wantPop)
			}
			if got := tab.firstNonzero(a); got != wantFirst {
				t.Fatalf("%s firstnonzero = %d, scalar %d", backend, got, wantFirst)
			}
			if got := tab.spanLess(u32, v); got != wantSpan {
				t.Fatalf("%s spanless(%d) = %d, scalar %d", backend, v, got, wantSpan)
			}
		}
	})
}

// FuzzDenseFold drives the float64 folds — BlockAddF64's masked lane add and
// ScatterAddF64's column scatter — through every supported SIMD backend
// against the scalar reference, comparing results as raw bit patterns so NaN
// payloads, signed zeros and infinities all count.
func FuzzDenseFold(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint64(0), uint64(0))
	seed := make([]byte, 8*70)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed, ^uint64(0), uint64(0xAAAAAAAAAAAAAAAA), math.Float64bits(1.5))
	f.Add(seed[:64], uint64(0xF0F0), uint64(0x0F0F), math.Float64bits(math.Inf(-1)))
	f.Fuzz(func(t *testing.T, data []byte, cm, ym, mraw uint64) {
		raw := fuzzWords(data)
		vals := make([]float64, len(raw))
		for i, w := range raw {
			vals[i] = quietNaN(math.Float64frombits(w))
		}

		// BlockAddF64: k = len(vals) capped at the block width limit; the
		// y row starts from a lane-rotated view of the same floats.
		k := len(vals)
		if k > 64 {
			k = 64
		}
		xrow := vals[:k]
		yinit := make([]float64, k)
		for i := range yinit {
			yinit[i] = quietNaN(math.Float64frombits(bits.RotateLeft64(raw[i], 7)))
		}
		wantY := append([]float64(nil), yinit...)
		scalarBlockAddF64(wantY, xrow, cm, ym)

		// ScatterAddF64: a 256-slot destination, targets from the raw bytes
		// (duplicates folded in order), occupancy seeded from ym.
		const nDst = 256
		m := quietNaN(math.Float64frombits(mraw))
		idx := make([]uint32, len(data))
		for i, bb := range data {
			idx[i] = uint32(bb)
		}
		ywInit := [nDst / 64]uint64{ym, bits.RotateLeft64(ym, 1), ^ym, bits.RotateLeft64(ym, 33)}
		yvInit := make([]float64, nDst)
		for i := range yvInit {
			yvInit[i] = quietNaN(math.Float64frombits(uint64(i)*0x9E3779B97F4A7C15 ^ mraw))
		}
		wantW := ywInit
		wantV := append([]float64(nil), yvInit...)
		scalarScatterAddF64(wantW[:], wantV, idx, m)

		for _, backend := range simdBackends() {
			tab := backendTable(backend)

			gotY := append([]float64(nil), yinit...)
			tab.blockAddF64(gotY, xrow, cm, ym)
			for i := range gotY {
				if math.Float64bits(gotY[i]) != math.Float64bits(wantY[i]) {
					t.Fatalf("%s blockadd: lane %d = %v (%#x), scalar %v (%#x)",
						backend, i, gotY[i], math.Float64bits(gotY[i]), wantY[i], math.Float64bits(wantY[i]))
				}
			}

			gotW := ywInit
			gotV := append([]float64(nil), yvInit...)
			tab.scatterAddF64(gotW[:], gotV, idx, m)
			if gotW != wantW {
				t.Fatalf("%s scatteradd: mask %#x, scalar %#x", backend, gotW, wantW)
			}
			for i := range gotV {
				if math.Float64bits(gotV[i]) != math.Float64bits(wantV[i]) {
					t.Fatalf("%s scatteradd: y[%d] = %v (%#x), scalar %v (%#x)",
						backend, i, gotV[i], math.Float64bits(gotV[i]), wantV[i], math.Float64bits(wantV[i]))
				}
			}
		}
	})
}
