//go:build arm64

package kernels

// arm64 backend gating: ASIMD (NEON) is architecturally baseline on every
// arm64 the Go toolchain targets, so no runtime probe is needed — the only
// question is whether the user forced scalar via GRAPHMAT_KERNEL.

func probeBest() (Backend, string) { return NEON, "arm64: asimd is baseline" }

func backendSupported(b Backend) bool { return b == Scalar || b == NEON }

func backendTable(b Backend) table {
	if b == NEON {
		t := scalarTable
		t.and = neonAnd
		t.or = neonOr
		t.andNot = neonAndNot
		t.orInto = neonOrInto
		t.popcountSum = neonPopcountSum
		// firstNonzero, spanLess and the float64 folds stay on the scalar
		// reference: gc's arm64 codegen already keeps those loops in
		// registers, and the branchy scan/select shapes gain little from
		// hand NEON. The dispatch table makes the split explicit.
		return t
	}
	return scalarTable
}

// CPUFeatures reports the SIMD-relevant CPU feature flags the probe saw.
func CPUFeatures() string { return "asimd" }
