package kernels

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// speedupSink defeats dead-code elimination in the timing loops.
var speedupSink int

// measureBest times fn over iters calls, best of rounds — the minimum is the
// least-noise estimate on a shared box.
func measureBest(rounds, iters int, fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestKernelSpeedup is the acceptance gate for the SIMD backends: on a host
// whose CPU supports one, the word-scan (popcount sweep) and the dense fold
// (BlockAddF64) must run at least 2x faster than the scalar reference on
// engine-sized inputs. Skipped when only the scalar backend is available
// (e.g. cross-compiled test binaries on a plain host) and under -short, where
// wall-clock timing is not meaningful.
func TestKernelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped under -short")
	}
	simd := simdBackends()
	if len(simd) == 0 {
		t.Skip("no SIMD backend supported on this CPU")
	}
	backend := simd[len(simd)-1]
	tab := backendTable(backend)

	// Word scan: a frontier bitvector of 2^15 words (2M vertices).
	words := make([]uint64, 1<<15)
	for i := range words {
		words[i] = uint64(i)*0x9E3779B97F4A7C15 | 1
	}
	// Dense fold: a full-width block row with every lane live and half
	// already reduced into — the steady state of a 64-source SpMM superstep.
	xrow := make([]float64, 64)
	yrow := make([]float64, 64)
	for i := range xrow {
		xrow[i] = float64(i) * 1.25
		yrow[i] = float64(i) * 0.5
	}

	cases := []struct {
		name           string
		scalar, vector func()
	}{
		{
			name:   "popcount_word_scan",
			scalar: func() { speedupSink += scalarPopcountSum(words) },
			vector: func() { speedupSink += tab.popcountSum(words) },
		},
		{
			name:   "dense_fold_blockadd",
			scalar: func() { scalarBlockAddF64(yrow, xrow, ^uint64(0), 0xAAAAAAAAAAAAAAAA) },
			vector: func() { tab.blockAddF64(yrow, xrow, ^uint64(0), 0xAAAAAAAAAAAAAAAA) },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			iters := 2000
			if c.name == "dense_fold_blockadd" {
				iters = 400000 // tiny kernel: more calls per round for stable timing
			}
			sc := measureBest(7, iters, c.scalar)
			vec := measureBest(7, iters, c.vector)
			ratio := float64(sc) / float64(vec)
			t.Logf("%s: scalar %v, %s %v (%.2fx)", c.name, sc, backend, vec, ratio)
			if ratio < 2 {
				t.Errorf("%s: %s is %.2fx scalar, want >= 2x (scalar %v vs %v over %d iters)",
					c.name, backend, ratio, sc, vec, iters)
			}
		})
	}
	if speedupSink == math.MinInt {
		fmt.Println(speedupSink) // keep the sink alive
	}
}
