package server

import (
	"net/http"
	"sync"

	"graphmat/algorithms"
)

// GET /v1/openapi.json serves a machine-readable description of the v1 API.
// The document is assembled once (the algorithm list is fixed at init time)
// and enumerates the registry dynamically, so a newly registered semiring
// algorithm appears in the run schema without touching this file.

var openAPIOnce = sync.OnceValue(buildOpenAPI)

func (s *Server) handleOpenAPI(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, openAPIOnce())
}

func buildOpenAPI() map[string]any {
	algoNames := make([]any, 0)
	algoDescs := map[string]any{}
	for _, spec := range algorithms.Specs() {
		algoNames = append(algoNames, spec.Name)
		algoDescs[spec.Name] = map[string]any{
			"description": spec.Description,
			"batchable":   spec.Batchable,
		}
	}
	jsonBody := func(schema any) map[string]any {
		return map[string]any{
			"content": map[string]any{"application/json": map[string]any{"schema": schema}},
		}
	}
	ref := func(name string) map[string]any {
		return map[string]any{"$ref": "#/components/schemas/" + name}
	}
	okJSON := func(desc string, schema any) map[string]any {
		resp := map[string]any{"description": desc}
		if schema != nil {
			resp["content"] = map[string]any{"application/json": map[string]any{"schema": schema}}
		}
		return map[string]any{"200": resp}
	}
	nameParam := map[string]any{
		"name": "name", "in": "path", "required": true,
		"schema": map[string]any{"type": "string"}, "description": "registered graph name",
	}

	return map[string]any{
		"openapi": "3.0.3",
		"info": map[string]any{
			"title":       "graphmatd",
			"version":     "v1",
			"description": "Resident graph analytics service: registered graphs, live edge updates, and semiring algorithm runs (single- and multi-source). Unversioned paths are deprecated aliases of /v1 and answer with a Deprecation header.",
		},
		"paths": map[string]any{
			"/v1/healthz": map[string]any{"get": map[string]any{
				"summary":   "liveness probe",
				"responses": okJSON("service is up", nil),
			}},
			"/v1/stats": map[string]any{"get": map[string]any{
				"summary":   "service statistics (requests, cache, admission batcher, per-graph engine tallies)",
				"responses": okJSON("statistics snapshot", nil),
			}},
			"/v1/algorithms": map[string]any{"get": map[string]any{
				"summary":   "list registered algorithms and their parameter schemas",
				"responses": okJSON("algorithm listing", nil),
			}},
			"/v1/openapi.json": map[string]any{"get": map[string]any{
				"summary":   "this document",
				"responses": okJSON("OpenAPI description", nil),
			}},
			"/v1/graphs": map[string]any{
				"get": map[string]any{
					"summary":   "list registered graphs",
					"responses": okJSON("graph listing", nil),
				},
				"post": map[string]any{
					"summary":     "register a graph from a source description (JSON body) or an upload (?format=mtx|edgelist|bin with ?name=)",
					"requestBody": jsonBody(map[string]any{"type": "object"}),
					"responses":   map[string]any{"201": map[string]any{"description": "graph registered"}},
				},
			},
			"/v1/graphs/{name}": map[string]any{
				"get": map[string]any{
					"summary":    "describe one graph",
					"parameters": []any{nameParam},
					"responses":  okJSON("graph info", nil),
				},
				"delete": map[string]any{
					"summary":    "unregister a graph",
					"parameters": []any{nameParam},
					"responses":  okJSON("graph removed", nil),
				},
			},
			"/v1/graphs/{name}/edges": map[string]any{"post": map[string]any{
				"summary":    "apply a live edge-update batch (NDJSON or edgelist body); advances the graph one epoch",
				"parameters": []any{nameParam},
				"responses":  okJSON("batch applied", nil),
			}},
			"/v1/graphs/{name}/run": map[string]any{"post": map[string]any{
				"summary":     "run an algorithm: scalar, or one independent run per source as a multi-source block batch",
				"description": "Single-source requests (sources with one element) keep the scalar response shape and may be coalesced with concurrent compatible requests into one shared block run; per-source values are bit-identical to solo runs either way. Algorithms without a source parameter must omit sources.",
				"parameters":  []any{nameParam},
				"requestBody": jsonBody(ref("RunRequest")),
				"responses":   okJSON("run result (scalar or batch shape; NDJSON stream when stream=true)", nil),
			}},
			"/v1/graphs/{name}/run/{algo}": map[string]any{"post": map[string]any{
				"summary": "run an algorithm, parameters in the body (query knobs: mode, timeout_ms, stream)",
				"parameters": []any{nameParam, map[string]any{
					"name": "algo", "in": "path", "required": true,
					"schema": map[string]any{"type": "string", "enum": algoNames},
				}},
				"requestBody": jsonBody(map[string]any{"type": "object"}),
				"responses":   okJSON("run result", nil),
			}},
		},
		"components": map[string]any{"schemas": map[string]any{
			"RunRequest": map[string]any{
				"type":     "object",
				"required": []any{"algo"},
				"properties": map[string]any{
					"algo": map[string]any{
						"type": "string", "enum": algoNames,
						"description": "registry algorithm name",
					},
					"sources": map[string]any{
						"type":        "array",
						"items":       map[string]any{"type": "integer", "minimum": 0},
						"description": "one independent run per vertex, advanced as a multi-source block batch (batchable algorithms only)",
					},
					"mode": map[string]any{
						"type": "string", "enum": []any{"auto", "pull", "push"},
						"description": "SpMV kernel; a performance knob, results are bit-identical across modes",
					},
					"params": map[string]any{
						"type":        "object",
						"description": "algorithm parameters per GET /v1/algorithms (source, iters, tolerance, restart, ...)",
					},
					"timeout_ms": map[string]any{
						"type": "integer", "minimum": 1,
						"description": "wall-time bound; expiry returns 504",
					},
					"stream": map[string]any{
						"type":        "boolean",
						"description": "NDJSON progress stream instead of a blocking response",
					},
				},
			},
			"Algorithms": map[string]any{
				"type":        "object",
				"description": "registered algorithms",
				"properties":  algoDescs,
			},
		}},
	}
}
