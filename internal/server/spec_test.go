package server

import (
	"strings"
	"testing"
)

func TestParseSourceSpec(t *testing.T) {
	src, err := ParseSourceSpec("rmat:scale=8,edgefactor=4,seed=7,maxweight=10")
	if err != nil {
		t.Fatal(err)
	}
	if src.Generator != "rmat" || src.Scale != 8 || src.EdgeFactor != 4 || src.Seed != 7 || src.MaxWeight != 10 {
		t.Fatalf("parsed %+v", src)
	}

	src, err = ParseSourceSpec("grid:width=30,height=20")
	if err != nil {
		t.Fatal(err)
	}
	if src.Generator != "grid" || src.Width != 30 || src.Height != 20 {
		t.Fatalf("parsed %+v", src)
	}

	src, err = ParseSourceSpec("data/web.mtx")
	if err != nil {
		t.Fatal(err)
	}
	if src.Path != "data/web.mtx" || src.Generator != "" {
		t.Fatalf("parsed %+v", src)
	}

	for _, bad := range []string{"rmat:", "rmat:scale", "rmat:scale=x", "rmat:wat=1"} {
		if _, err := ParseSourceSpec(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
}

func TestSourceLoadValidation(t *testing.T) {
	cases := []struct {
		name string
		src  Source
		want string
	}{
		{"empty", Source{}, "path or generator"},
		{"both", Source{Path: "x", Generator: "rmat"}, "mutually exclusive"},
		{"unknown generator", Source{Generator: "mystery"}, "unknown generator"},
		{"rmat without scale", Source{Generator: "rmat"}, "scale"},
		{"grid without dims", Source{Generator: "grid"}, "width and height"},
		{"bipartite incomplete", Source{Generator: "bipartite", Users: 5}, "users, items and ratings"},
		{"erdosrenyi incomplete", Source{Generator: "erdosrenyi"}, "vertices and edges"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.src.Load()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestSourceLoadGenerators(t *testing.T) {
	for _, src := range []Source{
		{Generator: "rmat", Scale: 5, EdgeFactor: 4, Seed: 1},
		{Generator: "erdosrenyi", Vertices: 50, Edges: 200, Seed: 1},
		{Generator: "grid", Width: 6, Height: 5, Seed: 1},
		{Generator: "bipartite", Users: 20, Items: 10, Ratings: 100, Seed: 1},
	} {
		adj, err := src.Load()
		if err != nil {
			t.Fatalf("%s: %v", src.Describe(), err)
		}
		if adj.NNZ() == 0 || adj.NRows == 0 {
			t.Fatalf("%s: empty graph", src.Describe())
		}
	}
}
