package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphmat"
	"graphmat/internal/graph"
)

// doRaw posts a raw (non-JSON) body.
func doRaw(t *testing.T, ts *httptest.Server, method, path, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

type updateReply struct {
	Graph     string                          `json:"graph"`
	Epoch     uint64                          `json:"epoch"`
	Updates   int                             `json:"updates"`
	Instances map[string]graphmat.ApplyResult `json:"instances"`
}

// TestEdgesEndpointStaleCache is the stale-result hazard test: a cached
// PageRank result must NOT be served after an edge batch lands, and the
// post-batch result must reflect the new edges.
func TestEdgesEndpointStaleCache(t *testing.T) {
	srv, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	params := map[string]any{"iters": 10}
	first := runAlgo(t, ts, "g", "pagerank", params)
	if first.Cached {
		t.Fatal("first run reported cached")
	}
	again := runAlgo(t, ts, "g", "pagerank", params)
	if !again.Cached {
		t.Fatal("second identical run not served from cache")
	}

	// A batch that visibly changes PageRank: every vertex gains an edge to
	// vertex 0.
	n := int(srv.reg.graphs["g"].NumVertices())
	var batch strings.Builder
	for v := 1; v < n; v++ {
		fmt.Fprintf(&batch, "{\"src\":%d,\"dst\":0,\"weight\":1}\n", v)
	}
	code, body := doRaw(t, ts, http.MethodPost, "/graphs/g/edges", batch.String())
	if code != http.StatusOK {
		t.Fatalf("POST /edges = %d: %s", code, body)
	}
	var ur updateReply
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 || ur.Updates != n-1 {
		t.Fatalf("update reply = %+v", ur)
	}
	if pr, ok := ur.Instances["pagerank"]; !ok || pr.Epoch != 1 {
		t.Fatalf("pagerank instance missing from fan-out: %+v", ur.Instances)
	}

	after := runAlgo(t, ts, "g", "pagerank", params)
	if after.Cached {
		t.Fatal("stale cached PageRank served after edge batch")
	}
	same := true
	for v := range first.Values {
		if first.Values[v] != after.Values[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("PageRank unchanged by a batch pointing every vertex at 0")
	}
	// The new epoch's result caches normally.
	cached := runAlgo(t, ts, "g", "pagerank", params)
	if !cached.Cached {
		t.Fatal("post-update result not cached under the new epoch")
	}
	for v := range after.Values {
		if cached.Values[v] != after.Values[v] {
			t.Fatal("cached post-update result differs from computed one")
		}
	}
}

// TestEdgesEndpointMatchesFreshUpload applies a batch and checks /run results
// equal a fresh upload of the equivalent edge set — the serving-layer
// differential, across a traversal (bfs, symmetrized) and a ranking
// (pagerank, directed) algorithm.
func TestEdgesEndpointMatchesFreshUpload(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "live")

	// Build instances BEFORE the update so the delta path is exercised.
	runAlgo(t, ts, "live", "bfs", map[string]any{"source": 0})
	runAlgo(t, ts, "live", "pagerank", map[string]any{"iters": 8})

	batch := "add 0 63 2\ndel 1 0\nadd 62 61 3\ndel 62 61\nadd 62 61 4\n"
	if code, body := doRaw(t, ts, http.MethodPost, "/graphs/live/edges?format=edgelist", batch); code != http.StatusOK {
		t.Fatalf("POST /edges = %d: %s", code, body)
	}

	// The equivalent fresh edge set, built client-side and uploaded.
	adj := testAdj()
	graphmat.NormalizeAdjacency(adj, 1)
	ups, err := graphmat.ParseUpdates([]byte(batch))
	if err != nil {
		t.Fatal(err)
	}
	adj, err = graphmat.ApplyToAdjacency(adj, ups)
	if err != nil {
		t.Fatal(err)
	}
	var mtx bytes.Buffer
	if err := graph.WriteMTX(&mtx, adj); err != nil {
		t.Fatal(err)
	}
	if code, body := doRaw(t, ts, http.MethodPost, "/graphs?name=fresh&format=mtx", mtx.String()); code != http.StatusCreated {
		t.Fatalf("upload fresh = %d: %s", code, body)
	}

	for _, algo := range []string{"bfs", "pagerank"} {
		params := map[string]any{"iters": 8}
		if algo == "bfs" {
			params = map[string]any{"source": 0}
		}
		live := runAlgo(t, ts, "live", algo, params)
		fresh := runAlgo(t, ts, "fresh", algo, params)
		if len(live.Values) != len(fresh.Values) {
			t.Fatalf("%s: value lengths differ", algo)
		}
		for v := range live.Values {
			if live.Values[v] != fresh.Values[v] {
				t.Fatalf("%s: value[%d] = %v live vs %v fresh", algo, v, live.Values[v], fresh.Values[v])
			}
		}
	}
}

// TestEdgesEndpointErrors covers the endpoint's failure modes.
func TestEdgesEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	if code, _ := doRaw(t, ts, http.MethodPost, "/graphs/nope/edges", "add 0 1\n"); code != http.StatusNotFound {
		t.Errorf("missing graph = %d", code)
	}
	if code, _ := doRaw(t, ts, http.MethodPost, "/graphs/g/edges", ""); code != http.StatusBadRequest {
		t.Errorf("empty batch = %d", code)
	}
	if code, _ := doRaw(t, ts, http.MethodPost, "/graphs/g/edges", "add 0\n"); code != http.StatusBadRequest {
		t.Errorf("malformed line = %d", code)
	}
	if code, _ := doRaw(t, ts, http.MethodPost, "/graphs/g/edges?format=bogus", "add 0 1\n"); code != http.StatusBadRequest {
		t.Errorf("bad format = %d", code)
	}
	// Vertex out of range: the whole batch must be rejected and the epoch
	// unmoved.
	if code, _ := doRaw(t, ts, http.MethodPost, "/graphs/g/edges", "add 0 999999\n"); code != http.StatusBadRequest {
		t.Errorf("out-of-range vertex = %d", code)
	}
	code, body := doRaw(t, ts, http.MethodGet, "/graphs/g", "")
	if code != http.StatusOK {
		t.Fatalf("GET /graphs/g = %d", code)
	}
	var info struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 0 {
		t.Errorf("failed batches advanced the epoch to %d", info.Epoch)
	}
}

// TestUpdateAwareWorkspacePools checks that edge updates do not invalidate
// pooled workspaces: the vertex count is fixed, so runs across epochs keep
// reusing the same scratch instead of re-allocating.
func TestUpdateAwareWorkspacePools(t *testing.T) {
	srv, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	for i := 0; i < 3; i++ {
		runAlgo(t, ts, "g", "bfs", map[string]any{"source": float64(i)})
		if code, body := doRaw(t, ts, http.MethodPost, "/graphs/g/edges",
			fmt.Sprintf("add %d %d\n", i, i+10)); code != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i, code, body)
		}
	}
	runAlgo(t, ts, "g", "bfs", map[string]any{"source": 5})

	st := srv.reg.graphs["g"].Stats()["bfs"]
	if st.Runs != 4 {
		t.Fatalf("runs = %d", st.Runs)
	}
	// Exact reuse counts only hold without -race: race builds make
	// sync.Pool drop items randomly by design.
	if !raceEnabled && st.WorkspaceAllocs != 1 {
		t.Errorf("workspace allocs = %d across epochs, want 1 (pool must survive updates)", st.WorkspaceAllocs)
	}
	if st.Store.Epoch != 3 || st.Store.Batches != 3 {
		t.Errorf("bfs store stats = %+v", st.Store)
	}

	// Epoch surfaces in /stats and /graphs.
	code, body := doRaw(t, ts, http.MethodGet, "/stats", "")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var stats struct {
		Graphs map[string]GraphStats `json:"graphs"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Graphs["g"].Epoch != 3 || stats.Graphs["g"].UpdatesApplied != 3 {
		t.Errorf("graph stats = %+v", stats.Graphs["g"])
	}
}

// TestLazyInstanceAfterUpdates builds an algorithm instance only AFTER
// batches landed: it must see the updated master, agreeing with an instance
// built before the batches.
func TestLazyInstanceAfterUpdates(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	// components built before updates, sssp and bfs only after.
	if r := runAlgo(t, ts, "g", "components", nil); len(r.Values) == 0 {
		t.Fatal("pre-update components run returned nothing")
	}
	if code, body := doRaw(t, ts, http.MethodPost, "/graphs/g/edges", "add 0 63\nadd 63 62\ndel 1 2\n"); code != http.StatusOK {
		t.Fatalf("POST /edges = %d: %s", code, body)
	}
	afterBuiltBefore := runAlgo(t, ts, "g", "components", nil)
	lazyBuilt := runAlgo(t, ts, "g", "sssp", map[string]any{"source": 0})
	if len(lazyBuilt.Values) == 0 {
		t.Fatal("lazily built instance returned nothing")
	}

	// The built-before (delta-updated) instance must agree with a lazily
	// built symmetrized algorithm that cloned the post-update master: bfs
	// from root 0 reaches exactly the vertices components labels with the
	// root's label.
	bfs := runAlgo(t, ts, "g", "bfs", map[string]any{"source": 0})
	root := afterBuiltBefore.Values[0]
	for v := range bfs.Values {
		reached := bfs.Values[v] != float64(^uint32(0))
		sameComp := afterBuiltBefore.Values[v] == root
		if reached != sameComp {
			t.Fatalf("vertex %d: bfs reached=%v but component match=%v (built-before vs lazily-built masters diverge)", v, reached, sameComp)
		}
	}
}
