// Package server implements graphmatd, the long-running graph analytics
// service: a registry of loaded graphs, per-graph pools of reusable engine
// workspaces, a named-algorithm dispatch table over the algorithms registry,
// an LRU result cache, and an HTTP/JSON API. The design follows RedisGraph
// (Cailliau et al., 2019): a GraphBLAS-style engine gains most of its
// serving throughput from keeping graphs and engine scratch resident across
// queries rather than rebuilding them per request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/graph"
	"graphmat/internal/sched"
	"graphmat/internal/sparse"
)

// Config configures a Server.
type Config struct {
	// CacheSize is the LRU result-cache capacity in entries; 0 means the
	// default (128), negative disables caching.
	CacheSize int
	// Partitions is the matrix partition count for graph builds; 0 selects
	// the engine default.
	Partitions int
	// Workers is the ingestion parallelism for graph uploads (chunked
	// parsing); 0 means GOMAXPROCS, 1 forces sequential parsing.
	Workers int
	// MaxUploadBytes caps the POST /graphs upload body; 0 means the default
	// (1 GiB).
	MaxUploadBytes int64
	// DataDir, when non-empty, enables persistence: each graph gets
	// <DataDir>/<name> holding GMATSNAP checkpoints, a write-ahead log, and
	// a CURRENT manifest. Update batches are fsynced to the WAL before they
	// are acknowledged, and re-registering a persisted name boots from the
	// mmap'd snapshots instead of re-parsing and re-building.
	DataDir string
	// BatchWindow is the admission-batching window of the v1 run API:
	// single-source requests for the same (graph, algorithm, epoch, params)
	// arriving within it coalesce into one multi-source block run. 0 means
	// the default (2ms); negative disables coalescing (each request runs as a
	// width-1 batch).
	BatchWindow time.Duration
	// Logger, when set, receives one line per request.
	Logger *log.Logger
}

const defaultMaxUpload = 1 << 30

// Server is the graphmatd HTTP service.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *resultCache
	batcher *batcher // nil when coalescing is disabled
	mux     *http.ServeMux
	start   time.Time

	epMu     sync.Mutex
	requests map[string]int64
	// modeRuns tallies /run requests by the kernel mode they asked for
	// (auto, pull, push) — the serving-side view of the direction-
	// optimization knob, surfaced in GET /stats.
	modeRuns map[string]int64
}

// New builds a server with no graphs loaded.
func New(cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = 128
	}
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.Partitions, cfg.Workers, cfg.DataDir),
		cache:    newResultCache(size),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		requests: make(map[string]int64),
		modeRuns: make(map[string]int64),
	}
	if cfg.BatchWindow >= 0 {
		s.batcher = newBatcher(cfg.BatchWindow)
	}
	// Every endpoint lives under /v1; the unversioned forms are deprecated
	// aliases (the pre-versioning API) answering identically but flagged with
	// a Deprecation header.
	s.route("GET", "/healthz", s.handleHealthz)
	s.route("GET", "/stats", s.handleStats)
	s.route("GET", "/algorithms", s.handleAlgorithms)
	s.route("GET", "/graphs", s.handleListGraphs)
	s.route("POST", "/graphs", s.handleAddGraph)
	s.route("GET", "/graphs/{name}", s.handleGetGraph)
	s.route("DELETE", "/graphs/{name}", s.handleDeleteGraph)
	s.route("POST", "/graphs/{name}/edges", s.handleUpdateEdges)
	s.route("POST", "/graphs/{name}/run/{algo}", s.handleRun)
	// v1-only surface: the unified run endpoint and the API description.
	s.handle("POST /v1/graphs/{name}/run", s.handleRunV1)
	s.handle("GET /v1/openapi.json", s.handleOpenAPI)
	return s
}

// route registers a handler at its canonical /v1 path and at the legacy
// unversioned alias. Legacy responses carry `Deprecation: true` plus a Link
// header naming the successor, so existing clients keep working while every
// response points them at /v1.
func (s *Server) route(method, path string, h http.HandlerFunc) {
	s.handle(method+" /v1"+path, h)
	s.handle(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1`+r.URL.Path+`>; rel="successor-version"`)
		h(w, r)
	})
}

// AddGraph loads a source and registers it (the -graph preload path).
func (s *Server) AddGraph(name string, src Source) error {
	_, err := s.reg.Add(name, src)
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handle registers a pattern with per-endpoint request counting and optional
// request logging — the tallies surface in GET /stats.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.epMu.Lock()
		s.requests[pattern]++
		s.epMu.Unlock()
		if s.cfg.Logger != nil {
			start := time.Now()
			h(w, r)
			s.cfg.Logger.Printf("%s %s (%s)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
			return
		}
		h(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// errorCode maps registry errors to HTTP statuses.
func errorCode(err error) int {
	switch {
	case errors.Is(err, ErrGraphNotFound), errors.Is(err, ErrAlgoNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrGraphExists):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "graphs": len(s.reg.Names())})
}

// graphInfo is the JSON view of one registered graph.
type graphInfo struct {
	Name     string `json:"name"`
	Source   string `json:"source"`
	Vertices uint32 `json:"vertices"`
	Edges    int    `json:"edges"`
	// Epoch is the graph's edge-set version: 0 at registration, +1 per
	// applied update batch.
	Epoch uint64   `json:"epoch"`
	Built []string `json:"built_algorithms,omitempty"`
}

func infoOf(g *GraphEntry) graphInfo {
	return graphInfo{
		Name:     g.Name(),
		Source:   g.Source(),
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Epoch:    g.Epoch(),
		Built:    g.BuiltAlgorithms(),
	}
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	infos := make([]graphInfo, 0, len(names))
	for _, n := range names {
		if g, err := s.reg.Get(n); err == nil {
			infos = append(infos, infoOf(g))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

// addGraphRequest is the POST /graphs JSON body: a name plus a flattened
// Source.
type addGraphRequest struct {
	Name string `json:"name"`
	Source
}

// handleAddGraph registers a graph one of two ways. With a ?format= query
// parameter the request is an upload: the body is the graph data itself
// (format "mtx", "edgelist" or "bin"/"binary"), parsed server-side by the
// parallel ingestion pipeline and registered under ?name=. Without ?format=
// the body is the JSON Source form (path or generator).
func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	if format := r.URL.Query().Get("format"); format != "" {
		s.handleUploadGraph(w, r, format)
		return
	}
	var req addGraphRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	entry, err := s.reg.Add(req.Name, req.Source)
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(entry))
}

// handleUploadGraph is the upload half of POST /graphs: build the graph from
// the request body and register it. An uploaded graph is indistinguishable
// from one loaded at boot — same registry entry, same lazily built
// per-algorithm property graphs and workspace pools — so /run results match
// a boot-loaded copy of the same edges exactly.
func (s *Server) handleUploadGraph(w http.ResponseWriter, r *http.Request, format string) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "upload: ?name= is required")
		return
	}
	// Fail before reading the body: a taken or malformed name should not
	// cost a gigabyte-scale read and parse.
	if err := s.reg.CheckName(name); err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	maxBytes := s.cfg.MaxUploadBytes
	if maxBytes <= 0 {
		maxBytes = defaultMaxUpload
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		// Only an over-limit body is the client's size problem; anything
		// else (disconnect, reset) is a plain bad request.
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "reading upload: %v", err)
		return
	}
	opt := graph.LoadOptions{Parallelism: s.cfg.Workers}
	var coo *sparse.COO[float32]
	switch strings.ToLower(format) {
	case "mtx":
		coo, err = graph.ParseMTX(body, opt)
	case "edgelist", "txt", "el":
		coo, err = graph.ParseEdgeList(body, opt)
	case "bin", "binary":
		coo, err = graph.ParseBinary(body, opt)
	default:
		writeError(w, http.StatusBadRequest, "unknown upload format %q (want mtx, edgelist or bin)", format)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing %s upload: %v", format, err)
		return
	}
	// Reject unusable graphs at POST time rather than registering an entry
	// every /run would 400 on: algorithms need a square adjacency, and
	// binary records carry ids the format itself does not bounds-check.
	if coo.NRows != coo.NCols {
		writeError(w, http.StatusBadRequest, "upload: adjacency must be square, got %dx%d", coo.NRows, coo.NCols)
		return
	}
	if err := coo.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "upload: %v", err)
		return
	}
	entry, err := s.reg.AddCOO(name, fmt.Sprintf("upload:%s (%d bytes)", strings.ToLower(format), len(body)), coo)
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(entry))
}

// updateResponse is the POST /graphs/{name}/edges reply.
type updateResponse struct {
	Graph string `json:"graph"`
	// Epoch is the graph's new edge-set version.
	Epoch uint64 `json:"epoch"`
	// Updates is the raw batch size accepted.
	Updates    int     `json:"updates"`
	DurationMS float64 `json:"duration_ms"`
	// Instances reports what the batch did to each built property graph
	// (inserted/deleted/updated counts are post-preprocessing, so a raw
	// insert can appear as two symmetrized property edges).
	Instances map[string]graphmat.ApplyResult `json:"instances"`
}

// handleUpdateEdges is the live-update endpoint: the body is an edge-update
// batch — NDJSON ({"src","dst","weight","del"} per line) or the text form
// ([add|del] src dst [weight]); ?format=ndjson|edgelist overrides the
// first-byte sniff. The batch lands atomically: the master adjacency
// advances one epoch, every built algorithm instance receives the batch
// through its own preprocessing, and cached results of older epochs are
// dropped. Queries running while the batch lands finish on the snapshot
// they pinned.
func (s *Server) handleUpdateEdges(w http.ResponseWriter, r *http.Request) {
	g, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	maxBytes := s.cfg.MaxUploadBytes
	if maxBytes <= 0 {
		maxBytes = defaultMaxUpload
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "reading update batch: %v", err)
		return
	}
	var batch []graphmat.EdgeUpdate
	switch format := strings.ToLower(r.URL.Query().Get("format")); format {
	case "":
		batch, err = graph.ParseUpdates(body)
	case "ndjson", "json":
		batch, err = graph.ParseUpdatesNDJSON(body)
	case "edgelist", "txt", "el":
		batch, err = graph.ParseUpdateList(body)
	default:
		writeError(w, http.StatusBadRequest, "unknown update format %q (want ndjson or edgelist)", format)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing update batch: %v", err)
		return
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "update batch is empty")
		return
	}
	start := time.Now()
	epoch, results, err := g.ApplyEdges(batch)
	// Older epochs' cached results are unreachable already (the epoch is in
	// the cache key); the sweep keeps them from squatting in the LRU.
	s.cache.invalidateGraph(g.Name())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{
		Graph:      g.Name(),
		Epoch:      epoch,
		Updates:    len(batch),
		DurationMS: ms(time.Since(start)),
		Instances:  results,
	})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	g, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, infoOf(g))
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Remove(name); err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	s.cache.invalidateGraph(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// algorithmInfo is the GET /algorithms view of one registry spec.
type algorithmInfo struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	Params      []algoParamInfo `json:"params"`
}

type algoParamInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Desc string `json:"desc"`
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	specs := algorithms.Specs()
	infos := make([]algorithmInfo, 0, len(specs))
	for _, spec := range specs {
		info := algorithmInfo{Name: spec.Name, Description: spec.Description, Params: []algoParamInfo{}}
		for _, p := range spec.Params {
			info.Params = append(info.Params, algoParamInfo{Name: p.Name, Kind: p.Kind.String(), Desc: p.Desc})
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": infos})
}

// runResponse is the single-source run reply: the uniform algorithm result
// plus query metadata. Cached marks an LRU fast-path hit; Coalesced marks a
// v1 response whose engine run was shared with concurrent requests through
// the admission batcher (the values are bit-identical to a solo run either
// way).
type runResponse struct {
	Graph      string  `json:"graph"`
	Algorithm  string  `json:"algorithm"`
	Cached     bool    `json:"cached"`
	Coalesced  bool    `json:"coalesced,omitempty"`
	DurationMS float64 `json:"duration_ms"`
	algorithms.Result
}

// batchRunResponse is the multi-source reply of POST /v1/graphs/{name}/run:
// one value series per requested source, in request order.
type batchRunResponse struct {
	Graph      string  `json:"graph"`
	Algorithm  string  `json:"algorithm"`
	DurationMS float64 `json:"duration_ms"`
	algorithms.BatchResult
}

// runRequest is the POST /v1/graphs/{name}/run body — the whole query in one
// document instead of spread across the path, the query string and the body.
type runRequest struct {
	// Algo names the registry algorithm to run.
	Algo string `json:"algo"`
	// Sources, when present, asks for one independent single-source run per
	// listed vertex, executed as a multi-source block batch (batchable
	// algorithms only). A one-element list keeps the scalar response shape
	// and is eligible for admission coalescing with concurrent requests.
	Sources []uint32 `json:"sources,omitempty"`
	// Mode selects the SpMV kernel (auto, pull or push); empty means auto.
	Mode string `json:"mode,omitempty"`
	// Params carries the algorithm's own parameters, validated against its
	// declared schema exactly like the legacy endpoint's body.
	Params map[string]any `json:"params,omitempty"`
	// TimeoutMS bounds the run's wall time; expiry returns 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stream switches the response to NDJSON: one progress line per
	// superstep, then a final line shaped like the blocking response.
	Stream bool `json:"stream,omitempty"`
}

// handleRunV1 is the unified v1 query endpoint. Requests without a sources
// list behave exactly like the legacy per-algorithm endpoint (cache fast
// path included). Requests with sources take the multi-source path: k
// independent runs advanced as one block batch, bit-identical per source to
// k solo runs. Single-source requests go through the admission batcher,
// which coalesces concurrent compatible requests into shared block runs —
// the LRU cache is deliberately not consulted on this path; shared sweeps,
// not memoization, are the v1 dedup mechanism.
func (s *Server) handleRunV1(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	var req runRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	spec, ok := algorithms.Lookup(req.Algo)
	if !ok {
		writeError(w, http.StatusNotFound, "%v: %q (have %v)", ErrAlgoNotFound, req.Algo, algorithms.Names())
		return
	}
	params, err := spec.ParseParams(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Mode != "" {
		mode, err := graphmat.ParseMode(req.Mode)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid mode %q: want auto, pull or push", req.Mode)
			return
		}
		params.Mode = mode
	}
	ctx := r.Context()
	if req.TimeoutMS != 0 {
		if req.TimeoutMS < 0 {
			writeError(w, http.StatusBadRequest, "invalid timeout_ms %d: want a positive integer", req.TimeoutMS)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if len(req.Sources) == 0 {
		// Scalar form — params may still carry source/sources the legacy way.
		s.finishRun(ctx, w, g, name, req.Algo, params, req.Stream)
		return
	}
	if !spec.Batchable {
		writeError(w, http.StatusBadRequest, "algorithm %q has no source parameter to batch over; omit sources", req.Algo)
		return
	}
	s.epMu.Lock()
	s.modeRuns[params.Mode.String()]++
	s.epMu.Unlock()
	if req.Stream {
		s.streamRunBatch(ctx, w, g, name, req.Algo, req.Sources, params)
		return
	}
	start := time.Now()
	if len(req.Sources) == 1 {
		params.Source, params.Sources = req.Sources[0], nil
		var res algorithms.Result
		var coalesced bool
		if s.batcher != nil {
			res, coalesced, err = s.batcher.submit(ctx, g, req.Algo, params)
		} else {
			var batch algorithms.BatchResult
			if batch, err = g.RunBatch(ctx, req.Algo, params, nil); err == nil {
				res = algorithms.Result{Values: batch.Values[0], Stats: batch.Stats, Epoch: batch.Epoch}
			}
		}
		if err != nil {
			writeError(w, runErrorCode(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, runResponse{
			Graph:      name,
			Algorithm:  req.Algo,
			Coalesced:  coalesced,
			DurationMS: ms(time.Since(start)),
			Result:     res,
		})
		return
	}
	params.Source, params.Sources = 0, req.Sources
	batch, err := g.RunBatch(ctx, req.Algo, params, nil)
	if err != nil {
		writeError(w, runErrorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, batchRunResponse{
		Graph:       name,
		Algorithm:   req.Algo,
		DurationMS:  ms(time.Since(start)),
		BatchResult: batch,
	})
}

// handleRun executes one query. The run inherits the request's context, so a
// client that disconnects cancels its engine work; two query parameters
// refine the session: timeout_ms bounds the run's wall time (expiry returns
// 504), and stream=1 switches the response to NDJSON — one progress line per
// superstep while the run is in flight, then a final line with the same
// shape as the blocking response.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name, algo := r.PathValue("name"), r.PathValue("algo")
	g, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	spec, ok := algorithms.Lookup(algo)
	if !ok {
		writeError(w, http.StatusNotFound, "%v: %s (have %v)", ErrAlgoNotFound, algo, algorithms.Names())
		return
	}
	raw := map[string]any{}
	if err := decodeJSON(r, &raw); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, "decoding params: %v", err)
		return
	}
	params, err := spec.ParseParams(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	q := r.URL.Query()
	// mode= selects the engine's SpMV kernel for this run (auto, pull,
	// push); it can also arrive as a body parameter — the query form wins.
	// Mode is a performance knob: all modes are bit-identical, so it does
	// not participate in the result-cache key.
	if qm := q.Get("mode"); qm != "" {
		mode, err := graphmat.ParseMode(qm)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid mode %q: want auto, pull or push", qm)
			return
		}
		params.Mode = mode
	}
	ctx := r.Context()
	if tms := q.Get("timeout_ms"); tms != "" {
		n, err := strconv.ParseInt(tms, 10, 64)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "invalid timeout_ms %q: want a positive integer", tms)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(n)*time.Millisecond)
		defer cancel()
	}
	stream := q.Get("stream")
	s.finishRun(ctx, w, g, name, algo, params, stream == "1" || stream == "true")
}

// finishRun executes a fully parsed scalar run: the per-mode tally, the
// stream branch, the cache fast path, the engine run, and the response. Both
// the legacy path-parameter endpoint and the v1 unified endpoint end here.
func (s *Server) finishRun(ctx context.Context, w http.ResponseWriter, g *GraphEntry, name, algo string, params algorithms.Params, stream bool) {
	// Tally after all parameter validation: rejected requests must not skew
	// the per-mode counters.
	s.epMu.Lock()
	s.modeRuns[params.Mode.String()]++
	s.epMu.Unlock()
	if stream {
		s.streamRun(ctx, w, g, name, algo, params)
		return
	}

	// The epoch read here keys the cache: a batch landing after this point
	// changes the epoch, so the result computed below would be published
	// under a key no future reader of the new epoch consults — and the
	// post-run epoch check drops it entirely rather than cache a result
	// whose provenance is ambiguous.
	epoch := g.Epoch()
	key := cacheKey(name, epoch, algo, params)
	if res, ok := s.cache.get(key); ok {
		writeJSON(w, http.StatusOK, runResponse{Graph: name, Algorithm: algo, Cached: true, Result: res})
		return
	}
	start := time.Now()
	res, err := g.RunContext(ctx, algo, params, nil)
	if err != nil {
		writeError(w, runErrorCode(err), "%v", err)
		return
	}
	// Don't cache under a name whose graph was deleted (or replaced)
	// mid-run: the next registration of that name must never see it. The
	// liveness check comes AFTER the put — if a concurrent delete's
	// invalidation raced between our put and this check, Has is false and
	// we invalidate again; checking before the put would leave a window
	// where the stale entry survives. An epoch moved by a concurrent update
	// batch skips the put the same way.
	if g.Epoch() == epoch {
		s.cache.put(key, res)
	}
	if !s.reg.Has(g) {
		s.cache.invalidateGraph(name)
	}
	writeJSON(w, http.StatusOK, runResponse{
		Graph:      name,
		Algorithm:  algo,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
		Result:     res,
	})
}

// runErrorCode maps a run failure to an HTTP status: an expired per-request
// timeout is a gateway timeout; a canceled context means the client already
// went away (the write is best-effort — 499 follows the nginx convention for
// client-closed requests).
func runErrorCode(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	}
	return errorCode(err)
}

// streamProgress is one NDJSON progress line of a stream=1 run.
type streamProgress struct {
	Iteration  int     `json:"iteration"`
	Active     int64   `json:"active"`
	Sent       int64   `json:"sent"`
	NextActive int64   `json:"next_active"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	TotalMS    float64 `json:"total_ms"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// streamRun executes a run in streaming mode. The result cache is bypassed
// on the read side (a cache hit would defeat the point of watching
// progress), but the computed result is still published to it. Because
// progress lines flush before the run finishes, the HTTP status is always
// 200; a run that fails mid-stream reports the failure as a final
// {"error": ...} line instead of a status code. A write failure — the
// client hung up — stops the run through the observer's error return.
func (s *Server) streamRun(ctx context.Context, w http.ResponseWriter, g *GraphEntry, name, algo string, params algorithms.Params) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeLine := func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	start := time.Now()
	epoch := g.Epoch()
	res, err := g.RunContext(ctx, algo, params, func(info graphmat.IterationInfo) error {
		return writeLine(streamProgress{
			Iteration:  info.Iteration,
			Active:     info.Active,
			Sent:       info.Sent,
			NextActive: info.NextActive,
			ElapsedMS:  ms(info.Elapsed),
			TotalMS:    ms(info.Total),
		})
	})
	if err != nil {
		_ = writeLine(map[string]string{"error": err.Error(), "reason": res.Stats.Reason.String()})
		return
	}
	if g.Epoch() == epoch {
		s.cache.put(cacheKey(name, epoch, algo, params), res)
	}
	if !s.reg.Has(g) {
		s.cache.invalidateGraph(name)
	}
	_ = writeLine(runResponse{
		Graph:      name,
		Algorithm:  algo,
		DurationMS: ms(time.Since(start)),
		Result:     res,
	})
}

// streamRunBatch is streamRun's multi-source form: progress lines cover the
// whole block run (per-superstep totals across every live column), the final
// line is the batchRunResponse shape. The admission batcher and the result
// cache are both bypassed — a streaming client wants to watch its own run.
func (s *Server) streamRunBatch(ctx context.Context, w http.ResponseWriter, g *GraphEntry, name, algo string, sources []uint32, params algorithms.Params) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeLine := func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	params.Source, params.Sources = 0, sources
	start := time.Now()
	res, err := g.RunBatch(ctx, algo, params, func(info graphmat.IterationInfo) error {
		return writeLine(streamProgress{
			Iteration:  info.Iteration,
			Active:     info.Active,
			Sent:       info.Sent,
			NextActive: info.NextActive,
			ElapsedMS:  ms(info.Elapsed),
			TotalMS:    ms(info.Total),
		})
	})
	if err != nil {
		_ = writeLine(map[string]string{"error": err.Error(), "reason": res.Stats.Reason.String()})
		return
	}
	_ = writeLine(batchRunResponse{
		Graph:       name,
		Algorithm:   algo,
		DurationMS:  ms(time.Since(start)),
		BatchResult: res,
	})
}

// GraphStats is the /stats view of one registered graph: its edge-set
// version, update traffic, and the per-algorithm tallies.
type GraphStats struct {
	// Epoch is the graph's edge-set version (0 at registration, +1 per
	// update batch).
	Epoch uint64 `json:"epoch"`
	// UpdatesApplied counts raw edge updates absorbed over the graph's
	// lifetime.
	UpdatesApplied int64 `json:"updates_applied"`
	// Algorithms is the per-(graph, algorithm) view, including each
	// instance's versioned-store counters.
	Algorithms map[string]AlgoStats `json:"algorithms"`
	// Persist is the graph's durability view: boot provenance, checkpoint
	// and WAL counters. Omitted when the server runs without -data-dir.
	Persist *PersistStats `json:"persist,omitempty"`
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      map[string]int64 `json:"requests"`
	// ModeRuns counts /run requests by requested kernel mode; the engine-
	// side view (supersteps actually pushed vs pulled, including how Auto
	// resolved) is in each graph's per-algorithm engine stats.
	ModeRuns map[string]int64 `json:"mode_runs"`
	Cache    cacheStats       `json:"cache"`
	// Batcher is the v1 admission layer's view: requests admitted, block
	// runs dispatched, and how many requests shared a run with others.
	Batcher batcherStats          `json:"batcher"`
	Graphs  map[string]GraphStats `json:"graphs"`
	// Sched is the process-wide scheduler runtime's per-worker utilization
	// view: one entry per pool size in use, cumulative since the pool was
	// first woken (tasks run, tasks stolen, busy nanoseconds, wakeups).
	Sched []sched.PoolStats `json:"sched,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.epMu.Lock()
	reqs := make(map[string]int64, len(s.requests))
	for k, v := range s.requests {
		reqs[k] = v
	}
	modes := make(map[string]int64, len(s.modeRuns))
	for k, v := range s.modeRuns {
		modes[k] = v
	}
	s.epMu.Unlock()

	graphs := make(map[string]GraphStats)
	for _, n := range s.reg.Names() {
		if g, err := s.reg.Get(n); err == nil {
			gs := GraphStats{
				Epoch:          g.Epoch(),
				UpdatesApplied: g.UpdatesApplied(),
				Algorithms:     g.Stats(),
			}
			if ps := g.PersistStats(); ps.Enabled {
				gs.Persist = &ps
			}
			graphs[n] = gs
		}
	}
	var bs batcherStats
	if s.batcher != nil {
		bs = s.batcher.stats()
	}
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      reqs,
		ModeRuns:      modes,
		Cache:         s.cache.stats(),
		Batcher:       bs,
		Graphs:        graphs,
		Sched:         sched.Snapshot(),
	})
}

// decodeJSON strictly decodes a request body; empty bodies return io.EOF.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
