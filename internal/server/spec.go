package server

import (
	"fmt"
	"strconv"
	"strings"

	"graphmat"
	"graphmat/internal/gen"
	"graphmat/internal/sparse"
)

// Source describes where a graph's edges come from: a file on disk or one of
// the synthetic generators. Exactly one of Path and Generator must be set.
// The same struct is the JSON body of POST /graphs and the value of
// graphmatd's -graph flag (via ParseSourceSpec), so the two registration
// paths cannot diverge.
type Source struct {
	// Path loads a graph file (.mtx Matrix Market, .bin binary edge list,
	// or whitespace text edge list).
	Path string `json:"path,omitempty"`
	// Generator synthesizes a graph: "rmat", "erdosrenyi", "grid" or
	// "bipartite".
	Generator string `json:"generator,omitempty"`

	// RMAT: vertices = 2^Scale, edges = EdgeFactor * vertices.
	Scale      int `json:"scale,omitempty"`
	EdgeFactor int `json:"edgefactor,omitempty"`

	// Erdos-Renyi: Edges drawn uniformly over Vertices.
	Vertices uint32 `json:"vertices,omitempty"`
	Edges    int    `json:"edges,omitempty"`

	// Grid: Width x Height 4-neighbor road-style grid.
	Width  uint32 `json:"width,omitempty"`
	Height uint32 `json:"height,omitempty"`

	// Bipartite ratings graph: Users + Items vertices, Ratings edges.
	Users   uint32 `json:"users,omitempty"`
	Items   uint32 `json:"items,omitempty"`
	Ratings int    `json:"ratings,omitempty"`

	// MaxWeight draws integer edge weights in [1, MaxWeight]; 0 keeps the
	// generator's default.
	MaxWeight int    `json:"maxweight,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
}

// Describe returns a short human-readable description of the source.
func (s Source) Describe() string {
	if s.Path != "" {
		return "file:" + s.Path
	}
	switch s.Generator {
	case "rmat":
		return fmt.Sprintf("rmat(scale=%d, edgefactor=%d, seed=%d)", s.Scale, s.EdgeFactor, s.Seed)
	case "erdosrenyi":
		return fmt.Sprintf("erdosrenyi(vertices=%d, edges=%d, seed=%d)", s.Vertices, s.Edges, s.Seed)
	case "grid":
		return fmt.Sprintf("grid(width=%d, height=%d, seed=%d)", s.Width, s.Height, s.Seed)
	case "bipartite":
		return fmt.Sprintf("bipartite(users=%d, items=%d, ratings=%d, seed=%d)", s.Users, s.Items, s.Ratings, s.Seed)
	}
	return "unknown"
}

// Load produces the adjacency triples the source describes.
func (s Source) Load() (*sparse.COO[float32], error) {
	return s.LoadWorkers(0)
}

// LoadWorkers is Load with an explicit ingestion worker count for file
// sources (0 = GOMAXPROCS, 1 = sequential); generators are unaffected.
func (s Source) LoadWorkers(workers int) (*sparse.COO[float32], error) {
	if s.Path != "" && s.Generator != "" {
		return nil, fmt.Errorf("graph source: path and generator are mutually exclusive")
	}
	if s.Path != "" {
		return graphmat.LoadFileOptions(s.Path, graphmat.LoadOptions{Parallelism: workers})
	}
	switch s.Generator {
	case "rmat":
		if s.Scale <= 0 || s.Scale > 30 {
			return nil, fmt.Errorf("rmat: scale must be in [1, 30], got %d", s.Scale)
		}
		return gen.RMAT(gen.RMATOptions{Scale: s.Scale, EdgeFactor: s.EdgeFactor, Seed: s.Seed, MaxWeight: s.MaxWeight}), nil
	case "erdosrenyi":
		if s.Vertices == 0 || s.Edges <= 0 {
			return nil, fmt.Errorf("erdosrenyi: vertices and edges are required")
		}
		return gen.ErdosRenyi(s.Vertices, s.Edges, s.MaxWeight, s.Seed), nil
	case "grid":
		if s.Width == 0 || s.Height == 0 {
			return nil, fmt.Errorf("grid: width and height are required")
		}
		return gen.Grid(gen.GridOptions{Width: s.Width, Height: s.Height, MaxWeight: s.MaxWeight, Seed: s.Seed}), nil
	case "bipartite":
		if s.Users == 0 || s.Items == 0 || s.Ratings <= 0 {
			return nil, fmt.Errorf("bipartite: users, items and ratings are required")
		}
		return gen.Bipartite(gen.BipartiteOptions{Users: s.Users, Items: s.Items, Ratings: s.Ratings, MaxRating: s.MaxWeight, Seed: s.Seed}), nil
	case "":
		return nil, fmt.Errorf("graph source: path or generator is required")
	default:
		return nil, fmt.Errorf("unknown generator %q (want rmat, erdosrenyi, grid or bipartite)", s.Generator)
	}
}

// ParseSourceSpec parses the compact command-line form of a Source: either a
// bare file path ("web.mtx") or "generator:key=value,key=value"
// ("rmat:scale=12,edgefactor=16,seed=7").
func ParseSourceSpec(spec string) (Source, error) {
	head, rest, found := strings.Cut(spec, ":")
	switch head {
	case "rmat", "erdosrenyi", "grid", "bipartite":
	default:
		return Source{Path: spec}, nil
	}
	src := Source{Generator: head}
	if !found || rest == "" {
		return src, fmt.Errorf("generator spec %q needs key=value options", spec)
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return src, fmt.Errorf("malformed option %q in %q", kv, spec)
		}
		// Seed spans the full uint64 range (matching the JSON path); the
		// structural options are 32-bit.
		bits := 32
		if key == "seed" {
			bits = 64
		}
		n, err := strconv.ParseUint(val, 10, bits)
		if err != nil {
			return src, fmt.Errorf("option %s in %q: %v", key, spec, err)
		}
		switch key {
		case "scale":
			src.Scale = int(n)
		case "edgefactor":
			src.EdgeFactor = int(n)
		case "vertices":
			src.Vertices = uint32(n)
		case "edges":
			src.Edges = int(n)
		case "width":
			src.Width = uint32(n)
		case "height":
			src.Height = uint32(n)
		case "users":
			src.Users = uint32(n)
		case "items":
			src.Items = uint32(n)
		case "ratings":
			src.Ratings = int(n)
		case "maxweight":
			src.MaxWeight = int(n)
		case "seed":
			src.Seed = n
		default:
			return src, fmt.Errorf("unknown option %q in %q", key, spec)
		}
	}
	return src, nil
}
