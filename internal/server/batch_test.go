package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"graphmat"
	"graphmat/algorithms"
)

// splitNDJSON splits a response body into its non-empty NDJSON lines.
func splitNDJSON(t *testing.T, body []byte) [][]byte {
	t.Helper()
	var lines [][]byte
	for _, ln := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(ln)) > 0 {
			lines = append(lines, ln)
		}
	}
	return lines
}

// Tests of the v1 API surface: versioned routing with deprecation aliases,
// the unified run endpoint's scalar/batch forms, and the admission batcher's
// coalescing differential — coalesced responses must be payload-identical
// (values, epoch) to uncoalesced ones.

// TestV1RoutingAndDeprecation checks that every endpoint answers under /v1
// without deprecation markers and under its legacy alias with them.
func TestV1RoutingAndDeprecation(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	for _, path := range []string{"/healthz", "/algorithms", "/graphs", "/graphs/g", "/stats"} {
		legacy, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		legacy.Body.Close()
		if legacy.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, legacy.StatusCode)
		}
		if legacy.Header.Get("Deprecation") != "true" {
			t.Fatalf("GET %s: missing Deprecation header", path)
		}
		if want := `</v1` + path + `>; rel="successor-version"`; legacy.Header.Get("Link") != want {
			t.Fatalf("GET %s: Link = %q, want %q", path, legacy.Header.Get("Link"), want)
		}
		v1, err := http.Get(ts.URL + "/v1" + path)
		if err != nil {
			t.Fatal(err)
		}
		v1.Body.Close()
		if v1.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1%s = %d", path, v1.StatusCode)
		}
		if v1.Header.Get("Deprecation") != "" {
			t.Fatalf("GET /v1%s: v1 route must not be deprecated", path)
		}
	}

	// The legacy run endpoint is aliased too, bit-identical either way.
	legacy := runAlgo(t, ts, "g", "bfs", map[string]any{"source": 3})
	code, body := do(t, ts, http.MethodPost, "/v1/graphs/g/run/bfs", map[string]any{"source": 3})
	if code != http.StatusOK {
		t.Fatalf("v1 aliased run = %d: %s", code, body)
	}
	var v1run runReply
	if err := json.Unmarshal(body, &v1run); err != nil {
		t.Fatal(err)
	}
	for v := range legacy.Values {
		if legacy.Values[v] != v1run.Values[v] {
			t.Fatalf("vertex %d: legacy %v vs v1 %v", v, legacy.Values[v], v1run.Values[v])
		}
	}
}

// TestOpenAPIDocument sanity-checks GET /v1/openapi.json: well-formed, all
// v1 paths present, and the run schema's algorithm enum tracks the registry.
func TestOpenAPIDocument(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := do(t, ts, http.MethodGet, "/v1/openapi.json", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/openapi.json = %d", code)
	}
	var doc struct {
		OpenAPI string         `json:"openapi"`
		Paths   map[string]any `json:"paths"`
		Comp    struct {
			Schemas struct {
				RunRequest struct {
					Properties struct {
						Algo struct {
							Enum []string `json:"enum"`
						} `json:"algo"`
					} `json:"properties"`
				} `json:"RunRequest"`
			} `json:"schemas"`
		} `json:"components"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decoding openapi document: %v", err)
	}
	if doc.OpenAPI == "" {
		t.Fatal("missing openapi version field")
	}
	for _, p := range []string{
		"/v1/healthz", "/v1/stats", "/v1/algorithms", "/v1/graphs",
		"/v1/graphs/{name}", "/v1/graphs/{name}/edges",
		"/v1/graphs/{name}/run", "/v1/graphs/{name}/run/{algo}", "/v1/openapi.json",
	} {
		if _, ok := doc.Paths[p]; !ok {
			t.Fatalf("path %s missing from openapi document (have %d paths)", p, len(doc.Paths))
		}
	}
	names := algorithms.Names()
	if len(doc.Comp.Schemas.RunRequest.Properties.Algo.Enum) != len(names) {
		t.Fatalf("algo enum = %v, registry has %v", doc.Comp.Schemas.RunRequest.Properties.Algo.Enum, names)
	}
}

type batchReply struct {
	Graph     string         `json:"graph"`
	Algorithm string         `json:"algorithm"`
	Sources   []uint32       `json:"sources"`
	Values    [][]float64    `json:"values"`
	Stats     graphmat.Stats `json:"stats"`
	Epoch     uint64         `json:"epoch"`
}

// TestRunV1Unified exercises the unified endpoint's forms: scalar params,
// multi-source batch (bit-identical per source to direct scalar runs), and
// the error paths.
func TestRunV1Unified(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	// Scalar form: params in the body document, no sources.
	code, body := do(t, ts, http.MethodPost, "/v1/graphs/g/run",
		map[string]any{"algo": "bfs", "params": map[string]any{"source": 3}})
	if code != http.StatusOK {
		t.Fatalf("scalar v1 run = %d: %s", code, body)
	}
	var scalar runReply
	if err := json.Unmarshal(body, &scalar); err != nil {
		t.Fatal(err)
	}
	expectBitIdentical(t, scalar, direct(t, "bfs", algorithms.Params{Source: 3}))

	// Multi-source form: every algorithm that declares Batchable, against
	// per-source direct oracles.
	sources := []uint32{0, 3, 7, 11, 19}
	for _, algo := range []string{"bfs", "sssp", "ppr", "reachability", "widest"} {
		req := map[string]any{"algo": algo, "sources": sources}
		if algo == "ppr" {
			req["params"] = map[string]any{"iters": 10}
		}
		code, body := do(t, ts, http.MethodPost, "/v1/graphs/g/run", req)
		if code != http.StatusOK {
			t.Fatalf("%s batch run = %d: %s", algo, code, body)
		}
		var batch batchReply
		if err := json.Unmarshal(body, &batch); err != nil {
			t.Fatal(err)
		}
		if len(batch.Values) != len(sources) {
			t.Fatalf("%s: %d series for %d sources", algo, len(batch.Values), len(sources))
		}
		for i, src := range sources {
			want := direct(t, algo, algorithms.Params{Source: src, Iterations: 10})
			for v := range want.Values {
				if batch.Values[i][v] != want.Values[v] {
					t.Fatalf("%s source %d vertex %d: got %v, want %v", algo, src, v, batch.Values[i][v], want.Values[v])
				}
			}
		}
	}

	// Error paths.
	cases := []struct {
		name string
		req  map[string]any
		want int
	}{
		{"unknown algorithm", map[string]any{"algo": "nope"}, http.StatusNotFound},
		{"non-batchable with sources", map[string]any{"algo": "pagerank", "sources": []int{1, 2}}, http.StatusBadRequest},
		{"bad mode", map[string]any{"algo": "bfs", "mode": "sideways", "sources": []int{1}}, http.StatusBadRequest},
		{"bad param", map[string]any{"algo": "bfs", "params": map[string]any{"bogus": 1}}, http.StatusBadRequest},
		{"negative timeout", map[string]any{"algo": "bfs", "timeout_ms": -5}, http.StatusBadRequest},
		{"source out of range", map[string]any{"algo": "bfs", "sources": []int{1 << 20}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := do(t, ts, http.MethodPost, "/v1/graphs/g/run", tc.req)
		if code != tc.want {
			t.Fatalf("%s: code %d (%s), want %d", tc.name, code, body, tc.want)
		}
	}
}

// TestRunV1Coalescing is the serving half of the batching differential:
// concurrent single-source v1 requests must coalesce into shared block runs
// AND return exactly the payload (values, epoch) an uncoalesced server
// produces. A generous window guarantees the burst lands in one batch even
// on slow single-core CI; the uncoalesced oracle runs with batching disabled.
func TestRunV1Coalescing(t *testing.T) {
	srv := New(Config{BatchWindow: 300 * time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	addTestGraph(t, ts, "g")

	solo := New(Config{BatchWindow: -1}) // coalescing disabled: width-1 batches
	soloTS := httptest.NewServer(solo)
	t.Cleanup(soloTS.Close)
	addTestGraph(t, soloTS, "g")

	sources := []uint32{0, 3, 6, 9, 12, 15, 18, 21}
	type v1Reply struct {
		runReply
		Coalesced bool   `json:"coalesced"`
		Epoch     uint64 `json:"epoch"`
	}
	replies := make([]v1Reply, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src uint32) {
			defer wg.Done()
			code, body := do(t, ts, http.MethodPost, "/v1/graphs/g/run",
				map[string]any{"algo": "bfs", "sources": []uint32{src}})
			if code != http.StatusOK {
				t.Errorf("source %d: code %d: %s", src, code, body)
				return
			}
			if err := json.Unmarshal(body, &replies[i]); err != nil {
				t.Error(err)
			}
		}(i, src)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	anyCoalesced := false
	for i, src := range sources {
		// Uncoalesced oracle: same request against the batching-disabled
		// server; payloads must match on values and epoch. (Stats legitimately
		// differ — a coalesced run's stats aggregate the whole batch.)
		code, body := do(t, soloTS, http.MethodPost, "/v1/graphs/g/run",
			map[string]any{"algo": "bfs", "sources": []uint32{src}})
		if code != http.StatusOK {
			t.Fatalf("solo source %d: code %d: %s", src, code, body)
		}
		var want v1Reply
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		if want.Coalesced {
			t.Fatalf("source %d: batching-disabled server reported coalescing", src)
		}
		if len(replies[i].Values) != len(want.Values) {
			t.Fatalf("source %d: %d values vs %d", src, len(replies[i].Values), len(want.Values))
		}
		for v := range want.Values {
			if replies[i].Values[v] != want.Values[v] {
				t.Fatalf("source %d vertex %d: coalesced %v != uncoalesced %v", src, v, replies[i].Values[v], want.Values[v])
			}
		}
		if replies[i].Epoch != want.Epoch {
			t.Fatalf("source %d: epoch %d vs %d", src, replies[i].Epoch, want.Epoch)
		}
		anyCoalesced = anyCoalesced || replies[i].Coalesced
	}
	if !anyCoalesced {
		t.Fatal("no request reported coalescing despite the concurrent burst")
	}

	// The admission layer's own accounting: 8 admitted, fewer engine runs.
	bs := srv.batcher.stats()
	if bs.Submitted != int64(len(sources)) {
		t.Fatalf("batcher submitted = %d, want %d", bs.Submitted, len(sources))
	}
	if bs.Batches >= int64(len(sources)) {
		t.Fatalf("batcher ran %d batches for %d requests: nothing coalesced", bs.Batches, len(sources))
	}
	if bs.Coalesced == 0 {
		t.Fatal("batcher recorded no coalesced requests")
	}

	// And the per-instance tallies surface the batching.
	g, err := srv.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()["bfs"]
	if st.BatchRuns == 0 || st.BatchedSources != int64(len(sources)) {
		t.Fatalf("bfs batch tallies = %+v, want %d sources over fewer runs", st, len(sources))
	}
}

// TestRunV1SingleSourceDisabledBatcher pins the width-1 fallback: with
// coalescing off, a sources=[v] request still answers in the scalar shape,
// bit-identical to the direct run.
func TestRunV1SingleSourceDisabledBatcher(t *testing.T) {
	srv := New(Config{BatchWindow: -1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	addTestGraph(t, ts, "g")

	code, body := do(t, ts, http.MethodPost, "/v1/graphs/g/run",
		map[string]any{"algo": "sssp", "sources": []int{5}})
	if code != http.StatusOK {
		t.Fatalf("run = %d: %s", code, body)
	}
	var reply runReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	expectBitIdentical(t, reply, direct(t, "sssp", algorithms.Params{Source: 5}))
}

// TestRunV1BatchStream checks the streaming batch form: progress lines then
// a final batch-shaped line, values bit-identical per source.
func TestRunV1BatchStream(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	code, body := do(t, ts, http.MethodPost, "/v1/graphs/g/run",
		map[string]any{"algo": "bfs", "sources": []int{2, 4}, "stream": true})
	if code != http.StatusOK {
		t.Fatalf("stream run = %d: %s", code, body)
	}
	lines := splitNDJSON(t, body)
	if len(lines) < 2 {
		t.Fatalf("expected progress + final lines, got %d", len(lines))
	}
	var final batchReply
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil {
		t.Fatalf("decoding final line: %v", err)
	}
	if len(final.Values) != 2 {
		t.Fatalf("final line has %d series, want 2", len(final.Values))
	}
	for i, src := range []uint32{2, 4} {
		want := direct(t, "bfs", algorithms.Params{Source: src})
		for v := range want.Values {
			if final.Values[i][v] != want.Values[v] {
				t.Fatalf("source %d vertex %d: got %v, want %v", src, v, final.Values[i][v], want.Values[v])
			}
		}
	}
}
