package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
	"graphmat/internal/sparse"
)

const (
	testScale = 6
	testSeed  = 99
)

func testAdj() *sparse.COO[float32] {
	return gen.RMAT(gen.RMATOptions{Scale: testScale, EdgeFactor: 8, Seed: testSeed, MaxWeight: 10})
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func addTestGraph(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	code, body := do(t, ts, http.MethodPost, "/graphs", map[string]any{
		"name": name, "generator": "rmat", "scale": testScale, "edgefactor": 8, "seed": testSeed, "maxweight": 10,
	})
	if code != http.StatusCreated {
		t.Fatalf("POST /graphs = %d: %s", code, body)
	}
}

// do sends a request with an optional JSON body and returns status + body.
func do(t *testing.T, ts *httptest.Server, method, path string, body any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

type runReply struct {
	Graph     string               `json:"graph"`
	Algorithm string               `json:"algorithm"`
	Cached    bool                 `json:"cached"`
	Values    []float64            `json:"values"`
	Series    map[string][]float64 `json:"series"`
	Count     *int64               `json:"count"`
	Stats     graphmat.Stats       `json:"stats"`
}

func runAlgo(t *testing.T, ts *httptest.Server, graph, algo string, params map[string]any) runReply {
	t.Helper()
	code, body := do(t, ts, http.MethodPost, "/graphs/"+graph+"/run/"+algo, params)
	if code != http.StatusOK {
		t.Fatalf("run %s: %d: %s", algo, code, body)
	}
	var reply runReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("decoding %s reply: %v", algo, err)
	}
	return reply
}

// direct computes the expected result by calling the algorithms package the
// way a library user would, on an identical copy of the registered graph.
func direct(t *testing.T, algo string, params algorithms.Params) algorithms.Result {
	t.Helper()
	spec, ok := algorithms.Lookup(algo)
	if !ok {
		t.Fatalf("unknown algorithm %s", algo)
	}
	inst, err := spec.Build(testAdj(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Run(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func expectBitIdentical(t *testing.T, reply runReply, want algorithms.Result) {
	t.Helper()
	if len(reply.Values) != len(want.Values) {
		t.Fatalf("values length %d, want %d", len(reply.Values), len(want.Values))
	}
	for v := range want.Values {
		if reply.Values[v] != want.Values[v] {
			t.Fatalf("vertex %d: got %v, want %v", v, reply.Values[v], want.Values[v])
		}
	}
	for name, series := range want.Series {
		got := reply.Series[name]
		if len(got) != len(series) {
			t.Fatalf("series %s length %d, want %d", name, len(got), len(series))
		}
		for v := range series {
			if got[v] != series[v] {
				t.Fatalf("series %s vertex %d: got %v, want %v", name, v, got[v], series[v])
			}
		}
	}
	if (reply.Count == nil) != (want.Count == nil) {
		t.Fatal("count presence mismatch")
	}
	if want.Count != nil && *reply.Count != *want.Count {
		t.Fatalf("count = %d, want %d", *reply.Count, *want.Count)
	}
}

// TestServeAllAlgorithms runs every registered algorithm over HTTP and
// checks the responses against direct algorithms-package calls bit for bit.
func TestServeAllAlgorithms(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	cases := []struct {
		algo   string
		http   map[string]any
		params algorithms.Params
	}{
		{"pagerank", map[string]any{"iters": 15}, algorithms.Params{Iterations: 15}},
		{"bfs", map[string]any{"source": 3}, algorithms.Params{Source: 3}},
		{"sssp", map[string]any{"source": 7}, algorithms.Params{Source: 7}},
		{"components", nil, algorithms.Params{}},
		{"ppr", map[string]any{"sources": []int{1, 2}, "iters": 10}, algorithms.Params{Sources: []uint32{1, 2}, Iterations: 10}},
		{"triangles", nil, algorithms.Params{}},
		{"hits", map[string]any{"iters": 6}, algorithms.Params{Iterations: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.algo, func(t *testing.T) {
			reply := runAlgo(t, ts, "g", tc.algo, tc.http)
			expectBitIdentical(t, reply, direct(t, tc.algo, tc.params))
		})
	}
}

// TestConcurrentRequests fires 20 concurrent queries (4 algorithms x 5
// sources/variants) against one registered graph and checks every response
// matches the direct algorithms call bit for bit, then verifies the
// workspace pool served the runs instead of per-request allocation.
func TestConcurrentRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	type query struct {
		algo   string
		http   map[string]any
		params algorithms.Params
	}
	var queries []query
	for i := 0; i < 5; i++ {
		src := uint32(i * 3)
		queries = append(queries,
			query{"bfs", map[string]any{"source": src}, algorithms.Params{Source: src}},
			query{"sssp", map[string]any{"source": src}, algorithms.Params{Source: src}},
			query{"pagerank", map[string]any{"iters": 5 + i}, algorithms.Params{Iterations: 5 + i}},
			query{"components", nil, algorithms.Params{}},
		)
	}
	if len(queries) < 16 {
		t.Fatalf("need at least 16 concurrent queries, have %d", len(queries))
	}

	// Expected results, computed sequentially before the concurrent burst.
	want := make([]algorithms.Result, len(queries))
	for i, q := range queries {
		want[i] = direct(t, q.algo, q.params)
	}

	replies := make([]runReply, len(queries))
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = runAlgo(t, ts, "g", queries[i].algo, queries[i].http)
		}(i)
	}
	wg.Wait()

	for i := range queries {
		expectBitIdentical(t, replies[i], want[i])
	}

	// The identical "components" queries may be served from the result
	// cache; every computed run must have gone through the pool. Because
	// runs on one instance serialize, the pool never needs more than one
	// workspace per (graph, algorithm) — so allocations must be far below
	// the run count, proving scratch reuse rather than per-request
	// allocation.
	g, err := srv.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	var runs, allocs int64
	for algo, st := range g.Stats() {
		if st.Runs == 0 {
			t.Fatalf("%s: no runs recorded", algo)
		}
		runs += st.Runs
		allocs += st.WorkspaceAllocs
		if st.WorkspaceAllocs > st.Runs {
			t.Fatalf("%s: %d workspace allocs for %d runs", algo, st.WorkspaceAllocs, st.Runs)
		}
	}
	if runs < 16 {
		t.Fatalf("expected at least 16 computed runs, got %d", runs)
	}
	if allocs >= runs {
		t.Fatalf("workspace pool not in use: %d allocs for %d runs", allocs, runs)
	}
	// bfs ran 5 distinct sources under one serialized instance: pooled
	// scratch must have served several of them (sync.Pool may shed an item
	// across a GC cycle, so assert reuse rather than exactly one alloc).
	bfs := g.Stats()["bfs"]
	if bfs.Runs != 5 {
		t.Fatalf("bfs runs = %d, want 5", bfs.Runs)
	}
	if bfs.WorkspaceAllocs >= bfs.Runs {
		t.Fatalf("bfs workspace allocs = %d for %d runs, want pool reuse", bfs.WorkspaceAllocs, bfs.Runs)
	}
}

// TestResultCache checks that a repeated query is served from the LRU cache
// with identical values.
func TestResultCache(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	first := runAlgo(t, ts, "g", "bfs", map[string]any{"source": 2})
	if first.Cached {
		t.Fatal("first run should not be cached")
	}
	second := runAlgo(t, ts, "g", "bfs", map[string]any{"source": 2})
	if !second.Cached {
		t.Fatal("second identical run should be cached")
	}
	for v := range first.Values {
		if first.Values[v] != second.Values[v] {
			t.Fatalf("vertex %d: cached %v != computed %v", v, second.Values[v], first.Values[v])
		}
	}
	// Different thread counts share one cache entry (results are
	// deterministic across thread counts).
	third := runAlgo(t, ts, "g", "bfs", map[string]any{"source": 2, "threads": 2})
	if !third.Cached {
		t.Fatal("thread count must not fragment the cache")
	}

	var stats struct {
		Cache cacheStats `json:"cache"`
	}
	_, body := do(t, ts, http.MethodGet, "/stats", nil)
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits < 2 || stats.Cache.Size == 0 {
		t.Fatalf("cache stats = %+v, want >=2 hits and nonzero size", stats.Cache)
	}
}

// TestGraphLifecycle exercises register / list / get / delete and the cache
// invalidation on delete.
func TestGraphLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	if code, _ := do(t, ts, http.MethodGet, "/graphs/none", nil); code != http.StatusNotFound {
		t.Fatalf("GET missing graph = %d, want 404", code)
	}
	addTestGraph(t, ts, "g")
	if code, body := do(t, ts, http.MethodPost, "/graphs", map[string]any{"name": "g", "generator": "rmat", "scale": 4}); code != http.StatusConflict {
		t.Fatalf("duplicate register = %d: %s", code, body)
	}

	code, body := do(t, ts, http.MethodGet, "/graphs", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /graphs = %d", code)
	}
	var list struct {
		Graphs []graphInfo `json:"graphs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "g" || list.Graphs[0].Vertices != 1<<testScale {
		t.Fatalf("list = %+v", list.Graphs)
	}

	runAlgo(t, ts, "g", "components", nil)
	if code, _ = do(t, ts, http.MethodDelete, "/graphs/g", nil); code != http.StatusOK {
		t.Fatalf("DELETE = %d", code)
	}
	if code, _ = do(t, ts, http.MethodDelete, "/graphs/g", nil); code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", code)
	}
	if code, _ = do(t, ts, http.MethodPost, "/graphs/g/run/components", nil); code != http.StatusNotFound {
		t.Fatalf("run on deleted graph = %d, want 404", code)
	}

	// Re-register under the same name: the invalidated cache must not
	// serve the old graph's results.
	addTestGraph(t, ts, "g")
	if reply := runAlgo(t, ts, "g", "components", nil); reply.Cached {
		t.Fatal("cache survived graph deletion")
	}
}

// TestBadRequests covers the API's error paths.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown algorithm", http.MethodPost, "/graphs/g/run/nope", nil, http.StatusNotFound},
		{"unknown param", http.MethodPost, "/graphs/g/run/pagerank", map[string]any{"bogus": 1}, http.StatusBadRequest},
		{"wrong param type", http.MethodPost, "/graphs/g/run/bfs", map[string]any{"source": "x"}, http.StatusBadRequest},
		{"source out of range", http.MethodPost, "/graphs/g/run/bfs", map[string]any{"source": 1 << 20}, http.StatusBadRequest},
		{"param not accepted", http.MethodPost, "/graphs/g/run/components", map[string]any{"source": 1}, http.StatusBadRequest},
		{"missing source", http.MethodPost, "/graphs", map[string]any{"name": "h"}, http.StatusBadRequest},
		{"bad generator", http.MethodPost, "/graphs", map[string]any{"name": "h", "generator": "mystery"}, http.StatusBadRequest},
		{"empty name", http.MethodPost, "/graphs", map[string]any{"generator": "rmat", "scale": 4}, http.StatusBadRequest},
		{"unknown body field", http.MethodPost, "/graphs", map[string]any{"name": "h", "generator": "rmat", "scale": 4, "wat": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, ts, tc.method, tc.path, tc.body)
			if code != tc.want {
				t.Fatalf("%s %s = %d (%s), want %d", tc.method, tc.path, code, body, tc.want)
			}
		})
	}
}

// TestStatsEndpoint checks the /stats shape: per-endpoint request tallies,
// per-algorithm engine stats and counter proxies.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")
	runAlgo(t, ts, "g", "pagerank", map[string]any{"iters": 5})
	runAlgo(t, ts, "g", "bfs", map[string]any{"source": 0})

	code, body := do(t, ts, http.MethodGet, "/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	var stats struct {
		UptimeSeconds float64               `json:"uptime_seconds"`
		Requests      map[string]int64      `json:"requests"`
		Graphs        map[string]GraphStats `json:"graphs"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests["POST /graphs/{name}/run/{algo}"] != 2 {
		t.Fatalf("run endpoint tally = %d, want 2 (%v)", stats.Requests["POST /graphs/{name}/run/{algo}"], stats.Requests)
	}
	if stats.Requests["POST /graphs"] != 1 {
		t.Fatalf("register tally = %v", stats.Requests)
	}
	if stats.Graphs["g"].Epoch != 0 || stats.Graphs["g"].UpdatesApplied != 0 {
		t.Fatalf("pristine graph reports update traffic: %+v", stats.Graphs["g"])
	}
	pr := stats.Graphs["g"].Algorithms["pagerank"]
	if pr.Runs != 1 || pr.Engine.Iterations != 5 || pr.Counters.WorkItems == 0 {
		t.Fatalf("pagerank stats = %+v", pr)
	}
	bfs := stats.Graphs["g"].Algorithms["bfs"]
	if bfs.Runs != 1 || bfs.Engine.EdgesProcessed == 0 {
		t.Fatalf("bfs stats = %+v", bfs)
	}
}

// TestHealthz sanity-checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := do(t, ts, http.MethodGet, "/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", code, body)
	}
}

// TestAlgorithmsEndpoint checks the discovery listing.
func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := do(t, ts, http.MethodGet, "/algorithms", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /algorithms = %d", code)
	}
	var list struct {
		Algorithms []algorithmInfo `json:"algorithms"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Algorithms) != len(algorithms.Names()) {
		t.Fatalf("listed %d algorithms, registry has %d", len(list.Algorithms), len(algorithms.Names()))
	}
	found := false
	for _, a := range list.Algorithms {
		if a.Name == "bfs" {
			found = true
			if len(a.Params) == 0 || a.Params[0].Name != "source" || a.Params[0].Kind != "uint" {
				t.Fatalf("bfs params = %+v", a.Params)
			}
		}
	}
	if !found {
		t.Fatal("bfs missing from listing")
	}
}

// TestLoadFromFile registers a graph from an .mtx file written to disk.
func TestLoadFromFile(t *testing.T) {
	_, ts := newTestServer(t)
	path := t.TempDir() + "/tiny.mtx"
	mtx := "%%MatrixMarket matrix coordinate real general\n4 4 4\n1 2 1.0\n2 3 2.0\n3 4 1.5\n4 1 1.0\n"
	if err := os.WriteFile(path, []byte(mtx), 0o644); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, ts, http.MethodPost, "/graphs", map[string]any{"name": "tiny", "path": path})
	if code != http.StatusCreated {
		t.Fatalf("POST /graphs = %d: %s", code, body)
	}
	reply := runAlgo(t, ts, "tiny", "sssp", map[string]any{"source": 0})
	want := []float64{0, 1, 3, 4.5}
	for v := range want {
		if reply.Values[v] != want[v] {
			t.Fatalf("sssp[%d] = %v, want %v", v, reply.Values[v], want[v])
		}
	}
}
