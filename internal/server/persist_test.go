package server

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"graphmat/algorithms"
	"graphmat/internal/snap"
	"graphmat/internal/sparse"
)

// persistTestAdj builds a small connected graph with some weight variety.
func persistTestAdj(n uint32) *sparse.COO[float32] {
	adj := sparse.NewCOO[float32](n, n)
	for i := uint32(0); i < n; i++ {
		adj.Add(i, (i+1)%n, float32(i%5)+1)
		adj.Add(i, (i*7+3)%n, float32(i%3)+0.5)
	}
	return adj
}

func persistTestBatches() [][]algorithms.EdgeUpdate {
	return [][]algorithms.EdgeUpdate{
		{
			{Src: 0, Dst: 31, Val: 2},
			{Src: 31, Dst: 0, Val: 3},
			{Src: 5, Dst: 40, Val: 4},
		},
		{
			{Src: 0, Dst: 31, Del: true},
			{Src: 9, Dst: 10, Val: 8},
			{Src: 5, Dst: 40, Val: 5}, // upsert of the just-inserted edge
		},
	}
}

// mustParseSource is a Source whose path does not exist: registering it can
// only succeed through the mmap boot path, so tests passing it prove the
// restart never re-parsed.
func mustNotParseSource(dir string) Source {
	return Source{Path: filepath.Join(dir, "does-not-exist.mtx")}
}

func sameValues(t *testing.T, what string, ref, got []float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(ref))
	}
	for v := range ref {
		if math.Float64bits(ref[v]) != math.Float64bits(got[v]) {
			t.Fatalf("%s: value[%d] = %v, want %v", what, v, got[v], ref[v])
		}
	}
}

// TestPersistRestartRoundTrip is the registry-level persistence round trip:
// register, build instances, apply batches, then boot a second registry from
// the same data directory (with a source that cannot be parsed, proving the
// mmap path) and check epoch, counters and bit-identical query results.
func TestPersistRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(0, 1, dir)
	entry, err := reg.AddCOO("g", "seed", persistTestAdj(64))
	if err != nil {
		t.Fatal(err)
	}
	if ps := entry.PersistStats(); !ps.Enabled || ps.Boot != "created" || ps.Checkpoints != 1 {
		t.Fatalf("registration stats = %+v", ps)
	}

	// Two built instances (one symmetrized, one directed) so the restart has
	// instance snapshots to open.
	if _, err := entry.Run("bfs", algorithms.Params{Source: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := entry.Run("pagerank", algorithms.Params{Iterations: 10}); err != nil {
		t.Fatal(err)
	}
	for i, b := range persistTestBatches() {
		epoch, _, err := entry.ApplyEdges(b)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != uint64(i+1) {
			t.Fatalf("batch %d produced epoch %d", i, epoch)
		}
	}
	refBFS, err := entry.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	refPR, err := entry.Run("pagerank", algorithms.Params{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ps := entry.PersistStats(); ps.WALBatches != 2 || ps.WALRecords != 6 {
		t.Fatalf("WAL counters = %+v, want 2 batches / 6 records", ps)
	}

	// Restart: a new registry over the same directory.
	reg2 := NewRegistry(0, 1, dir)
	entry2, err := reg2.Add("g", mustNotParseSource(dir))
	if err != nil {
		t.Fatal(err)
	}
	ps := entry2.PersistStats()
	if ps.Boot != "snapshot+wal" {
		t.Errorf("boot = %q, want snapshot+wal", ps.Boot)
	}
	if ps.ReplayedBatches != 2 || ps.ReplayedRecords != 6 {
		t.Errorf("replay counters = %+v, want 2 batches / 6 records", ps)
	}
	if entry2.Epoch() != entry.Epoch() || entry2.UpdatesApplied() != entry.UpdatesApplied() {
		t.Errorf("restart state = (epoch %d, updates %d), want (%d, %d)",
			entry2.Epoch(), entry2.UpdatesApplied(), entry.Epoch(), entry.UpdatesApplied())
	}
	if entry2.NumEdges() != entry.NumEdges() {
		t.Errorf("edge count = %d, want %d", entry2.NumEdges(), entry.NumEdges())
	}
	// Both instances must come back from their snapshots, not lazy rebuilds.
	if got := entry2.BuiltAlgorithms(); len(got) != 2 || got[0] != "bfs" || got[1] != "pagerank" {
		t.Errorf("built after boot = %v, want [bfs pagerank]", got)
	}

	gotBFS, err := entry2.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, "bfs after restart", refBFS.Values, gotBFS.Values)
	gotPR, err := entry2.Run("pagerank", algorithms.Params{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, "pagerank after restart", refPR.Values, gotPR.Values)

	// The restarted entry keeps accepting (and logging) updates.
	epoch, _, err := entry2.ApplyEdges([]algorithms.EdgeUpdate{{Src: 1, Dst: 50, Val: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 3 {
		t.Errorf("post-restart batch produced epoch %d, want 3", epoch)
	}
	if ps := entry2.PersistStats(); ps.WALBatches != 3 {
		t.Errorf("WAL batches after post-restart append = %d, want 3 (2 replayed + 1 new)", ps.WALBatches)
	}
}

// TestPersistTornSnapshotFallback damages the current generation's master
// snapshot and asserts boot falls back to the previous generation, replays
// both WALs without double-applying, heals with a fresh checkpoint, and
// serves bit-identical results.
func TestPersistTornSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(0, 1, dir)
	entry, err := reg.AddCOO("g", "seed", persistTestAdj(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := entry.Run("bfs", algorithms.Params{Source: 0}); err != nil {
		t.Fatal(err)
	}
	batches := persistTestBatches()
	if _, _, err := entry.ApplyEdges(batches[0]); err != nil {
		t.Fatal(err)
	}
	// Rotate the generation by hand so there is a current (tag 1) and a
	// previous (tag 0) to fall back to.
	entry.updMu.Lock()
	err = entry.pers.checkpoint(entry)
	entry.updMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// One more batch after the rotation: it lives only in the new WAL.
	if _, _, err := entry.ApplyEdges(batches[1]); err != nil {
		t.Fatal(err)
	}
	ref, err := entry.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}

	// Tear the current generation's master snapshot.
	gdir := filepath.Join(dir, "g")
	man, err := snap.ReadManifest(gdir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Tag != 1 || man.Prev == nil || man.Prev.Tag != 0 {
		t.Fatalf("manifest generations = %d/%v, want 1 with prev 0", man.Tag, man.Prev)
	}
	masterPath := filepath.Join(gdir, man.Files["master"])
	data, err := os.ReadFile(masterPath)
	if err != nil {
		t.Fatal(err)
	}
	data[16] ^= 0xFF // header field guarded by the header CRC
	if err := os.WriteFile(masterPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry(0, 1, dir)
	entry2, err := reg2.Add("g", mustNotParseSource(dir))
	if err != nil {
		t.Fatal(err)
	}
	ps := entry2.PersistStats()
	if ps.Boot != "fallback" {
		t.Errorf("boot = %q, want fallback", ps.Boot)
	}
	// Previous generation (tag 0) + both WALs: batch 1 from the old log,
	// batch 2 from the new one, each exactly once.
	if ps.ReplayedBatches != 2 {
		t.Errorf("replayed %d batches, want 2 (one per WAL, no double-apply)", ps.ReplayedBatches)
	}
	if entry2.Epoch() != 2 {
		t.Errorf("epoch after fallback = %d, want 2", entry2.Epoch())
	}
	got, err := entry2.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, "bfs after fallback", ref.Values, got.Values)
	// The heal checkpoint replaced the torn generation: a third boot takes
	// the fast path again.
	if ps.Checkpoints == 0 {
		t.Error("fallback boot did not heal with a fresh checkpoint")
	}
	reg3 := NewRegistry(0, 1, dir)
	entry3, err := reg3.Add("g", mustNotParseSource(dir))
	if err != nil {
		t.Fatal(err)
	}
	if ps := entry3.PersistStats(); ps.Boot != "snapshot" {
		t.Errorf("boot after heal = %q, want snapshot", ps.Boot)
	}
	got3, err := entry3.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, "bfs after heal", ref.Values, got3.Values)
}

// TestPersistCheckpointOnCompaction drives enough churn through a persistent
// entry to trigger store compaction and asserts the generation rotates on its
// own (the OnCompact → dirty → checkpoint chain) and that the WAL restarts
// empty afterwards.
func TestPersistCheckpointOnCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(0, 1, dir)
	entry, err := reg.AddCOO("g", "seed", persistTestAdj(48))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := entry.Run("bfs", algorithms.Params{Source: 0}); err != nil {
		t.Fatal(err)
	}
	before := entry.PersistStats().Checkpoints

	x := uint64(99)
	for i := 0; i < 12; i++ {
		var b []algorithms.EdgeUpdate
		for j := 0; j < 64; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			b = append(b, algorithms.EdgeUpdate{
				Src: uint32(x>>33) % 48, Dst: uint32(x>>13) % 48,
				Val: float32(i + 1), Del: x%4 == 0,
			})
		}
		if _, _, err := entry.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	ps := entry.PersistStats()
	if ps.Checkpoints <= before {
		t.Fatalf("churn did not rotate the generation: %+v (instance store: %+v)",
			ps, entry.Stats()["bfs"].Store)
	}
	if ps.CheckpointErrors != 0 {
		t.Errorf("checkpoint errors: %+v", ps)
	}
	// The current WAL holds only batches accepted after the last rotation.
	if ps.WALBatches >= 12 {
		t.Errorf("WAL not rotated: %d batches still held", ps.WALBatches)
	}
	if ps.Tag == 0 {
		t.Errorf("generation tag still 0 after %d batches", 12)
	}

	// And the rotated state must boot clean.
	reg2 := NewRegistry(0, 1, dir)
	entry2, err := reg2.Add("g", mustNotParseSource(dir))
	if err != nil {
		t.Fatal(err)
	}
	if entry2.Epoch() != 12 {
		t.Errorf("epoch after reboot = %d, want 12", entry2.Epoch())
	}
	ref, err := entry.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := entry2.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, "bfs after compaction reboot", ref.Values, got.Values)
}

// TestPersistStatsSurface asserts /v1/stats carries the persist block only
// for persistent graphs.
func TestPersistStatsSurface(t *testing.T) {
	vol := NewRegistry(0, 1, "")
	entry, err := vol.AddCOO("g", "seed", persistTestAdj(16))
	if err != nil {
		t.Fatal(err)
	}
	if ps := entry.PersistStats(); ps.Enabled {
		t.Errorf("volatile entry reports persistence: %+v", ps)
	}
	var zero PersistStats
	if entry.PersistStats() != zero {
		t.Errorf("volatile entry stats = %+v, want zero value", entry.PersistStats())
	}

	graphmatDir := t.TempDir()
	per := NewRegistry(0, 1, graphmatDir)
	pentry, err := per.AddCOO("g", "seed", persistTestAdj(16))
	if err != nil {
		t.Fatal(err)
	}
	ps := pentry.PersistStats()
	if !ps.Enabled || ps.Boot != "created" {
		t.Errorf("persistent entry stats = %+v", ps)
	}
}
