package server

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/counters"
	"graphmat/internal/graph"
	"graphmat/internal/snap"
	"graphmat/internal/sparse"
)

// Registry is the server's concurrent-safe table of loaded graphs. Each
// entry keeps the raw adjacency triples as an immutable master copy;
// algorithm-specific property graphs (which preprocess the edges in place)
// are built lazily from clones and cached per algorithm, each with its own
// workspace pool.
type Registry struct {
	partitions int
	workers    int
	dataDir    string // persistence root; empty = in-memory only
	mu         sync.RWMutex
	graphs     map[string]*GraphEntry
}

// NewRegistry returns an empty registry. partitions is passed to every graph
// build; 0 selects the engine default. workers is the ingestion parallelism
// for file-backed sources; 0 means GOMAXPROCS. dataDir, when non-empty, is
// the persistence root: each graph gets <dataDir>/<name> with GMATSNAP
// checkpoints and a write-ahead log, and registration of a name that already
// has a valid manifest boots from the mmap'd snapshots instead of parsing.
func NewRegistry(partitions, workers int, dataDir string) *Registry {
	return &Registry{partitions: partitions, workers: workers, dataDir: dataDir, graphs: make(map[string]*GraphEntry)}
}

// GraphEntry is one registered graph. The master adjacency is the raw edge
// set's source of truth: normalized (row-major sorted, deduplicated) at
// registration and replaced wholesale by each update batch, so readers
// (lazy instance builds, update translation lookups) always see a complete
// epoch. Per-algorithm property graphs are versioned stores; an update batch
// fans out to every built instance through its own preprocessing.
type GraphEntry struct {
	name       string
	source     string
	partitions int
	workers    int

	// updMu serializes whole update batches (master swap + instance
	// fan-out) so every instance sees batches in the same order.
	updMu sync.Mutex

	adjMu   sync.RWMutex
	adj     *sparse.COO[float32] // normalized master; replaced, never mutated
	epoch   uint64
	updates int64 // raw edge updates applied over the entry's lifetime

	mu    sync.Mutex
	insts map[string]*algoInstance

	// pers, when non-nil, makes the entry durable: WAL-before-ack on every
	// update batch, compaction-driven checkpoints, mmap boot. Set before the
	// entry is published, never changed after.
	pers *persister
}

// algoInstance is one built (graph, algorithm) pair: the property graph, a
// sync.Pool of engine workspaces reused across queries, and run tallies. Run
// serializes on runMu because the engine mutates the property graph's vertex
// state; the workspace pool means back-to-back queries reuse scratch instead
// of paying two vertex-sized allocations each (the RedisGraph-style shared
// engine state this server exists to provide).
type algoInstance struct {
	spec algorithms.Spec
	inst algorithms.Instance

	runMu  sync.Mutex
	pool   sync.Pool
	allocs atomic.Int64 // workspaces created by the pool
	runs   atomic.Int64

	// batchRuns counts multi-source block runs; batchedSources the total
	// source columns they advanced. batchedSources / batchRuns is the mean
	// batch width — the serving-side view of how well admission batching and
	// explicit multi-source requests amortize adjacency sweeps.
	batchRuns      atomic.Int64
	batchedSources atomic.Int64

	statsMu sync.Mutex
	engine  graphmat.Stats
	wall    float64 // seconds spent inside the engine
}

// record accumulates one completed run's engine stats and wall time into the
// instance tallies.
func (ai *algoInstance) record(s graphmat.Stats, wall float64) {
	ai.statsMu.Lock()
	ai.engine.Iterations += s.Iterations
	ai.engine.MessagesSent += s.MessagesSent
	ai.engine.EdgesProcessed += s.EdgesProcessed
	ai.engine.Applies += s.Applies
	ai.engine.ActiveSum += s.ActiveSum
	ai.engine.ColumnsProbed += s.ColumnsProbed
	ai.engine.PushSupersteps += s.PushSupersteps
	ai.engine.PullSupersteps += s.PullSupersteps
	ai.wall += wall
	ai.statsMu.Unlock()
}

// Errors distinguished by the HTTP layer.
var (
	ErrGraphExists   = fmt.Errorf("graph already registered")
	ErrGraphNotFound = fmt.Errorf("graph not found")
	ErrAlgoNotFound  = fmt.Errorf("algorithm not found")
)

// CheckName rejects unusable or already-taken graph names. Callers about to
// pay for a load or an upload parse should call it first; AddCOO re-checks
// under the lock, so this is a fast-fail, not the authority.
func (r *Registry) CheckName(name string) error {
	if name == "" || strings.ContainsAny(name, "\x00/") {
		return fmt.Errorf("invalid graph name %q", name)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, dup := r.graphs[name]; dup {
		return fmt.Errorf("%w: %s", ErrGraphExists, name)
	}
	return nil
}

// Add loads a source and registers it under name. The name is validated
// before the load so a bad or duplicate name cannot waste a multi-gigabyte
// file parse. With persistence enabled, a name whose directory holds a valid
// manifest boots from the mmap'd snapshots (plus WAL replay) instead of
// parsing the source; a damaged persisted state falls back to parsing.
func (r *Registry) Add(name string, src Source) (*GraphEntry, error) {
	if err := r.CheckName(name); err != nil {
		return nil, err
	}
	if r.dataDir != "" {
		dir := filepath.Join(r.dataDir, name)
		if snap.HasManifest(dir) {
			entry, err := r.openPersisted(name, src.Describe(), dir)
			if err == nil {
				return r.publish(entry)
			}
			// Unrecoverable persisted state: re-parse the source below and
			// let the registration's fresh checkpoint overwrite it.
		}
	}
	adj, err := src.LoadWorkers(r.workers)
	if err != nil {
		return nil, err
	}
	return r.AddCOO(name, src.Describe(), adj)
}

// publish registers a fully assembled entry under its name.
func (r *Registry) publish(entry *GraphEntry) (*GraphEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.graphs[entry.name]; dup {
		if entry.pers != nil {
			entry.pers.closeAll()
		}
		return nil, fmt.Errorf("%w: %s", ErrGraphExists, entry.name)
	}
	r.graphs[entry.name] = entry
	return entry, nil
}

// AddCOO registers already-parsed adjacency triples under name — the upload
// path, where the edges arrived in the request body rather than from a
// Source. The entry lazily builds per-algorithm property graphs and workspace
// pools exactly like a Source-loaded graph. The triples are normalized in
// place into the canonical master form (every builder deduplicates the same
// way, so results are unchanged); edge updates then apply by linear merge.
func (r *Registry) AddCOO(name, source string, adj *sparse.COO[float32]) (*GraphEntry, error) {
	if name == "" || strings.ContainsAny(name, "\x00/") {
		return nil, fmt.Errorf("invalid graph name %q", name)
	}
	graph.NormalizeAdjacency(adj, r.workers)
	entry := &GraphEntry{
		name:       name,
		source:     source,
		adj:        adj,
		partitions: r.partitions,
		workers:    r.workers,
		insts:      make(map[string]*algoInstance),
	}
	if r.dataDir != "" {
		// Registration is the entry's first durability point: master
		// snapshot, empty WAL, CURRENT pointer. A name that cannot be made
		// durable is rejected rather than silently registered volatile.
		if err := r.initPersist(entry); err != nil {
			return nil, err
		}
	}
	return r.publish(entry)
}

// Get looks a graph up by name.
func (r *Registry) Get(name string) (*GraphEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	entry, ok := r.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrGraphNotFound, name)
	}
	return entry, nil
}

// Has reports whether the exact entry is still registered (used to avoid
// caching results of a graph deleted mid-run).
func (r *Registry) Has(entry *GraphEntry) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.graphs[entry.name] == entry
}

// Remove unregisters a graph; in-flight runs on the entry finish normally.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrGraphNotFound, name)
	}
	delete(r.graphs, name)
	return nil
}

// Names returns the registered graph names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.graphs))
	for n := range r.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the graph's registered name.
func (g *GraphEntry) Name() string { return g.name }

// Source describes where the graph came from.
func (g *GraphEntry) Source() string { return g.source }

// NumVertices reports the raw graph's vertex count (fixed across updates).
func (g *GraphEntry) NumVertices() uint32 {
	g.adjMu.RLock()
	defer g.adjMu.RUnlock()
	return g.adj.NRows
}

// NumEdges reports the current raw edge count (before per-algorithm
// preprocessing).
func (g *GraphEntry) NumEdges() int {
	g.adjMu.RLock()
	defer g.adjMu.RUnlock()
	return g.adj.NNZ()
}

// Epoch reports the entry's raw edge-set version: 0 at registration, +1 per
// applied update batch. Instances built after updates landed start life
// already containing them (their own store epochs count batches applied to
// the instance, not the entry).
func (g *GraphEntry) Epoch() uint64 {
	g.adjMu.RLock()
	defer g.adjMu.RUnlock()
	return g.epoch
}

// UpdatesApplied reports the total raw edge updates the entry has absorbed.
func (g *GraphEntry) UpdatesApplied() int64 {
	g.adjMu.RLock()
	defer g.adjMu.RUnlock()
	return g.updates
}

// ApplyEdges applies one batch of raw edge updates to the entry: the master
// adjacency advances one epoch and every BUILT per-algorithm property graph
// receives the batch through its own preprocessing (a new store snapshot —
// queries in flight keep the epoch they pinned; workspace pools survive, as
// updates never change the vertex count). Instances built later start from
// the updated master, so built-before and built-after converge on the same
// edge set; re-application races during a concurrent lazy build are benign
// because batch application is idempotent (upserts and deletes are
// last-write-wins). Returns the entry's new epoch and per-instance results.
func (g *GraphEntry) ApplyEdges(batch []algorithms.EdgeUpdate) (uint64, map[string]graphmat.ApplyResult, error) {
	g.updMu.Lock()
	defer g.updMu.Unlock()

	g.adjMu.RLock()
	cur := g.adj
	curEpoch := g.epoch
	g.adjMu.RUnlock()
	next, err := graph.ApplyToAdjacency(cur, batch)
	if err != nil {
		return 0, nil, err
	}
	// Durability point: the validated batch goes to the write-ahead log —
	// fsynced — BEFORE any in-memory state advances. A crash after this line
	// replays the batch at boot; a crash before it never acknowledged the
	// batch. A batch that cannot be logged is rejected whole, leaving every
	// structure at the old epoch.
	if g.pers != nil {
		if err := g.pers.logBatch(curEpoch+1, batch); err != nil {
			return 0, nil, err
		}
	}
	// Ordering matters for the epoch-keyed result cache: the master swaps
	// first (lazy instance builds and lookups must see the post-batch edge
	// set), the ENTRY EPOCH advances LAST, after every built instance has
	// the batch. A run that reads the new epoch therefore always pins a
	// post-batch snapshot, so nothing stale can ever be cached under the
	// new epoch's key. The reverse window is benign: a run that read the
	// OLD epoch may cache a result of either side of the batch under the
	// old key, which becomes unreachable the moment the epoch advances and
	// is swept by the caller's invalidation.
	g.adjMu.Lock()
	g.adj = next
	g.adjMu.Unlock()

	lookup := algorithms.NewRawEdgeLookup(next)
	g.mu.Lock()
	insts := make(map[string]*algoInstance, len(g.insts))
	for n, ai := range g.insts {
		insts[n] = ai
	}
	g.mu.Unlock()
	results := make(map[string]graphmat.ApplyResult, len(insts))
	var fanErr error
	for name, ai := range insts {
		res, err := ai.inst.ApplyUpdates(batch, lookup)
		if err != nil {
			// The master already advanced and earlier instances applied;
			// surface the divergence loudly rather than hiding it, but
			// still advance the epoch below — the raw edge set DID change,
			// and leaving the epoch behind would let post-batch results be
			// cached under the old key forever. (With ids validated by
			// ApplyToAdjacency above, translation cannot fail in practice.)
			fanErr = fmt.Errorf("applying updates to %s/%s: %w", g.name, name, err)
			break
		}
		results[name] = res
	}
	g.adjMu.Lock()
	g.epoch++
	g.updates += int64(len(batch))
	epoch := g.epoch
	g.adjMu.Unlock()
	// If the batch compacted some instance's overlay (the OnCompact hooks
	// set the dirty flag), rotate the generation while still under updMu:
	// snapshot files at this epoch, fresh WAL, atomic CURRENT flip. The WAL
	// the batch just landed in is retired only after its contents are in the
	// snapshots.
	if g.pers != nil {
		g.pers.maybeCheckpoint(g)
	}
	return epoch, results, fanErr
}

// BuiltAlgorithms returns the algorithms with a built property graph, sorted.
func (g *GraphEntry) BuiltAlgorithms() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.insts))
	for n := range g.insts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// instance returns the built (graph, algorithm) pair, building it on first
// use. The build consumes a clone, so the master adjacency stays pristine
// for the other algorithms' preprocessing. On a persistent entry a fresh
// build is captured into the current generation so the next boot opens it
// instead of rebuilding.
func (g *GraphEntry) instance(algo string) (*algoInstance, error) {
	ai, built, err := g.lockedInstance(algo)
	if err != nil {
		return nil, err
	}
	if built && g.pers != nil {
		// Outside g.mu (the capture takes the update lock, which nests
		// outside the instance lock everywhere else).
		g.updMu.Lock()
		g.pers.onBuild(g, algo, ai)
		g.updMu.Unlock()
	}
	return ai, nil
}

// lockedInstance is instance's cache-or-build core; built reports whether
// this call performed the build.
func (g *GraphEntry) lockedInstance(algo string) (*algoInstance, bool, error) {
	spec, ok := algorithms.Lookup(algo)
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrAlgoNotFound, algo)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if ai, ok := g.insts[algo]; ok {
		return ai, false, nil
	}
	g.adjMu.RLock()
	adj := g.adj.Clone()
	g.adjMu.RUnlock()
	inst, err := spec.Build(adj, g.partitions)
	if err != nil {
		return nil, false, fmt.Errorf("building %s graph for %s: %w", algo, g.name, err)
	}
	ai := &algoInstance{spec: spec, inst: inst}
	ai.pool.New = func() any {
		ai.allocs.Add(1)
		return ai.inst.NewScratch()
	}
	g.insts[algo] = ai
	return ai, true, nil
}

// Run executes one query. It serializes on the instance (vertex state is
// shared), drives the engine through a pooled workspace, and accumulates the
// run's engine stats into the instance tallies.
func (g *GraphEntry) Run(algo string, p algorithms.Params) (algorithms.Result, error) {
	return g.RunContext(context.Background(), algo, p, nil)
}

// RunContext is Run under a context: when ctx is canceled — a client
// disconnect, a per-request timeout — the engine aborts cooperatively
// mid-run, releasing the instance lock for the next query; a canceled run's
// workspace is still recycled (the engine leaves scratch reusable). obs,
// when non-nil, receives one progress report per superstep while the run is
// in flight.
func (g *GraphEntry) RunContext(ctx context.Context, algo string, p algorithms.Params, obs algorithms.Observer) (algorithms.Result, error) {
	ai, err := g.instance(algo)
	if err != nil {
		return algorithms.Result{}, err
	}
	ai.runMu.Lock()
	defer ai.runMu.Unlock()
	scratch := ai.pool.Get()
	start := time.Now()
	res, err := ai.inst.RunContext(ctx, p, scratch, obs)
	wall := time.Since(start).Seconds()
	if rs, ok := scratch.(interface{ Reset() }); ok {
		rs.Reset() // stale messages must not leak into the next query
	}
	ai.pool.Put(scratch)
	if err != nil {
		return res, err
	}
	ai.runs.Add(1)
	ai.record(res.Stats, wall)
	return res, nil
}

// RunBatch executes one multi-source query: k independent single-source runs
// advanced as one block run on one pinned snapshot, per-source results
// bit-identical to k Run calls. Like RunContext it serializes on the instance
// and accumulates engine stats; block scratch is allocated per run (the
// pooled scalar workspaces do not fit the n×k layout). Algorithms without a
// source parameter return algorithms.ErrBatchUnsupported.
func (g *GraphEntry) RunBatch(ctx context.Context, algo string, p algorithms.Params, obs algorithms.Observer) (algorithms.BatchResult, error) {
	ai, err := g.instance(algo)
	if err != nil {
		return algorithms.BatchResult{}, err
	}
	ai.runMu.Lock()
	defer ai.runMu.Unlock()
	start := time.Now()
	res, err := ai.inst.RunBatch(ctx, p, obs)
	if err != nil {
		return res, err
	}
	ai.batchRuns.Add(1)
	ai.batchedSources.Add(int64(len(res.Sources)))
	ai.record(res.Stats, time.Since(start).Seconds())
	return res, nil
}

// RunBatchPinned is RunBatch against a snapshot the caller pinned earlier
// with the instance's AcquirePin — the admission batcher's path, where the
// epoch promised at admission must be the epoch the run executes on. The
// pin stays owned by the caller.
func (g *GraphEntry) RunBatchPinned(ctx context.Context, algo string, pin algorithms.Pin, p algorithms.Params, obs algorithms.Observer) (algorithms.BatchResult, error) {
	ai, err := g.instance(algo)
	if err != nil {
		return algorithms.BatchResult{}, err
	}
	ai.runMu.Lock()
	defer ai.runMu.Unlock()
	start := time.Now()
	res, err := ai.inst.RunBatchPinned(ctx, pin, p, obs)
	if err != nil {
		return res, err
	}
	ai.batchRuns.Add(1)
	ai.batchedSources.Add(int64(len(res.Sources)))
	ai.record(res.Stats, time.Since(start).Seconds())
	return res, nil
}

// AlgoStats is the /stats view of one (graph, algorithm) pair.
type AlgoStats struct {
	Runs int64 `json:"runs"`
	// BatchRuns counts multi-source block runs; BatchedSources the source
	// columns they carried (their ratio is the mean batch width).
	BatchRuns      int64 `json:"batch_runs"`
	BatchedSources int64 `json:"batched_sources"`
	// WorkspaceAllocs counts workspaces the pool actually created; runs
	// beyond this number reused pooled scratch. Pools survive edge updates
	// (the vertex count is fixed), so this should stay flat under update
	// traffic.
	WorkspaceAllocs int64          `json:"workspace_allocs"`
	Engine          graphmat.Stats `json:"engine"`
	Counters        counters.Set   `json:"counters"`
	// Store is the instance's versioned-store view: snapshot epoch, overlay
	// size, compactions, pinned snapshots.
	Store graphmat.StoreStats `json:"store"`
}

// Stats snapshots the per-algorithm tallies for this graph.
func (g *GraphEntry) Stats() map[string]AlgoStats {
	g.mu.Lock()
	insts := make(map[string]*algoInstance, len(g.insts))
	for n, ai := range g.insts {
		insts[n] = ai
	}
	g.mu.Unlock()

	out := make(map[string]AlgoStats, len(insts))
	for n, ai := range insts {
		ai.statsMu.Lock()
		engine, wall := ai.engine, ai.wall
		ai.statsMu.Unlock()
		out[n] = AlgoStats{
			Runs:            ai.runs.Load(),
			BatchRuns:       ai.batchRuns.Load(),
			BatchedSources:  ai.batchedSources.Load(),
			WorkspaceAllocs: ai.allocs.Load(),
			Engine:          engine,
			Counters:        counterSet(engine, wall),
			Store:           ai.inst.StoreStats(),
		}
	}
	return out
}

// counterSet maps engine stats onto the internal/counters proxies (the
// shared Figure 6 mapping), plus the measured wall time so bandwidth and
// work-rate axes are defined.
func counterSet(s graphmat.Stats, wall float64) counters.Set {
	return counters.FromEngine(s.MessagesSent, s.EdgesProcessed, s.Applies, s.ColumnsProbed, wall)
}
