package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"graphmat"
	"graphmat/algorithms"
)

// slowGraph registers an RMAT graph big enough that an uncapped PageRank run
// takes many seconds — the workload the cancellation tests interrupt.
func slowGraph(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	code, body := do(t, ts, http.MethodPost, "/graphs", map[string]any{
		"name": name, "generator": "rmat", "scale": 14, "edgefactor": 8, "seed": testSeed,
	})
	if code != http.StatusCreated {
		t.Fatalf("POST /graphs = %d: %s", code, body)
	}
}

// TestStreamMatchesBlocking runs the same PageRank query once blocking and
// once with stream=1, and checks the NDJSON stream: one progress line per
// superstep with strictly increasing iteration numbers, then a final line
// whose values match the blocking response bit for bit.
func TestStreamMatchesBlocking(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	blocking := runAlgo(t, ts, "g", "pagerank", map[string]any{"iters": 7})

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(map[string]any{"iters": 7}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/graphs/g/run/pagerank?stream=1", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var progress []streamProgress
	var final *runReply
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			break
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", raw, err)
		}
		if _, isFinal := probe["graph"]; isFinal {
			if final != nil {
				t.Fatal("more than one final line")
			}
			final = &runReply{}
			if err := json.Unmarshal(raw, final); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if errMsg, isErr := probe["error"]; isErr {
			t.Fatalf("stream reported error: %s", errMsg)
		}
		if final != nil {
			t.Fatal("progress line after the final line")
		}
		var p streamProgress
		if err := json.Unmarshal(raw, &p); err != nil {
			t.Fatal(err)
		}
		progress = append(progress, p)
	}
	if final == nil {
		t.Fatal("stream ended without a final line")
	}

	if len(progress) != blocking.Stats.Iterations {
		t.Fatalf("%d progress lines for %d supersteps", len(progress), blocking.Stats.Iterations)
	}
	for i, p := range progress {
		if p.Iteration != i+1 {
			t.Fatalf("progress[%d].Iteration = %d, want strictly increasing from 1", i, p.Iteration)
		}
		if p.Active == 0 {
			t.Fatalf("progress[%d] has empty frontier", i)
		}
	}
	if final.Stats.Reason != blocking.Stats.Reason || final.Stats.Iterations != blocking.Stats.Iterations {
		t.Fatalf("final stats %+v != blocking stats %+v", final.Stats, blocking.Stats)
	}
	if len(final.Values) != len(blocking.Values) {
		t.Fatalf("final has %d values, blocking %d", len(final.Values), len(blocking.Values))
	}
	for v := range blocking.Values {
		if final.Values[v] != blocking.Values[v] {
			t.Fatalf("vertex %d: stream %v != blocking %v", v, final.Values[v], blocking.Values[v])
		}
	}

	// The streamed result was published to the cache: the same blocking
	// query must now be served from it.
	if again := runAlgo(t, ts, "g", "pagerank", map[string]any{"iters": 7}); !again.Cached {
		t.Fatal("streamed result not cached")
	}
}

// TestRunTimeoutMS checks that a per-request timeout_ms aborts a long run
// with 504 instead of letting it occupy the instance.
func TestRunTimeoutMS(t *testing.T) {
	_, ts := newTestServer(t)
	slowGraph(t, ts, "big")

	start := time.Now()
	code, body := do(t, ts, http.MethodPost,
		"/graphs/big/run/pagerank?timeout_ms=150", map[string]any{"iters": 10000000})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", code, body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timed-out run returned after %s", elapsed)
	}

	if code, body := do(t, ts, http.MethodPost, "/graphs/big/run/pagerank?timeout_ms=banana", nil); code != http.StatusBadRequest {
		t.Fatalf("bad timeout_ms = %d (%s), want 400", code, body)
	}
}

// TestClientDisconnectCancelsRun starts a run that would take minutes,
// disconnects the client, and proves the engine aborted by running a second
// query on the same (graph, algorithm) instance — runs serialize on the
// instance lock, so the second query completing quickly means the first one
// let go.
func TestClientDisconnectCancelsRun(t *testing.T) {
	_, ts := newTestServer(t)
	slowGraph(t, ts, "big")

	// Build the pagerank instance up front so the abandoned request's time
	// is spent inside the engine, not the graph build.
	runAlgo(t, ts, "big", "pagerank", map[string]any{"iters": 1})

	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(map[string]any{"iters": 10000000}); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/graphs/big/run/pagerank", &buf)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	go func() {
		close(started)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	time.Sleep(300 * time.Millisecond) // let the run get going
	cancel()                           // client walks away

	// The follow-up query blocks on the same instance lock until the
	// abandoned run aborts; without cancellation it would wait for all ten
	// million supersteps.
	done := make(chan runReply, 1)
	go func() { done <- runAlgo(t, ts, "big", "pagerank", map[string]any{"iters": 2}) }()
	select {
	case reply := <-done:
		if reply.Stats.Iterations != 2 {
			t.Fatalf("follow-up ran %d supersteps, want 2", reply.Stats.Iterations)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("follow-up query still blocked 30s after the disconnect: run was not canceled")
	}
}

// TestRegistryRunContextReason checks the typed stop reason surfaces through
// the server registry's context path.
func TestRegistryRunContextReason(t *testing.T) {
	srv, ts := newTestServer(t)
	addTestGraph(t, ts, "g")
	g, err := srv.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}

	params := algorithms.Params{Iterations: 3}
	res, err := g.RunContext(context.Background(), "pagerank", params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Reason != graphmat.MaxIterations {
		t.Fatalf("Reason = %v, want max_iterations", res.Stats.Reason)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = g.RunContext(ctx, "pagerank", params, nil)
	if !errors.Is(err, context.Canceled) || res.Stats.Reason != graphmat.Canceled {
		t.Fatalf("pre-canceled run: err = %v, Reason = %v", err, res.Stats.Reason)
	}
}
