package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

// uploadBody POSTs raw bytes to /graphs with upload query parameters.
func uploadBody(t *testing.T, ts *httptest.Server, name, format string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost,
		fmt.Sprintf("%s/graphs?name=%s&format=%s", ts.URL, name, format), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

// encodeTestGraph renders the shared test adjacency in each upload format.
func encodeTestGraph(t *testing.T, format string) []byte {
	t.Helper()
	adj := testAdj()
	var buf bytes.Buffer
	switch format {
	case "mtx":
		if err := graph.WriteMTX(&buf, adj); err != nil {
			t.Fatal(err)
		}
	case "edgelist":
		for _, e := range adj.Entries {
			fmt.Fprintf(&buf, "%d %d %g\n", e.Row, e.Col, e.Val)
		}
		// The edge list infers the vertex count from the max id; pad with a
		// comment noting it plus a self-edge on the last vertex if absent.
		fmt.Fprintf(&buf, "%d %d 1\n", adj.NRows-1, adj.NRows-1)
	case "bin":
		if err := graph.WriteBinary2(&buf, adj, 4); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown format %s", format)
	}
	return buf.Bytes()
}

// TestUploadFormatsMatchBootLoaded is the acceptance check: POST /graphs
// upload → /run must return results identical to the same graph registered at
// boot, for every upload format.
func TestUploadFormatsMatchBootLoaded(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "boot")
	want := runAlgo(t, ts, "boot", "pagerank", map[string]any{"iters": 10})

	for _, format := range []string{"mtx", "bin"} {
		name := "up-" + format
		code, body := uploadBody(t, ts, name, format, encodeTestGraph(t, format))
		if code != http.StatusCreated {
			t.Fatalf("upload %s = %d: %s", format, code, body)
		}
		got := runAlgo(t, ts, name, "pagerank", map[string]any{"iters": 10})
		if len(got.Values) != len(want.Values) {
			t.Fatalf("%s: %d values, want %d", format, len(got.Values), len(want.Values))
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("%s: value[%d] = %v, want %v", format, i, got.Values[i], want.Values[i])
			}
		}
	}

	// The edge list adds one self-loop to pin the vertex count, so compare it
	// against a boot-registered graph with the same extra edge instead.
	srv2, ts2 := newTestServer(t)
	adj := testAdj()
	adj.Add(adj.NRows-1, adj.NRows-1, 1)
	if _, err := srv2.reg.AddCOO("boot", "test", adj); err != nil {
		t.Fatal(err)
	}
	want2 := runAlgo(t, ts2, "boot", "pagerank", map[string]any{"iters": 10})
	code, body := uploadBody(t, ts2, "up-edgelist", "edgelist", encodeTestGraph(t, "edgelist"))
	if code != http.StatusCreated {
		t.Fatalf("upload edgelist = %d: %s", code, body)
	}
	got := runAlgo(t, ts2, "up-edgelist", "pagerank", map[string]any{"iters": 10})
	if len(got.Values) != len(want2.Values) {
		t.Fatalf("edgelist: %d values, want %d", len(got.Values), len(want2.Values))
	}
	for i := range want2.Values {
		if got.Values[i] != want2.Values[i] {
			t.Fatalf("edgelist: value[%d] = %v, want %v", i, got.Values[i], want2.Values[i])
		}
	}
}

func TestUploadLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	code, _ := uploadBody(t, ts, "g", "mtx", encodeTestGraph(t, "mtx"))
	if code != http.StatusCreated {
		t.Fatalf("upload = %d", code)
	}
	// Listed with an upload: source tag.
	code, body := do(t, ts, http.MethodGet, "/graphs/g", nil)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"upload:mtx`)) {
		t.Fatalf("GET /graphs/g = %d: %s", code, body)
	}
	// Duplicate names conflict.
	if code, _ := uploadBody(t, ts, "g", "mtx", encodeTestGraph(t, "mtx")); code != http.StatusConflict {
		t.Fatalf("duplicate upload = %d, want 409", code)
	}
	// DELETE then re-upload works.
	if code, body := do(t, ts, http.MethodDelete, "/graphs/g", nil); code != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", code, body)
	}
	if code, _ := uploadBody(t, ts, "g", "mtx", encodeTestGraph(t, "mtx")); code != http.StatusCreated {
		t.Fatalf("re-upload after delete = %d", code)
	}
}

func TestUploadErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name, url string
		body      string
		wantCode  int
	}{
		{"missing name", "/graphs?format=mtx", "%%MatrixMarket matrix coordinate real general\n1 1 0\n", http.StatusBadRequest},
		{"unknown format", "/graphs?name=g&format=parquet", "x", http.StatusBadRequest},
		{"malformed mtx", "/graphs?name=g&format=mtx", "not a matrix", http.StatusBadRequest},
		{"malformed edgelist", "/graphs?name=g&format=edgelist", "0 nope", http.StatusBadRequest},
		{"malformed binary", "/graphs?name=g&format=bin", "GMATBIN9????", http.StatusBadRequest},
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+tc.url, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: code = %d, want %d", tc.name, resp.StatusCode, tc.wantCode)
		}
	}
	// Parseable but unusable graphs are rejected at POST time, not left in
	// the registry to fail every /run: a non-square MTX, and a binary body
	// whose records point outside the declared vertex count.
	nonSquare := "%%MatrixMarket matrix coordinate real general\n3 2 1\n1 1 1\n"
	if code, body := uploadBody(t, ts, "rect", "mtx", []byte(nonSquare)); code != http.StatusBadRequest {
		t.Errorf("non-square upload = %d: %s", code, body)
	}
	oob := sparse.NewCOO[float32](2, 2)
	oob.Add(0, 5, 1) // col 5 outside a 2-vertex graph
	var oobBuf bytes.Buffer
	if err := graph.WriteBinary(&oobBuf, oob); err != nil {
		t.Fatal(err)
	}
	if code, body := uploadBody(t, ts, "oob", "bin", oobBuf.Bytes()); code != http.StatusBadRequest {
		t.Errorf("out-of-bounds binary upload = %d: %s", code, body)
	}
	for _, name := range []string{"rect", "oob"} {
		if code, _ := do(t, ts, http.MethodGet, "/graphs/"+name, nil); code != http.StatusNotFound {
			t.Errorf("rejected upload %q was registered", name)
		}
	}

	// Oversized uploads are rejected by the configured cap.
	srv := New(Config{MaxUploadBytes: 64})
	ts2 := httptest.NewServer(srv)
	defer ts2.Close()
	big := bytes.Repeat([]byte("0 1\n"), 100)
	code, _ := uploadBody(t, ts2, "big", "edgelist", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload = %d, want 413", code)
	}
}
