package server

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"graphmat/algorithms"
)

// resultCache is an LRU cache of algorithm results keyed on
// (graph, algorithm, canonical params). Results are immutable once computed
// (the engine is deterministic, including across thread counts), so a hit
// can be served to any client without re-running the engine.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     int64
	misses   int64
}

type cacheItem struct {
	key string
	res algorithms.Result
}

// cacheKey builds the canonical cache key. The graph name goes first so
// invalidation on graph removal or mutation is a prefix scan; \x00 cannot
// appear in names (the registry rejects them). The epoch is part of the key:
// a result computed against one edge-set version can never be served for
// another, even in the window before an update's invalidation sweep runs.
func cacheKey(graph string, epoch uint64, algo string, p algorithms.Params) string {
	return graph + "\x00" + fmt.Sprintf("%d", epoch) + "\x00" + algo + "\x00" + p.Key()
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) (algorithms.Result, bool) {
	if c.capacity <= 0 {
		return algorithms.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return algorithms.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

func (c *resultCache) put(key string, res algorithms.Result) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, res: res})
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
	}
}

// invalidateGraph drops every cached result of the named graph.
func (c *resultCache) invalidateGraph(graph string) {
	prefix := graph + "\x00"
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
		}
	}
}

// cacheStats is the /stats view of the cache.
type cacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.capacity}
}
