package server

import (
	"testing"

	"graphmat/algorithms"
)

func res(v float64) algorithms.Result {
	return algorithms.Result{Values: []float64{v}}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", res(1))
	c.put("b", res(2))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a is now most-recent; adding c evicts b.
	c.put("c", res(3))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if got, ok := c.get("c"); !ok || got.Values[0] != 3 {
		t.Fatalf("c = %v, %v", got, ok)
	}
	st := c.stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newResultCache(2)
	c.put("a", res(1))
	c.put("a", res(9))
	got, ok := c.get("a")
	if !ok || got.Values[0] != 9 {
		t.Fatalf("a = %v, %v", got, ok)
	}
	if st := c.stats(); st.Size != 1 {
		t.Fatalf("size = %d after double put", st.Size)
	}
}

func TestCacheInvalidateGraph(t *testing.T) {
	c := newResultCache(8)
	c.put(cacheKey("g1", 0, "bfs", algorithms.Params{Source: 1}), res(1))
	c.put(cacheKey("g1", 2, "sssp", algorithms.Params{Source: 1}), res(2))
	c.put(cacheKey("g2", 0, "bfs", algorithms.Params{Source: 1}), res(3))
	c.invalidateGraph("g1")
	if _, ok := c.get(cacheKey("g1", 0, "bfs", algorithms.Params{Source: 1})); ok {
		t.Fatal("g1/bfs survived invalidation")
	}
	if _, ok := c.get(cacheKey("g1", 2, "sssp", algorithms.Params{Source: 1})); ok {
		t.Fatal("g1/sssp survived invalidation (epoch 2)")
	}
	if _, ok := c.get(cacheKey("g2", 0, "bfs", algorithms.Params{Source: 1})); !ok {
		t.Fatal("g2 wrongly invalidated")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("a", res(1))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestCacheKeyDistinguishesGraphEpochAndAlgo(t *testing.T) {
	p := algorithms.Params{Source: 1}
	keys := map[string]bool{
		cacheKey("g1", 0, "bfs", p):                                           true,
		cacheKey("g2", 0, "bfs", p):                                           true,
		cacheKey("g1", 1, "bfs", p):                                           true,
		cacheKey("g1", 0, "sssp", p):                                          true,
		cacheKey("g1", 0, "bfs", algorithms.Params{}):                         true,
		cacheKey("g1", 0, "bfs", algorithms.Params{Source: 1, Iterations: 3}): true,
	}
	if len(keys) != 6 {
		t.Fatalf("cache keys collide: %v", keys)
	}
}
