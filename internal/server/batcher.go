package server

import (
	"context"
	"sync"
	"time"

	"graphmat"
	"graphmat/algorithms"
)

// The admission/batching layer of the v1 run API. Concurrent single-source
// requests for the same (graph, algorithm, epoch, non-source parameters) are
// coalesced into one multi-source block run — the k requests share every
// adjacency sweep instead of paying k of them — and the per-source columns
// fan back out to the waiting requests. Because the block engine is
// bit-identical per source to the scalar engine, coalescing is invisible to
// clients except in latency: each response carries exactly the values a solo
// run would have produced.
//
// The coalescing window is deliberately short (default 2ms): it exists to
// catch requests that are already in flight together, not to delay lone
// queries hoping company shows up. A batch that reaches the block width
// (graphmat.MaxBlockSources) flushes immediately.

const defaultBatchWindow = 2 * time.Millisecond

// batchKey identifies requests that may share one block run. The epoch is
// part of the key so requests straddling an update batch never share a
// snapshot they would disagree about; the params key has the source stripped
// (that is the dimension being batched over). The epoch is the instance
// store's snapshot epoch, read from the pin taken at admission — the same
// snapshot the flush will run on, so the promise the key makes is the one
// the result keeps.
type batchKey struct {
	g      *GraphEntry
	algo   string
	epoch  uint64
	params string
}

// sharedParamsKey canonicalizes the non-source parameters of a request.
func sharedParamsKey(p algorithms.Params) string {
	p.Source, p.Sources = 0, nil
	return p.Key()
}

// pendingBatch is one open coalescing window: the sources gathered so far,
// the snapshot pin taken when the window opened (the epoch every waiter was
// promised by the batch key), and the completion the waiters block on.
type pendingBatch struct {
	p       algorithms.Params // shared non-source parameters
	pin     algorithms.Pin    // admission-time snapshot; released by flush
	sources []uint32
	flushed bool
	done    chan struct{}
	res     algorithms.BatchResult
	err     error
}

type batcher struct {
	window time.Duration

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch

	// Tallies for GET /stats.
	submitted int64 // single-source requests admitted
	batches   int64 // block runs dispatched
	coalesced int64 // requests that shared a run with at least one other

	// onFlush, when set, observes each dispatched block run's width — a test
	// hook for asserting the admission cap.
	onFlush func(width int)
}

func newBatcher(window time.Duration) *batcher {
	if window == 0 {
		window = defaultBatchWindow
	}
	return &batcher{window: window, pending: make(map[batchKey]*pendingBatch)}
}

// submit admits one single-source request. It joins (or opens) the pending
// batch for the request's key, waits for the coalesced run, and returns this
// request's column as an ordinary single-source Result. The Stats are the
// whole batch's aggregate — batching trades per-request stat attribution for
// shared sweeps. The second return reports whether the run was shared with
// other requests.
//
// ctx bounds only this caller's wait: a coalesced run is not canceled when
// one of its waiters gives up, since the others still want the result.
func (b *batcher) submit(ctx context.Context, g *GraphEntry, algo string, p algorithms.Params) (algorithms.Result, bool, error) {
	ai, err := g.instance(algo)
	if err != nil {
		return algorithms.Result{}, false, err
	}
	// Pin the snapshot BEFORE keying: the epoch in the batch key and the
	// epoch the flush runs against are then the same pinned snapshot by
	// construction, so an update landing inside the open window cannot skew
	// the batch onto a newer edge set than its waiters were promised.
	pin := ai.inst.AcquirePin()
	key := batchKey{g: g, algo: algo, epoch: pin.Epoch(), params: sharedParamsKey(p)}
	b.mu.Lock()
	b.submitted++
	pb, joined := b.pending[key]
	if !joined {
		pb = &pendingBatch{p: p, pin: pin, done: make(chan struct{})}
		b.pending[key] = pb
		time.AfterFunc(b.window, func() { b.flush(key, pb) })
	}
	idx := len(pb.sources)
	pb.sources = append(pb.sources, p.Source)
	full := len(pb.sources) >= graphmat.MaxBlockSources
	if full {
		// Close admission under the SAME lock that detected fullness:
		// removing the batch from pending here means no later submit can
		// append a 65th source in the gap before flush re-locks.
		delete(b.pending, key)
	}
	b.mu.Unlock()
	if joined {
		// The open batch already holds the pin its key promises; this
		// request's own pin was only needed to compute the key.
		pin.Release()
	}
	if full {
		// A full block flushes in the submitting goroutine: the run happens
		// here, and the AfterFunc finds the batch already flushed.
		b.flush(key, pb)
	}
	select {
	case <-pb.done:
	case <-ctx.Done():
		return algorithms.Result{}, false, ctx.Err()
	}
	if pb.err != nil {
		return algorithms.Result{}, false, pb.err
	}
	return algorithms.Result{
		Values: pb.res.Values[idx],
		Stats:  pb.res.Stats,
		Epoch:  pb.res.Epoch,
	}, len(pb.res.Sources) > 1, nil
}

// flush closes the batch's admission window and executes the block run on
// the snapshot pinned at admission, then releases the pin. Idempotent: the
// width-triggered flush and the timer both call it, the first one wins. The
// run uses a background context — see submit.
func (b *batcher) flush(key batchKey, pb *pendingBatch) {
	b.mu.Lock()
	if pb.flushed {
		b.mu.Unlock()
		return
	}
	pb.flushed = true
	if b.pending[key] == pb {
		delete(b.pending, key)
	}
	p := pb.p
	p.Source = 0
	p.Sources = append([]uint32(nil), pb.sources...)
	b.batches++
	if len(p.Sources) > 1 {
		b.coalesced += int64(len(p.Sources))
	}
	onFlush := b.onFlush
	b.mu.Unlock()
	if onFlush != nil {
		onFlush(len(p.Sources))
	}
	pb.res, pb.err = key.g.RunBatchPinned(context.Background(), key.algo, pb.pin, p, nil)
	pb.pin.Release()
	close(pb.done)
}

// batcherStats is the GET /stats view of the admission layer.
type batcherStats struct {
	Submitted int64 `json:"submitted"`
	Batches   int64 `json:"batches"`
	Coalesced int64 `json:"coalesced"`
}

func (b *batcher) stats() batcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return batcherStats{Submitted: b.submitted, Batches: b.batches, Coalesced: b.coalesced}
}
