package server

import (
	"context"
	"sync"
	"time"

	"graphmat"
	"graphmat/algorithms"
)

// The admission/batching layer of the v1 run API. Concurrent single-source
// requests for the same (graph, algorithm, epoch, non-source parameters) are
// coalesced into one multi-source block run — the k requests share every
// adjacency sweep instead of paying k of them — and the per-source columns
// fan back out to the waiting requests. Because the block engine is
// bit-identical per source to the scalar engine, coalescing is invisible to
// clients except in latency: each response carries exactly the values a solo
// run would have produced.
//
// The coalescing window is deliberately short (default 2ms): it exists to
// catch requests that are already in flight together, not to delay lone
// queries hoping company shows up. A batch that reaches the block width
// (graphmat.MaxBlockSources) flushes immediately.

const defaultBatchWindow = 2 * time.Millisecond

// batchKey identifies requests that may share one block run. The epoch is
// part of the key so requests straddling an update batch never share a
// snapshot they would disagree about; the params key has the source stripped
// (that is the dimension being batched over).
type batchKey struct {
	g      *GraphEntry
	algo   string
	epoch  uint64
	params string
}

// sharedParamsKey canonicalizes the non-source parameters of a request.
func sharedParamsKey(p algorithms.Params) string {
	p.Source, p.Sources = 0, nil
	return p.Key()
}

// pendingBatch is one open coalescing window: the sources gathered so far and
// the completion the waiters block on.
type pendingBatch struct {
	p       algorithms.Params // shared non-source parameters
	sources []uint32
	flushed bool
	done    chan struct{}
	res     algorithms.BatchResult
	err     error
}

type batcher struct {
	window time.Duration

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch

	// Tallies for GET /stats.
	submitted int64 // single-source requests admitted
	batches   int64 // block runs dispatched
	coalesced int64 // requests that shared a run with at least one other
}

func newBatcher(window time.Duration) *batcher {
	if window == 0 {
		window = defaultBatchWindow
	}
	return &batcher{window: window, pending: make(map[batchKey]*pendingBatch)}
}

// submit admits one single-source request. It joins (or opens) the pending
// batch for the request's key, waits for the coalesced run, and returns this
// request's column as an ordinary single-source Result. The Stats are the
// whole batch's aggregate — batching trades per-request stat attribution for
// shared sweeps. The second return reports whether the run was shared with
// other requests.
//
// ctx bounds only this caller's wait: a coalesced run is not canceled when
// one of its waiters gives up, since the others still want the result.
func (b *batcher) submit(ctx context.Context, g *GraphEntry, algo string, p algorithms.Params) (algorithms.Result, bool, error) {
	key := batchKey{g: g, algo: algo, epoch: g.Epoch(), params: sharedParamsKey(p)}
	b.mu.Lock()
	b.submitted++
	pb, ok := b.pending[key]
	if !ok {
		pb = &pendingBatch{p: p, done: make(chan struct{})}
		b.pending[key] = pb
		time.AfterFunc(b.window, func() { b.flush(key, pb) })
	}
	idx := len(pb.sources)
	pb.sources = append(pb.sources, p.Source)
	full := len(pb.sources) >= graphmat.MaxBlockSources
	b.mu.Unlock()
	if full {
		// A full block flushes in the submitting goroutine: the run happens
		// here, and the AfterFunc finds the batch already flushed.
		b.flush(key, pb)
	}
	select {
	case <-pb.done:
	case <-ctx.Done():
		return algorithms.Result{}, false, ctx.Err()
	}
	if pb.err != nil {
		return algorithms.Result{}, false, pb.err
	}
	return algorithms.Result{
		Values: pb.res.Values[idx],
		Stats:  pb.res.Stats,
		Epoch:  pb.res.Epoch,
	}, len(pb.res.Sources) > 1, nil
}

// flush closes the batch's admission window and executes the block run.
// Idempotent: the width-triggered flush and the timer both call it, the first
// one wins. The run uses a background context — see submit.
func (b *batcher) flush(key batchKey, pb *pendingBatch) {
	b.mu.Lock()
	if pb.flushed {
		b.mu.Unlock()
		return
	}
	pb.flushed = true
	if b.pending[key] == pb {
		delete(b.pending, key)
	}
	p := pb.p
	p.Source = 0
	p.Sources = append([]uint32(nil), pb.sources...)
	b.batches++
	if len(p.Sources) > 1 {
		b.coalesced += int64(len(p.Sources))
	}
	b.mu.Unlock()
	pb.res, pb.err = key.g.RunBatch(context.Background(), key.algo, p, nil)
	close(pb.done)
}

// batcherStats is the GET /stats view of the admission layer.
type batcherStats struct {
	Submitted int64 `json:"submitted"`
	Batches   int64 `json:"batches"`
	Coalesced int64 `json:"coalesced"`
}

func (b *batcher) stats() batcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return batcherStats{Submitted: b.submitted, Batches: b.batches, Coalesced: b.coalesced}
}
