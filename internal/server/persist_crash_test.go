//go:build unix

package server

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"graphmat/algorithms"
)

// crashChildEnv names the data directory handed to the re-exec'd child. The
// child registers the pre-seeded graph, applies batches — printing
// "ACKED <epoch>" after each accepted one — and then SIGKILLs itself with no
// chance to flush or checkpoint.
const crashChildEnv = "GRAPHMAT_CRASH_DIR"

func TestPersistCrashRecovery(t *testing.T) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		persistCrashChild(dir)
		return
	}

	// Seed the directory in-process: registration writes generation 0.
	dir := t.TempDir()
	reg := NewRegistry(0, 1, dir)
	entry, err := reg.AddCOO("g", "seed", persistTestAdj(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := entry.Run("bfs", algorithms.Params{Source: 0}); err != nil {
		t.Fatal(err)
	}

	// Re-exec this test binary as the crashing process.
	cmd := exec.Command(os.Args[0], "-test.run", "TestPersistCrashRecovery$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child exited cleanly; it was supposed to SIGKILL itself\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("child did not die by SIGKILL: %v\n%s", err, out)
	}
	var acked []uint64
	for sc := bufio.NewScanner(strings.NewReader(string(out))); sc.Scan(); {
		if e, found := strings.CutPrefix(strings.TrimSpace(sc.Text()), "ACKED "); found {
			n, err := strconv.ParseUint(e, 10, 64)
			if err != nil {
				t.Fatalf("bad ack line %q: %v", sc.Text(), err)
			}
			acked = append(acked, n)
		}
	}
	if len(acked) != 2 || acked[0] != 1 || acked[1] != 2 {
		t.Fatalf("child acked %v, want [1 2]\n%s", acked, out)
	}

	// Recovery: every acked batch must be there; nothing else may be.
	reg2 := NewRegistry(0, 1, dir)
	entry2, err := reg2.Add("g", mustNotParseSource(dir))
	if err != nil {
		t.Fatal(err)
	}
	ps := entry2.PersistStats()
	if ps.Boot != "snapshot+wal" {
		t.Errorf("boot = %q, want snapshot+wal (acked batches live only in the WAL)", ps.Boot)
	}
	if entry2.Epoch() != acked[len(acked)-1] {
		t.Errorf("recovered epoch %d, want %d: an acked batch was lost", entry2.Epoch(), acked[len(acked)-1])
	}
	if ps.ReplayedBatches != int64(len(acked)) {
		t.Errorf("replayed %d batches, want %d", ps.ReplayedBatches, len(acked))
	}
	// The recovered state is queryable and matches an oracle built fresh from
	// the same seed + batches.
	oracleReg := NewRegistry(0, 1, "")
	oracle, err := oracleReg.AddCOO("g", "seed", persistTestAdj(64))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range persistTestBatches() {
		if _, _, err := oracle.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := oracle.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := entry2.Run("bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, "bfs after crash recovery", ref.Values, got.Values)
}

// persistCrashChild is the process under test: it boots from the seeded
// directory, applies the update batches (each ack printed only after
// ApplyEdges returned, i.e. after the WAL fsync), then dies mid-flight.
func persistCrashChild(dir string) {
	reg := NewRegistry(0, 1, dir)
	entry, err := reg.Add("g", mustNotParseSource(dir))
	if err != nil {
		fmt.Println("CHILD ERROR:", err)
		os.Exit(3)
	}
	for _, b := range persistTestBatches() {
		epoch, _, err := entry.ApplyEdges(b)
		if err != nil {
			fmt.Println("CHILD ERROR:", err)
			os.Exit(3)
		}
		fmt.Printf("ACKED %d\n", epoch)
	}
	os.Stdout.Sync()
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
}
