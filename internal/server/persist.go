package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/graph"
	"graphmat/internal/snap"
	"graphmat/internal/sparse"
)

// Persistence glue for the registry: when the server runs with a data
// directory, every graph entry gets a persister that makes its state durable
// and its restart instant.
//
//   - Each accepted update batch is appended (and fsynced) to a per-graph
//     write-ahead log BEFORE any in-memory state advances, so an acknowledged
//     batch survives a crash at any later point.
//   - A checkpoint captures the whole entry at one tag — the raw master
//     adjacency plus every built algorithm instance's property graph — as
//     GMATSNAP files, rotates the WAL, and atomically flips the CURRENT
//     manifest. Checkpoints ride on the store's own compaction cadence (the
//     OnCompact hook marks the entry dirty; the update batch that compacted
//     pays for the rotation), so WAL length stays proportional to the
//     un-compacted overlay.
//   - Boot mmaps the manifest's snapshot files and serves queries over
//     zero-copy views of the mappings, replaying WAL records newer than each
//     component's tag. A damaged current generation falls back to the
//     previous one (kept one level deep) plus both generations' logs, then
//     re-checkpoints to heal.

// Component keys in the manifest's Files map.
const (
	compMaster    = "master"
	algoCompPfx   = "algo:"
	masterFilePfx = "master-"
	instFilePfx   = "inst-"
	walFilePfx    = "wal-"
)

func masterFileName(tag uint64) string { return fmt.Sprintf("%s%d.snap", masterFilePfx, tag) }
func instFileName(algo string, tag uint64) string {
	return fmt.Sprintf("%s%s-%d.snap", instFilePfx, algo, tag)
}
func walFileName(tag uint64) string { return fmt.Sprintf("%s%d.log", walFilePfx, tag) }

// persister owns one graph entry's persistence directory.
type persister struct {
	dir string

	// mu serializes manifest flips and WAL handle swaps. WAL appends happen
	// under the entry's updMu (the append order must be the batch order);
	// checkpoint and persistInstance also hold updMu, so mu is really
	// guarding against stats readers.
	mu  sync.Mutex
	wal *snap.WAL
	man *snap.Manifest

	// maps holds every snapshot mapping opened at boot, for the process
	// lifetime: the entry's current state may reference mapped arrays until
	// the first compaction folds them onto the heap, and pinned older epochs
	// may reference them indefinitely.
	maps []*snap.Snapshot

	// dirty is set by the stores' OnCompact hooks: some instance folded its
	// overlay, so the WAL now contains records the next checkpoint should
	// retire. The update batch that observes it pays for the checkpoint.
	dirty atomic.Bool

	checkpoints    atomic.Int64
	checkpointErrs atomic.Int64

	// Boot provenance, fixed after load.
	boot            string // "created", "snapshot", "snapshot+wal" or "fallback"
	replayedBatches int64
	replayedRecords int64
}

// newPersister creates (or adopts) the graph's persistence directory.
func newPersister(dir string) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &persister{dir: dir}, nil
}

func (p *persister) closeAll() {
	for _, m := range p.maps {
		m.Close()
	}
	p.maps = nil
	if p.wal != nil {
		p.wal.Close()
		p.wal = nil
	}
}

// logBatch appends one accepted batch to the WAL and fsyncs. epoch is the
// entry epoch the batch PRODUCES. Called under the entry's updMu, before the
// batch touches any in-memory state: a batch that cannot be made durable is
// rejected whole.
func (p *persister) logBatch(epoch uint64, batch []graphmat.EdgeUpdate) error {
	recs := make([]snap.WALUpdate, len(batch))
	for i, u := range batch {
		recs[i] = snap.WALUpdate{Src: u.Src, Dst: u.Dst, Val: u.Val, Del: u.Del}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wal == nil {
		return fmt.Errorf("persist: no open WAL for %s", p.dir)
	}
	return p.wal.Append(epoch, recs)
}

// checkpoint captures the whole entry at its current epoch: master adjacency
// and every built instance as snapshot files at one tag, a fresh WAL, and an
// atomic manifest flip. Caller holds the entry's updMu (no batch can be in
// flight), so the master and every instance agree on the edge set. Files of
// the grandparent generation are deleted after the flip; the previous
// generation stays as the fallback target.
func (p *persister) checkpoint(g *GraphEntry) error {
	g.adjMu.RLock()
	adj, tag, updates := g.adj, g.epoch, g.updates
	g.adjMu.RUnlock()

	g.mu.Lock()
	insts := make(map[string]*algoInstance, len(g.insts))
	for n, ai := range g.insts {
		insts[n] = ai
	}
	g.mu.Unlock()

	files := map[string]string{compMaster: masterFileName(tag)}
	if err := snap.Write(filepath.Join(p.dir, files[compMaster]), masterImage(adj, tag)); err != nil {
		return err
	}
	for algo, ai := range insts {
		img, err := ai.inst.SnapImage(tag)
		if err != nil {
			return fmt.Errorf("persist: imaging %s: %w", algo, err)
		}
		name := instFileName(algo, tag)
		if err := snap.Write(filepath.Join(p.dir, name), img); err != nil {
			return err
		}
		files[algoCompPfx+algo] = name
	}
	walName := walFileName(tag)
	nw, err := snap.CreateWAL(filepath.Join(p.dir, walName))
	if err != nil {
		return err
	}

	p.mu.Lock()
	man := &snap.Manifest{Tag: tag, Updates: updates, Files: files, WAL: walName, Prev: p.man}
	if err := snap.WriteManifest(p.dir, man); err != nil {
		p.mu.Unlock()
		nw.Close()
		return err
	}
	if p.wal != nil {
		p.wal.Close()
	}
	p.wal = nw
	p.man = man
	p.mu.Unlock()

	p.checkpoints.Add(1)
	p.dirty.Store(false)
	p.collectGarbage(man)
	return nil
}

// persistInstance captures one just-built instance into the current
// generation without a full checkpoint: the instance file is written at the
// entry's current epoch and the manifest re-flipped with the extra entry
// (same tag, same WAL). On boot, WAL records at or below the instance file's
// own tag are skipped for it — the build already contained them. Caller
// holds the entry's updMu.
func (p *persister) persistInstance(g *GraphEntry, algo string, ai *algoInstance) error {
	g.adjMu.RLock()
	tag := g.epoch
	g.adjMu.RUnlock()
	img, err := ai.inst.SnapImage(tag)
	if err != nil {
		return fmt.Errorf("persist: imaging %s: %w", algo, err)
	}
	name := instFileName(algo, tag)
	if err := snap.Write(filepath.Join(p.dir, name), img); err != nil {
		return err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.man == nil {
		return fmt.Errorf("persist: no manifest for %s", p.dir)
	}
	man := *p.man
	man.Files = make(map[string]string, len(p.man.Files)+1)
	for k, v := range p.man.Files {
		man.Files[k] = v
	}
	man.Files[algoCompPfx+algo] = name
	if err := snap.WriteManifest(p.dir, &man); err != nil {
		return err
	}
	p.man = &man
	return nil
}

// collectGarbage removes snapshot and WAL files no longer referenced by the
// manifest chain (current + one previous generation). Mapped files stay
// readable after unlink — the mapping pins the inode — so this is safe even
// while older epochs are still pinned.
func (p *persister) collectGarbage(man *snap.Manifest) {
	keep := map[string]bool{snap.CurrentFile: true}
	for m := man; m != nil; m = m.Prev {
		for _, f := range m.Files {
			keep[f] = true
		}
		keep[m.WAL] = true
	}
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if keep[name] || e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, masterFilePfx) || strings.HasPrefix(name, instFilePfx) || strings.HasPrefix(name, walFilePfx) {
			os.Remove(filepath.Join(p.dir, name))
		}
	}
}

// maybeCheckpoint runs a checkpoint if an instance compacted since the last
// one. Called at the tail of ApplyEdges under updMu; a failed checkpoint
// leaves dirty set (the next batch retries) and is surfaced in stats, not as
// a request error — the batch itself is already durable in the WAL.
func (p *persister) maybeCheckpoint(g *GraphEntry) {
	if !p.dirty.Load() {
		return
	}
	if err := p.checkpoint(g); err != nil {
		p.checkpointErrs.Add(1)
	}
}

// onBuild registers the compaction hook on a new instance and captures it
// into the manifest. Called under updMu, right after the lazy build.
func (p *persister) onBuild(g *GraphEntry, algo string, ai *algoInstance) {
	ai.inst.OnCompact(func(uint64) { p.dirty.Store(true) })
	if err := p.persistInstance(g, algo, ai); err != nil {
		p.checkpointErrs.Add(1)
	}
}

// masterImage wraps the raw master adjacency as a snapshot image
// (Directions 0: dims and row-major triples only).
func masterImage(adj *sparse.COO[float32], tag uint64) *snap.Image {
	return &snap.Image{
		Epoch:  tag,
		Tag:    tag,
		NRows:  adj.NRows,
		NCols:  adj.NCols,
		NEdges: uint64(len(adj.Entries)),
		Fwd:    adj.Entries,
	}
}

// initPersist attaches a fresh persister to a newly registered entry and
// writes its first generation (master only; instances checkpoint as they are
// built). Called before the entry is published.
func (r *Registry) initPersist(entry *GraphEntry) error {
	p, err := newPersister(filepath.Join(r.dataDir, entry.name))
	if err != nil {
		return err
	}
	entry.pers = p
	p.boot = "created"
	if err := p.checkpoint(entry); err != nil {
		entry.pers = nil
		p.closeAll()
		return err
	}
	return nil
}

// openPersisted boots an entry from its persistence directory: the current
// generation's mmap'd snapshots plus WAL replay, falling back to the
// previous generation (replaying both logs) if the current one is damaged.
func (r *Registry) openPersisted(name, source, dir string) (*GraphEntry, error) {
	man, err := snap.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	entry, curErr := r.loadGeneration(name, source, dir, man, []string{man.WAL}, man.WAL)
	if curErr == nil {
		return entry, nil
	}
	if man.Prev == nil {
		return nil, curErr
	}
	entry, prevErr := r.loadGeneration(name, source, dir, man.Prev, []string{man.Prev.WAL, man.WAL}, man.WAL)
	if prevErr != nil {
		return nil, fmt.Errorf("current generation: %v; previous generation: %w", curErr, prevErr)
	}
	// Heal: the damaged generation is replaced by a fresh checkpoint of the
	// recovered state, so the next boot takes the fast path again.
	entry.pers.boot = "fallback"
	if err := entry.pers.checkpoint(entry); err != nil {
		entry.pers.checkpointErrs.Add(1)
	}
	return entry, nil
}

// loadGeneration assembles an entry from one generation's snapshot files and
// replays the listed WALs in order. appendWAL names the log opened for
// subsequent appends (its torn tail, if any, is truncated); the others are
// read-only. Per component, only records newer than the component's own tag
// are applied — an instance persisted after later batches already contains
// them.
func (r *Registry) loadGeneration(name, source, dir string, gen *snap.Manifest, walNames []string, appendWAL string) (entry *GraphEntry, err error) {
	p := &persister{dir: dir, man: gen}
	defer func() {
		if err != nil {
			p.closeAll()
		}
	}()

	masterName, ok := gen.Files[compMaster]
	if !ok {
		return nil, fmt.Errorf("persist: manifest generation %d has no master snapshot", gen.Tag)
	}
	mf, err := snap.Open(filepath.Join(dir, masterName))
	if err != nil {
		return nil, err
	}
	p.maps = append(p.maps, mf)
	mimg := mf.Image()
	if mimg.Directions != 0 {
		return nil, fmt.Errorf("persist: %s is not a raw adjacency image", masterName)
	}
	entry = &GraphEntry{
		name:       name,
		source:     source,
		partitions: r.partitions,
		workers:    r.workers,
		adj:        &sparse.COO[float32]{NRows: mimg.NRows, NCols: mimg.NCols, Entries: mimg.Fwd},
		epoch:      gen.Tag,
		updates:    gen.Updates,
		insts:      make(map[string]*algoInstance),
		pers:       p,
	}

	instTags := make(map[string]uint64)
	for comp, file := range gen.Files {
		algo, isAlgo := strings.CutPrefix(comp, algoCompPfx)
		if !isAlgo {
			continue
		}
		spec, known := algorithms.Lookup(algo)
		if !known || spec.Open == nil {
			continue // an algorithm this build no longer registers; rebuild lazily
		}
		sf, err := snap.Open(filepath.Join(dir, file))
		if err != nil {
			return nil, err
		}
		p.maps = append(p.maps, sf)
		inst, err := spec.Open(sf.Image())
		if err != nil {
			return nil, fmt.Errorf("persist: opening %s from %s: %w", algo, file, err)
		}
		ai := &algoInstance{spec: spec, inst: inst}
		ai.pool.New = func() any {
			ai.allocs.Add(1)
			return ai.inst.NewScratch()
		}
		entry.insts[algo] = ai
		instTags[algo] = sf.Image().Tag
	}

	for _, wn := range walNames {
		var batches []snap.WALBatch
		if wn == appendWAL {
			w, bs, werr := snap.OpenWAL(filepath.Join(dir, wn))
			if werr != nil {
				return nil, werr
			}
			p.wal = w
			batches = bs
		} else {
			var rerr error
			batches, rerr = snap.ReadWAL(filepath.Join(dir, wn))
			if rerr != nil {
				return nil, rerr
			}
		}
		for _, b := range batches {
			if b.Epoch <= entry.epoch {
				continue // already folded into the snapshots (or the other log)
			}
			if err := replayBatch(entry, instTags, b); err != nil {
				return nil, err
			}
			p.replayedBatches++
			p.replayedRecords += int64(len(b.Updates))
		}
	}

	for _, ai := range entry.insts {
		ai.inst.OnCompact(func(uint64) { p.dirty.Store(true) })
	}
	if p.replayedBatches > 0 {
		p.boot = "snapshot+wal"
	} else {
		p.boot = "snapshot"
	}
	return entry, nil
}

// replayBatch re-applies one logged batch during boot: master merge, then
// fan-out to each instance whose snapshot predates the batch. The entry is
// unpublished, so no locking.
func replayBatch(entry *GraphEntry, instTags map[string]uint64, b snap.WALBatch) error {
	batch := make([]graphmat.EdgeUpdate, len(b.Updates))
	for i, u := range b.Updates {
		batch[i] = graphmat.EdgeUpdate{Src: u.Src, Dst: u.Dst, Val: u.Val, Del: u.Del}
	}
	next, err := graph.ApplyToAdjacency(entry.adj, batch)
	if err != nil {
		return fmt.Errorf("persist: replaying WAL batch for epoch %d: %w", b.Epoch, err)
	}
	entry.adj = next
	lookup := algorithms.NewRawEdgeLookup(next)
	for algo, ai := range entry.insts {
		if b.Epoch <= instTags[algo] {
			continue
		}
		if _, err := ai.inst.ApplyUpdates(batch, lookup); err != nil {
			return fmt.Errorf("persist: replaying WAL batch for epoch %d into %s: %w", b.Epoch, algo, err)
		}
	}
	entry.epoch = b.Epoch
	entry.updates += int64(len(batch))
	return nil
}

// PersistStats is the /stats view of one graph's persistence state.
type PersistStats struct {
	// Enabled reports whether the entry has a persistence directory.
	Enabled bool `json:"enabled"`
	// Boot records how the entry came up: "created" (parsed and
	// checkpointed this process), "snapshot" (mmap'd, no WAL records),
	// "snapshot+wal" (mmap'd plus replay) or "fallback" (previous
	// generation healed).
	Boot string `json:"boot,omitempty"`
	// Tag is the current generation's checkpoint epoch.
	Tag uint64 `json:"tag"`
	// Checkpoints counts generation flips this process performed;
	// CheckpointErrors the capture attempts that failed (state stays
	// recoverable through the WAL either way).
	Checkpoints      int64 `json:"checkpoints"`
	CheckpointErrors int64 `json:"checkpoint_errors,omitempty"`
	// WALBatches / WALRecords count what the open log currently holds
	// (appended plus replayed-and-kept).
	WALBatches int64 `json:"wal_batches"`
	WALRecords int64 `json:"wal_records"`
	// ReplayedBatches / ReplayedRecords count boot-time WAL replay.
	ReplayedBatches int64 `json:"replayed_batches,omitempty"`
	ReplayedRecords int64 `json:"replayed_records,omitempty"`
}

// PersistStats reports the entry's persistence counters; zero-value when the
// server runs without a data directory.
func (g *GraphEntry) PersistStats() PersistStats {
	p := g.pers
	if p == nil {
		return PersistStats{}
	}
	p.mu.Lock()
	var tag uint64
	if p.man != nil {
		tag = p.man.Tag
	}
	var wb, wr int64
	if p.wal != nil {
		wb, wr = p.wal.Batches(), p.wal.Records()
	}
	p.mu.Unlock()
	return PersistStats{
		Enabled:          true,
		Boot:             p.boot,
		Tag:              tag,
		Checkpoints:      p.checkpoints.Load(),
		CheckpointErrors: p.checkpointErrs.Load(),
		WALBatches:       wb,
		WALRecords:       wr,
		ReplayedBatches:  p.replayedBatches,
		ReplayedRecords:  p.replayedRecords,
	}
}
