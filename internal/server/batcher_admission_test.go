package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"graphmat"
	"graphmat/algorithms"
)

// TestBatcherEpochPin is the regression test for the admission-epoch skew
// bug: an update batch landing inside an open coalescing window must not
// drag the pending block run onto the new snapshot. The batch key promised
// its waiters the admission epoch, and the result must carry it.
func TestBatcherEpochPin(t *testing.T) {
	reg := NewRegistry(0, 1, "")
	entry, err := reg.AddCOO("g", "seed", persistTestAdj(64))
	if err != nil {
		t.Fatal(err)
	}
	b := newBatcher(150 * time.Millisecond)

	type outcome struct {
		res algorithms.Result
		err error
	}
	first := make(chan outcome, 1)
	go func() {
		res, _, err := b.submit(context.Background(), entry, "bfs", algorithms.Params{Source: 0})
		first <- outcome{res, err}
	}()

	// Wait for the window to open, then apply an update inside it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		open := len(b.pending) > 0
		b.mu.Unlock()
		if open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch window never opened")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := entry.ApplyEdges([]algorithms.EdgeUpdate{{Src: 0, Dst: 40, Val: 1}}); err != nil {
		t.Fatal(err)
	}

	got := <-first
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.res.Epoch != 0 {
		t.Errorf("in-window request ran at epoch %d, want the admission epoch 0", got.res.Epoch)
	}

	// A request admitted after the update keys — and runs — on the new epoch.
	res, shared, err := b.submit(context.Background(), entry, "bfs", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if shared {
		t.Error("post-update request joined a batch from the old epoch")
	}
	if res.Epoch != 1 {
		t.Errorf("post-update request ran at epoch %d, want 1", res.Epoch)
	}
}

// TestBatcherWidthCap is the regression test for the width-overflow bug:
// under concurrent same-key submission, no dispatched block run may exceed
// graphmat.MaxBlockSources, and every admitted request must be dispatched
// exactly once. Admission used to close outside the fullness-detecting lock,
// letting a racing submit slip a 65th source into a full batch.
func TestBatcherWidthCap(t *testing.T) {
	reg := NewRegistry(0, 1, "")
	entry, err := reg.AddCOO("g", "seed", persistTestAdj(64))
	if err != nil {
		t.Fatal(err)
	}
	b := newBatcher(100 * time.Millisecond)
	var (
		widthMu sync.Mutex
		widths  []int
	)
	b.onFlush = func(width int) {
		widthMu.Lock()
		widths = append(widths, width)
		widthMu.Unlock()
	}

	// Two full blocks and a remainder, all racing on one key.
	n := 2*graphmat.MaxBlockSources + 3
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(src uint32) {
			defer wg.Done()
			if _, _, err := b.submit(context.Background(), entry, "bfs", algorithms.Params{Source: src}); err != nil {
				errs <- err
			}
		}(uint32(i % 64))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	widthMu.Lock()
	defer widthMu.Unlock()
	total := 0
	for _, w := range widths {
		if w > graphmat.MaxBlockSources {
			t.Errorf("dispatched a block of width %d, cap is %d", w, graphmat.MaxBlockSources)
		}
		total += w
	}
	if total != n {
		t.Errorf("dispatched %d sources across %d blocks, admitted %d", total, len(widths), n)
	}
	if st := b.stats(); st.Submitted != int64(n) {
		t.Errorf("stats count %d submissions, want %d", st.Submitted, n)
	}
}
