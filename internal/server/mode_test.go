package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// TestRunModeParam covers the mode= run parameter end to end: query form,
// body form, precedence, rejection of garbage, bit-identical results across
// modes, and the per-mode /stats tallies.
func TestRunModeParam(t *testing.T) {
	_, ts := newTestServer(t)
	addTestGraph(t, ts, "g")

	ref := runAlgo(t, ts, "g", "bfs", map[string]any{"source": float64(0)})

	// Query form. The result cache would mask a kernel divergence (mode is
	// deliberately not part of the cache key), so compare against a
	// stream=1 run, which bypasses the read side of the cache.
	for _, mode := range []string{"pull", "push"} {
		code, body := do(t, ts, http.MethodPost, "/graphs/g/run/bfs?stream=1&mode="+mode, map[string]any{"source": float64(0)})
		if code != http.StatusOK {
			t.Fatalf("mode=%s: %d %s", mode, code, body)
		}
		var final runReply
		dec := json.NewDecoder(bytes.NewReader(body))
		for dec.More() {
			final = runReply{}
			if err := dec.Decode(&final); err != nil {
				t.Fatalf("mode=%s: decoding stream: %v", mode, err)
			}
		}
		if len(final.Values) != len(ref.Values) {
			t.Fatalf("mode=%s: %d values vs %d", mode, len(final.Values), len(ref.Values))
		}
		for v := range ref.Values {
			if math.Float64bits(final.Values[v]) != math.Float64bits(ref.Values[v]) {
				t.Fatalf("mode=%s: value[%d] %v vs %v", mode, v, final.Values[v], ref.Values[v])
			}
		}
	}

	// Body form parses through the registry's global "mode" parameter.
	if code, body := do(t, ts, http.MethodPost, "/graphs/g/run/bfs?stream=1", map[string]any{"source": float64(0), "mode": "push"}); code != http.StatusOK {
		t.Fatalf("body mode: %d %s", code, body)
	}

	// Garbage is rejected in both positions.
	if code, _ := do(t, ts, http.MethodPost, "/graphs/g/run/bfs?mode=sideways", map[string]any{"source": float64(0)}); code != http.StatusBadRequest {
		t.Errorf("query mode=sideways accepted: %d", code)
	}
	if code, _ := do(t, ts, http.MethodPost, "/graphs/g/run/bfs", map[string]any{"source": float64(0), "mode": "sideways"}); code != http.StatusBadRequest {
		t.Errorf("body mode=sideways accepted: %d", code)
	}

	// /stats reports the per-mode run tallies and the engine's superstep
	// split.
	code, body := do(t, ts, http.MethodGet, "/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	var stats struct {
		ModeRuns map[string]int64 `json:"mode_runs"`
		Graphs   map[string]struct {
			Algorithms map[string]struct {
				Engine struct {
					PushSupersteps int64
					PullSupersteps int64
					Iterations     int64
				} `json:"engine"`
			} `json:"algorithms"`
		} `json:"graphs"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ModeRuns["pull"] < 1 || stats.ModeRuns["push"] < 2 || stats.ModeRuns["auto"] < 1 {
		t.Errorf("mode_runs tallies wrong: %v", stats.ModeRuns)
	}
	eng := stats.Graphs["g"].Algorithms["bfs"].Engine
	if eng.PushSupersteps+eng.PullSupersteps == 0 {
		t.Errorf("engine superstep mode split missing: %+v", eng)
	}
}
