//go:build race

package server

// raceEnabled relaxes assertions that depend on sync.Pool retention: race
// builds make the pool drop items randomly on purpose, so exact
// workspace-reuse counts only hold without the detector.
const raceEnabled = true
