package graph

import (
	"sync"
	"sync/atomic"

	"graphmat/internal/bitvec"
	"graphmat/internal/sparse"
)

// Store is a versioned mutable graph: a sequence of immutable, epoch-numbered
// Snapshots of a Graph, advanced by batched edge updates. Reads (engine runs)
// pin a snapshot and see exactly that epoch's edge set for their whole run,
// whatever writers do meanwhile; writes serialize on the store and publish a
// successor snapshot that shares the base structures and carries the batch as
// per-partition delta overlays. Once the overlay outgrows
// Options.CompactFraction of the base, the write that crossed the line also
// folds everything back into freshly built base partitions (the PR-3
// parallel ingestion path), so steady-state update cost stays amortized
// O(batch) while reads never pay more than one bounded overlay.
type Store[V, E any] struct {
	mu  sync.Mutex // serializes writers: ApplyEdges, Compact
	cur atomic.Pointer[Snapshot[V, E]]

	// onCompact, when set, runs synchronously after every compaction
	// publish — the store's persistent mode (see OnCompact).
	onCompact func(epoch uint64)

	batches     atomic.Int64
	compactions atomic.Int64
	pinned      atomic.Int64
}

// Snapshot is one pinned, immutable version of a store's graph. The Graph it
// exposes never changes once published; the pin refcount tracks how many
// readers still hold it (surfaced in StoreStats, and the contract future
// buffer-recycling must honor).
type Snapshot[V, E any] struct {
	store *Store[V, E]
	g     *Graph[V, E]
	pins  atomic.Int64
}

// DefaultCompactFraction is the overlay-to-base size ratio beyond which
// ApplyEdges compacts when Options.CompactFraction is zero.
const DefaultCompactFraction = 0.25

// NewStore builds a versioned store whose epoch-0 snapshot is the graph
// NewFromCOO would build from the same input (the adjacency is consumed the
// same way).
func NewStore[V, E any](adj *sparse.COO[E], opts Options) (*Store[V, E], error) {
	g, err := NewFromCOO[V, E](adj, opts)
	if err != nil {
		return nil, err
	}
	s := &Store[V, E]{}
	s.cur.Store(&Snapshot[V, E]{store: s, g: g})
	return s, nil
}

// Acquire pins and returns the current snapshot. The snapshot's graph is
// valid (and frozen at its epoch) regardless of concurrent updates or
// compactions for as long as the pin is held.
//
// Every Acquire obligates the caller to exactly one Snapshot.Release on
// every path out of the acquiring code — early returns and error branches
// included — unless ownership of the snapshot is handed to another owner
// who will release it. The idiomatic form is:
//
//	snap := store.Acquire()
//	defer snap.Release()
//
// A leaked pin never fails loudly: it silently keeps the superseded epoch's
// memory reachable and makes StoreStats.Pinned drift upward. The snappin
// analyzer (internal/lint, run by `make lint` and CI) enforces this contract
// statically.
func (s *Store[V, E]) Acquire() *Snapshot[V, E] {
	sn := s.cur.Load()
	sn.pins.Add(1)
	s.pinned.Add(1)
	return sn
}

// Epoch reports the current (latest-published) edge-set version.
func (s *Store[V, E]) Epoch() uint64 { return s.cur.Load().g.epoch }

// NumVertices reports the vertex count (fixed at construction; updates
// mutate edges only).
func (s *Store[V, E]) NumVertices() uint32 { return s.cur.Load().g.n }

// NumEdges reports the current snapshot's live edge count.
func (s *Store[V, E]) NumEdges() int64 { return s.cur.Load().g.m }

// ApplyEdges applies one batch of edge updates and publishes the successor
// snapshot, one epoch later. Within a batch the last mutation of a (src,
// dst) key wins. Updates referencing vertices outside the graph fail the
// whole batch; nothing is published. When the resulting overlay exceeds the
// compaction fraction the new snapshot is published pre-compacted (same
// epoch, same edge set, fresh base).
func (s *Store[V, E]) ApplyEdges(batch []Update[E]) (ApplyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	ng, res, err := old.g.applyBatch(batch)
	if err != nil {
		return res, err
	}
	frac := ng.opts.CompactFraction
	if frac == 0 {
		frac = DefaultCompactFraction
	}
	if frac > 0 && float64(ng.overlayNNZ) > frac*float64(s.baseNNZ(ng)) {
		ng = ng.compacted()
		s.compactions.Add(1)
		res.Compacted = true
	}
	s.cur.Store(&Snapshot[V, E]{store: s, g: ng})
	s.batches.Add(1)
	if res.Compacted {
		s.notifyCompact(ng.epoch)
	}
	return res, nil
}

// OnCompact registers the store's persistent-mode hook: fn runs
// synchronously after every compaction publish (automatic from ApplyEdges,
// explicit Compact, or the fold StoreImage performs), with the writer lock
// held — so the write that compacts does not return before fn does, which
// is what lets a persistence layer make "compacted" imply "durable". fn
// must be fast and must not call back into the store's writer methods
// (ApplyEdges, Compact, StoreImage); setting a flag or writing an already
// captured image is the intended shape.
func (s *Store[V, E]) OnCompact(fn func(epoch uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onCompact = fn
}

// notifyCompact invokes the persistent-mode hook; callers hold s.mu.
func (s *Store[V, E]) notifyCompact(epoch uint64) {
	if s.onCompact != nil {
		s.onCompact(epoch)
	}
}

// baseNNZ is the base structures' stored entry count: the forward triples
// once per built direction — the denominator of the compaction trigger.
func (s *Store[V, E]) baseNNZ(g *Graph[V, E]) int64 {
	n := int64(len(g.fwd.Entries))
	total := int64(0)
	if g.outParts != nil {
		total += n
	}
	if g.inParts != nil {
		total += n
	}
	if total == 0 {
		total = n
	}
	return total
}

// Compact folds the current snapshot's overlay into freshly built base
// structures and publishes the result at the SAME epoch (compaction changes
// the representation, never the edge set). Pinned older snapshots remain
// valid. No-op when there is no overlay.
func (s *Store[V, E]) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	if old.g.logLen == 0 {
		return
	}
	ng := old.g.compacted()
	s.cur.Store(&Snapshot[V, E]{store: s, g: ng})
	s.compactions.Add(1)
	s.notifyCompact(ng.epoch)
}

// StoreStats is a point-in-time view of the store for observability.
type StoreStats struct {
	// Epoch is the latest-published edge-set version.
	Epoch uint64 `json:"epoch"`
	// Batches counts update batches applied over the store's lifetime.
	Batches int64 `json:"batches"`
	// Compactions counts overlay folds (automatic and explicit).
	Compactions int64 `json:"compactions"`
	// Pinned counts snapshots acquired and not yet released, across all
	// epochs.
	Pinned int64 `json:"pinned"`
	// LiveEdges is the current snapshot's edge count; BaseEdges the edge
	// count of its base structures (they differ by the un-compacted
	// overlay's net effect).
	LiveEdges int64 `json:"live_edges"`
	BaseEdges int64 `json:"base_edges"`
	// OverlayNNZ is the overlay's storage cost in entries;
	// PendingUpdates the normalized mutations awaiting compaction.
	OverlayNNZ     int64 `json:"overlay_nnz"`
	PendingUpdates int   `json:"pending_updates"`
}

// Stats snapshots the store's counters.
func (s *Store[V, E]) Stats() StoreStats {
	g := s.cur.Load().g
	return StoreStats{
		Epoch:          g.epoch,
		Batches:        s.batches.Load(),
		Compactions:    s.compactions.Load(),
		Pinned:         s.pinned.Load(),
		LiveEdges:      g.m,
		BaseEdges:      int64(len(g.fwd.Entries)),
		OverlayNNZ:     g.overlayNNZ,
		PendingUpdates: g.logLen,
	}
}

// Graph exposes the snapshot's graph. It is frozen structurally, but its
// vertex properties and active set are run state: one engine run at a time
// per Graph. Concurrent runs on the same snapshot each take a View.
func (sn *Snapshot[V, E]) Graph() *Graph[V, E] { return sn.g }

// Epoch reports the snapshot's edge-set version.
func (sn *Snapshot[V, E]) Epoch() uint64 { return sn.g.epoch }

// Release unpins the snapshot. Call it exactly once per Acquire: releasing
// twice corrupts the pin accounting (the counts go negative and a compaction
// may reclaim an epoch another holder still reads), and never releasing
// leaks the epoch's memory for the store's lifetime. Reads through the
// snapshot (Graph, Epoch, View) do not discharge the obligation — only
// Release does. The snappin analyzer (internal/lint) checks the
// release-on-every-path half of this contract at compile time.
func (sn *Snapshot[V, E]) Release() {
	sn.pins.Add(-1)
	sn.store.pinned.Add(-1)
}

// Pins reports the snapshot's current pin count.
func (sn *Snapshot[V, E]) Pins() int64 { return sn.pins.Load() }

// View returns a graph sharing this snapshot's immutable structure (base
// partitions, deltas, degrees, triple lists) with FRESH vertex properties
// and active set, so multiple runs can execute concurrently against one
// pinned epoch without sharing mutable state. Build stores with the
// Directions your programs need: a lazy direction build on a view is
// per-view work.
func (sn *Snapshot[V, E]) View() *Graph[V, E] {
	v := *sn.g
	v.props = make([]V, v.n)
	v.active = bitvec.New(int(v.n))
	return &v
}
