//go:build race

package graph

// raceEnabled lets heavyweight tests scale down under the race detector,
// whose ~10× slowdown would otherwise dominate the suite.
const raceEnabled = true
