// Package graph provides the property graph GraphMat programs run against:
// a partitioned DCSC adjacency structure (paper §4.4.1), a per-vertex
// property array, the active-vertex set (§4.3), preprocessing used to prepare
// the paper's datasets (§5.1), and graph file I/O.
package graph

import (
	"fmt"
	"runtime"

	"graphmat/internal/bitvec"
	"graphmat/internal/sparse"
)

// Direction selects which edges SendMessage scatters along (paper §4.1:
// "SEND_MESSAGE can be called to scatter along in- and/or out- edges").
type Direction int

const (
	// Out scatters a vertex's message to the targets of its out-edges
	// (an SpMV against Gᵀ).
	Out Direction = 1 << iota
	// In scatters a vertex's message to the sources of its in-edges
	// (an SpMV against G).
	In
	// Both scatters along out- and in-edges.
	Both = Out | In
)

// Options configures graph construction.
type Options struct {
	// Partitions is the number of 1-D row partitions of the adjacency
	// matrix. The paper's load-balancing recipe (§4.5) is "many more
	// partitions than threads" with dynamic scheduling; 0 means
	// 8 × GOMAXPROCS.
	Partitions int
	// Directions selects which traversal structures to build. Zero means
	// Out. Building only what an algorithm needs halves memory.
	Directions Direction
	// Workers is the goroutine count for the ingestion pipeline (sorting,
	// dedup and per-partition DCSC builds). 0 means GOMAXPROCS; 1 forces the
	// sequential path. Both paths produce bit-identical graphs — the
	// differential tests assert it — so parallel is the default.
	Workers int
	// CompactFraction is the store's compaction trigger: once the delta
	// overlay's storage cost exceeds this fraction of the base structures'
	// nonzeros, ApplyEdges folds the overlay back into the base through the
	// parallel rebuild pipeline. 0 means DefaultCompactFraction; negative
	// disables automatic compaction (Store.Compact still works).
	CompactFraction float64
}

func (o Options) withDefaults() Options {
	if o.Partitions <= 0 {
		o.Partitions = 8 * runtime.GOMAXPROCS(0)
	}
	if o.Directions == 0 {
		o.Directions = Out
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Graph is a directed property graph with vertex properties of type V and
// edge values of type E. It corresponds to Graph<V> in the paper's API
// (appendix); edge values generalize the int edge weights used there.
type Graph[V, E any] struct {
	n uint32
	m int64

	// fwd holds Gᵀ triples (Row = dst, Col = src), col-major sorted and
	// deduplicated — the orientation Algorithm 1 iterates. Retained so the
	// matrix can be repartitioned (the Figure 7 load-balance ablation).
	fwd *sparse.COO[E]
	// bwd holds G triples (Row = src, Col = dst); built only when Direction
	// In is requested.
	bwd *sparse.COO[E]

	outParts []*sparse.DCSC[E]
	inParts  []*sparse.DCSC[E]

	// outDelta/inDelta are per-partition whole-column overrides holding the
	// live edge set's divergence from the base partitions; nil (or nil per
	// entry) when a partition has no pending mutations. They are produced by
	// applyBatch and folded back into the base by compaction. fwd/bwd and the
	// base partitions describe the BASE edge set; pending records the
	// mutations separating it from the live one.
	outDelta, inDelta []*sparse.DCSC[E]
	// overlayNNZ is the overlay's storage cost in entries across both
	// directions — the compaction trigger input.
	overlayNNZ int64
	// epoch numbers the live edge-set version; 0 is the as-built graph and
	// every applied batch increments it. Compaction changes the
	// representation, not the edge set, so it keeps the epoch.
	epoch uint64
	// log/logLen view the shared append-only mutation log: the first logLen
	// entries are the normalized mutations since the base was built, in
	// application order. They replay onto lazily built traversal structures
	// and materialize the live edge set for compaction. The backing log is
	// shared down the epoch chain (see updateLog); use pending() to read.
	log    *updateLog[E]
	logLen int

	props  []V
	active *bitvec.Vector

	outDeg, inDeg []uint32

	opts Options
}

// NewFromCOO builds a graph from adjacency triples in the natural
// orientation: Triple.Row = source, Triple.Col = destination. The input is
// consumed (sorted and deduplicated in place, keeping the first value of any
// duplicate edge). Self-loops are preserved; use COO.RemoveSelfLoops first to
// follow the paper's preprocessing.
func NewFromCOO[V, E any](adj *sparse.COO[E], opts Options) (*Graph[V, E], error) {
	if adj.NRows != adj.NCols {
		return nil, fmt.Errorf("graph: adjacency matrix must be square, got %dx%d", adj.NRows, adj.NCols)
	}
	if err := adj.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	g := &Graph[V, E]{n: adj.NRows, opts: opts}

	// Reorient to Gᵀ: row = dst, col = src.
	adj.Transpose()
	adj.SortColMajorParallel(opts.Workers)
	adj.DedupKeepFirstParallel(opts.Workers)
	g.fwd = adj
	g.m = int64(len(adj.Entries))

	g.outDeg = adj.ColCounts()
	g.inDeg = adj.RowCounts()

	if opts.Directions&Out != 0 {
		g.outParts = sparse.BuildPartitionedDCSCParallel(g.fwd, opts.Partitions, opts.Workers)
	}
	if opts.Directions&In != 0 {
		g.buildBackward()
	}

	g.props = make([]V, g.n)
	g.active = bitvec.New(int(g.n))
	return g, nil
}

func (g *Graph[V, E]) buildBackward() {
	g.bwd = g.fwd.Clone()
	g.bwd.Transpose()
	g.bwd.SortColMajorParallel(g.opts.Workers)
	g.inParts = sparse.BuildPartitionedDCSCParallel(g.bwd, g.opts.Partitions, g.opts.Workers)
}

// NumVertices returns the number of vertices.
func (g *Graph[V, E]) NumVertices() uint32 { return g.n }

// NumEdges returns the number of (deduplicated) directed edges.
func (g *Graph[V, E]) NumEdges() int64 { return g.m }

// Props exposes the vertex property array; index is the vertex id.
func (g *Graph[V, E]) Props() []V { return g.props }

// Prop returns vertex v's property.
func (g *Graph[V, E]) Prop(v uint32) V { return g.props[v] }

// SetProp sets vertex v's property.
func (g *Graph[V, E]) SetProp(v uint32, p V) { g.props[v] = p }

// SetAllProps sets every vertex property to p (the paper's
// setAllVertexproperty).
func (g *Graph[V, E]) SetAllProps(p V) {
	for i := range g.props {
		g.props[i] = p
	}
}

// InitProps sets each vertex property with a function of the vertex id.
func (g *Graph[V, E]) InitProps(fn func(v uint32) V) {
	for i := range g.props {
		g.props[i] = fn(uint32(i))
	}
}

// Active exposes the active-vertex bitvector (paper §4.3: "the set of active
// vertices is maintained using a boolean array for performance reasons").
func (g *Graph[V, E]) Active() *bitvec.Vector { return g.active }

// SetActive marks vertex v active for the next superstep.
func (g *Graph[V, E]) SetActive(v uint32) { g.active.Set(v) }

// SetAllActive marks every vertex active.
func (g *Graph[V, E]) SetAllActive() {
	for v := uint32(0); v < g.n; v++ {
		g.active.Set(v)
	}
}

// ClearActive deactivates every vertex.
func (g *Graph[V, E]) ClearActive() { g.active.Reset() }

// OutDegree returns the out-degree of v.
func (g *Graph[V, E]) OutDegree(v uint32) uint32 { return g.outDeg[v] }

// InDegree returns the in-degree of v.
func (g *Graph[V, E]) InDegree(v uint32) uint32 { return g.inDeg[v] }

// OutDegrees returns the out-degree array indexed by vertex.
func (g *Graph[V, E]) OutDegrees() []uint32 { return g.outDeg }

// InDegrees returns the in-degree array indexed by vertex.
func (g *Graph[V, E]) InDegrees() []uint32 { return g.inDeg }

// OutPartitions returns the BASE row partitions of Gᵀ (out-edge scatter),
// building them on first use if the graph was constructed without
// Direction Out. On a graph carrying live updates the base excludes the
// overlay; kernels and materializers use OutLayers, which pairs each base
// partition with its delta.
func (g *Graph[V, E]) OutPartitions() []*sparse.DCSC[E] {
	if g.outParts == nil {
		g.outParts = sparse.BuildPartitionedDCSCParallel(g.fwd, g.opts.Partitions, g.opts.Workers)
		if g.logLen > 0 {
			g.outDelta = buildDeltas(g.outParts, nil, fwdMuts(normalizeUpdates(g.pending())), g.opts.Workers)
		}
	}
	return g.outParts
}

// InPartitions returns the BASE row partitions of G (in-edge scatter),
// building them on first use if the graph was constructed without Direction
// In. Like OutPartitions, a lazy build replays the pending mutation log so
// the new direction agrees with the live edge set.
func (g *Graph[V, E]) InPartitions() []*sparse.DCSC[E] {
	if g.inParts == nil {
		g.buildBackward()
		if g.logLen > 0 {
			g.inDelta = buildDeltas(g.inParts, nil, bwdMuts(normalizeUpdates(g.pending())), g.opts.Workers)
		}
	}
	return g.inParts
}

// OutLayers returns the out-edge traversal structure as base+delta pairs —
// the view the engine kernels iterate. Partitions without pending mutations
// have a nil Delta and take the single-layer fast path.
func (g *Graph[V, E]) OutLayers() []sparse.Layered[E] {
	return zipLayers(g.OutPartitions(), g.outDelta)
}

// InLayers returns the in-edge traversal structure as base+delta pairs.
func (g *Graph[V, E]) InLayers() []sparse.Layered[E] {
	return zipLayers(g.InPartitions(), g.inDelta)
}

func zipLayers[E any](parts, deltas []*sparse.DCSC[E]) []sparse.Layered[E] {
	layers := make([]sparse.Layered[E], len(parts))
	for i, p := range parts {
		layers[i] = sparse.Layered[E]{Base: p}
		if deltas != nil {
			layers[i].Delta = deltas[i]
		}
	}
	return layers
}

// Epoch reports the graph's edge-set version: 0 as built, +1 per applied
// update batch.
func (g *Graph[V, E]) Epoch() uint64 { return g.epoch }

// OverlayNNZ reports the delta overlay's storage cost in entries (0 on a
// fully compacted graph).
func (g *Graph[V, E]) OverlayNNZ() int64 { return g.overlayNNZ }

// PendingUpdates reports the number of normalized mutations separating the
// live edge set from the base structures.
func (g *Graph[V, E]) PendingUpdates() int { return g.logLen }

// pending returns this epoch's view of the mutation log (read-only).
func (g *Graph[V, E]) pending() []Update[E] { return g.log.view(g.logLen) }

// Partitions returns the current partition count.
func (g *Graph[V, E]) Partitions() int { return g.opts.Partitions }

// Repartition rebuilds the traversal structures with a new partition count.
// The Figure 7 ablation uses this to compare partitions=threads (static)
// against partitions=8×threads (dynamic load balancing). A graph carrying
// live updates folds its overlay into the triple lists first — materialize
// only, no interim partition build — so the single rebuild below sees the
// live edge set at the new count. Repartition mutates the receiver: it is
// for single-owner graphs, never published store snapshots.
func (g *Graph[V, E]) Repartition(nparts int) {
	if nparts < 1 {
		nparts = 1
	}
	hadOut, hadIn := g.outParts != nil, g.inParts != nil
	if g.logLen > 0 {
		g.fwd = g.materializeFwd()
		g.m = int64(len(g.fwd.Entries))
		g.outDeg = g.fwd.ColCounts()
		g.inDeg = g.fwd.RowCounts()
		g.bwd, g.outParts, g.inParts = nil, nil, nil
		g.outDelta, g.inDelta = nil, nil
		g.log, g.logLen, g.overlayNNZ = nil, 0, 0
	}
	g.opts.Partitions = nparts
	if hadOut {
		g.outParts = sparse.BuildPartitionedDCSCParallel(g.fwd, nparts, g.opts.Workers)
	}
	if hadIn {
		if g.bwd != nil {
			g.inParts = sparse.BuildPartitionedDCSCParallel(g.bwd, nparts, g.opts.Workers)
		} else {
			g.buildBackward()
		}
	}
}

// Adjacency returns a copy of the live forward adjacency (Row = src,
// Col = dst), row-major sorted. Baseline engines use it to build their own
// structures; on a graph carrying updates the overlay is materialized in.
func (g *Graph[V, E]) Adjacency() *sparse.COO[E] {
	adj := g.materializeFwd()
	adj.Transpose()
	adj.SortRowMajorParallel(g.opts.Workers)
	return adj
}
