package graph

import (
	"path/filepath"
	"reflect"
	"testing"

	"graphmat/internal/snap"
	"graphmat/internal/sparse"
)

func imageTestAdj() *sparse.COO[float32] {
	adj := sparse.NewCOO[float32](64, 64)
	for i := uint32(0); i < 63; i++ {
		adj.Add(i, i+1, float32(i%7)+1)
		adj.Add(i, (i*13+5)%64, float32(i%3)+0.5)
	}
	return adj
}

// TestStoreImageRoundTrip proves the persistence contract at the graph
// layer: a store imaged, written to a GMATSNAP file, mapped back and
// reassembled through NewStoreFromImage is structurally identical to the
// original — same epoch, same triples, same degree arrays, same partition
// arrays — and keeps accepting update batches afterwards.
func TestStoreImageRoundTrip(t *testing.T) {
	adj := imageTestAdj()
	st, err := NewStore[uint32, float32](adj.Clone(), Options{Partitions: 3, Directions: Both})
	if err != nil {
		t.Fatal(err)
	}

	// Leave a pending overlay so StoreImage has something to compact, and
	// hook OnCompact to assert the image path reports its fold.
	var compactEpochs []uint64
	st.OnCompact(func(epoch uint64) { compactEpochs = append(compactEpochs, epoch) })
	if _, err := st.ApplyEdges([]Update[float32]{{Src: 0, Dst: 63, Val: 4.5}}); err != nil {
		t.Fatal(err)
	}

	img, err := StoreImage[uint32](st, 42)
	if err != nil {
		t.Fatal(err)
	}
	if img.Tag != 42 {
		t.Errorf("tag = %d, want the writer's mark 42", img.Tag)
	}
	if img.Epoch != st.Epoch() {
		t.Errorf("image epoch = %d, store epoch = %d", img.Epoch, st.Epoch())
	}
	if len(compactEpochs) != 1 || compactEpochs[0] != st.Epoch() {
		t.Errorf("OnCompact fired with %v, want [%d]: StoreImage must report the fold it performs", compactEpochs, st.Epoch())
	}

	path := filepath.Join(t.TempDir(), "g.snap")
	if err := snap.Write(path, img); err != nil {
		t.Fatal(err)
	}
	sf, err := snap.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()

	st2, err := NewStoreFromImage[uint32](sf.Image())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epoch() != st.Epoch() || st2.NumVertices() != st.NumVertices() || st2.NumEdges() != st.NumEdges() {
		t.Fatalf("loaded store = (epoch %d, %d vertices, %d edges), want (%d, %d, %d)",
			st2.Epoch(), st2.NumVertices(), st2.NumEdges(), st.Epoch(), st.NumVertices(), st.NumEdges())
	}

	s1, s2 := st.Acquire(), st2.Acquire()
	defer s1.Release()
	defer s2.Release()
	g1, g2 := s1.g, s2.g
	if !reflect.DeepEqual(g1.fwd.Entries, g2.fwd.Entries) {
		t.Error("forward triples differ after round trip")
	}
	if !reflect.DeepEqual(g1.bwd.Entries, g2.bwd.Entries) {
		t.Error("backward triples differ after round trip")
	}
	if !reflect.DeepEqual(g1.outDeg, g2.outDeg) || !reflect.DeepEqual(g1.inDeg, g2.inDeg) {
		t.Error("degree arrays differ after round trip")
	}
	if len(g1.outParts) != len(g2.outParts) || len(g1.inParts) != len(g2.inParts) {
		t.Fatalf("partition counts differ: out %d/%d in %d/%d",
			len(g1.outParts), len(g2.outParts), len(g1.inParts), len(g2.inParts))
	}
	for i := range g1.outParts {
		p1, p2 := g1.outParts[i], g2.outParts[i]
		if !reflect.DeepEqual(p1.JC, p2.JC) || !reflect.DeepEqual(p1.CP, p2.CP) ||
			!reflect.DeepEqual(p1.IR, p2.IR) || !reflect.DeepEqual(p1.Val, p2.Val) {
			t.Errorf("out partition %d arrays differ after round trip", i)
		}
	}

	// The mapped base keeps taking updates like a built one.
	if _, err := st2.ApplyEdges([]Update[float32]{{Src: 5, Dst: 0, Val: 1}, {Src: 0, Dst: 1, Del: true}}); err != nil {
		t.Fatal(err)
	}
	if st2.Epoch() != st.Epoch()+1 {
		t.Errorf("epoch after update on mapped store = %d, want %d", st2.Epoch(), st.Epoch()+1)
	}
}

// TestImageRejectsRawForStore asserts the property-graph boot path refuses a
// master-copy image, which has no partitions to assemble.
func TestImageRejectsRawForStore(t *testing.T) {
	raw := &snap.Image{NRows: 4, NCols: 4, NEdges: 1,
		Fwd: []sparse.Triple[float32]{{Row: 0, Col: 1, Val: 1}}}
	if _, err := NewStoreFromImage[uint32](raw); err == nil {
		t.Fatal("raw adjacency image accepted as a property graph")
	}
}
