package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphmat/internal/sparse"
)

func TestReadMTXGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 2 1.5
2 3 2.0
3 1 0.5
1 3 1.0
`
	coo, err := ReadMTX(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if coo.NRows != 3 || coo.NCols != 3 || len(coo.Entries) != 4 {
		t.Fatalf("dims/nnz wrong: %dx%d %d", coo.NRows, coo.NCols, len(coo.Entries))
	}
	if coo.Entries[0] != (sparse.Triple[float32]{Row: 0, Col: 1, Val: 1.5}) {
		t.Errorf("entry 0 = %v", coo.Entries[0])
	}
}

func TestReadMTXSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 3
`
	coo, err := ReadMTX(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// (2,1) mirrors to (1,2); diagonal (3,3) does not mirror.
	if len(coo.Entries) != 3 {
		t.Fatalf("nnz = %d, want 3", len(coo.Entries))
	}
	for _, e := range coo.Entries {
		if e.Val != 1 {
			t.Errorf("pattern value = %v", e.Val)
		}
	}
}

func TestReadMTXErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
	}
	for i, in := range cases {
		if _, err := ReadMTX(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestMTXRoundTrip(t *testing.T) {
	coo := sparse.NewCOO[float32](5, 5)
	coo.Add(0, 1, 1.25)
	coo.Add(4, 0, 3)
	coo.Add(2, 2, 0.5)
	var buf bytes.Buffer
	if err := WriteMTX(&buf, coo); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMTX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 3 || back.NRows != 5 {
		t.Fatalf("round trip: %d entries %d rows", len(back.Entries), back.NRows)
	}
	for i := range coo.Entries {
		if back.Entries[i] != coo.Entries[i] {
			t.Errorf("entry %d: %v != %v", i, back.Entries[i], coo.Entries[i])
		}
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
0 1
1 2 3.5
% another comment

2 0 0.25
`
	coo, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if coo.NRows != 3 || len(coo.Entries) != 3 {
		t.Fatalf("n=%d nnz=%d", coo.NRows, len(coo.Entries))
	}
	if coo.Entries[1].Val != 3.5 {
		t.Errorf("weight = %v", coo.Entries[1].Val)
	}
	if coo.Entries[0].Val != 1 {
		t.Errorf("default weight = %v", coo.Entries[0].Val)
	}
	// minVertices grows the matrix.
	coo2, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if coo2.NRows != 10 {
		t.Errorf("minVertices ignored: n=%d", coo2.NRows)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	coo := sparse.NewCOO[float32](100, 100)
	for i := uint32(0); i < 99; i++ {
		coo.Add(i, i+1, float32(i)*0.5)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, coo); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NRows != 100 || len(back.Entries) != 99 {
		t.Fatalf("n=%d nnz=%d", back.NRows, len(back.Entries))
	}
	for i := range coo.Entries {
		if back.Entries[i] != coo.Entries[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("truncated magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("WRONGMAG...."))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	coo := sparse.NewCOO[float32](10, 10)
	coo.Add(0, 1, 1)
	coo.Add(1, 2, 1)
	if err := WriteBinary(&buf, coo); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-6]
	// Truncation diagnostics name both sides of the mismatch — the claimed
	// edge count and how many records the input actually holds — in both
	// formats. (The V1 message used to repeat the holds count in the claims
	// slot.)
	_, err := ReadBinary(bytes.NewReader(trunc))
	if err == nil {
		t.Error("truncated V1 body accepted")
	} else if !strings.Contains(err.Error(), "header claims 2 edges, input holds 1") {
		t.Errorf("V1 truncation message = %q", err)
	}
	var buf2 bytes.Buffer
	if err := WriteBinary2(&buf2, coo, 1); err != nil {
		t.Fatal(err)
	}
	_, err = ReadBinary(bytes.NewReader(buf2.Bytes()[:buf2.Len()-6]))
	if err == nil {
		t.Error("truncated V2 body accepted")
	} else if !strings.Contains(err.Error(), "header claims 2 edges, input holds 1") {
		t.Errorf("V2 truncation message = %q", err)
	}

	// GMATBIN1 has a single dimension field: a rectangular matrix must be
	// rejected (pointing at WriteBinary2) rather than silently written as
	// square and read back with the wrong NCols.
	rect := sparse.NewCOO[float32](3, 2)
	rect.Add(0, 1, 1)
	if err := WriteBinary(&bytes.Buffer{}, rect); err == nil {
		t.Error("WriteBinary accepted a 3x2 matrix")
	} else if !strings.Contains(err.Error(), "WriteBinary2") {
		t.Errorf("non-square rejection = %q, want a pointer at WriteBinary2", err)
	}
	var rectBuf bytes.Buffer
	if err := WriteBinary2(&rectBuf, rect, 0); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&rectBuf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NRows != 3 || back.NCols != 2 {
		t.Errorf("V2 rectangular round-trip = %dx%d, want 3x2", back.NRows, back.NCols)
	}
}

func TestLoadFileDispatch(t *testing.T) {
	dir := t.TempDir()

	coo := sparse.NewCOO[float32](4, 4)
	coo.Add(0, 1, 2)
	coo.Add(1, 2, 3)

	mtxPath := filepath.Join(dir, "g.mtx")
	f, err := os.Create(mtxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMTX(f, coo); err != nil {
		t.Fatal(err)
	}
	f.Close()

	binPath := filepath.Join(dir, "g.bin")
	f, err = os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, coo); err != nil {
		t.Fatal(err)
	}
	f.Close()

	txtPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(txtPath, []byte("0 1 2\n1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, p := range []string{mtxPath, binPath, txtPath} {
		got, err := LoadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(got.Entries) != 2 {
			t.Errorf("%s: nnz = %d", p, len(got.Entries))
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Error("missing file accepted")
	}
}
