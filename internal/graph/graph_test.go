package graph

import (
	"testing"

	"graphmat/internal/sparse"
)

// fig3COO builds the Figure 3 SSSP example graph:
// vertices A..E = 0..4, weighted directed edges.
func fig3COO() *sparse.COO[float32] {
	c := sparse.NewCOO[float32](5, 5)
	c.Add(0, 1, 1) // A->B 1
	c.Add(0, 2, 3) // A->C 3
	c.Add(0, 3, 2) // A->D 2
	c.Add(1, 2, 1) // B->C 1
	c.Add(3, 4, 2) // D->E 2
	c.Add(4, 0, 4) // E->A 4
	c.Add(2, 3, 2) // C->D 2
	return c
}

func TestNewFromCOO(t *testing.T) {
	g, err := NewFromCOO[float32, float32](fig3COO(), Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 7 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 3 || g.InDegree(0) != 1 {
		t.Errorf("vertex 0 degrees: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if g.OutDegree(2) != 1 || g.InDegree(2) != 2 {
		t.Errorf("vertex 2 degrees: out=%d in=%d", g.OutDegree(2), g.InDegree(2))
	}
	if len(g.OutPartitions()) != 2 {
		t.Errorf("partitions = %d", len(g.OutPartitions()))
	}
	// Total nnz across partitions equals edge count.
	total := 0
	for _, p := range g.OutPartitions() {
		total += p.NNZ()
	}
	if total != 7 {
		t.Errorf("partition nnz total = %d", total)
	}
}

func TestRejectNonSquare(t *testing.T) {
	c := sparse.NewCOO[float32](3, 4)
	if _, err := NewFromCOO[int, float32](c, Options{}); err == nil {
		t.Error("non-square adjacency accepted")
	}
}

func TestRejectOutOfBounds(t *testing.T) {
	c := sparse.NewCOO[float32](2, 2)
	c.Add(5, 0, 1)
	if _, err := NewFromCOO[int, float32](c, Options{}); err == nil {
		t.Error("out-of-bounds edge accepted")
	}
}

func TestDedupOnBuild(t *testing.T) {
	c := sparse.NewCOO[float32](3, 3)
	c.Add(0, 1, 1)
	c.Add(0, 1, 9)
	c.Add(1, 2, 1)
	g, err := NewFromCOO[int, float32](c, Options{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
}

func TestPropsAndActive(t *testing.T) {
	g, err := NewFromCOO[float32, float32](fig3COO(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(1.5)
	if g.Prop(3) != 1.5 {
		t.Error("SetAllProps failed")
	}
	g.SetProp(3, 7)
	if g.Prop(3) != 7 || g.Prop(2) != 1.5 {
		t.Error("SetProp failed")
	}
	g.InitProps(func(v uint32) float32 { return float32(v) })
	if g.Prop(4) != 4 {
		t.Error("InitProps failed")
	}
	g.SetActive(2)
	if !g.Active().Get(2) || g.Active().Get(1) {
		t.Error("SetActive failed")
	}
	g.SetAllActive()
	if g.Active().Count() != 5 {
		t.Error("SetAllActive failed")
	}
	g.ClearActive()
	if g.Active().Any() {
		t.Error("ClearActive failed")
	}
}

func TestInPartitionsLazy(t *testing.T) {
	g, err := NewFromCOO[int, float32](fig3COO(), Options{Partitions: 3, Directions: Out})
	if err != nil {
		t.Fatal(err)
	}
	in := g.InPartitions()
	if len(in) != 3 {
		t.Fatalf("in partitions = %d", len(in))
	}
	total := 0
	for _, p := range in {
		total += p.NNZ()
	}
	if total != 7 {
		t.Errorf("in partition nnz = %d", total)
	}
	// Out partitions hold G^T (row=dst); in partitions hold G (row=src).
	// Column 0 of G = in-edges of A = {E->A}: rows = {4}.
	found := false
	for _, p := range in {
		rows, _ := p.Column(0)
		for _, r := range rows {
			if r == 4 {
				found = true
			}
		}
	}
	if !found {
		t.Error("in partitions missing E->A")
	}
}

func TestRepartition(t *testing.T) {
	g, err := NewFromCOO[int, float32](fig3COO(), Options{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.Repartition(4)
	if len(g.OutPartitions()) != 4 {
		t.Fatalf("partitions after Repartition = %d", len(g.OutPartitions()))
	}
	total := 0
	for _, p := range g.OutPartitions() {
		total += p.NNZ()
	}
	if total != 7 {
		t.Errorf("nnz after repartition = %d", total)
	}
	if g.Partitions() != 4 {
		t.Errorf("Partitions() = %d", g.Partitions())
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	orig := fig3COO()
	want := orig.Clone()
	want.SortRowMajor()
	g, err := NewFromCOO[int, float32](orig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adj := g.Adjacency()
	if len(adj.Entries) != len(want.Entries) {
		t.Fatalf("adjacency nnz %d != %d", len(adj.Entries), len(want.Entries))
	}
	for i := range want.Entries {
		if adj.Entries[i] != want.Entries[i] {
			t.Errorf("entry %d: %v != %v", i, adj.Entries[i], want.Entries[i])
		}
	}
}
