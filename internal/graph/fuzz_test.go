package graph

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"graphmat/internal/sparse"
)

// COOF abbreviates the concrete triple type the readers produce.
type COOF = sparse.COO[float32]

func NewCOOF(n uint32) *COOF { return sparse.NewCOO[float32](n, n) }

// The fuzz harness holds the readers to two promises: arbitrary input never
// panics or allocates beyond the input's own size (headers are claims, not
// budgets), and whenever a parse succeeds, the parallel chunked parse is
// bit-identical to the sequential one — the differential guarantee checked on
// every fuzz input, not just the curated corpus.

// sameParse compares a sequential and a parallel parse of the same bytes.
// Values compare as float bits so a NaN payload cannot mask a divergence.
func sameParse(t *testing.T, kind string, parse func(parallelism int) (*COOF, error)) {
	t.Helper()
	seq, seqErr := parse(1)
	par, parErr := parse(6)
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("%s: sequential err %v vs parallel err %v", kind, seqErr, parErr)
	}
	if seqErr != nil {
		return
	}
	if seq.NRows != par.NRows || seq.NCols != par.NCols {
		t.Fatalf("%s: dims %dx%d vs %dx%d", kind, seq.NRows, seq.NCols, par.NRows, par.NCols)
	}
	if len(seq.Entries) != len(par.Entries) {
		t.Fatalf("%s: %d entries vs %d", kind, len(seq.Entries), len(par.Entries))
	}
	for i := range seq.Entries {
		a, b := seq.Entries[i], par.Entries[i]
		if a.Row != b.Row || a.Col != b.Col || math.Float32bits(a.Val) != math.Float32bits(b.Val) {
			t.Fatalf("%s: entry %d: %v vs %v", kind, i, a, b)
		}
	}
}

func FuzzReadMTX(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.5\n3 1 2\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n% c\n4 4 2\n2 1\n4 4\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1 7\n"))
	// Malformed headers.
	f.Add([]byte(""))
	f.Add([]byte("%%MatrixMarket matrix array real general\n2 2\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate complex hermitian\n1 1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general"))
	// Overflow-sized and negative-looking counts: must error, never allocate.
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 99999999999999999999\n1 1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 -5\n1 1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n4294967295 4294967295 1000000\n1 1 1\n"))
	// Truncated payloads and out-of-bounds entries.
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n1 2 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sameParse(t, "mtx", func(p int) (*COOF, error) {
			return ParseMTX(data, LoadOptions{Parallelism: p})
		})
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2 3.5\n# comment\n\n2 0 0.25\n"))
	f.Add([]byte("% other comment style\r\n7 9\r\n"))
	f.Add([]byte("0 1 nope\n"))
	f.Add([]byte("42\n"))
	f.Add([]byte("4294967296 1\n")) // id overflows uint32
	f.Add([]byte("4294967295 0\n")) // id parses but the vertex count would wrap
	f.Add([]byte("-1 2\n"))
	f.Add([]byte("1 2 1e999\n"))
	f.Add([]byte("18446744073709551617 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sameParse(t, "edgelist", func(p int) (*COOF, error) {
			return ParseEdgeList(data, LoadOptions{Parallelism: p, MinVertices: 3})
		})
	})
}

// binV1 hand-assembles a GMATBIN1 payload with an arbitrary header edge count.
func binV1(n uint32, claimed uint64, records []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString("GMATBIN1")
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], n)
	binary.LittleEndian.PutUint64(hdr[4:12], claimed)
	buf.Write(hdr)
	buf.Write(records)
	return buf.Bytes()
}

func FuzzReadBinary(f *testing.F) {
	rec := make([]byte, 12)
	binary.LittleEndian.PutUint32(rec[0:4], 1)
	binary.LittleEndian.PutUint32(rec[4:8], 2)
	binary.LittleEndian.PutUint32(rec[8:12], math.Float32bits(1.5))

	f.Add(binV1(3, 1, rec))
	f.Add(binV1(3, 0, nil))
	// The classic crasher: a header that claims 2^61 edges over a 12-byte
	// body must error out instead of allocating ~2^65 bytes.
	f.Add(binV1(3, 1<<61, rec))
	f.Add(binV1(3, 2, rec)) // truncated: one record, two claimed
	f.Add([]byte("GMATBIN"))
	f.Add([]byte("WRONGMAG...."))

	// GMATBIN2 seeds: a valid two-section file, then mutations.
	var v2 bytes.Buffer
	coo := NewCOOF(3)
	coo.Add(0, 1, 1)
	coo.Add(1, 2, 2)
	coo.Add(2, 0, 3)
	if err := WriteBinary2(&v2, coo, 2); err != nil {
		f.Fatal(err)
	}
	valid := v2.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated payload
	f.Add(valid[:28])           // header only, no table
	bad := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(bad[16:24], 1<<60) // absurd edge count
	f.Add(bad)
	bad2 := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(bad2[24:28], 1<<20) // absurd section count
	f.Add(bad2)
	bad3 := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(bad3[28:36], 2) // sections don't tile
	f.Add(bad3)

	f.Fuzz(func(t *testing.T, data []byte) {
		sameParse(t, "binary", func(p int) (*COOF, error) {
			return ParseBinary(data, LoadOptions{Parallelism: p})
		})
	})
}
