// Snapshot-isolation test for the versioned store, designed to run under
// -race (this package is in the CI race matrix): algorithm runs on pinned
// snapshots proceed concurrently with update batches and compactions, and
// every run must observe exactly its epoch — edge count, epoch number and
// bit-identical BFS distances — from acquire to release.
//
// The file lives in the external test package so it can drive the real
// engine (graphmat + algorithms) against store snapshots; the internal
// white-box tests live in store_test.go.
package graph_test

import (
	"fmt"
	"sync"
	"testing"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
)

// isolationBatches returns deterministic property-level batches for the
// symmetrized BFS store: symmetric pairs so distances actually move.
func isolationBatches(n uint32, rounds int) [][]graphmat.EdgeUpdate {
	var out [][]graphmat.EdgeUpdate
	x := uint64(0xbeef)
	for r := 0; r < rounds; r++ {
		var b []graphmat.EdgeUpdate
		for j := 0; j < 120; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			u, v := uint32(x>>33)%n, uint32(x>>13)%n
			if u == v {
				continue
			}
			del := x%3 == 0
			b = append(b,
				graphmat.EdgeUpdate{Src: u, Dst: v, Val: 1, Del: del},
				graphmat.EdgeUpdate{Src: v, Dst: u, Val: 1, Del: del})
		}
		out = append(out, b)
	}
	return out
}

func TestStoreSnapshotIsolationRace(t *testing.T) {
	scale := 9
	if testing.Short() {
		scale = 7
	}
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 8, Seed: 77})
	n := adj.NRows
	const rounds = 6
	batches := isolationBatches(n, rounds)
	root := uint32(0)

	// Oracle pass: a private store walked sequentially records, per epoch,
	// the expected edge count and reference BFS distances. ApplyEdges is
	// deterministic, so the live store must reproduce these exactly.
	oracle, err := algorithms.NewBFSStore(adj.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := map[uint64]int64{0: oracle.NumEdges()}
	wantDist := map[uint64][]uint32{}
	record := func(epoch uint64) {
		snap := oracle.Acquire()
		defer snap.Release()
		dist, _, err := algorithms.BFSWithWorkspace(snap.View(), root, graphmat.Config{Threads: 2},
			graphmat.NewWorkspace[uint32, uint32](int(n), graphmat.Bitvector))
		if err != nil {
			t.Fatal(err)
		}
		wantDist[epoch] = dist
	}
	record(0)
	for i, b := range batches {
		if _, err := oracle.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
		if i == rounds/2 {
			oracle.Compact() // keep the oracle's trajectory identical to the live store's
		}
		wantEdges[oracle.Epoch()] = oracle.NumEdges()
		record(oracle.Epoch())
	}

	// Live store: runners race the updater.
	live, err := algorithms.NewBFSStore(adj.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	stop := make(chan struct{})

	const runners = 4
	for r := 0; r < runners; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ws := graphmat.NewWorkspace[uint32, uint32](int(n), graphmat.Bitvector)
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i > 0 {
						return
					}
				default:
				}
				snap := live.Acquire()
				epoch := snap.Epoch()
				g := snap.View() // private run state over shared structure
				edgesBefore := g.NumEdges()
				dist, _, err := algorithms.BFSWithWorkspace(g, root, graphmat.Config{Threads: 2}, ws)
				if err != nil {
					errc <- err
					snap.Release()
					return
				}
				switch {
				case snap.Epoch() != epoch:
					errc <- fmt.Errorf("runner %d: snapshot epoch moved %d -> %d mid-run", r, epoch, snap.Epoch())
				case g.NumEdges() != edgesBefore:
					errc <- fmt.Errorf("runner %d: edge count moved %d -> %d mid-run", r, edgesBefore, g.NumEdges())
				case g.NumEdges() != wantEdges[epoch]:
					errc <- fmt.Errorf("runner %d: epoch %d has %d edges, oracle says %d", r, epoch, g.NumEdges(), wantEdges[epoch])
				default:
					want := wantDist[epoch]
					for v := range want {
						if dist[v] != want[v] {
							errc <- fmt.Errorf("runner %d: epoch %d dist[%d] = %d, oracle %d (mixed-epoch read)", r, epoch, v, dist[v], want[v])
							break
						}
					}
				}
				snap.Release()
			}
		}(r)
	}

	// Updater: same trajectory as the oracle, including the mid-way forced
	// compaction; automatic compaction may trigger too (same on both
	// stores, since ApplyEdges is deterministic).
	for i, b := range batches {
		if _, err := live.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
		if i == rounds/2 {
			live.Compact()
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if live.Epoch() != uint64(rounds) {
		t.Fatalf("live store epoch = %d, want %d", live.Epoch(), rounds)
	}
	if st := live.Stats(); st.Pinned != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
	if live.Stats().Compactions == 0 {
		t.Fatal("no compaction ran during the race window")
	}
}
