package graph

import (
	"bytes"
	"fmt"
	"testing"

	"graphmat/internal/sparse"
)

// The store's ground truth: a snapshot with applied batches must be
// indistinguishable — live triples in both directions, degrees, edge count,
// per-column push probes — from a Graph freshly built from the equivalent
// edge set. These tests assert that equivalence structurally; the engine-
// and algorithm-level differentials assert it through results.

// testAdj builds a deterministic scale-free-ish adjacency.
func testAdj(n uint32, seed uint64) *sparse.COO[float32] {
	c := sparse.NewCOO[float32](n, n)
	x := seed
	rnd := func(m uint32) uint32 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return uint32(x % uint64(m))
	}
	for i := 0; i < int(n)*6; i++ {
		src, dst := rnd(n), rnd(n)
		if rnd(4) == 0 {
			src = rnd(n / 8) // hub bias
		}
		c.Add(src, dst, float32(rnd(100))+1)
	}
	return c
}

// liveTriples walks a layered direction and returns its live entries.
func liveTriples(layers []sparse.Layered[float32]) map[[2]uint32]float32 {
	out := map[[2]uint32]float32{}
	for _, l := range layers {
		l.Iterate(func(row, col uint32, val float32) {
			out[[2]uint32{row, col}] = val
		})
	}
	return out
}

// sameGraph asserts got's live structure equals a fresh build (want) in every
// observable: triples of both directions, degrees, edge count, and push-probe
// visibility of every live column.
func sameGraph(t *testing.T, what string, got, want *Graph[uint32, float32]) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: vertices %d vs %d", what, got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: edges %d vs %d", what, got.NumEdges(), want.NumEdges())
	}
	for _, dir := range []string{"out", "in"} {
		var gl, wl []sparse.Layered[float32]
		if dir == "out" {
			gl, wl = got.OutLayers(), want.OutLayers()
		} else {
			gl, wl = got.InLayers(), want.InLayers()
		}
		gt, wt := liveTriples(gl), liveTriples(wl)
		if len(gt) != len(wt) {
			t.Fatalf("%s %s: %d live triples vs %d", what, dir, len(gt), len(wt))
		}
		for k, v := range wt {
			if gt[k] != v {
				t.Fatalf("%s %s: triple %v = %v, want %v", what, dir, k, gt[k], v)
			}
		}
		// Every live column must be findable through the overlay the way the
		// push kernel probes it (delta-first, AUX-backed), with identical
		// content.
		cols := map[uint32]bool{}
		for k := range wt {
			cols[k[1]] = true
		}
		for _, l := range gl {
			for col := range cols {
				rows, vals := l.Column(col)
				wantRows := map[uint32]float32{}
				for k, v := range wt {
					if k[1] == col && k[0] >= l.Base.RowLo && k[0] < l.Base.RowHi {
						wantRows[k[0]] = v
					}
				}
				if len(rows) != len(wantRows) {
					t.Fatalf("%s %s: column %d probe sees %d rows, want %d", what, dir, col, len(rows), len(wantRows))
				}
				for i, r := range rows {
					if wantRows[r] != vals[i] {
						t.Fatalf("%s %s: column %d row %d = %v, want %v", what, dir, col, r, vals[i], wantRows[r])
					}
				}
			}
		}
	}
	for v := uint32(0); v < got.NumVertices(); v++ {
		if got.OutDegree(v) != want.OutDegree(v) {
			t.Fatalf("%s: out-degree[%d] = %d, want %d", what, v, got.OutDegree(v), want.OutDegree(v))
		}
		if got.InDegree(v) != want.InDegree(v) {
			t.Fatalf("%s: in-degree[%d] = %d, want %d", what, v, got.InDegree(v), want.InDegree(v))
		}
	}
}

// equivalentAdj applies batches to raw triples by brute force and returns the
// fresh-build input.
func equivalentAdj(adj *sparse.COO[float32], batches [][]Update[float32]) *sparse.COO[float32] {
	live := map[[2]uint32]float32{}
	var order [][2]uint32
	norm := adj.Clone()
	NormalizeAdjacency(norm, 1)
	for _, t := range norm.Entries {
		k := [2]uint32{t.Row, t.Col}
		live[k] = t.Val
		order = append(order, k)
	}
	for _, b := range batches {
		for _, u := range b {
			k := [2]uint32{u.Src, u.Dst}
			if u.Del {
				delete(live, k)
				continue
			}
			if _, ok := live[k]; !ok {
				order = append(order, k)
			}
			live[k] = u.Val
		}
	}
	out := sparse.NewCOO[float32](adj.NRows, adj.NCols)
	for _, k := range order {
		if v, ok := live[k]; ok {
			out.Add(k[0], k[1], v)
			delete(live, k)
		}
	}
	return out
}

func storeBatches(n uint32) [][]Update[float32] {
	return [][]Update[float32]{
		{ // inserts incl. a brand-new column, plus upserts
			{Src: 1, Dst: n - 2, Val: 7},
			{Src: n - 1, Dst: 0, Val: 8},
			{Src: 2, Dst: 3, Val: 9},
			{Src: 2, Dst: 3, Val: 10}, // same-batch overwrite: last wins
		},
		{ // deletes incl. no-ops, plus an insert of a previously deleted edge
			{Src: 2, Dst: 3, Del: true},
			{Src: 0, Dst: 1, Del: true},
			{Src: n - 3, Dst: n - 3, Val: 4}, // self-loop
			{Src: 5, Dst: 6, Del: true},
			{Src: 5, Dst: 6, Val: 11},
		},
		{ // heavier mixed batch
			{Src: 7, Dst: 8, Val: 1}, {Src: 8, Dst: 7, Val: 2},
			{Src: 1, Dst: n - 2, Del: true},
			{Src: 3, Dst: 3, Del: true},
			{Src: 9, Dst: 1, Val: 3}, {Src: 9, Dst: 2, Val: 3}, {Src: 9, Dst: 3, Val: 3},
		},
	}
}

func TestStoreApplyMatchesFreshBuild(t *testing.T) {
	const n = 320
	adj := testAdj(n, 99)
	for _, workers := range []int{1, 4} {
		opts := Options{Partitions: 7, Directions: Both, Workers: workers, CompactFraction: -1}
		st, err := NewStore[uint32](adj.Clone(), opts)
		if err != nil {
			t.Fatal(err)
		}
		batches := storeBatches(n)
		for i, b := range batches {
			res, err := st.ApplyEdges(b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Epoch != uint64(i+1) {
				t.Fatalf("batch %d: epoch %d", i, res.Epoch)
			}
			want, err := NewFromCOO[uint32](equivalentAdj(adj, batches[:i+1]), opts)
			if err != nil {
				t.Fatal(err)
			}
			snap := st.Acquire()
			sameGraph(t, fmt.Sprintf("workers=%d batch=%d", workers, i), snap.Graph(), want)
			snap.Release()
		}
		if st.Stats().Compactions != 0 {
			t.Fatalf("auto-compaction ran with CompactFraction=-1")
		}
		// Explicit compaction: same epoch, same structure, overlay gone.
		preEpoch := st.Epoch()
		st.Compact()
		if st.Epoch() != preEpoch {
			t.Fatalf("compaction changed the epoch: %d -> %d", preEpoch, st.Epoch())
		}
		snap := st.Acquire()
		if snap.Graph().OverlayNNZ() != 0 || snap.Graph().PendingUpdates() != 0 {
			t.Fatalf("overlay survived compaction: %d nnz, %d pending",
				snap.Graph().OverlayNNZ(), snap.Graph().PendingUpdates())
		}
		want, err := NewFromCOO[uint32](equivalentAdj(adj, batches), opts)
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, fmt.Sprintf("workers=%d compacted", workers), snap.Graph(), want)
		snap.Release()
	}
}

// TestStoreAutoCompaction drives enough churn through a small graph to cross
// the compaction fraction and checks the fold preserved the edge set.
func TestStoreAutoCompaction(t *testing.T) {
	const n = 128
	adj := testAdj(n, 5)
	st, err := NewStore[uint32](adj.Clone(), Options{Partitions: 4, CompactFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]Update[float32]
	x := uint64(17)
	for i := 0; i < 12; i++ {
		var b []Update[float32]
		for j := 0; j < 40; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			src, dst := uint32(x>>33)%n, uint32(x>>13)%n
			b = append(b, Update[float32]{Src: src, Dst: dst, Val: float32(i*40 + j), Del: x%3 == 0})
		}
		batches = append(batches, b)
		if _, err := st.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Compactions == 0 {
		t.Fatalf("no compaction after 12 churn batches at fraction 0.1: %+v", st.Stats())
	}
	want, err := NewFromCOO[uint32](equivalentAdj(adj, batches), Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Acquire()
	defer snap.Release()
	sameGraph(t, "auto-compacted", snap.Graph(), want)
	if st.Epoch() != 12 {
		t.Fatalf("epoch = %d, want 12", st.Epoch())
	}
}

// TestStoreSnapshotImmutability pins a snapshot, applies updates, and checks
// the pinned epoch still reads the old edge set while the store serves the
// new one.
func TestStoreSnapshotImmutability(t *testing.T) {
	adj := testAdj(100, 3)
	st, err := NewStore[uint32](adj.Clone(), Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	old := st.Acquire()
	oldEdges := old.Graph().NumEdges()
	oldTriples := liveTriples(old.Graph().OutLayers())

	if _, err := st.ApplyEdges([]Update[float32]{{Src: 1, Dst: 99, Val: 5}, {Src: 0, Dst: 2, Del: true}}); err != nil {
		t.Fatal(err)
	}
	st.Compact()

	if old.Epoch() != 0 || old.Graph().NumEdges() != oldEdges {
		t.Fatalf("pinned snapshot drifted: epoch %d edges %d (was %d)", old.Epoch(), old.Graph().NumEdges(), oldEdges)
	}
	now := liveTriples(old.Graph().OutLayers())
	if len(now) != len(oldTriples) {
		t.Fatalf("pinned snapshot triple count drifted: %d vs %d", len(now), len(oldTriples))
	}
	if st.Epoch() != 1 {
		t.Fatalf("store epoch = %d", st.Epoch())
	}
	if old.Pins() != 1 {
		t.Fatalf("pins = %d", old.Pins())
	}
	old.Release()
	if st.Stats().Pinned != 0 {
		t.Fatalf("store pinned = %d after release", st.Stats().Pinned)
	}
}

// TestStoreLazyDirectionReplay builds Out-only, applies updates, then asks
// for the In direction: the lazy build must replay the pending log.
func TestStoreLazyDirectionReplay(t *testing.T) {
	adj := testAdj(96, 11)
	batches := [][]Update[float32]{
		{{Src: 0, Dst: 95, Val: 42}, {Src: 1, Dst: 2, Del: true}},
		{{Src: 95, Dst: 0, Val: 43}},
	}
	st, err := NewStore[uint32](adj.Clone(), Options{Partitions: 5, Directions: Out, CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	snap := st.Acquire()
	defer snap.Release()
	want, err := NewFromCOO[uint32](equivalentAdj(adj, batches), Options{Partitions: 5, Directions: Both})
	if err != nil {
		t.Fatal(err)
	}
	gt, wt := liveTriples(snap.Graph().InLayers()), liveTriples(want.InLayers())
	if len(gt) != len(wt) {
		t.Fatalf("lazy In: %d triples vs %d", len(gt), len(wt))
	}
	for k, v := range wt {
		if gt[k] != v {
			t.Fatalf("lazy In: triple %v = %v, want %v", k, gt[k], v)
		}
	}
}

// TestStoreRejectsOutOfRange checks whole-batch rejection and that nothing
// was published.
func TestStoreRejectsOutOfRange(t *testing.T) {
	st, err := NewStore[uint32](testAdj(32, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.ApplyEdges([]Update[float32]{{Src: 0, Dst: 1, Val: 1}, {Src: 32, Dst: 0, Val: 1}})
	if err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if st.Epoch() != 0 {
		t.Fatalf("failed batch advanced the epoch to %d", st.Epoch())
	}
}

// TestHasEdgeThroughOverlay covers the live-edge probe across base, delta
// and tombstoned columns.
func TestHasEdgeThroughOverlay(t *testing.T) {
	adj := sparse.NewCOO[float32](16, 16)
	adj.Add(1, 2, 10)
	adj.Add(3, 4, 11)
	st, err := NewStore[uint32](adj, Options{Partitions: 2, CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyEdges([]Update[float32]{
		{Src: 3, Dst: 4, Del: true},
		{Src: 5, Dst: 6, Val: 12},
		{Src: 1, Dst: 2, Val: 13},
	}); err != nil {
		t.Fatal(err)
	}
	snap := st.Acquire()
	defer snap.Release()
	g := snap.Graph()
	if v, ok := g.HasEdge(1, 2); !ok || v != 13 {
		t.Errorf("HasEdge(1,2) = %v,%v want 13,true", v, ok)
	}
	if _, ok := g.HasEdge(3, 4); ok {
		t.Errorf("deleted edge (3,4) still live")
	}
	if v, ok := g.HasEdge(5, 6); !ok || v != 12 {
		t.Errorf("HasEdge(5,6) = %v,%v want 12,true", v, ok)
	}
	if _, ok := g.HasEdge(2, 1); ok {
		t.Errorf("phantom edge (2,1)")
	}
}

// TestApplyToAdjacencyAndLookup covers the master-copy helpers the serving
// layer uses to keep its raw edge set in step with instance stores.
func TestApplyToAdjacencyAndLookup(t *testing.T) {
	adj := testAdj(64, 7)
	NormalizeAdjacency(adj, 0)
	batch := []Update[float32]{
		{Src: 0, Dst: 63, Val: 9},
		{Src: 1, Dst: 1, Del: true},
		{Src: 0, Dst: 63, Val: 10}, // overwrite within batch
	}
	next, err := ApplyToAdjacency(adj, batch)
	if err != nil {
		t.Fatal(err)
	}
	want := equivalentAdj(adj, [][]Update[float32]{batch})
	NormalizeAdjacency(want, 1)
	if len(next.Entries) != len(want.Entries) {
		t.Fatalf("applied adjacency has %d entries, want %d", len(next.Entries), len(want.Entries))
	}
	for i := range want.Entries {
		if next.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, next.Entries[i], want.Entries[i])
		}
	}
	if v, ok := LookupEdge(next, 0, 63); !ok || v != 10 {
		t.Errorf("LookupEdge(0,63) = %v,%v", v, ok)
	}
	if _, ok := LookupEdge(next, 1, 1); ok {
		t.Errorf("LookupEdge found deleted (1,1)")
	}
	if _, err := ApplyToAdjacency(adj, []Update[float32]{{Src: 64, Dst: 0}}); err == nil {
		t.Errorf("out-of-range master update accepted")
	}
}

// TestParseUpdates covers both wire formats and the sniffing entry point.
func TestParseUpdates(t *testing.T) {
	nd := "{\"src\":1,\"dst\":2,\"weight\":1.5}\n\n{\"src\":3,\"dst\":4,\"del\":true}\n{\"src\":5,\"dst\":6}\n"
	ups, err := ParseUpdates([]byte(nd))
	if err != nil {
		t.Fatal(err)
	}
	want := []Update[float32]{{1, 2, 1.5, false}, {3, 4, 1, true}, {5, 6, 1, false}}
	if len(ups) != len(want) {
		t.Fatalf("ndjson: %d updates", len(ups))
	}
	for i := range want {
		if ups[i] != want[i] {
			t.Fatalf("ndjson[%d] = %+v, want %+v", i, ups[i], want[i])
		}
	}
	txt := "# comment\nadd 1 2 1.5\ndel 3 4\n5 6\n"
	ups2, err := ParseUpdates([]byte(txt))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups2) != len(want) {
		t.Fatalf("text: %d updates", len(ups2))
	}
	for i := range want {
		if ups2[i] != want[i] {
			t.Fatalf("text[%d] = %+v, want %+v", i, ups2[i], want[i])
		}
	}
	if _, err := ParseUpdates([]byte("{\"src\":1,\"bogus\":2}\n")); err == nil {
		t.Error("unknown NDJSON field accepted")
	}
	if _, err := ParseUpdates([]byte("add 1\n")); err == nil {
		t.Error("short text line accepted")
	}
	// Round trip.
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	back, err := ParseUpdates(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ups) {
		t.Fatalf("round trip: %d vs %d", len(back), len(ups))
	}
	for i := range ups {
		if back[i] != ups[i] {
			t.Fatalf("round trip[%d] = %+v, want %+v", i, back[i], ups[i])
		}
	}
}
