package graph

import (
	"sync"
	"sync/atomic"
)

// updateLog is the shared append-only mutation log behind a chain of graph
// epochs. Each epoch views a prefix of one backing slice, so applying a batch
// at the chain tip extends the log in place and costs amortized O(batch) —
// not O(total history), which made long uncompacted chains quadratic. A prior
// epoch's view is never disturbed: in-place appends write strictly beyond
// every published prefix, a reallocation publishes the fresh backing array
// through the atomic pointer (its shared prefix already copied), and
// extending from a non-tip view — a branch — copies into a fresh log.
type updateLog[E any] struct {
	mu  sync.Mutex // serializes appenders
	buf atomic.Pointer[[]Update[E]]
}

// view returns the log's first n entries, aliasing the shared backing array.
// Full-capacity slicing keeps callers from appending past the view.
func (l *updateLog[E]) view(n int) []Update[E] {
	if l == nil || n == 0 {
		return nil
	}
	return (*l.buf.Load())[:n:n]
}

// extend appends norm after the first viewLen entries and returns the log and
// view length for the successor epoch. Only the tip (viewLen equal to the
// committed length) extends in place; any other view copies its prefix into a
// fresh log so sibling chains cannot scribble over each other's tails.
func (l *updateLog[E]) extend(viewLen int, norm []Update[E]) (*updateLog[E], int) {
	if l != nil {
		l.mu.Lock()
		cur := *l.buf.Load()
		if len(cur) == viewLen {
			nb := append(cur, norm...)
			l.buf.Store(&nb)
			l.mu.Unlock()
			return l, len(nb)
		}
		l.mu.Unlock()
		nb := make([]Update[E], 0, viewLen+len(norm))
		nb = append(append(nb, cur[:viewLen]...), norm...)
		nl := &updateLog[E]{}
		nl.buf.Store(&nb)
		return nl, len(nb)
	}
	nb := append([]Update[E](nil), norm...)
	nl := &updateLog[E]{}
	nl.buf.Store(&nb)
	return nl, len(nb)
}
