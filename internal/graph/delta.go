package graph

import (
	"fmt"
	"slices"
	"sort"

	"graphmat/internal/bitvec"
	"graphmat/internal/sparse"
)

// This file is the mutation half of the versioned store: applying a batch of
// edge updates to an immutable Graph produces a NEW Graph one epoch later
// that shares the base structures (partitions, triple lists) and carries the
// divergence as per-partition delta overlays, plus the compaction that folds
// an oversized overlay back into the base through the parallel rebuild
// pipeline. Nothing here mutates the receiver — snapshot isolation falls out
// of the sharing discipline, not locking.

// minParallelDeltaMuts is the mutation count below which delta merges run on
// the calling goroutine. MergeDelta is a linear merge over the touched
// columns; for typical small batches the per-batch goroutine fan-out/park
// cycle dominates the merge itself (the BENCH_store workers_4 regression).
const minParallelDeltaMuts = 1 << 12

// ApplyResult reports what one update batch did.
type ApplyResult struct {
	// Epoch is the edge-set version the batch produced.
	Epoch uint64 `json:"epoch"`
	// Inserted counts updates that added an edge absent from the live set.
	Inserted int `json:"inserted"`
	// Deleted counts updates that removed a live edge.
	Deleted int `json:"deleted"`
	// Updated counts upserts of edges that already existed (value replace).
	Updated int `json:"updated"`
	// NoOps counts deletes of edges that were not live.
	NoOps int `json:"noops"`
	// Compacted reports whether the batch pushed the overlay past the
	// compaction fraction and the store folded it into the base.
	Compacted bool `json:"compacted"`
}

// applyBatch returns a new Graph representing this graph's edge set with the
// batch applied, one epoch later. The receiver is not modified; the result
// shares its base structures. Degrees, edge count and both traversal
// directions stay coherent with what a from-scratch build of the same edge
// set would produce.
func (g *Graph[V, E]) applyBatch(batch []Update[E]) (*Graph[V, E], ApplyResult, error) {
	var res ApplyResult
	for _, u := range batch {
		if u.Src >= g.n || u.Dst >= g.n {
			return nil, res, fmt.Errorf("graph: update (%d,%d) outside %d-vertex graph", u.Src, u.Dst, g.n)
		}
	}
	norm := normalizeUpdates(batch)

	// Direction presence is decided from Options, not from runtime nil
	// checks: the opts-requested structures were built eagerly at
	// construction and are immutable, while a direction some run built
	// LAZILY mutates the shared snapshot graph and may be mid-build on
	// another goroutine right now. Such extras are deliberately not carried
	// into the successor — it rebuilds them (with pending replay) if asked.
	hasOut := g.opts.Directions&Out != 0
	hasIn := g.opts.Directions&In != 0
	ng := &Graph[V, E]{
		n: g.n, m: g.m,
		fwd:   g.fwd,
		opts:  g.opts,
		epoch: g.epoch + 1,
	}
	if hasOut {
		ng.outParts = g.outParts
	}
	if hasIn {
		ng.bwd, ng.inParts = g.bwd, g.inParts
	}
	// Shared log: the tip extends in place (amortized O(batch)); only a
	// branch off an older epoch pays the prefix copy. Either way no prior
	// epoch's view is disturbed.
	ng.log, ng.logLen = g.log.extend(g.logLen, norm)
	ng.outDeg = slices.Clone(g.outDeg)
	ng.inDeg = slices.Clone(g.inDeg)

	// Accounting against the OLD live set decides degree and edge-count
	// deltas exactly: an upsert moves nothing, a no-op delete moves nothing.
	for _, u := range norm {
		_, present := g.HasEdge(u.Src, u.Dst)
		switch {
		case u.Del && present:
			res.Deleted++
			ng.outDeg[u.Src]--
			ng.inDeg[u.Dst]--
			ng.m--
		case u.Del:
			res.NoOps++
		case present:
			res.Updated++
		default:
			res.Inserted++
			ng.outDeg[u.Src]++
			ng.inDeg[u.Dst]++
			ng.m++
		}
	}

	if hasOut {
		ng.outDelta = buildDeltas(ng.outParts, g.outDelta, fwdMuts(norm), g.opts.Workers)
	}
	if hasIn {
		ng.inDelta = buildDeltas(ng.inParts, g.inDelta, bwdMuts(norm), g.opts.Workers)
	}
	ng.overlayNNZ = sparse.OverheadNNZ(ng.outDelta) + sparse.OverheadNNZ(ng.inDelta)

	ng.props = make([]V, g.n)
	ng.active = bitvec.New(int(g.n))
	res.Epoch = ng.epoch
	return ng, res, nil
}

// buildDeltas merges column-major sorted mutations into per-partition deltas,
// scattering by output row first (the same stable scatter the parallel
// partition build uses, so each partition sees its mutations in column-major
// order) and merging partitions concurrently. Untouched partitions share the
// old delta.
func buildDeltas[E any](parts, old []*sparse.DCSC[E], muts []sparse.Mut[E], workers int) []*sparse.DCSC[E] {
	nparts := len(parts)
	frags := make([][]sparse.Mut[E], nparts)
	for _, m := range muts {
		p := findPartition(parts, m.Row)
		frags[p] = append(frags[p], m)
	}
	out := make([]*sparse.DCSC[E], nparts)
	nworkers := sparse.Workers(workers)
	if len(muts) < minParallelDeltaMuts {
		// Small batches merge inline: spawning and parking goroutines costs
		// more than merging a few thousand mutations.
		nworkers = 1
	}
	sparse.ParallelFor(nparts, nworkers, func(p int) {
		var prev *sparse.DCSC[E]
		if old != nil {
			prev = old[p]
		}
		out[p] = sparse.MergeDelta(parts[p], prev, frags[p])
	})
	return out
}

// findPartition locates the partition whose row range contains r. Partition
// row ranges are contiguous and nondecreasing (PartitionRows), so this is a
// binary search over the upper bounds.
func findPartition[E any](parts []*sparse.DCSC[E], r uint32) int {
	return sort.Search(len(parts), func(i int) bool { return parts[i].RowHi > r })
}

// HasEdge reports whether the directed edge src→dst is live, returning its
// value. The probe goes through a traversal direction the graph was BUILT
// with (per Options.Directions — those structures are immutable, unlike
// lazily built extras) — delta override first (authoritative), base column
// otherwise — and never triggers a lazy direction build.
func (g *Graph[V, E]) HasEdge(src, dst uint32) (E, bool) {
	var zero E
	switch {
	case g.opts.Directions&Out != 0 && g.outParts != nil:
		// Forward structure: Row = dst, Col = src.
		p := findPartition(g.outParts, dst)
		if p >= len(g.outParts) {
			return zero, false
		}
		l := sparse.Layered[E]{Base: g.outParts[p]}
		if g.outDelta != nil {
			l.Delta = g.outDelta[p]
		}
		rows, vals := l.Column(src)
		if i, ok := findRow(rows, dst); ok {
			return vals[i], true
		}
	case g.opts.Directions&In != 0 && g.inParts != nil:
		// Backward structure: Row = src, Col = dst.
		p := findPartition(g.inParts, src)
		if p >= len(g.inParts) {
			return zero, false
		}
		l := sparse.Layered[E]{Base: g.inParts[p]}
		if g.inDelta != nil {
			l.Delta = g.inDelta[p]
		}
		rows, vals := l.Column(dst)
		if i, ok := findRow(rows, src); ok {
			return vals[i], true
		}
	default:
		// No traversal structure built yet (cannot happen through NewFromCOO,
		// which always builds at least one direction): consult the triple
		// lists via the pending log semantics.
		log := g.pending()
		for i := len(log) - 1; i >= 0; i-- {
			if u := log[i]; u.Src == src && u.Dst == dst {
				return u.Val, !u.Del
			}
		}
		for _, t := range g.fwd.Entries {
			if t.Col == src && t.Row == dst {
				return t.Val, true
			}
		}
	}
	return zero, false
}

// findRow binary-searches an ascending row list.
func findRow(rows []uint32, r uint32) (int, bool) {
	i := sort.Search(len(rows), func(k int) bool { return rows[k] >= r })
	if i < len(rows) && rows[i] == r {
		return i, true
	}
	return 0, false
}

// materializeFwd returns the live forward triples (Row = dst, Col = src,
// column-major sorted): the base list with the pending log's final state per
// key merged in. With no pending mutations it is a plain clone.
func (g *Graph[V, E]) materializeFwd() *sparse.COO[E] {
	if g.logLen == 0 {
		return g.fwd.Clone()
	}
	// The log normalizes across batches exactly like within one: a stable
	// (src, dst) sort keeps application order inside each key, and keep-last
	// is the final state.
	final := normalizeUpdates(g.pending())
	out := &sparse.COO[E]{NRows: g.fwd.NRows, NCols: g.fwd.NCols}
	out.Entries = make([]sparse.Triple[E], 0, len(g.fwd.Entries)+len(final))
	src := g.fwd.Entries
	i := 0
	for _, u := range final {
		// Forward order: (Col = src, Row = dst) ascending — the same order
		// normalizeUpdates leaves the log in.
		for i < len(src) && (src[i].Col < u.Src || (src[i].Col == u.Src && src[i].Row < u.Dst)) {
			out.Entries = append(out.Entries, src[i])
			i++
		}
		if i < len(src) && src[i].Col == u.Src && src[i].Row == u.Dst {
			i++
		}
		if !u.Del {
			out.Entries = append(out.Entries, sparse.Triple[E]{Row: u.Dst, Col: u.Src, Val: u.Val})
		}
	}
	out.Entries = append(out.Entries, src[i:]...)
	return out
}

// compacted returns a Graph with the same epoch and live edge set but no
// overlay: the pending log is materialized into a fresh forward triple list
// and the traversal structures are rebuilt through the parallel partition
// pipeline. The receiver is untouched, so pinned snapshots of it stay valid.
func (g *Graph[V, E]) compacted() *Graph[V, E] {
	if g.logLen == 0 {
		return g
	}
	ng := &Graph[V, E]{n: g.n, opts: g.opts, epoch: g.epoch}
	ng.fwd = g.materializeFwd()
	ng.m = int64(len(ng.fwd.Entries))
	ng.outDeg = ng.fwd.ColCounts()
	ng.inDeg = ng.fwd.RowCounts()
	// Rebuild per Options.Directions, not per runtime nil checks — the
	// same shared-mutation discipline applyBatch follows.
	if g.opts.Directions&Out != 0 {
		ng.outParts = sparse.BuildPartitionedDCSCParallel(ng.fwd, g.opts.Partitions, g.opts.Workers)
	}
	if g.opts.Directions&In != 0 {
		ng.buildBackward()
	}
	ng.props = make([]V, g.n)
	ng.active = bitvec.New(int(g.n))
	return ng
}
