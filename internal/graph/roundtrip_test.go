package graph

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// caseGraphs are the shapes every format must carry losslessly: nothing,
// self-loops, duplicate edges (readers must not dedup), and isolated
// vertices.
func caseGraphs() map[string]*COOF {
	empty := NewCOOF(0)

	selfLoops := NewCOOF(4)
	selfLoops.Add(0, 0, 1)
	selfLoops.Add(1, 2, 2.5)
	selfLoops.Add(3, 3, -1)

	dups := NewCOOF(3)
	dups.Add(0, 1, 1)
	dups.Add(0, 1, 2)
	dups.Add(0, 1, 2)
	dups.Add(2, 2, 0.125)

	isolated := NewCOOF(10) // vertices 3..9 have no edges
	isolated.Add(0, 1, 1)
	isolated.Add(2, 0, 4)

	return map[string]*COOF{
		"empty":     empty,
		"selfloops": selfLoops,
		"dups":      dups,
		"isolated":  isolated,
	}
}

func sameCOO(t *testing.T, what string, want, got *COOF, wantDims bool) {
	t.Helper()
	if wantDims && (want.NRows != got.NRows || want.NCols != got.NCols) {
		t.Fatalf("%s: dims %dx%d, want %dx%d", what, got.NRows, got.NCols, want.NRows, want.NCols)
	}
	if len(want.Entries) != len(got.Entries) {
		t.Fatalf("%s: %d entries, want %d", what, len(got.Entries), len(want.Entries))
	}
	for i := range want.Entries {
		if want.Entries[i] != got.Entries[i] {
			t.Fatalf("%s: entry %d = %v, want %v", what, i, got.Entries[i], want.Entries[i])
		}
	}
}

// TestRoundTripAllFormats writes each case graph in each format and reads it
// back, asserting exact entry preservation.
func TestRoundTripAllFormats(t *testing.T) {
	type format struct {
		write    func(w io.Writer, c *COOF) error
		read     func(data []byte, minVertices uint32) (*COOF, error)
		keepDims bool // whether the format can express the vertex count
	}
	formats := map[string]format{
		"mtx": {
			write:    WriteMTX,
			read:     func(d []byte, _ uint32) (*COOF, error) { return ParseMTX(d, LoadOptions{Parallelism: 3}) },
			keepDims: true,
		},
		"edgelist": {
			write: WriteEdgeList,
			read: func(d []byte, minV uint32) (*COOF, error) {
				return ParseEdgeList(d, LoadOptions{Parallelism: 3, MinVertices: minV})
			},
			keepDims: true, // recovered via MinVertices
		},
		"binv1": {
			write:    WriteBinary,
			read:     func(d []byte, _ uint32) (*COOF, error) { return ParseBinary(d, LoadOptions{Parallelism: 3}) },
			keepDims: true,
		},
		"binv2": {
			write:    func(w io.Writer, c *COOF) error { return WriteBinary2(w, c, 3) },
			read:     func(d []byte, _ uint32) (*COOF, error) { return ParseBinary(d, LoadOptions{Parallelism: 3}) },
			keepDims: true,
		},
	}
	for gname, g := range caseGraphs() {
		for fname, f := range formats {
			var buf bytes.Buffer
			if err := f.write(&buf, g); err != nil {
				t.Fatalf("%s/%s: write: %v", gname, fname, err)
			}
			back, err := f.read(buf.Bytes(), g.NRows)
			if err != nil {
				t.Fatalf("%s/%s: read: %v", gname, fname, err)
			}
			sameCOO(t, gname+"/"+fname, g, back, f.keepDims)
		}
	}
}

// TestRoundTripChain converts one graph through every format in sequence —
// MTX → edge list → binary v1 → binary v2 — and compares the final result to
// the original.
func TestRoundTripChain(t *testing.T) {
	g := NewCOOF(6)
	g.Add(0, 1, 1.5)
	g.Add(1, 4, 2)
	g.Add(4, 4, 0.25) // self-loop
	g.Add(2, 0, 3)
	g.Add(2, 0, 3) // duplicate
	g.Add(5, 5, 1) // pins the vertex count for the edge-list hop

	var mtx bytes.Buffer
	if err := WriteMTX(&mtx, g); err != nil {
		t.Fatal(err)
	}
	fromMTX, err := ParseMTX(mtx.Bytes(), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := WriteEdgeList(&el, fromMTX); err != nil {
		t.Fatal(err)
	}
	fromEL, err := ParseEdgeList(el.Bytes(), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b1 bytes.Buffer
	if err := WriteBinary(&b1, fromEL); err != nil {
		t.Fatal(err)
	}
	fromB1, err := ParseBinary(b1.Bytes(), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := WriteBinary2(&b2, fromB1, 2); err != nil {
		t.Fatal(err)
	}
	final, err := ParseBinary(b2.Bytes(), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameCOO(t, "chain", g, final, true)
}

// TestParseErrorLineNumbers is the table-driven error-path check: malformed
// text inputs must fail with the offending 1-based line number in the error.
func TestParseErrorLineNumbers(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
		mtx            bool
	}{
		{"el bad src", "0 1\nbad 2\n", "line 2", false},
		{"el missing dst", "0 1\n1 2\n3\n", "line 3", false},
		{"el bad weight", "0 1 x\n", "line 1", false},
		{"el id overflow", "0 1\n# note\n4294967296 0\n", "line 3", false},
		{"el comments counted", "# c\n\n0 1\n2\n", "line 4", false},
		{"mtx bad row index", "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1\nx 2 1\n", "line 4", true},
		{"mtx out of bounds", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n5 1 1\n", "line 4", true},
		{"mtx missing value", "%%MatrixMarket matrix coordinate real general\n% pad\n2 2 1\n1 1\n", "line 4", true},
		{"mtx bad size line", "%%MatrixMarket matrix coordinate real general\n2 2\n", "line 2", true},
		{"mtx bad nnz", "%%MatrixMarket matrix coordinate real general\n2 2 -1\n", "line 2", true},
	} {
		var err error
		if tc.mtx {
			_, err = ParseMTX([]byte(tc.in), LoadOptions{Parallelism: 2})
		} else {
			_, err = ParseEdgeList([]byte(tc.in), LoadOptions{Parallelism: 2})
		}
		if err == nil {
			t.Errorf("%s: malformed input accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
}

// TestParseEdgeListMaxVertexID: the largest parseable id (2^32−1) needs 2^32
// vertices, which the uint32 dimensions cannot hold — it must error rather
// than wrap the vertex count to zero.
func TestParseEdgeListMaxVertexID(t *testing.T) {
	if _, err := ParseEdgeList([]byte("4294967295 0\n"), LoadOptions{}); err == nil {
		t.Fatal("vertex id 2^32-1 accepted; vertex count would wrap to 0")
	}
	// One below the limit is fine.
	coo, err := ParseEdgeList([]byte("4294967294 0\n"), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if coo.NRows != 4294967295 {
		t.Fatalf("NRows = %d, want 4294967295", coo.NRows)
	}
}

// TestParseMTXStrictEntryCount: both too few and too many data lines must be
// rejected — the parallel reader cannot silently ignore a tail the way a
// streaming reader could.
func TestParseMTXStrictEntryCount(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"too few", "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1\n"},
		{"too many", "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 1\n2 2 1\n"},
	} {
		if _, err := ParseMTX([]byte(tc.in), LoadOptions{}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestWriteBinary2SectionClamp: an absurd section request must be clamped so
// the writer never emits a file its own reader refuses.
func TestWriteBinary2SectionClamp(t *testing.T) {
	g := NewCOOF(200)
	for i := uint32(0); i < 199; i++ {
		g.Add(i, i+1, 1)
	}
	var buf bytes.Buffer
	if err := WriteBinary2(&buf, g, 1<<30); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBinary(buf.Bytes(), LoadOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("reader rejected writer output: %v", err)
	}
	sameCOO(t, "clamped", g, back, true)
}

// TestParseBinaryHeaderHardening: forged headers must error before any
// oversized allocation happens.
func TestParseBinaryHeaderHardening(t *testing.T) {
	g := NewCOOF(3)
	g.Add(0, 1, 1)
	g.Add(1, 2, 2)
	var v1, v2 bytes.Buffer
	if err := WriteBinary(&v1, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary2(&v2, g, 2); err != nil {
		t.Fatal(err)
	}

	// v1: forge the 8-byte edge count at offset 12 to 2^61.
	forged := bytes.Clone(v1.Bytes())
	for i, b := range []byte{0, 0, 0, 0, 0, 0, 0, 0x20} {
		forged[12+i] = b
	}
	if _, err := ParseBinary(forged, LoadOptions{}); err == nil {
		t.Error("v1 forged edge count accepted")
	}

	// v2: forge the edge count, the section count, and the section table.
	base := v2.Bytes()
	cases := map[string]func([]byte){
		"edge count": func(b []byte) { b[16], b[23] = 0xff, 0x20 },
		"section count": func(b []byte) {
			b[24], b[25], b[26], b[27] = 0xff, 0xff, 0xff, 0x0f
		},
		"section tiling": func(b []byte) { b[28] = 1 },
	}
	for name, mutate := range cases {
		forged := bytes.Clone(base)
		mutate(forged)
		if _, err := ParseBinary(forged, LoadOptions{}); err == nil {
			t.Errorf("v2 forged %s accepted", name)
		}
	}

	// Truncations at every prefix length must error, never panic.
	for _, data := range [][]byte{v1.Bytes(), base} {
		for cut := 0; cut < len(data); cut++ {
			if _, err := ParseBinary(data[:cut], LoadOptions{Parallelism: 2}); err == nil {
				t.Fatalf("truncation to %d bytes accepted", cut)
			}
		}
	}
}
