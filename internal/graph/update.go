package graph

import (
	"fmt"
	"slices"

	"graphmat/internal/sparse"
)

// Update is one live edge mutation against a graph: an upsert (Del false —
// insert the edge src→dst, or replace its value if it already exists) or a
// delete (Del true). Batches of updates are the write unit of the versioned
// store; within a batch the last mutation of a (src, dst) key wins.
type Update[E any] struct {
	Src, Dst uint32
	Val      E
	Del      bool
}

// normalizeUpdates sorts a batch by (src, dst) and collapses repeated keys to
// the last mutation — the final state a sequential application would leave.
// The input is not modified.
func normalizeUpdates[E any](batch []Update[E]) []Update[E] {
	out := slices.Clone(batch)
	slices.SortStableFunc(out, func(a, b Update[E]) int {
		if a.Src != b.Src {
			if a.Src < b.Src {
				return -1
			}
			return 1
		}
		if a.Dst != b.Dst {
			if a.Dst < b.Dst {
				return -1
			}
			return 1
		}
		return 0
	})
	w := 0
	for i := range out {
		if w > 0 && out[w-1].Src == out[i].Src && out[w-1].Dst == out[i].Dst {
			out[w-1] = out[i]
		} else {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// fwdMuts maps normalized updates onto mutations of the forward structure
// (Gᵀ: Row = dst, Col = src). The (src, dst) sort order of the input is
// exactly the column-major order of the output, so no re-sort is needed.
func fwdMuts[E any](norm []Update[E]) []sparse.Mut[E] {
	muts := make([]sparse.Mut[E], len(norm))
	for i, u := range norm {
		muts[i] = sparse.Mut[E]{Row: u.Dst, Col: u.Src, Val: u.Val, Del: u.Del}
	}
	return muts
}

// bwdMuts maps normalized updates onto mutations of the backward structure
// (G: Row = src, Col = dst), re-sorted to its column-major order.
func bwdMuts[E any](norm []Update[E]) []sparse.Mut[E] {
	muts := make([]sparse.Mut[E], len(norm))
	for i, u := range norm {
		muts[i] = sparse.Mut[E]{Row: u.Src, Col: u.Dst, Val: u.Val, Del: u.Del}
	}
	slices.SortFunc(muts, func(a, b sparse.Mut[E]) int {
		if a.Col != b.Col {
			if a.Col < b.Col {
				return -1
			}
			return 1
		}
		if a.Row != b.Row {
			if a.Row < b.Row {
				return -1
			}
			return 1
		}
		return 0
	})
	return muts
}

// NormalizeAdjacency sorts adjacency triples row-major and collapses
// duplicate edges keeping the first occurrence — the same edge set every
// algorithm's preprocessing would keep, so normalizing a master copy before
// builds changes nothing downstream. workers ≤ 0 means GOMAXPROCS.
func NormalizeAdjacency[E any](adj *sparse.COO[E], workers int) {
	adj.SortRowMajorParallel(workers)
	adj.DedupKeepFirstParallel(workers)
}

// ApplyToAdjacency returns a new adjacency equal to adj with the batch
// applied: upserts replace or append edges, deletes remove them. adj must be
// normalized (row-major sorted, deduplicated); the result is too. adj itself
// is not modified — callers keep serving reads from it while the successor is
// assembled.
func ApplyToAdjacency[E any](adj *sparse.COO[E], batch []Update[E]) (*sparse.COO[E], error) {
	for _, u := range batch {
		if u.Src >= adj.NRows || u.Dst >= adj.NCols {
			return nil, fmt.Errorf("graph: update (%d,%d) outside %dx%d adjacency",
				u.Src, u.Dst, adj.NRows, adj.NCols)
		}
	}
	norm := normalizeUpdates(batch)
	out := &sparse.COO[E]{NRows: adj.NRows, NCols: adj.NCols}
	out.Entries = make([]sparse.Triple[E], 0, len(adj.Entries)+len(norm))
	src := adj.Entries
	i := 0
	for _, u := range norm {
		for i < len(src) && (src[i].Row < u.Src || (src[i].Row == u.Src && src[i].Col < u.Dst)) {
			out.Entries = append(out.Entries, src[i])
			i++
		}
		if i < len(src) && src[i].Row == u.Src && src[i].Col == u.Dst {
			i++
		}
		if !u.Del {
			out.Entries = append(out.Entries, sparse.Triple[E]{Row: u.Src, Col: u.Dst, Val: u.Val})
		}
	}
	out.Entries = append(out.Entries, src[i:]...)
	return out, nil
}

// LookupEdge binary-searches a normalized (row-major sorted, deduplicated)
// adjacency for edge src→dst.
func LookupEdge[E any](adj *sparse.COO[E], src, dst uint32) (E, bool) {
	entries := adj.Entries
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		t := entries[mid]
		if t.Row < src || (t.Row == src && t.Col < dst) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(entries) && entries[lo].Row == src && entries[lo].Col == dst {
		return entries[lo].Val, true
	}
	var zero E
	return zero, false
}
