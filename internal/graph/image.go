package graph

import (
	"fmt"

	"graphmat/internal/bitvec"
	"graphmat/internal/snap"
	"graphmat/internal/sparse"
)

// This file connects the versioned store to the GMATSNAP persistence format
// (internal/snap): StoreImage dumps a store's current graph as a raw-array
// image the snapshot writer can lay out, and NewStoreFromImage rebuilds a
// store from such an image — zero-copy when the image's arrays are views
// into an mmap'd file, turning boot from an O(edges) rebuild into
// O(partitions) pointer assembly. The edge type is fixed to float32: that is
// the one edge type every registered algorithm uses, and a single concrete
// type is what gives the format a single triple layout.

// StoreImage captures a point-in-time image of the store's current graph,
// compacting any pending overlay first (the image format carries base
// structures only — "base + overlay one level down" means the WAL holds the
// overlay's updates, not the snapshot file). The compacted graph is
// published, so the store benefits from the fold it just paid for. tag is
// the writer's consistency mark, stored verbatim (see snap.Image.Tag).
//
// The image's arrays ALIAS the published graph's: they are immutable by the
// store's snapshot contract, but the caller must finish serializing before
// dropping its store reference.
func StoreImage[V any](s *Store[V, float32], tag uint64) (*snap.Image, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	g := old.g
	if g.logLen != 0 {
		g = g.compacted()
		s.cur.Store(&Snapshot[V, float32]{store: s, g: g})
		s.compactions.Add(1)
		s.notifyCompact(g.epoch)
	}
	return imageOf(g, tag)
}

// imageOf dumps one overlay-free graph's internals as a snapshot image.
func imageOf[V any](g *Graph[V, float32], tag uint64) (*snap.Image, error) {
	if g.logLen != 0 {
		return nil, fmt.Errorf("graph: cannot image a graph with %d pending updates (compact first)", g.logLen)
	}
	img := &snap.Image{
		Epoch:      g.epoch,
		Tag:        tag,
		NRows:      g.fwd.NRows,
		NCols:      g.fwd.NCols,
		NEdges:     uint64(len(g.fwd.Entries)),
		Partitions: uint32(g.opts.Partitions),
		Fwd:        g.fwd.Entries,
		OutDeg:     g.outDeg,
		InDeg:      g.inDeg,
	}
	if g.opts.Directions&Out != 0 {
		img.Directions |= snap.DirsOut
		img.Out = partImages(g.outParts)
	}
	if g.opts.Directions&In != 0 {
		img.Directions |= snap.DirsIn
		img.Bwd = g.bwd.Entries
		img.In = partImages(g.inParts)
	}
	return img, nil
}

func partImages(parts []*sparse.DCSC[float32]) []snap.PartImage {
	out := make([]snap.PartImage, len(parts))
	for i, p := range parts {
		out[i] = snap.PartImage{
			RowLo:    p.RowLo,
			RowHi:    p.RowHi,
			AuxShift: p.AuxShift,
			JC:       p.JC,
			CP:       p.CP,
			IR:       p.IR,
			Val:      p.Val,
			Aux:      p.Aux,
		}
	}
	return out
}

// NewGraphFromImage reconstructs a property graph over an image's arrays
// without copying or rebuilding anything: partitions are assembled through
// sparse.NewDCSCView (which adopts the serialized AUX index), triples and
// degree arrays are adopted as-is. When the image is an mmap view the
// resulting graph's structural arrays live in the page cache — the on-heap
// build path (NewFromCOO over the same input) remains the differential
// oracle asserting the two are bit-identical.
func NewGraphFromImage[V any](img *snap.Image) (*Graph[V, float32], error) {
	if img.Directions == 0 {
		return nil, fmt.Errorf("graph: image is a raw adjacency dump, not a property graph")
	}
	opts := Options{Partitions: int(img.Partitions)}
	if opts.Partitions <= 0 {
		opts.Partitions = max(len(img.Out), len(img.In))
	}
	if img.Directions&snap.DirsOut != 0 {
		opts.Directions |= Out
	}
	if img.Directions&snap.DirsIn != 0 {
		opts.Directions |= In
	}
	opts = opts.withDefaults()
	n := img.NRows
	g := &Graph[V, float32]{
		n:      n,
		m:      int64(img.NEdges),
		fwd:    &sparse.COO[float32]{NRows: img.NRows, NCols: img.NCols, Entries: img.Fwd},
		epoch:  img.Epoch,
		outDeg: img.OutDeg,
		inDeg:  img.InDeg,
		opts:   opts,
	}
	var err error
	if img.Directions&snap.DirsOut != 0 {
		if g.outParts, err = viewParts(img.Out, n); err != nil {
			return nil, fmt.Errorf("graph: out %w", err)
		}
	}
	if img.Directions&snap.DirsIn != 0 {
		g.bwd = &sparse.COO[float32]{NRows: img.NRows, NCols: img.NCols, Entries: img.Bwd}
		if g.inParts, err = viewParts(img.In, n); err != nil {
			return nil, fmt.Errorf("graph: in %w", err)
		}
	}
	g.props = make([]V, n)
	g.active = bitvec.New(int(n))
	return g, nil
}

func viewParts(parts []snap.PartImage, n uint32) ([]*sparse.DCSC[float32], error) {
	out := make([]*sparse.DCSC[float32], len(parts))
	for i := range parts {
		p := &parts[i]
		d, err := sparse.NewDCSCView(n, n, p.RowLo, p.RowHi, p.JC, p.CP, p.IR, p.Val, p.Aux, p.AuxShift)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", i, err)
		}
		out[i] = d
	}
	return out, nil
}

// NewStoreFromImage rebuilds a versioned store whose current snapshot is
// the image's graph, at the image's epoch. Subsequent ApplyEdges batches
// layer delta overlays over the mapped base exactly as they would over a
// built one; the first compaction folds everything onto the heap and the
// mapping stops being referenced by newer epochs.
func NewStoreFromImage[V any](img *snap.Image) (*Store[V, float32], error) {
	g, err := NewGraphFromImage[V](img)
	if err != nil {
		return nil, err
	}
	s := &Store[V, float32]{}
	s.cur.Store(&Snapshot[V, float32]{store: s, g: g})
	return s, nil
}
