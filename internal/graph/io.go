package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graphmat/internal/sparse"
)

// This file implements the graph interchange formats the paper's tooling
// consumes: Matrix Market coordinate files (the University of Florida sparse
// collection format, §5.1) both read and write, whitespace edge lists, and a
// compact binary format for large generated graphs (the C++ GraphMat release
// similarly ships an MTX-to-binary converter).

// ReadMTX parses a Matrix Market coordinate file into adjacency triples with
// Row = source, Col = destination (1-based indices in the file, 0-based in
// the result). Supported qualifiers: real/integer/pattern values and
// general/symmetric symmetry; symmetric entries are mirrored. Pattern
// entries get weight 1.
func ReadMTX(r io.Reader) (*sparse.COO[float32], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("mtx: unsupported header %q", sc.Text())
	}
	valueType, symmetry := header[3], header[4]
	switch valueType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mtx: unsupported value type %q", valueType)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("mtx: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var nrows, ncols uint64
	var nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("mtx: bad size line %q", line)
		}
		var err error
		if nrows, err = strconv.ParseUint(f[0], 10, 32); err != nil {
			return nil, fmt.Errorf("mtx: bad row count: %v", err)
		}
		if ncols, err = strconv.ParseUint(f[1], 10, 32); err != nil {
			return nil, fmt.Errorf("mtx: bad col count: %v", err)
		}
		if nnz, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("mtx: bad nnz: %v", err)
		}
		break
	}

	coo := sparse.NewCOO[float32](uint32(nrows), uint32(ncols))
	coo.Entries = make([]sparse.Triple[float32], 0, nnz)
	read := 0
	for sc.Scan() && read < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("mtx: bad entry %q", line)
		}
		i, err := strconv.ParseUint(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mtx: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.ParseUint(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mtx: bad col index %q: %v", f[1], err)
		}
		if i < 1 || j < 1 || i > nrows || j > ncols {
			return nil, fmt.Errorf("mtx: entry (%d,%d) out of bounds %dx%d", i, j, nrows, ncols)
		}
		w := float32(1)
		if valueType != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("mtx: missing value in %q", line)
			}
			v, err := strconv.ParseFloat(f[2], 32)
			if err != nil {
				return nil, fmt.Errorf("mtx: bad value %q: %v", f[2], err)
			}
			w = float32(v)
		}
		coo.Add(uint32(i-1), uint32(j-1), w)
		if symmetry == "symmetric" && i != j {
			coo.Add(uint32(j-1), uint32(i-1), w)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mtx: %v", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("mtx: expected %d entries, got %d", nnz, read)
	}
	return coo, nil
}

// WriteMTX writes adjacency triples as a Matrix Market coordinate real
// general file.
func WriteMTX(w io.Writer, coo *sparse.COO[float32]) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		coo.NRows, coo.NCols, len(coo.Entries)); err != nil {
		return err
	}
	for _, t := range coo.Entries {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", t.Row+1, t.Col+1, t.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses whitespace-separated "src dst [weight]" lines with
// 0-based vertex ids. Lines starting with '#' or '%' are comments. The vertex
// count is one more than the maximum id seen, or minVertices if larger.
func ReadEdgeList(r io.Reader, minVertices uint32) (*sparse.COO[float32], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	coo := sparse.NewCOO[float32](0, 0)
	maxID := int64(-1)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("edgelist line %d: need at least src dst", lineno)
		}
		src, err := strconv.ParseUint(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: %v", lineno, err)
		}
		dst, err := strconv.ParseUint(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: %v", lineno, err)
		}
		w := float32(1)
		if len(f) >= 3 {
			v, err := strconv.ParseFloat(f[2], 32)
			if err != nil {
				return nil, fmt.Errorf("edgelist line %d: %v", lineno, err)
			}
			w = float32(v)
		}
		coo.Add(uint32(src), uint32(dst), w)
		if int64(src) > maxID {
			maxID = int64(src)
		}
		if int64(dst) > maxID {
			maxID = int64(dst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := uint32(maxID + 1)
	if n < minVertices {
		n = minVertices
	}
	coo.NRows, coo.NCols = n, n
	return coo, nil
}

const binMagic = "GMATBIN1"

// WriteBinary writes the compact binary format: an 8-byte magic, vertex
// count, edge count, then (src,dst,weight) little-endian triples.
func WriteBinary(w io.Writer, coo *sparse.COO[float32]) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], coo.NRows)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(coo.Entries)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 12)
	for _, t := range coo.Entries {
		binary.LittleEndian.PutUint32(rec[0:4], t.Row)
		binary.LittleEndian.PutUint32(rec[4:8], t.Col)
		binary.LittleEndian.PutUint32(rec[8:12], floatBits(t.Val))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the format written by WriteBinary.
func ReadBinary(r io.Reader) (*sparse.COO[float32], error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 8)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("binary graph: %v", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("binary graph: bad magic %q", magic)
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("binary graph: %v", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	m := binary.LittleEndian.Uint64(hdr[4:12])
	coo := sparse.NewCOO[float32](n, n)
	coo.Entries = make([]sparse.Triple[float32], m)
	rec := make([]byte, 12)
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("binary graph: truncated at edge %d: %v", i, err)
		}
		coo.Entries[i] = sparse.Triple[float32]{
			Row: binary.LittleEndian.Uint32(rec[0:4]),
			Col: binary.LittleEndian.Uint32(rec[4:8]),
			Val: floatFromBits(binary.LittleEndian.Uint32(rec[8:12])),
		}
	}
	return coo, nil
}

// LoadFile reads a graph file, dispatching on extension: .mtx, .bin, else
// text edge list.
func LoadFile(path string) (*sparse.COO[float32], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".mtx"):
		return ReadMTX(f)
	case strings.HasSuffix(path, ".bin"):
		return ReadBinary(f)
	default:
		return ReadEdgeList(f, 0)
	}
}
