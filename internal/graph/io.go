package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"graphmat/internal/sparse"
)

// This file implements the graph interchange formats the paper's tooling
// consumes: Matrix Market coordinate files (the University of Florida sparse
// collection format, §5.1) both read and write, whitespace edge lists, and
// two binary formats — the legacy GMATBIN1 record stream and the sectioned
// GMATBIN2 (the C++ GraphMat release similarly ships an MTX-to-binary
// converter).
//
// All text parsers are chunk-parallel: the input is split on line boundaries,
// chunks parse in worker goroutines, and the per-chunk fragments concatenate
// in input order, so the parallel result is bit-identical to a sequential
// parse. Parsers never trust size claims in headers for allocation — every
// allocation is bounded by the actual input length — and report errors with
// 1-based line numbers.

// LoadOptions configures graph loading.
type LoadOptions struct {
	// Parallelism is the ingestion worker count used for chunked parsing;
	// 0 means GOMAXPROCS, 1 forces the sequential path. Parallel and
	// sequential ingestion produce bit-identical triples.
	Parallelism int
	// MinVertices, for edge lists, is a lower bound on the vertex count.
	MinVertices uint32
}

func (o LoadOptions) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// ---------------------------------------------------------------------------
// Line chunking

// lineChunk is a byte range of the input starting at 1-based line startLine.
type lineChunk struct {
	data      []byte
	startLine int
}

// splitLineChunks cuts data into at most n chunks on line boundaries,
// tracking each chunk's starting line number.
func splitLineChunks(data []byte, n, firstLine int) []lineChunk {
	if n < 1 {
		n = 1
	}
	chunks := make([]lineChunk, 0, n)
	start, line := 0, firstLine
	for i := 0; i < n && start < len(data); i++ {
		end := len(data)
		if i < n-1 {
			target := start + (len(data)-start)/(n-i)
			if target < len(data) {
				if nl := bytes.IndexByte(data[target:], '\n'); nl >= 0 {
					end = target + nl + 1
				}
			}
		}
		chunks = append(chunks, lineChunk{data: data[start:end], startLine: line})
		line += bytes.Count(data[start:end], []byte{'\n'})
		start = end
	}
	return chunks
}

// forEachLine calls fn once per line of the chunk (terminator and any
// trailing \r stripped) with its absolute 1-based line number. A non-nil
// error stops the walk.
func forEachLine(c lineChunk, fn func(lineno int, line []byte) error) error {
	lineno, data := c.startLine, c.data
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if err := fn(lineno, line); err != nil {
			return err
		}
		lineno++
	}
	return nil
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\v' || b == '\f' || b == '\r'
}

// nextField returns the next whitespace-separated field at or after pos.
func nextField(line []byte, pos int) (field []byte, next int, ok bool) {
	for pos < len(line) && isSpace(line[pos]) {
		pos++
	}
	if pos >= len(line) {
		return nil, pos, false
	}
	start := pos
	for pos < len(line) && !isSpace(line[pos]) {
		pos++
	}
	return line[start:pos], pos, true
}

// parseUint32 parses an unsigned decimal (digits only), rejecting overflow —
// the allocation-free equivalent of strconv.ParseUint(s, 10, 32).
func parseUint32(b []byte) (uint32, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid number %q", b)
		}
		v = v*10 + uint64(c-'0')
		if v > math.MaxUint32 {
			return 0, fmt.Errorf("number %q overflows uint32", b)
		}
	}
	return uint32(v), nil
}

// lineCap bounds an entry-slice preallocation by what the input could
// possibly hold: a data line is at least 4 bytes ("0 1\n"), so size claims in
// headers never drive allocation beyond len/4+1.
func lineCap(inputLen int) int {
	return inputLen/4 + 1
}

// ---------------------------------------------------------------------------
// Matrix Market

// ReadMTX parses a Matrix Market coordinate file sequentially; see ParseMTX.
func ReadMTX(r io.Reader) (*sparse.COO[float32], error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("mtx: %v", err)
	}
	return ParseMTX(data, LoadOptions{Parallelism: 1})
}

// ParseMTX parses a Matrix Market coordinate file into adjacency triples with
// Row = source, Col = destination (1-based indices in the file, 0-based in
// the result). Supported qualifiers: real/integer/pattern values and
// general/symmetric symmetry; symmetric entries are mirrored, pattern entries
// get weight 1. The body is parsed by opt.Parallelism workers; the entry
// count must match the size line exactly.
func ParseMTX(data []byte, opt LoadOptions) (*sparse.COO[float32], error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("mtx: empty input")
	}
	headerEnd := bytes.IndexByte(data, '\n')
	if headerEnd < 0 {
		headerEnd = len(data)
	}
	headerLine := strings.TrimSuffix(string(data[:headerEnd]), "\r")
	header := strings.Fields(strings.ToLower(headerLine))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("mtx: unsupported header %q", headerLine)
	}
	valueType, symmetry := header[3], header[4]
	switch valueType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mtx: unsupported value type %q", valueType)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("mtx: unsupported symmetry %q", symmetry)
	}

	// Skip comments to the size line, sequentially.
	var nrows, ncols uint32
	nnz := -1
	rest := data[min(headerEnd+1, len(data)):]
	bodyLine := 2
	for nnz < 0 && len(rest) > 0 {
		lineEnd := bytes.IndexByte(rest, '\n')
		var line []byte
		if lineEnd < 0 {
			line, rest = rest, nil
		} else {
			line, rest = rest[:lineEnd], rest[lineEnd+1:]
		}
		lineno := bodyLine
		bodyLine++
		f0, pos, ok := nextField(line, 0)
		if !ok || f0[0] == '%' {
			continue // blank or comment
		}
		var err error
		if nrows, err = parseUint32(f0); err != nil {
			return nil, fmt.Errorf("mtx line %d: bad row count: %v", lineno, err)
		}
		f1, pos, ok := nextField(line, pos)
		if !ok {
			return nil, fmt.Errorf("mtx line %d: bad size line %q", lineno, line)
		}
		if ncols, err = parseUint32(f1); err != nil {
			return nil, fmt.Errorf("mtx line %d: bad col count: %v", lineno, err)
		}
		f2, pos, ok := nextField(line, pos)
		if !ok {
			return nil, fmt.Errorf("mtx line %d: bad size line %q", lineno, line)
		}
		n, err := parseUint32(f2)
		if err != nil {
			return nil, fmt.Errorf("mtx line %d: bad nnz: %v", lineno, err)
		}
		if _, _, extra := nextField(line, pos); extra {
			return nil, fmt.Errorf("mtx line %d: bad size line %q", lineno, line)
		}
		nnz = int(n)
	}
	if nnz < 0 {
		return nil, fmt.Errorf("mtx: missing size line")
	}

	chunks := splitLineChunks(rest, opt.workers(), bodyLine)
	frags := make([]mtxFragment, len(chunks))
	sparse.ParallelFor(len(chunks), opt.workers(), func(i int) {
		frags[i] = parseMTXChunk(chunks[i], nrows, ncols, valueType == "pattern", symmetry == "symmetric")
	})

	read, total := 0, 0
	for _, f := range frags {
		if f.err != nil {
			return nil, f.err // chunks are in input order: first error wins
		}
		read += f.read
		total += len(f.entries)
	}
	if read != nnz {
		return nil, fmt.Errorf("mtx: expected %d entries, got %d", nnz, read)
	}
	coo := sparse.NewCOO[float32](nrows, ncols)
	coo.Entries = make([]sparse.Triple[float32], 0, total)
	for _, f := range frags {
		coo.Entries = append(coo.Entries, f.entries...)
	}
	return coo, nil
}

type mtxFragment struct {
	entries []sparse.Triple[float32]
	read    int // data lines consumed (mirrors not counted)
	err     error
}

func parseMTXChunk(c lineChunk, nrows, ncols uint32, pattern, symmetric bool) mtxFragment {
	capGuess := lineCap(len(c.data))
	if symmetric {
		capGuess *= 2
	}
	frag := mtxFragment{entries: make([]sparse.Triple[float32], 0, capGuess)}
	frag.err = forEachLine(c, func(lineno int, line []byte) error {
		f0, pos, ok := nextField(line, 0)
		if !ok || f0[0] == '%' {
			return nil
		}
		i, err := parseUint32(f0)
		if err != nil {
			return fmt.Errorf("mtx line %d: bad row index: %v", lineno, err)
		}
		f1, pos, ok := nextField(line, pos)
		if !ok {
			return fmt.Errorf("mtx line %d: bad entry %q", lineno, line)
		}
		j, err := parseUint32(f1)
		if err != nil {
			return fmt.Errorf("mtx line %d: bad col index: %v", lineno, err)
		}
		if i < 1 || j < 1 || i > nrows || j > ncols {
			return fmt.Errorf("mtx line %d: entry (%d,%d) out of bounds %dx%d", lineno, i, j, nrows, ncols)
		}
		w := float32(1)
		if !pattern {
			f2, _, ok := nextField(line, pos)
			if !ok {
				return fmt.Errorf("mtx line %d: missing value in %q", lineno, line)
			}
			v, err := strconv.ParseFloat(string(f2), 32)
			if err != nil {
				return fmt.Errorf("mtx line %d: bad value %q: %v", lineno, f2, err)
			}
			w = float32(v)
		}
		frag.entries = append(frag.entries, sparse.Triple[float32]{Row: i - 1, Col: j - 1, Val: w})
		if symmetric && i != j {
			frag.entries = append(frag.entries, sparse.Triple[float32]{Row: j - 1, Col: i - 1, Val: w})
		}
		frag.read++
		return nil
	})
	return frag
}

// WriteMTX writes adjacency triples as a Matrix Market coordinate real
// general file.
func WriteMTX(w io.Writer, coo *sparse.COO[float32]) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		coo.NRows, coo.NCols, len(coo.Entries)); err != nil {
		return err
	}
	for _, t := range coo.Entries {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", t.Row+1, t.Col+1, t.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ---------------------------------------------------------------------------
// Edge lists

// ReadEdgeList parses an edge list sequentially; see ParseEdgeList.
func ReadEdgeList(r io.Reader, minVertices uint32) (*sparse.COO[float32], error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseEdgeList(data, LoadOptions{Parallelism: 1, MinVertices: minVertices})
}

// ParseEdgeList parses whitespace-separated "src dst [weight]" lines with
// 0-based vertex ids on opt.Parallelism workers. Lines starting with '#' or
// '%' are comments. The vertex count is one more than the maximum id seen, or
// opt.MinVertices if larger.
func ParseEdgeList(data []byte, opt LoadOptions) (*sparse.COO[float32], error) {
	chunks := splitLineChunks(data, opt.workers(), 1)
	frags := make([]edgeFragment, len(chunks))
	sparse.ParallelFor(len(chunks), opt.workers(), func(i int) {
		frags[i] = parseEdgeChunk(chunks[i])
	})

	total, maxID := 0, int64(-1)
	for _, f := range frags {
		if f.err != nil {
			return nil, f.err
		}
		total += len(f.entries)
		if f.maxID > maxID {
			maxID = f.maxID
		}
	}
	// A vertex id needs id+1 vertices, and dimensions are uint32: the
	// largest representable id is 2^32−2. Without this check uint32(maxID+1)
	// would wrap to 0 and hand callers a corrupt 0-vertex COO with entries.
	if maxID >= math.MaxUint32 {
		return nil, fmt.Errorf("edgelist: vertex id %d exceeds the %d limit", maxID, uint32(math.MaxUint32-1))
	}
	coo := sparse.NewCOO[float32](0, 0)
	coo.Entries = make([]sparse.Triple[float32], 0, total)
	for _, f := range frags {
		coo.Entries = append(coo.Entries, f.entries...)
	}
	n := uint32(maxID + 1)
	if n < opt.MinVertices {
		n = opt.MinVertices
	}
	coo.NRows, coo.NCols = n, n
	return coo, nil
}

// WriteEdgeList writes "src dst weight" lines with 0-based ids. Note the
// format cannot express trailing isolated vertices: ParseEdgeList infers the
// vertex count from the largest id present (or its MinVertices option).
func WriteEdgeList(w io.Writer, coo *sparse.COO[float32]) error {
	bw := bufio.NewWriter(w)
	for _, t := range coo.Entries {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", t.Row, t.Col, t.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

type edgeFragment struct {
	entries []sparse.Triple[float32]
	maxID   int64
	err     error
}

func parseEdgeChunk(c lineChunk) edgeFragment {
	frag := edgeFragment{
		entries: make([]sparse.Triple[float32], 0, lineCap(len(c.data))),
		maxID:   -1,
	}
	frag.err = forEachLine(c, func(lineno int, line []byte) error {
		f0, pos, ok := nextField(line, 0)
		if !ok || f0[0] == '#' || f0[0] == '%' {
			return nil
		}
		src, err := parseUint32(f0)
		if err != nil {
			return fmt.Errorf("edgelist line %d: %v", lineno, err)
		}
		f1, pos, ok := nextField(line, pos)
		if !ok {
			return fmt.Errorf("edgelist line %d: need at least src dst", lineno)
		}
		dst, err := parseUint32(f1)
		if err != nil {
			return fmt.Errorf("edgelist line %d: %v", lineno, err)
		}
		w := float32(1)
		if f2, _, ok := nextField(line, pos); ok {
			v, err := strconv.ParseFloat(string(f2), 32)
			if err != nil {
				return fmt.Errorf("edgelist line %d: %v", lineno, err)
			}
			w = float32(v)
		}
		frag.entries = append(frag.entries, sparse.Triple[float32]{Row: src, Col: dst, Val: w})
		if int64(src) > frag.maxID {
			frag.maxID = int64(src)
		}
		if int64(dst) > frag.maxID {
			frag.maxID = int64(dst)
		}
		return nil
	})
	return frag
}

// ---------------------------------------------------------------------------
// Binary formats

const (
	binMagic  = "GMATBIN1"
	binMagic2 = "GMATBIN2"

	binRecordSize = 12 // u32 src, u32 dst, u32 float bits

	// binV1HeaderSize is magic + u32 nrows + u64 nedges.
	binV1HeaderSize = 8 + 4 + 8
	// binV2HeaderSize is magic + u32 nrows + u32 ncols + u64 nedges +
	// u32 nsections; the section table follows.
	binV2HeaderSize     = 8 + 4 + 4 + 8 + 4
	binV2SectionEntry   = 16 // u64 first edge, u64 edge count
	binV2MaxSections    = 1 << 16
	binV2DefaultSection = 16
)

// WriteBinary writes the legacy GMATBIN1 format: an 8-byte magic, vertex
// count, edge count, then (src,dst,weight) little-endian triples. New files
// should prefer WriteBinary2, whose section table lets readers fan chunks out
// to workers.
//
// The V1 header has one dimension field, so only square matrices round-trip;
// a rectangular coo is rejected rather than silently read back as NCols ==
// NRows.
func WriteBinary(w io.Writer, coo *sparse.COO[float32]) error {
	if coo.NRows != coo.NCols {
		return fmt.Errorf("binary graph: GMATBIN1 cannot represent a %dx%d matrix (one dimension field); use WriteBinary2",
			coo.NRows, coo.NCols)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], coo.NRows)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(coo.Entries)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, binRecordSize)
	for _, t := range coo.Entries {
		binary.LittleEndian.PutUint32(rec[0:4], t.Row)
		binary.LittleEndian.PutUint32(rec[4:8], t.Col)
		binary.LittleEndian.PutUint32(rec[8:12], floatBits(t.Val))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinary2 writes the sectioned GMATBIN2 format: magic, dimensions, edge
// count, then a table of (first edge, edge count) sections covering the
// fixed-size record array. Sections let ParseBinary hand each worker a byte
// range without re-scanning; sections ≤ 0 picks the default (16). Record
// encoding runs on one goroutine per section; the bytes written are
// independent of the worker count.
func WriteBinary2(w io.Writer, coo *sparse.COO[float32], sections int) error {
	m := len(coo.Entries)
	if sections <= 0 {
		sections = binV2DefaultSection
	}
	if sections > m {
		sections = m
	}
	if sections < 1 {
		sections = 1
	}
	// The reader rejects section counts above binV2MaxSections; never write
	// a file our own ParseBinary would refuse.
	if sections > binV2MaxSections {
		sections = binV2MaxSections
	}

	hdr := make([]byte, binV2HeaderSize+sections*binV2SectionEntry)
	copy(hdr, binMagic2)
	binary.LittleEndian.PutUint32(hdr[8:12], coo.NRows)
	binary.LittleEndian.PutUint32(hdr[12:16], coo.NCols)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(m))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(sections))
	starts := make([]int, sections+1)
	for s := 0; s <= sections; s++ {
		starts[s] = s * m / sections
	}
	for s := 0; s < sections; s++ {
		off := binV2HeaderSize + s*binV2SectionEntry
		binary.LittleEndian.PutUint64(hdr[off:off+8], uint64(starts[s]))
		binary.LittleEndian.PutUint64(hdr[off+8:off+16], uint64(starts[s+1]-starts[s]))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	bufs := make([][]byte, sections)
	sparse.ParallelFor(sections, runtime.GOMAXPROCS(0), func(s int) {
		ents := coo.Entries[starts[s]:starts[s+1]]
		buf := make([]byte, len(ents)*binRecordSize)
		for i, t := range ents {
			off := i * binRecordSize
			binary.LittleEndian.PutUint32(buf[off:off+4], t.Row)
			binary.LittleEndian.PutUint32(buf[off+4:off+8], t.Col)
			binary.LittleEndian.PutUint32(buf[off+8:off+12], floatBits(t.Val))
		}
		bufs[s] = buf
	})
	for _, buf := range bufs {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary reads either binary format sequentially; see ParseBinary.
func ReadBinary(r io.Reader) (*sparse.COO[float32], error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("binary graph: %v", err)
	}
	return ParseBinary(data, LoadOptions{Parallelism: 1})
}

// ParseBinary reads a GMATBIN1 or GMATBIN2 payload, dispatching on the magic.
// Headers are validated against the actual input length before any
// allocation, so a forged edge count can never over-allocate. Record decoding
// fans out to opt.Parallelism workers over disjoint ranges of the result.
func ParseBinary(data []byte, opt LoadOptions) (*sparse.COO[float32], error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("binary graph: truncated magic (%d bytes)", len(data))
	}
	switch string(data[:8]) {
	case binMagic:
		return parseBinaryV1(data, opt)
	case binMagic2:
		return parseBinaryV2(data, opt)
	}
	return nil, fmt.Errorf("binary graph: bad magic %q", data[:8])
}

func parseBinaryV1(data []byte, opt LoadOptions) (*sparse.COO[float32], error) {
	if len(data) < binV1HeaderSize {
		return nil, fmt.Errorf("binary graph: truncated header (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data[8:12])
	m := binary.LittleEndian.Uint64(data[12:20])
	payload := data[binV1HeaderSize:]
	if m > uint64(len(payload)/binRecordSize) {
		return nil, fmt.Errorf("binary graph: header claims %d edges, input holds %d",
			m, len(payload)/binRecordSize)
	}
	coo := sparse.NewCOO[float32](n, n)
	coo.Entries = make([]sparse.Triple[float32], m)
	decodeRecords(coo.Entries, payload, opt.workers())
	return coo, nil
}

func parseBinaryV2(data []byte, opt LoadOptions) (*sparse.COO[float32], error) {
	if len(data) < binV2HeaderSize {
		return nil, fmt.Errorf("binary graph: truncated header (%d bytes)", len(data))
	}
	nrows := binary.LittleEndian.Uint32(data[8:12])
	ncols := binary.LittleEndian.Uint32(data[12:16])
	m := binary.LittleEndian.Uint64(data[16:24])
	nsect := binary.LittleEndian.Uint32(data[24:28])
	if nsect > binV2MaxSections {
		return nil, fmt.Errorf("binary graph: unreasonable section count %d", nsect)
	}
	if nsect == 0 && m > 0 {
		return nil, fmt.Errorf("binary graph: %d edges but no sections", m)
	}
	tableLen := int(nsect) * binV2SectionEntry
	if len(data) < binV2HeaderSize+tableLen {
		return nil, fmt.Errorf("binary graph: truncated section table")
	}
	payload := data[binV2HeaderSize+tableLen:]
	if m > uint64(len(payload)/binRecordSize) {
		return nil, fmt.Errorf("binary graph: header claims %d edges, input holds %d",
			m, len(payload)/binRecordSize)
	}
	if uint64(len(payload)) != m*binRecordSize {
		return nil, fmt.Errorf("binary graph: %d trailing bytes after %d edges",
			uint64(len(payload))-m*binRecordSize, m)
	}

	type section struct{ start, count uint64 }
	sections := make([]section, nsect)
	var cursor uint64
	for s := range sections {
		off := binV2HeaderSize + s*binV2SectionEntry
		sections[s] = section{
			start: binary.LittleEndian.Uint64(data[off : off+8]),
			count: binary.LittleEndian.Uint64(data[off+8 : off+16]),
		}
		if sections[s].start != cursor || sections[s].count > m-cursor {
			return nil, fmt.Errorf("binary graph: section %d (start %d, count %d) does not tile %d edges",
				s, sections[s].start, sections[s].count, m)
		}
		cursor += sections[s].count
	}
	if cursor != m {
		return nil, fmt.Errorf("binary graph: sections cover %d of %d edges", cursor, m)
	}

	coo := sparse.NewCOO[float32](nrows, ncols)
	coo.Entries = make([]sparse.Triple[float32], m)
	sparse.ParallelFor(len(sections), opt.workers(), func(s int) {
		sec := sections[s]
		decodeRecords(coo.Entries[sec.start:sec.start+sec.count],
			payload[sec.start*binRecordSize:(sec.start+sec.count)*binRecordSize], 1)
	})
	return coo, nil
}

// decodeRecords fills dst from consecutive 12-byte records, splitting the
// range across workers.
func decodeRecords(dst []sparse.Triple[float32], payload []byte, workers int) {
	n := len(dst)
	nchunks := workers
	if nchunks > n {
		nchunks = n
	}
	if nchunks < 1 {
		nchunks = 1
	}
	sparse.ParallelFor(nchunks, workers, func(c int) {
		lo, hi := c*n/nchunks, (c+1)*n/nchunks
		for i := lo; i < hi; i++ {
			off := i * binRecordSize
			dst[i] = sparse.Triple[float32]{
				Row: binary.LittleEndian.Uint32(payload[off : off+4]),
				Col: binary.LittleEndian.Uint32(payload[off+4 : off+8]),
				Val: floatFromBits(binary.LittleEndian.Uint32(payload[off+8 : off+12])),
			}
		}
	})
}

// ---------------------------------------------------------------------------
// File loading

// LoadFile reads a graph file, dispatching on extension: .mtx, .bin (either
// binary version), else text edge list. Parsing is parallel across all cores;
// use LoadFileOptions to control the worker count.
func LoadFile(path string) (*sparse.COO[float32], error) {
	return LoadFileOptions(path, LoadOptions{})
}

// LoadFileOptions is LoadFile with explicit ingestion options.
func LoadFileOptions(path string, opt LoadOptions) (*sparse.COO[float32], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(path, ".mtx"):
		return ParseMTX(data, opt)
	case strings.HasSuffix(path, ".bin"):
		return ParseBinary(data, opt)
	default:
		return ParseEdgeList(data, opt)
	}
}
