package graph

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Update-stream I/O: the wire formats edge update batches travel in — NDJSON
// (one {"src","dst","weight","del"} object per line) and an op-prefixed text
// edge list ("add src dst [weight]" / "del src dst", bare "src dst [weight]"
// lines defaulting to add). Both are line-oriented so batches stream through
// HTTP bodies and files without framing.

// updateRecord is the NDJSON wire form of one Update[float32]. Weight is a
// pointer so an absent field defaults to 1 (the unweighted convention the
// text loaders share) while an explicit 0 stays 0.
type updateRecord struct {
	Src    uint32   `json:"src"`
	Dst    uint32   `json:"dst"`
	Weight *float32 `json:"weight,omitempty"`
	Del    bool     `json:"del,omitempty"`
}

// ParseUpdatesNDJSON parses an NDJSON update stream. Blank lines are
// skipped; errors carry 1-based line numbers.
func ParseUpdatesNDJSON(data []byte) ([]Update[float32], error) {
	var ups []Update[float32]
	lineno := 0
	for len(data) > 0 {
		lineno++
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec updateRecord
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("updates line %d: %v", lineno, err)
		}
		w := float32(1)
		if rec.Weight != nil {
			w = *rec.Weight
		}
		ups = append(ups, Update[float32]{Src: rec.Src, Dst: rec.Dst, Val: w, Del: rec.Del})
	}
	return ups, nil
}

// ParseUpdateList parses the text update form: one update per line, fields
// whitespace-separated — ["add"|"del"] src dst [weight] — with '#' comment
// lines. A line without an op is an add; weight defaults to 1 and is
// ignored on del lines.
func ParseUpdateList(data []byte) ([]Update[float32], error) {
	var ups []Update[float32]
	lineno := 0
	for len(data) > 0 {
		lineno++
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 || fields[0][0] == '#' {
			continue
		}
		del := false
		switch string(fields[0]) {
		case "add":
			fields = fields[1:]
		case "del":
			del = true
			fields = fields[1:]
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("updates line %d: want [add|del] src dst [weight]", lineno)
		}
		src, err := parseUint32(fields[0])
		if err != nil {
			return nil, fmt.Errorf("updates line %d: src: %v", lineno, err)
		}
		dst, err := parseUint32(fields[1])
		if err != nil {
			return nil, fmt.Errorf("updates line %d: dst: %v", lineno, err)
		}
		w := float32(1)
		if len(fields) == 3 && !del {
			f, err := strconv.ParseFloat(string(fields[2]), 32)
			if err != nil {
				return nil, fmt.Errorf("updates line %d: weight: %v", lineno, err)
			}
			w = float32(f)
		}
		ups = append(ups, Update[float32]{Src: src, Dst: dst, Val: w, Del: del})
	}
	return ups, nil
}

// ParseUpdates parses an update stream, sniffing the format: a first
// non-space byte of '{' selects NDJSON, anything else the text form.
func ParseUpdates(data []byte) ([]Update[float32], error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return ParseUpdatesNDJSON(data)
	}
	return ParseUpdateList(data)
}

// WriteUpdates writes an update stream as NDJSON.
func WriteUpdates(w io.Writer, ups []Update[float32]) error {
	bw := bufio.NewWriter(w)
	for _, u := range ups {
		w32 := u.Val
		rec := updateRecord{Src: u.Src, Dst: u.Dst, Del: u.Del}
		if !u.Del {
			rec.Weight = &w32
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadUpdatesFile reads and parses an update-stream file (format sniffed).
func LoadUpdatesFile(path string) ([]Update[float32], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseUpdates(data)
}
