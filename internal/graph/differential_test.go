package graph

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"graphmat/internal/gen"
	"graphmat/internal/sparse"
)

// The differential harness enforces the pipeline's hard guarantee: parallel
// ingestion — chunked parsing, parallel sort/dedup, concurrent partition
// builds — produces graphs bit-identical to the sequential path. Partition
// arrays, not just aggregate results, are compared.

func sameDCSCs(t *testing.T, what string, a, b []*sparse.DCSC[float32]) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d partitions vs %d", what, len(a), len(b))
	}
	for p := range a {
		x, y := a[p], b[p]
		if x.NRows != y.NRows || x.NCols != y.NCols || x.RowLo != y.RowLo || x.RowHi != y.RowHi {
			t.Fatalf("%s partition %d: shape mismatch", what, p)
		}
		if len(x.JC) != len(y.JC) || len(x.CP) != len(y.CP) || len(x.IR) != len(y.IR) || len(x.Val) != len(y.Val) {
			t.Fatalf("%s partition %d: array lengths differ (JC %d/%d CP %d/%d IR %d/%d Val %d/%d)",
				what, p, len(x.JC), len(y.JC), len(x.CP), len(y.CP), len(x.IR), len(y.IR), len(x.Val), len(y.Val))
		}
		for i := range x.JC {
			if x.JC[i] != y.JC[i] {
				t.Fatalf("%s partition %d: JC[%d] = %d vs %d", what, p, i, x.JC[i], y.JC[i])
			}
		}
		for i := range x.CP {
			if x.CP[i] != y.CP[i] {
				t.Fatalf("%s partition %d: CP[%d] = %d vs %d", what, p, i, x.CP[i], y.CP[i])
			}
		}
		for i := range x.IR {
			if x.IR[i] != y.IR[i] {
				t.Fatalf("%s partition %d: IR[%d] = %d vs %d", what, p, i, x.IR[i], y.IR[i])
			}
		}
		for i := range x.Val {
			if math.Float32bits(x.Val[i]) != math.Float32bits(y.Val[i]) {
				t.Fatalf("%s partition %d: Val[%d] = %v vs %v", what, p, i, x.Val[i], y.Val[i])
			}
		}
	}
}

func sameDegrees(t *testing.T, what string, a, b []uint32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d degrees vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d] = %d vs %d", what, i, a[i], b[i])
		}
	}
}

// buildBoth constructs the same adjacency sequentially and in parallel
// (consuming clones) and asserts partition-level and degree-level identity.
func buildBoth(t *testing.T, adj *sparse.COO[float32], nparts, workers int) {
	t.Helper()
	seq, err := NewFromCOO[float32](adj.Clone(), Options{Partitions: nparts, Directions: Both, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewFromCOO[float32](adj.Clone(), Options{Partitions: nparts, Directions: Both, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumVertices() != par.NumVertices() || seq.NumEdges() != par.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vertices, %d/%d edges",
			seq.NumVertices(), par.NumVertices(), seq.NumEdges(), par.NumEdges())
	}
	sameDCSCs(t, "out", seq.OutPartitions(), par.OutPartitions())
	sameDCSCs(t, "in", seq.InPartitions(), par.InPartitions())
	sameDegrees(t, "outdeg", seq.OutDegrees(), par.OutDegrees())
	sameDegrees(t, "indeg", seq.InDegrees(), par.InDegrees())
}

// TestParallelBuildDifferentialQuick drives buildBoth over random COOs with
// duplicate edges and random partition/worker counts.
func TestParallelBuildDifferentialQuick(t *testing.T) {
	prop := func(seed int64, sizeSel uint16, partSel, workerSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(300) + 1)
		nnz := int(sizeSel) % 5000
		adj := sparse.NewCOO[float32](n, n)
		for i := 0; i < nnz; i++ {
			adj.Add(rng.Uint32()%n, rng.Uint32()%n, float32(rng.Intn(8)))
		}
		buildBoth(t, adj, int(partSel)%16+1, int(workerSel)%7+2)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelBuildDifferentialGenerators drives buildBoth over the paper's
// workload generators.
func TestParallelBuildDifferentialGenerators(t *testing.T) {
	for _, tc := range []struct {
		name string
		adj  *sparse.COO[float32]
	}{
		{"rmat", gen.RMAT(gen.RMATOptions{Scale: 10, EdgeFactor: 8, Seed: 42, MaxWeight: 10})},
		{"grid", gen.Grid(gen.GridOptions{Width: 40, Height: 25, MaxWeight: 5, Seed: 7})},
		{"bipartite", gen.Bipartite(gen.BipartiteOptions{Users: 300, Items: 50, Ratings: 4000, MaxRating: 5, Seed: 3})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			buildBoth(t, tc.adj, 13, 4)
		})
	}
}

// TestParallelParseDifferential writes one graph in all four on-disk formats
// and asserts that parallel parsing returns exactly the sequential triples.
func TestParallelParseDifferential(t *testing.T) {
	adj := gen.RMAT(gen.RMATOptions{Scale: 9, EdgeFactor: 8, Seed: 5, MaxWeight: 9})
	dir := t.TempDir()
	files := writeAllFormats(t, dir, adj)
	for name, path := range files {
		seq, err := LoadFileOptions(path, LoadOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, err := LoadFileOptions(path, LoadOptions{Parallelism: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if seq.NRows != par.NRows || seq.NCols != par.NCols || len(seq.Entries) != len(par.Entries) {
			t.Fatalf("%s: shape mismatch", name)
		}
		for i := range seq.Entries {
			if seq.Entries[i] != par.Entries[i] {
				t.Fatalf("%s: entry %d: %v vs %v", name, i, seq.Entries[i], par.Entries[i])
			}
		}
	}
}

// writeAllFormats materializes adj as .mtx, edge list, GMATBIN1 and GMATBIN2
// files and returns their paths.
func writeAllFormats(t *testing.T, dir string, adj *sparse.COO[float32]) map[string]string {
	t.Helper()
	out := map[string]string{}

	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	out["mtx"] = write("g.mtx", func(f *os.File) error { return WriteMTX(f, adj) })
	out["binv1"] = write("g1.bin", func(f *os.File) error { return WriteBinary(f, adj) })
	out["binv2"] = write("g2.bin", func(f *os.File) error { return WriteBinary2(f, adj, 7) })
	out["edgelist"] = write("g.txt", func(f *os.File) error {
		coo := adj.Clone()
		// An edge list cannot express trailing isolated vertices; pin the
		// count with a self-loop on the last vertex.
		coo.Add(adj.NRows-1, adj.NRows-1, 1)
		return WriteEdgeList(f, coo)
	})
	return out
}

// TestParallelIngestRMAT18 is the acceptance test: load+build of a scale-18
// RMAT graph through the parallel pipeline must be bit-identical to the
// sequential path, and at GOMAXPROCS ≥ 8 at least 2× faster. Short mode and
// race builds scale the graph down (the identity check still runs); the
// timing gate applies only where the speedup is promised.
func TestParallelIngestRMAT18(t *testing.T) {
	// The ≥2× promise needs real hardware parallelism, not oversubscribed
	// goroutines on a small box.
	scale, timed := 18, true
	if runtime.GOMAXPROCS(0) < 8 || runtime.NumCPU() < 8 {
		scale, timed = 15, false
	}
	if raceEnabled {
		scale, timed = 13, false
	}
	if testing.Short() {
		scale, timed = 12, false
	}

	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831, MaxWeight: 255})
	dir := t.TempDir()
	path := filepath.Join(dir, "rmat.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary2(f, adj, 64); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	nparts := 8 * runtime.GOMAXPROCS(0)

	ingest := func(workers int) (*Graph[float32, float32], time.Duration) {
		start := time.Now()
		coo, err := LoadFileOptions(path, LoadOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewFromCOO[float32](coo, Options{Partitions: nparts, Directions: Both, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return g, time.Since(start)
	}

	seq, seqTime := ingest(1)
	par, parTime := ingest(0) // 0 = GOMAXPROCS
	t.Logf("scale %d: sequential %v, parallel %v (%d procs)", scale, seqTime, parTime, runtime.GOMAXPROCS(0))

	sameDCSCs(t, "out", seq.OutPartitions(), par.OutPartitions())
	sameDCSCs(t, "in", seq.InPartitions(), par.InPartitions())
	sameDegrees(t, "outdeg", seq.OutDegrees(), par.OutDegrees())
	sameDegrees(t, "indeg", seq.InDegrees(), par.InDegrees())

	if timed && parTime*2 > seqTime {
		t.Errorf("parallel ingest %v not ≥2× faster than sequential %v at GOMAXPROCS=%d",
			parTime, seqTime, runtime.GOMAXPROCS(0))
	}
}
