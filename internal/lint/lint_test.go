package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"graphmat/internal/lint"
	"graphmat/internal/lint/analysistest"
)

// The fixture packages live under testdata/src/<name>; the scoped analyzers
// get their pkgs flag pointed at the fixture package so it stands in for the
// real tree. Each fixture contains a suppressed.go negative file proving the
// //lint:graphmat directive silences that analyzer.

func TestSnappin(t *testing.T) {
	analysistest.Run(t, lint.SnappinAnalyzer, "snappin", nil)
}

func TestDetfold(t *testing.T) {
	analysistest.Run(t, lint.DetfoldAnalyzer, "detfold", map[string]string{"pkgs": "detfold"})
}

func TestCtxpoll(t *testing.T) {
	analysistest.Run(t, lint.CtxpollAnalyzer, "ctxpoll", map[string]string{"pkgs": "ctxpoll"})
}

func TestPurefold(t *testing.T) {
	analysistest.Run(t, lint.PurefoldAnalyzer, "purefold", nil)
}

func TestBannedcalls(t *testing.T) {
	analysistest.Run(t, lint.BannedcallsAnalyzer, "bannedcalls", map[string]string{"pkgs": "bannedcalls"})
}

// TestDirectiveValidation checks that the checker polices the directives
// themselves: no justification and unknown analyzer names are findings even
// with zero analyzers enabled.
func TestDirectiveValidation(t *testing.T) {
	src := `package p

//lint:graphmat snappin
var x = 1

//lint:graphmat nosuch justified at length but naming no real analyzer
var y = 2
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Check(nil, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, fd := range findings {
		if fd.Analyzer != "directive" {
			t.Errorf("finding attributed to %q, want \"directive\": %s", fd.Analyzer, fd)
		}
	}
	if !strings.Contains(findings[0].Message, "requires a justification") {
		t.Errorf("first finding = %q, want justification complaint", findings[0].Message)
	}
	if !strings.Contains(findings[1].Message, `unknown analyzer "nosuch"`) {
		t.Errorf("second finding = %q, want unknown-analyzer complaint", findings[1].Message)
	}
}

// TestAllOrder pins the suite roster: the vettool's flag surface is derived
// from it, so accidental drops would silently stop enforcement.
func TestAllOrder(t *testing.T) {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	want := []string{"snappin", "detfold", "ctxpoll", "purefold", "bannedcalls"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("All() = %v, want %v", names, want)
	}
}
