package lint

// snappin enforces the snapshot-pinning contract of the versioned store
// (internal/graph): every Store.Acquire() must be paired with exactly one
// Snapshot.Release() on EVERY path out of the acquiring function — early
// returns and error branches included — unless the snapshot demonstrably
// escapes to an owner who will release it (returned, stored, or passed to
// another function). A leaked pin never crashes anything; it silently makes
// StoreStats.Pinned drift and keeps superseded epochs' memory reachable
// forever, which is exactly the class of bug a runtime differential suite
// cannot catch. The check is flow-sensitive over the mini CFG in cfg.go.
//
// What counts, mechanically: a call to a method named Acquire (no
// arguments) whose result type has a Release method. Reads through the
// pinned value (snap.Graph(), snap.Epoch(), ...) do not discharge the
// obligation; only Release, a defer of Release, or an ownership transfer
// does.

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"

	"graphmat/internal/lint/analysis"
)

// SnappinAnalyzer is the snappin analyzer.
var SnappinAnalyzer = newSnappin()

func newSnappin() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "snappin",
		Doc: "check that every Store.Acquire() pin is Release()d on all paths\n\n" +
			"A pinned snapshot must be released exactly once per acquire (see\n" +
			"Snapshot.Release). The analyzer follows every control-flow path from\n" +
			"the acquire; a path that can exit the function with the pin neither\n" +
			"released, deferred, nor transferred elsewhere is a finding.",
		Run: runSnappin,
	}
	a.Flags.Init("snappin", flag.ContinueOnError)
	return a
}

func runSnappin(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkPins(pass, body)
			}
			return true // keep descending: nested FuncLits analyzed separately
		})
	}
	return nil
}

// isAcquire reports whether call is an Acquire() whose result carries a
// Release method — the pin-returning shape, independent of which package
// defines the store (so fixtures and future stores are covered too).
func isAcquire(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Acquire" || len(call.Args) != 0 {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	ms := types.NewMethodSet(tv.Type)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Release" {
			return true
		}
	}
	return false
}

// checkPins analyzes one function body. Nested function literals are
// excluded here (ast.Inspect hands them to checkPins on their own).
func checkPins(pass *analysis.Pass, body *ast.BlockStmt) {
	type site struct {
		call *ast.CallExpr
		stmt ast.Stmt     // statement containing the acquire
		obj  types.Object // the variable pinned into, nil if not a simple var
		drop bool         // result provably discarded
		done bool         // discharged at the acquire site itself (escape/immediate release)
	}
	var sites []site

	// Locate acquire sites and classify how their result is consumed,
	// without descending into nested function literals.
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 1 {
			stack = stack[:len(stack)-1]
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAcquire(pass.TypesInfo, call) {
			return true
		}
		s := site{call: call}
		// Walk outward from the call to the enclosing statement, deciding
		// ownership from the innermost meaningful syntactic context; once
		// classified, keep walking only to locate the enclosing statement.
		classified := false
		for i := len(stack) - 2; i >= 0; i-- {
			if classified {
				if st, ok := stack[i].(ast.Stmt); ok {
					s.stmt = st
					break
				}
				continue
			}
			switch parent := stack[i].(type) {
			case *ast.AssignStmt:
				s.stmt = parent
				if len(parent.Lhs) == 1 && len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(call) {
					if id, ok := parent.Lhs[0].(*ast.Ident); ok {
						if id.Name == "_" {
							s.drop = true
						} else if obj := pass.TypesInfo.Defs[id]; obj != nil {
							s.obj = obj
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							s.obj = obj
						}
					} else {
						s.done = true // stored through a selector/index: ownership transferred
					}
				} else {
					s.done = true // multi-assign or nested: treat as transferred
				}
			case *ast.ExprStmt:
				s.stmt = parent
				if parent.X == ast.Expr(call) {
					s.drop = true // bare store.Acquire(): pin dropped on the floor
				} else {
					s.done = true // e.g. f(store.Acquire()): callee owns it
				}
			case *ast.SelectorExpr:
				// store.Acquire().Release() — immediately discharged;
				// store.Acquire().Graph() — pin dropped, graph kept: a leak.
				if parent.X == ast.Expr(call) {
					if parent.Sel.Name == "Release" {
						s.done = true
					} else {
						s.drop = true
					}
					classified = true
				}
			case ast.Stmt:
				// Any other statement context (return, defer, range, if
				// init...): the value flows somewhere that takes ownership,
				// or is immediately released.
				s.stmt = parent
				s.done = true
			}
			if s.stmt != nil {
				break
			}
		}
		if s.stmt != nil {
			sites = append(sites, s)
		}
		return true
	}
	stack = stack[:0]
	for _, st := range body.List {
		ast.Inspect(st, walk)
	}
	if len(sites) == 0 {
		return
	}

	cfg := buildCFG(body, func(s ast.Stmt) bool { return stmtTerminates(pass.TypesInfo, s) })

	for _, s := range sites {
		if s.drop && !s.done {
			pass.Reportf(s.call.Pos(), "snapshot pin is never released: the result of Acquire() is discarded or used transiently")
			continue
		}
		if s.done || s.obj == nil {
			continue
		}
		if !cfg.ok {
			continue // un-modeled control flow (goto/fallthrough): skip, don't guess
		}
		start, ok := cfg.nodes[s.stmt]
		if !ok {
			continue
		}
		if leakPath(pass, cfg, start, s.obj) {
			pass.Reportf(s.call.Pos(),
				"snapshot pinned here can leak: %s is not released on every path (add defer %s.Release() or release before each return)",
				s.obj.Name(), s.obj.Name())
		}
	}
}

// stmtTerminates reports statements that abnormally end the function: panic,
// os.Exit, runtime.Goexit, testing's Fatal/Skip family, log.Fatal*.
func stmtTerminates(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeOf(info, call)
	if obj == nil {
		return false
	}
	switch obj.Name() {
	case "panic", "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln", "FailNow", "Skip", "Skipf", "SkipNow":
		return true
	}
	return false
}

// pinEvent classifies what one statement does to the pinned variable.
type pinEvent int

const (
	pinNone    pinEvent = iota
	pinRelease          // v.Release() called (or deferred)
	pinEscape           // v handed to someone else: argument, return, store, capture
)

// stmtPinEvent inspects the parts of a statement that execute AT its CFG
// node (compound statements contribute only their headers; their bodies are
// separate nodes) for uses of obj.
func stmtPinEvent(info *types.Info, s ast.Stmt, obj types.Object) pinEvent {
	var roots []ast.Node
	switch s := s.(type) {
	case *ast.IfStmt:
		roots = []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			roots = []ast.Node{s.Cond}
		}
	case *ast.RangeStmt:
		roots = []ast.Node{s.X}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			roots = []ast.Node{s.Tag}
		}
	case *ast.TypeSwitchStmt:
		roots = []ast.Node{s.Assign}
	case *ast.LabeledStmt, *ast.SelectStmt:
		// headers carry no expressions
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			roots = append(roots, r)
		}
	default:
		roots = []ast.Node{s}
	}
	ev := pinNone
	for _, root := range roots {
		if e := exprPinEvent(info, root, obj); e > ev {
			ev = e
		}
	}
	return ev
}

// exprPinEvent walks one expression tree looking for uses of obj.
// v.Release() is a release; v.AnyOtherMethod() is a neutral read; v compared
// to nil is neutral; every other appearance (argument, return operand,
// right-hand side, composite literal, closure capture, &v, channel send)
// conservatively transfers ownership.
func exprPinEvent(info *types.Info, root ast.Node, obj types.Object) pinEvent {
	ev := pinNone
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		switch classifyPinUse(stack, id) {
		case pinRelease:
			ev = pinRelease // release dominates: the obligation is met
			return true
		case pinEscape:
			if ev != pinRelease {
				ev = pinEscape
			}
		}
		return true
	})
	return ev
}

// classifyPinUse decides what one identifier occurrence does with the pin,
// from its innermost enclosing expressions. stack[len-1] is the ident.
func classifyPinUse(stack []ast.Node, id *ast.Ident) pinEvent {
	if len(stack) < 2 {
		return pinEscape
	}
	parent := stack[len(stack)-2]
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
		// v.M — a method access. Called? Look one level further out.
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
				if sel.Sel.Name == "Release" {
					return pinRelease
				}
				return pinNone // neutral read through the pin (Graph(), Epoch(), ...)
			}
		}
		return pinNone // bare field/method read
	}
	if bin, ok := parent.(*ast.BinaryExpr); ok {
		// Comparisons (v == nil, v != old) read the pointer, not the pin.
		switch bin.Op {
		case token.EQL, token.NEQ:
			return pinNone
		}
	}
	if as, ok := parent.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if lhs == ast.Expr(id) {
				return pinNone // reassignment ends tracking of the old value elsewhere
			}
		}
	}
	return pinEscape
}

// leakPath reports whether some path from the acquire node reaches the
// function exit without the pin being released, deferred, or escaping.
func leakPath(pass *analysis.Pass, cfg *funcCFG, start *cfgNode, obj types.Object) bool {
	type state struct {
		n        *cfgNode
		released bool
	}
	seen := map[state]bool{}
	var dfs func(st state) bool
	dfs = func(st state) bool {
		if seen[st] {
			return false
		}
		seen[st] = true
		n := st.n
		if n == cfg.exit {
			return !st.released
		}
		if n.stmt != nil && !st.released {
			// defer v.Release() inside the statement counts: walk the whole
			// statement for defers (they register for all later exits).
			switch ev := stmtPinEvent(pass.TypesInfo, n.stmt, obj); ev {
			case pinRelease:
				st.released = true
			case pinEscape:
				return false // ownership transferred: this path is fine
			}
		}
		if n.terminates {
			return false
		}
		for _, succ := range n.succs {
			if dfs(state{succ, st.released}) {
				return true
			}
		}
		return false
	}
	// Start from the acquire statement's successors: the acquire statement
	// itself already ran.
	st := state{start, false}
	seen[st] = true
	for _, succ := range start.succs {
		if dfs(state{succ, false}) {
			return true
		}
	}
	return false
}
