// Package lint is graphmatlint: a suite of static analyzers that enforce the
// engine's correctness invariants at compile time. The differential test
// suites (kernel modes, layered overlays, block columns) prove the invariants
// hold on the inputs they happen to exercise; these analyzers enforce the
// properties that make those suites meaningful on every path in the tree:
//
//   - snappin: every Store.Acquire() pin is Release()d exactly once on every
//     path (early returns and error branches included), or provably handed
//     off to someone who will.
//   - detfold: no iteration-order nondeterminism (map range, sort.Slice)
//     inside the kernel/fold packages whose results must be bit-identical
//     across modes.
//   - ctxpoll: long partition loops poll the cooperative-cancellation stop
//     flag (or ctx) so a cancel never waits on a multi-second sweep.
//   - purefold: semiring/program fold operators (ProcessMessage, Reduce,
//     Mul, Add, Identity) are pure — no receiver or global writes, no
//     impure stdlib calls.
//   - bannedcalls: a deny-list (time.Now, fmt.Sprintf, panic, ...) for
//     hot-path packages.
//
// A finding is suppressed with an inline directive carrying a justification:
//
//	//lint:graphmat <analyzer>[,<analyzer>] <justification>
//
// The directive applies to its own source line and to the line directly
// below it (so it works both as a trailing comment and as a standalone
// comment above the offending line). A directive without a justification is
// itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"graphmat/internal/lint/analysis"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		SnappinAnalyzer,
		DetfoldAnalyzer,
		CtxpollAnalyzer,
		PurefoldAnalyzer,
		BannedcallsAnalyzer,
	}
}

// Finding is one diagnostic surviving suppression, attributed to its
// analyzer and resolved to a concrete position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//lint:graphmat"

// directive is one parsed suppression comment.
type directive struct {
	line      int
	analyzers []string // analyzer names it suppresses
	justified bool     // carries a non-empty justification
	pos       token.Pos
}

// parseDirectives extracts every suppression directive in the file, keyed by
// nothing — callers index by line. Malformed directives are returned too
// (with justified=false) so the runner can report them.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
			if !ok {
				continue
			}
			rest = strings.TrimSpace(rest)
			name, justification, _ := strings.Cut(rest, " ")
			d := directive{
				line:      fset.Position(c.Pos()).Line,
				justified: strings.TrimSpace(justification) != "",
				pos:       c.Pos(),
			}
			for _, a := range strings.Split(name, ",") {
				if a = strings.TrimSpace(a); a != "" {
					d.analyzers = append(d.analyzers, a)
				}
			}
			out = append(out, d)
		}
	}
	return out
}

func (d directive) covers(name string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == name || a == "all" {
			return true
		}
	}
	return false
}

// Check runs the analyzers over one type-checked package, applies
// suppression directives, validates the directives themselves, and returns
// the surviving findings sorted by position.
func Check(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	var directives []directive
	for _, f := range files {
		directives = append(directives, parseDirectives(fset, f)...)
	}

	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	var findings []Finding
	for _, d := range directives {
		if !d.justified {
			findings = append(findings, Finding{
				Analyzer: "directive",
				Pos:      fset.Position(d.pos),
				Message:  "suppression directive requires a justification: //lint:graphmat <analyzer> <why this is safe>",
			})
			continue
		}
		for _, a := range d.analyzers {
			if !known[a] && a != "all" {
				findings = append(findings, Finding{
					Analyzer: "directive",
					Pos:      fset.Position(d.pos),
					Message:  fmt.Sprintf("suppression directive names unknown analyzer %q", a),
				})
			}
		}
	}

	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(diag analysis.Diagnostic) {
			pos := fset.Position(diag.Pos)
			for _, d := range directives {
				if d.justified && d.covers(name, pos.Line) {
					return
				}
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: diag.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// pkgInScope reports whether a package path matches any pattern in a
// comma-separated scope list. A pattern matches the exact path or any path
// ending in "/<pattern>" (so fixture packages can stand in for the real
// tree), and a trailing "/..." matches the subtree.
func pkgInScope(path, scope string) bool {
	for _, pat := range strings.Split(scope, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") || strings.HasSuffix(path, "/"+sub) {
				return true
			}
			continue
		}
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file's position is in a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// calleeOf resolves a call expression to its callee object, when the callee
// is a named function, method or builtin (nil for calls through function
// values, conversions, etc.).
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// calleeName returns the callee's name for name-pattern matching: the bare
// function or method name, or "" when unresolvable.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if obj := calleeOf(info, call); obj != nil {
		return obj.Name()
	}
	return ""
}

// matchNamePatterns reports whether name matches any comma-separated
// pattern; a trailing "*" makes the pattern a prefix match.
func matchNamePatterns(name, patterns string) bool {
	if name == "" {
		return false
	}
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if pre, ok := strings.CutSuffix(pat, "*"); ok {
			if strings.HasPrefix(name, pre) {
				return true
			}
		} else if name == pat {
			return true
		}
	}
	return false
}
