package lint

// A miniature intra-function control-flow graph, one node per statement.
// snappin walks it to prove a pinned snapshot is released on every path; the
// builder therefore errs toward *extra* edges (a spurious "path" can at worst
// cause a finding that a justification directive settles, while a missing
// edge would hide a real leak is the wrong way around — extra edges create
// false positives, so each construct below is wired to the real Go control
// flow, and functions using constructs the builder does not model (goto,
// fallthrough) are skipped entirely rather than approximated).

import (
	"go/ast"
)

type cfgNode struct {
	stmt ast.Stmt // nil for the synthetic exit node
	// terminates marks statements that abandon the function abnormally
	// (panic, os.Exit, t.Fatal): paths ending there are not leak-checked,
	// since deferred cleanup and process death make pin accounting moot.
	terminates bool
	succs      []*cfgNode
}

type funcCFG struct {
	nodes map[ast.Stmt]*cfgNode
	exit  *cfgNode
	ok    bool // false: function uses goto/fallthrough, analysis must skip it
}

type cfgBuilder struct {
	cfg *funcCFG
	// terminatesStmt reports whether a statement abnormally ends the
	// function (injected so the builder stays type-info-free).
	terminatesStmt func(ast.Stmt) bool
	// loop stack for break/continue; labeled entries carry their label.
	loops []loopFrame
}

type loopFrame struct {
	label       string
	brk, cont   *cfgNode
	isSwitchSel bool // switch/select: break applies, continue does not
}

// buildCFG constructs the CFG for a function body. The returned graph's ok
// field is false when the body uses control flow the builder does not model.
func buildCFG(body *ast.BlockStmt, terminates func(ast.Stmt) bool) *funcCFG {
	b := &cfgBuilder{
		cfg:            &funcCFG{nodes: map[ast.Stmt]*cfgNode{}, exit: &cfgNode{}, ok: true},
		terminatesStmt: terminates,
	}
	b.stmts(body.List, b.cfg.exit, "")
	return b.cfg
}

func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	b.cfg.nodes[s] = n
	return n
}

// stmts wires a statement list, returning its entry node; control leaving
// the list flows to succ. label names the statement a LabeledStmt is
// wrapping, for labeled break/continue.
func (b *cfgBuilder) stmts(list []ast.Stmt, succ *cfgNode, label string) *cfgNode {
	entry := succ
	for i := len(list) - 1; i >= 0; i-- {
		lbl := ""
		if i == 0 {
			lbl = label
		}
		entry = b.stmt(list[i], entry, lbl)
	}
	return entry
}

// stmt wires one statement, returning its entry node; control falling out of
// it flows to succ.
func (b *cfgBuilder) stmt(s ast.Stmt, succ *cfgNode, label string) *cfgNode {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		n := b.node(s)
		n.succs = []*cfgNode{b.stmt(s.Stmt, succ, s.Label.Name)}
		return n

	case *ast.BlockStmt:
		return b.stmts(s.List, succ, "")

	case *ast.ReturnStmt:
		n := b.node(s)
		n.succs = []*cfgNode{b.cfg.exit}
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		switch s.Tok.String() {
		case "break":
			if t := b.findLoop(s.Label, false); t != nil {
				n.succs = []*cfgNode{t.brk}
			} else {
				b.cfg.ok = false
			}
		case "continue":
			if t := b.findLoop(s.Label, true); t != nil {
				n.succs = []*cfgNode{t.cont}
			} else {
				b.cfg.ok = false
			}
		default: // goto, fallthrough
			b.cfg.ok = false
		}
		return n

	case *ast.IfStmt:
		n := b.node(s)
		thenEntry := b.stmts(s.Body.List, succ, "")
		n.succs = []*cfgNode{thenEntry}
		if s.Else != nil {
			n.succs = append(n.succs, b.stmt(s.Else, succ, ""))
		} else {
			n.succs = append(n.succs, succ)
		}
		return b.withInit(s.Init, n)

	case *ast.ForStmt:
		n := b.node(s) // the condition check
		var post *cfgNode
		if s.Post != nil {
			post = b.stmt(s.Post, n, "")
		} else {
			post = n
		}
		b.loops = append(b.loops, loopFrame{label: label, brk: succ, cont: post})
		bodyEntry := b.stmts(s.Body.List, post, "")
		b.loops = b.loops[:len(b.loops)-1]
		n.succs = []*cfgNode{bodyEntry, succ}
		return b.withInit(s.Init, n)

	case *ast.RangeStmt:
		n := b.node(s)
		b.loops = append(b.loops, loopFrame{label: label, brk: succ, cont: n})
		bodyEntry := b.stmts(s.Body.List, n, "")
		b.loops = b.loops[:len(b.loops)-1]
		n.succs = []*cfgNode{bodyEntry, succ}
		return n

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		n := b.node(s)
		var body *ast.BlockStmt
		var init ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			body, init = s.Body, s.Init
		case *ast.TypeSwitchStmt:
			body, init = s.Body, s.Init
		case *ast.SelectStmt:
			body = s.Body
		}
		b.loops = append(b.loops, loopFrame{label: label, brk: succ, isSwitchSel: true})
		hasDefault := false
		for _, cc := range body.List {
			var stmts []ast.Stmt
			switch cc := cc.(type) {
			case *ast.CaseClause:
				stmts = cc.Body
				if cc.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				stmts = cc.Body
				if cc.Comm == nil {
					hasDefault = true
				}
			}
			n.succs = append(n.succs, b.stmts(stmts, succ, ""))
		}
		b.loops = b.loops[:len(b.loops)-1]
		_, isSelect := s.(*ast.SelectStmt)
		if !hasDefault && (!isSelect || len(body.List) == 0) {
			// A switch without default can match nothing; a select without
			// default always takes some case (or blocks forever).
			n.succs = append(n.succs, succ)
		}
		return b.withInit(init, n)

	default:
		n := b.node(s)
		if b.terminatesStmt != nil && b.terminatesStmt(s) {
			n.terminates = true
			return n
		}
		n.succs = []*cfgNode{succ}
		return n
	}
}

// withInit prepends an optional init statement (if/for/switch headers).
func (b *cfgBuilder) withInit(init ast.Stmt, n *cfgNode) *cfgNode {
	if init == nil {
		return n
	}
	return b.stmt(init, n, "")
}

// findLoop resolves a break/continue target. needLoop excludes
// switch/select frames (continue skips them).
func (b *cfgBuilder) findLoop(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if needLoop && f.isSwitchSel {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}
