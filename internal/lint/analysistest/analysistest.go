// Package analysistest runs a graphmatlint analyzer over a fixture package
// and checks its diagnostics against the fixture's expectations, in the
// style of golang.org/x/tools/go/analysis/analysistest (which the repo does
// not vendor): a fixture line that should be flagged carries a trailing
//
//	// want "regexp"
//
// comment (several patterns allowed, each in its own quoted string). Every
// diagnostic must match a want on its line and every want must be matched —
// including the zero-diagnostic case, which is how the suppression-directive
// fixtures prove the directive works.
//
// Fixtures live under testdata/src/<pkg>/ and may import only the standard
// library; they are type-checked with the source importer so the suite runs
// offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"graphmat/internal/lint"
	"graphmat/internal/lint/analysis"
)

// sharedFset and srcImporter are shared across fixture loads: the source
// importer re-type-checks stdlib packages from source, and one instance
// caches them for the whole test binary.
var (
	sharedFset  = token.NewFileSet()
	srcImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// Run loads testdata/src/<pkg>, applies flag overrides to the analyzer
// (restored afterwards), runs it through the shared suppression-aware
// checker, and diffs diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string, flags map[string]string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)

	restore := map[string]string{}
	for k, v := range flags {
		f := a.Flags.Lookup(k)
		if f == nil {
			t.Fatalf("analyzer %s has no flag %q", a.Name, k)
		}
		restore[k] = f.Value.String()
		if err := f.Value.Set(v); err != nil {
			t.Fatalf("setting %s.%s=%q: %v", a.Name, k, v, err)
		}
	}
	defer func() {
		for k, v := range restore {
			a.Flags.Lookup(k).Value.Set(v)
		}
	}()

	fset := sharedFset
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: srcImporter}
	typesPkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkg, err)
	}

	findings, err := lint.Check([]*analysis.Analyzer{a}, fset, files, typesPkg, info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}

	wants := collectWants(t, fset, files)

	for _, f := range findings {
		key := wantKey{filepath.Base(f.Pos.Filename), f.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.re.MatchString(f.Message) {
				matched = true
				wants[key][i] = nil // each want matches one diagnostic
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re *regexp.Regexp
}

// wantRe matches a want comment; the patterns are Go-quoted strings.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts every `// want "re" ["re" ...]` comment, keyed by
// (file, line).
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*want {
	t.Helper()
	out := map[wantKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{filepath.Base(pos.Filename), pos.Line}
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' {
						t.Fatalf("%s: malformed want comment near %q (patterns must be quoted strings)", pos, rest)
					}
					end := quotedEnd(rest)
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern %q", pos, rest)
					}
					pat, err := strconv.Unquote(rest[:end])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, rest[:end], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: want pattern does not compile: %v", pos, err)
					}
					out[key] = append(out[key], &want{re: re})
					rest = strings.TrimSpace(rest[end:])
				}
			}
		}
	}
	return out
}

// quotedEnd returns the index just past the closing quote of the leading
// double-quoted (possibly escaped) string in s, or -1.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}
