package bannedcalls

import "time"

// Negative fixture: deliberate coarse-grained timing with the justified
// directive bannedcalls requires. No diagnostics in this file.

func timedSweep(xs []float64) (float64, time.Duration) {
	start := time.Now() //lint:graphmat bannedcalls superstep-granularity timing, one clock read per sweep
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total, time.Since(start) //lint:graphmat bannedcalls paired with the superstep clock read above
}
