// Fixture for the bannedcalls analyzer: denied calls in hot-path code (the
// test points the pkgs flag at this package), and the hosts where the same
// calls are conventional and allowed.
package bannedcalls

import (
	"fmt"
	"time"
)

func hotKernel(xs []float64) float64 {
	start := time.Now() // want "call to time.Now is banned"
	total := 0.0
	for _, x := range xs {
		total += x
	}
	_ = start
	return total
}

func hotFormat(n int) string {
	return fmt.Sprintf("n=%d", n) // want "call to fmt.Sprintf is banned"
}

func hotAbort(n int) {
	if n < 0 {
		panic("negative") // want "call to panic is banned"
	}
}
