package bannedcalls

import "fmt"

// Allowed hosts: constructors, validators and formatting methods are where
// panics and formatting belong. None of these may be flagged.

func NewBuffer(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("bannedcalls: negative size %d", n))
	}
	return make([]float64, n)
}

func checkBounds(i, n int) {
	if i >= n {
		panic("index out of range")
	}
}

type Vec []float64

func (v Vec) String() string {
	return fmt.Sprintf("vec(%d)", len(v))
}

func plainArithmetic(a, b int) int {
	return a*b + a
}
