package purefold

// Negative fixture: an instrumented ring whose receiver write carries the
// justified directive purefold requires. No diagnostics in this file.

type AuditedRing struct{ adds int }

func (r *AuditedRing) Mul(a, b int) int { return a * b }

func (r *AuditedRing) Add(a, b int) int {
	r.adds++ //lint:graphmat purefold debug-only ring, run single-worker under a build tag
	return a + b
}

func (r *AuditedRing) Identity() int { return 0 }
