package purefold

// Pure operators and non-qualifying method sets: none of these may be
// flagged.

type GoodRing struct{}

func (GoodRing) Mul(a, b float64) float64 { return a * b }
func (GoodRing) Add(a, b float64) float64 { return a + b }
func (GoodRing) Identity() float64        { return 0 }

type GoodProg struct{}

func (GoodProg) ProcessMessage(m, e int) int { return m + e }

func (GoodProg) Reduce(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NotARing declares only Mul, so the semiring purity contract does not
// apply: a type needs the full Mul/Add/Identity set to qualify.
type NotARing struct{ calls int }

func (n *NotARing) Mul(a, b int) int {
	n.calls++
	return a * b
}

// Local state inside an operator is fine: purity is about state that outlives
// the call.
type LocalsRing struct{}

func (LocalsRing) Mul(a, b int) int { return a * b }
func (LocalsRing) Add(a, b int) int {
	acc := a
	acc += b
	return acc
}
func (LocalsRing) Identity() int { return 0 }
