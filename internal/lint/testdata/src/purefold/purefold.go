// Fixture for the purefold analyzer: semiring and vertex-program operator
// sets with every class of impurity, plus pure and non-qualifying types.
package purefold

import "fmt"

var totalAdds int
var sink chan int

type BadRing struct {
	adds int
}

func (r *BadRing) Mul(a, b float64) float64 { return a * b }

func (r *BadRing) Add(a, b float64) float64 {
	r.adds++    // want "writes receiver state"
	totalAdds++ // want "writes package-level state"
	return a + b
}

func (r *BadRing) Identity() float64 {
	_ = fmt.Sprintf("identity") // want "calls fmt.Sprintf"
	return 0
}

type BadProg struct {
	seen []int
}

func (p *BadProg) ProcessMessage(m, e int) int {
	p.seen = append(p.seen, m) // want "writes receiver state"
	return m + e
}

func (p *BadProg) Reduce(a, b int) int {
	go func() {}() // want "starts a goroutine"
	sink <- a      // want "sends on a channel"
	if a > b {
		return a
	}
	return b
}
