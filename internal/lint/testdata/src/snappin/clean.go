package snappin

// Every compliant consumption pattern: deferred release, release on each
// branch, immediate release, and the ownership transfers (returned, stored,
// passed as an argument) that discharge the obligation without a local
// Release. None of these lines may be flagged.

func deferred(st *Store) int {
	snap := st.Acquire()
	defer snap.Release()
	return snap.Epoch()
}

func releasedBothBranches(st *Store, cond bool) int {
	snap := st.Acquire()
	if cond {
		snap.Release()
		return 0
	}
	e := snap.Epoch()
	snap.Release()
	return e
}

func immediate(st *Store) {
	st.Acquire().Release()
}

func transferReturn(st *Store) *Snapshot {
	return st.Acquire()
}

func transferArg(st *Store) {
	consume(st.Acquire())
}

func transferTrackedArg(st *Store) {
	snap := st.Acquire()
	consume(snap)
}

func consume(s *Snapshot) { s.Release() }

type holder struct{ s *Snapshot }

func transferStore(st *Store, h *holder) {
	h.s = st.Acquire()
}

func panicPath(st *Store, bad bool) {
	snap := st.Acquire()
	if bad {
		panic("bad")
	}
	snap.Release()
}

func loopRelease(st *Store, parts []int) int {
	total := 0
	for range parts {
		snap := st.Acquire()
		total += snap.Epoch()
		snap.Release()
	}
	return total
}

func switchRelease(st *Store, mode int) int {
	snap := st.Acquire()
	defer snap.Release()
	switch mode {
	case 0:
		return 0
	case 1:
		return snap.Epoch()
	default:
		return -1
	}
}
