// Fixture for the snappin analyzer: a miniature versioned store with the
// Acquire/Release shape, and every way to leak a pin that the analyzer must
// catch.
package snappin

type Graph struct{ n int }

type Snapshot struct{ g *Graph }

func (s *Snapshot) Release()      {}
func (s *Snapshot) Graph() *Graph { return s.g }
func (s *Snapshot) Epoch() int    { return 0 }

type Store struct{ cur *Snapshot }

func (st *Store) Acquire() *Snapshot { return st.cur }

func leakOnEarlyReturn(st *Store, cond bool) int {
	snap := st.Acquire() // want "not released on every path"
	if cond {
		return 0
	}
	snap.Release()
	return 1
}

func leakNeverReleased(st *Store) int {
	snap := st.Acquire() // want "not released on every path"
	return snap.Epoch()
}

func leakOneBranch(st *Store, cond bool) int {
	snap := st.Acquire() // want "not released on every path"
	if cond {
		snap.Release()
		return 0
	}
	return snap.Epoch()
}

func dropped(st *Store) {
	st.Acquire() // want "never released"
}

func droppedUnderscore(st *Store) {
	_ = st.Acquire() // want "never released"
}

func chainedRead(st *Store) *Graph {
	g := st.Acquire().Graph() // want "never released"
	return g
}

func chainedReadReturn(st *Store) *Graph {
	return st.Acquire().Graph() // want "never released"
}

func leakInClosure(st *Store) func() int {
	return func() int {
		snap := st.Acquire() // want "not released on every path"
		return snap.Epoch()
	}
}

func leakInLoopBreak(st *Store, parts []int) int {
	total := 0
	for _, p := range parts {
		snap := st.Acquire() // want "not released on every path"
		if p < 0 {
			break
		}
		total += snap.Epoch()
		snap.Release()
	}
	return total
}
