package snappin

// Negative fixture: the same leak shapes as snappin.go, silenced by a
// justified suppression directive. The runner asserts this file produces no
// diagnostics — proving both the trailing and the line-above directive forms
// work.

func suppressedDrop(st *Store) {
	st.Acquire() //lint:graphmat snappin fixture: intentional leak kept to prove suppression works
}

func suppressedLeak(st *Store, cond bool) int {
	//lint:graphmat snappin fixture: release handled by process teardown in this scenario
	snap := st.Acquire()
	if cond {
		return 0
	}
	snap.Release()
	return 1
}
