package ctxpoll

// Negative fixture: a justified directive silences the polling rule for a
// provably short sweep. No diagnostics in this file.

func suppressedSweep(parts [4]int) {
	//lint:graphmat ctxpoll bounded to 4 partitions, sub-millisecond sweep
	for _, p := range parts {
		spmvPull(p)
	}
}
