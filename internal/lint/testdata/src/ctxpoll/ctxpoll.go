// Fixture for the ctxpoll analyzer: kernel-dispatching loops that do and do
// not poll a stop signal (the test points the pkgs flag at this package).
package ctxpoll

import (
	"context"
	"sync/atomic"
)

// spmvPull stands in for a kernel entry point (matches the spmv* pattern).
func spmvPull(part int) {}

// parallelFor mirrors the engine's dispatch helper: it polls the stop flag
// internally before every task, so routing through it with a non-nil stop
// argument counts as polling.
func parallelFor(nworkers, ntasks, sched int, stop *atomic.Int32, fn func(int)) {
	for i := 0; i < ntasks; i++ {
		if stop != nil && stop.Load() != 0 {
			return
		}
		fn(i)
	}
}

func sweepNoPoll(parts []int) {
	for _, p := range parts { // want "without polling"
		spmvPull(p)
	}
}

func supersteps(parts []int, iters int) {
	for it := 0; it < iters; it++ { // want "without polling"
		for _, p := range parts { // want "without polling"
			spmvPull(p)
		}
	}
}

func sweepWrapperNil(parts []int) {
	for round := 0; round < 3; round++ { // want "without polling"
		parallelFor(4, len(parts), 0, nil, func(i int) {
			spmvPull(parts[i])
		})
	}
}

func sweepAtomic(parts []int, stop *atomic.Int32) {
	for _, p := range parts {
		if stop.Load() != 0 {
			return
		}
		spmvPull(p)
	}
}

func sweepCtx(ctx context.Context, parts []int) error {
	for _, p := range parts {
		if err := ctx.Err(); err != nil {
			return err
		}
		spmvPull(p)
	}
	return nil
}

func sweepWrapper(parts []int, stop *atomic.Int32) {
	for round := 0; round < 3; round++ {
		parallelFor(4, len(parts), 0, stop, func(i int) {
			spmvPull(parts[i])
		})
	}
}

func noKernelNoRule(parts []int) int {
	total := 0
	for _, p := range parts {
		total += p
	}
	return total
}
