// Fixture for the ctxpoll analyzer: kernel-dispatching loops that do and do
// not poll a stop signal (the test points the pkgs flag at this package).
package ctxpoll

import (
	"context"
	"sync/atomic"
)

// spmvPull stands in for a kernel entry point (matches the spmv* pattern).
func spmvPull(part int) {}

// execCfg stands in for the engine's execution config.
type execCfg struct{ workers int }

// parallelFor mirrors the engine's dispatch helper: it polls the stop flag
// internally before every task, so routing through it with a non-nil stop
// argument counts as polling.
func parallelFor(ex execCfg, ntasks int, stop *atomic.Int32, fn func(task, worker int)) {
	for i := 0; i < ntasks; i++ {
		if stop != nil && stop.Load() != 0 {
			return
		}
		fn(i, 0)
	}
}

// pool mirrors the scheduler pool: Run and RunOptions poll the stop flag
// before every task.
type pool struct{}

func (p *pool) Run(ntasks int, stop *atomic.Int32, fn func(task, worker int)) {
	p.RunOptions(ntasks, stop, 0, fn)
}

func (p *pool) RunOptions(ntasks int, stop *atomic.Int32, opts int, fn func(task, worker int)) {
	for i := 0; i < ntasks; i++ {
		if stop != nil && stop.Load() != 0 {
			return
		}
		fn(i, 0)
	}
}

func sweepNoPoll(parts []int) {
	for _, p := range parts { // want "without polling"
		spmvPull(p)
	}
}

func supersteps(parts []int, iters int) {
	for it := 0; it < iters; it++ { // want "without polling"
		for _, p := range parts { // want "without polling"
			spmvPull(p)
		}
	}
}

func sweepWrapperNil(parts []int) {
	for round := 0; round < 3; round++ { // want "without polling"
		parallelFor(execCfg{4}, len(parts), nil, func(i, w int) {
			spmvPull(parts[i])
		})
	}
}

func sweepPoolNil(parts []int, p *pool) {
	for round := 0; round < 3; round++ { // want "without polling"
		p.Run(len(parts), nil, func(i, w int) {
			spmvPull(parts[i])
		})
	}
}

func sweepAtomic(parts []int, stop *atomic.Int32) {
	for _, p := range parts {
		if stop.Load() != 0 {
			return
		}
		spmvPull(p)
	}
}

func sweepCtx(ctx context.Context, parts []int) error {
	for _, p := range parts {
		if err := ctx.Err(); err != nil {
			return err
		}
		spmvPull(p)
	}
	return nil
}

func sweepWrapper(parts []int, stop *atomic.Int32) {
	for round := 0; round < 3; round++ {
		parallelFor(execCfg{4}, len(parts), stop, func(i, w int) {
			spmvPull(parts[i])
		})
	}
}

func sweepPool(parts []int, p *pool, stop *atomic.Int32) {
	for round := 0; round < 3; round++ {
		p.Run(len(parts), stop, func(i, w int) {
			spmvPull(parts[i])
		})
	}
}

func sweepPoolOptions(parts []int, p *pool, stop *atomic.Int32) {
	for round := 0; round < 3; round++ {
		p.RunOptions(len(parts), stop, 1, func(i, w int) {
			spmvPull(parts[i])
		})
	}
}

func noKernelNoRule(parts []int) int {
	total := 0
	for _, p := range parts {
		total += p
	}
	return total
}
