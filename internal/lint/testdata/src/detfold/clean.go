package detfold

import "sort"

// Deterministic iteration is fine: slices, channels-free loops, stable sorts
// and sort.Ints-style total orders.

func sumSlice(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

func sortStable(xs []int) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func sortTotal(xs []int) {
	sort.Ints(xs)
}
