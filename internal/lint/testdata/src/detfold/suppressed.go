package detfold

import "sort"

// Negative fixture: a map range whose output is canonicalized immediately
// after, with the justified directive that detfold requires. No diagnostics.

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//lint:graphmat detfold keys are sorted immediately below, restoring determinism
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
