// Fixture for the detfold analyzer: nondeterministic iteration inside a
// fold-scoped package (the test points the pkgs flag at this package).
package detfold

import "sort"

func sumMap(m map[int]int) int {
	total := 0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

func collectKeys(m map[string][]int) []string {
	var out []string
	for k := range m { // want "range over map"
		out = append(out, k)
	}
	return out
}

func sortEdges(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "sort.Slice is not stable"
}
