package lint

// detfold enforces the determinism precondition of every differential suite
// in the repo: kernel results must be bit-identical across pull/push modes,
// layered overlays and block columns, which holds only because the fold
// never observes an iteration order Go does not guarantee. Inside the fold
// packages (internal/core kernels, internal/sparse merge paths) the analyzer
// forbids:
//
//   - ranging over a map: Go randomizes map iteration order per run, so any
//     map-range feeding a fold (or building a structure a fold traverses)
//     can produce run-to-run different results even on one machine;
//   - sort.Slice: not stable, so elements comparing equal land in
//     unspecified order; use sort.SliceStable or a total comparator and
//     justify with a directive.
//
// Test files are exempt (tests may iterate maps to build expectations; the
// differential suites are the runtime proof). A legitimate map-range — one
// whose result is canonicalized afterwards — keeps its directive as
// documentation of where determinism is re-established.

import (
	"flag"
	"go/ast"
	"go/types"

	"graphmat/internal/lint/analysis"
)

// DetfoldAnalyzer is the detfold analyzer.
var DetfoldAnalyzer = newDetfold()

func newDetfold() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "detfold",
		Doc: "forbid nondeterministic iteration (map range, sort.Slice) in fold packages\n\n" +
			"The kernel fold order is the engine's determinism contract: every\n" +
			"mode and overlay must produce bit-identical results. Map iteration\n" +
			"order and unstable sorts break that silently.",
		Run: runDetfold,
	}
	a.Flags.Init("detfold", flag.ContinueOnError)
	a.Flags.String("pkgs", "graphmat/internal/core,graphmat/internal/sparse",
		"comma-separated package scope (path or suffix) the fold-determinism rules apply to")
	return a
}

func runDetfold(pass *analysis.Pass) error {
	scope := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	if !pkgInScope(pass.Pkg.Path(), scope) {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"range over map %s iterates in nondeterministic order inside a fold package: iterate a sorted key slice instead",
						types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			case *ast.CallExpr:
				if obj := calleeOf(pass.TypesInfo, n); obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "sort" && obj.Name() == "Slice" {
					pass.Reportf(n.Pos(),
						"sort.Slice is not stable: equal elements land in unspecified order inside a fold package; use sort.SliceStable or a total comparator")
				}
			}
			return true
		})
	}
	return nil
}
