package lint

// bannedcalls is the blunt instrument of the suite: a configurable deny-list
// of calls for hot-path packages. The engine's per-edge and per-entry code
// (internal/sparse, internal/bitvec, the internal/core kernels and drivers,
// the internal/kernels SIMD dispatch layer every fold routes through, and
// the internal/snap mapping layer every mmap-boot query reads through)
// must not reach for wall clocks, formatted printing, or panics outside
// validation — each is either a per-call allocation, a syscall, or a control
// transfer that has no place inside a fold.
//
// Allowances, because a deny-list without them just breeds directives:
//
//   - functions whose name marks them as construction or validation (init,
//     New*, Must*, *valid*, *check*, *parse*) may panic and format: that is
//     where precondition failures are supposed to be loud;
//   - conventional formatting methods (String, Error, GoString, Format,
//     MarshalJSON, UnmarshalJSON) may format: they are cold by contract;
//   - test files are exempt.
//
// Anything else needs an inline //lint:graphmat bannedcalls <why> directive;
// the engine drivers' per-superstep timing reads carry exactly that.

import (
	"flag"
	"go/ast"
	"strings"

	"graphmat/internal/lint/analysis"
)

// BannedcallsAnalyzer is the bannedcalls analyzer.
var BannedcallsAnalyzer = newBannedcalls()

func newBannedcalls() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "bannedcalls",
		Doc: "deny-list calls (time.Now, fmt.Sprintf, panic, ...) in hot-path packages\n\n" +
			"Hot-path code pays for every clock read, format and panic on every\n" +
			"edge or entry. The list is configurable; violations need a justified\n" +
			"suppression directive.",
		Run: runBannedcalls,
	}
	a.Flags.Init("bannedcalls", flag.ContinueOnError)
	a.Flags.String("pkgs", "graphmat/internal/sparse,graphmat/internal/bitvec,graphmat/internal/core,graphmat/internal/snap,graphmat/internal/kernels",
		"comma-separated package scope (path or suffix) the deny-list applies to")
	a.Flags.String("calls",
		"time.Now,time.Since,fmt.Sprintf,fmt.Sprint,fmt.Sprintln,fmt.Printf,fmt.Print,fmt.Println,math/rand.*,math/rand/v2.*,panic",
		"comma-separated banned calls: pkgpath.Func, pkgpath.* or a builtin name")
	return a
}

func runBannedcalls(pass *analysis.Pass) error {
	scope := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	if !pkgInScope(pass.Pkg.Path(), scope) {
		return nil
	}
	banned := strings.Split(pass.Analyzer.Flags.Lookup("calls").Value.String(), ",")

	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || allowedHost(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeOf(pass.TypesInfo, call)
				if obj == nil {
					return true
				}
				qualified := obj.Name()
				if obj.Pkg() != nil {
					qualified = obj.Pkg().Path() + "." + obj.Name()
				}
				for _, b := range banned {
					b = strings.TrimSpace(b)
					if b == "" {
						continue
					}
					hit := qualified == b
					if pre, ok := strings.CutSuffix(b, ".*"); ok && obj.Pkg() != nil {
						hit = obj.Pkg().Path() == pre
					}
					if hit {
						pass.Reportf(call.Pos(), "call to %s is banned in hot-path package %s (justify with //lint:graphmat bannedcalls <why> if deliberate)",
							qualified, pass.Pkg.Path())
						break
					}
				}
				return true
			})
		}
	}
	return nil
}

// allowedHost reports whether a function is one where panics and formatting
// are conventional: constructors/validators and formatting methods.
func allowedHost(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Must") ||
		strings.HasPrefix(name, "must") {
		return true
	}
	lower := strings.ToLower(name)
	if strings.Contains(lower, "valid") || strings.Contains(lower, "check") || strings.Contains(lower, "parse") {
		return true
	}
	if fd.Recv != nil {
		switch name {
		case "String", "Error", "GoString", "Format", "MarshalJSON", "UnmarshalJSON":
			return true
		}
	}
	return false
}
