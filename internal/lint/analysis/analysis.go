// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check with its
// own flags, a Pass hands it one type-checked package, and diagnostics flow
// back through Pass.Report. The repo vendors no third-party modules, so the
// graphmatlint suite (internal/lint) is written against this shim instead of
// the upstream package; the surface is kept call-compatible so the analyzers
// could be ported to the real framework by changing one import path.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags and suppression
	// directives. Must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, the rest the full invariant it enforces.
	Doc string

	// Flags holds analyzer-specific configuration. The driver exposes each
	// flag as -<name>.<flag>.
	Flags flag.FlagSet

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver attaches suppression
	// handling behind it; analyzers just call it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Inspect walks every file in the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
