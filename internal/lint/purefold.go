package lint

// purefold enforces the purity contract of the fold operators. The engine's
// determinism story (and the batcher's ability to coalesce requests into one
// block run) rests on ProcessMessage/Reduce — and their semiring faces
// Mul/Add/Identity — being pure functions: partitions fold in structure
// order, workers race freely, and the block engine replays the same operator
// across k columns. An operator that writes receiver or package state is a
// data race and an order dependence at once; one that calls into fmt, time
// or math/rand is impure (and allocates) on the hottest path in the system.
//
// Mechanically: a type qualifies as a program when it declares both
// ProcessMessage and Reduce, and as a semiring when it declares Mul, Add and
// Identity. Inside those five methods the analyzer reports:
//
//   - assignments (incl. ++/--, op=) whose target is rooted at the receiver
//     or at a package-level variable — including such writes from closures;
//   - calls into fmt, time, math/rand, os or log;
//   - go statements and channel sends.
//
// SendMessage and Apply are deliberately out of scope: Apply mutates vertex
// state by contract, and both run once per vertex, not once per edge.

import (
	"flag"
	"go/ast"
	"go/types"
	"strings"

	"graphmat/internal/lint/analysis"
)

// PurefoldAnalyzer is the purefold analyzer.
var PurefoldAnalyzer = newPurefold()

var programMethods = map[string]bool{"ProcessMessage": true, "Reduce": true}
var semiringMethods = map[string]bool{"Mul": true, "Add": true, "Identity": true}

func newPurefold() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "purefold",
		Doc: "require semiring and vertex-program fold operators to be pure\n\n" +
			"ProcessMessage/Reduce and Mul/Add/Identity run once per edge inside\n" +
			"racing partition workers, in structure order. Writing receiver or\n" +
			"global state, or calling impure stdlib (fmt, time, math/rand), makes\n" +
			"the fold order observable — the exact property the differential\n" +
			"suites exist to rule out.",
		Run: runPurefold,
	}
	a.Flags.Init("purefold", flag.ContinueOnError)
	a.Flags.String("deny", "fmt,time,math/rand,math/rand/v2,os,log",
		"comma-separated packages fold operators must not call into")
	return a
}

func runPurefold(pass *analysis.Pass) error {
	deny := pass.Analyzer.Flags.Lookup("deny").Value.String()

	// First pass: which receiver types declare which candidate methods.
	declared := map[string]map[string]bool{} // receiver type name -> method set
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			name := fd.Name.Name
			if !programMethods[name] && !semiringMethods[name] {
				continue
			}
			recv := recvTypeName(fd)
			if recv == "" {
				continue
			}
			if declared[recv] == nil {
				declared[recv] = map[string]bool{}
			}
			declared[recv][name] = true
		}
	}

	qualifies := func(recv, method string) bool {
		ms := declared[recv]
		if programMethods[method] {
			return ms["ProcessMessage"] && ms["Reduce"]
		}
		return ms["Mul"] && ms["Add"] && ms["Identity"]
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if !programMethods[name] && !semiringMethods[name] {
				continue
			}
			if !qualifies(recvTypeName(fd), name) {
				continue
			}
			checkFoldMethod(pass, fd, deny)
		}
	}
	return nil
}

// recvTypeName extracts the receiver's type name, stripping pointers and
// type parameters.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

func checkFoldMethod(pass *analysis.Pass, fd *ast.FuncDecl, deny string) {
	info := pass.TypesInfo

	// The receiver object, if named.
	var recvObj types.Object
	if names := fd.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
		recvObj = info.Defs[names[0]]
	}

	// isImpureTarget decides whether an assignment target escapes the
	// operator's frame: rooted at the receiver or at package-level state.
	isImpureTarget := func(e ast.Expr) (string, bool) {
		root := rootIdent(e)
		if root == nil {
			return "", false
		}
		obj := info.Uses[root]
		if obj == nil {
			obj = info.Defs[root]
		}
		if obj == nil {
			return "", false
		}
		if recvObj != nil && obj == recvObj {
			// Writing through (or to) the receiver. A bare `recv = ...` on a
			// value receiver only mutates the copy, but it is still an
			// order-dependence smell worth surfacing.
			return "receiver state", true
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			return "package-level state", true
		}
		return "", false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if what, bad := isImpureTarget(lhs); bad {
					pass.Reportf(n.Pos(), "%s writes %s: fold operators must be pure (partitions fold in structure order, concurrently)", fd.Name.Name, what)
				}
			}
		case *ast.IncDecStmt:
			if what, bad := isImpureTarget(n.X); bad {
				pass.Reportf(n.Pos(), "%s writes %s: fold operators must be pure (partitions fold in structure order, concurrently)", fd.Name.Name, what)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s starts a goroutine: fold operators must be pure and synchronous", fd.Name.Name)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "%s sends on a channel: fold operators must be pure and synchronous", fd.Name.Name)
		case *ast.CallExpr:
			obj := calleeOf(info, n)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			pkg := obj.Pkg().Path()
			for _, d := range strings.Split(deny, ",") {
				if d = strings.TrimSpace(d); d != "" && pkg == d {
					pass.Reportf(n.Pos(), "%s calls %s.%s: fold operators must not use %s (impure and per-call allocation on the per-edge path)",
						fd.Name.Name, pkg, obj.Name(), d)
				}
			}
		}
		return true
	})
}

// rootIdent walks selector/index/star chains to the base identifier of an
// assignment target (p.x.y[i] -> p); nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}
