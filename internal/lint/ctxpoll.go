package lint

// ctxpoll enforces the cooperative-cancellation contract introduced with
// RunContext: a cancel (client disconnect, deadline, SIGINT) must abort a
// multi-second sweep between partitions, not after it. Mechanically: inside
// the engine packages, any loop whose body dispatches a kernel — an SpMV/
// SpMM entry or core.MultiplyPartition — must also poll a stop signal in
// that body. A poll is any of:
//
//   - an atomic load (.Load()) — the engine's stop flag idiom;
//   - a controller check (.stopped() / .Stopped());
//   - a ctx check (.Done() / .Err());
//   - a call to parallelFor with a non-nil stop argument (parallelFor polls
//     internally before every task).
//
// Function literals inside the loop body are searched too: the kernel
// dispatch in the engine lives inside parallelFor callbacks, and a kernel
// call hidden in a closure is still this loop's work. Test files are exempt
// (differential tests drive kernels in tight loops on purpose).

import (
	"flag"
	"go/ast"
	"strconv"
	"strings"

	"graphmat/internal/lint/analysis"
)

// CtxpollAnalyzer is the ctxpoll analyzer.
var CtxpollAnalyzer = newCtxpoll()

func newCtxpoll() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "ctxpoll",
		Doc: "require partition loops that dispatch kernels to poll the stop flag or ctx\n\n" +
			"Cooperative cancellation only works if every long loop polls. A loop\n" +
			"that sweeps partitions through a kernel without checking the stop\n" +
			"signal turns one cancel into a full-superstep wait.",
		Run: runCtxpoll,
	}
	a.Flags.Init("ctxpoll", flag.ContinueOnError)
	a.Flags.String("pkgs", "graphmat/internal/core,graphmat/internal/distributed,graphmat/internal/kernels",
		"comma-separated package scope (path or suffix) the polling rule applies to")
	a.Flags.String("funcs", "spmv*,spmm*,MultiplyPartition",
		"comma-separated kernel entry points (name or prefix*) whose dispatch loops must poll")
	a.Flags.String("wrappers", "parallelFor:2,Run:1,RunOptions:1",
		"comma-separated name:argIndex pairs of dispatch helpers that poll internally when the given argument is non-nil")
	return a
}

func runCtxpoll(pass *analysis.Pass) error {
	scope := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	if !pkgInScope(pass.Pkg.Path(), scope) {
		return nil
	}
	kernels := pass.Analyzer.Flags.Lookup("funcs").Value.String()
	wrappers := parseWrappers(pass.Analyzer.Flags.Lookup("wrappers").Value.String())

	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			if loopDispatchesKernel(pass, body, kernels) && !loopPolls(pass, body, wrappers) {
				pass.Reportf(n.Pos(),
					"loop dispatches a kernel without polling the stop flag or ctx: cancellation waits for the whole sweep (poll an atomic stop flag, ctx.Done(), or route through parallelFor with a stop argument)")
			}
			return true
		})
	}
	return nil
}

// parseWrappers parses "name:argIndex" pairs.
func parseWrappers(s string) map[string]int {
	out := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, idx, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			continue
		}
		if n, err := strconv.Atoi(idx); err == nil && n >= 0 {
			out[name] = n
		}
	}
	return out
}

// loopDispatchesKernel reports whether the loop body calls a kernel entry,
// descending into function literals (the engine's kernel calls live inside
// parallelFor callbacks).
func loopDispatchesKernel(pass *analysis.Pass, body *ast.BlockStmt, kernels string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(pass.TypesInfo, call)
		if matchNamePatterns(name, kernels) {
			found = true
		}
		return true
	})
	return found
}

// loopPolls reports whether the loop body contains a poll.
func loopPolls(pass *analysis.Pass, body *ast.BlockStmt, wrappers map[string]int) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Load", "stopped", "Stopped", "Done", "Err":
				polls = true
			}
		}
		if idx, ok := wrappers[calleeName(pass.TypesInfo, call)]; ok && idx < len(call.Args) {
			if id, isIdent := call.Args[idx].(*ast.Ident); !isIdent || id.Name != "nil" {
				polls = true
			}
		}
		return true
	})
	return polls
}
