package core

import (
	"math"
	"math/bits"

	"graphmat/internal/kernels"
	"graphmat/internal/sparse"
)

// This file is the overlay-aware half of the kernel layer: the pull and push
// SpMV kernels over a Layered partition — an immutable base DCSC plus a delta
// DCSC of whole-column overrides carrying live edge updates. The invariants
// match the single-layer kernels exactly:
//
//  1. columns are visited in ascending column id, merged across the two
//     layers, with a delta override replacing (never joining) its base
//     column — so the per-destination Reduce fold order equals what a
//     from-scratch build of the live edge set would produce, and results on
//     an overlay are bit-identical to a fresh build;
//  2. an override with zero entries is a tombstone: it masks its base column
//     and is neither probed nor counted, matching the fresh build in which
//     the column simply does not exist;
//  3. the partition's disjoint 64-aligned output row range is untouched —
//     deltas cover the same row range as their base.
//
// Partitions without a delta never reach these kernels; the engine
// dispatches them to the single-layer fast path.

// foldColumn folds one live column into the output vector: ProcessMessage on
// every edge, Reduce on collisions — the shared inner loop of the layered
// kernels. The bounds of irc/vc are established by the caller's subslicing.
func foldColumn[V, E, M, R any, P Program[V, E, M, R]](
	p P, m M, irc []uint32, vc []E, props []V, yw []uint64, yvals []R, dstFree bool,
) {
	if dstFree {
		var zeroV V
		for k, dst := range irc {
			r := p.ProcessMessage(m, vc[k], zeroV)
			w := &yw[dst>>6]
			bit := uint64(1) << (dst & 63)
			if *w&bit != 0 {
				yvals[dst] = p.Reduce(yvals[dst], r)
			} else {
				yvals[dst] = r
				*w |= bit
			}
		}
		return
	}
	for k, dst := range irc {
		r := p.ProcessMessage(m, vc[k], props[dst])
		w := &yw[dst>>6]
		bit := uint64(1) << (dst & 63)
		if *w&bit != 0 {
			yvals[dst] = p.Reduce(yvals[dst], r)
		} else {
			yvals[dst] = r
			*w |= bit
		}
	}
}

// liveColumn resolves column j of an overlay for the push kernels: the delta
// override when present (authoritative, possibly an empty tombstone), the
// base column otherwise. Both lookups ride the AUX index, so the probe stays
// ~O(1) whichever layer owns the column.
func liveColumn[E any](base, delta *sparse.DCSC[E], j uint32) (irc []uint32, vc []E, ok bool) {
	if ci, found := delta.FindColumn(j); found {
		lo, hi := delta.CP[ci], delta.CP[ci+1]
		if lo == hi {
			return nil, nil, false // tombstone
		}
		return delta.IR[lo:hi], delta.Val[lo:hi:hi], true
	}
	if ci, found := base.FindColumn(j); found {
		lo, hi := base.CP[ci], base.CP[ci+1]
		return base.IR[lo:hi], base.Val[lo:hi:hi], true
	}
	return nil, nil, false
}

// spmvPullBitvecLayered is the pull kernel over an overlay: a run-based merge
// of the base and delta column lists, probing the frontier bitvector per live
// column. Instead of a per-column two-pointer compare, each merge step takes
// the whole run of base columns below the next delta column in one
// arch-dispatched SpanLess scan, then the delta column itself. Column visit
// order — and therefore the fold order and the probes/edges tallies — is
// identical to the two-pointer walk. Vertex ids top out at 2³²−2 (the graph
// caps vertices at 2³²−1), so MaxUint32 is a safe "no more deltas" sentinel.
func spmvPullBitvecLayered[V, E, M, R any, P Program[V, E, M, R]](
	l sparse.Layered[E],
	x *sparse.Vector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
) {
	base, delta := l.Base, l.Delta
	bjc, djc := base.JC, delta.JC
	xw := x.Mask().Words()
	xvals := x.Values()
	yw := y.Mask().Words()
	yvals := y.Values()
	_, dstFree := any(p).(DstIndependent)
	sf := sumFoldScalarView(p, x, y)
	probes, edges := int64(0), int64(0)
	bi, di := 0, 0
	for bi < len(bjc) || di < len(djc) {
		next := uint32(math.MaxUint32)
		if di < len(djc) {
			next = djc[di]
		}
		for end := bi + kernels.SpanLess(bjc[bi:], next); bi < end; bi++ {
			j := bjc[bi]
			probes++
			if xw[j>>6]&(1<<(j&63)) == 0 {
				continue
			}
			lo, hi := base.CP[bi], base.CP[bi+1]
			edges += int64(hi - lo)
			if sf.ok {
				kernels.ScatterAddF64(yw, sf.y, base.IR[lo:hi], sf.x[j])
				continue
			}
			foldColumn(p, xvals[j], base.IR[lo:hi], base.Val[lo:hi:hi], props, yw, yvals, dstFree)
		}
		if di >= len(djc) {
			break
		}
		j := next
		if bi < len(bjc) && bjc[bi] == j {
			bi++ // base column overridden
		}
		lo, hi := delta.CP[di], delta.CP[di+1]
		di++
		if lo == hi {
			continue // tombstone: not a live column, not a probe
		}
		probes++
		if xw[j>>6]&(1<<(j&63)) == 0 {
			continue
		}
		edges += int64(hi - lo)
		if sf.ok {
			kernels.ScatterAddF64(yw, sf.y, delta.IR[lo:hi], sf.x[j])
			continue
		}
		foldColumn(p, xvals[j], delta.IR[lo:hi], delta.Val[lo:hi:hi], props, yw, yvals, dstFree)
	}
	st.probes += probes
	st.edges += edges
}

// spmvPushBitvecLayered is the push SpMSpV over an overlay: iterate the
// frontier in ascending index order and resolve each column through the
// delta-first AUX lookup.
func spmvPushBitvecLayered[V, E, M, R any, P Program[V, E, M, R]](
	l sparse.Layered[E],
	x *sparse.Vector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
) {
	base, delta := l.Base, l.Delta
	if len(base.JC) == 0 && len(delta.JC) == 0 {
		return
	}
	xw := x.Mask().Words()
	xvals := x.Values()
	yw := y.Mask().Words()
	yvals := y.Values()
	_, dstFree := any(p).(DstIndependent)
	sf := sumFoldScalarView(p, x, y)
	probes, edges := int64(0), int64(0)
	// Only frontier words overlapping either layer's stored column range can
	// match.
	loCol, hiCol := ^uint32(0), uint32(0)
	if len(base.JC) > 0 {
		loCol, hiCol = base.JC[0], base.JC[len(base.JC)-1]
	}
	if len(delta.JC) > 0 {
		loCol = min(loCol, delta.JC[0])
		hiCol = max(hiCol, delta.JC[len(delta.JC)-1])
	}
	loW := int(loCol >> 6)
	hiW := int(hiCol>>6) + 1
	if hiW > len(xw) {
		hiW = len(xw)
	}
	for wi := loW; wi < hiW; wi++ {
		w := xw[wi]
		if w == 0 {
			skip := kernels.FirstNonzero(xw[wi:hiW])
			if skip < 0 {
				break
			}
			wi += skip
			w = xw[wi]
		}
		base32 := uint32(wi) << 6
		for w != 0 {
			j := base32 + uint32(bits.TrailingZeros64(w))
			w &= w - 1
			probes++
			irc, vc, ok := liveColumn(base, delta, j)
			if !ok {
				continue
			}
			edges += int64(len(irc))
			if sf.ok {
				kernels.ScatterAddF64(yw, sf.y, irc, sf.x[j])
				continue
			}
			foldColumn(p, xvals[j], irc, vc, props, yw, yvals, dstFree)
		}
	}
	st.probes += probes
	st.edges += edges
}

// spmvPullSortedLayered is the layered pull kernel against the sorted-tuple
// message vector: same merged column walk, binary-search presence probe.
func spmvPullSortedLayered[V, E, M, R any, P Program[V, E, M, R]](
	l sparse.Layered[E],
	xs *sparse.SortedVector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
) {
	base, delta := l.Base, l.Delta
	bjc, djc := base.JC, delta.JC
	yw := y.Mask().Words()
	yvals := y.Values()
	_, dstFree := any(p).(DstIndependent)
	probes, edges := int64(0), int64(0)
	bi, di := 0, 0
	for bi < len(bjc) || di < len(djc) {
		next := uint32(math.MaxUint32)
		if di < len(djc) {
			next = djc[di]
		}
		for end := bi + kernels.SpanLess(bjc[bi:], next); bi < end; bi++ {
			j := bjc[bi]
			probes++
			if !xs.Has(j) {
				continue
			}
			lo, hi := base.CP[bi], base.CP[bi+1]
			edges += int64(hi - lo)
			foldColumn(p, xs.Get(j), base.IR[lo:hi], base.Val[lo:hi:hi], props, yw, yvals, dstFree)
		}
		if di >= len(djc) {
			break
		}
		j := next
		if bi < len(bjc) && bjc[bi] == j {
			bi++
		}
		lo, hi := delta.CP[di], delta.CP[di+1]
		di++
		if lo == hi {
			continue
		}
		probes++
		if !xs.Has(j) {
			continue
		}
		edges += int64(hi - lo)
		foldColumn(p, xs.Get(j), delta.IR[lo:hi], delta.Val[lo:hi:hi], props, yw, yvals, dstFree)
	}
	st.probes += probes
	st.edges += edges
}

// spmvPushSortedLayered is the layered push kernel against the sorted-tuple
// message vector: the frontier is already an ascending entry list, walked
// directly with delta-first column resolution.
func spmvPushSortedLayered[V, E, M, R any, P Program[V, E, M, R]](
	l sparse.Layered[E],
	xs *sparse.SortedVector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
) {
	base, delta := l.Base, l.Delta
	if len(base.JC) == 0 && len(delta.JC) == 0 {
		return
	}
	yw := y.Mask().Words()
	yvals := y.Values()
	_, dstFree := any(p).(DstIndependent)
	probes, edges := int64(0), int64(0)
	xs.Iterate(func(j uint32, m M) {
		probes++
		irc, vc, ok := liveColumn(base, delta, j)
		if !ok {
			return
		}
		edges += int64(len(irc))
		foldColumn(p, m, irc, vc, props, yw, yvals, dstFree)
	})
	st.probes += probes
	st.edges += edges
}

// AddLayers folds a layered partition set into the Auto cost model using the
// LIVE quantities — the edge and column counts the kernels will actually
// see, not the base's.
func AddLayers[E any](c KernelCosts, layers []sparse.Layered[E]) KernelCosts {
	for _, l := range layers {
		c.TotalEdges += int64(l.LiveNNZ())
		c.TotalNZCols += int64(l.LiveNZColumns())
	}
	c.Partitions += len(layers)
	return c
}
