package core

import (
	"fmt"
	"runtime"
)

// Mode selects the SpMV kernel backend a superstep runs (the
// direction-optimization axis of GraphBLAST/Ligra: a column-driven "pull"
// probe of every stored column versus a frontier-driven "push" SpMSpV).
// Every mode produces bit-identical results — both kernels fold reductions
// in ascending column order within each partition's disjoint output row
// range — so Mode, like Threads, is purely a performance knob.
type Mode int

const (
	// Auto (the zero value) chooses per superstep: push when the frontier's
	// outgoing edge work is a small fraction of the structure's total edges,
	// pull otherwise. See Config.PushThreshold.
	Auto Mode = iota
	// Pull always runs the column-driven kernel: probe every stored column
	// of every partition against the message vector (Algorithm 1 as the
	// paper wrote it). Best for dense frontiers (PageRank-style ranking).
	Pull
	// Push always runs the frontier-driven SpMSpV: iterate the message
	// vector's nonzeros and look each up in the partition's column index.
	// Best for sparse frontiers (high-diameter traversals).
	Push
)

// String names the mode for flags, logs and JSON.
func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Pull:
		return "pull"
	case Push:
		return "push"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// MarshalJSON encodes the mode as its string name.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON decodes a string name back to the typed mode.
func (m *Mode) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("core: mode must be a JSON string, got %s", b)
	}
	mode, err := ParseMode(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*m = mode
	return nil
}

// ParseMode resolves a mode name ("auto", "pull", "push"); the empty string
// means Auto, matching the zero value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "pull":
		return Pull, nil
	case "push":
		return Push, nil
	}
	return Auto, fmt.Errorf("core: unknown kernel mode %q (want auto, pull or push)", s)
}

// DefaultPushThreshold is the Auto density cutoff when Config.PushThreshold
// is zero: a superstep pushes when frontier edge work × 20 fits in the
// structure's total edge count — Ligra's |E|/20 heuristic.
const DefaultPushThreshold = 20

// VectorKind selects the sparse-vector representation for the message
// vector (paper §4.4.2 discusses both and measures the bitvector faster).
type VectorKind int

const (
	// Bitvector stores messages in a bitvector-masked dense array — the
	// representation the paper selects.
	Bitvector VectorKind = iota
	// Sorted stores messages as a sorted (index, value) tuple array — the
	// paper's rejected alternative, kept as the Figure 7 "naive" baseline.
	Sorted
)

// Dispatch selects how user callbacks are invoked from the SpMV inner loop.
type Dispatch int

const (
	// Inlined uses the generic (monomorphized) SpMV: the Go compiler
	// specializes the kernel per program, inlining the callbacks. This is
	// the analogue of the paper's -ipo inter-procedural optimization (§4.5
	// item 2).
	Inlined Dispatch = iota
	// Boxed routes every message and result through interface{} values and
	// func-typed callbacks, preventing inlining — the pre-"+ipo" scalar
	// code of Figure 7.
	Boxed
)

// Runtime selects the parallel execution substrate the engine phases run
// on. Like Mode and Schedule it is purely a performance knob: tasks write
// disjoint 64-aligned output ranges and fold in a fixed order inside each
// task, so both runtimes produce bit-identical results.
type Runtime int

const (
	// Pooled (the zero value) dispatches phases through the persistent
	// shared worker pool (internal/sched): workers are spawned once per
	// process and parked between phases, tasks are dealt as per-worker
	// spans with work stealing, and pull-superstep SpMV tasks are
	// nnz-weighted — heavy partitions split into row sub-ranges of
	// roughly equal edge work (see shapeTasks).
	Pooled Runtime = iota
	// PerCall spawns fresh goroutines on every phase call and hands out
	// partition-granular SpMV tasks — the pre-pool engine behavior, kept
	// as the scheduling ablation baseline.
	PerCall
)

// String names the runtime for flags, logs and JSON.
func (r Runtime) String() string {
	switch r {
	case Pooled:
		return "pooled"
	case PerCall:
		return "percall"
	}
	return fmt.Sprintf("runtime(%d)", int(r))
}

// Schedule selects how matrix partitions are assigned to worker goroutines.
type Schedule int

const (
	// Dynamic has workers pull partitions from a shared queue; with many
	// more partitions than threads this is the paper's load-balancing
	// recipe (§4.5 item 4).
	Dynamic Schedule = iota
	// Static assigns partitions round-robin up front ("the number of graph
	// partitions equals number of threads" regime of the ablation).
	Static
)

// Config controls one engine run. The zero value requests the fully
// optimized configuration on all available cores.
type Config struct {
	// Threads is the number of worker goroutines; 0 means GOMAXPROCS.
	Threads int
	// MaxIterations caps the superstep count; <= 0 means run until no
	// vertex is active (the paper's -1 convention).
	MaxIterations int
	// Vector selects the message-vector representation.
	Vector VectorKind
	// Dispatch selects inlined or boxed user-callback invocation.
	Dispatch Dispatch
	// Schedule selects dynamic or static partition assignment.
	Schedule Schedule
	// Mode selects the SpMV kernel backend: Auto (default) switches between
	// the push and pull kernels per superstep by frontier density; Pull and
	// Push force one kernel. All three produce bit-identical results. The
	// boxed (naive) dispatch path ignores Mode and always pulls.
	Mode Mode
	// PushThreshold tunes Auto: a superstep pushes when the frontier's
	// outgoing edge work × PushThreshold is at most the traversal
	// structure's total edge count. 0 means DefaultPushThreshold (20);
	// higher values push less often.
	PushThreshold float64
	// Runtime selects the execution substrate: Pooled (default) runs
	// phases on the persistent work-stealing pool with nnz-weighted task
	// shaping; PerCall keeps the legacy per-call goroutine fan-out with
	// partition-granular tasks (the scheduling ablation baseline).
	Runtime Runtime
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stats reports what one engine run did. The counter fields are exact tallies
// of engine work, used both for tests and as the software performance-counter
// proxies behind the Figure 6 reproduction (see internal/counters).
type Stats struct {
	// Iterations is the number of supersteps executed.
	Iterations int
	// MessagesSent counts SendMessage calls that produced a message.
	MessagesSent int64
	// EdgesProcessed counts ProcessMessage calls (edge traversals).
	EdgesProcessed int64
	// Applies counts Apply calls (vertices that received a reduced value).
	Applies int64
	// ActiveSum is the cumulative size of the active set over supersteps.
	ActiveSum int64
	// ColumnsProbed counts presence probes: per pull superstep, one per
	// stored column; per push superstep, one per frontier vertex per
	// partition (the column-index lookups).
	ColumnsProbed int64
	// PushSupersteps counts supersteps executed with the push (SpMSpV)
	// kernel; PullSupersteps counts supersteps executed with the pull
	// kernel. Supersteps that sent no messages run no kernel and count in
	// neither.
	PushSupersteps int64
	// PullSupersteps counts supersteps executed with the pull kernel.
	PullSupersteps int64
	// Reason records why the run ended (Converged, MaxIterations, Canceled,
	// DeadlineExceeded, StoppedByObserver). Aggregated stats — sums over
	// many runs — leave it at ReasonNone.
	Reason StopReason
	// Sched reports the run's scheduler work (see SchedStats). Unlike the
	// engine tallies above, BusyNS and Steals are wall-clock-dependent and
	// vary run to run; differential assertions must not compare them.
	Sched SchedStats
}

// SchedStats is one run's view of the worker-pool runtime: how many tasks
// the run's phases dispatched, how many of them moved between workers by
// stealing, and the summed busy time of every participating worker. Tasks
// is deterministic for a fixed Config and graph; Steals and BusyNS are
// scheduling outcomes. Process-cumulative per-worker counters (including
// the park→wake counts) are exported separately via /v1/stats.
type SchedStats struct {
	// Workers is the configured worker count the run dispatched to.
	Workers int
	// Tasks counts scheduler tasks executed across all phases: chunk
	// tasks in the send/apply phases plus (possibly row-split) SpMV tasks
	// in the multiply phase.
	Tasks int64
	// Steals counts tasks that ran on a worker other than the one whose
	// span initially held them.
	Steals int64
	// BusyNS is the summed wall time workers spent executing this run's
	// phases.
	BusyNS int64
}
