package core

import "runtime"

// VectorKind selects the sparse-vector representation for the message
// vector (paper §4.4.2 discusses both and measures the bitvector faster).
type VectorKind int

const (
	// Bitvector stores messages in a bitvector-masked dense array — the
	// representation the paper selects.
	Bitvector VectorKind = iota
	// Sorted stores messages as a sorted (index, value) tuple array — the
	// paper's rejected alternative, kept as the Figure 7 "naive" baseline.
	Sorted
)

// Dispatch selects how user callbacks are invoked from the SpMV inner loop.
type Dispatch int

const (
	// Inlined uses the generic (monomorphized) SpMV: the Go compiler
	// specializes the kernel per program, inlining the callbacks. This is
	// the analogue of the paper's -ipo inter-procedural optimization (§4.5
	// item 2).
	Inlined Dispatch = iota
	// Boxed routes every message and result through interface{} values and
	// func-typed callbacks, preventing inlining — the pre-"+ipo" scalar
	// code of Figure 7.
	Boxed
)

// Schedule selects how matrix partitions are assigned to worker goroutines.
type Schedule int

const (
	// Dynamic has workers pull partitions from a shared queue; with many
	// more partitions than threads this is the paper's load-balancing
	// recipe (§4.5 item 4).
	Dynamic Schedule = iota
	// Static assigns partitions round-robin up front ("the number of graph
	// partitions equals number of threads" regime of the ablation).
	Static
)

// Config controls one engine run. The zero value requests the fully
// optimized configuration on all available cores.
type Config struct {
	// Threads is the number of worker goroutines; 0 means GOMAXPROCS.
	Threads int
	// MaxIterations caps the superstep count; <= 0 means run until no
	// vertex is active (the paper's -1 convention).
	MaxIterations int
	// Vector selects the message-vector representation.
	Vector VectorKind
	// Dispatch selects inlined or boxed user-callback invocation.
	Dispatch Dispatch
	// Schedule selects dynamic or static partition assignment.
	Schedule Schedule
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stats reports what one engine run did. The counter fields are exact tallies
// of engine work, used both for tests and as the software performance-counter
// proxies behind the Figure 6 reproduction (see internal/counters).
type Stats struct {
	// Iterations is the number of supersteps executed.
	Iterations int
	// MessagesSent counts SendMessage calls that produced a message.
	MessagesSent int64
	// EdgesProcessed counts ProcessMessage calls (edge traversals).
	EdgesProcessed int64
	// Applies counts Apply calls (vertices that received a reduced value).
	Applies int64
	// ActiveSum is the cumulative size of the active set over supersteps.
	ActiveSum int64
	// ColumnsProbed counts message-vector presence probes (Algorithm 1
	// line 4 executions).
	ColumnsProbed int64
	// Reason records why the run ended (Converged, MaxIterations, Canceled,
	// DeadlineExceeded, StoppedByObserver). Aggregated stats — sums over
	// many runs — leave it at ReasonNone.
	Reason StopReason
}
