package core

import (
	"math/bits"

	"graphmat/internal/kernels"
	"graphmat/internal/sparse"
)

// This file is the kernel-backend layer: the generalized sparse
// matrix–sparse vector multiplication of Algorithm 1 in two directions —
// the paper's column-driven pull probe and a frontier-driven push SpMSpV —
// over both message-vector representations, plus the per-superstep adaptive
// dispatch between them (GraphBLAST/Ligra-style direction optimization).
// Every kernel preserves two invariants the engine depends on:
//
//  1. the partition owns a disjoint 64-aligned output row range, so writes
//     to y's mask words and values need no synchronization;
//  2. columns are processed in ascending column id within the partition, so
//     Reduce folds in an identical order in every mode and all modes produce
//     bit-identical results.

// spmvPullBitvec is Algorithm 1 of the paper specialized to the bitvector
// message-vector representation: traverse the nonzero columns of the
// partition, probe the message vector's bitvector for a message from that
// column (line 4 — "becomes faster due to use of the bitvector"), and for
// each edge in the column compute ProcessMessage and fold into the output
// with Reduce.
//
// The function is generic: the compiler monomorphizes it per program type,
// inlining the user callbacks into the inner loop — the reproduction's
// analogue of compiling the C++ with -ipo (§4.5 item 2).
//
// rlo/rhi bound the destination rows this call folds (the scheduler's
// nnz-weighted sub-partition tasks); the whole-partition sentinel is
// rlo=0, rhi=^uint32(0). Rows ascend within each DCSC column, so a
// bounded call takes a contiguous sub-run per column — per-destination
// fold order is exactly the unbounded call's.
func spmvPullBitvec[V, E, M, R any, P Program[V, E, M, R]](
	part *sparse.DCSC[E],
	x *sparse.Vector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
	rlo, rhi uint32,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	bounded := rlo > part.RowLo || rhi < part.RowHi
	xw := x.Mask().Words()
	xvals := x.Values()
	yw := y.Mask().Words()
	yvals := y.Values()
	_, dstFree := any(p).(DstIndependent)
	var zeroV V
	edges := int64(0)
	if sf := sumFoldScalarView(p, x, y); sf.ok {
		// (+, passthrough) float64 programs take the fused column fold: the
		// whole per-edge loop is one arch-dispatched scatter-add per column.
		for ci, j := range jc {
			if xw[j>>6]&(1<<(j&63)) == 0 {
				continue
			}
			lo, hi := cp[ci], cp[ci+1]
			irc := ir[lo:hi]
			if bounded {
				l, r := rowSpan(irc, rlo, rhi)
				irc = irc[l:r]
				if len(irc) == 0 {
					continue
				}
			}
			edges += int64(len(irc))
			kernels.ScatterAddF64(yw, sf.y, irc, sf.x[j])
		}
		st.probes += int64(len(jc))
		st.edges += edges
		return
	}
	if ff := f32FoldScalarView(p, x, y); ff.kind != f32FoldNone {
		// float32 path-semiring programs ((min,+) SSSP, (max,min) widest
		// paths) take the fused column fold when the edge weights are
		// float32 too.
		if wv, ok := any(vals).([]float32); ok {
			for ci, j := range jc {
				if xw[j>>6]&(1<<(j&63)) == 0 {
					continue
				}
				lo, hi := cp[ci], cp[ci+1]
				irc := ir[lo:hi]
				wc := wv[lo:hi:hi]
				if bounded {
					l, r := rowSpan(irc, rlo, rhi)
					irc, wc = irc[l:r], wc[l:r]
					if len(irc) == 0 {
						continue
					}
				}
				edges += int64(len(irc))
				ff.scatter(yw, irc, wc, ff.x[j])
			}
			st.probes += int64(len(jc))
			st.edges += edges
			return
		}
	}
	for ci, j := range jc {
		if xw[j>>6]&(1<<(j&63)) == 0 {
			continue
		}
		m := xvals[j]
		lo, hi := cp[ci], cp[ci+1]
		// Subslice the column so the inner loop is bounds-check free.
		irc := ir[lo:hi]
		vc := vals[lo:hi:hi]
		if bounded {
			l, r := rowSpan(irc, rlo, rhi)
			irc, vc = irc[l:r], vc[l:r]
			if len(irc) == 0 {
				continue
			}
		}
		edges += int64(len(irc))
		if dstFree {
			// The program declared ProcessMessage ignores the destination
			// property: skip the per-edge random load of props[dst].
			for k, dst := range irc {
				r := p.ProcessMessage(m, vc[k], zeroV)
				w := &yw[dst>>6]
				bit := uint64(1) << (dst & 63)
				if *w&bit != 0 {
					yvals[dst] = p.Reduce(yvals[dst], r)
				} else {
					yvals[dst] = r
					*w |= bit
				}
			}
			continue
		}
		for k, dst := range irc {
			r := p.ProcessMessage(m, vc[k], props[dst])
			w := &yw[dst>>6]
			bit := uint64(1) << (dst & 63)
			if *w&bit != 0 {
				yvals[dst] = p.Reduce(yvals[dst], r)
			} else {
				yvals[dst] = r
				*w |= bit
			}
		}
	}
	st.probes += int64(len(jc))
	st.edges += edges
}

// spmvPushBitvec is the frontier-driven dual of spmvPullBitvec — a true
// SpMSpV: iterate the message vector's nonzeros in ascending index order
// (the frontier) and look each up in the partition's AUX column index
// instead of probing every stored column. Work is proportional to
// |frontier| × O(1) lookups plus the frontier's edges, not to the
// partition's nonzero column count, which is what makes a 10-vertex BFS
// frontier cheap on a scale-18 graph. Columns are still visited in
// ascending id, so the Reduce fold order — and therefore the result —
// is bit-identical to the pull kernel's.
//
// rlo/rhi bound the destination rows, as in spmvPullBitvec (whole-partition
// sentinel rlo=0, rhi=^uint32(0)).
func spmvPushBitvec[V, E, M, R any, P Program[V, E, M, R]](
	part *sparse.DCSC[E],
	x *sparse.Vector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
	rlo, rhi uint32,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	if len(jc) == 0 {
		return
	}
	bounded := rlo > part.RowLo || rhi < part.RowHi
	aux, shift := part.Aux, part.AuxShift
	if aux == nil {
		// Hand-assembled DCSCs (no AUX index) take FindColumn's
		// binary-search fallback; BuildDCSC always indexes, so the engine
		// never lands here.
		spmvPushNoAux(part, x, props, p, y, st, rlo, rhi)
		return
	}
	xw := x.Mask().Words()
	xvals := x.Values()
	yw := y.Mask().Words()
	yvals := y.Values()
	_, dstFree := any(p).(DstIndependent)
	sf := sumFoldScalarView(p, x, y)
	ff := f32FoldScalarView(p, x, y)
	wv, wvOK := any(vals).([]float32)
	ffOK := ff.kind != f32FoldNone && wvOK
	var zeroV V
	probes, edges := int64(0), int64(0)
	// Only frontier words overlapping the partition's stored column range
	// can match; everything outside is skipped wholesale.
	loW := int(jc[0] >> 6)
	hiW := int(jc[len(jc)-1]>>6) + 1
	if hiW > len(xw) {
		hiW = len(xw)
	}
	for wi := loW; wi < hiW; wi++ {
		w := xw[wi]
		if w == 0 {
			// Vectorized scan to the next frontier word: sparse frontiers
			// spread over a wide id range skip the zero run in one sweep.
			skip := kernels.FirstNonzero(xw[wi:hiW])
			if skip < 0 {
				break
			}
			wi += skip
			w = xw[wi]
		}
		base := uint32(wi) << 6
		for w != 0 {
			j := base + uint32(bits.TrailingZeros64(w))
			w &= w - 1
			probes++
			// AUX lookup, hand-inlined: scan the one bucket that could hold
			// column j.
			b := j >> shift
			ci := int(aux[b])
			ciHi := int(aux[b+1])
			for ; ci < ciHi; ci++ {
				if jc[ci] >= j {
					break
				}
			}
			if ci == ciHi || jc[ci] != j {
				continue
			}
			m := xvals[j]
			lo, hi := cp[ci], cp[ci+1]
			irc := ir[lo:hi]
			if ffOK {
				wc := wv[lo:hi:hi]
				if bounded {
					l, r := rowSpan(irc, rlo, rhi)
					irc, wc = irc[l:r], wc[l:r]
					if len(irc) == 0 {
						continue
					}
				}
				edges += int64(len(irc))
				ff.scatter(yw, irc, wc, ff.x[j])
				continue
			}
			vc := vals[lo:hi:hi]
			if bounded {
				l, r := rowSpan(irc, rlo, rhi)
				irc, vc = irc[l:r], vc[l:r]
				if len(irc) == 0 {
					continue
				}
			}
			edges += int64(len(irc))
			if sf.ok {
				kernels.ScatterAddF64(yw, sf.y, irc, sf.x[j])
				continue
			}
			if dstFree {
				for k, dst := range irc {
					r := p.ProcessMessage(m, vc[k], zeroV)
					w := &yw[dst>>6]
					bit := uint64(1) << (dst & 63)
					if *w&bit != 0 {
						yvals[dst] = p.Reduce(yvals[dst], r)
					} else {
						yvals[dst] = r
						*w |= bit
					}
				}
				continue
			}
			for k, dst := range irc {
				r := p.ProcessMessage(m, vc[k], props[dst])
				w := &yw[dst>>6]
				bit := uint64(1) << (dst & 63)
				if *w&bit != 0 {
					yvals[dst] = p.Reduce(yvals[dst], r)
				} else {
					yvals[dst] = r
					*w |= bit
				}
			}
		}
	}
	st.probes += probes
	st.edges += edges
}

// spmvPushNoAux is the push kernel's fallback for partitions without the AUX
// index: identical traversal and fold order, with FindColumn (binary search)
// as the per-frontier-vertex probe.
func spmvPushNoAux[V, E, M, R any, P Program[V, E, M, R]](
	part *sparse.DCSC[E],
	x *sparse.Vector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
	rlo, rhi uint32,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	bounded := rlo > part.RowLo || rhi < part.RowHi
	xvals := x.Values()
	ymask := y.Mask()
	yvals := y.Values()
	probes, edges := int64(0), int64(0)
	x.Mask().IterateRange(jc[0], jc[len(jc)-1]+1, func(j uint32) {
		probes++
		ci, ok := part.FindColumn(j)
		if !ok {
			return
		}
		m := xvals[j]
		lo, hi := cp[ci], cp[ci+1]
		irc := ir[lo:hi]
		vc := vals[lo:hi:hi]
		if bounded {
			l, r := rowSpan(irc, rlo, rhi)
			irc, vc = irc[l:r], vc[l:r]
		}
		edges += int64(len(irc))
		for k, dst := range irc {
			r := p.ProcessMessage(m, vc[k], props[dst])
			if ymask.Get(dst) {
				yvals[dst] = p.Reduce(yvals[dst], r)
			} else {
				yvals[dst] = r
				ymask.Set(dst)
			}
		}
	})
	st.probes += probes
	st.edges += edges
}

// rowSpan returns the half-open index range of irc — one column's
// ascending destination-row run — whose rows fall in [rlo, rhi). Two
// binary searches, paid only by bounded (sub-partition) kernel tasks.
func rowSpan(irc []uint32, rlo, rhi uint32) (int, int) {
	// Endpoint fast paths: a bounded task checks every live column of its
	// partition, but each column intersects only the few tasks its row
	// extent spans — the disjoint and fully-contained cases resolve on two
	// loads, no search.
	n := len(irc)
	if n == 0 || irc[0] >= rhi || irc[n-1] < rlo {
		return 0, 0
	}
	if irc[0] >= rlo && irc[n-1] < rhi {
		return 0, n
	}
	lo, hi := 0, len(irc)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if irc[mid] < rlo {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l := lo
	hi = len(irc)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if irc[mid] < rhi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return l, lo
}

// spmvPullSorted is the pull kernel against the sorted-tuple message vector
// (§4.4.2's rejected representation, retained for the Figure 7 "naive"
// ablation step): the per-column presence probe is a binary search instead
// of a bit test.
func spmvPullSorted[V, E, M, R any, P Program[V, E, M, R]](
	part *sparse.DCSC[E],
	xs *sparse.SortedVector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	ymask := y.Mask()
	yvals := y.Values()
	edges := int64(0)
	for ci, j := range jc {
		if !xs.Has(j) {
			continue
		}
		m := xs.Get(j)
		lo, hi := cp[ci], cp[ci+1]
		edges += int64(hi - lo)
		for k := lo; k < hi; k++ {
			dst := ir[k]
			r := p.ProcessMessage(m, vals[k], props[dst])
			if ymask.Get(dst) {
				yvals[dst] = p.Reduce(yvals[dst], r)
			} else {
				yvals[dst] = r
				ymask.Set(dst)
			}
		}
	}
	st.probes += int64(len(jc))
	st.edges += edges
}

// spmvPushSorted is the push kernel against the sorted-tuple message vector:
// the frontier is already an ascending entry list, so the kernel walks it
// directly and AUX-probes the partition per entry. Fold order matches
// spmvPullSorted exactly.
func spmvPushSorted[V, E, M, R any, P Program[V, E, M, R]](
	part *sparse.DCSC[E],
	xs *sparse.SortedVector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	if len(jc) == 0 {
		return
	}
	ymask := y.Mask()
	yvals := y.Values()
	probes, edges := int64(0), int64(0)
	xs.Iterate(func(j uint32, m M) {
		probes++
		ci, ok := part.FindColumn(j)
		if !ok {
			return
		}
		lo, hi := cp[ci], cp[ci+1]
		edges += int64(hi - lo)
		for k := lo; k < hi; k++ {
			dst := ir[k]
			r := p.ProcessMessage(m, vals[k], props[dst])
			if ymask.Get(dst) {
				yvals[dst] = p.Reduce(yvals[dst], r)
			} else {
				yvals[dst] = r
				ymask.Set(dst)
			}
		}
	})
	st.probes += probes
	st.edges += edges
}

// pushProbeCost is how many pull probes one push probe is worth in the Auto
// cost model. A pull probe is a sequential JC scan step with a bit test — a
// load and a branch the prefetcher hides; a push probe is an AUX bucket
// lookup with two dependent loads into per-partition arrays. Measured on
// RMAT and grid workloads the gap is 3–8×; 4 is the conservative midpoint
// (ties go to pull, whose worst case is bounded).
const pushProbeCost = 4

// KernelCosts carries the structure-side quantities of the Auto decision,
// computed once per run (they depend only on the traversal structures).
type KernelCosts struct {
	// TotalEdges is the stored nonzeros of the traversal structures — the
	// denominator of the Ligra-style edge-work rule.
	TotalEdges int64
	// TotalNZCols is the summed nonzero-column count over all partitions:
	// exactly the probe bill a pull superstep pays regardless of frontier
	// size.
	TotalNZCols int64
	// Partitions is the partition count: a push superstep pays one column
	// lookup per frontier vertex per partition.
	Partitions int
}

// AddParts folds a partition set into the cost model.
func AddParts[E any](c KernelCosts, parts []*sparse.DCSC[E]) KernelCosts {
	for _, pt := range parts {
		c.TotalEdges += int64(pt.NNZ())
		c.TotalNZCols += int64(pt.NZColumns())
	}
	c.Partitions += len(parts)
	return c
}

// Choose resolves a configured mode for one superstep. Pull and Push pass
// through. Auto pushes only when both sides of the cost model agree:
//
//  1. the Ligra-style edge-work rule — the frontier's outgoing edge work
//     (the degree sum of the sending vertices with respect to the traversal
//     structure) times the threshold fits within the structure's total edge
//     count, so the superstep is frontier-sparse;
//  2. the probe rule — the push kernel's lookup bill (frontier size ×
//     partitions, each lookup worth pushProbeCost pull probes) undercuts the
//     pull kernel's fixed per-superstep column-scan bill.
//
// Rule 1 keeps dense frontiers (PageRank, BFS's middle supersteps) on pull;
// rule 2 keeps mid-size frontiers on pull when per-vertex lookups across
// many partitions would cost more than one sequential sweep of the columns.
// threshold <= 0 means DefaultPushThreshold.
func (c KernelCosts) Choose(mode Mode, threshold float64, frontierSize, frontierEdges int64) Mode {
	if mode != Auto {
		return mode
	}
	if threshold <= 0 {
		threshold = DefaultPushThreshold
	}
	if float64(frontierEdges)*threshold > float64(c.TotalEdges) {
		return Pull
	}
	if frontierSize*int64(c.Partitions)*pushProbeCost > c.TotalNZCols {
		return Pull
	}
	return Push
}

// MultiplyPartition applies one partition of the generalized SpMV
// y ← y ⊕ (Gᵀ_part ⊗ x) with the given kernel mode (Auto must be resolved
// first via ChooseMode). It is the exported seam of the kernel layer: the
// single-shot SpMV helper and the distributed simulator route their
// supersteps through it so every execution path shares one dispatch. The
// partition must own a disjoint 64-aligned output row range (BuildDCSC /
// PartitionRows guarantee this) and y must be written only by this
// goroutine for that range. Returns the edge and probe tallies of the call.
func MultiplyPartition[V, E, M, R any, P Program[V, E, M, R]](
	mode Mode,
	part *sparse.DCSC[E],
	x *sparse.Vector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
) (edges, probes int64) {
	var st localStats
	if mode == Push {
		spmvPushBitvec(part, x, props, p, y, &st, 0, ^uint32(0))
	} else {
		spmvPullBitvec(part, x, props, p, y, &st, 0, ^uint32(0))
	}
	return st.edges, st.probes
}

// frontierWork sums the traversal-structure degrees of the frontier for the
// Auto decision. The engine accumulates this during the SendMessage phase
// instead (one add per sender); this helper serves the single-shot SpMV
// path, where the frontier arrives pre-built.
func frontierWork[M any](x *sparse.Vector[M], degs []uint32) int64 {
	var sum int64
	x.Mask().Iterate(func(v uint32) { sum += int64(degs[v]) })
	return sum
}
