package core

import (
	"fmt"
	"math/bits"

	"graphmat/internal/bitvec"
)

// This file holds the n×k block analogues of the engine's sparse vectors and
// per-run vertex state: a block frontier/reduction vector (BlockVector), the
// engine scratch pairing two of them (BlockWorkspace), and the per-run vertex
// state of a multi-source run (BlockState). k is capped at 64 so every
// per-vertex column set is one machine word; batches wider than 64 sources
// split into word-sized blocks one level up (algorithms.RunBatch).

// MaxBlockSources is the widest block the engine accepts: per-vertex column
// masks are single uint64 words.
const MaxBlockSources = 64

// BlockVector is an n×k block of sparse columns sharing one occupancy
// structure: summary marks vertices with any column set, cols[v] is the
// per-vertex column mask, and vals[v*k+s] the value for (vertex v, source s).
// Row-major value layout keeps one vertex's k values on adjacent cache lines
// — the SpMM kernels touch all live columns of a destination together.
//
// Occupancy is two-level and lazily cleared: Reset clears only the summary
// (O(n/64)); cols[v] is zeroed on the first touch of v after a Reset. As with
// the scalar sparse.Vector, values are never cleared — the masks are the
// source of truth.
type BlockVector[T any] struct {
	n, k    int
	summary *bitvec.Vector
	cols    []uint64
	vals    []T
}

// NewBlockVector allocates an empty n×k block vector.
func NewBlockVector[T any](n, k int) *BlockVector[T] {
	return &BlockVector[T]{
		n: n, k: k,
		summary: bitvec.New(n),
		cols:    make([]uint64, n),
		vals:    make([]T, n*k),
	}
}

// Len returns the vertex dimension n.
func (b *BlockVector[T]) Len() int { return b.n }

// Width returns the column count k.
func (b *BlockVector[T]) Width() int { return b.k }

// Reset removes all entries in O(n/64) by clearing the summary alone.
func (b *BlockVector[T]) Reset() { b.summary.Reset() }

// touch ensures vertex v's column mask is valid after a Reset, returning it.
// Single-writer per 64-aligned vertex range, like all engine vector writes.
func (b *BlockVector[T]) touch(v uint32) uint64 {
	w := b.summary.Words()
	bit := uint64(1) << (v & 63)
	if w[v>>6]&bit == 0 {
		w[v>>6] |= bit
		b.cols[v] = 0
	}
	return b.cols[v]
}

// Set stores val at (vertex v, column s).
func (b *BlockVector[T]) Set(v uint32, s int, val T) {
	cm := b.touch(v)
	b.cols[v] = cm | 1<<uint(s)
	b.vals[int(v)*b.k+s] = val
}

// ColMask returns vertex v's live-column mask (0 when v has no entries).
func (b *BlockVector[T]) ColMask(v uint32) uint64 {
	if !b.summary.Get(v) {
		return 0
	}
	return b.cols[v]
}

// Row returns vertex v's k-wide value row; entries are meaningful only at
// set mask bits.
func (b *BlockVector[T]) Row(v uint32) []T {
	return b.vals[int(v)*b.k : int(v)*b.k+b.k]
}

// Summary exposes the vertex-level occupancy bitvector (read-only use).
func (b *BlockVector[T]) Summary() *bitvec.Vector { return b.summary }

// Occupancy returns the number of live vertices (distinct senders) and live
// (vertex, column) entries — popcounts of the occupancy masks, read once per
// phase by the engine instead of tallying counters per Set in the send loop.
func (b *BlockVector[T]) Occupancy() (vertices, entries int) {
	for wi, w := range b.summary.Words() {
		base := uint32(wi) << 6
		for ; w != 0; w &= w - 1 {
			vertices++
			entries += bits.OnesCount64(b.cols[base+uint32(bits.TrailingZeros64(w))])
		}
	}
	return vertices, entries
}

// BlockWorkspace is the block engine's reusable scratch: the n×k message
// block and the n×k reduction block — the multi-source analogue of Workspace.
type BlockWorkspace[M, R any] struct {
	n, k int
	x    *BlockVector[M]
	y    *BlockVector[R]
}

// NewBlockWorkspace allocates scratch for k-source runs over n-vertex graphs.
func NewBlockWorkspace[M, R any](n, k int) *BlockWorkspace[M, R] {
	return &BlockWorkspace[M, R]{
		n: n, k: k,
		x: NewBlockVector[M](n, k),
		y: NewBlockVector[R](n, k),
	}
}

// Size reports the vertex count the workspace was allocated for.
func (ws *BlockWorkspace[M, R]) Size() int { return ws.n }

// Width reports the source count the workspace was allocated for.
func (ws *BlockWorkspace[M, R]) Width() int { return ws.k }

// Check reports whether the workspace can serve an n-vertex, k-source run.
func (ws *BlockWorkspace[M, R]) Check(n, k int) error {
	if ws.n != n {
		return fmt.Errorf("core: block workspace sized for %d vertices, graph has %d", ws.n, n)
	}
	if ws.k != k {
		return fmt.Errorf("core: block workspace sized for %d sources, run has %d", ws.k, k)
	}
	return nil
}

// Reset clears both scratch blocks; pools call it when recycling.
func (ws *BlockWorkspace[M, R]) Reset() {
	ws.x.Reset()
	ws.y.Reset()
}

// BlockState is the per-run vertex state of a multi-source run: the n×k
// property block (props[v*k+s] is vertex v's property in source column s) and
// the n×k active set, stored like a BlockVector's occupancy (summary +
// per-vertex column masks, lazily zeroed). It replaces the graph's scalar
// props/active for block runs — a block run never touches the graph's own
// vertex state, so scalar and block runs can share one pinned snapshot.
type BlockState[V any] struct {
	n, k    int
	props   []V
	active  []uint64
	summary *bitvec.Vector
}

// NewBlockState allocates vertex state for a k-source run over n vertices.
// 1 <= k <= MaxBlockSources.
func NewBlockState[V any](n, k int) *BlockState[V] {
	if k < 1 || k > MaxBlockSources {
		panic(fmt.Sprintf("core: block width %d outside [1, %d]", k, MaxBlockSources))
	}
	return &BlockState[V]{
		n: n, k: k,
		props:   make([]V, n*k),
		active:  make([]uint64, n),
		summary: bitvec.New(n),
	}
}

// Size reports the vertex count.
func (st *BlockState[V]) Size() int { return st.n }

// Width reports the source-column count.
func (st *BlockState[V]) Width() int { return st.k }

// Prop returns vertex v's property in column s.
func (st *BlockState[V]) Prop(v uint32, s int) V { return st.props[int(v)*st.k+s] }

// SetProp sets vertex v's property in column s.
func (st *BlockState[V]) SetProp(v uint32, s int, p V) { st.props[int(v)*st.k+s] = p }

// SetAllProps sets every (vertex, column) property to p.
func (st *BlockState[V]) SetAllProps(p V) {
	for i := range st.props {
		st.props[i] = p
	}
}

// InitProps sets each (vertex, column) property with a function of both.
func (st *BlockState[V]) InitProps(fn func(v uint32, s int) V) {
	for v := 0; v < st.n; v++ {
		row := st.props[v*st.k : (v+1)*st.k]
		for s := range row {
			row[s] = fn(uint32(v), s)
		}
	}
}

// Column copies the per-vertex properties of source column s into out (length
// n) — the per-source result extraction.
func (st *BlockState[V]) Column(s int, out []V) {
	for v := 0; v < st.n; v++ {
		out[v] = st.props[v*st.k+s]
	}
}

// Activate marks (vertex v, column s) active for the next superstep.
func (st *BlockState[V]) Activate(v uint32, s int) {
	w := st.summary.Words()
	bit := uint64(1) << (v & 63)
	if w[v>>6]&bit == 0 {
		w[v>>6] |= bit
		st.active[v] = 0
	}
	st.active[v] |= 1 << uint(s)
}

// ActivateAllMask marks every vertex active in every column of mask — the
// block analogue of SetAllActive restricted to the still-live columns (the
// batched PPR driver's per-outer-iteration reactivation).
func (st *BlockState[V]) ActivateAllMask(mask uint64) {
	if mask == 0 || st.n == 0 {
		return
	}
	for v := 0; v < st.n; v++ {
		st.active[v] = mask
	}
	w := st.summary.Words()
	for i := range w {
		w[i] = ^uint64(0)
	}
	if r := st.n & 63; r != 0 {
		w[len(w)-1] = (uint64(1) << uint(r)) - 1
	}
}

// ClearActive deactivates every (vertex, column) pair in O(n/64).
func (st *BlockState[V]) ClearActive() { st.summary.Reset() }

// ActiveColumns returns the OR of all per-vertex active masks: bit s set
// means column s still has at least one active vertex. Batch drivers use it
// for per-column convergence tracking.
func (st *BlockState[V]) ActiveColumns() uint64 {
	var live uint64
	st.summary.Iterate(func(v uint32) { live |= st.active[v] })
	return live
}
