package core

import (
	"math"
	"math/bits"

	"graphmat/internal/kernels"
	"graphmat/internal/sparse"
)

// This file is the multi-source half of the kernel layer: the generalized
// sparse matrix–sparse MATRIX multiplication (SpMM) over n×k block vectors —
// one sweep of the adjacency structure advancing up to 64 source columns at
// once, in pull (column probe) and push (frontier-driven SpMSpV) directions,
// over single-layer and layered (base+delta overlay) partitions. The point of
// the widening is amortization: the column probes and edge-list walks that
// dominate a scalar superstep are paid once per edge instead of once per
// (edge, source).
//
// The scalar kernels' invariants carry over per column:
//
//  1. partitions own disjoint 64-aligned output row ranges — no
//     synchronization on the output block;
//  2. columns of the adjacency structure are visited in ascending id in
//     every mode, and within one destination the per-source fold order
//     follows the same edge order the scalar kernels use — so for each
//     source s, a block run folds exactly the values, in exactly the order,
//     of a scalar run from that source alone. That is the bit-identity
//     contract the differential suite asserts.
//
// The fold uses the BlockProgram's Semiring half (Mul/Add): Mul has no
// destination parameter, which is what makes sharing one edge traversal
// across k columns sound. First writes store the raw Mul result under a mask
// bit, exactly like the scalar fold — Identity() is never fed to Add.

// foldBlockColumn folds one adjacency column into the output block for every
// source in cm: per edge, one Mul per live source column, Add on collisions.
// xrow is the sender's k-wide message row; irc/vc the column's edge targets
// and values.
func foldBlockColumn[V, E, M, R any, P BlockProgram[V, E, M, R]](
	p P, k int, cm uint64, xrow []M, irc []uint32, vc []E,
	ysw []uint64, ycols []uint64, yvals []R,
) {
	for kk, dst := range irc {
		e := vc[kk]
		w := &ysw[dst>>6]
		bit := uint64(1) << (dst & 63)
		if *w&bit == 0 {
			*w |= bit
			ycols[dst] = 0
		}
		ym := ycols[dst]
		yrow := yvals[int(dst)*k : int(dst)*k+k]
		for m := cm; m != 0; m &= m - 1 {
			s := bits.TrailingZeros64(m)
			r := p.Mul(xrow[s], e)
			if ym&(1<<uint(s)) != 0 {
				yrow[s] = p.Add(yrow[s], r)
			} else {
				yrow[s] = r
				ym |= 1 << uint(s)
			}
		}
		ycols[dst] = ym
	}
}

// spmmPullBitvec is spmvPullBitvec widened to k columns: traverse the
// partition's nonzero columns in ascending id, probe the block frontier's
// summary bit, and fold each edge once per live source column.
// rlo/rhi bound the destination rows (the scheduler's nnz-weighted
// sub-partition tasks), exactly as in spmvPullBitvec.
func spmmPullBitvec[V, E, M, R any, P BlockProgram[V, E, M, R]](
	part *sparse.DCSC[E],
	x *BlockVector[M],
	p P,
	y *BlockVector[R],
	st *localStats,
	rlo, rhi uint32,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	bounded := rlo > part.RowLo || rhi < part.RowHi
	k := x.k
	xw := x.summary.Words()
	xcols, xvals := x.cols, x.vals
	ysw := y.summary.Words()
	ycols, yvals := y.cols, y.vals
	xf, yf, sumOK := sumFoldBlockView(p, x, y)
	fk, xg, yg := f32FoldBlockView(p, x, y)
	wv, wvOK := any(vals).([]float32)
	ffOK := fk != f32FoldNone && wvOK
	edges := int64(0)
	for ci, j := range jc {
		if xw[j>>6]&(1<<(j&63)) == 0 {
			continue
		}
		cm := xcols[j]
		if cm == 0 {
			continue
		}
		lo, hi := cp[ci], cp[ci+1]
		irc := ir[lo:hi]
		if ffOK {
			wc := wv[lo:hi:hi]
			if bounded {
				l, r := rowSpan(irc, rlo, rhi)
				irc, wc = irc[l:r], wc[l:r]
				if len(irc) == 0 {
					continue
				}
			}
			edges += int64(len(irc)) * int64(bits.OnesCount64(cm))
			foldBlockColumnF32(fk, k, cm, xg[int(j)*k:int(j)*k+k], irc, wc, ysw, ycols, yg)
			continue
		}
		vc := vals[lo:hi:hi]
		if bounded {
			l, r := rowSpan(irc, rlo, rhi)
			irc, vc = irc[l:r], vc[l:r]
			if len(irc) == 0 {
				continue
			}
		}
		edges += int64(len(irc)) * int64(bits.OnesCount64(cm))
		if sumOK {
			foldBlockColumnSumF64(k, cm, xf[int(j)*k:int(j)*k+k], irc, ysw, ycols, yf)
			continue
		}
		xrow := xvals[int(j)*k : int(j)*k+k]
		foldBlockColumn(p, k, cm, xrow, irc, vc, ysw, ycols, yvals)
	}
	st.probes += int64(len(jc))
	st.edges += edges
}

// spmmPushBitvec is spmvPushBitvec widened to k columns: iterate the block
// frontier's summary in ascending vertex order and AUX-probe the partition
// per sender, folding each found column once per live source column.
func spmmPushBitvec[V, E, M, R any, P BlockProgram[V, E, M, R]](
	part *sparse.DCSC[E],
	x *BlockVector[M],
	p P,
	y *BlockVector[R],
	st *localStats,
	rlo, rhi uint32,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	if len(jc) == 0 {
		return
	}
	bounded := rlo > part.RowLo || rhi < part.RowHi
	k := x.k
	xw := x.summary.Words()
	xcols, xvals := x.cols, x.vals
	ysw := y.summary.Words()
	ycols, yvals := y.cols, y.vals
	xf, yf, sumOK := sumFoldBlockView(p, x, y)
	fk, xg, yg := f32FoldBlockView(p, x, y)
	wv, wvOK := any(vals).([]float32)
	ffOK := fk != f32FoldNone && wvOK
	probes, edges := int64(0), int64(0)
	loW := int(jc[0] >> 6)
	hiW := int(jc[len(jc)-1]>>6) + 1
	if hiW > len(xw) {
		hiW = len(xw)
	}
	for wi := loW; wi < hiW; wi++ {
		w := xw[wi]
		if w == 0 {
			skip := kernels.FirstNonzero(xw[wi:hiW])
			if skip < 0 {
				break
			}
			wi += skip
			w = xw[wi]
		}
		base := uint32(wi) << 6
		for w != 0 {
			j := base + uint32(bits.TrailingZeros64(w))
			w &= w - 1
			cm := xcols[j]
			if cm == 0 {
				continue
			}
			probes++
			ci, ok := part.FindColumn(j)
			if !ok {
				continue
			}
			lo, hi := cp[ci], cp[ci+1]
			irc := ir[lo:hi]
			if ffOK {
				wc := wv[lo:hi:hi]
				if bounded {
					l, r := rowSpan(irc, rlo, rhi)
					irc, wc = irc[l:r], wc[l:r]
					if len(irc) == 0 {
						continue
					}
				}
				edges += int64(len(irc)) * int64(bits.OnesCount64(cm))
				foldBlockColumnF32(fk, k, cm, xg[int(j)*k:int(j)*k+k], irc, wc, ysw, ycols, yg)
				continue
			}
			vc := vals[lo:hi:hi]
			if bounded {
				l, r := rowSpan(irc, rlo, rhi)
				irc, vc = irc[l:r], vc[l:r]
				if len(irc) == 0 {
					continue
				}
			}
			edges += int64(len(irc)) * int64(bits.OnesCount64(cm))
			if sumOK {
				foldBlockColumnSumF64(k, cm, xf[int(j)*k:int(j)*k+k], irc, ysw, ycols, yf)
				continue
			}
			xrow := xvals[int(j)*k : int(j)*k+k]
			foldBlockColumn(p, k, cm, xrow, irc, vc, ysw, ycols, yvals)
		}
	}
	st.probes += probes
	st.edges += edges
}

// spmmPullLayered is the pull SpMM over a base+delta overlay: the layered
// scalar kernel's two-pointer column merge with the block fold inside. Delta
// overrides replace base columns; empty overrides are tombstones.
func spmmPullLayered[V, E, M, R any, P BlockProgram[V, E, M, R]](
	l sparse.Layered[E],
	x *BlockVector[M],
	p P,
	y *BlockVector[R],
	st *localStats,
) {
	base, delta := l.Base, l.Delta
	bjc, djc := base.JC, delta.JC
	k := x.k
	xw := x.summary.Words()
	xcols, xvals := x.cols, x.vals
	ysw := y.summary.Words()
	ycols, yvals := y.cols, y.vals
	xf, yf, sumOK := sumFoldBlockView(p, x, y)
	probes, edges := int64(0), int64(0)
	// Run-based merge, like spmvPullBitvecLayered: one SpanLess scan takes
	// the whole run of base columns below the next delta column.
	foldLive := func(j uint32, irc []uint32, vc []E) {
		probes++
		if xw[j>>6]&(1<<(j&63)) == 0 {
			return
		}
		cm := xcols[j]
		if cm == 0 {
			return
		}
		edges += int64(len(irc)) * int64(bits.OnesCount64(cm))
		if sumOK {
			foldBlockColumnSumF64(k, cm, xf[int(j)*k:int(j)*k+k], irc, ysw, ycols, yf)
			return
		}
		foldBlockColumn(p, k, cm, xvals[int(j)*k:int(j)*k+k], irc, vc, ysw, ycols, yvals)
	}
	bi, di := 0, 0
	for bi < len(bjc) || di < len(djc) {
		next := uint32(math.MaxUint32)
		if di < len(djc) {
			next = djc[di]
		}
		for end := bi + kernels.SpanLess(bjc[bi:], next); bi < end; bi++ {
			lo, hi := base.CP[bi], base.CP[bi+1]
			foldLive(bjc[bi], base.IR[lo:hi], base.Val[lo:hi:hi])
		}
		if di >= len(djc) {
			break
		}
		j := next
		if bi < len(bjc) && bjc[bi] == j {
			bi++ // base column overridden
		}
		lo, hi := delta.CP[di], delta.CP[di+1]
		di++
		if lo == hi {
			continue // tombstone
		}
		foldLive(j, delta.IR[lo:hi], delta.Val[lo:hi:hi])
	}
	st.probes += probes
	st.edges += edges
}

// spmmPushLayered is the push SpMM over a base+delta overlay: block frontier
// iteration with delta-first column resolution.
func spmmPushLayered[V, E, M, R any, P BlockProgram[V, E, M, R]](
	l sparse.Layered[E],
	x *BlockVector[M],
	p P,
	y *BlockVector[R],
	st *localStats,
) {
	base, delta := l.Base, l.Delta
	if len(base.JC) == 0 && len(delta.JC) == 0 {
		return
	}
	k := x.k
	xw := x.summary.Words()
	xcols, xvals := x.cols, x.vals
	ysw := y.summary.Words()
	ycols, yvals := y.cols, y.vals
	xf, yf, sumOK := sumFoldBlockView(p, x, y)
	probes, edges := int64(0), int64(0)
	loCol, hiCol := ^uint32(0), uint32(0)
	if len(base.JC) > 0 {
		loCol, hiCol = base.JC[0], base.JC[len(base.JC)-1]
	}
	if len(delta.JC) > 0 {
		loCol = min(loCol, delta.JC[0])
		hiCol = max(hiCol, delta.JC[len(delta.JC)-1])
	}
	loW := int(loCol >> 6)
	hiW := int(hiCol>>6) + 1
	if hiW > len(xw) {
		hiW = len(xw)
	}
	for wi := loW; wi < hiW; wi++ {
		w := xw[wi]
		if w == 0 {
			skip := kernels.FirstNonzero(xw[wi:hiW])
			if skip < 0 {
				break
			}
			wi += skip
			w = xw[wi]
		}
		base32 := uint32(wi) << 6
		for w != 0 {
			j := base32 + uint32(bits.TrailingZeros64(w))
			w &= w - 1
			cm := xcols[j]
			if cm == 0 {
				continue
			}
			probes++
			irc, vc, ok := liveColumn(base, delta, j)
			if !ok {
				continue
			}
			edges += int64(len(irc)) * int64(bits.OnesCount64(cm))
			if sumOK {
				foldBlockColumnSumF64(k, cm, xf[int(j)*k:int(j)*k+k], irc, ysw, ycols, yf)
				continue
			}
			foldBlockColumn(p, k, cm, xvals[int(j)*k:int(j)*k+k], irc, vc, ysw, ycols, yvals)
		}
	}
	st.probes += probes
	st.edges += edges
}
