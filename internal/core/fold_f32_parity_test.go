package core

import (
	"fmt"
	"math"
	"testing"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
)

// The float32 path-semiring fast paths (MinPlusFoldF32 / MaxMinFoldF32) make
// the same promise SumFoldF64 does: the fused column fold must be
// bit-identical to the generic callback loop. These tests run marked
// programs against their unmarked twins — same fold, forced down the
// generic path — across modes, threads, runtimes, and both engines.

// ssspFused is ssspProg plus the (min, +) marker: the kernels must take the
// fused float32 fold and produce identical bits.
type ssspFused struct{ ssspProg }

func (ssspFused) ProcessIgnoresDst()   {}
func (ssspFused) ReducesByMinPlusF32() {}

// widestProg is the (max, min) bottleneck-path program, generic path.
type widestProg struct{}

func (widestProg) SendMessage(v VertexID, prop float32) (float32, bool) { return prop, true }
func (widestProg) ProcessMessage(m, e float32, _ float32) float32       { return min(m, e) }
func (widestProg) Reduce(a, b float32) float32                          { return max(a, b) }
func (widestProg) Apply(r float32, _ VertexID, prop *float32) bool {
	if r > *prop {
		*prop = r
		return true
	}
	return false
}
func (widestProg) Direction() graph.Direction { return graph.Out }

// widestFused is widestProg plus the (max, min) marker.
type widestFused struct{ widestProg }

func (widestFused) ProcessIgnoresDst()  {}
func (widestFused) ReducesByMaxMinF32() {}

func f32ParityGraph(t testing.TB, seed uint64, nparts int) *graph.Graph[float32, float32] {
	t.Helper()
	adj := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 8, Seed: seed, MaxWeight: 31})
	adj.RemoveSelfLoops()
	g, err := graph.NewFromCOO[float32, float32](adj, graph.Options{Partitions: nparts})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runF32Prog[P Program[float32, float32, float32, float32]](
	t *testing.T, g *graph.Graph[float32, float32], p P, cfg Config, init float32, src uint32, srcVal float32,
) []float32 {
	t.Helper()
	g.SetAllProps(init)
	g.SetProp(src, srcVal)
	g.ClearActive()
	g.SetActive(src)
	if _, err := Run(g, p, cfg); err != nil {
		t.Fatal(err)
	}
	props := make([]float32, g.NumVertices())
	copy(props, g.Props())
	return props
}

func TestF32FoldFastPathParityScalarEngine(t *testing.T) {
	g := f32ParityGraph(t, 11, 4)
	for _, mode := range []Mode{Pull, Push, Auto} {
		for _, rt := range []Runtime{Pooled, PerCall} {
			for _, threads := range []int{1, 3} {
				cfg := Config{Mode: mode, Threads: threads, Runtime: rt}
				t.Run(fmt.Sprintf("sssp/mode_%s_rt_%s_threads_%d", mode, rt, threads), func(t *testing.T) {
					ref := runF32Prog(t, g, ssspProg{}, cfg, inf, 0, 0)
					got := runF32Prog(t, g, ssspFused{}, cfg, inf, 0, 0)
					for v := range ref {
						if math.Float32bits(got[v]) != math.Float32bits(ref[v]) {
							t.Fatalf("dist[%d] = %v (%x), generic %v (%x)", v,
								got[v], math.Float32bits(got[v]), ref[v], math.Float32bits(ref[v]))
						}
					}
				})
				t.Run(fmt.Sprintf("widest/mode_%s_rt_%s_threads_%d", mode, rt, threads), func(t *testing.T) {
					ref := runF32Prog(t, g, widestProg{}, cfg, 0, 0, float32(math.MaxFloat32))
					got := runF32Prog(t, g, widestFused{}, cfg, 0, 0, float32(math.MaxFloat32))
					for v := range ref {
						if math.Float32bits(got[v]) != math.Float32bits(ref[v]) {
							t.Fatalf("width[%d] = %v (%x), generic %v (%x)", v,
								got[v], math.Float32bits(got[v]), ref[v], math.Float32bits(ref[v]))
						}
					}
				})
			}
		}
	}
}

// ssspBlockFused is the block SSSP program plus the fused marker; the block
// oracle is the unmarked ssspBlockProg.
type ssspBlockFused struct{ ssspBlockProg }

func (ssspBlockFused) ReducesByMinPlusF32() {}

func TestF32FoldFastPathParityBlockEngine(t *testing.T) {
	g := f32ParityGraph(t, 13, 4)
	n := int(g.NumVertices())
	sources := []uint32{0, 3, 17, 42, 100, 101, 200, 255}
	k := len(sources)

	runBlockOnce := func(p BlockProgram[float32, float32, float32, float32], mode Mode) [][]float32 {
		st := NewBlockState[float32](n, k)
		st.SetAllProps(inf)
		for s, src := range sources {
			st.SetProp(src, s, 0)
			st.Activate(src, s)
		}
		if _, err := RunBlock(g, p, st, Config{Mode: mode, Threads: 3}, nil); err != nil {
			t.Fatal(err)
		}
		cols := make([][]float32, k)
		for s := range cols {
			cols[s] = make([]float32, n)
			st.Column(s, cols[s])
		}
		return cols
	}

	for _, mode := range []Mode{Pull, Push, Auto} {
		t.Run(fmt.Sprintf("mode_%s", mode), func(t *testing.T) {
			ref := runBlockOnce(ssspBlockProg{}, mode)
			got := runBlockOnce(ssspBlockFused{}, mode)
			for s := range ref {
				for v := range ref[s] {
					if math.Float32bits(got[s][v]) != math.Float32bits(ref[s][v]) {
						t.Fatalf("col %d dist[%d] = %v, generic %v", s, v, got[s][v], ref[s][v])
					}
				}
			}
		})
	}
}
