package core

import (
	"context"
	"fmt"

	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

// Workspace holds the engine's reusable scratch state: the sparse message
// vector and the reduction vector. It mirrors the C++ API's
// graph_program_init / graph_program_clear pair (see the paper's appendix):
// drivers that run a program repeatedly — PageRank's per-superstep loop, the
// HITS half-steps — allocate one workspace and pass it to every run instead
// of paying two vertex-sized allocations per call.
type Workspace[M, R any] struct {
	n    int
	kind VectorKind
	x    *sparse.Vector[M]
	xs   *sparse.SortedVector[M]
	y    *sparse.Vector[R]
}

// NewWorkspace allocates scratch for graphs of n vertices using the given
// message-vector representation.
func NewWorkspace[M, R any](n int, kind VectorKind) *Workspace[M, R] {
	ws := &Workspace[M, R]{n: n, kind: kind, y: sparse.NewVector[R](n)}
	if kind == Bitvector {
		ws.x = sparse.NewVector[M](n)
	} else {
		ws.xs = sparse.NewSortedVector[M](n)
	}
	return ws
}

// Size reports the vertex count the workspace was allocated for.
func (ws *Workspace[M, R]) Size() int { return ws.n }

// Kind reports the message-vector representation the workspace holds.
func (ws *Workspace[M, R]) Kind() VectorKind { return ws.kind }

// Check reports whether the workspace can serve a run over an n-vertex graph
// with the given message-vector kind. Pools that hand workspaces to
// back-to-back runs use it to validate a pooled workspace before reuse.
func (ws *Workspace[M, R]) Check(n int, kind VectorKind) error {
	if ws.n != n {
		return fmt.Errorf("core: workspace sized for %d vertices, graph has %d", ws.n, n)
	}
	if ws.kind != kind {
		return fmt.Errorf("core: workspace vector kind %d does not match config %d", ws.kind, kind)
	}
	return nil
}

// Reset clears the scratch vectors. The engine resets them at the start of
// every superstep, so Reset is not required between runs; pools call it when
// recycling a workspace so stale messages never leak across queries.
func (ws *Workspace[M, R]) Reset() {
	if ws.x != nil {
		ws.x.Reset()
	}
	if ws.xs != nil {
		ws.xs.Reset()
	}
	ws.y.Reset()
}

// RunWithWorkspace is Run with caller-managed scratch. The workspace must
// have been created for the graph's vertex count and the configuration's
// vector kind; mismatches error. The boxed (naive) dispatch path manages its
// own type-erased scratch and ignores the workspace. It is RunContext
// without a context; see RunContext for the cancelable, observable variant.
func RunWithWorkspace[V, E, M, R any, P Program[V, E, M, R]](
	g *graph.Graph[V, E], p P, cfg Config, ws *Workspace[M, R],
) (Stats, error) {
	return RunContext[V, E, M, R, P](context.Background(), g, p, cfg, ws)
}
