package core

import (
	"fmt"

	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

// Workspace holds the engine's reusable scratch state: the sparse message
// vector and the reduction vector. It mirrors the C++ API's
// graph_program_init / graph_program_clear pair (see the paper's appendix):
// drivers that run a program repeatedly — PageRank's per-superstep loop, the
// HITS half-steps — allocate one workspace and pass it to every run instead
// of paying two vertex-sized allocations per call.
type Workspace[M, R any] struct {
	n    int
	kind VectorKind
	x    *sparse.Vector[M]
	xs   *sparse.SortedVector[M]
	y    *sparse.Vector[R]
}

// NewWorkspace allocates scratch for graphs of n vertices using the given
// message-vector representation.
func NewWorkspace[M, R any](n int, kind VectorKind) *Workspace[M, R] {
	ws := &Workspace[M, R]{n: n, kind: kind, y: sparse.NewVector[R](n)}
	if kind == Bitvector {
		ws.x = sparse.NewVector[M](n)
	} else {
		ws.xs = sparse.NewSortedVector[M](n)
	}
	return ws
}

// RunWithWorkspace is Run with caller-managed scratch. The workspace must
// have been created for the graph's vertex count and the configuration's
// vector kind; mismatches error. The boxed (naive) dispatch path manages its
// own type-erased scratch and ignores the workspace.
func RunWithWorkspace[V, E, M, R any, P Program[V, E, M, R]](
	g *graph.Graph[V, E], p P, cfg Config, ws *Workspace[M, R],
) (Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.Dispatch == Boxed {
		return runBoxed(g, p, cfg), nil
	}
	if ws.n != int(g.NumVertices()) {
		return Stats{}, fmt.Errorf("core: workspace sized for %d vertices, graph has %d", ws.n, g.NumVertices())
	}
	if ws.kind != cfg.Vector {
		return Stats{}, fmt.Errorf("core: workspace vector kind %d does not match config %d", ws.kind, cfg.Vector)
	}
	return runTyped(g, p, cfg, ws), nil
}
