package core

import (
	"fmt"
	"testing"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
)

// ssspBlockProg is ssspProg plus its explicit semiring — the BlockProgram the
// multi-source differential tests drive. Mul(m, e) = ProcessMessage(m, e, ·)
// and Add = Reduce bit-for-bit, so scalar runs are the oracle.
type ssspBlockProg struct{ ssspProg }

func (ssspBlockProg) Mul(m float32, e float32) float32 { return m + e }
func (ssspBlockProg) Add(a, b float32) float32         { return min(a, b) }
func (ssspBlockProg) Identity() float32                { return inf }
func (ssspBlockProg) ProcessIgnoresDst()               {}

// blockTestGraph builds a small RMAT-derived weighted graph.
func blockTestGraph(t testing.TB, nparts int) *graph.Graph[float32, float32] {
	t.Helper()
	adj := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 7, MaxWeight: 31})
	adj.RemoveSelfLoops()
	g, err := graph.NewFromCOO[float32, float32](adj, graph.Options{Partitions: nparts})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestBlockSSSPMatchesScalar asserts the core contract of the block engine:
// a k-source block run is bit-identical per column to k scalar runs, in every
// kernel mode, on the same graph.
func TestBlockSSSPMatchesScalar(t *testing.T) {
	g := blockTestGraph(t, 4)
	n := int(g.NumVertices())
	sources := []uint32{0, 3, 17, 42, 100, 101, 200, 255}
	k := len(sources)

	// Scalar oracle: one run per source on the same graph.
	oracle := make([][]float32, k)
	for s, src := range sources {
		g.SetAllProps(inf)
		g.SetProp(src, 0)
		g.ClearActive()
		g.SetActive(src)
		if _, err := Run(g, ssspProg{}, Config{Mode: Pull}); err != nil {
			t.Fatal(err)
		}
		dist := make([]float32, n)
		copy(dist, g.Props())
		oracle[s] = dist
	}

	for _, mode := range []Mode{Pull, Push, Auto} {
		for _, threads := range []int{1, 3} {
			t.Run(fmt.Sprintf("mode_%s_threads_%d", mode, threads), func(t *testing.T) {
				st := NewBlockState[float32](n, k)
				st.SetAllProps(inf)
				for s, src := range sources {
					st.SetProp(src, s, 0)
					st.Activate(src, s)
				}
				stats, err := RunBlock(g, ssspBlockProg{}, st, Config{Mode: mode, Threads: threads}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if stats.Reason != Converged {
					t.Fatalf("block run did not converge: %+v", stats)
				}
				col := make([]float32, n)
				for s := range sources {
					st.Column(s, col)
					for v := range col {
						if col[v] != oracle[s][v] {
							t.Fatalf("source %d: dist[%d] = %v, want %v", sources[s], v, col[v], oracle[s][v])
						}
					}
				}
			})
		}
	}
}

// TestBlockSingleColumn pins the k=1 degenerate case to the scalar engine.
func TestBlockSingleColumn(t *testing.T) {
	g := blockTestGraph(t, 3)
	n := int(g.NumVertices())
	g.SetAllProps(inf)
	g.SetProp(5, 0)
	g.SetActive(5)
	scalarStats, err := Run(g, ssspProg{}, Config{Mode: Auto})
	if err != nil {
		t.Fatal(err)
	}

	st := NewBlockState[float32](n, 1)
	st.SetAllProps(inf)
	st.SetProp(5, 0, 0)
	st.Activate(5, 0)
	blockStats, err := RunBlock(g, ssspBlockProg{}, st, Config{Mode: Auto}, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float32, n)
	st.Column(0, col)
	for v := range col {
		if col[v] != g.Prop(uint32(v)) {
			t.Fatalf("dist[%d] = %v, want %v", v, col[v], g.Prop(uint32(v)))
		}
	}
	// Same frontier per superstep means the same engine tallies.
	if blockStats.Iterations != scalarStats.Iterations ||
		blockStats.MessagesSent != scalarStats.MessagesSent ||
		blockStats.EdgesProcessed != scalarStats.EdgesProcessed ||
		blockStats.Applies != scalarStats.Applies {
		t.Fatalf("k=1 block stats diverge from scalar: block %+v scalar %+v", blockStats, scalarStats)
	}
}

// TestBlockWorkspaceReuse runs twice through one workspace, asserting the
// second run is unpolluted by the first.
func TestBlockWorkspaceReuse(t *testing.T) {
	g := blockTestGraph(t, 2)
	n := int(g.NumVertices())
	ws := NewBlockWorkspace[float32, float32](n, 2)
	want := make([][]float32, 2)
	for round := 0; round < 2; round++ {
		st := NewBlockState[float32](n, 2)
		st.SetAllProps(inf)
		for s, src := range []uint32{9, 27} {
			st.SetProp(src, s, 0)
			st.Activate(src, s)
		}
		if _, err := RunBlock(g, ssspBlockProg{}, st, Config{}, ws); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 2; s++ {
			col := make([]float32, n)
			st.Column(s, col)
			if round == 0 {
				want[s] = col
				continue
			}
			for v := range col {
				if col[v] != want[s][v] {
					t.Fatalf("round 2 source %d: dist[%d] = %v, want %v", s, v, col[v], want[s][v])
				}
			}
		}
	}
}
