package core

// This file makes the algebra behind the generalized SpMV explicit. The
// scalar engine only ever sees ProcessMessage/Reduce as opaque callbacks; the
// multi-source (SpMM) engine needs the GraphBLAS view of the same fold — an
// (add, mul, identity) semiring — because one n×k sweep folds k independent
// columns through the same pair of operations and must know that the pair is
// destination-independent to share one edge traversal across all k sources.

// Semiring is the explicit (add, mul, identity) contract of a vertex
// program's message fold, in the GraphBLAS sense: Mul turns a message and an
// edge value into a per-edge result, Add folds results per destination, and
// Identity is Add's neutral element.
//
// The contract that ties a Semiring to its Program (see BlockProgram):
//
//   - Mul(m, e) must equal ProcessMessage(m, e, dst) for every dst — the
//     program is destination-independent by construction (Mul has no dst
//     parameter to read);
//   - Add must equal Reduce bit-for-bit, including on floating-point values;
//   - Identity() is never fed to Add by the engine's kernels (first writes
//     store the raw result, exactly like the scalar fold — IEEE quirks such
//     as 0 + (-0) = +0 therefore cannot perturb results). It exists for
//     callers that pre-fill output blocks and for documentation of the
//     algebra.
//
// Examples: BFS is (min, m+1, MaxUint32); SSSP is (min, m+w, +Inf-like);
// PageRank is (+, m, 0); reachability is (OR, m, 0); widest path is
// (max, min(m, w), 0).
type Semiring[E, M, R any] interface {
	// Mul combines a message with an edge value into a per-edge result
	// (the ⊗ of the generalized SpMV).
	Mul(m M, e E) R
	// Add folds two per-edge results (the ⊕). Must be commutative and
	// associative, and must equal the program's Reduce exactly.
	Add(a, b R) R
	// Identity is Add's neutral element.
	Identity() R
}

// BlockProgram is a vertex program that also exposes its message fold as an
// explicit Semiring, which is what qualifies it for the multi-source block
// engine (RunBlockContext): the scalar Program half drives SendMessage/Apply
// per (vertex, source) pair, and the Semiring half lets the SpMM kernels run
// the fold once per edge across all k source columns. When the Semiring
// contract above holds, a k-source block run is bit-identical per source to
// k independent scalar runs — the scalar engine is the differential oracle.
type BlockProgram[V, E, M, R any] interface {
	Program[V, E, M, R]
	Semiring[E, M, R]
}
