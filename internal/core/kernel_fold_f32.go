package core

import (
	"graphmat/internal/kernels"
	"graphmat/internal/sparse"
)

// This file extends the fused-fold seam of kernel_fold.go beyond the
// (+, passthrough) float64 monoid to the two float32 path semirings the
// traversal algorithms run on: (min, +) — SSSP's Bellman-Ford step — and
// (max, min) — widest (bottleneck) paths. Unlike the sum fold, these
// candidates depend on the edge value (message ⊗ weight), so the fused
// primitives take the column's weight slice alongside its destination rows.

// MinPlusFoldF32 is an optional marker for programs whose fold is the
// float32 tropical semiring: ProcessMessage (and Mul) is message + edge
// weight — bit-for-bit, ignoring the destination property — and Reduce
// (and Add) is the builtin min. SSSP is this shape.
//
// Like SumFoldF64, the declaration is a promise the differential suites
// enforce: the fused fold must be indistinguishable from the generic
// callback loop, on every input, including NaN and ±0 edge cases (the
// fused reduction applies the builtin min/max in the same argument order
// the engine's generic fold does).
type MinPlusFoldF32 interface {
	ReducesByMinPlusF32()
}

// MaxMinFoldF32 is the (max, min) analogue: ProcessMessage (and Mul) is
// the builtin min of message and edge weight, Reduce (and Add) the builtin
// max. Widest paths are this shape.
type MaxMinFoldF32 interface {
	ReducesByMaxMinF32()
}

// f32FoldKind discriminates the resolved float32 fast path.
type f32FoldKind uint8

const (
	f32FoldNone f32FoldKind = iota
	f32FoldMinPlus
	f32FoldMaxMin
)

// f32Fold is the resolved fast-path view of a scalar-engine kernel call:
// kind is non-zero only when the program declares one of the markers AND
// the message and reduction vectors really are float32. The kernels still
// check the edge-value slice separately (the weight operand must be
// float32 too).
type f32Fold struct {
	kind f32FoldKind
	x, y []float32
}

func f32FoldScalarView[V, E, M, R any, P Program[V, E, M, R]](
	p P, x *sparse.Vector[M], y *sparse.Vector[R],
) (f f32Fold) {
	kind := f32FoldNone
	if _, ok := any(p).(MinPlusFoldF32); ok {
		kind = f32FoldMinPlus
	} else if _, ok := any(p).(MaxMinFoldF32); ok {
		kind = f32FoldMaxMin
	}
	if kind == f32FoldNone {
		return f
	}
	xv, okX := any(x.Values()).([]float32)
	yv, okY := any(y.Values()).([]float32)
	if !okX || !okY {
		return f
	}
	return f32Fold{kind: kind, x: xv, y: yv}
}

// scatter dispatches one column's fused fold by kind.
func (f *f32Fold) scatter(yw []uint64, irc []uint32, wc []float32, m float32) {
	if f.kind == f32FoldMinPlus {
		kernels.ScatterMinPlusF32(yw, f.y, irc, wc, m)
	} else {
		kernels.ScatterMaxMinF32(yw, f.y, irc, wc, m)
	}
}

// f32FoldBlockView is the block-engine analogue: the raw n×k value arrays
// of the message and reduction blocks when the program qualifies.
func f32FoldBlockView[V, E, M, R any, P BlockProgram[V, E, M, R]](
	p P, x *BlockVector[M], y *BlockVector[R],
) (kind f32FoldKind, xvals, yvals []float32) {
	if _, ok := any(p).(MinPlusFoldF32); ok {
		kind = f32FoldMinPlus
	} else if _, ok := any(p).(MaxMinFoldF32); ok {
		kind = f32FoldMaxMin
	}
	if kind == f32FoldNone {
		return f32FoldNone, nil, nil
	}
	xv, okX := any(x.vals).([]float32)
	yv, okY := any(y.vals).([]float32)
	if !okX || !okY {
		return f32FoldNone, nil, nil
	}
	return kind, xv, yv
}

// foldBlockColumnF32 is foldBlockColumn for the float32 path semirings:
// per edge, one masked k-lane fold through the kernels backend instead of
// a per-source Mul/Add loop. Identical fold semantics — lanes are
// independent and first writes store the raw candidate, exactly like the
// generic loop.
func foldBlockColumnF32(
	kind f32FoldKind, k int, cm uint64, xrow []float32, irc []uint32, wc []float32,
	ysw []uint64, ycols []uint64, yvals []float32,
) {
	for kk, dst := range irc {
		w := &ysw[dst>>6]
		bit := uint64(1) << (dst & 63)
		if *w&bit == 0 {
			*w |= bit
			ycols[dst] = 0
		}
		yrow := yvals[int(dst)*k : int(dst)*k+k]
		if kind == f32FoldMinPlus {
			kernels.BlockMinPlusF32(yrow, xrow, wc[kk], cm, ycols[dst])
		} else {
			kernels.BlockMaxMinF32(yrow, xrow, wc[kk], cm, ycols[dst])
		}
		ycols[dst] |= cm
	}
}
