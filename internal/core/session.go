package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"graphmat/internal/graph"
)

// This file is the context-aware execution API: RunContext drives the same
// superstep loop as Run, but the run is observable (a per-superstep callback)
// and stoppable (context cancellation, a wall-clock budget, or the observer
// itself). Every other entry point — Run, RunWithWorkspace — is a thin
// wrapper over RunContext.

// StopReason classifies why a run ended; it is recorded in Stats.Reason.
type StopReason int

const (
	// ReasonNone is the zero value: the run has not been classified (only
	// seen on aggregated Stats, never on a completed run).
	ReasonNone StopReason = iota
	// Converged means no vertex remained active (Algorithm 2's natural
	// termination).
	Converged
	// MaxIterations means the run hit Config.MaxIterations.
	MaxIterations
	// Canceled means the run's context was canceled.
	Canceled
	// DeadlineExceeded means the context deadline or WithMaxDuration budget
	// expired.
	DeadlineExceeded
	// StoppedByObserver means a WithObserver callback returned an error.
	StoppedByObserver
)

// String names the reason for logs and JSON.
func (r StopReason) String() string {
	switch r {
	case ReasonNone:
		return ""
	case Converged:
		return "converged"
	case MaxIterations:
		return "max_iterations"
	case Canceled:
		return "canceled"
	case DeadlineExceeded:
		return "deadline_exceeded"
	case StoppedByObserver:
		return "stopped_by_observer"
	}
	return fmt.Sprintf("stop_reason(%d)", int(r))
}

// MarshalJSON encodes the reason as its string name.
func (r StopReason) MarshalJSON() ([]byte, error) {
	return []byte(`"` + r.String() + `"`), nil
}

// UnmarshalJSON decodes a string name back to the typed reason.
func (r *StopReason) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("core: stop reason must be a JSON string, got %s", b)
	}
	name := string(b[1 : len(b)-1])
	for _, cand := range []StopReason{ReasonNone, Converged, MaxIterations, Canceled, DeadlineExceeded, StoppedByObserver} {
		if cand.String() == name {
			*r = cand
			return nil
		}
	}
	return fmt.Errorf("core: unknown stop reason %q", name)
}

// err maps a stop reason to the error RunContext returns for it. Normal
// terminations map to nil.
func (r StopReason) err() error {
	switch r {
	case Canceled:
		return context.Canceled
	case DeadlineExceeded:
		return context.DeadlineExceeded
	}
	return nil
}

// IterationInfo is the per-superstep progress report delivered to observers.
type IterationInfo struct {
	// Iteration is the 1-based superstep number just completed.
	Iteration int `json:"iteration"`
	// Active is the frontier size entering the superstep.
	Active int64 `json:"active"`
	// Sent counts messages produced this superstep.
	Sent int64 `json:"sent"`
	// Applies counts vertices that received a reduced value this superstep.
	Applies int64 `json:"applies"`
	// NextActive is the frontier size for the next superstep; 0 means the
	// run converged.
	NextActive int64 `json:"next_active"`
	// Mode is the SpMV kernel the superstep ran (Pull or Push — Auto is
	// resolved per superstep before the multiply). A superstep that sent no
	// messages ran no kernel and reports the mode that would have been
	// chosen.
	Mode Mode `json:"mode"`
	// Elapsed is this superstep's wall time.
	Elapsed time.Duration `json:"elapsed"`
	// Total is the wall time since the run (or the driving algorithm's
	// session) started.
	Total time.Duration `json:"total"`
}

// Observer is a per-superstep callback. Returning a non-nil error stops the
// run with reason StoppedByObserver; RunContext returns that error verbatim.
// Observers run on the engine's goroutine between supersteps, so a slow
// observer stalls the run.
type Observer = func(IterationInfo) error

// RunOption configures a RunContext call.
type RunOption func(*runOptions)

type runOptions struct {
	observer    Observer
	maxDuration time.Duration
}

// WithObserver invokes fn after every superstep with that superstep's
// progress. An error return stops the run (reason StoppedByObserver).
func WithObserver(fn Observer) RunOption {
	return func(o *runOptions) { o.observer = fn }
}

// WithMaxDuration bounds the run's wall time; when the budget expires the run
// stops promptly — even mid-superstep — with reason DeadlineExceeded. It is
// the engine-level equivalent of a context deadline for callers that do not
// carry a context.
func WithMaxDuration(d time.Duration) RunOption {
	return func(o *runOptions) { o.maxDuration = d }
}

// controller carries a run's stop machinery into the superstep loop. The
// stop word holds 0 while the run may proceed and the StopReason once a stop
// was requested; workers in the parallel partition loops poll it with a
// single atomic load per task, so even a multi-second SpMV aborts within one
// partition's worth of work.
type controller struct {
	stop     atomic.Int32
	ctx      context.Context
	observer Observer
}

// signal requests a stop; the first reason wins.
func (c *controller) signal(r StopReason) { c.stop.CompareAndSwap(0, int32(r)) }

// stopped reports whether a stop was requested and why. The flag is the fast
// path; the context is polled too so a cancellation is seen at the very next
// superstep boundary even if the watcher goroutine has not run yet.
func (c *controller) stopped() (StopReason, bool) {
	if r := StopReason(c.stop.Load()); r != ReasonNone {
		return r, true
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			r := ctxReason(err)
			c.signal(r)
			return r, true
		}
	}
	return ReasonNone, false
}

// flag exposes the stop word for the partition loops; nil means "never
// stops" and lets parallelFor skip the poll entirely.
func (c *controller) flag() *atomic.Int32 {
	if c == nil {
		return nil
	}
	return &c.stop
}

// newController builds the run's controller, arming the context watcher and
// the wall-clock budget. The returned release func must be called when the
// run ends; it stops the timer and the watcher goroutine.
func newController(ctx context.Context, ro runOptions) (*controller, func()) {
	c := &controller{observer: ro.observer}
	var timer *time.Timer
	if ro.maxDuration > 0 {
		timer = time.AfterFunc(ro.maxDuration, func() { c.signal(DeadlineExceeded) })
	}
	var watchDone chan struct{}
	if ctx != nil && ctx.Done() != nil {
		c.ctx = ctx
		// Pre-canceled contexts stop the run before the first superstep.
		if err := ctx.Err(); err != nil {
			c.signal(ctxReason(err))
		} else {
			watchDone = make(chan struct{})
			go func() {
				select {
				case <-ctx.Done():
					c.signal(ctxReason(ctx.Err()))
				case <-watchDone:
				}
			}()
		}
	}
	release := func() {
		if timer != nil {
			timer.Stop()
		}
		if watchDone != nil {
			close(watchDone)
		}
	}
	return c, release
}

// ctxReason maps a context error to the stop reason it represents.
func ctxReason(err error) StopReason {
	if err == context.DeadlineExceeded {
		return DeadlineExceeded
	}
	return Canceled
}

// RunContext executes program p on graph g like Run, under ctx: cancellation
// and deadlines stop the run cooperatively — checked between supersteps and
// via an atomic flag inside the parallel partition loops, so even long SpMVs
// abort promptly. ws, when non-nil, is caller-managed scratch (it must match
// the graph's vertex count and the configuration's vector kind); nil
// allocates fresh scratch. Options attach a per-superstep observer and a
// wall-clock budget.
//
// The returned Stats always reflect the work actually done, and Stats.Reason
// records why the run ended. The error is nil for normal terminations
// (Converged, MaxIterations), ctx.Err() for Canceled/DeadlineExceeded, and
// the observer's own error for StoppedByObserver. After a stopped run the
// graph's vertex state and active set are partial — mid-algorithm — but the
// workspace is reusable as-is: the engine clears scratch at the start of
// every superstep.
func RunContext[V, E, M, R any, P Program[V, E, M, R]](
	ctx context.Context, g *graph.Graph[V, E], p P, cfg Config, ws *Workspace[M, R], opts ...RunOption,
) (Stats, error) {
	cfg = cfg.withDefaults()
	var ro runOptions
	for _, opt := range opts {
		opt(&ro)
	}
	ctrl, release := newController(ctx, ro)
	defer release()
	if cfg.Dispatch == Boxed {
		// The boxed (naive) dispatch path manages its own type-erased
		// scratch and ignores ws.
		return runBoxed(g, p, cfg, ctrl)
	}
	if ws == nil {
		ws = NewWorkspace[M, R](int(g.NumVertices()), cfg.Vector)
	} else if err := ws.Check(int(g.NumVertices()), cfg.Vector); err != nil {
		return Stats{}, err
	}
	return runTyped(g, p, cfg, ws, ctrl)
}
