package core

import (
	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

// spmvBitvec is Algorithm 1 of the paper specialized to the bitvector
// message-vector representation: traverse the nonzero columns of the
// partition, probe the message vector's bitvector for a message from that
// column (line 4 — "becomes faster due to use of the bitvector"), and for
// each edge in the column compute ProcessMessage and fold into the output
// with Reduce. The partition owns a disjoint 64-aligned output row range, so
// writes to y need no synchronization.
//
// The function is generic: the compiler monomorphizes it per program type,
// inlining the user callbacks into the inner loop — the reproduction's
// analogue of compiling the C++ with -ipo (§4.5 item 2).
func spmvBitvec[V, E, M, R any, P Program[V, E, M, R]](
	part *sparse.DCSC[E],
	x *sparse.Vector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	xw := x.Mask().Words()
	xvals := x.Values()
	yw := y.Mask().Words()
	yvals := y.Values()
	_, dstFree := any(p).(DstIndependent)
	var zeroV V
	edges := int64(0)
	for ci, j := range jc {
		if xw[j>>6]&(1<<(j&63)) == 0 {
			continue
		}
		m := xvals[j]
		lo, hi := cp[ci], cp[ci+1]
		edges += int64(hi - lo)
		// Subslice the column so the inner loop is bounds-check free.
		irc := ir[lo:hi]
		vc := vals[lo:hi:hi]
		if dstFree {
			// The program declared ProcessMessage ignores the destination
			// property: skip the per-edge random load of props[dst].
			for k, dst := range irc {
				r := p.ProcessMessage(m, vc[k], zeroV)
				w := &yw[dst>>6]
				bit := uint64(1) << (dst & 63)
				if *w&bit != 0 {
					yvals[dst] = p.Reduce(yvals[dst], r)
				} else {
					yvals[dst] = r
					*w |= bit
				}
			}
			continue
		}
		for k, dst := range irc {
			r := p.ProcessMessage(m, vc[k], props[dst])
			w := &yw[dst>>6]
			bit := uint64(1) << (dst & 63)
			if *w&bit != 0 {
				yvals[dst] = p.Reduce(yvals[dst], r)
			} else {
				yvals[dst] = r
				*w |= bit
			}
		}
	}
	st.probes += int64(len(jc))
	st.edges += edges
}

// spmvSorted is the same kernel against the sorted-tuple message vector
// (§4.4.2's rejected representation, retained for the Figure 7 "naive"
// ablation step): the per-column presence probe is a binary search instead
// of a bit test.
func spmvSorted[V, E, M, R any, P Program[V, E, M, R]](
	part *sparse.DCSC[E],
	xs *sparse.SortedVector[M],
	props []V,
	p P,
	y *sparse.Vector[R],
	st *localStats,
) {
	jc, cp, ir, vals := part.JC, part.CP, part.IR, part.Val
	ymask := y.Mask()
	yvals := y.Values()
	edges := int64(0)
	for ci, j := range jc {
		if !xs.Has(j) {
			continue
		}
		m := xs.Get(j)
		lo, hi := cp[ci], cp[ci+1]
		edges += int64(hi - lo)
		for k := lo; k < hi; k++ {
			dst := ir[k]
			r := p.ProcessMessage(m, vals[k], props[dst])
			if ymask.Get(dst) {
				yvals[dst] = p.Reduce(yvals[dst], r)
			} else {
				yvals[dst] = r
				ymask.Set(dst)
			}
		}
	}
	st.probes += int64(len(jc))
	st.edges += edges
}

// SpMV exposes one generalized multiplication y = Gᵀ ⊗ x outside the driver
// loop: used by tests and by callers that want a single traversal step (the
// in-degree example of Figure 1). The result vector maps destination vertex
// to reduced value.
func SpMV[V, E, M, R any, P Program[V, E, M, R]](g *graph.Graph[V, E], x *sparse.Vector[M], p P, cfg Config) *sparse.Vector[R] {
	cfg = cfg.withDefaults()
	y := sparse.NewVector[R](int(g.NumVertices()))
	locals := make([]localStats, cfg.Threads)
	parts := g.OutPartitions()
	if p.Direction()&graph.In != 0 {
		parts = g.InPartitions()
	}
	parallelFor(cfg.Threads, len(parts), cfg.Schedule, nil, func(i, w int) {
		spmvBitvec(parts[i], x, g.Props(), p, y, &locals[w])
	})
	return y
}
