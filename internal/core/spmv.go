package core

import (
	"context"

	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

// SpMV exposes one generalized multiplication y = Gᵀ ⊗ x outside the driver
// loop: used by tests and by callers that want a single traversal step (the
// in-degree example of Figure 1). The result vector maps destination vertex
// to reduced value. It is SpMVContext without a context.
func SpMV[V, E, M, R any, P Program[V, E, M, R]](g *graph.Graph[V, E], x *sparse.Vector[M], p P, cfg Config) *sparse.Vector[R] {
	y, _ := SpMVContext[V, E, M, R, P](context.Background(), g, x, p, cfg)
	return y
}

// SpMVContext is the single-shot generalized SpMV as a full citizen of the
// engine configuration: it dispatches through the same kernel layer as the
// superstep loop — cfg.Mode selects pull, push, or the per-call Auto density
// decision; cfg.Vector == Sorted converts the frontier to the sorted-tuple
// representation and runs the sorted kernels — and ctx cancellation aborts
// the partition loop cooperatively through the same stop flag the engine
// polls. A canceled call returns the partial y alongside ctx.Err().
func SpMVContext[V, E, M, R any, P Program[V, E, M, R]](
	ctx context.Context, g *graph.Graph[V, E], x *sparse.Vector[M], p P, cfg Config,
) (*sparse.Vector[R], error) {
	cfg = cfg.withDefaults()
	ctrl, release := newController(ctx, runOptions{})
	defer release()

	y := sparse.NewVector[R](int(g.NumVertices()))
	locals := make([]localStats, cfg.Threads)
	layers := g.OutLayers()
	degs := g.OutDegrees()
	if p.Direction()&graph.In != 0 {
		layers = g.InLayers()
		degs = g.InDegrees()
	}
	mode := cfg.Mode
	if mode == Auto {
		costs := AddLayers(KernelCosts{}, layers)
		mode = costs.Choose(mode, cfg.PushThreshold, int64(x.NNZ()), frontierWork(x, degs))
	}

	var xs *sparse.SortedVector[M]
	if cfg.Vector == Sorted {
		xs = sparse.NewSortedVector[M](x.Len())
		x.Iterate(func(i uint32, v M) { xs.Append(i, v) })
	}
	ex := cfg.exec(nil)
	parallelFor(ex, len(layers), ctrl.flag(), func(i, w int) {
		l := layers[i]
		if l.Delta == nil {
			switch {
			case xs == nil && mode == Push:
				spmvPushBitvec(l.Base, x, g.Props(), p, y, &locals[w], 0, ^uint32(0))
			case xs == nil:
				spmvPullBitvec(l.Base, x, g.Props(), p, y, &locals[w], 0, ^uint32(0))
			case mode == Push:
				spmvPushSorted(l.Base, xs, g.Props(), p, y, &locals[w])
			default:
				spmvPullSorted(l.Base, xs, g.Props(), p, y, &locals[w])
			}
			return
		}
		switch {
		case xs == nil && mode == Push:
			spmvPushBitvecLayered(l, x, g.Props(), p, y, &locals[w])
		case xs == nil:
			spmvPullBitvecLayered(l, x, g.Props(), p, y, &locals[w])
		case mode == Push:
			spmvPushSortedLayered(l, xs, g.Props(), p, y, &locals[w])
		default:
			spmvPullSortedLayered(l, xs, g.Props(), p, y, &locals[w])
		}
	})
	if r, ok := ctrl.stopped(); ok {
		return y, r.err()
	}
	return y, nil
}
