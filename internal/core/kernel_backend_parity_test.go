package core

import (
	"fmt"
	"math"
	"testing"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
	"graphmat/internal/kernels"
)

// Engine-level backend differential: for every SIMD backend the CPU supports,
// a run must be bit-identical — vertex properties, frontiers, work tallies —
// to the same run under the scalar oracle, across the full kernel matrix:
// {pull, push, auto} × {bitvector, sorted} × {base, layered overlay}, for
// both the generic fold path and the SumFoldF64 fast path, scalar (SpMV) and
// block (SpMM) engines. This is the engine-shaped complement of the
// primitive-level parity tests in internal/kernels.

// sumFoldProg is a (+, passthrough) float64 program carrying the SumFoldF64
// marker, routing its column folds through ScatterAddF64 (scalar engine) and
// BlockAddF64 (block engine, via the Semiring half below). Mass grows hop by
// hop, so every superstep up to the iteration cap keeps a live frontier.
type sumFoldProg struct{}

func (sumFoldProg) SendMessage(_ VertexID, p float64) (float64, bool)      { return p * 0.25, p != 0 }
func (sumFoldProg) ProcessMessage(m float64, _ float32, _ float64) float64 { return m }
func (sumFoldProg) Reduce(a, b float64) float64                            { return a + b }
func (sumFoldProg) Apply(r float64, _ VertexID, p *float64) bool {
	*p += r
	return math.Abs(r) > 1e-9
}
func (sumFoldProg) Direction() graph.Direction { return graph.Out }
func (sumFoldProg) ProcessIgnoresDst()         {}
func (sumFoldProg) ReducesBySumF64()           {}

// sumFoldBlockProg adds the explicit semiring for block runs.
type sumFoldBlockProg struct{ sumFoldProg }

func (sumFoldBlockProg) Mul(m float64, _ float32) float64 { return m }
func (sumFoldBlockProg) Add(a, b float64) float64         { return a + b }
func (sumFoldBlockProg) Identity() float64                { return 0 }

// backendParityFixture builds the two graph worlds once: a fresh base build
// and a layered snapshot (base + overlay batches) of the equivalent edge set
// plus extra overlay columns, both with Both directions materialized.
type backendParityFixture struct {
	base    *graph.Graph[float64, float32]
	layered *graph.Snapshot[float64, float32]
	roots   []uint32
	n       uint32
}

func newBackendParityFixture(t *testing.T) *backendParityFixture {
	t.Helper()
	coo := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 6, Seed: 19, MaxWeight: 9})
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	n := coo.NRows
	opts := graph.Options{Partitions: 5, Directions: graph.Both, CompactFraction: -1}
	base, err := graph.NewFromCOO[float64, float32](coo.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := graph.NewStore[float64, float32](coo, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range layeredBatches(n) {
		if _, err := store.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	snap := store.Acquire()
	t.Cleanup(snap.Release)
	if snap.Graph().OverlayNNZ() == 0 {
		t.Fatal("fixture is vacuous: no overlay survived")
	}
	return &backendParityFixture{base: base, layered: snap, roots: []uint32{0, 3, n - 1}, n: n}
}

func (f *backendParityFixture) graph(layered bool) *graph.Graph[float64, float32] {
	if layered {
		return f.layered.View()
	}
	return f.base
}

// scalarOutcome captures everything one scalar-engine run produced.
type scalarOutcome struct {
	props  []float64
	active []uint64
	stats  Stats
}

func forceBackendOrFatal(t *testing.T, b kernels.Backend) func() {
	t.Helper()
	restore, ok := kernels.ForceBackend(b)
	if !ok {
		t.Fatalf("backend %s reported supported but ForceBackend refused it", b)
	}
	return restore
}

func TestKernelBackendParityScalarEngine(t *testing.T) {
	simd := kernels.Supported()[1:]
	if len(simd) == 0 {
		t.Skip("no SIMD backend supported on this CPU")
	}
	fix := newBackendParityFixture(t)

	type progCase struct {
		name string
		run  func(g *graph.Graph[float64, float32], cfg Config) (Stats, error)
	}
	progs := []progCase{
		{"sumfold", func(g *graph.Graph[float64, float32], cfg Config) (Stats, error) {
			return Run[float64, float32, float64, float64](g, sumFoldProg{}, cfg)
		}},
	}
	runOne := func(t *testing.T, p progCase, layered bool, cfg Config) scalarOutcome {
		g := fix.graph(layered)
		g.SetAllProps(0)
		g.ClearActive()
		for _, r := range fix.roots {
			g.SetProp(r, 1)
			g.SetActive(r)
		}
		stats, err := p.run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return scalarOutcome{
			props:  append([]float64(nil), g.Props()...),
			active: append([]uint64(nil), g.Active().Words()...),
			stats:  stats,
		}
	}

	for _, p := range progs {
		for _, layered := range []bool{false, true} {
			for _, kind := range []VectorKind{Bitvector, Sorted} {
				for _, mode := range []Mode{Pull, Push, Auto} {
					name := fmt.Sprintf("%s/layered_%v/vec_%d/mode_%s", p.name, layered, kind, mode)
					t.Run(name, func(t *testing.T) {
						cfg := Config{Threads: 3, MaxIterations: 12, Vector: kind, Mode: mode}
						restore := forceBackendOrFatal(t, kernels.Scalar)
						ref := runOne(t, p, layered, cfg)
						restore()
						for _, b := range simd {
							restore := forceBackendOrFatal(t, b)
							got := runOne(t, p, layered, cfg)
							restore()
							for v := range ref.props {
								if math.Float64bits(got.props[v]) != math.Float64bits(ref.props[v]) {
									t.Fatalf("%s: prop[%d] = %v (%x), scalar %v (%x)", b, v,
										got.props[v], math.Float64bits(got.props[v]),
										ref.props[v], math.Float64bits(ref.props[v]))
								}
							}
							for w := range ref.active {
								if got.active[w] != ref.active[w] {
									t.Fatalf("%s: frontier word %d = %#x, scalar %#x", b, w, got.active[w], ref.active[w])
								}
							}
							// Sched carries wall-clock counters (BusyNS,
							// Steals); backend parity compares the
							// deterministic engine tallies only.
							got.stats.Sched, ref.stats.Sched = SchedStats{}, SchedStats{}
							if got.stats != ref.stats {
								t.Fatalf("%s: stats %+v, scalar %+v", b, got.stats, ref.stats)
							}
						}
					})
				}
			}
		}
	}
}

// TestKernelBackendParityGenericFold runs the non-SumFoldF64 path (float32
// min-plus SSSP) across backends: the generic fold itself is pure Go, but the
// frontier word ops, next-set-word scans and layered SpanLess merges it sits
// on are backend-dispatched.
func TestKernelBackendParityGenericFold(t *testing.T) {
	simd := kernels.Supported()[1:]
	if len(simd) == 0 {
		t.Skip("no SIMD backend supported on this CPU")
	}
	coo := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 6, Seed: 23, MaxWeight: 9})
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	n := coo.NRows
	opts := graph.Options{Partitions: 5, CompactFraction: -1}
	store, err := graph.NewStore[float32, float32](coo, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range layeredBatches(n) {
		if _, err := store.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	snap := store.Acquire()
	defer snap.Release()

	runOne := func(t *testing.T, cfg Config) ([]float32, Stats) {
		g := snap.View()
		initDiffState(g, []uint32{0, n - 1})
		stats, err := Run[float32, float32, float32, float32](g, ssspProg{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), g.Props()...), stats
	}
	for _, kind := range []VectorKind{Bitvector, Sorted} {
		for _, mode := range []Mode{Pull, Push, Auto} {
			t.Run(fmt.Sprintf("vec_%d/mode_%s", kind, mode), func(t *testing.T) {
				cfg := Config{Threads: 3, MaxIterations: 40, Vector: kind, Mode: mode}
				restore := forceBackendOrFatal(t, kernels.Scalar)
				refProps, refStats := runOne(t, cfg)
				restore()
				for _, b := range simd {
					restore := forceBackendOrFatal(t, b)
					gotProps, gotStats := runOne(t, cfg)
					restore()
					for v := range refProps {
						if math.Float32bits(gotProps[v]) != math.Float32bits(refProps[v]) {
							t.Fatalf("%s: prop[%d] = %v, scalar %v", b, v, gotProps[v], refProps[v])
						}
					}
					gotStats.Sched, refStats.Sched = SchedStats{}, SchedStats{}
					if gotStats != refStats {
						t.Fatalf("%s: stats %+v, scalar %+v", b, gotStats, refStats)
					}
				}
			})
		}
	}
}

// TestKernelBackendParityBlockEngine covers the SpMM half: a multi-source
// sum-fold block run (the BlockAddF64 path) must be bit-identical per column
// across backends, on base and layered partitions, in every mode.
func TestKernelBackendParityBlockEngine(t *testing.T) {
	simd := kernels.Supported()[1:]
	if len(simd) == 0 {
		t.Skip("no SIMD backend supported on this CPU")
	}
	fix := newBackendParityFixture(t)
	sources := []uint32{0, 1, 3, 17, 42, fix.n - 2, fix.n - 1}
	k := len(sources)

	runOne := func(t *testing.T, layered bool, cfg Config) ([][]float64, Stats) {
		g := fix.graph(layered)
		st := NewBlockState[float64](int(fix.n), k)
		st.SetAllProps(0)
		for s, src := range sources {
			st.SetProp(src, s, 1)
			st.Activate(src, s)
		}
		stats, err := RunBlock(g, sumFoldBlockProg{}, st, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		cols := make([][]float64, k)
		for s := range cols {
			cols[s] = make([]float64, fix.n)
			st.Column(s, cols[s])
		}
		return cols, stats
	}
	for _, layered := range []bool{false, true} {
		for _, mode := range []Mode{Pull, Push, Auto} {
			t.Run(fmt.Sprintf("layered_%v/mode_%s", layered, mode), func(t *testing.T) {
				cfg := Config{Threads: 3, MaxIterations: 10, Mode: mode}
				restore := forceBackendOrFatal(t, kernels.Scalar)
				refCols, refStats := runOne(t, layered, cfg)
				restore()
				for _, b := range simd {
					restore := forceBackendOrFatal(t, b)
					gotCols, gotStats := runOne(t, layered, cfg)
					restore()
					for s := range refCols {
						for v := range refCols[s] {
							if math.Float64bits(gotCols[s][v]) != math.Float64bits(refCols[s][v]) {
								t.Fatalf("%s: col %d y[%d] = %v (%x), scalar %v (%x)", b, s, v,
									gotCols[s][v], math.Float64bits(gotCols[s][v]),
									refCols[s][v], math.Float64bits(refCols[s][v]))
							}
						}
					}
					gotStats.Sched, refStats.Sched = SchedStats{}, SchedStats{}
					if gotStats != refStats {
						t.Fatalf("%s: stats %+v, scalar %+v", b, gotStats, refStats)
					}
				}
			})
		}
	}
}

// Compile-time contract checks for the test programs.
var (
	_ Program[float64, float32, float64, float64]      = sumFoldProg{}
	_ BlockProgram[float64, float32, float64, float64] = sumFoldBlockProg{}
)
