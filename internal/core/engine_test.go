package core

import (
	"math"
	"testing"
	"testing/quick"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

const inf = float32(math.MaxFloat32)

// ssspProg is the paper's appendix program: message = current distance,
// process = message + edge weight, reduce = min, apply = min with activation
// on improvement.
type ssspProg struct{}

func (ssspProg) SendMessage(v VertexID, prop float32) (float32, bool) { return prop, true }
func (ssspProg) ProcessMessage(m, e float32, _ float32) float32       { return m + e }
func (ssspProg) Reduce(a, b float32) float32                          { return min(a, b) }
func (ssspProg) Apply(r float32, _ VertexID, prop *float32) bool {
	if r < *prop {
		*prop = r
		return true
	}
	return false
}
func (ssspProg) Direction() graph.Direction { return graph.Out }

// countProg counts arriving messages: in-degree with Direction Out
// (Figure 1), out-degree with Direction In, total degree with Both.
type countProg struct{ dir graph.Direction }

func (countProg) SendMessage(v VertexID, _ uint32) (uint32, bool)     { return 1, true }
func (countProg) ProcessMessage(m uint32, _ float32, _ uint32) uint32 { return m }
func (countProg) Reduce(a, b uint32) uint32                           { return a + b }
func (countProg) Apply(r uint32, _ VertexID, prop *uint32) bool       { *prop = r; return false }
func (p countProg) Direction() graph.Direction                        { return p.dir }

// fig3Graph builds the Figure 3 worked example.
func fig3Graph(t testing.TB, opts graph.Options) *graph.Graph[float32, float32] {
	t.Helper()
	c := sparse.NewCOO[float32](5, 5)
	c.Add(0, 1, 1)
	c.Add(0, 2, 3)
	c.Add(0, 3, 2)
	c.Add(1, 2, 1)
	c.Add(3, 4, 2)
	c.Add(4, 0, 4)
	c.Add(2, 3, 2)
	g, err := graph.NewFromCOO[float32, float32](c, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(inf)
	g.SetProp(0, 0)
	g.SetActive(0)
	return g
}

func TestSSSPFigure3(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Threads: 1},
		{Threads: 2, Schedule: Static},
		{Vector: Sorted},
		{Dispatch: Boxed},
		{Dispatch: Boxed, Vector: Sorted},
	} {
		g := fig3Graph(t, graph.Options{Partitions: 2})
		stats, _ := Run(g, ssspProg{}, cfg)
		want := []float32{0, 1, 2, 2, 4}
		for v, d := range want {
			if g.Prop(uint32(v)) != d {
				t.Errorf("cfg %+v: dist[%d] = %v, want %v", cfg, v, g.Prop(uint32(v)), d)
			}
		}
		if stats.Iterations == 0 || stats.EdgesProcessed == 0 {
			t.Errorf("cfg %+v: empty stats %+v", cfg, stats)
		}
	}
}

func TestInDegreeFigure1(t *testing.T) {
	// Figure 1 graph: A->B, A->C, B->D, C->D. In-degrees: 0,1,1,2.
	c := sparse.NewCOO[float32](4, 4)
	c.Add(0, 1, 1)
	c.Add(0, 2, 1)
	c.Add(1, 3, 1)
	c.Add(2, 3, 1)
	g, err := graph.NewFromCOO[uint32, float32](c, graph.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllActive()
	Run(g, countProg{dir: graph.Out}, Config{MaxIterations: 1})
	want := []uint32{0, 1, 1, 2}
	for v, d := range want {
		if g.Prop(uint32(v)) != d {
			t.Errorf("indegree[%d] = %d, want %d", v, g.Prop(uint32(v)), d)
		}
	}
}

func TestDirectionIn(t *testing.T) {
	// With Direction In, each vertex's messages travel backwards along its
	// in-edges, so vertex u accumulates one message per out-edge.
	c := sparse.NewCOO[float32](4, 4)
	c.Add(0, 1, 1)
	c.Add(0, 2, 1)
	c.Add(1, 3, 1)
	c.Add(2, 3, 1)
	g, err := graph.NewFromCOO[uint32, float32](c, graph.Options{Partitions: 2, Directions: graph.In})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllActive()
	Run(g, countProg{dir: graph.In}, Config{MaxIterations: 1})
	want := []uint32{2, 1, 1, 0} // out-degrees
	for v, d := range want {
		if g.Prop(uint32(v)) != d {
			t.Errorf("outdegree[%d] = %d, want %d", v, g.Prop(uint32(v)), d)
		}
	}
}

func TestDirectionBoth(t *testing.T) {
	c := sparse.NewCOO[float32](4, 4)
	c.Add(0, 1, 1)
	c.Add(0, 2, 1)
	c.Add(1, 3, 1)
	c.Add(2, 3, 1)
	g, err := graph.NewFromCOO[uint32, float32](c, graph.Options{Partitions: 2, Directions: graph.Both})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllActive()
	Run(g, countProg{dir: graph.Both}, Config{MaxIterations: 1})
	want := []uint32{2, 2, 2, 2} // total degree
	for v, d := range want {
		if g.Prop(uint32(v)) != d {
			t.Errorf("degree[%d] = %d, want %d", v, g.Prop(uint32(v)), d)
		}
	}
}

// alwaysActive runs forever unless capped: checks MaxIterations.
type alwaysActive struct{}

func (alwaysActive) SendMessage(v VertexID, p int64) (int64, bool)    { return p, true }
func (alwaysActive) ProcessMessage(m int64, _ float32, _ int64) int64 { return m }
func (alwaysActive) Reduce(a, b int64) int64                          { return a + b }
func (alwaysActive) Apply(r int64, _ VertexID, p *int64) bool         { *p += r; return true }
func (alwaysActive) Direction() graph.Direction                       { return graph.Out }

func TestMaxIterations(t *testing.T) {
	c := sparse.NewCOO[float32](2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	g, err := graph.NewFromCOO[int64, float32](c, graph.Options{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(1)
	g.SetAllActive()
	stats, _ := Run(g, alwaysActive{}, Config{MaxIterations: 5})
	if stats.Iterations != 5 {
		t.Errorf("Iterations = %d, want 5", stats.Iterations)
	}
}

func TestNoActiveVerticesTerminatesImmediately(t *testing.T) {
	g := fig3Graph(t, graph.Options{})
	g.ClearActive()
	stats, _ := Run(g, ssspProg{}, Config{})
	if stats.Iterations != 1 || stats.EdgesProcessed != 0 {
		t.Errorf("stats = %+v, want 1 empty iteration", stats)
	}
}

func TestBFSFrontierProgression(t *testing.T) {
	// Path 0->1->2->3: SSSP from 0 with unit weights needs exactly 4
	// supersteps (3 that improve + 1 that discovers no change... the last
	// improving superstep leaves vertex 3 active, so one more runs).
	c := sparse.NewCOO[float32](4, 4)
	c.Add(0, 1, 1)
	c.Add(1, 2, 1)
	c.Add(2, 3, 1)
	g, err := graph.NewFromCOO[float32, float32](c, graph.Options{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(inf)
	g.SetProp(0, 0)
	g.SetActive(0)
	stats, _ := Run(g, ssspProg{}, Config{})
	if got := []float32{g.Prop(0), g.Prop(1), g.Prop(2), g.Prop(3)}; got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Errorf("distances = %v", got)
	}
	if stats.Iterations != 4 {
		t.Errorf("Iterations = %d, want 4", stats.Iterations)
	}
	// Frontier is one vertex per superstep: 4 messages total... the last
	// superstep sends from vertex 3 whose message improves nothing.
	if stats.MessagesSent != 4 {
		t.Errorf("MessagesSent = %d, want 4", stats.MessagesSent)
	}
}

// referenceBellmanFord computes ground-truth distances.
func referenceBellmanFord(n uint32, edges []sparse.Triple[float32], src uint32) []float32 {
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for i := uint32(0); i < n; i++ {
		changed := false
		for _, e := range edges {
			if dist[e.Row] != inf && dist[e.Row]+e.Val < dist[e.Col] {
				dist[e.Col] = dist[e.Row] + e.Val
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// Property: all engine configurations compute identical SSSP distances, and
// they match a reference Bellman-Ford.
func TestQuickConfigEquivalence(t *testing.T) {
	configs := []Config{
		{Threads: 1},
		{Threads: 2},
		{Threads: 2, Schedule: Static},
		{Threads: 2, Vector: Sorted},
		{Threads: 1, Dispatch: Boxed},
		{Threads: 2, Dispatch: Boxed, Vector: Sorted},
	}
	f := func(seed uint64) bool {
		coo := gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 4, Seed: seed, MaxWeight: 10})
		coo.RemoveSelfLoops()
		// Deduplicate (keeping the min weight) so the reference and the
		// graph build see the same edge set regardless of dedup policy.
		coo.SortRowMajor()
		coo.DedupSum(func(a, b float32) float32 { return min(a, b) })
		edges := make([]sparse.Triple[float32], len(coo.Entries))
		copy(edges, coo.Entries)
		want := referenceBellmanFord(coo.NRows, edges, 0)

		for _, cfg := range configs {
			for _, nparts := range []int{1, 3, 8} {
				c := sparse.NewCOO[float32](coo.NRows, coo.NCols)
				c.Entries = append([]sparse.Triple[float32](nil), edges...)
				g, err := graph.NewFromCOO[float32, float32](c, graph.Options{Partitions: nparts})
				if err != nil {
					t.Fatal(err)
				}
				g.SetAllProps(inf)
				g.SetProp(0, 0)
				g.SetActive(0)
				Run(g, ssspProg{}, cfg)
				for v := uint32(0); v < coo.NRows; v++ {
					if g.Prop(v) != want[v] {
						t.Logf("cfg %+v parts %d: dist[%d] = %v, want %v", cfg, nparts, v, g.Prop(v), want[v])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: stats are consistent — edges processed in one full-active
// superstep equal the edge count; applies never exceed vertices.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		coo := gen.RMAT(gen.RMATOptions{Scale: 6, EdgeFactor: 4, Seed: seed})
		coo.RemoveSelfLoops()
		g, err := graph.NewFromCOO[uint32, float32](coo, graph.Options{Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		g.SetAllActive()
		stats, _ := Run(g, countProg{dir: graph.Out}, Config{MaxIterations: 1, Threads: 2})
		return stats.EdgesProcessed == g.NumEdges() &&
			stats.MessagesSent == int64(g.NumVertices()) &&
			stats.Applies <= int64(g.NumVertices()) &&
			stats.Iterations == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSpMVSingleShot(t *testing.T) {
	c := sparse.NewCOO[float32](4, 4)
	c.Add(0, 1, 1)
	c.Add(0, 2, 1)
	c.Add(1, 3, 1)
	c.Add(2, 3, 1)
	g, err := graph.NewFromCOO[uint32, float32](c, graph.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := sparse.NewVector[uint32](4)
	for v := uint32(0); v < 4; v++ {
		x.Set(v, 1)
	}
	y := SpMV(g, x, countProg{dir: graph.Out}, Config{})
	want := []uint32{0, 1, 1, 2}
	for v, d := range want {
		got, ok := y.GetChecked(uint32(v))
		if d == 0 {
			if ok {
				t.Errorf("y[%d] present, want absent", v)
			}
			continue
		}
		if !ok || got != d {
			t.Errorf("y[%d] = %d (present %v), want %d", v, got, ok, d)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	for _, c := range []struct{ n, k int }{{0, 4}, {1, 4}, {64, 1}, {100, 3}, {1000, 7}, {64, 64}} {
		b := chunkBounds(c.n, c.k)
		if b[0] != 0 || b[len(b)-1] != uint32(c.n) {
			t.Errorf("chunkBounds(%d,%d) endpoints: %v", c.n, c.k, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Errorf("chunkBounds(%d,%d) not monotone: %v", c.n, c.k, b)
			}
			if i < len(b)-1 && b[i]%64 != 0 {
				t.Errorf("chunkBounds(%d,%d) interior bound %d unaligned", c.n, c.k, b[i])
			}
		}
	}
}
