package core

import (
	"testing"

	"graphmat/internal/graph"
)

func TestWorkspaceReuseMatchesFreshRuns(t *testing.T) {
	ws := NewWorkspace[float32, float32](5, Bitvector)
	for trial := 0; trial < 3; trial++ {
		g := fig3Graph(t, graph.Options{Partitions: 2})
		stats, err := RunWithWorkspace(g, ssspProg{}, Config{Threads: 2}, ws)
		if err != nil {
			t.Fatal(err)
		}
		want := []float32{0, 1, 2, 2, 4}
		for v, d := range want {
			if g.Prop(uint32(v)) != d {
				t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, v, g.Prop(uint32(v)), d)
			}
		}
		if stats.Iterations == 0 {
			t.Fatal("no iterations")
		}
	}
}

func TestWorkspaceMismatchErrors(t *testing.T) {
	g := fig3Graph(t, graph.Options{})
	if _, err := RunWithWorkspace(g, ssspProg{}, Config{}, NewWorkspace[float32, float32](3, Bitvector)); err == nil {
		t.Error("wrong-size workspace accepted")
	}
	if _, err := RunWithWorkspace(g, ssspProg{}, Config{Vector: Sorted}, NewWorkspace[float32, float32](5, Bitvector)); err == nil {
		t.Error("wrong-kind workspace accepted")
	}
}

func TestWorkspaceBoxedPathIgnoresWorkspace(t *testing.T) {
	g := fig3Graph(t, graph.Options{})
	// Deliberately mismatched workspace: boxed dispatch must not touch it.
	ws := NewWorkspace[float32, float32](1, Bitvector)
	if _, err := RunWithWorkspace(g, ssspProg{}, Config{Dispatch: Boxed}, ws); err != nil {
		t.Fatalf("boxed path rejected workspace it should ignore: %v", err)
	}
	if g.Prop(4) != 4 {
		t.Errorf("dist[E] = %v", g.Prop(4))
	}
}

func TestWorkspaceSortedKind(t *testing.T) {
	g := fig3Graph(t, graph.Options{})
	ws := NewWorkspace[float32, float32](5, Sorted)
	if _, err := RunWithWorkspace(g, ssspProg{}, Config{Vector: Sorted}, ws); err != nil {
		t.Fatal(err)
	}
	if g.Prop(4) != 4 {
		t.Errorf("dist[E] = %v", g.Prop(4))
	}
}
