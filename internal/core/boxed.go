package core

import (
	"math"
	"time"

	"graphmat/internal/graph"
	"graphmat/internal/sched"
	"graphmat/internal/sparse"
)

// This file is the deliberately *unoptimized* execution path: the Figure 7
// ablation's pre-"+ipo" code. Every message, edge value and reduced value is
// boxed into an interface{}, user callbacks are reached through interface
// method calls, and the SpMV traverses partitions through an interface —
// none of it can inline, and scalar payloads allocate. This recreates what
// the paper's naive scalar build looks like before inter-procedural
// optimization, against the *same* graph structures, so the measured deltas
// isolate dispatch cost.

// boxedPartition lets the boxed kernel walk a partition — a plain DCSC or a
// base+delta overlay — without being specialized to the edge type. Columns
// are addressed by position in the partition's live column sequence and
// edges by offset within their column, so an overlay can interleave its two
// layers behind the same interface.
type boxedPartition interface {
	numColumns() int
	column(ci int) (col uint32, nedges int)
	edge(ci, k int) (dst uint32, val any)
}

type boxedDCSC[E any] struct{ part *sparse.DCSC[E] }

func (b boxedDCSC[E]) numColumns() int { return len(b.part.JC) }
func (b boxedDCSC[E]) column(ci int) (uint32, int) {
	return b.part.JC[ci], int(b.part.CP[ci+1] - b.part.CP[ci])
}
func (b boxedDCSC[E]) edge(ci, k int) (uint32, any) {
	at := b.part.CP[ci] + uint32(k)
	return b.part.IR[at], b.part.Val[at]
}

// overlayColRef locates one live column of a layered partition: which layer
// stores it and at which position.
type overlayColRef struct {
	col   uint32
	delta bool
	ci    int32
}

// boxedOverlay walks a base+delta partition in merged column order. The
// column refs are precomputed at boxing time (O(columns), no edge copying),
// preserving the boxed path's no-materialization property.
type boxedOverlay[E any] struct {
	base, delta *sparse.DCSC[E]
	cols        []overlayColRef
}

func (b *boxedOverlay[E]) numColumns() int { return len(b.cols) }
func (b *boxedOverlay[E]) layer(ci int) (*sparse.DCSC[E], int) {
	ref := b.cols[ci]
	if ref.delta {
		return b.delta, int(ref.ci)
	}
	return b.base, int(ref.ci)
}
func (b *boxedOverlay[E]) column(ci int) (uint32, int) {
	d, i := b.layer(ci)
	return b.cols[ci].col, int(d.CP[i+1] - d.CP[i])
}
func (b *boxedOverlay[E]) edge(ci, k int) (uint32, any) {
	d, i := b.layer(ci)
	at := d.CP[i] + uint32(k)
	return d.IR[at], d.Val[at]
}

func boxLayers[E any](layers []sparse.Layered[E]) []boxedPartition {
	out := make([]boxedPartition, len(layers))
	for i, l := range layers {
		if l.Delta == nil {
			out[i] = boxedDCSC[E]{part: l.Base}
			continue
		}
		b, d := l.Base, l.Delta
		cols := make([]overlayColRef, 0, len(b.JC)+len(d.JC))
		bi, di := 0, 0
		for bi < len(b.JC) || di < len(d.JC) {
			if di >= len(d.JC) || (bi < len(b.JC) && b.JC[bi] < d.JC[di]) {
				cols = append(cols, overlayColRef{col: b.JC[bi], ci: int32(bi)})
				bi++
				continue
			}
			j := d.JC[di]
			if bi < len(b.JC) && b.JC[bi] == j {
				bi++ // overridden
			}
			if d.CP[di+1] > d.CP[di] { // tombstones are not live columns
				cols = append(cols, overlayColRef{col: j, delta: true, ci: int32(di)})
			}
			di++
		}
		out[i] = &boxedOverlay[E]{base: b, delta: d, cols: cols}
	}
	return out
}

// boxedProgram is the dispatch-erased view of a Program.
type boxedProgram interface {
	send(v VertexID) (any, bool)
	process(m, e any, dst VertexID) any
	reduce(a, b any) any
	apply(r any, v VertexID) bool
}

type boxedAdapter[V, E, M, R any] struct {
	p     Program[V, E, M, R]
	props []V
}

func (a *boxedAdapter[V, E, M, R]) send(v VertexID) (any, bool) {
	m, ok := a.p.SendMessage(v, a.props[v])
	return m, ok
}

func (a *boxedAdapter[V, E, M, R]) process(m, e any, dst VertexID) any {
	return a.p.ProcessMessage(m.(M), e.(E), a.props[dst])
}

func (a *boxedAdapter[V, E, M, R]) reduce(x, y any) any {
	return a.p.Reduce(x.(R), y.(R))
}

func (a *boxedAdapter[V, E, M, R]) apply(r any, v VertexID) bool {
	return a.p.Apply(r.(R), v, &a.props[v])
}

func spmvBoxedBitvec(part boxedPartition, x *sparse.Vector[any], bp boxedProgram, y *sparse.Vector[any], st *localStats) {
	n := part.numColumns()
	edges := int64(0)
	for ci := 0; ci < n; ci++ {
		j, ne := part.column(ci)
		if !x.Has(j) {
			continue
		}
		m := x.Get(j)
		edges += int64(ne)
		for k := 0; k < ne; k++ {
			dst, e := part.edge(ci, k)
			r := bp.process(m, e, dst)
			if y.Has(dst) {
				y.Set(dst, bp.reduce(y.Get(dst), r))
			} else {
				y.Set(dst, r)
			}
		}
	}
	st.probes += int64(n)
	st.edges += edges
}

func spmvBoxedSorted(part boxedPartition, xs *sparse.SortedVector[any], bp boxedProgram, y *sparse.Vector[any], st *localStats) {
	n := part.numColumns()
	edges := int64(0)
	for ci := 0; ci < n; ci++ {
		j, ne := part.column(ci)
		if !xs.Has(j) {
			continue
		}
		m := xs.Get(j)
		edges += int64(ne)
		for k := 0; k < ne; k++ {
			dst, e := part.edge(ci, k)
			r := bp.process(m, e, dst)
			if y.Has(dst) {
				y.Set(dst, bp.reduce(y.Get(dst), r))
			} else {
				y.Set(dst, r)
			}
		}
	}
	st.probes += int64(n)
	st.edges += edges
}

func runBoxed[V, E, M, R any, P Program[V, E, M, R]](g *graph.Graph[V, E], p P, cfg Config, ctrl *controller) (stats Stats, err error) {
	n := int(g.NumVertices())
	active := g.Active()
	dir := p.Direction()
	bp := &boxedAdapter[V, E, M, R]{p: p, props: g.Props()}

	var outParts, inParts []boxedPartition
	if dir&graph.Out != 0 {
		outParts = boxLayers(g.OutLayers())
	}
	if dir&graph.In != 0 {
		inParts = boxLayers(g.InLayers())
	}

	var x *sparse.Vector[any]
	var xs *sparse.SortedVector[any]
	if cfg.Vector == Bitvector {
		x = sparse.NewVector[any](n)
	} else {
		xs = sparse.NewSortedVector[any](n)
	}
	y := sparse.NewVector[any](n)

	chunks := chunkBounds(n, cfg.Threads*4)
	nchunks := len(chunks) - 1
	locals := make([]localStats, cfg.Threads)
	// The boxed ablation keeps partition-granular tasks (its kernels take
	// whole partitions) but still runs on the shared pool.
	var tally sched.Tally
	ex := cfg.exec(&tally)
	defer func() { stats.Sched = ex.schedStats() }()
	var sortedRuns [][]sparse.Entry[any]
	if xs != nil {
		sortedRuns = make([][]sparse.Entry[any], nchunks)
	}

	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = math.MaxInt
	}
	stop := ctrl.flag()
	runStart := time.Now() //lint:graphmat bannedcalls one clock read per run, off the per-edge path

	stats.Reason = MaxIterations
	for iter := 0; iter < maxIter; iter++ {
		if r, ok := ctrl.stopped(); ok {
			stats.Reason = r
			return stats, r.err()
		}
		stepStart := time.Now() //lint:graphmat bannedcalls one clock read per superstep, off the per-edge path
		frontier := int64(active.Count())
		stats.ActiveSum += frontier
		stats.Iterations++

		if x != nil {
			x.Reset()
			parallelFor(ex, nchunks, stop, func(c, w int) {
				active.IterateRange(chunks[c], chunks[c+1], func(v uint32) {
					if m, ok := bp.send(v); ok {
						x.Set(v, m)
					}
				})
			})
		} else {
			xs.Reset()
			parallelFor(ex, nchunks, stop, func(c, w int) {
				var run []sparse.Entry[any]
				active.IterateRange(chunks[c], chunks[c+1], func(v uint32) {
					if m, ok := bp.send(v); ok {
						run = append(run, sparse.Entry[any]{Idx: v, Val: m})
					}
				})
				sortedRuns[c] = run
			})
			for c := 0; c < nchunks; c++ {
				for _, e := range sortedRuns[c] {
					xs.Append(e.Idx, e.Val)
				}
				sortedRuns[c] = nil
			}
		}
		var sent int64
		if x != nil {
			sent = int64(x.NNZ())
		} else {
			sent = int64(xs.NNZ())
		}
		stats.MessagesSent += sent
		stats.absorb(locals)
		var applies, nactive int64
		if sent > 0 {
			// The boxed (naive) path predates the kernel layer's push mode:
			// it always pulls, whatever Config.Mode says.
			stats.PullSupersteps++
			y.Reset()
			for _, parts := range [][]boxedPartition{outParts, inParts} {
				if parts == nil {
					continue
				}
				parallelFor(ex, len(parts), stop, func(i, w int) {
					if x != nil {
						spmvBoxedBitvec(parts[i], x, bp, y, &locals[w])
					} else {
						spmvBoxedSorted(parts[i], xs, bp, y, &locals[w])
					}
				})
			}

			if r, ok := ctrl.stopped(); ok {
				stats.absorb(locals)
				stats.Reason = r
				return stats, r.err()
			}

			active.Reset()
			parallelFor(ex, nchunks, stop, func(c, w int) {
				st := &locals[w]
				y.IterateRange(chunks[c], chunks[c+1], func(v uint32, r any) {
					st.applies++
					if bp.apply(r, v) {
						active.Set(v)
					}
				})
			})
			applies, _ = stats.absorb(locals)
			nactive = int64(active.Count())
		}
		if r, ok := ctrl.stopped(); ok {
			stats.Reason = r
			return stats, r.err()
		}
		if ctrl.observer != nil {
			err := ctrl.observer(IterationInfo{
				Iteration:  iter + 1,
				Active:     frontier,
				Sent:       sent,
				Applies:    applies,
				NextActive: nactive,
				Mode:       Pull,
				Elapsed:    time.Since(stepStart), //lint:graphmat bannedcalls per-superstep stats, two reads per superstep
				Total:      time.Since(runStart),
			})
			if err != nil {
				stats.Reason = StoppedByObserver
				return stats, err
			}
		}
		if sent == 0 || nactive == 0 {
			stats.Reason = Converged
			break
		}
	}
	return stats, nil
}
