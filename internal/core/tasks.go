package core

import "graphmat/internal/sparse"

// This file is the nnz-weighted task-shaping half of the scheduler work:
// turning a run's partition list into multiply-phase task lists whose units
// carry roughly equal edge work, so one hub-heavy partition no longer
// serializes a pull superstep while the other workers idle.
//
// Shaping preserves the engine's bit-identity contract. A partition is only
// ever split by destination row, on 64-aligned boundaries: each output row
// (and each output mask word) belongs to exactly one task, so tasks still
// write disjoint ranges of y without synchronization, and within a task the
// kernels visit columns in ascending id with each destination's fold order
// unchanged — only task *boundaries* move, never the per-destination fold
// sequence. (Splitting by column range instead would both race on shared
// destination rows and recombine partial folds, which float reduction
// orders forbid.)

// spmvTask is one unit of multiply-phase work: a partition (by layer
// index) and a destination-row range. Whole-partition tasks use the full
// range sentinel rlo=0, rhi=^uint32(0).
type spmvTask struct {
	layer    int32
	rlo, rhi uint32
}

// taskPlan is one direction's precomputed multiply-phase task lists.
type taskPlan struct {
	// whole is partition-granular: one task per layer, in layer order.
	whole []spmvTask
	// shaped is the nnz-weighted list: heavy single-layer partitions are
	// split into 64-aligned destination-row sub-ranges of roughly equal
	// live-edge weight; light and layered partitions stay whole.
	shaped []spmvTask
}

const (
	// shapeTasksPerWorker sets the shaping target: about this many tasks
	// per worker, enough slack for stealing to absorb skew without
	// shattering the sweep into cache-hostile crumbs.
	shapeTasksPerWorker = 4
	// shapeMinGrain floors the per-task edge weight: below this the extra
	// dispatch and per-column row search cost more than the imbalance
	// they could fix.
	shapeMinGrain = 4096
	// shapeMaxSplit caps the sub-tasks cut from one partition.
	shapeMaxSplit = 64
	// shapeSweepCost is the column-sweep budget divisor: a partition with
	// c live columns and w live edges splits at most w/(shapeSweepCost·c)
	// ways, charging each added sub-task for the per-column probe it
	// re-pays across the whole column list.
	shapeSweepCost = 4
)

// shapeTasks builds the task plan for one direction's layers. The grain is
// total live edge weight over workers × shapeTasksPerWorker (floored at
// shapeMinGrain); partitions above twice the grain are split at
// destination-row boundaries chosen by per-row nnz weight — the same
// balance-and-64-align cut PartitionRows applies at build time, here at
// sub-partition scale. Only single-layer partitions split (the layered
// merge kernels are partition-granular); delta overlays stay whole.
//
// The plan depends only on the pinned structures and the run config, so
// repeated runs shape identically — engine tallies that count per-task
// sweeps (ColumnsProbed) stay deterministic per configuration.
func shapeTasks[E any](layers []sparse.Layered[E], workers int, rt Runtime) taskPlan {
	plan := taskPlan{whole: make([]spmvTask, len(layers))}
	for i := range plan.whole {
		plan.whole[i] = spmvTask{layer: int32(i), rhi: ^uint32(0)}
	}
	plan.shaped = plan.whole
	if rt != Pooled || workers <= 1 || len(layers) == 0 {
		return plan
	}
	total := 0
	for _, l := range layers {
		total += l.LiveNNZ()
	}
	grain := total / (workers * shapeTasksPerWorker)
	if grain < shapeMinGrain {
		grain = shapeMinGrain
	}
	shaped := make([]spmvTask, 0, len(layers))
	split := false
	for i, l := range layers {
		w := l.LiveNNZ()
		if l.Delta != nil || w <= 2*grain {
			shaped = append(shaped, plan.whole[i])
			continue
		}
		part := l.Base
		s := w / grain
		if s > shapeMaxSplit {
			s = shapeMaxSplit
		}
		// Every sub-task re-sweeps the partition's whole live-column list —
		// a frontier probe and a row-range check per column — so splitting
		// an s-way partition adds (s-1)·NZColumns sweep steps on top of the
		// unchanged edge work. Cap s so that bill stays a small fraction of
		// the edge work it buys balance for: column-rich hypersparse
		// partitions (few edges per live column) stay coarse, edge-dense
		// ones split freely.
		if c := part.NZColumns(); c > 0 && s > w/(shapeSweepCost*c) {
			s = w / (shapeSweepCost * c)
		}
		// 64-aligned boundaries bound the useful split count: sub-ranges
		// share no output mask words only at that granularity.
		if rows := int(part.RowHi-part.RowLo) / 64; s > rows {
			s = rows
		}
		if s < 2 {
			shaped = append(shaped, plan.whole[i])
			continue
		}
		bounds := part.SplitBounds(s)
		for b := 0; b < s; b++ {
			lo, hi := bounds[b], bounds[b+1]
			if lo >= hi {
				continue
			}
			shaped = append(shaped, spmvTask{layer: int32(i), rlo: lo, rhi: hi})
			split = true
		}
	}
	if split {
		plan.shaped = shaped
	}
	return plan
}

// pick selects one superstep's task list. Shaped tasks serve pull
// supersteps over the bitvector frontier: the column-sweep bill is fixed,
// so cutting heavy partitions buys balance for a cheap per-column row
// search. Push supersteps and the sorted-vector ablation stay
// partition-granular — push work is frontier-proportional, and splitting
// would multiply the per-frontier-vertex probe bill by the split factor
// (the adaptive-grain rule: sparse-frontier supersteps must not shatter).
func (tp *taskPlan) pick(mode Mode, sorted bool) []spmvTask {
	if mode == Push || sorted {
		return tp.whole
	}
	return tp.shaped
}
