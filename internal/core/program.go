// Package core implements the GraphMat engine: the vertex-program contract
// (paper §4.1), the BSP driver loop (Algorithm 2), and the generalized sparse
// matrix–sparse vector multiplication backend (Algorithm 1) with the
// optimizations of §4.5 — bitvector message vectors, monomorphized (inlined)
// user callbacks, partition-parallel SpMV and dynamic load balancing. Each of
// these optimizations can be disabled individually to reproduce the Figure 7
// ablation.
//
// The SpMV backend is a kernel layer (kernel.go) with two directions: the
// paper's column-driven pull probe and a frontier-driven push SpMSpV, chosen
// per superstep by a density threshold when Config.Mode is Auto
// (direction optimization à la Ligra/GraphBLAST). All modes produce
// bit-identical results.
package core

import "graphmat/internal/graph"

// VertexID identifies a vertex. Graphs are limited to 2³²−1 vertices.
type VertexID = uint32

// Program is a GraphMat vertex program over vertex properties V, edge values
// E, messages M and reduced values R (the C++ API is templatized the same
// way; see the paper's appendix).
//
// Each superstep the engine calls SendMessage on every active vertex,
// multiplies the resulting sparse message vector against the adjacency
// structure — calling ProcessMessage once per edge from a sending vertex and
// folding the results per destination with Reduce — and finally calls Apply
// on every vertex that received a reduced value. Reduce must be commutative
// and associative: partitions fold results in structure order, which is not
// the message send order.
type Program[V, E, M, R any] interface {
	// SendMessage produces vertex v's message from its property. Returning
	// send=false suppresses the message (the C++ API's boolean return).
	SendMessage(v VertexID, prop V) (msg M, send bool)

	// ProcessMessage turns an arriving message into a result for one edge.
	// It sees the edge value and — GraphMat's key expressiveness addition
	// over CombBLAS-style semiring frameworks (§4.2) — the *destination*
	// vertex property.
	ProcessMessage(msg M, edge E, dst V) R

	// Reduce folds two results into one. Must be commutative/associative.
	Reduce(a, b R) R

	// Apply consumes the reduced value for vertex v, mutating its property
	// in place. Returning true marks v active for the next superstep
	// (Algorithm 2 marks a vertex active when its state changed; the
	// boolean encodes exactly that).
	Apply(reduced R, v VertexID, prop *V) (activate bool)

	// Direction selects which edges messages scatter along (§4.1:
	// "SEND_MESSAGE can be called to scatter along in- and/or out- edges").
	Direction() graph.Direction
}

// DstIndependent is an optional marker for programs whose ProcessMessage
// never reads the destination vertex property (PageRank, BFS, SSSP, …).
// The backend then skips the per-edge property load — one fewer random
// memory stream in the SpMV inner loop. The C++ release gets this for free
// from template inlining and dead-code elimination; Go's generic dictionaries
// cannot prove the load dead, so the contract is explicit.
type DstIndependent interface {
	ProcessIgnoresDst()
}
