package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"graphmat/internal/graph"
	"graphmat/internal/sched"
	"graphmat/internal/sparse"
)

// Run executes program p on graph g until convergence or the configured
// iteration cap, returning run statistics. It implements Algorithm 2 of the
// paper: each superstep builds a sparse message vector from the active
// vertices (SendMessage), multiplies it against the partitioned adjacency
// structure with the generalized SpMV (ProcessMessage + Reduce, Algorithm 1),
// applies the reduced values (Apply), and activates the vertices whose state
// changed. The run mutates g's vertex properties and active set.
//
// Run is RunContext without a context: it cannot be canceled and the error
// is always nil. Callers that need cancellation, deadlines or per-superstep
// observation use RunContext.
func Run[V, E, M, R any, P Program[V, E, M, R]](g *graph.Graph[V, E], p P, cfg Config) (Stats, error) {
	return RunContext[V, E, M, R, P](context.Background(), g, p, cfg, nil)
}

// localStats is one worker's tally, padded to a cache line so workers never
// share one. Frontier-size counts (messages sent, distinct senders, next
// actives) are NOT tallied here: the occupancy masks already hold them, so
// the engines read them after each phase with one popcount word sweep
// (bitvec.Count through the kernels backend) instead of bumping a counter
// per Set in the hot loops.
type localStats struct {
	edges   int64
	probes  int64
	applies int64
	// degSum accumulates the traversal-structure degrees of the vertices
	// that sent a message — the frontier's edge work, the numerator of the
	// Auto push/pull decision. Only tallied when the run is in Auto mode.
	degSum int64
	_      [32]byte
}

func (s *Stats) absorb(locals []localStats) (applies, degSum int64) {
	for i := range locals {
		s.EdgesProcessed += locals[i].edges
		s.ColumnsProbed += locals[i].probes
		s.Applies += locals[i].applies
		applies += locals[i].applies
		degSum += locals[i].degSum
		locals[i] = localStats{}
	}
	return applies, degSum
}

// chunkBounds splits [0, n) into at most k contiguous chunks whose interior
// boundaries are 64-aligned, so concurrent writers of chunk-local bitvector
// ranges never share a word.
func chunkBounds(n, k int) []uint32 {
	if k < 1 {
		k = 1
	}
	step := (n + k - 1) / k
	step = (step + 63) &^ 63
	if step == 0 {
		step = 64
	}
	bounds := []uint32{0}
	for b := step; b < n; b += step {
		bounds = append(bounds, uint32(b))
	}
	bounds = append(bounds, uint32(n))
	return bounds
}

// execCfg carries one run's scheduling parameters into the phase dispatch
// helper: worker count, schedule, runtime selection, and the per-run tally
// the scheduler work is accounted to.
type execCfg struct {
	workers int
	sc      Schedule
	rt      Runtime
	tally   *sched.Tally
}

func (c Config) exec(t *sched.Tally) execCfg {
	return execCfg{workers: c.Threads, sc: c.Schedule, rt: c.Runtime, tally: t}
}

// schedStats converts a run tally into the Stats view.
func (ex execCfg) schedStats() SchedStats {
	s := SchedStats{Workers: ex.workers}
	if ex.tally != nil {
		s.Tasks = ex.tally.Tasks.Load()
		s.Steals = ex.tally.Steals.Load()
		s.BusyNS = ex.tally.BusyNS.Load()
	}
	return s
}

// parallelFor runs fn(task, worker) over tasks [0, ntasks) on up to
// ex.workers executors. Under the Pooled runtime (default) the tasks go to
// the persistent shared worker pool — parked workers are woken instead of
// spawned, with Dynamic runs rebalanced by work stealing and Static runs
// pinned to their initial contiguous spans; PerCall keeps the legacy
// goroutine fan-out. stop, when non-nil, is polled before each task under
// either runtime: once it goes nonzero the remaining tasks are abandoned,
// which is how a cancellation aborts a multi-second SpMV without waiting
// for the superstep to finish.
func parallelFor(ex execCfg, ntasks int, stop *atomic.Int32, fn func(task, worker int)) {
	nworkers := ex.workers
	if nworkers > ntasks {
		nworkers = ntasks
	}
	if nworkers <= 1 {
		ran := int64(0)
		for i := 0; i < ntasks; i++ {
			if stop != nil && stop.Load() != 0 {
				break
			}
			fn(i, 0)
			ran++
		}
		if ex.tally != nil {
			ex.tally.Tasks.Add(ran)
		}
		return
	}
	if ex.rt == PerCall {
		spawnFor(nworkers, ntasks, ex.sc, stop, fn)
		return
	}
	sched.Shared(nworkers).RunOptions(ntasks, stop, sched.Options{NoSteal: ex.sc == Static, Tally: ex.tally}, fn)
}

// spawnFor is the PerCall runtime: fresh goroutines and a WaitGroup
// barrier on every call, with Dynamic pulling tasks from a shared atomic
// counter and Static pre-assigning them round-robin. Kept as the
// scheduling ablation baseline the pooled runtime is gated against.
func spawnFor(nworkers, ntasks int, sc Schedule, stop *atomic.Int32, fn func(task, worker int)) {
	var wg sync.WaitGroup
	wg.Add(nworkers)
	if sc == Dynamic {
		var next atomic.Int64
		for w := 0; w < nworkers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					if stop != nil && stop.Load() != 0 {
						return
					}
					i := int(next.Add(1) - 1)
					if i >= ntasks {
						return
					}
					fn(i, w)
				}
			}(w)
		}
	} else {
		for w := 0; w < nworkers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := w; i < ntasks; i += nworkers {
					if stop != nil && stop.Load() != 0 {
						return
					}
					fn(i, w)
				}
			}(w)
		}
	}
	wg.Wait()
}

func runTyped[V, E, M, R any, P Program[V, E, M, R]](g *graph.Graph[V, E], p P, cfg Config, ws *Workspace[M, R], ctrl *controller) (stats Stats, err error) {
	n := int(g.NumVertices())
	props := g.Props()
	active := g.Active()
	dir := p.Direction()

	// The traversal structures are pinned once here as base+delta layers:
	// whatever the graph's owning store publishes later, this run keeps
	// iterating exactly this epoch's edge set.
	var outLayers, inLayers []sparse.Layered[E]
	if dir&graph.Out != 0 {
		outLayers = g.OutLayers()
	}
	if dir&graph.In != 0 {
		inLayers = g.InLayers()
	}

	// Auto mode needs the frontier's edge work each superstep: the degree of
	// every sender with respect to the traversal structures in play. The sum
	// is tallied for free during the SendMessage phase (one array load per
	// sender); fixed modes skip the accounting entirely. The structure-side
	// costs are fixed for the whole run.
	var autoDegs []uint32
	var costs KernelCosts
	if cfg.Mode == Auto {
		switch dir & graph.Both {
		case graph.Out:
			autoDegs = g.OutDegrees()
		case graph.In:
			autoDegs = g.InDegrees()
		default:
			outDegs, inDegs := g.OutDegrees(), g.InDegrees()
			autoDegs = make([]uint32, n)
			for v := range autoDegs {
				autoDegs[v] = outDegs[v] + inDegs[v]
			}
		}
		costs = AddLayers(AddLayers(costs, outLayers), inLayers)
	}

	x, xs, y := ws.x, ws.xs, ws.y

	// Multiply-phase task lists, prepared once per run and direction: a
	// partition-granular list plus the nnz-weighted shaped list the pooled
	// runtime uses on pull supersteps (see shapeTasks).
	outPlan := shapeTasks(outLayers, cfg.Threads, cfg.Runtime)
	inPlan := shapeTasks(inLayers, cfg.Threads, cfg.Runtime)

	var tally sched.Tally
	ex := cfg.exec(&tally)
	defer func() { stats.Sched = ex.schedStats() }()

	chunks := chunkBounds(n, cfg.Threads*4)
	nchunks := len(chunks) - 1
	locals := make([]localStats, cfg.Threads)
	// Sorted mode gathers per-chunk entry runs and concatenates them in
	// chunk order, preserving global index order.
	var sortedRuns [][]sparse.Entry[M]
	if xs != nil {
		sortedRuns = make([][]sparse.Entry[M], nchunks)
	}

	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = math.MaxInt
	}
	stop := ctrl.flag()
	runStart := time.Now() //lint:graphmat bannedcalls one clock read per run, off the per-edge path

	stats.Reason = MaxIterations // what remains if the loop runs out
	for iter := 0; iter < maxIter; iter++ {
		if r, ok := ctrl.stopped(); ok {
			stats.Reason = r
			return stats, r.err()
		}
		stepStart := time.Now() //lint:graphmat bannedcalls one clock read per superstep, off the per-edge path
		frontier := int64(active.Count())
		stats.ActiveSum += frontier
		stats.Iterations++

		// Phase 1: SendMessage over active vertices builds the sparse
		// message vector (Algorithm 2 lines 3-5).
		if x != nil {
			x.Reset()
			parallelFor(ex, nchunks, stop, func(c, w int) {
				st := &locals[w]
				active.IterateRange(chunks[c], chunks[c+1], func(v uint32) {
					if m, ok := p.SendMessage(v, props[v]); ok {
						x.Set(v, m)
						if autoDegs != nil {
							st.degSum += int64(autoDegs[v])
						}
					}
				})
			})
		} else {
			xs.Reset()
			parallelFor(ex, nchunks, stop, func(c, w int) {
				st := &locals[w]
				var run []sparse.Entry[M]
				active.IterateRange(chunks[c], chunks[c+1], func(v uint32) {
					if m, ok := p.SendMessage(v, props[v]); ok {
						run = append(run, sparse.Entry[M]{Idx: v, Val: m})
						if autoDegs != nil {
							st.degSum += int64(autoDegs[v])
						}
					}
				})
				sortedRuns[c] = run
			})
			for c := 0; c < nchunks; c++ {
				for _, e := range sortedRuns[c] {
					xs.Append(e.Idx, e.Val)
				}
				sortedRuns[c] = nil
			}
		}
		// The frontier sizes come off the occupancy masks, not per-Set
		// counters: one popcount sweep per phase feeds the cost model and
		// the stats.
		var sent int64
		if x != nil {
			sent = int64(x.NNZ())
		} else {
			sent = int64(xs.NNZ())
		}
		stats.MessagesSent += sent
		_, degSum := stats.absorb(locals)

		// Per-superstep direction optimization: resolve Auto from the
		// frontier's size and edge work against the structure-side costs.
		stepMode := costs.Choose(cfg.Mode, cfg.PushThreshold, sent, degSum)

		var applies, nactive int64
		if sent > 0 {
			if stepMode == Push {
				stats.PushSupersteps++
			} else {
				stats.PullSupersteps++
			}
			// Phase 2: generalized SpMV (Algorithm 1) through the selected
			// kernel. Each partition owns a disjoint 64-aligned output row
			// range, so no synchronization on y. Partitions with a delta
			// overlay run the merged two-layer kernels; the rest take the
			// single-layer fast path.
			y.Reset()
			for di, layers := range [2][]sparse.Layered[E]{outLayers, inLayers} {
				if layers == nil {
					continue
				}
				plan := &outPlan
				if di == 1 {
					plan = &inPlan
				}
				tasks := plan.pick(stepMode, x == nil)
				parallelFor(ex, len(tasks), stop, func(ti, w int) {
					t := tasks[ti]
					l := layers[t.layer]
					if l.Delta == nil {
						switch {
						case x != nil && stepMode == Push:
							spmvPushBitvec(l.Base, x, props, p, y, &locals[w], t.rlo, t.rhi)
						case x != nil:
							spmvPullBitvec(l.Base, x, props, p, y, &locals[w], t.rlo, t.rhi)
						case stepMode == Push:
							spmvPushSorted(l.Base, xs, props, p, y, &locals[w])
						default:
							spmvPullSorted(l.Base, xs, props, p, y, &locals[w])
						}
						return
					}
					// Layered partitions are never row-split (shapeTasks
					// keeps them whole): the merged two-layer kernels run
					// partition-granular.
					switch {
					case x != nil && stepMode == Push:
						spmvPushBitvecLayered(l, x, props, p, y, &locals[w])
					case x != nil:
						spmvPullBitvecLayered(l, x, props, p, y, &locals[w])
					case stepMode == Push:
						spmvPushSortedLayered(l, xs, props, p, y, &locals[w])
					default:
						spmvPullSortedLayered(l, xs, props, p, y, &locals[w])
					}
				})
			}

			// A stop raised mid-SpMV must not Apply a partially reduced y:
			// return the partial tallies without touching vertex state
			// further.
			if r, ok := ctrl.stopped(); ok {
				stats.absorb(locals)
				stats.Reason = r
				return stats, r.err()
			}

			// Phase 3: Apply and re-activation (Algorithm 2 lines 7-13).
			active.Reset()
			parallelFor(ex, nchunks, stop, func(c, w int) {
				st := &locals[w]
				y.IterateRange(chunks[c], chunks[c+1], func(v uint32, r R) {
					st.applies++
					if p.Apply(r, v, &props[v]) {
						active.Set(v)
					}
				})
			})
			applies, _ = stats.absorb(locals)
			nactive = int64(active.Count())
		}
		if r, ok := ctrl.stopped(); ok {
			stats.Reason = r
			return stats, r.err()
		}
		if ctrl.observer != nil {
			err := ctrl.observer(IterationInfo{
				Iteration:  iter + 1,
				Active:     frontier,
				Sent:       sent,
				Applies:    applies,
				NextActive: nactive,
				Mode:       stepMode,
				Elapsed:    time.Since(stepStart), //lint:graphmat bannedcalls per-superstep stats, two reads per superstep
				Total:      time.Since(runStart),
			})
			if err != nil {
				stats.Reason = StoppedByObserver
				return stats, err
			}
		}
		if sent == 0 || nactive == 0 {
			stats.Reason = Converged
			break
		}
	}
	return stats, nil
}
