package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
)

// endlessGraph builds an RMAT graph whose alwaysActive run never converges —
// the cancellation tests' workload.
func endlessGraph(t testing.TB, scale int) *graph.Graph[int64, float32] {
	t.Helper()
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 8, Seed: 7, NoPermute: true})
	g, err := graph.NewFromCOO[int64, float32](adj, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(1)
	g.SetAllActive()
	return g
}

// TestRunContextCancelMidRun cancels an endless run on a large RMAT graph
// from its own observer and checks the run stops within one further
// superstep, reports Canceled, and returns ctx's error. Runs under -race in
// CI, so it also exercises the stop flag's publication across the watcher
// goroutine and the partition workers.
func TestRunContextCancelMidRun(t *testing.T) {
	g := endlessGraph(t, 13)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 2
	stats, err := RunContext(ctx, g, alwaysActive{}, Config{}, nil,
		WithObserver(func(info IterationInfo) error {
			if info.Iteration == cancelAt {
				cancel()
			}
			return nil
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Reason != Canceled {
		t.Fatalf("Reason = %v, want Canceled", stats.Reason)
	}
	// The watcher goroutine raises the stop flag asynchronously; the loop
	// must notice it no later than the superstep after the cancel.
	if stats.Iterations < cancelAt || stats.Iterations > cancelAt+1 {
		t.Fatalf("Iterations = %d, want %d or %d", stats.Iterations, cancelAt, cancelAt+1)
	}
}

// TestRunContextCancelBoxed covers the same cancellation path through the
// boxed (naive-dispatch) engine.
func TestRunContextCancelBoxed(t *testing.T) {
	g := endlessGraph(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stats, err := RunContext(ctx, g, alwaysActive{}, Config{Dispatch: Boxed}, nil,
		WithObserver(func(info IterationInfo) error {
			if info.Iteration == 1 {
				cancel()
			}
			return nil
		}))
	if !errors.Is(err, context.Canceled) || stats.Reason != Canceled {
		t.Fatalf("err = %v, Reason = %v; want Canceled", err, stats.Reason)
	}
	if stats.Iterations > 2 {
		t.Fatalf("Iterations = %d, want <= 2", stats.Iterations)
	}
}

// TestWorkspaceReusableAfterCancel cancels an SSSP run mid-flight and then
// reuses the same workspace for a full run: the canceled run must not poison
// the scratch — the rerun's distances must match a fresh-workspace run
// bit for bit.
func TestWorkspaceReusableAfterCancel(t *testing.T) {
	adj := gen.RMAT(gen.RMATOptions{Scale: 12, EdgeFactor: 8, Seed: 11, MaxWeight: 10, NoPermute: true})
	g, err := graph.NewFromCOO[float32, float32](adj, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := int(g.NumVertices())
	reset := func() {
		g.SetAllProps(inf)
		g.SetProp(0, 0)
		g.ClearActive()
		g.SetActive(0)
	}

	ws := NewWorkspace[float32, float32](n, Bitvector)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reset()
	stats, err := RunContext(ctx, g, ssspProg{}, Config{}, ws,
		WithObserver(func(info IterationInfo) error {
			if info.Iteration == 1 {
				cancel()
			}
			return nil
		}))
	if !errors.Is(err, context.Canceled) || stats.Reason != Canceled {
		t.Fatalf("canceled run: err = %v, Reason = %v", err, stats.Reason)
	}

	// Rerun to convergence with the canceled run's workspace.
	reset()
	if _, err := RunContext(context.Background(), g, ssspProg{}, Config{}, ws); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, n)
	for v := 0; v < n; v++ {
		got[v] = g.Prop(uint32(v))
	}

	// Reference run with fresh scratch.
	reset()
	if _, err := Run(g, ssspProg{}, Config{}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if got[v] != g.Prop(uint32(v)) {
			t.Fatalf("dist[%d] = %v after reuse, want %v", v, got[v], g.Prop(uint32(v)))
		}
	}
}

// TestRunContextPreCanceled checks a context canceled before the run starts
// stops it before the first superstep.
func TestRunContextPreCanceled(t *testing.T) {
	g := endlessGraph(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunContext(ctx, g, alwaysActive{}, Config{}, nil)
	if !errors.Is(err, context.Canceled) || stats.Reason != Canceled {
		t.Fatalf("err = %v, Reason = %v; want Canceled", err, stats.Reason)
	}
	if stats.Iterations != 0 {
		t.Fatalf("Iterations = %d, want 0", stats.Iterations)
	}
}

// TestRunContextDeadline checks both deadline sources: a context deadline
// and the engine-level WithMaxDuration budget.
func TestRunContextDeadline(t *testing.T) {
	g := endlessGraph(t, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	stats, err := RunContext(ctx, g, alwaysActive{}, Config{}, nil)
	if !errors.Is(err, context.DeadlineExceeded) || stats.Reason != DeadlineExceeded {
		t.Fatalf("ctx deadline: err = %v, Reason = %v", err, stats.Reason)
	}

	g.SetAllProps(1)
	g.SetAllActive()
	stats, err = RunContext(context.Background(), g, alwaysActive{}, Config{}, nil,
		WithMaxDuration(20*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) || stats.Reason != DeadlineExceeded {
		t.Fatalf("max duration: err = %v, Reason = %v", err, stats.Reason)
	}
}

// TestObserverStopsRun checks an observer error stops the run with
// StoppedByObserver and surfaces the observer's error verbatim.
func TestObserverStopsRun(t *testing.T) {
	g := endlessGraph(t, 6)
	errEnough := errors.New("enough")
	stats, err := RunContext(context.Background(), g, alwaysActive{}, Config{}, nil,
		WithObserver(func(info IterationInfo) error {
			if info.Iteration == 3 {
				return errEnough
			}
			return nil
		}))
	if !errors.Is(err, errEnough) {
		t.Fatalf("err = %v, want the observer's error", err)
	}
	if stats.Reason != StoppedByObserver || stats.Iterations != 3 {
		t.Fatalf("Reason = %v, Iterations = %d; want StoppedByObserver after 3", stats.Reason, stats.Iterations)
	}
}

// TestObserverIterationInfo checks the per-superstep progress stream on the
// deterministic path graph 0->1->2->3: iteration numbers count 1..4, the
// frontier is one vertex per superstep, and the final report shows an empty
// next frontier.
func TestObserverIterationInfo(t *testing.T) {
	g := fig3Graph(t, graph.Options{Partitions: 2})
	var infos []IterationInfo
	stats, err := RunContext(context.Background(), g, ssspProg{}, Config{}, nil,
		WithObserver(func(info IterationInfo) error {
			infos = append(infos, info)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reason != Converged {
		t.Fatalf("Reason = %v, want Converged", stats.Reason)
	}
	if len(infos) != stats.Iterations {
		t.Fatalf("observed %d supersteps, stats say %d", len(infos), stats.Iterations)
	}
	var sent int64
	for i, info := range infos {
		if info.Iteration != i+1 {
			t.Fatalf("info[%d].Iteration = %d, want %d", i, info.Iteration, i+1)
		}
		sent += info.Sent
	}
	if sent != stats.MessagesSent {
		t.Fatalf("observer saw %d messages, stats say %d", sent, stats.MessagesSent)
	}
	if last := infos[len(infos)-1]; last.NextActive != 0 {
		t.Fatalf("final NextActive = %d, want 0", last.NextActive)
	}
}

// TestStopReasons checks the terminal classification of uncanceled runs and
// the JSON round-trip of the typed reason.
func TestStopReasons(t *testing.T) {
	g := fig3Graph(t, graph.Options{})
	stats, err := Run(g, ssspProg{}, Config{})
	if err != nil || stats.Reason != Converged {
		t.Fatalf("converging run: err = %v, Reason = %v", err, stats.Reason)
	}

	e := endlessGraph(t, 4)
	stats, err = Run(e, alwaysActive{}, Config{MaxIterations: 5})
	if err != nil || stats.Reason != MaxIterations {
		t.Fatalf("capped run: err = %v, Reason = %v", err, stats.Reason)
	}

	for _, r := range []StopReason{ReasonNone, Converged, MaxIterations, Canceled, DeadlineExceeded, StoppedByObserver} {
		b, err := r.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back StopReason
		if err := back.UnmarshalJSON(b); err != nil || back != r {
			t.Fatalf("round-trip of %v: got %v, err %v", r, back, err)
		}
	}
}
