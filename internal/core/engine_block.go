package core

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"time"

	"graphmat/internal/graph"
	"graphmat/internal/sched"
	"graphmat/internal/sparse"
)

// This file is the multi-source BSP driver: the same three-phase superstep
// loop as runTyped — SendMessage, generalized multiply, Apply — widened to an
// n×k block of independent source columns sharing one traversal of the
// adjacency structure per superstep. Vertex state lives in a BlockState, not
// the graph, so a block run never disturbs the graph's scalar props/active
// and can share a pinned snapshot with scalar runs.
//
// Convergence is per column and structural: a source column whose vertices
// all go inactive simply stops contributing frontier bits, so it drops out of
// the sweep at zero cost while the remaining columns keep iterating. The run
// ends when no column has active vertices.

// RunBlock executes block program p over k source columns until every column
// converges or the iteration cap. It is RunBlockContext without a context.
func RunBlock[V, E, M, R any, P BlockProgram[V, E, M, R]](
	g *graph.Graph[V, E], p P, st *BlockState[V], cfg Config, ws *BlockWorkspace[M, R],
) (Stats, error) {
	return RunBlockContext[V, E, M, R, P](context.Background(), g, p, st, cfg, ws)
}

// RunBlockContext executes block program p on graph g over the k source
// columns of st, under ctx: the multi-source analogue of RunContext. st
// carries the per-(vertex, column) properties and active set — initialize
// per-column starting state there before the call; after it, extract
// per-column results with BlockState.Column. ws, when non-nil, is
// caller-managed scratch (must match g's vertex count and st's width); nil
// allocates fresh scratch.
//
// The block path always runs the optimized configuration: bitvector-style
// occupancy and inlined dispatch (Config.Vector and Config.Dispatch are
// ignored — the Sorted and Boxed ablation paths exist only scalar-side).
// Mode (Auto/Pull/Push), Threads, Schedule, MaxIterations, observers and
// cancellation behave exactly as in RunContext.
//
// When p's Semiring contract holds (see BlockProgram), the run's results are
// bit-identical per column to scalar runs of the same program from each
// column's starting state alone.
func RunBlockContext[V, E, M, R any, P BlockProgram[V, E, M, R]](
	ctx context.Context, g *graph.Graph[V, E], p P, st *BlockState[V], cfg Config, ws *BlockWorkspace[M, R], opts ...RunOption,
) (Stats, error) {
	cfg = cfg.withDefaults()
	n := int(g.NumVertices())
	if st == nil {
		return Stats{}, fmt.Errorf("core: block run requires a BlockState")
	}
	if st.n != n {
		return Stats{}, fmt.Errorf("core: block state sized for %d vertices, graph has %d", st.n, n)
	}
	k := st.k
	if ws == nil {
		ws = NewBlockWorkspace[M, R](n, k)
	} else if err := ws.Check(n, k); err != nil {
		return Stats{}, err
	}
	var ro runOptions
	for _, opt := range opts {
		opt(&ro)
	}
	ctrl, release := newController(ctx, ro)
	defer release()
	return runBlock(g, p, st, cfg, ws, ctrl)
}

func runBlock[V, E, M, R any, P BlockProgram[V, E, M, R]](
	g *graph.Graph[V, E], p P, bst *BlockState[V], cfg Config, ws *BlockWorkspace[M, R], ctrl *controller,
) (stats Stats, err error) {
	n := int(g.NumVertices())
	k := bst.k
	props := bst.props
	dir := p.Direction()

	var outLayers, inLayers []sparse.Layered[E]
	if dir&graph.Out != 0 {
		outLayers = g.OutLayers()
	}
	if dir&graph.In != 0 {
		inLayers = g.InLayers()
	}

	// Auto accounting, as in runTyped: per-sender degrees tallied during
	// SendMessage. A sender's edge work counts once per live column — the
	// block multiply really does fold each of its edges that many times.
	var autoDegs []uint32
	var costs KernelCosts
	if cfg.Mode == Auto {
		switch dir & graph.Both {
		case graph.Out:
			autoDegs = g.OutDegrees()
		case graph.In:
			autoDegs = g.InDegrees()
		default:
			outDegs, inDegs := g.OutDegrees(), g.InDegrees()
			autoDegs = make([]uint32, n)
			for v := range autoDegs {
				autoDegs[v] = outDegs[v] + inDegs[v]
			}
		}
		costs = AddLayers(AddLayers(costs, outLayers), inLayers)
	}

	x, y := ws.x, ws.y
	active, actCols := bst.summary, bst.active

	// Multiply-phase task plans, as in runTyped: nnz-weighted row-split
	// tasks for pull supersteps, partition-granular for push.
	outPlan := shapeTasks(outLayers, cfg.Threads, cfg.Runtime)
	inPlan := shapeTasks(inLayers, cfg.Threads, cfg.Runtime)

	var tally sched.Tally
	ex := cfg.exec(&tally)
	defer func() { stats.Sched = ex.schedStats() }()

	chunks := chunkBounds(n, cfg.Threads*4)
	nchunks := len(chunks) - 1
	locals := make([]localStats, cfg.Threads)

	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = math.MaxInt
	}
	stop := ctrl.flag()
	runStart := time.Now() //lint:graphmat bannedcalls one clock read per run, off the per-edge path

	stats.Reason = MaxIterations
	for iter := 0; iter < maxIter; iter++ {
		if r, ok := ctrl.stopped(); ok {
			stats.Reason = r
			return stats, r.err()
		}
		stepStart := time.Now() //lint:graphmat bannedcalls one clock read per superstep, off the per-edge path
		frontier := int64(active.Count())
		stats.ActiveSum += frontier
		stats.Iterations++

		// Phase 1: SendMessage per active (vertex, column) pair builds the
		// n×k message block. Chunks own disjoint 64-aligned vertex ranges, so
		// the block vector's lazy-zero writes need no synchronization.
		x.Reset()
		parallelFor(ex, nchunks, stop, func(c, w int) {
			st := &locals[w]
			active.IterateRange(chunks[c], chunks[c+1], func(v uint32) {
				am := actCols[v]
				for m := am; m != 0; m &= m - 1 {
					s := bits.TrailingZeros64(m)
					if msg, ok := p.SendMessage(v, props[int(v)*k+s]); ok {
						x.Set(v, s, msg)
						if autoDegs != nil {
							st.degSum += int64(autoDegs[v])
						}
					}
				}
			})
		})
		// Frontier sizes come off the message block's occupancy masks after
		// the phase — a popcount sweep instead of per-Set counters and a
		// per-vertex sentAny branch in the send loop.
		sendersN, sentN := x.Occupancy()
		sent, senders := int64(sentN), int64(sendersN)
		stats.MessagesSent += sent
		_, degSum := stats.absorb(locals)

		// The push probe bill scales with distinct sender vertices, not
		// (vertex, column) pairs — one AUX lookup serves all columns.
		stepMode := costs.Choose(cfg.Mode, cfg.PushThreshold, senders, degSum)

		var applies, nactive int64
		if sent > 0 {
			if stepMode == Push {
				stats.PushSupersteps++
			} else {
				stats.PullSupersteps++
			}
			// Phase 2: the SpMM. Partition dispatch mirrors runTyped's:
			// layered kernels where a delta overlay exists, single-layer fast
			// path elsewhere.
			y.Reset()
			for di, layers := range [2][]sparse.Layered[E]{outLayers, inLayers} {
				if layers == nil {
					continue
				}
				plan := &outPlan
				if di == 1 {
					plan = &inPlan
				}
				tasks := plan.pick(stepMode, false)
				parallelFor(ex, len(tasks), stop, func(ti, w int) {
					t := tasks[ti]
					l := layers[t.layer]
					if l.Delta == nil {
						if stepMode == Push {
							spmmPushBitvec(l.Base, x, p, y, &locals[w], t.rlo, t.rhi)
						} else {
							spmmPullBitvec(l.Base, x, p, y, &locals[w], t.rlo, t.rhi)
						}
						return
					}
					// Layered partitions stay whole (shapeTasks never
					// splits them).
					if stepMode == Push {
						spmmPushLayered(l, x, p, y, &locals[w])
					} else {
						spmmPullLayered(l, x, p, y, &locals[w])
					}
				})
			}
			if r, ok := ctrl.stopped(); ok {
				stats.absorb(locals)
				stats.Reason = r
				return stats, r.err()
			}

			// Phase 3: Apply per received (vertex, column) pair, rebuilding
			// the active block.
			active.Reset()
			parallelFor(ex, nchunks, stop, func(c, w int) {
				st := &locals[w]
				ysum := y.summary
				ycols := y.cols
				ysum.IterateRange(chunks[c], chunks[c+1], func(v uint32) {
					ym := ycols[v]
					yrow := y.vals[int(v)*k : int(v)*k+k]
					prow := props[int(v)*k : int(v)*k+k]
					var am uint64
					for m := ym; m != 0; m &= m - 1 {
						s := bits.TrailingZeros64(m)
						st.applies++
						if p.Apply(yrow[s], v, &prow[s]) {
							am |= 1 << uint(s)
						}
					}
					if am != 0 {
						active.Words()[v>>6] |= uint64(1) << (v & 63)
						actCols[v] = am
					}
				})
			})
			applies, _ = stats.absorb(locals)
			nactive = int64(active.Count())
		}
		if r, ok := ctrl.stopped(); ok {
			stats.Reason = r
			return stats, r.err()
		}
		if ctrl.observer != nil {
			err := ctrl.observer(IterationInfo{
				Iteration:  iter + 1,
				Active:     frontier,
				Sent:       sent,
				Applies:    applies,
				NextActive: nactive,
				Mode:       stepMode,
				Elapsed:    time.Since(stepStart), //lint:graphmat bannedcalls per-superstep stats, two reads per superstep
				Total:      time.Since(runStart),
			})
			if err != nil {
				stats.Reason = StoppedByObserver
				return stats, err
			}
		}
		if sent == 0 || nactive == 0 {
			stats.Reason = Converged
			break
		}
	}
	return stats, nil
}
