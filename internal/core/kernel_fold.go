package core

import (
	"graphmat/internal/kernels"
	"graphmat/internal/sparse"
)

// This file is the seam between the generic kernels and the arch-dispatched
// fold primitives in internal/kernels: the SumFoldF64 declaration and the
// helpers that resolve a program to the fused float64 fold when it qualifies.

// SumFoldF64 is an optional marker for programs whose fold is the
// (+, passthrough) monoid over float64: ProcessMessage (and Mul, for block
// programs) returns the message unchanged — bit-for-bit, for every edge value
// and destination — and Reduce (and Add) is float64 addition. PageRank, PPR
// and HITS are this shape: the per-edge work is pure gather-and-accumulate.
//
// Declaring it lets the kernels replace the per-edge callback loop with the
// kernels backend's fused primitives — ScatterAddF64 for the scalar SpMV
// column fold, BlockAddF64 for the SpMM's k-wide masked lane add — which is
// where the AVX2/NEON backends earn their keep on the dense-frontier
// algorithms. The declaration is a promise, like DstIndependent: the fused
// fold must be indistinguishable from the generic loop. The differential
// suites enforce it (fused vs generic, and every SIMD backend vs the scalar
// oracle, all bit-identical).
//
// One boundary inherited from the branchless SIMD variants: messages must
// never be signaling NaNs. Engine messages are arithmetic results, which are
// never signaling, so this excludes nothing in practice.
type SumFoldF64 interface {
	ReducesBySumF64()
}

// sumFoldF64 is the resolved fast-path view of a scalar-engine kernel call:
// ok only when the program declares SumFoldF64 AND both vector element types
// really are float64.
type sumFoldF64 struct {
	ok   bool
	x, y []float64
}

func sumFoldScalarView[V, E, M, R any, P Program[V, E, M, R]](
	p P, x *sparse.Vector[M], y *sparse.Vector[R],
) (sf sumFoldF64) {
	if _, ok := any(p).(SumFoldF64); !ok {
		return sf
	}
	xv, okX := any(x.Values()).([]float64)
	yv, okY := any(y.Values()).([]float64)
	if !okX || !okY {
		return sf
	}
	return sumFoldF64{ok: true, x: xv, y: yv}
}

// sumFoldBlockView is the block-engine analogue: the raw n×k value arrays of
// the message and reduction blocks when the program qualifies.
func sumFoldBlockView[V, E, M, R any, P BlockProgram[V, E, M, R]](
	p P, x *BlockVector[M], y *BlockVector[R],
) (xvals, yvals []float64, ok bool) {
	if _, mk := any(p).(SumFoldF64); !mk {
		return nil, nil, false
	}
	xv, okX := any(x.vals).([]float64)
	yv, okY := any(y.vals).([]float64)
	if !okX || !okY {
		return nil, nil, false
	}
	return xv, yv, true
}

// foldBlockColumnSumF64 is foldBlockColumn for (+, passthrough) float64
// programs: per edge, one masked k-lane add through the kernels backend
// instead of a per-source Mul/Add loop. Identical fold semantics — lanes are
// independent and first writes store the raw message, exactly like the
// generic loop.
func foldBlockColumnSumF64(
	k int, cm uint64, xrow []float64, irc []uint32,
	ysw []uint64, ycols []uint64, yvals []float64,
) {
	for _, dst := range irc {
		w := &ysw[dst>>6]
		bit := uint64(1) << (dst & 63)
		if *w&bit == 0 {
			*w |= bit
			ycols[dst] = 0
		}
		kernels.BlockAddF64(yvals[int(dst)*k:int(dst)*k+k], xrow, cm, ycols[dst])
		ycols[dst] |= cm
	}
}
