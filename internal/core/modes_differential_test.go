package core

import (
	"fmt"
	"testing"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

// This file is the kernel-layer differential suite: push, pull and auto must
// be indistinguishable — bit-identical vertex properties, active frontiers
// and per-superstep y vectors — on every graph shape and direction. The
// engine is driven one superstep at a time so the comparison happens at
// every superstep boundary, not just at convergence.

// inDir and bothDir wrap ssspProg with the other scatter directions so the
// In and Both code paths run under the differential.
type inDir struct{ ssspProg }

func (inDir) Direction() graph.Direction { return graph.In }

type bothDir struct{ ssspProg }

func (bothDir) Direction() graph.Direction { return graph.Both }

// bfsProg is hop counting (a DstIndependent program, exercising the
// fast path in both kernels).
type bfsProg struct{}

func (bfsProg) SendMessage(v VertexID, prop uint32) (uint32, bool)  { return prop, true }
func (bfsProg) ProcessMessage(m uint32, _ float32, _ uint32) uint32 { return m + 1 }
func (bfsProg) Reduce(a, b uint32) uint32                           { return min(a, b) }
func (bfsProg) Apply(r uint32, _ VertexID, prop *uint32) bool {
	if r < *prop {
		*prop = r
		return true
	}
	return false
}
func (bfsProg) Direction() graph.Direction { return graph.Out }
func (bfsProg) ProcessIgnoresDst()         {}

// diffGraph describes one adversarial golden of the suite.
type diffGraph struct {
	name string
	coo  func() *sparse.COO[float32]
	// roots activates these vertices initially; nil means all (full
	// frontier).
	roots []uint32
}

func diffGraphs() []diffGraph {
	return []diffGraph{
		{name: "rmat", coo: func() *sparse.COO[float32] {
			c := gen.RMAT(gen.RMATOptions{Scale: 9, EdgeFactor: 8, Seed: 11, MaxWeight: 9})
			return c
		}, roots: []uint32{0}},
		{name: "rmat_full_frontier", coo: func() *sparse.COO[float32] {
			return gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 4, Seed: 3, MaxWeight: 5})
		}, roots: nil},
		{name: "empty_frontier", coo: func() *sparse.COO[float32] {
			return gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 4, Seed: 5, MaxWeight: 5})
		}, roots: []uint32{}},
		{name: "self_loops", coo: func() *sparse.COO[float32] {
			c := sparse.NewCOO[float32](128, 128)
			for v := uint32(0); v < 128; v++ {
				c.Add(v, v, 1) // every vertex loops onto itself
				c.Add(v, (v+1)%128, 2)
			}
			return c
		}, roots: []uint32{0, 64}},
		{name: "isolated_vertices", coo: func() *sparse.COO[float32] {
			// Edges only among the first 64 of 512 vertices; the rest are
			// isolated (empty columns everywhere — the hypersparse case the
			// AUX index must handle).
			c := sparse.NewCOO[float32](512, 512)
			for v := uint32(0); v < 64; v++ {
				c.Add(v, (v*7+1)%64, 1)
				c.Add(v, (v*13+5)%64, 3)
			}
			return c
		}, roots: []uint32{0, 100}}, // 100 is isolated: it sends, nothing receives
	}
}

// buildDiff constructs the property graph for one golden under a direction.
func buildDiff(t *testing.T, d diffGraph, dirs graph.Direction, parts int) *graph.Graph[float32, float32] {
	t.Helper()
	coo := d.coo()
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	g, err := graph.NewFromCOO[float32, float32](coo, graph.Options{Partitions: parts, Directions: dirs})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(inf)
	if d.roots == nil {
		for v := uint32(0); v < g.NumVertices(); v++ {
			g.SetProp(v, float32(v%17))
			g.SetActive(v)
		}
	} else {
		for _, r := range d.roots {
			g.SetProp(r, 0)
			g.SetActive(r)
		}
	}
	return g
}

// captureStep captures everything a superstep produced for comparison.
func captureStep[V any, M, R comparable](t *testing.T, g *graph.Graph[V, float32], ws *Workspace[M, R]) (props []V, active []uint64, yMask []uint64, yVals []R) {
	t.Helper()
	props = append(props, g.Props()...)
	active = append(active, g.Active().Words()...)
	yMask = append(yMask, ws.y.Mask().Words()...)
	// Only masked y values are meaningful; normalize the rest to zero.
	vals := ws.y.Values()
	yVals = make([]R, len(vals))
	ws.y.Iterate(func(i uint32, v R) { yVals[i] = v })
	return
}

// Compile-time assertions that the test programs implement the contract.
var (
	_ Program[float32, float32, float32, float32] = ssspProg{}
	_ Program[float32, float32, float32, float32] = inDir{}
	_ Program[float32, float32, float32, float32] = bothDir{}
)

func TestModesDifferentialSSSP(t *testing.T) {
	for _, d := range diffGraphs() {
		t.Run(d.name, func(t *testing.T) {
			runDifferentialWS(t, d, ssspProg{}, Bitvector)
		})
	}
}

func TestModesDifferentialDirectionIn(t *testing.T) {
	for _, d := range diffGraphs() {
		t.Run(d.name, func(t *testing.T) {
			runDifferentialWS(t, d, inDir{}, Bitvector)
		})
	}
}

func TestModesDifferentialDirectionBoth(t *testing.T) {
	for _, d := range diffGraphs() {
		t.Run(d.name, func(t *testing.T) {
			runDifferentialWS(t, d, bothDir{}, Bitvector)
		})
	}
}

func TestModesDifferentialSortedVector(t *testing.T) {
	for _, d := range diffGraphs() {
		t.Run(d.name, func(t *testing.T) {
			runDifferentialWS(t, d, ssspProg{}, Sorted)
		})
	}
}

// TestModesDifferentialBFSFastPath runs the DstIndependent kernel variant
// (uint32 payloads) across modes on the goldens.
func TestModesDifferentialBFSFastPath(t *testing.T) {
	for _, d := range diffGraphs() {
		t.Run(d.name, func(t *testing.T) {
			modes := []Mode{Pull, Push, Auto}
			var ref []uint32
			for _, mode := range modes {
				coo := d.coo()
				coo.SortRowMajor()
				coo.DedupKeepFirst()
				g, err := graph.NewFromCOO[uint32, float32](coo, graph.Options{Partitions: 7})
				if err != nil {
					t.Fatal(err)
				}
				g.SetAllProps(^uint32(0))
				if d.roots == nil {
					for v := uint32(0); v < g.NumVertices(); v++ {
						g.SetProp(v, 0)
						g.SetActive(v)
					}
				} else {
					for _, r := range d.roots {
						g.SetProp(r, 0)
						g.SetActive(r)
					}
				}
				if _, err := Run(g, bfsProg{}, Config{Threads: 2, Mode: mode}); err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = append(ref, g.Props()...)
					continue
				}
				for v := range ref {
					if g.Prop(uint32(v)) != ref[v] {
						t.Fatalf("prop[%d] %s=%d pull=%d", v, mode, g.Prop(uint32(v)), ref[v])
					}
				}
			}
		})
	}
}

// runDifferentialWS drives one (program, graph) pair superstep-by-superstep
// (MaxIterations=1 per call) under pull, push and auto, through
// RunWithWorkspace so ws.y is inspectable, and asserts bit-identical
// properties, frontiers and y vectors at every superstep boundary.
func runDifferentialWS[P Program[float32, float32, float32, float32]](t *testing.T, d diffGraph, p P, kind VectorKind) {
	t.Helper()
	modes := []Mode{Pull, Push, Auto}
	dirs := p.Direction()
	graphs := make([]*graph.Graph[float32, float32], len(modes))
	wss := make([]*Workspace[float32, float32], len(modes))
	for i := range modes {
		graphs[i] = buildDiff(t, d, dirs, 5)
		wss[i] = NewWorkspace[float32, float32](int(graphs[i].NumVertices()), kind)
	}
	for step := 1; step <= 64; step++ {
		converged := false
		var refProps []float32
		var refActive, refYMask []uint64
		var refYVals []float32
		for i, mode := range modes {
			cfg := Config{Threads: 3, MaxIterations: 1, Vector: kind, Mode: mode}
			stats, err := RunWithWorkspace(graphs[i], p, cfg, wss[i])
			if err != nil {
				t.Fatalf("%s mode %s step %d: %v", d.name, mode, step, err)
			}
			props, active, yMask, yVals := captureStep(t, graphs[i], wss[i])
			if i == 0 {
				refProps, refActive, refYMask, refYVals = props, active, yMask, yVals
				converged = stats.Reason == Converged
				continue
			}
			for v := range refProps {
				if props[v] != refProps[v] {
					t.Fatalf("%s step %d: prop[%d] %s=%v pull=%v", d.name, step, v, mode, props[v], refProps[v])
				}
			}
			for w := range refActive {
				if active[w] != refActive[w] {
					t.Fatalf("%s step %d: frontier word %d differs under %s", d.name, step, w, mode)
				}
			}
			for w := range refYMask {
				if yMask[w] != refYMask[w] {
					t.Fatalf("%s step %d: y mask word %d differs under %s", d.name, step, w, mode)
				}
			}
			for v := range refYVals {
				if yVals[v] != refYVals[v] {
					t.Fatalf("%s step %d: y[%d] %s=%v pull=%v", d.name, step, v, mode, yVals[v], refYVals[v])
				}
			}
		}
		if converged {
			return
		}
	}
}

// TestChooseMode pins the two-sided Auto decision.
func TestChooseMode(t *testing.T) {
	costs := KernelCosts{TotalEdges: 10000, TotalNZCols: 4000, Partitions: 8}
	cases := []struct {
		mode        Mode
		size, edges int64
		want        Mode
		why         string
	}{
		{Pull, 1, 1, Pull, "explicit pull passes through"},
		{Push, 1 << 20, 1 << 30, Push, "explicit push passes through"},
		{Auto, 10, 100, Push, "sparse frontier pushes"},
		{Auto, 10, 5000, Pull, "edge-heavy frontier pulls (Ligra rule)"},
		{Auto, 500, 100, Pull, "wide frontier pulls (probe rule: 500*8*4 > 4000)"},
		{Auto, 0, 0, Push, "empty frontier trivially pushes"},
	}
	for _, c := range cases {
		if got := costs.Choose(c.mode, 0, c.size, c.edges); got != c.want {
			t.Errorf("%s: Choose(%s, size=%d, edges=%d) = %s, want %s", c.why, c.mode, c.size, c.edges, got, c.want)
		}
	}
	// Threshold tuning: a huge threshold forbids pushing any nonzero edge work.
	if got := costs.Choose(Auto, 1e9, 1, 1); got != Pull {
		t.Errorf("huge threshold should force pull, got %s", got)
	}
}

// TestModeJSONRoundTrip pins the wire names of Mode.
func TestModeJSONRoundTrip(t *testing.T) {
	for _, m := range []Mode{Auto, Pull, Push} {
		b, err := m.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Mode
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Errorf("round trip %s -> %s", m, back)
		}
	}
	if _, err := ParseMode("sideways"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
	m, err := ParseMode("")
	if err != nil || m != Auto {
		t.Errorf("empty mode = (%v, %v), want Auto", m, err)
	}
	if s := fmt.Sprintf("%s/%s/%s", Auto, Pull, Push); s != "auto/pull/push" {
		t.Errorf("mode names: %s", s)
	}
}

// TestMultiplyPartitionNoAux covers the exported kernel seam with a
// hand-assembled DCSC that lacks the AUX index: the push kernel must fall
// back to binary search, not panic, and still match pull bit for bit.
func TestMultiplyPartitionNoAux(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 4, Seed: 2, MaxWeight: 9})
	coo.SortColMajor()
	coo.DedupKeepFirst()
	full := sparse.BuildDCSC(coo, 0, coo.NRows)
	bare := &sparse.DCSC[float32]{
		NRows: full.NRows, NCols: full.NCols,
		JC: full.JC, CP: full.CP, IR: full.IR, Val: full.Val,
		RowLo: full.RowLo, RowHi: full.RowHi,
	}
	n := int(coo.NRows)
	props := make([]float32, n)
	x := sparse.NewVector[float32](n)
	for v := uint32(0); v < uint32(n); v += 3 {
		x.Set(v, float32(v))
	}
	run := func(part *sparse.DCSC[float32], mode Mode) *sparse.Vector[float32] {
		y := sparse.NewVector[float32](n)
		MultiplyPartition(mode, part, x, props, ssspProg{}, y)
		return y
	}
	ref := run(full, Pull)
	for _, c := range []struct {
		name string
		got  *sparse.Vector[float32]
	}{
		{"push+aux", run(full, Push)},
		{"push-noaux", run(bare, Push)},
		{"pull-noaux", run(bare, Pull)},
	} {
		for v := uint32(0); v < uint32(n); v++ {
			rv, rok := ref.GetChecked(v)
			gv, gok := c.got.GetChecked(v)
			if rok != gok || (rok && rv != gv) {
				t.Fatalf("%s: y[%d] = (%v,%v), want (%v,%v)", c.name, v, gv, gok, rv, rok)
			}
		}
	}
}
