package core

import (
	"testing"
	"testing/quick"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

// ssspMarked is ssspProg plus the DstIndependent marker: the engine must
// take the no-property-load fast path and produce identical results.
type ssspMarked struct{ ssspProg }

func (ssspMarked) ProcessIgnoresDst() {}

// ssspReadsDst deliberately reads (but ignores the value of) the dst
// property, forcing the slow path.
type ssspReadsDst struct{ ssspProg }

func (ssspReadsDst) ProcessMessage(m, e float32, dst float32) float32 {
	_ = dst
	return m + e
}

func TestDstIndependentFastPathEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		build := func() *graph.Graph[float32, float32] {
			coo := gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 4, Seed: seed, MaxWeight: 9})
			coo.RemoveSelfLoops()
			g, err := graph.NewFromCOO[float32, float32](coo, graph.Options{Partitions: 5})
			if err != nil {
				t.Fatal(err)
			}
			g.SetAllProps(inf)
			g.SetProp(0, 0)
			g.SetActive(0)
			return g
		}
		g1 := build()
		Run(g1, ssspMarked{}, Config{Threads: 2})
		g2 := build()
		Run(g2, ssspReadsDst{}, Config{Threads: 2})
		for v := uint32(0); v < g1.NumVertices(); v++ {
			if g1.Prop(v) != g2.Prop(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// sumProg folds float messages; its results must be bit-identical across
// thread counts and schedules because each destination's contributions are
// always folded in ascending-source order within its single owning
// partition.
type sumProg struct{}

func (sumProg) SendMessage(v VertexID, prop float64) (float64, bool) { return prop, true }
func (sumProg) ProcessMessage(m float64, e float32, _ float64) float64 {
	return m * float64(e)
}
func (sumProg) Reduce(a, b float64) float64                     { return a + b }
func (sumProg) Apply(r float64, _ VertexID, prop *float64) bool { *prop = r; return false }
func (sumProg) Direction() graph.Direction                      { return graph.Out }

func TestFloatDeterminismAcrossSchedules(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 9, EdgeFactor: 8, Seed: 5, MaxWeight: 7})
	coo.RemoveSelfLoops()
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	run := func(cfg Config, nparts int) []float64 {
		c := coo.Clone()
		g, err := graph.NewFromCOO[float64, float32](c, graph.Options{Partitions: nparts})
		if err != nil {
			t.Fatal(err)
		}
		g.InitProps(func(v uint32) float64 { return float64(v%97) * 0.013 })
		g.SetAllActive()
		cfg.MaxIterations = 1
		Run(g, sumProg{}, cfg)
		out := make([]float64, g.NumVertices())
		for v := range out {
			out[v] = g.Prop(uint32(v))
		}
		return out
	}
	ref := run(Config{Threads: 1}, 1)
	for _, tc := range []struct {
		cfg    Config
		nparts int
	}{
		{Config{Threads: 2}, 8},
		{Config{Threads: 4, Schedule: Static}, 16},
		{Config{Threads: 3, Schedule: Dynamic}, 5},
		{Config{Threads: 2, Vector: Sorted}, 8},
	} {
		got := run(tc.cfg, tc.nparts)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("cfg %+v parts %d: prop[%d] = %v, want %v (float determinism broken)",
					tc.cfg, tc.nparts, v, got[v], ref[v])
			}
		}
	}
}

// TestSingleVertexGraph and friends pin degenerate-input behavior.
func TestSingleVertexGraph(t *testing.T) {
	c := sparse.NewCOO[float32](1, 1)
	g, err := graph.NewFromCOO[float32, float32](c, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(inf)
	g.SetProp(0, 0)
	g.SetActive(0)
	stats, _ := Run(g, ssspProg{}, Config{})
	if g.Prop(0) != 0 {
		t.Error("vertex state disturbed")
	}
	if stats.Iterations != 1 {
		t.Errorf("Iterations = %d", stats.Iterations)
	}
}

func TestEdgelessGraph(t *testing.T) {
	c := sparse.NewCOO[float32](100, 100)
	g, err := graph.NewFromCOO[float32, float32](c, graph.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(inf)
	g.SetProp(0, 0)
	g.SetActive(0)
	stats, _ := Run(g, ssspProg{}, Config{Threads: 2})
	if stats.EdgesProcessed != 0 {
		t.Errorf("EdgesProcessed = %d on edgeless graph", stats.EdgesProcessed)
	}
	for v := uint32(1); v < 100; v++ {
		if g.Prop(v) != inf {
			t.Fatalf("vertex %d reached without edges", v)
		}
	}
}

func TestSelfLoopOnlyGraph(t *testing.T) {
	// Self loops should not cause infinite activation with min-reduce
	// (distance cannot improve through a positive-weight self loop).
	c := sparse.NewCOO[float32](3, 3)
	c.Add(0, 0, 1)
	c.Add(0, 1, 2)
	g, err := graph.NewFromCOO[float32, float32](c, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAllProps(inf)
	g.SetProp(0, 0)
	g.SetActive(0)
	stats, _ := Run(g, ssspProg{}, Config{MaxIterations: 50})
	if stats.Iterations >= 50 {
		t.Error("self loop caused livelock")
	}
	if g.Prop(1) != 2 {
		t.Errorf("dist[1] = %v", g.Prop(1))
	}
}
